// Command benchstore measures the durability subsystem against the
// restart story it replaces: it builds the 110-mirror webgen catalog
// (10 sites × 11 archived versions, the benchsearch fleet), persists
// it three ways, and times how long a phomd restart takes to be ready
// to serve on each path:
//
//   - cold: no store — graphs reloaded from JSON files and re-registered
//     (the pre-durability baseline: phomd -load on every boot);
//   - wal: store with no snapshot — op-by-op WAL replay;
//   - snapshot: store after compaction — one binary snapshot + WAL tail.
//
// All three include closure builds (identical work), so the measured
// difference is the decode path: the binary snapshot codec versus
// encoding/json. benchstore emits BENCH_store.json and fails when the
// snapshot+WAL replay does not beat the cold path.
//
//	benchstore -out BENCH_store.json          # full run
//	benchstore -short -out BENCH_store.json   # CI-sized (smaller sites)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/webgen"
)

// named pairs a registered name with its graph.
type named struct {
	name string
	g    *graph.Graph
}

// report is the BENCH_store.json schema.
type report struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Graphs     int    `json:"graphs"`
	Sites      int    `json:"sites"`
	Versions   int    `json:"versions"`
	Pages      int    `json:"pages_per_site"`
	Patches    int    `json:"patches"`
	// RegisterSec is the one-time cost of building the catalog in the
	// durable engine (WAL appends + fsyncs included).
	RegisterSec float64 `json:"register_sec"`
	// SnapshotSec is the one-time compaction cost.
	SnapshotSec float64 `json:"snapshot_sec"`
	// ColdBootSec reloads every graph from JSON and re-registers it.
	ColdBootSec float64 `json:"cold_boot_sec"`
	// WALBootSec replays the uncompacted WAL.
	WALBootSec float64 `json:"wal_boot_sec"`
	// SnapshotBootSec replays the compacted snapshot + WAL tail.
	SnapshotBootSec float64 `json:"snapshot_boot_sec"`
	// JSONBytes / WALBytes / SnapshotBytes compare the at-rest formats.
	JSONBytes     int64 `json:"json_bytes"`
	WALBytes      int64 `json:"wal_bytes"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// SpeedupVsCold is ColdBootSec / SnapshotBootSec.
	SpeedupVsCold float64 `json:"speedup_vs_cold"`
}

func main() {
	out := flag.String("out", "BENCH_store.json", "output path")
	sites := flag.Int("sites", 10, "distinct web sites")
	versions := flag.Int("versions", 11, "archived versions per site (sites × versions = catalog size)")
	pages := flag.Int("pages", 300, "pages per site version")
	patches := flag.Int("patches", 50, "live patches applied after registration (exercises WAL patch records)")
	short := flag.Bool("short", false, "CI-sized run: smaller sites, same catalog size")
	flag.Parse()
	if *short {
		*pages = 120
	}

	work, err := os.MkdirTemp("", "benchstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)
	jsonDir := filepath.Join(work, "json")
	walDir := filepath.Join(work, "wal")   // WAL only, never compacted
	snapDir := filepath.Join(work, "snap") // compacted before the timed boot
	for _, d := range []string{jsonDir, walDir, snapDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// Generate the fleet once and write the JSON files the cold path
	// will reload.
	categories := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	var fleet []named
	var jsonBytes int64
	for s := 0; s < *sites; s++ {
		arch := webgen.Generate(webgen.Config{
			Category: categories[s%len(categories)],
			Pages:    *pages,
			Versions: *versions,
			Seed:     int64(1000 + s),
		})
		for v, g := range arch.Versions {
			name := fmt.Sprintf("site%02d/v%02d", s, v)
			fleet = append(fleet, named{name, g})
			path := filepath.Join(jsonDir, fmt.Sprintf("s%02dv%02d.json", s, v))
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := g.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fi, _ := os.Stat(path)
			jsonBytes += fi.Size()
		}
	}
	log.Printf("fleet: %d graphs (%d sites × %d versions, %d pages), %.1f MB of JSON",
		len(fleet), *sites, *versions, *pages, float64(jsonBytes)/(1<<20))

	// Build the durable catalogs: one WAL-only, one compacted. The
	// registration timing is reported for the snapshot store (both do
	// identical work).
	regSec, snapSec := buildStore(snapDir, fleet, *patches, true)
	buildStore(walDir, fleet, *patches, false)

	rep := report{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Graphs:      len(fleet),
		Sites:       *sites,
		Versions:    *versions,
		Pages:       *pages,
		Patches:     *patches,
		RegisterSec: regSec,
		SnapshotSec: snapSec,
		JSONBytes:   jsonBytes,
	}
	rep.WALBytes = dirBytes(walDir)
	rep.SnapshotBytes = dirBytes(snapDir)

	// Timed boots. Each returns a ready-to-serve engine (closures built,
	// catalog warm); the engine is closed untimed.
	rep.ColdBootSec = timeBoot("cold (JSON reload)", func() *engine.Engine {
		eng := engine.New(engine.Options{MaxClosures: len(fleet) + 8})
		files, err := filepath.Glob(filepath.Join(jsonDir, "*.json"))
		if err != nil {
			log.Fatal(err)
		}
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			g, err := graph.ReadJSON(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			base := filepath.Base(path)
			name := fmt.Sprintf("site%s/v%s", base[1:3], base[4:6])
			if err := eng.Register(name, g); err != nil {
				log.Fatal(err)
			}
		}
		return eng
	})
	rep.WALBootSec = timeBoot("wal replay", func() *engine.Engine {
		eng, err := engine.Open(engine.Options{MaxClosures: len(fleet) + 8, StorePath: walDir})
		if err != nil {
			log.Fatal(err)
		}
		return eng
	})
	rep.SnapshotBootSec = timeBoot("snapshot replay", func() *engine.Engine {
		eng, err := engine.Open(engine.Options{MaxClosures: len(fleet) + 8, StorePath: snapDir})
		if err != nil {
			log.Fatal(err)
		}
		return eng
	})
	if rep.SnapshotBootSec > 0 {
		rep.SpeedupVsCold = rep.ColdBootSec / rep.SnapshotBootSec
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	encoder := json.NewEncoder(f)
	encoder.SetIndent("", "  ")
	if err := encoder.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d graphs: cold %.2fs, wal %.2fs, snapshot %.2fs (%.1f× vs cold) → %s",
		rep.Graphs, rep.ColdBootSec, rep.WALBootSec, rep.SnapshotBootSec, rep.SpeedupVsCold, *out)
	if rep.SnapshotBootSec >= rep.ColdBootSec {
		log.Fatalf("snapshot+WAL replay (%.2fs) did not beat cold re-registration (%.2fs)",
			rep.SnapshotBootSec, rep.ColdBootSec)
	}
}

// buildStore registers the fleet into a store-backed engine, applies
// a burst of live patches, and optionally compacts before closing. It
// returns the registration and snapshot wall times.
func buildStore(dir string, fleet []named, patches int, compact bool) (regSec, snapSec float64) {
	eng, err := engine.Open(engine.Options{MaxClosures: len(fleet) + 8, StorePath: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	start := time.Now()
	for _, nd := range fleet {
		// The engine takes ownership; clone so the generator's graphs
		// stay reusable for the other store.
		if err := eng.Register(nd.name, nd.g.Clone()); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < patches; i++ {
		nd := fleet[i%len(fleet)]
		// Each earlier round already grew this graph by one node; the
		// fresh node's ID is the engine copy's current count, not the
		// pristine fleet graph's.
		grown := i / len(fleet)
		if _, err := eng.ApplyPatch(nd.name, &graph.Patch{
			AddNodes: []graph.Node{{Label: "patched", Weight: 1,
				Content: fmt.Sprintf("live patch %d applied during the burn-in burst", i)}},
			AddEdges: [][2]graph.NodeID{{0, graph.NodeID(nd.g.NumNodes() + grown)}},
		}); err != nil {
			log.Fatal(err)
		}
	}
	regSec = time.Since(start).Seconds()
	if compact {
		start = time.Now()
		if _, err := eng.Snapshot(); err != nil {
			log.Fatal(err)
		}
		snapSec = time.Since(start).Seconds()
	}
	return regSec, snapSec
}

// timeBoot measures fn until the returned engine is ready to serve.
func timeBoot(label string, fn func() *engine.Engine) float64 {
	start := time.Now()
	eng := fn()
	sec := time.Since(start).Seconds()
	if eng.Catalog().Len() == 0 {
		log.Fatalf("%s: booted an empty catalog", label)
	}
	eng.Close()
	log.Printf("%-22s %.3fs (%d graphs)", label, sec, eng.Catalog().Len())
	return sec
}

// dirBytes sums the file sizes under dir.
func dirBytes(dir string) int64 {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	return total
}
