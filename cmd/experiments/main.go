// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6 of Fan et al., PVLDB 2010):
//
//	experiments -exp table2          # Table 2: data sets and skeletons
//	experiments -exp table3          # Table 3: accuracy & scalability, Web archives
//	experiments -exp fig5a           # Fig. 5(a): accuracy vs pattern size m
//	experiments -exp fig5b           # Fig. 5(b): accuracy vs noise rate
//	experiments -exp fig5c           # Fig. 5(c): accuracy vs threshold ξ
//	experiments -exp fig6a|fig6b|fig6c  # Fig. 6: running times of the same sweeps
//	experiments -exp all             # everything, in paper order
//
// -scale trades fidelity for speed: 1.0 approximates the paper's sizes
// (m up to 800, sites in the thousands of pages); the default 0.25 runs
// in a few minutes on a laptop. Results print as aligned text tables; see
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"graphmatch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table2, table3, fig5a, fig5b, fig5c, fig6a, fig6b, fig6c, ablation, baselines, all")
	scale := flag.Float64("scale", 0.25, "workload scale relative to the paper (1.0 = paper-sized)")
	seed := flag.Int64("seed", 2010, "random seed for all generators")
	numData := flag.Int("graphs", 0, "data graphs per synthetic point (default: 15 scaled)")
	csvDir := flag.String("csv", "", "also write results as CSV files into this directory")
	flag.Parse()

	r := &runner{scale: *scale, seed: *seed, numData: *numData, csvDir: *csvDir}
	if r.csvDir != "" {
		if err := os.MkdirAll(r.csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	switch *exp {
	case "table2":
		r.table2()
	case "table3":
		r.table3()
	case "fig5a":
		r.fig5a()
	case "fig5b":
		r.fig5b()
	case "fig5c":
		r.fig5c()
	case "fig6a":
		r.fig6a()
	case "fig6b":
		r.fig6b()
	case "fig6c":
		r.fig6c()
	case "ablation":
		r.ablation()
	case "baselines":
		r.baselines()
	case "all":
		r.table2()
		r.table3()
		r.fig5a()
		r.fig5b()
		r.fig5c()
		r.fig6a()
		r.fig6b()
		r.fig6c()
		r.ablation()
		r.baselines()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

type runner struct {
	scale   float64
	seed    int64
	numData int
	csvDir  string

	sites   []*experiments.SiteData
	siteCfg experiments.WebConfig

	// Sweep memos: each figure pair (5x, 6x) reports the same runs, once
	// as accuracy and once as time.
	sizePts, noisePts, xiPts []experiments.SynPoint
}

func (r *runner) scaled(n int) int {
	v := int(float64(n) * r.scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (r *runner) data() int {
	if r.numData > 0 {
		return r.numData
	}
	n := r.scaled(15)
	if n < 3 {
		n = 3
	}
	return n
}

// webSites lazily generates the three site archives (shared by Table 2
// and Table 3).
func (r *runner) webSites() ([]*experiments.SiteData, experiments.WebConfig) {
	if r.sites == nil {
		r.siteCfg = experiments.WebConfig{
			// Paper sizes: 20000 / 5400 / 7000 pages.
			Pages:     [3]int{r.scaled(20000), r.scaled(5400), r.scaled(7000)},
			Versions:  11,
			Seed:      r.seed,
			MCSBudget: 5 * time.Second,
		}
		start := time.Now()
		fmt.Printf("generating web archives (scale %.2f)...\n", r.scale)
		r.sites = experiments.GenerateSites(r.siteCfg)
		fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	return r.sites, r.siteCfg
}

func (r *runner) table2() {
	sites, _ := r.webSites()
	fmt.Println("=== Table 2: Web graphs and skeletons ===")
	fmt.Print(experiments.FormatTable2(experiments.Table2(sites)))
	fmt.Println()
}

func (r *runner) table3() {
	sites, cfg := r.webSites()
	fmt.Println("=== Table 3: accuracy and scalability on real-life-style data ===")
	start := time.Now()
	res := experiments.Table3(sites, cfg)
	fmt.Print(experiments.FormatTable3(res))
	fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	r.writeCSV("table3.csv", func(f *os.File) error {
		return experiments.WriteTable3CSV(f, res)
	})
}

// writeCSV emits one CSV artifact when -csv is set.
func (r *runner) writeCSV(name string, write func(*os.File) error) {
	if r.csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(r.csvDir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

func (r *runner) writeSeriesCSV(name, xLabel string, pts []experiments.SynPoint) {
	algs := append(append([]experiments.Algorithm{}, experiments.OurAlgorithms...), experiments.GraphSim)
	r.writeCSV(name, func(f *os.File) error {
		return experiments.WriteSeriesCSV(f, xLabel, pts, algs)
	})
}

// Synthetic sweeps. Paper settings: m ∈ 100..800 (5a/6a);
// m = 500, noise ∈ 2..20 (5b/6b); m = 500, ξ ∈ 0.5..1.0 (5c/6c).

func (r *runner) sizes() []int {
	var out []int
	for _, m := range []int{100, 200, 300, 400, 500, 600, 700, 800} {
		out = append(out, r.scaled(m))
	}
	return out
}

func (r *runner) fig5a() { r.sizeSweep(false) }
func (r *runner) fig6a() { r.sizeSweep(true) }

func (r *runner) sizeSweep(seconds bool) {
	if r.sizePts == nil {
		r.sizePts = experiments.SweepSize(r.sizes(), r.seed, r.data())
		r.writeSeriesCSV("fig5a_6a_size.csv", "m", r.sizePts)
	}
	pts := r.sizePts
	algs := append(append([]experiments.Algorithm{}, experiments.OurAlgorithms...), experiments.GraphSim)
	if seconds {
		fmt.Print(experiments.FormatSeries("=== Fig. 6(a): time (s) vs size m ===", "m", pts, algs, true))
	} else {
		fmt.Print(experiments.FormatSeries("=== Fig. 5(a): accuracy (%) vs size m ===", "m", pts, experiments.OurAlgorithms, false))
	}
	fmt.Println()
}

func (r *runner) fig5b() { r.noiseSweep(false) }
func (r *runner) fig6b() { r.noiseSweep(true) }

func (r *runner) noiseSweep(seconds bool) {
	if r.noisePts == nil {
		noises := []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
		r.noisePts = experiments.SweepNoise(r.scaled(500), noises, r.seed, r.data())
		r.writeSeriesCSV("fig5b_6b_noise.csv", "noise_pct", r.noisePts)
	}
	pts := r.noisePts
	algs := append(append([]experiments.Algorithm{}, experiments.OurAlgorithms...), experiments.GraphSim)
	if seconds {
		fmt.Print(experiments.FormatSeries("=== Fig. 6(b): time (s) vs noise rate (%) ===", "noise%", pts, algs, true))
	} else {
		fmt.Print(experiments.FormatSeries("=== Fig. 5(b): accuracy (%) vs noise rate (%) ===", "noise%", pts, experiments.OurAlgorithms, false))
	}
	fmt.Println()
}

func (r *runner) fig5c() { r.xiSweep(false) }
func (r *runner) fig6c() { r.xiSweep(true) }

func (r *runner) ablation() {
	fmt.Println("=== Ablations (DESIGN.md §5) ===")
	rows := experiments.RunAblations(r.scaled(400), r.seed)
	fmt.Print(experiments.FormatAblations(rows))
	fmt.Println()
}

func (r *runner) baselines() {
	fmt.Println("=== Extended baseline study (beyond Table 3) ===")
	cfg := experiments.SynConfig{M: r.scaled(120), Noise: 10, Xi: 0.75, NumData: r.data(), Seed: r.seed}
	rows := experiments.RunBaselines(cfg)
	fmt.Print(experiments.FormatBaselines(rows, cfg))
	fmt.Println()
}

func (r *runner) xiSweep(seconds bool) {
	if r.xiPts == nil {
		xis := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
		r.xiPts = experiments.SweepXi(r.scaled(500), xis, r.seed, r.data())
		r.writeSeriesCSV("fig5c_6c_xi.csv", "xi", r.xiPts)
	}
	pts := r.xiPts
	algs := append(append([]experiments.Algorithm{}, experiments.OurAlgorithms...), experiments.GraphSim)
	if seconds {
		fmt.Print(experiments.FormatSeries("=== Fig. 6(c): time (s) vs similarity threshold ξ ===", "xi", pts, algs, true))
	} else {
		fmt.Print(experiments.FormatSeries("=== Fig. 5(c): accuracy (%) vs similarity threshold ξ ===", "xi", pts, experiments.OurAlgorithms, false))
	}
	fmt.Println()
}
