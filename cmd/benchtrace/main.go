// Command benchtrace measures what request tracing costs on the
// benchengine workload and emits BENCH_trace.json. Four configurations
// run the same fixed request pool:
//
//	baseline  Options{NoTrace, NoMetrics}: the pre-tracing engine (the
//	          PR-6 NoMetrics baseline configuration)
//	off       tracing available (flight recorder allocated) but this
//	          traffic untraced — the hot path of a server whose callers
//	          did not opt in, which must stay free
//	on        every request runs under a root span, the full span tree
//	          recorded into the flight recorder
//	explain   tracing on plus the ?explain=1 work: a snapshot and
//	          stage derivation per request
//
// Configurations alternate round-robin across -rounds passes (so CPU
// frequency drift hits all of them equally) and the best pass per
// configuration counts. The run exits non-zero when the off/baseline
// throughput ratio falls below -min-off-ratio: threading trace hooks
// through every layer must not slow down untraced traffic.
//
//	benchtrace -out BENCH_trace.json -requests 4000 -clients 8
//	benchtrace -short        # CI-sized run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/trace"
)

// report is the BENCH_trace.json schema.
type report struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	Rounds     int    `json:"rounds"`
	Short      bool   `json:"short"`

	BaselineRPS float64 `json:"baseline_rps"`
	OffRPS      float64 `json:"off_rps"`
	OnRPS       float64 `json:"on_rps"`
	ExplainRPS  float64 `json:"explain_rps"`

	// Ratios are against the untraced baseline; ratio_off gates CI.
	RatioOff     float64 `json:"ratio_off"`
	RatioOn      float64 `json:"ratio_on"`
	RatioExplain float64 `json:"ratio_explain"`
	MinOffRatio  float64 `json:"min_off_ratio"`
	Pass         bool    `json:"pass"`

	// TracesRecorded and SpansRecorded sanity-check that the "on" and
	// "explain" passes actually traced (a zero here would mean the
	// ratios measured nothing).
	TracesRecorded uint64 `json:"traces_recorded"`
}

// mode selects how much tracing work one configuration does.
type mode int

const (
	modeBaseline mode = iota // NoTrace engine, plain contexts
	modeOff                  // recorder on, this traffic untraced
	modeOn                   // root span per request
	modeExplain              // root span + snapshot + stage derivation
)

var modeNames = map[mode]string{
	modeBaseline: "baseline", modeOff: "off", modeOn: "on", modeExplain: "explain",
}

func main() {
	out := flag.String("out", "BENCH_trace.json", "output path")
	totalReqs := flag.Int("requests", 4000, "match requests per pass")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	rounds := flag.Int("rounds", 3, "alternating passes per configuration (best counts)")
	minOffRatio := flag.Float64("min-off-ratio", 0.95, "fail when off/baseline throughput falls below this")
	short := flag.Bool("short", false, "CI-sized run (fewer requests, 2 rounds)")
	flag.Parse()
	if *short {
		*totalReqs = 1200
		if *rounds > 2 {
			*rounds = 2
		}
	}

	best := map[mode]float64{}
	var traced uint64
	for round := 0; round < *rounds; round++ {
		for _, m := range []mode{modeBaseline, modeOff, modeOn, modeExplain} {
			rps, n := runPass(m, *workers, *clients, *totalReqs)
			if rps > best[m] {
				best[m] = rps
			}
			traced += n
			log.Printf("round %d %-8s %8.0f req/s", round+1, modeNames[m], rps)
		}
	}

	rep := report{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Clients:        *clients,
		Requests:       *totalReqs,
		Rounds:         *rounds,
		Short:          *short,
		BaselineRPS:    round2(best[modeBaseline]),
		OffRPS:         round2(best[modeOff]),
		OnRPS:          round2(best[modeOn]),
		ExplainRPS:     round2(best[modeExplain]),
		RatioOff:       round4(best[modeOff] / best[modeBaseline]),
		RatioOn:        round4(best[modeOn] / best[modeBaseline]),
		RatioExplain:   round4(best[modeExplain] / best[modeBaseline]),
		MinOffRatio:    *minOffRatio,
		TracesRecorded: traced,
	}
	rep.Pass = rep.RatioOff >= *minOffRatio && traced > 0

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	f.Close()
	log.Printf("baseline %.0f, off %.0f (×%.3f), on %.0f (×%.3f), explain %.0f (×%.3f) req/s → %s",
		rep.BaselineRPS, rep.OffRPS, rep.RatioOff, rep.OnRPS, rep.RatioOn,
		rep.ExplainRPS, rep.RatioExplain, *out)
	if !rep.Pass {
		log.Fatalf("FAIL: tracing-off ratio %.3f below %.2f (tracing hooks slowed untraced traffic)",
			rep.RatioOff, *minOffRatio)
	}
}

// runPass opens a fresh engine in the mode's configuration, drives the
// benchengine workload through it, and returns the throughput plus the
// number of traces it recorded.
func runPass(m mode, workers, clients, totalReqs int) (rps float64, traced uint64) {
	opts := engine.Options{Workers: workers, NoMetrics: true}
	if m == modeBaseline {
		opts.NoTrace = true
	}
	eng := engine.New(opts)
	defer eng.Close()

	names := make([]string, 3)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
		if err := eng.Register(names[i], randomGraph(400, 4, int64(i+1))); err != nil {
			log.Fatal(err)
		}
	}
	algos := []engine.Algorithm{engine.MaxCard, engine.MaxCard11, engine.MaxSim, engine.MaxSim11}
	pool := make([]engine.Request, 48)
	for i := range pool {
		name := names[i%len(names)]
		data, err := eng.Catalog().Get(name)
		if err != nil {
			log.Fatal(err)
		}
		pool[i] = engine.Request{
			Pattern:   carvePattern(data, 10, int64(100+i)),
			GraphName: name,
			Algo:      algos[i%len(algos)],
			Xi:        0.9,
		}
	}

	rec := eng.Tracer()
	perClient := totalReqs / clients
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				req := pool[rng.Intn(len(pool))]
				ctx := context.Background()
				var sp trace.Span
				if m >= modeOn {
					// What the httpapi shell does per request: derive a
					// trace id from the request identity and open the
					// root span.
					id := fmt.Sprintf("%08x%08x", c, i)
					sp = rec.StartTrace(trace.DeriveTraceID(id), "bench.match", id)
					ctx = trace.ContextWithSpan(ctx, sp)
				}
				if res := eng.Match(ctx, req); res.Err != nil {
					log.Fatal(res.Err)
				}
				if m == modeExplain {
					// The ?explain=1 work: snapshot the live tree and
					// derive the stage breakdown before sealing.
					if td, ok := sp.Snapshot(); ok && len(td.Stages()) == 0 {
						log.Fatalf("explain pass produced no stages")
					}
				}
				sp.End()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if rec != nil {
		traced = rec.Stats().Completed
	}
	return float64(perClient*clients) / elapsed.Seconds(), traced
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
func round4(v float64) float64 { return float64(int64(v*10000+0.5)) / 10000 }

// randomGraph and carvePattern mirror the benchengine workload.
func randomGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("L%d", i%16))
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func carvePattern(g *graph.Graph, size int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.NodeID]bool{}
	var keep []graph.NodeID
	for len(keep) < size {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}
