// Command benchpatch measures the incremental mutation path against
// the rebuild-everything story it replaces, on the serving-scale
// bow-tie graph of internal/syngen (one big SCC core, singleton
// tendrils — the candidate-sparse closure regime).
//
// Scenario A (catalog): the same deterministic patch storm — tendril
// edge inserts, deletes of earlier inserts, node appends — is applied
// to two catalogs, one maintaining cached closures by delta update
// (the default) and one with delta maintenance disabled
// (catalog.WithDeltaBudget(-1)), so every patch drops and eagerly
// rebuilds the closure, exactly the pre-incremental behaviour. After
// both storms the catalogs must agree: node/edge counts and a large
// random sample of Reachable pairs (biased toward patched endpoints)
// are compared, and any divergence is fatal — a fast wrong closure is
// worthless.
//
// Scenario B (engine): concurrent writers storm one graph through
// engine.ApplyPatch with patch coalescing on versus off, both on a
// durable store, measuring the end-to-end acknowledged patches/sec —
// the group-commit win (one WAL append + one closure update per
// batch).
//
// benchpatch emits BENCH_patch.json and fails when incremental
// maintenance does not beat rebuild by at least 5× (full run; the
// CI-sized -short run only requires it to win).
//
//	benchpatch -out BENCH_patch.json          # full run (100k-node graph)
//	benchpatch -short -out BENCH_patch.json   # CI-sized (20k-node graph)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"graphmatch/internal/catalog"
	"graphmatch/internal/closure"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/syngen"
)

// report is the BENCH_patch.json schema.
type report struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Short      bool   `json:"short"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Patches    int    `json:"patches"`
	// Scenario A: one writer, catalog-level, warm full closure.
	IncrementalSec    float64 `json:"incremental_sec"`
	RebuildSec        float64 `json:"rebuild_sec"`
	IncrementalPerSec float64 `json:"incremental_patches_per_sec"`
	RebuildPerSec     float64 `json:"rebuild_patches_per_sec"`
	// Speedup is RebuildSec / IncrementalSec — the headline number.
	Speedup float64 `json:"speedup"`
	// DeltaPatches counts storm patches the incremental catalog served
	// by delta maintenance (the rest fell back to rebuild).
	DeltaPatches int `json:"delta_patches"`
	// ReachSamples is the size of the post-storm equivalence sample; a
	// divergence aborts the run before the report is written.
	ReachSamples int `json:"reach_samples"`
	// Scenario B: concurrent writers, engine-level, durable store.
	Writers           int     `json:"writers"`
	EnginePatches     int     `json:"engine_patches"`
	CoalescedPerSec   float64 `json:"coalesced_patches_per_sec"`
	UncoalescedPerSec float64 `json:"uncoalesced_patches_per_sec"`
	CoalesceSpeedup   float64 `json:"coalesce_speedup"`
	PatchBatches      uint64  `json:"patch_batches"`
	PatchesCoalesced  uint64  `json:"patches_coalesced"`
}

func main() {
	out := flag.String("out", "BENCH_patch.json", "output path")
	nodes := flag.Int("nodes", 100000, "bow-tie graph size (scenario A)")
	patches := flag.Int("patches", 150, "storm length (scenario A)")
	writers := flag.Int("writers", 8, "concurrent patch writers (scenario B)")
	perWriter := flag.Int("per-writer", 40, "patches per writer (scenario B)")
	short := flag.Bool("short", false, "CI-sized run: smaller graph, shorter storm")
	flag.Parse()
	if *short {
		*nodes = 20000
		*patches = 40
		*perWriter = 20
	}

	g := syngen.GenerateLarge(syngen.LargeConfig{Nodes: *nodes, AvgDeg: 5, CoreFraction: 0.9, Seed: 42})
	ins, outs, cores := classify(g)
	log.Printf("bow-tie: %d nodes, %d edges (%d IN, %d OUT, %d core)",
		g.NumNodes(), g.NumEdges(), len(ins), len(outs), len(cores))
	storm := buildStorm(g, ins, outs, cores, *patches)

	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short,
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Patches:    len(storm),
		Writers:    *writers,
	}

	// Scenario A. Registration and the first closure build are untimed
	// warm-up: the storm measures steady-state mutation cost only. The
	// tier is pinned sparse — the regime the full-size graph selects
	// anyway — so the CI-sized -short graph (which auto would classify
	// dense) measures the same maintenance path as the full run;
	// dense-tier row maintenance is quickchecked in the catalog tests.
	inc := catalog.New(8, catalog.WithTierPolicy(closure.PolicySparse))
	reb := catalog.New(8, catalog.WithTierPolicy(closure.PolicySparse), catalog.WithDeltaBudget(-1))
	for _, c := range []*catalog.Catalog{inc, reb} {
		if err := c.Register("web", g.Clone()); err != nil {
			log.Fatal(err)
		}
		if _, _, _, err := c.GetWithIndex("web", 0); err != nil {
			log.Fatal(err)
		}
	}
	rep.IncrementalSec = applyStorm(inc, storm, "incremental")
	rep.RebuildSec = applyStorm(reb, storm, "rebuild")
	rep.IncrementalPerSec = float64(len(storm)) / rep.IncrementalSec
	rep.RebuildPerSec = float64(len(storm)) / rep.RebuildSec
	rep.Speedup = rep.RebuildSec / rep.IncrementalSec
	st := inc.Stats()
	rep.DeltaPatches = int(st.PatchesIncremental)
	if rs := reb.Stats(); rs.PatchesIncremental != 0 {
		log.Fatalf("rebuild catalog took the delta path %d times — WithDeltaBudget(-1) broken", rs.PatchesIncremental)
	}

	// Equivalence: the two catalogs must be indistinguishable after the
	// storm. Divergence is a correctness bug, not a benchmark result.
	rep.ReachSamples = verifyEquivalence(inc, reb, storm)
	log.Printf("equivalence: %d sampled reachability pairs agree (%d/%d patches incremental)",
		rep.ReachSamples, rep.DeltaPatches, len(storm))

	// Scenario B.
	rep.EnginePatches = *writers * *perWriter
	rep.UncoalescedPerSec = engineStorm(*writers, *perWriter, false, &rep)
	rep.CoalescedPerSec = engineStorm(*writers, *perWriter, true, &rep)
	rep.CoalesceSpeedup = rep.CoalescedPerSec / rep.UncoalescedPerSec

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("catalog: incremental %.1f patches/s vs rebuild %.1f patches/s (%.1f×); engine: coalesced %.0f/s vs direct %.0f/s (%.1f×) → %s",
		rep.IncrementalPerSec, rep.RebuildPerSec, rep.Speedup,
		rep.CoalescedPerSec, rep.UncoalescedPerSec, rep.CoalesceSpeedup, *out)

	floor := 5.0
	if *short {
		floor = 1.0 // CI boxes are noisy; the full run enforces the 5× bar
	}
	if rep.Speedup < floor {
		log.Fatalf("incremental maintenance speedup %.2f× is below the %.0f× floor", rep.Speedup, floor)
	}
}

// classify splits the bow-tie's nodes by role. IN-tendril nodes never
// receive edges and OUT-tendril nodes never emit them (singleton SCCs
// by construction); everything with traffic both ways is core. Edges
// from IN or into OUT can therefore never merge SCCs — the storm is
// built from them so the delta path stays applicable, mirroring the
// dominant production mutation (a new page linking into the site).
func classify(g *graph.Graph) (ins, outs, cores []graph.NodeID) {
	for v := 0; v < g.NumNodes(); v++ {
		id := graph.NodeID(v)
		switch {
		case g.InDegree(id) == 0:
			ins = append(ins, id)
		case g.OutDegree(id) == 0:
			outs = append(outs, id)
		default:
			cores = append(cores, id)
		}
	}
	return ins, outs, cores
}

// buildStorm composes a deterministic mutation storm: tendril-to-core
// and core-to-tendril inserts, deletes of earlier feeder inserts, and
// the occasional node append (a fresh sink page linked from the core).
// Both catalogs replay the identical sequence.
//
// Deletes unlink IN→core feeder edges only: their recompute cone is a
// single singleton component. Deleting an edge out of (or inside) the
// big core forces recomputing the core's row and its whole ancestor
// tendril — genuinely comparable to a rebuild, so the budget correctly
// falls back there; that path is covered by the catalog equivalence
// tests and would only measure rebuild-vs-rebuild here.
func buildStorm(g *graph.Graph, ins, outs, cores []graph.NodeID, n int) []*graph.Patch {
	rng := rand.New(rand.NewSource(7))
	nodeCount := g.NumNodes()
	var added [][2]graph.NodeID // feeder inserts not yet deleted, oldest first
	storm := make([]*graph.Patch, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%3 == 2 && len(added) > 0:
			// Unlink the oldest surviving feeder insert.
			e := added[0]
			added = added[1:]
			storm = append(storm, &graph.Patch{DelEdges: [][2]graph.NodeID{e}})
		case i%10 == 9:
			// Append a page and link it from the core: the new node is a
			// sink, a fresh singleton in the condensation.
			nid := graph.NodeID(nodeCount)
			nodeCount++
			storm = append(storm, &graph.Patch{
				AddNodes: []graph.Node{{Label: "new", Weight: 1, Content: fmt.Sprintf("page added by storm patch %d", i)}},
				AddEdges: [][2]graph.NodeID{{cores[rng.Intn(len(cores))], nid}},
			})
		case i%2 == 0:
			e := [2]graph.NodeID{ins[rng.Intn(len(ins))], cores[rng.Intn(len(cores))]}
			added = append(added, e)
			storm = append(storm, &graph.Patch{AddEdges: [][2]graph.NodeID{e}})
		default:
			// Core→sink insert: updates every ancestor row of the core,
			// the widest cone the delta path serves. Never deleted (see
			// above).
			e := [2]graph.NodeID{cores[rng.Intn(len(cores))], outs[rng.Intn(len(outs))]}
			storm = append(storm, &graph.Patch{AddEdges: [][2]graph.NodeID{e}})
		}
	}
	return storm
}

// applyStorm replays the storm against one catalog and returns the
// wall time. Every patch must succeed — the sequence deletes only
// edges it inserted.
func applyStorm(c *catalog.Catalog, storm []*graph.Patch, label string) float64 {
	start := time.Now()
	for i, p := range storm {
		if _, err := c.Apply("web", p); err != nil {
			log.Fatalf("%s: storm patch %d: %v", label, i, err)
		}
	}
	sec := time.Since(start).Seconds()
	log.Printf("%-12s %d patches in %.2fs (%.1f/s)", label, len(storm), sec, float64(len(storm))/sec)
	return sec
}

// verifyEquivalence cross-checks the two post-storm catalogs: graph
// sizes, then sampled Reachable pairs — half uniform, half anchored on
// nodes the storm touched, where a stale closure would actually show.
func verifyEquivalence(inc, reb *catalog.Catalog, storm []*graph.Patch) int {
	gi, ri, err := inc.GetWithReach("web", 0)
	if err != nil {
		log.Fatal(err)
	}
	gr, rr, err := reb.GetWithReach("web", 0)
	if err != nil {
		log.Fatal(err)
	}
	if gi.NumNodes() != gr.NumNodes() || gi.NumEdges() != gr.NumEdges() {
		log.Fatalf("graphs diverged: incremental %d/%d vs rebuild %d/%d",
			gi.NumNodes(), gi.NumEdges(), gr.NumNodes(), gr.NumEdges())
	}
	var touched []graph.NodeID
	for _, p := range storm {
		for _, e := range p.AddEdges {
			touched = append(touched, e[0], e[1])
		}
		for _, e := range p.DelEdges {
			touched = append(touched, e[0], e[1])
		}
	}
	rng := rand.New(rand.NewSource(99))
	n := gi.NumNodes()
	const samples = 4000
	for i := 0; i < samples; i++ {
		var u, v graph.NodeID
		if i%2 == 0 && len(touched) > 0 {
			u = touched[rng.Intn(len(touched))]
		} else {
			u = graph.NodeID(rng.Intn(n))
		}
		v = graph.NodeID(rng.Intn(n))
		if a, b := ri.Reachable(u, v), rr.Reachable(u, v); a != b {
			log.Fatalf("closures diverged: Reachable(%d, %d) = %v incremental, %v rebuilt", u, v, a, b)
		}
	}
	return samples
}

// engineStorm measures acknowledged end-to-end patch throughput on a
// durable engine under concurrent writers, with or without patch
// coalescing. Every writer inserts distinct IN→core edges, so any
// interleaving (and any batch composition) is valid.
func engineStorm(writers, perWriter int, coalesce bool, rep *report) float64 {
	dir, err := os.MkdirTemp("", "benchpatch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	g := syngen.GenerateLarge(syngen.LargeConfig{Nodes: 5000, AvgDeg: 5, CoreFraction: 0.9, Seed: 43})
	ins, _, cores := classify(g)
	opts := engine.Options{Workers: 2, StorePath: dir, NoMetrics: true}
	if coalesce {
		opts.PatchCoalesceCount = 64
	}
	eng, err := engine.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Register("web", g); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Catalog().Reach("web", 0); err != nil {
		log.Fatal(err)
	}
	// Untimed warm-up: fault in the WAL path and the patched-closure
	// machinery so the timed section measures steady state, not first
	// touch; then clear the allocation debt scenario A left behind.
	for i := 0; i < 4; i++ {
		if _, err := eng.ApplyPatch("web", &graph.Patch{
			AddEdges: [][2]graph.NodeID{{ins[len(ins)-1-i], cores[len(cores)-1-i]}},
		}); err != nil {
			log.Fatal(err)
		}
	}
	runtime.GC()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				idx := w*perWriter + i
				e := [2]graph.NodeID{ins[idx%len(ins)], cores[(idx/len(ins))%len(cores)]}
				if _, err := eng.ApplyPatch("web", &graph.Patch{AddEdges: [][2]graph.NodeID{{e[0], e[1]}}}); err != nil {
					errs[w] = fmt.Errorf("writer %d patch %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	sec := time.Since(start).Seconds()
	total := writers * perWriter
	mode := "direct"
	if coalesce {
		mode = "coalesced"
		s := eng.Stats()
		rep.PatchBatches = s.PatchBatches
		rep.PatchesCoalesced = s.PatchesCoalesced
	}
	log.Printf("engine %-10s %d writers × %d patches in %.2fs (%.0f/s)",
		mode, writers, perWriter, sec, float64(total)/sec)
	return float64(total) / sec
}
