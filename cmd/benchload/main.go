// Command benchload is the load-shedding and instrumentation-overhead
// benchmark of the serving stack. It stands up the full HTTP stack
// (httpapi over engine) in-process, measures sustainable capacity
// closed-loop, then drives open-loop phases at 1× and 5× that capacity
// and records what the overload protection does: shed rate, error
// rate, and the latency distribution of the served requests.
//
//	go run ./cmd/benchload -out BENCH_load.json
//	go run ./cmd/benchload -short   # CI-sized phases
//
// Three properties gate the run (non-zero exit when violated):
//
//  1. overhead: closed-loop throughput with full instrumentation must
//     stay within 10% of an Options.NoMetrics engine (ratio ≥ 0.9);
//  2. shedding: at 5× capacity the admission controller must shed a
//     non-zero fraction instead of queueing without bound;
//  3. bounded latency: the p99 of requests the 5× phase *served* must
//     stay under the bound (default 1s) — load shedding is working
//     precisely when excess load turns into fast 429s, not into a
//     latency collapse of the admitted work.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/httpapi"
)

// pathGraph and cyclePattern mirror the overload-test fixtures: an
// unsatisfiable k-cycle decide against a directed path gives a
// deterministic, tunable unit of matcher work.
func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("P")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g.Finish()
	return g
}

func cyclePattern(k int) *graph.Graph {
	g := graph.New(k)
	for i := 0; i < k; i++ {
		g.AddNode("P")
	}
	for i := 0; i < k; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%k))
	}
	g.Finish()
	return g
}

// matchBody renders the canonical slow request; the ξ salt defeats
// coalescing without changing admissibility, so every request is real
// matcher work.
func matchBody(salt uint64) []byte {
	xi := 0.5 + float64(salt%1000)*1e-9
	body, _ := json.Marshal(map[string]any{
		"pattern": cyclePattern(3),
		"graph":   "path",
		"algo":    "decide",
		"xi":      xi,
	})
	return body
}

type serverConfig struct {
	workers   int
	noMetrics bool
	graphSize int
}

// newServer builds the full serving stack the way phomd wires it:
// admission control at queue+workers, a request timeout, and (unless
// noMetrics) every layer instrumented.
func newServer(cfg serverConfig) (*httptest.Server, *engine.Engine) {
	queue := 4 * cfg.workers
	e := engine.New(engine.Options{
		Workers:    cfg.workers,
		QueueDepth: queue,
		MaxPending: queue + cfg.workers,
		NoMetrics:  cfg.noMetrics,
	})
	if err := e.Register("path", pathGraph(cfg.graphSize)); err != nil {
		log.Fatalf("benchload: %v", err)
	}
	ts := httptest.NewServer(httpapi.NewWithOptions(e, httpapi.Options{
		RequestTimeout: 2 * time.Second,
	}))
	return ts, e
}

func newClient() *http.Client {
	tr := &http.Transport{MaxIdleConns: 512, MaxIdleConnsPerHost: 512}
	return &http.Client{Transport: tr}
}

// closedLoop drives `clients` concurrent request loops for `d` and
// returns the completed-request throughput (every request either 200
// or — rare at closed loop — 429/504, all counted as completions; the
// OK rate is returned for sanity).
func closedLoop(url string, clients int, d time.Duration) (rps float64, okRate float64) {
	var done, ok atomic.Uint64
	var salt atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := newClient()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(url+"/v1/match", "application/json",
					bytes.NewReader(matchBody(salt.Add(1))))
				if err == nil {
					drain(resp)
					if resp.StatusCode == http.StatusOK {
						ok.Add(1)
					}
				}
				done.Add(1)
			}
		}()
	}
	start := time.Now()
	time.Sleep(d)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	total := done.Load()
	if total == 0 {
		return 0, 0
	}
	return float64(total) / elapsed, float64(ok.Load()) / float64(total)
}

func drain(resp *http.Response) {
	var buf [512]byte
	for {
		if _, err := resp.Body.Read(buf[:]); err != nil {
			break
		}
	}
	resp.Body.Close()
}

// phaseResult is one open-loop phase of BENCH_load.json.
type phaseResult struct {
	Name      string  `json:"name"`
	TargetRPS float64 `json:"target_rps"`
	Sent      int     `json:"sent"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed_429"`
	Timeout   int     `json:"timeout_504"`
	OtherErr  int     `json:"other_errors"`
	ShedRate  float64 `json:"shed_rate"`
	P50MS     float64 `json:"served_p50_ms"`
	P99MS     float64 `json:"served_p99_ms"`
	MaxMS     float64 `json:"served_max_ms"`
	ShedP99MS float64 `json:"shed_p99_ms"`
}

// openLoop fires requests at a fixed arrival rate (no waiting for
// responses — the arrival process is independent of server state,
// which is what makes overload visible) and classifies every outcome.
func openLoop(name, url string, rate float64, d time.Duration) phaseResult {
	client := newClient()
	type outcome struct {
		code int
		ms   float64
	}
	var mu sync.Mutex
	var outcomes []outcome
	var wg sync.WaitGroup
	var salt atomic.Uint64
	fire := func() {
		defer wg.Done()
		start := time.Now()
		resp, err := client.Post(url+"/v1/match", "application/json",
			bytes.NewReader(matchBody(salt.Add(1))))
		ms := float64(time.Since(start).Microseconds()) / 1000
		code := 0
		if err == nil {
			code = resp.StatusCode
			drain(resp)
		}
		mu.Lock()
		outcomes = append(outcomes, outcome{code, ms})
		mu.Unlock()
	}
	// Self-pacing generator with catch-up: each wake-up fires however
	// many arrivals the schedule is owed, so the offered rate holds even
	// when goroutine scheduling jitters under overload (a plain ticker
	// silently drops ticks and under-delivers exactly when overload
	// makes the measurement interesting).
	start := time.Now()
	sent := 0
	for {
		elapsed := time.Since(start)
		if elapsed >= d {
			break
		}
		due := int(elapsed.Seconds()*rate) + 1
		for ; sent < due; sent++ {
			wg.Add(1)
			go fire()
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()

	res := phaseResult{Name: name, TargetRPS: rate, Sent: sent}
	var served, shed []float64
	for _, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			res.OK++
			served = append(served, o.ms)
		case http.StatusTooManyRequests:
			res.Shed++
			shed = append(shed, o.ms)
		case http.StatusGatewayTimeout:
			res.Timeout++
		default:
			res.OtherErr++
		}
	}
	if res.Sent > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Sent)
	}
	res.P50MS = percentile(served, 0.50)
	res.P99MS = percentile(served, 0.99)
	res.MaxMS = percentile(served, 1.0)
	res.ShedP99MS = percentile(shed, 0.99)
	return res
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// report is the BENCH_load.json document.
type report struct {
	Config struct {
		Workers   int     `json:"workers"`
		GraphSize int     `json:"graph_size"`
		PhaseSecs float64 `json:"phase_seconds"`
		Short     bool    `json:"short"`
	} `json:"config"`
	Capacity struct {
		InstrumentedRPS float64 `json:"instrumented_rps"`
		NoMetricsRPS    float64 `json:"no_metrics_rps"`
		OverheadRatio   float64 `json:"overhead_ratio"`
		ClosedLoopOK    float64 `json:"closed_loop_ok_rate"`
	} `json:"capacity"`
	Phases []phaseResult `json:"phases"`
	Gates  struct {
		OverheadOK     bool `json:"overhead_within_10pct"`
		ShedAt5x       bool `json:"shed_nonzero_at_5x"`
		P99BoundedAt5x bool `json:"p99_bounded_at_5x"`
	} `json:"gates"`
	Pass bool `json:"pass"`
}

func main() {
	out := flag.String("out", "BENCH_load.json", "report path")
	short := flag.Bool("short", false, "CI-sized phases (shorter, smaller graph)")
	workers := flag.Int("workers", 2, "engine worker-pool size")
	graphSize := flag.Int("graph-size", 140, "data-path length (request cost knob)")
	phaseSec := flag.Float64("phase", 3, "seconds per phase")
	p99Bound := flag.Float64("p99-bound", 1000, "gate: served p99 at 5x must stay under this many ms")
	flag.Parse()
	if *short {
		*phaseSec = 1
		*graphSize = 110
	}
	phase := time.Duration(*phaseSec * float64(time.Second))

	var rep report
	rep.Config.Workers = *workers
	rep.Config.GraphSize = *graphSize
	rep.Config.PhaseSecs = *phaseSec
	rep.Config.Short = *short

	// Closed-loop capacity, with and without instrumentation. The
	// NoMetrics engine is the baseline the 10% overhead budget is
	// measured against.
	log.Printf("measuring closed-loop capacity (instrumented)")
	tsI, engI := newServer(serverConfig{workers: *workers, graphSize: *graphSize})
	instRPS, okRate := closedLoop(tsI.URL, 2**workers, phase)
	rep.Capacity.InstrumentedRPS = round2(instRPS)
	rep.Capacity.ClosedLoopOK = round2(okRate)

	log.Printf("measuring closed-loop capacity (NoMetrics baseline)")
	tsN, engN := newServer(serverConfig{workers: *workers, graphSize: *graphSize, noMetrics: true})
	baseRPS, _ := closedLoop(tsN.URL, 2**workers, phase)
	tsN.Close()
	engN.Close()
	rep.Capacity.NoMetricsRPS = round2(baseRPS)
	if baseRPS > 0 {
		rep.Capacity.OverheadRatio = round3(instRPS / baseRPS)
	}

	// Open-loop phases against the instrumented server. Rates are
	// anchored to the measured capacity of this machine.
	log.Printf("open loop at 1x (%.0f rps) for %v", instRPS, phase)
	rep.Phases = append(rep.Phases, openLoop("1x", tsI.URL, instRPS, phase))
	log.Printf("open loop at 5x (%.0f rps) for %v", 5*instRPS, phase)
	p5 := openLoop("5x", tsI.URL, 5*instRPS, phase)
	rep.Phases = append(rep.Phases, p5)
	st := engI.Stats()
	log.Printf("engine after phases: executed %d, shed %d, errors %d", st.Executed, st.Shed, st.Errors)
	tsI.Close()
	engI.Close()

	rep.Gates.OverheadOK = rep.Capacity.OverheadRatio >= 0.9
	rep.Gates.ShedAt5x = p5.Shed > 0
	rep.Gates.P99BoundedAt5x = p5.OK > 0 && p5.P99MS < *p99Bound
	rep.Pass = rep.Gates.OverheadOK && rep.Gates.ShedAt5x && rep.Gates.P99BoundedAt5x

	data, _ := json.MarshalIndent(rep, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("benchload: %v", err)
	}
	fmt.Printf("%s\n", data)
	if !rep.Pass {
		log.Fatalf("benchload: gates failed (see %s)", *out)
	}
	log.Printf("benchload: all gates passed (%s)", *out)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
