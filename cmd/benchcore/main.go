// Command benchcore measures the matcher hot path the way the serving
// stack exercises it and emits a machine-readable snapshot, the
// companion of cmd/benchengine's end-to-end numbers:
//
//	benchcore -out BENCH_core.json
//
// Three layers are timed with testing.Benchmark against one shared,
// catalog-shaped fixture (a random data graph whose closure and
// closure rows are built once, as internal/catalog does for registered
// graphs):
//
//   - matcher setup with a shared index (the serving fast path) and
//     with a per-request row rebuild (what every request paid before
//     rows were shareable), whose ratio is the headline of the
//     zero-rebuild change;
//   - one full compMaxCard request under each reachability tier —
//     dense closure rows vs the candidate-sparse component index —
//     with both tiers' resident bytes, recording the memory/throughput
//     trade-off of the tiered reachability layer;
//   - a concurrent engine workload, reported as requests/sec.
//
// A second, separately reported scenario (-large-nodes, default 100k)
// registers a power-law graph with a strongly connected core through a
// real engine under the auto tier policy, runs matches against it, and
// compares the catalog's resident bytes to the dense per-node-rows
// projection 2·n²/8 — the quadratic footprint that made graphs this
// size unservable before the sparse tier. CI runs both and archives
// BENCH_core.json and BENCH_core_large.json next to BENCH_engine.json
// so hot-path and memory regressions are visible per commit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphmatch/internal/closure"
	"graphmatch/internal/core"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/syngen"
)

// report is the BENCH_core.json schema.
type report struct {
	Timestamp    string `json:"timestamp"`
	GoVersion    string `json:"go_version"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	DataNodes    int    `json:"data_nodes"`
	PatternNodes int    `json:"pattern_nodes"`

	// Per-request matcher setup against a catalog-cached graph.
	SetupNsOp     int64 `json:"setup_ns_op"`
	SetupAllocsOp int64 `json:"setup_allocs_op"`
	// The same setup re-deriving closure rows per request (the
	// pre-sharing behaviour kept as the comparison baseline).
	SetupRowBuildNsOp     int64   `json:"setup_rowbuild_ns_op"`
	SetupRowBuildAllocsOp int64   `json:"setup_rowbuild_allocs_op"`
	SetupSpeedup          float64 `json:"setup_speedup"`

	// One full compMaxCard request: instance + setup + search, under
	// the dense tier (the default for a graph this size)...
	MatchNsOp     int64 `json:"match_ns_op"`
	MatchAllocsOp int64 `json:"match_allocs_op"`
	MatchBytesOp  int64 `json:"match_bytes_op"`
	// ...and under the candidate-sparse tier, with both tiers' index
	// footprints — the memory/throughput trade-off in one place.
	SparseMatchNsOp  int64 `json:"sparse_match_ns_op"`
	DenseIndexBytes  int64 `json:"dense_index_bytes"`
	SparseIndexBytes int64 `json:"sparse_index_bytes"`

	// Concurrent engine workload.
	EngineRequests       int     `json:"engine_requests"`
	EngineRequestsPerSec float64 `json:"engine_requests_per_sec"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path")
	dataNodes := flag.Int("nodes", 400, "data graph nodes")
	patNodes := flag.Int("pattern", 10, "pattern nodes")
	avgDeg := flag.Int("deg", 4, "average out-degree of the data graph")
	engineReqs := flag.Int("requests", 1500, "requests in the engine workload")
	clients := flag.Int("clients", 8, "concurrent clients in the engine workload")
	largeOut := flag.String("large-out", "BENCH_core_large.json", "output path for the large-graph scenario")
	largeNodes := flag.Int("large-nodes", 100000, "nodes in the large-graph scenario (0 disables it)")
	largeDeg := flag.Int("large-deg", 5, "average out-degree of the large graph")
	largeLabels := flag.Int("large-labels", 2000, "label universe of the large graph")
	largeCore := flag.Float64("large-core", 0.9, "strongly connected core fraction of the large graph")
	largeReqs := flag.Int("large-requests", 24, "match requests in the large-graph scenario")
	flag.Parse()

	data := randomGraph(*dataNodes, *avgDeg, 1)
	pattern := carvePattern(data, *patNodes, 100)
	mat := simmatrix.NewLabelEquality(pattern, data)
	reach := closure.Compute(data)
	rows := closure.NewRows(reach)
	sparse := closure.NewCompIndex(reach)

	setup := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(pattern, data, mat, 0.9)
			in.SetReach(reach)
			in.SetIndex(rows)
			in.BenchSetup()
		}
	})
	rebuild := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(pattern, data, mat, 0.9)
			in.SetReach(reach)
			in.BenchSetup()
		}
	})
	match := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(pattern, data, mat, 0.9)
			in.SetReach(reach)
			in.SetIndex(rows)
			_ = in.CompMaxCard()
		}
	})
	sparseMatch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(pattern, data, mat, 0.9)
			in.SetReach(reach)
			in.SetIndex(sparse)
			_ = in.CompMaxCard()
		}
	})

	reqs, elapsed := engineWorkload(*engineReqs, *clients, *dataNodes, *avgDeg, *patNodes)

	rep := report{
		Timestamp:             time.Now().UTC().Format(time.RFC3339),
		GoVersion:             runtime.Version(),
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		DataNodes:             *dataNodes,
		PatternNodes:          *patNodes,
		SetupNsOp:             setup.NsPerOp(),
		SetupAllocsOp:         setup.AllocsPerOp(),
		SetupRowBuildNsOp:     rebuild.NsPerOp(),
		SetupRowBuildAllocsOp: rebuild.AllocsPerOp(),
		MatchNsOp:             match.NsPerOp(),
		MatchAllocsOp:         match.AllocsPerOp(),
		MatchBytesOp:          match.AllocedBytesPerOp(),
		SparseMatchNsOp:       sparseMatch.NsPerOp(),
		DenseIndexBytes:       int64(rows.Bytes()),
		SparseIndexBytes:      int64(sparse.Bytes()),
		EngineRequests:        reqs,
		EngineRequestsPerSec:  float64(reqs) / elapsed.Seconds(),
	}
	if rep.SetupNsOp > 0 {
		rep.SetupSpeedup = float64(rep.SetupRowBuildNsOp) / float64(rep.SetupNsOp)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("setup %dns/%d allocs (rowbuild %dns, %.1fx), match %dns/%d allocs (sparse %dns), engine %.0f req/s → %s",
		rep.SetupNsOp, rep.SetupAllocsOp, rep.SetupRowBuildNsOp, rep.SetupSpeedup,
		rep.MatchNsOp, rep.MatchAllocsOp, rep.SparseMatchNsOp, rep.EngineRequestsPerSec, *out)

	if *largeNodes > 0 {
		runLargeScenario(largeScenarioConfig{
			out: *largeOut, nodes: *largeNodes, deg: *largeDeg,
			labels: *largeLabels, core: *largeCore,
			patNodes: *patNodes, requests: *largeReqs,
		})
	}
}

// largeReport is the BENCH_core_large.json schema: one serving-scale
// graph registered through a real engine under the auto tier policy.
type largeReport struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Components int    `json:"components"`
	Tier       string `json:"tier"`

	// RegisterMS is the one-off preprocessing cost: SCC condensation,
	// component-closure propagation, and index construction.
	RegisterMS int64 `json:"register_ms"`

	// ResidentBytes is the catalog's resident closure + index memory
	// after serving. It is compared against two dense projections:
	// DenseRowsProjectionBytes — per-node row matrices (2·n²/8, both
	// directions), the naive H2 materialisation that motivated the
	// tier and the denominator of MemoryReduction — and
	// DenseTierProjectionBytes, what this repo's SCC-aliased dense
	// tier (closure.ProjectedRowsBytes, the number the auto policy
	// weighs) would actually have allocated, with its own
	// DenseTierReduction.
	ResidentBytes            int64   `json:"resident_bytes"`
	DenseRowsProjectionBytes int64   `json:"dense_rows_projection_bytes"`
	MemoryReduction          float64 `json:"memory_reduction"`
	DenseTierProjectionBytes int64   `json:"dense_tier_projection_bytes"`
	DenseTierReduction       float64 `json:"dense_tier_reduction"`

	MatchRequests  int     `json:"match_requests"`
	MatchMsPerOp   float64 `json:"match_ms_per_op"`
	MatchedPattern bool    `json:"matched_pattern"`
}

type largeScenarioConfig struct {
	out                string
	nodes, deg, labels int
	core               float64
	patNodes, requests int
}

// runLargeScenario drives the ≥100k-node path end to end: generate,
// register (auto tier — must pick candidate-sparse at this size),
// match, and report memory against the dense projection.
func runLargeScenario(cfg largeScenarioConfig) {
	if cfg.requests <= 0 {
		cfg.requests = 1 // at least one request: the ms/op division needs it
	}
	g := syngen.GenerateLarge(syngen.LargeConfig{
		Nodes: cfg.nodes, AvgDeg: cfg.deg, Labels: cfg.labels,
		CoreFraction: cfg.core, Seed: 1,
	})
	pattern := syngen.CarvePattern(g, cfg.patNodes, 2)

	eng := engine.New(engine.Options{})
	defer eng.Close()
	regStart := time.Now()
	if err := eng.Register("large", g); err != nil {
		log.Fatal(err)
	}
	registerMS := time.Since(regStart).Milliseconds()

	matched := false
	matchStart := time.Now()
	for i := 0; i < cfg.requests; i++ {
		algo := engine.MaxCard
		if i%2 == 1 {
			algo = engine.MaxSim
		}
		res := eng.Match(context.Background(), engine.Request{
			Pattern: pattern, GraphName: "large", Algo: algo, Xi: 0.9,
		})
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		if len(res.Mapping) > 0 {
			matched = true
		}
	}
	matchMS := float64(time.Since(matchStart).Milliseconds()) / float64(cfg.requests)

	st := eng.Catalog().Stats()
	tier := "dense"
	if st.ResidentSparse > 0 {
		tier = "sparse"
	}
	n := int64(g.NumNodes())
	projection := 2 * n * 8 * ((n + 63) / 64)
	// The catalog holds the shared closure; reuse it for the dense-tier
	// projection and the component count instead of recomputing.
	reach, err := eng.Catalog().Reach("large", 0)
	if err != nil {
		log.Fatal(err)
	}
	rep := largeReport{
		Timestamp:                time.Now().UTC().Format(time.RFC3339),
		GoVersion:                runtime.Version(),
		Nodes:                    g.NumNodes(),
		Edges:                    g.NumEdges(),
		Components:               reach.NumComponents(),
		Tier:                     tier,
		RegisterMS:               registerMS,
		ResidentBytes:            st.ResidentBytes,
		DenseRowsProjectionBytes: projection,
		DenseTierProjectionBytes: int64(closure.ProjectedRowsBytes(reach)),
		MatchRequests:            cfg.requests,
		MatchMsPerOp:             matchMS,
		MatchedPattern:           matched,
	}
	if st.ResidentBytes > 0 {
		rep.MemoryReduction = float64(projection) / float64(st.ResidentBytes)
		rep.DenseTierReduction = float64(rep.DenseTierProjectionBytes) / float64(st.ResidentBytes)
	}

	f, err := os.Create(cfg.out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("large: %d nodes / %d comps, tier %s, register %dms, match %.1fms/op, resident %.1fMB vs per-node rows %.0fMB (%.0fx) / dense tier %.0fMB (%.0fx) → %s",
		rep.Nodes, rep.Components, rep.Tier, rep.RegisterMS, rep.MatchMsPerOp,
		float64(rep.ResidentBytes)/1e6, float64(rep.DenseRowsProjectionBytes)/1e6,
		rep.MemoryReduction, float64(rep.DenseTierProjectionBytes)/1e6,
		rep.DenseTierReduction, cfg.out)
}

// engineWorkload pushes a fixed pool of requests through a fresh engine
// and reports (requests completed, wall time).
func engineWorkload(total, clients, dataNodes, avgDeg, patNodes int) (int, time.Duration) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	names := []string{"g0", "g1", "g2"}
	for i, name := range names {
		if err := eng.Register(name, randomGraph(dataNodes, avgDeg, int64(i+1))); err != nil {
			log.Fatal(err)
		}
	}
	algos := []engine.Algorithm{engine.MaxCard, engine.MaxCard11, engine.MaxSim, engine.MaxSim11}
	pool := make([]engine.Request, 48)
	for i := range pool {
		name := names[i%len(names)]
		g, err := eng.Catalog().Get(name)
		if err != nil {
			log.Fatal(err)
		}
		pool[i] = engine.Request{
			Pattern:   carvePattern(g, patNodes, int64(100+i)),
			GraphName: name,
			Algo:      algos[i%len(algos)],
			Xi:        0.9,
		}
	}
	perClient := total / clients
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				if res := eng.Match(context.Background(), pool[rng.Intn(len(pool))]); res.Err != nil {
					log.Fatal(res.Err)
				}
			}
		}(c)
	}
	wg.Wait()
	return perClient * clients, time.Since(start)
}

func randomGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("L%d", i%16))
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func carvePattern(g *graph.Graph, size int, seed int64) *graph.Graph {
	if size > g.NumNodes() {
		log.Fatalf("benchcore: pattern size %d exceeds data graph size %d", size, g.NumNodes())
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.NodeID]bool{}
	var keep []graph.NodeID
	for len(keep) < size {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}
