// Command benchcore measures the matcher hot path the way the serving
// stack exercises it and emits a machine-readable snapshot, the
// companion of cmd/benchengine's end-to-end numbers:
//
//	benchcore -out BENCH_core.json
//
// Three layers are timed with testing.Benchmark against one shared,
// catalog-shaped fixture (a random data graph whose closure and
// closure rows are built once, as internal/catalog does for registered
// graphs):
//
//   - matcher setup with shared rows (the serving fast path) and with a
//     per-request row rebuild (what every request paid before rows were
//     shareable), whose ratio is the headline of the zero-rebuild
//     change;
//   - one full compMaxCard request, allocations included — steady-state
//     greedyMatch recursion itself allocates nothing, so allocs/op here
//     tracks only per-request setup;
//   - a concurrent engine workload, reported as requests/sec.
//
// CI runs it and archives BENCH_core.json next to BENCH_engine.json so
// hot-path regressions are visible per commit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphmatch/internal/closure"
	"graphmatch/internal/core"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// report is the BENCH_core.json schema.
type report struct {
	Timestamp    string `json:"timestamp"`
	GoVersion    string `json:"go_version"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	DataNodes    int    `json:"data_nodes"`
	PatternNodes int    `json:"pattern_nodes"`

	// Per-request matcher setup against a catalog-cached graph.
	SetupNsOp     int64 `json:"setup_ns_op"`
	SetupAllocsOp int64 `json:"setup_allocs_op"`
	// The same setup re-deriving closure rows per request (the
	// pre-sharing behaviour kept as the comparison baseline).
	SetupRowBuildNsOp     int64   `json:"setup_rowbuild_ns_op"`
	SetupRowBuildAllocsOp int64   `json:"setup_rowbuild_allocs_op"`
	SetupSpeedup          float64 `json:"setup_speedup"`

	// One full compMaxCard request: instance + setup + search.
	MatchNsOp     int64 `json:"match_ns_op"`
	MatchAllocsOp int64 `json:"match_allocs_op"`
	MatchBytesOp  int64 `json:"match_bytes_op"`

	// Concurrent engine workload.
	EngineRequests       int     `json:"engine_requests"`
	EngineRequestsPerSec float64 `json:"engine_requests_per_sec"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path")
	dataNodes := flag.Int("nodes", 400, "data graph nodes")
	patNodes := flag.Int("pattern", 10, "pattern nodes")
	avgDeg := flag.Int("deg", 4, "average out-degree of the data graph")
	engineReqs := flag.Int("requests", 1500, "requests in the engine workload")
	clients := flag.Int("clients", 8, "concurrent clients in the engine workload")
	flag.Parse()

	data := randomGraph(*dataNodes, *avgDeg, 1)
	pattern := carvePattern(data, *patNodes, 100)
	mat := simmatrix.NewLabelEquality(pattern, data)
	reach := closure.Compute(data)
	rows := closure.NewRows(reach)

	setup := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(pattern, data, mat, 0.9)
			in.SetReach(reach)
			in.SetRows(rows)
			in.BenchSetup()
		}
	})
	rebuild := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(pattern, data, mat, 0.9)
			in.SetReach(reach)
			in.BenchSetup()
		}
	})
	match := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			in := core.NewInstance(pattern, data, mat, 0.9)
			in.SetReach(reach)
			in.SetRows(rows)
			_ = in.CompMaxCard()
		}
	})

	reqs, elapsed := engineWorkload(*engineReqs, *clients, *dataNodes, *avgDeg, *patNodes)

	rep := report{
		Timestamp:             time.Now().UTC().Format(time.RFC3339),
		GoVersion:             runtime.Version(),
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		DataNodes:             *dataNodes,
		PatternNodes:          *patNodes,
		SetupNsOp:             setup.NsPerOp(),
		SetupAllocsOp:         setup.AllocsPerOp(),
		SetupRowBuildNsOp:     rebuild.NsPerOp(),
		SetupRowBuildAllocsOp: rebuild.AllocsPerOp(),
		MatchNsOp:             match.NsPerOp(),
		MatchAllocsOp:         match.AllocsPerOp(),
		MatchBytesOp:          match.AllocedBytesPerOp(),
		EngineRequests:        reqs,
		EngineRequestsPerSec:  float64(reqs) / elapsed.Seconds(),
	}
	if rep.SetupNsOp > 0 {
		rep.SetupSpeedup = float64(rep.SetupRowBuildNsOp) / float64(rep.SetupNsOp)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("setup %dns/%d allocs (rowbuild %dns, %.1fx), match %dns/%d allocs, engine %.0f req/s → %s",
		rep.SetupNsOp, rep.SetupAllocsOp, rep.SetupRowBuildNsOp, rep.SetupSpeedup,
		rep.MatchNsOp, rep.MatchAllocsOp, rep.EngineRequestsPerSec, *out)
}

// engineWorkload pushes a fixed pool of requests through a fresh engine
// and reports (requests completed, wall time).
func engineWorkload(total, clients, dataNodes, avgDeg, patNodes int) (int, time.Duration) {
	eng := engine.New(engine.Options{})
	defer eng.Close()
	names := []string{"g0", "g1", "g2"}
	for i, name := range names {
		if err := eng.Register(name, randomGraph(dataNodes, avgDeg, int64(i+1))); err != nil {
			log.Fatal(err)
		}
	}
	algos := []engine.Algorithm{engine.MaxCard, engine.MaxCard11, engine.MaxSim, engine.MaxSim11}
	pool := make([]engine.Request, 48)
	for i := range pool {
		name := names[i%len(names)]
		g, err := eng.Catalog().Get(name)
		if err != nil {
			log.Fatal(err)
		}
		pool[i] = engine.Request{
			Pattern:   carvePattern(g, patNodes, int64(100+i)),
			GraphName: name,
			Algo:      algos[i%len(algos)],
			Xi:        0.9,
		}
	}
	perClient := total / clients
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				if res := eng.Match(context.Background(), pool[rng.Intn(len(pool))]); res.Err != nil {
					log.Fatal(res.Err)
				}
			}
		}(c)
	}
	wg.Wait()
	return perClient * clients, time.Since(start)
}

func randomGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("L%d", i%16))
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func carvePattern(g *graph.Graph, size int, seed int64) *graph.Graph {
	if size > g.NumNodes() {
		log.Fatalf("benchcore: pattern size %d exceeds data graph size %d", size, g.NumNodes())
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.NodeID]bool{}
	var keep []graph.NodeID
	for len(keep) < size {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}
