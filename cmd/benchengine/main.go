// Command benchengine drives a synthetic serving workload through the
// match engine in-process and emits a machine-readable performance
// snapshot — the start of the repo's perf trajectory. CI runs it and
// archives the output so regressions in throughput, tail latency, or
// closure-cache effectiveness are visible per commit.
//
//	benchengine -out BENCH_engine.json -requests 2000 -clients 8
//
// The workload registers a handful of random data graphs, then has
// concurrent clients issue single matches and batches over a fixed
// request pool (so a fraction of requests coalesce, as duplicate
// traffic does in production).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
)

// report is the BENCH_engine.json schema.
type report struct {
	Timestamp      string  `json:"timestamp"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Workers        int     `json:"workers"`
	Clients        int     `json:"clients"`
	DataGraphs     int     `json:"data_graphs"`
	DataNodes      int     `json:"data_nodes_per_graph"`
	PatternNodes   int     `json:"pattern_nodes"`
	Requests       uint64  `json:"requests"`
	Executed       uint64  `json:"executed"`
	Coalesced      uint64  `json:"coalesced"`
	Errors         uint64  `json:"errors"`
	ElapsedSec     float64 `json:"elapsed_sec"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50LatencyUS   int64   `json:"p50_latency_us"`
	P90LatencyUS   int64   `json:"p90_latency_us"`
	P99LatencyUS   int64   `json:"p99_latency_us"`
	MaxLatencyUS   int64   `json:"max_latency_us"`
	CacheHits      uint64  `json:"closure_cache_hits"`
	CacheMisses    uint64  `json:"closure_cache_misses"`
	CacheHitRate   float64 `json:"closure_cache_hit_rate"`
}

func main() {
	out := flag.String("out", "BENCH_engine.json", "output path")
	totalReqs := flag.Int("requests", 2000, "total match requests to issue")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	dataGraphs := flag.Int("graphs", 3, "registered data graphs")
	dataNodes := flag.Int("nodes", 400, "nodes per data graph")
	patNodes := flag.Int("pattern", 10, "nodes per pattern")
	poolSize := flag.Int("pool", 48, "distinct requests in the traffic pool")
	flag.Parse()

	eng := engine.New(engine.Options{Workers: *workers})
	defer eng.Close()

	names := make([]string, *dataGraphs)
	for i := range names {
		names[i] = fmt.Sprintf("g%d", i)
		if err := eng.Register(names[i], randomGraph(*dataNodes, 4, int64(i+1))); err != nil {
			log.Fatal(err)
		}
	}

	// A fixed pool of requests: real traffic repeats patterns, which is
	// what both the closure cache and the coalescer exploit.
	algos := []engine.Algorithm{engine.MaxCard, engine.MaxCard11, engine.MaxSim, engine.MaxSim11}
	pool := make([]engine.Request, *poolSize)
	for i := range pool {
		name := names[i%len(names)]
		data, err := eng.Catalog().Get(name)
		if err != nil {
			log.Fatal(err)
		}
		pool[i] = engine.Request{
			Pattern:   carvePattern(data, *patNodes, int64(100+i)),
			GraphName: name,
			Algo:      algos[i%len(algos)],
			Xi:        0.9,
		}
	}

	perClient := *totalReqs / *clients
	latencies := make([][]time.Duration, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			ctx := context.Background()
			lats := make([]time.Duration, 0, perClient)
			sent := 0
			for sent < perClient {
				if sent%5 == 4 {
					// Every fifth action is a 4-request batch.
					n := min(4, perClient-sent)
					reqs := make([]engine.Request, n)
					for j := range reqs {
						reqs[j] = pool[rng.Intn(len(pool))]
					}
					t0 := time.Now()
					for _, res := range eng.MatchBatch(ctx, reqs) {
						if res.Err != nil {
							log.Fatal(res.Err)
						}
					}
					// Attribute the batch wall time to each member:
					// that is what a batch client experiences.
					d := time.Since(t0)
					for j := 0; j < n; j++ {
						lats = append(lats, d)
					}
					sent += n
				} else {
					req := pool[rng.Intn(len(pool))]
					t0 := time.Now()
					if res := eng.Match(ctx, req); res.Err != nil {
						log.Fatal(res.Err)
					}
					lats = append(lats, time.Since(t0))
					sent++
				}
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i].Microseconds()
	}

	es := eng.Stats()
	cs := eng.Catalog().Stats()
	rep := report{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Workers:        es.Workers,
		Clients:        *clients,
		DataGraphs:     *dataGraphs,
		DataNodes:      *dataNodes,
		PatternNodes:   *patNodes,
		Requests:       es.Requests,
		Executed:       es.Executed,
		Coalesced:      es.Coalesced,
		Errors:         es.Errors,
		ElapsedSec:     elapsed.Seconds(),
		RequestsPerSec: float64(len(all)) / elapsed.Seconds(),
		P50LatencyUS:   pct(0.50),
		P90LatencyUS:   pct(0.90),
		P99LatencyUS:   pct(0.99),
		MaxLatencyUS:   pct(1.0),
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		CacheHitRate:   cs.HitRate(),
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	encoder := json.NewEncoder(f)
	encoder.SetIndent("", "  ")
	if err := encoder.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d requests in %.2fs: %.0f req/s, p50 %dµs p99 %dµs, closure hit rate %.0f%% → %s",
		len(all), rep.ElapsedSec, rep.RequestsPerSec, rep.P50LatencyUS, rep.P99LatencyUS,
		rep.CacheHitRate*100, *out)
}

func randomGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("L%d", i%16))
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func carvePattern(g *graph.Graph, size int, seed int64) *graph.Graph {
	if size > g.NumNodes() {
		log.Fatalf("benchengine: pattern size %d exceeds data graph size %d", size, g.NumNodes())
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.NodeID]bool{}
	var keep []graph.NodeID
	for len(keep) < size {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}
