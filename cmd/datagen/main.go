// Command datagen emits the repository's generated data sets as JSON
// graphs for inspection or use with cmd/phom:
//
//	datagen -kind synthetic -m 200 -noise 10 -out dir/   # Sec. 6(2) workload
//	datagen -kind web -category store -pages 2000 -out dir/
//	datagen -kind large -nodes 100000 -deg 5 -out dir/   # serving-scale graph
//
// Synthetic workloads write G1 as pattern.json and each derived graph as
// data_<i>.json. Web archives write version_<i>.json plus the two
// skeletons of each version (skeleton1_<i>.json with α = 0.2,
// skeleton2_<i>.json with the top-20 rule). Large graphs (power-law
// degrees, one strongly connected core — the regime the
// candidate-sparse reachability tier serves) write large.json plus a
// carved pattern_large.json ready for phomd smoke tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"graphmatch/internal/graph"
	"graphmatch/internal/syngen"
	"graphmatch/internal/webgen"
)

func main() {
	kind := flag.String("kind", "synthetic", "synthetic | web")
	out := flag.String("out", ".", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	// Synthetic options.
	m := flag.Int("m", 100, "pattern size m (synthetic)")
	noise := flag.Float64("noise", 10, "noise percent (synthetic)")
	numData := flag.Int("graphs", 15, "number of data graphs (synthetic)")
	// Web options.
	category := flag.String("category", "store", "store | organization | newspaper (web)")
	pages := flag.Int("pages", 0, "pages per version, 0 = category default (web)")
	versions := flag.Int("versions", 11, "archive length (web)")
	// Large options.
	nodes := flag.Int("nodes", 100000, "graph size (large)")
	deg := flag.Int("deg", 5, "average out-degree (large)")
	labels := flag.Int("labels", 2000, "label universe size (large)")
	core := flag.Float64("core", 0.9, "strongly connected core fraction (large)")
	patSize := flag.Int("pattern-size", 12, "nodes in the carved pattern (large)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	switch *kind {
	case "synthetic":
		w := syngen.Generate(syngen.Config{M: *m, NoisePercent: *noise, NumData: *numData, Seed: *seed})
		write(*out, "pattern.json", w.G1)
		for i, g2 := range w.G2s {
			write(*out, fmt.Sprintf("data_%d.json", i), g2)
		}
		fmt.Printf("wrote pattern (%s) and %d data graphs to %s\n", w.G1, len(w.G2s), *out)
	case "web":
		var cat webgen.Category
		switch *category {
		case "store":
			cat = webgen.Store
		case "organization":
			cat = webgen.Organization
		case "newspaper":
			cat = webgen.Newspaper
		default:
			fatal(fmt.Errorf("unknown -category %q", *category))
		}
		arch := webgen.Generate(webgen.Config{Category: cat, Pages: *pages, Versions: *versions, Seed: *seed})
		for i, g := range arch.Versions {
			write(*out, fmt.Sprintf("version_%d.json", i), g)
			write(*out, fmt.Sprintf("skeleton1_%d.json", i), webgen.Skeleton(g, 0.2))
			write(*out, fmt.Sprintf("skeleton2_%d.json", i), webgen.TopKSkeleton(g, 20))
		}
		fmt.Printf("wrote %d versions (with skeletons) of a %s site to %s\n",
			len(arch.Versions), cat, *out)
	case "large":
		g := syngen.GenerateLarge(syngen.LargeConfig{
			Nodes: *nodes, AvgDeg: *deg, Labels: *labels,
			CoreFraction: *core, Seed: *seed,
		})
		write(*out, "large.json", g)
		write(*out, "pattern_large.json", syngen.CarvePattern(g, *patSize, *seed+1))
		fmt.Printf("wrote large graph (%s) and a %d-node pattern to %s\n", g, *patSize, *out)
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
}

func write(dir, name string, g *graph.Graph) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := g.WriteJSON(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
