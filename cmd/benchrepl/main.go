// Command benchrepl measures WAL-shipping replication (internal/repl)
// end to end, over a real loopback HTTP stream: a primary engine
// serving GET /v1/replicate/since/{seq} and a follower engine tailing
// it through the same code path phomd -follow uses.
//
// Three phases:
//
//   - catch-up: the primary is fully built (registers + patches), then
//     a cold follower connects and replays the whole history — the
//     bulk throughput of the stream, in ops/sec and MB/sec;
//   - steady state: a mutation loop drives the primary while the
//     follower tails live; replication lag is sampled continuously —
//     the staleness a follower's reads actually see;
//   - convergence: mutations stop, the follower must reach the
//     primary's head, and both engines must answer identical match and
//     search probes.
//
// benchrepl emits BENCH_repl.json and exits non-zero when the follower
// fails to converge or serves divergent results — it is a correctness
// gate as much as a benchmark.
//
//	benchrepl -out BENCH_repl.json          # full run
//	benchrepl -short -out BENCH_repl.json   # CI-sized
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/repl"
	"graphmatch/internal/webgen"
)

// report is the BENCH_repl.json schema.
type report struct {
	Timestamp  string `json:"timestamp"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Graphs     int    `json:"graphs"`
	Pages      int    `json:"pages_per_site"`

	// Catch-up: a cold follower replaying the primary's full history.
	CatchupOps       uint64  `json:"catchup_ops"`
	CatchupWALBytes  int64   `json:"catchup_wal_bytes"`
	CatchupSec       float64 `json:"catchup_sec"`
	CatchupOpsPerSec float64 `json:"catchup_ops_per_sec"`
	CatchupMBPerSec  float64 `json:"catchup_mb_per_sec"`

	// Steady state: lag sampled while a mutation loop drives the
	// primary. Lag is in ops (sequence-number distance).
	SteadySec       float64 `json:"steady_sec"`
	SteadyMutations int     `json:"steady_mutations"`
	LagSamples      int     `json:"lag_samples"`
	LagMeanSeq      float64 `json:"lag_mean_seq"`
	LagMaxSeq       uint64  `json:"lag_max_seq"`

	// Convergence after the storm stops.
	ConvergeSec float64 `json:"converge_sec"`
	Equivalent  bool    `json:"equivalent"`
}

func main() {
	out := flag.String("out", "BENCH_repl.json", "output path")
	sites := flag.Int("sites", 6, "distinct web sites on the primary")
	pages := flag.Int("pages", 150, "pages per site")
	patches := flag.Int("patches", 200, "patches applied before the follower connects (the catch-up history)")
	steady := flag.Duration("steady", 5*time.Second, "duration of the live mutation phase")
	short := flag.Bool("short", false, "CI-sized run")
	flag.Parse()
	if *short {
		*pages = 50
		*patches = 60
		*steady = 1500 * time.Millisecond
	}

	work, err := os.MkdirTemp("", "benchrepl-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Build the primary's full history before any follower exists.
	primary, err := engine.Open(engine.Options{StorePath: work + "/primary"})
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()
	rng := rand.New(rand.NewSource(1))
	categories := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	names := make([]string, 0, *sites)
	var patterns []*graph.Graph
	for s := 0; s < *sites; s++ {
		arch := webgen.Generate(webgen.Config{
			Category: categories[s%len(categories)],
			Pages:    *pages,
			Versions: 1,
			Seed:     int64(100 + s),
		})
		name := fmt.Sprintf("site%02d", s)
		if err := primary.Register(name, arch.Versions[0]); err != nil {
			log.Fatal(err)
		}
		names = append(names, name)
		patterns = append(patterns, webgen.TopKSkeleton(arch.Versions[0], 6))
	}
	mutate := func() {
		name := names[rng.Intn(len(names))]
		g, err := primary.Catalog().Get(name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := primary.ApplyPatch(name, smallPatch(rng, g)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < *patches; i++ {
		mutate()
	}
	pst, _ := primary.StoreStats()
	log.Printf("primary built: %d graphs, %d ops, %.1f MB of WAL",
		len(names), pst.LastSeq, float64(pst.WALBytes)/(1<<20))

	// Serve the replication stream on a loopback listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/replicate/since/{seq}", repl.NewHandler(primary.ReplSource(), repl.HandlerOptions{
		Poll: 2 * time.Millisecond, CheckpointEvery: 20 * time.Millisecond,
	}))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	rep := report{
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Graphs:          len(names),
		Pages:           *pages,
		CatchupOps:      pst.LastSeq,
		CatchupWALBytes: pst.WALBytes,
	}

	// Phase 1: cold follower replays the whole history.
	log.Printf("catch-up: cold follower replaying %d ops", pst.LastSeq)
	start := time.Now()
	follower, err := engine.Open(engine.Options{
		StorePath: work + "/follower",
		FollowURL: "http://" + ln.Addr().String(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer follower.Close()
	waitSynced(follower, primary, 120*time.Second)
	rep.CatchupSec = time.Since(start).Seconds()
	rep.CatchupOpsPerSec = float64(rep.CatchupOps) / rep.CatchupSec
	rep.CatchupMBPerSec = float64(rep.CatchupWALBytes) / (1 << 20) / rep.CatchupSec
	log.Printf("catch-up: %d ops in %.2fs (%.0f ops/s, %.1f MB/s)",
		rep.CatchupOps, rep.CatchupSec, rep.CatchupOpsPerSec, rep.CatchupMBPerSec)

	// Phase 2: live mutations with continuous lag sampling.
	log.Printf("steady state: mutating for %v", *steady)
	stop := make(chan struct{})
	sampled := make(chan struct{})
	var lagSum float64
	go func() {
		defer close(sampled)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				rs, _ := follower.ReplStats()
				rep.LagSamples++
				lagSum += float64(rs.LagSeq)
				if rs.LagSeq > rep.LagMaxSeq {
					rep.LagMaxSeq = rs.LagSeq
				}
			}
		}
	}()
	steadyStart := time.Now()
	for time.Since(steadyStart) < *steady {
		mutate()
		rep.SteadyMutations++
		time.Sleep(2 * time.Millisecond)
	}
	rep.SteadySec = time.Since(steadyStart).Seconds()
	close(stop)
	<-sampled
	if rep.LagSamples > 0 {
		rep.LagMeanSeq = lagSum / float64(rep.LagSamples)
	}
	log.Printf("steady state: %d mutations in %.2fs; lag mean %.1f ops, max %d ops (%d samples)",
		rep.SteadyMutations, rep.SteadySec, rep.LagMeanSeq, rep.LagMaxSeq, rep.LagSamples)

	// Phase 3: convergence and the equivalence gate.
	start = time.Now()
	waitSynced(follower, primary, 60*time.Second)
	rep.ConvergeSec = time.Since(start).Seconds()
	rep.Equivalent = equivalent(follower, primary, patterns)
	log.Printf("converged in %.2fs, equivalent=%v", rep.ConvergeSec, rep.Equivalent)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	encoder := json.NewEncoder(f)
	encoder.SetIndent("", "  ")
	if err := encoder.Encode(rep); err != nil {
		log.Fatal(err)
	}
	f.Close()
	log.Printf("wrote %s", *out)
	if !rep.Equivalent {
		log.Fatal("benchrepl: follower diverged from primary — failing")
	}
}

// smallPatch is a modest random patch: a new page, a content rewrite,
// a couple of link flips.
func smallPatch(rng *rand.Rand, g *graph.Graph) *graph.Patch {
	n := g.NumNodes()
	p := &graph.Patch{
		AddNodes: []graph.Node{{
			Label:   "patched",
			Weight:  1,
			Content: fmt.Sprintf("patched page %d", rng.Intn(10000)),
		}},
		SetContent: []graph.ContentUpdate{{
			Node:    graph.NodeID(rng.Intn(n)),
			Content: fmt.Sprintf("rewritten content %d", rng.Intn(10000)),
		}},
	}
	for i := 0; i < 2; i++ {
		p.AddEdges = append(p.AddEdges, [2]graph.NodeID{
			graph.NodeID(rng.Intn(n + 1)), graph.NodeID(rng.Intn(n + 1)),
		})
	}
	return p
}

// waitSynced blocks until the follower has applied everything the
// primary's store holds; a timeout is fatal (non-convergence is a
// failure, not a skipped measurement).
func waitSynced(f, p *engine.Engine, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		rs, _ := f.ReplStats()
		ps, _ := p.StoreStats()
		if rs.SyncedOnce && !rs.Diverged && rs.LastApplied == ps.LastSeq {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("benchrepl: follower never converged: follower at seq %d (diverged=%v, err=%q), primary at %d",
				rs.LastApplied, rs.Diverged, rs.LastError, ps.LastSeq)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// equivalent replays identical match and search probes against both
// engines and reports whether every deterministic field agrees.
func equivalent(a, b *engine.Engine, patterns []*graph.Graph) bool {
	if !reflect.DeepEqual(a.Catalog().Names(), b.Catalog().Names()) {
		log.Printf("catalogs diverge: %v vs %v", a.Catalog().Names(), b.Catalog().Names())
		return false
	}
	ctx := context.Background()
	for _, pattern := range patterns {
		for _, name := range a.Catalog().Names() {
			req := engine.Request{Pattern: pattern, GraphName: name, Algo: engine.MaxCard, Xi: 0.7, Sim: engine.SimContent}
			ra, rb := a.Match(ctx, req), b.Match(ctx, req)
			if !reflect.DeepEqual(ra.Mapping, rb.Mapping) || ra.QualCard != rb.QualCard {
				log.Printf("match diverges on %q", name)
				return false
			}
		}
		sreq := engine.SearchRequest{Pattern: pattern, Algo: engine.MaxSim, Xi: 0.7, Sim: engine.SimContent, K: 5}
		sa, sb := a.Search(ctx, sreq), b.Search(ctx, sreq)
		if sa.Err != nil || sb.Err != nil || !reflect.DeepEqual(sa.Hits, sb.Hits) {
			log.Printf("search diverges: %v vs %v (err %v / %v)", sa.Hits, sb.Hits, sa.Err, sb.Err)
			return false
		}
	}
	return true
}
