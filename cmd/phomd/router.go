package main

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphmatch/internal/cluster"
)

// routerFlags carries the -router mode's flag values out of main.
type routerFlags struct {
	addr          string
	shards        string
	ringPath      string
	vnodes        int
	routeMaxLag   uint64
	probeInterval time.Duration
	timeout       time.Duration
	accessLog     bool
	noTrace       bool
	traceCapacity int
	traceSlow     time.Duration
}

// runRouter is phomd's stateless mode: no engine, no store — just the
// consistent-hash ring and the scatter-gather front described in
// internal/cluster. The process serves the same /v1 route shapes as a
// shard, so clients point at the router without changes.
func runRouter(f routerFlags) {
	var cfg cluster.Config
	var err error
	switch {
	case f.shards != "" && f.ringPath != "":
		log.Fatalf("phomd: -shards and -ring are mutually exclusive")
	case f.shards != "":
		cfg, err = cluster.ParseSpec(f.shards, f.vnodes)
	case f.ringPath != "":
		var data []byte
		if data, err = os.ReadFile(f.ringPath); err == nil {
			cfg, err = cluster.LoadConfig(data)
			if f.vnodes > 0 {
				cfg.VNodes = f.vnodes
			}
		}
	default:
		log.Fatalf("phomd: -router needs -shards <spec> or -ring <config.json>")
	}
	if err != nil {
		log.Fatalf("phomd: %v", err)
	}

	var lg *log.Logger
	if f.accessLog {
		lg = log.New(os.Stderr, "access ", log.LstdFlags|log.Lmicroseconds)
	}
	rt, err := cluster.NewRouter(cfg, cluster.RouterOptions{
		MaxLag:             f.routeMaxLag,
		ProbeInterval:      f.probeInterval,
		RequestTimeout:     f.timeout,
		AccessLog:          lg,
		NoTrace:            f.noTrace,
		TraceCapacity:      f.traceCapacity,
		TraceSlowThreshold: f.traceSlow,
	})
	if err != nil {
		log.Fatalf("phomd: %v", err)
	}
	defer rt.Close()

	srv := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		log.Fatalf("phomd: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ring := rt.Ring().Config()
	names := make([]string, 0, len(ring.Shards))
	for _, s := range ring.Shards {
		names = append(names, s.Name)
	}
	if b, err := json.Marshal(ring); err == nil {
		log.Printf("ring v%d: %d shards × %d vnodes (%s)", ring.Version, len(ring.Shards), ring.VNodes, b)
	}
	probeEvery := f.probeInterval
	if probeEvery <= 0 {
		probeEvery = cluster.DefaultProbeInterval
	}
	log.Printf("phomd router on %s fronting %s (route-max-lag %d, probe every %v)",
		ln.Addr(), strings.Join(names, ", "), f.routeMaxLag, probeEvery)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("phomd: signal received, draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("phomd: shutdown: %v", err)
		}
	}()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("phomd: %v", err)
	}
	stop()
	<-drained
	log.Printf("phomd router stopped")
}
