// Command phomd serves the p-hom matching engine over HTTP/JSON.
//
//	phomd -addr :8080 -workers 8 -load web=site.json -load base=base.json
//
// Data graphs can be preloaded with repeated -load name=path flags
// (path is a JSON graph in the documented wire format, as produced by
// cmd/datagen) or registered at runtime:
//
//	curl -X POST localhost:8080/v1/graphs \
//	     -d '{"name": "web", "graph": {"nodes": [...], "edges": [...]}}'
//	curl -X POST localhost:8080/v1/match \
//	     -d '{"pattern": {...}, "graph": "web", "algo": "maxcard", "xi": 0.75}'
//	curl -X POST localhost:8080/v1/search \
//	     -d '{"pattern": {...}, "algo": "maxsim", "xi": 0.75, "sim": "content", "k": 5}'
//	curl localhost:8080/v1/stats
//
// Every registered graph's transitive closure is computed once and
// shared across all requests; /v1/stats reports the closure-cache hit
// rate alongside engine throughput counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphmatch/internal/closure"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/httpapi"
)

// loadFlags collects repeated -load name=path pairs.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxClosures := flag.Int("max-closures", 0, "LRU bound on resident reachability indexes (0 = default)")
	maxClosureBytes := flag.Int64("max-closure-bytes", 0, "LRU byte budget for resident closures and indexes (0 = unbounded)")
	reachTier := flag.String("reach-tier", "auto", "reachability index tier: auto (by graph size) | dense | sparse")
	queueDepth := flag.Int("queue", 0, "pending-request queue depth (0 = 4×workers)")
	maxExact := flag.Int("max-exact-nodes", 16, "largest pattern accepted for the exponential decide/decide11 algorithms (0 = unlimited)")
	searchMaxCand := flag.Int("search-max-candidates", 0, "default cap on /v1/search candidates reaching the matcher (0 = unlimited)")
	searchMinRes := flag.Float64("search-min-resemblance", 0, "default /v1/search prune threshold on the shingle-containment prefilter score (0 = keep all graphs)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty disables")
	var loads loadFlags
	flag.Var(&loads, "load", "preload a data graph as name=path.json (repeatable)")
	flag.Parse()

	tier, err := closure.ParseTierPolicy(*reachTier)
	if err != nil {
		log.Fatalf("phomd: %v", err)
	}

	eng := engine.New(engine.Options{
		Workers:              *workers,
		MaxClosures:          *maxClosures,
		MaxClosureBytes:      *maxClosureBytes,
		ReachTier:            tier,
		QueueDepth:           *queueDepth,
		ExactNodeLimit:       *maxExact,
		SearchMaxCandidates:  *searchMaxCand,
		SearchMinResemblance: *searchMinRes,
	})
	defer eng.Close()

	for _, spec := range loads {
		name, path, _ := strings.Cut(spec, "=")
		g, err := loadGraph(path)
		if err != nil {
			log.Fatalf("phomd: loading %s: %v", spec, err)
		}
		start := time.Now()
		if err := eng.Register(name, g); err != nil {
			log.Fatalf("phomd: registering %q: %v", name, err)
		}
		log.Printf("registered %q: %d nodes, %d edges (closure in %v)",
			name, g.NumNodes(), g.NumEdges(), time.Since(start).Round(time.Millisecond))
	}

	// The profiling endpoint listens on its own side port, never on the
	// serving address: the main server uses a dedicated handler, so the
	// pprof routes net/http/pprof hangs on DefaultServeMux stay
	// unreachable unless -pprof is set. This is how serving hot spots
	// (closure row sweeps, greedyMatch recursion) get profiled in place:
	//
	//	go tool pprof http://localhost:6060/debug/pprof/profile
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("phomd: pprof: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("phomd: shutdown: %v", err)
		}
	}()

	log.Printf("phomd listening on %s (%d workers)", *addr, eng.Stats().Workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("phomd: %v", err)
	}
	log.Printf("phomd stopped")
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadJSON(f)
}
