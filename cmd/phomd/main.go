// Command phomd serves the p-hom matching engine over HTTP/JSON.
//
//	phomd -addr :8080 -workers 8 -load web=site.json -load base=base.json
//
// Data graphs can be preloaded with repeated -load name=path flags
// (path is a JSON graph in the documented wire format, as produced by
// cmd/datagen) or registered at runtime:
//
//	curl -X POST localhost:8080/v1/graphs \
//	     -d '{"name": "web", "graph": {"nodes": [...], "edges": [...]}}'
//	curl -X POST localhost:8080/v1/match \
//	     -d '{"pattern": {...}, "graph": "web", "algo": "maxcard", "xi": 0.75}'
//	curl -X POST localhost:8080/v1/search \
//	     -d '{"pattern": {...}, "algo": "maxsim", "xi": 0.75, "sim": "content", "k": 5}'
//	curl localhost:8080/v1/stats
//
// Every registered graph's transitive closure is computed once and
// shared across all requests; /v1/stats reports the closure-cache hit
// rate alongside engine throughput counters.
//
// Every request is traced end to end: the last -trace-capacity
// completed traces (plus slow ones, over -trace-slow) are kept in an
// in-process flight recorder served at GET /debug/traces and
// /debug/traces/{id} (trace id or X-Request-ID), ?explain=1 on match
// and search returns the per-stage breakdown inline, and `phom trace`
// renders recorded span trees. -no-trace turns all of it off.
//
// With -store DIR the catalog is durable: every mutation (register,
// PATCH /v1/graphs/{name}, delete) is appended to a write-ahead log
// and fsynced before it is acknowledged, the WAL is compacted into a
// binary snapshot every -snapshot-every mutations (or on demand via
// POST /v1/admin/snapshot), and a restart replays snapshot + WAL —
// rebuilding closure tiers and the search index — before the listener
// accepts traffic:
//
//	phomd -addr :8080 -store /var/lib/phomd -snapshot-every 1000
//
// With -follow URL (requires -store) the process is a read-only
// replica: it boots from its local snapshot + WAL, then tails the
// primary's replication stream (GET /v1/replicate/since/{seq}),
// applying every record through the ordinary catalog path and
// persisting it locally, so a restarted follower resumes from its own
// tail. Followers serve reads (match, search, stats) with an
// X-Replication-Lag header, answer mutations with 421 + the primary's
// Location, and flip /readyz only once caught up within -ready-max-lag:
//
//	phomd -addr :8081 -store /var/lib/phomd-replica -follow http://primary:8080
//
// With -router the process is a stateless cluster front instead of a
// shard: a consistent-hash ring places every graph on one shard,
// mutations go to the owning shard's primary, single-graph reads are
// balanced across the shard's replicas within -route-max-lag, and
// /v1/search is scatter-gathered across all shards into an exact
// global top-k (see internal/cluster and DESIGN.md §11):
//
//	phomd -addr :8084 -router \
//	      -shards "s0=http://h0:8080,http://h0:8081;s1=http://h1:8080"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"graphmatch/internal/catalog"
	"graphmatch/internal/closure"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/httpapi"
)

// loadFlags collects repeated -load name=path pairs.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	maxClosures := flag.Int("max-closures", 0, "LRU bound on resident reachability indexes (0 = default)")
	maxClosureBytes := flag.Int64("max-closure-bytes", 0, "LRU byte budget for resident closures and indexes (0 = unbounded)")
	reachTier := flag.String("reach-tier", "auto", "reachability index tier: auto (by graph size) | dense | sparse")
	queueDepth := flag.Int("queue", 0, "pending-request queue depth (0 = 4×workers)")
	maxExact := flag.Int("max-exact-nodes", 16, "largest pattern accepted for the exponential decide/decide11 algorithms (0 = unlimited)")
	searchMaxCand := flag.Int("search-max-candidates", 0, "default cap on /v1/search candidates reaching the matcher (0 = unlimited)")
	searchMinRes := flag.Float64("search-min-resemblance", 0, "default /v1/search prune threshold on the shingle-containment prefilter score (0 = keep all graphs)")
	storePath := flag.String("store", "", "durable catalog directory (WAL + snapshots); empty = in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 1000, "compact the WAL into a snapshot every N mutations (0 = only on demand via /v1/admin/snapshot); needs -store")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty disables")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request wall-time bound, propagated into the matcher as a context deadline; timed-out requests answer 504 and free their worker (0 = unbounded)")
	maxPending := flag.Int("max-pending", -1, "admission-control bound on queued+running tasks; excess requests answer 429 with Retry-After (-1 = queue depth + workers, 0 = unlimited)")
	matchConc := flag.Int("match-concurrency", 0, "cap concurrent /v1/match and /v1/match/batch requests in the transport; excess answer 429 (0 = unlimited)")
	searchConc := flag.Int("search-concurrency", 0, "cap concurrent /v1/search requests (0 = unlimited)")
	patchConc := flag.Int("patch-concurrency", 0, "cap concurrent PATCH /v1/graphs requests (0 = unlimited)")
	maxBatch := flag.Int("max-batch", 0, "largest accepted /v1/match/batch element count (0 = default, -1 = unlimited)")
	accessLog := flag.Bool("access-log", false, "log one line per request (id, method, path, status, bytes, duration) to stderr")
	follow := flag.String("follow", "", "replicate from the phomd primary at this base URL (read-only follower mode; needs -store)")
	patchBatch := flag.Int("patch-coalesce-count", 64, "batch up to N concurrent patches per graph into one commit (group commit; ≤1 disables batching)")
	patchWindow := flag.Duration("patch-coalesce-window", 0, "wait this long for a patch burst to accumulate before each batch commit (0 = batch only while a commit is in flight)")
	deltaBudget := flag.Int("closure-delta-budget", 0, "incremental closure maintenance cost budget per patch (0 = auto-sized, -1 = always rebuild)")
	readyMaxLag := flag.Uint64("ready-max-lag", 0, "follower /readyz stays 503 while replication lag exceeds this many ops; needs -follow")
	noTrace := flag.Bool("no-trace", false, "disable request tracing and the /debug/traces flight recorder")
	traceCapacity := flag.Int("trace-capacity", 0, "flight-recorder ring size: last N completed traces kept for /debug/traces (0 = default 128)")
	traceSlow := flag.Duration("trace-slow", 0, "traces at or above this duration are retained in the slow ring even after falling out of the recent one (0 = default 250ms)")
	router := flag.Bool("router", false, "run as a stateless cluster router (scatter-gather front) instead of a shard; needs -shards or -ring")
	shardsSpec := flag.String("shards", "", `router shard spec: semicolon-separated "name=primary[,replica...]" URL lists (see internal/cluster.ParseSpec); needs -router`)
	ringPath := flag.String("ring", "", "router ring config JSON file (the serialized cluster.Config); alternative to -shards")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per shard on the consistent-hash ring (0 = default 64); needs -router")
	routeMaxLag := flag.Uint64("route-max-lag", 0, "route reads only to replicas whose probed replication lag is within this many ops; needs -router")
	probeInterval := flag.Duration("probe-interval", 0, "shard /readyz health-probe period (0 = default 500ms); needs -router")
	var loads loadFlags
	flag.Var(&loads, "load", "preload a data graph as name=path.json (repeatable)")
	flag.Parse()

	if *router {
		if *storePath != "" || *follow != "" || len(loads) > 0 {
			log.Fatalf("phomd: -router is stateless and conflicts with -store, -follow and -load")
		}
		runRouter(routerFlags{
			addr:          *addr,
			shards:        *shardsSpec,
			ringPath:      *ringPath,
			vnodes:        *vnodes,
			routeMaxLag:   *routeMaxLag,
			probeInterval: *probeInterval,
			timeout:       *requestTimeout,
			accessLog:     *accessLog,
			noTrace:       *noTrace,
			traceCapacity: *traceCapacity,
			traceSlow:     *traceSlow,
		})
		return
	}
	if *shardsSpec != "" || *ringPath != "" {
		log.Fatalf("phomd: -shards/-ring need -router")
	}

	if *follow != "" {
		if *storePath == "" {
			log.Fatalf("phomd: -follow requires -store (the follower persists what it replicates)")
		}
		if len(loads) > 0 {
			log.Fatalf("phomd: -load conflicts with -follow (a follower's catalog comes from the primary)")
		}
	}

	tier, err := closure.ParseTierPolicy(*reachTier)
	if err != nil {
		log.Fatalf("phomd: %v", err)
	}

	// Resolve the admission bound the way the engine resolves its pool:
	// the default keeps every admitted task's queue send non-blocking.
	resolvedWorkers := *workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	resolvedQueue := *queueDepth
	if resolvedQueue <= 0 {
		resolvedQueue = 4 * resolvedWorkers
	}
	pending := *maxPending
	if pending < 0 {
		pending = resolvedQueue + resolvedWorkers
	}

	// Bind the listener before the (possibly long) store replay so
	// orchestrators see the port up immediately: while the engine boots,
	// a placeholder handler answers /healthz 200 (the process is alive)
	// and everything else 503 with a Retry-After derived from the
	// replay's observed progress — a 30-second replay tells clients to
	// come back near its end, not every second. Once the engine is open
	// and the -load graphs are registered, the real handler is swapped
	// in atomically and /readyz flips to 200.
	est := httpapi.NewReplayEstimator()
	var handler atomic.Value // of http.Handler
	handler.Store(httpapi.Booting(est))
	srv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("phomd: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("phomd listening on %s (booting)", ln.Addr())

	// With -store, Open replays the persisted catalog (snapshot + WAL)
	// here — closures and search index rebuilt — while the listener
	// already answers probes.
	bootStart := time.Now()
	eng, err := engine.Open(engine.Options{
		Workers:              *workers,
		MaxClosures:          *maxClosures,
		MaxClosureBytes:      *maxClosureBytes,
		ReachTier:            tier,
		QueueDepth:           *queueDepth,
		MaxPending:           pending,
		ExactNodeLimit:       *maxExact,
		SearchMaxCandidates:  *searchMaxCand,
		SearchMinResemblance: *searchMinRes,
		StorePath:            *storePath,
		SnapshotEvery:        *snapshotEvery,
		FollowURL:            *follow,
		ReplayProgress:       est.Observe,
		PatchCoalesceCount:   *patchBatch,
		PatchCoalesceWindow:  *patchWindow,
		ClosureDeltaBudget:   *deltaBudget,
		NoTrace:              *noTrace,
		TraceCapacity:        *traceCapacity,
		TraceSlowThreshold:   *traceSlow,
	})
	if err != nil {
		log.Fatalf("phomd: opening engine: %v", err)
	}
	if *storePath != "" {
		st, _ := eng.StoreStats()
		log.Printf("store %s: replayed to seq %d (%d graphs, snapshot at seq %d, %d recovered tails) in %v",
			*storePath, st.LastSeq, eng.Catalog().Len(), st.SnapshotSeq, st.Recovered,
			time.Since(bootStart).Round(time.Millisecond))
	}

	for _, spec := range loads {
		name, path, _ := strings.Cut(spec, "=")
		g, err := loadGraph(path)
		if err != nil {
			log.Fatalf("phomd: loading %s: %v", spec, err)
		}
		start := time.Now()
		if err := eng.Register(name, g); err != nil {
			// A store-backed restart replays -load'ed graphs from the WAL
			// before this loop runs; re-registering them is the normal
			// restart-with-the-same-flags case, not a boot failure. The
			// store's copy wins (it includes any live patches).
			if *storePath != "" && errors.Is(err, catalog.ErrDuplicate) {
				log.Printf("skipping -load %q: already recovered from the store", name)
				continue
			}
			log.Fatalf("phomd: registering %q: %v", name, err)
		}
		log.Printf("registered %q: %d nodes, %d edges (closure in %v)",
			name, g.NumNodes(), g.NumEdges(), time.Since(start).Round(time.Millisecond))
	}

	// The profiling endpoint listens on its own side port, never on the
	// serving address: the main server uses a dedicated handler, so the
	// pprof routes net/http/pprof hangs on DefaultServeMux stay
	// unreachable unless -pprof is set. This is how serving hot spots
	// (closure row sweeps, greedyMatch recursion) get profiled in place:
	//
	//	go tool pprof http://localhost:6060/debug/pprof/profile
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("phomd: pprof: %v", err)
			}
		}()
	}

	// Warm-up done: swap in the real API and flip readiness. A follower
	// is ready only once it has provably been at the primary's head and
	// its lag is within -ready-max-lag — a cold replica that would serve
	// arbitrarily stale reads keeps answering /readyz 503, so load
	// balancers leave it out of rotation until it catches up.
	var ready atomic.Bool
	readyFn := ready.Load
	if *follow != "" {
		readyFn = func() bool {
			if !ready.Load() {
				return false
			}
			rs, ok := eng.ReplStats()
			return ok && rs.SyncedOnce && !rs.Diverged && rs.LagSeq <= *readyMaxLag
		}
	}
	var lg *log.Logger
	if *accessLog {
		lg = log.New(os.Stderr, "access ", log.LstdFlags|log.Lmicroseconds)
	}
	handler.Store(httpapi.NewWithOptions(eng, httpapi.Options{
		RequestTimeout:    *requestTimeout,
		MatchConcurrency:  *matchConc,
		SearchConcurrency: *searchConc,
		PatchConcurrency:  *patchConc,
		MaxBatch:          *maxBatch,
		AccessLog:         lg,
		Ready:             readyFn,
	}))
	ready.Store(true)

	// Graceful shutdown, in dependency order: SIGINT/SIGTERM stops the
	// listener (Shutdown waits for in-flight HTTP requests), then
	// eng.Close drains the worker pool and — with -store — fsyncs and
	// closes the WAL, so no acknowledged mutation is left in an
	// unsynced tail when the process exits.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("phomd: signal received, draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("phomd: shutdown: %v", err)
		}
	}()

	if *follow != "" {
		log.Printf("phomd following %s on %s (%d workers, ready-max-lag %d)",
			*follow, ln.Addr(), eng.Stats().Workers, *readyMaxLag)
	} else {
		log.Printf("phomd ready on %s (%d workers, max-pending %d, request-timeout %v)",
			ln.Addr(), eng.Stats().Workers, pending, *requestTimeout)
	}
	err = <-serveErr
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Close before exiting even on a listener failure: -load
		// registrations may already sit in the WAL.
		eng.Close()
		log.Fatalf("phomd: %v", err)
	}
	// Serve returns the moment the listener closes, while Shutdown is
	// still draining in-flight handlers — wait for the drain before
	// closing the engine underneath those requests.
	stop()
	<-drained
	eng.Close()
	if st, ok := eng.StoreStats(); ok {
		log.Printf("phomd stopped (WAL synced at seq %d)", st.LastSeq)
	} else {
		log.Printf("phomd stopped")
	}
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadJSON(f)
}
