// Command benchsearch measures the catalog-wide search subsystem: it
// registers a fleet of webgen site mirrors (several sites × several
// archived versions each, ≥100 graphs), then ranks skeleton patterns
// against the whole catalog twice — once through the shingle/structural
// prefilter and once as a brute-force scan that matches every graph —
// and emits BENCH_search.json comparing the two: matcher invocations
// saved (the prune rate), p50/p99 search latency per path, and whether
// the prefiltered top-k equals the brute-force top-k on every query.
//
//	benchsearch -out BENCH_search.json          # full run
//	benchsearch -short -out BENCH_search.json   # CI-sized (smaller sites, same catalog size)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"time"

	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/webgen"
)

// pathReport summarises one search path (prefiltered or brute).
type pathReport struct {
	MatcherInvocations int   `json:"matcher_invocations"`
	P50US              int64 `json:"p50_us"`
	P99US              int64 `json:"p99_us"`
	MaxUS              int64 `json:"max_us"`
}

// report is the BENCH_search.json schema.
type report struct {
	Timestamp      string     `json:"timestamp"`
	GoVersion      string     `json:"go_version"`
	GOMAXPROCS     int        `json:"gomaxprocs"`
	Graphs         int        `json:"graphs"`
	Sites          int        `json:"sites"`
	Versions       int        `json:"versions"`
	Pages          int        `json:"pages_per_site"`
	PatternNodes   int        `json:"pattern_nodes"`
	K              int        `json:"k"`
	Reps           int        `json:"reps"`
	Algo           string     `json:"algo"`
	Xi             float64    `json:"xi"`
	MinResemblance float64    `json:"min_resemblance"`
	RegisterSec    float64    `json:"register_sec"`
	IndexBuildSec  float64    `json:"index_build_sec"`
	Prefilter      pathReport `json:"prefilter"`
	Brute          pathReport `json:"brute"`
	// PruneRate is the fraction of brute-force matcher invocations the
	// prefilter skipped: 1 − prefilter/brute.
	PruneRate float64 `json:"prune_rate"`
	// EqualTopK reports that every query's prefiltered ranking was
	// identical (names and order) to the brute-force ranking.
	EqualTopK  bool    `json:"equal_topk"`
	SpeedupP50 float64 `json:"speedup_p50"`
}

func main() {
	out := flag.String("out", "BENCH_search.json", "output path")
	sites := flag.Int("sites", 10, "distinct web sites")
	versions := flag.Int("versions", 11, "archived versions per site (sites × versions = catalog size)")
	pages := flag.Int("pages", 300, "pages per site version")
	patNodes := flag.Int("pattern", 12, "pattern skeleton size (top-k hubs of each site's oldest version)")
	k := flag.Int("k", 5, "ranked hits per search")
	reps := flag.Int("reps", 3, "timed repetitions per query")
	minRes := flag.Float64("min-resemblance", 0.1, "prefilter prune threshold")
	xi := flag.Float64("xi", 0.75, "node-similarity threshold ξ")
	short := flag.Bool("short", false, "CI-sized run: smaller sites and one repetition, same catalog size")
	flag.Parse()
	if *short {
		*pages = 120
		*reps = 1
	}

	eng := engine.New(engine.Options{MaxClosures: *sites**versions + 8})
	defer eng.Close()

	categories := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	patterns := make([]*graph.Graph, *sites)
	regStart := time.Now()
	for s := 0; s < *sites; s++ {
		arch := webgen.Generate(webgen.Config{
			Category: categories[s%len(categories)],
			Pages:    *pages,
			Versions: *versions,
			Seed:     int64(1000 + s),
		})
		for v, g := range arch.Versions {
			if err := eng.Register(fmt.Sprintf("site%02d/v%02d", s, v), g); err != nil {
				log.Fatal(err)
			}
		}
		patterns[s] = webgen.TopKSkeleton(arch.Versions[0], *patNodes)
	}
	registerSec := time.Since(regStart).Seconds()

	ctx := context.Background()
	base := engine.SearchRequest{
		Algo: engine.MaxSim,
		Xi:   *xi,
		Sim:  engine.SimContent,
		K:    *k,
	}

	// One untimed warm-up builds the lazy stage-1 summaries for the
	// whole catalog, so the timed runs measure steady-state serving.
	// Its Stage1 time is the index build cost (summaries + postings);
	// the warm-up's matching fan-out is deliberately excluded.
	warm := base
	warm.Pattern = patterns[0]
	warm.MinResemblance = *minRes
	warmRes := eng.Search(ctx, warm)
	if warmRes.Err != nil {
		log.Fatal(warmRes.Err)
	}
	indexBuildSec := warmRes.Stats.Stage1.Seconds()

	var (
		preLats, bruteLats []time.Duration
		preInv, bruteInv   int
		equal              = true
	)
	for rep := 0; rep < *reps; rep++ {
		for s := 0; s < *sites; s++ {
			pre := base
			pre.Pattern = patterns[s]
			pre.MinResemblance = *minRes
			t0 := time.Now()
			preRes := eng.Search(ctx, pre)
			preLats = append(preLats, time.Since(t0))
			if preRes.Err != nil {
				log.Fatal(preRes.Err)
			}
			preInv += preRes.Stats.Matched

			brute := base
			brute.Pattern = patterns[s]
			brute.NoPrefilter = true
			t0 = time.Now()
			bruteRes := eng.Search(ctx, brute)
			bruteLats = append(bruteLats, time.Since(t0))
			if bruteRes.Err != nil {
				log.Fatal(bruteRes.Err)
			}
			bruteInv += bruteRes.Stats.Matched

			if !sameRanking(preRes, bruteRes) {
				equal = false
				log.Printf("site%02d: prefiltered top-k diverges from brute force:\n  pre:   %v\n  brute: %v",
					s, names(preRes), names(bruteRes))
			}
		}
	}

	rep := report{
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Graphs:         *sites * *versions,
		Sites:          *sites,
		Versions:       *versions,
		Pages:          *pages,
		PatternNodes:   *patNodes,
		K:              *k,
		Reps:           *reps,
		Algo:           string(base.Algo),
		Xi:             *xi,
		MinResemblance: *minRes,
		RegisterSec:    registerSec,
		IndexBuildSec:  indexBuildSec,
		Prefilter:      summarise(preLats, preInv),
		Brute:          summarise(bruteLats, bruteInv),
		EqualTopK:      equal,
	}
	if bruteInv > 0 {
		rep.PruneRate = 1 - float64(preInv)/float64(bruteInv)
	}
	if rep.Prefilter.P50US > 0 {
		rep.SpeedupP50 = float64(rep.Brute.P50US) / float64(rep.Prefilter.P50US)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	encoder := json.NewEncoder(f)
	encoder.SetIndent("", "  ")
	if err := encoder.Encode(rep); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d graphs, %d queries ×%d: prune rate %.0f%%, equal top-k %v, p50 %dµs vs brute %dµs (%.1f×) → %s",
		rep.Graphs, *sites, *reps, rep.PruneRate*100, equal,
		rep.Prefilter.P50US, rep.Brute.P50US, rep.SpeedupP50, *out)
	if rep.PruneRate < 0.5 {
		log.Fatalf("prune rate %.2f below the 0.5 acceptance bar", rep.PruneRate)
	}
	if !equal {
		log.Fatal("prefiltered top-k diverged from the brute-force scan")
	}
}

func names(r engine.SearchResult) []string {
	out := make([]string, len(r.Hits))
	for i, h := range r.Hits {
		out[i] = h.Graph
	}
	return out
}

func sameRanking(a, b engine.SearchResult) bool {
	if len(a.Hits) != len(b.Hits) {
		return false
	}
	for i := range a.Hits {
		if a.Hits[i].Graph != b.Hits[i].Graph {
			return false
		}
	}
	return true
}

func summarise(lats []time.Duration, invocations int) pathReport {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(p float64) int64 {
		if len(sorted) == 0 {
			return 0
		}
		return sorted[int(p*float64(len(sorted)-1))].Microseconds()
	}
	return pathReport{
		MatcherInvocations: invocations,
		P50US:              pct(0.50),
		P99US:              pct(0.99),
		MaxUS:              pct(1.0),
	}
}
