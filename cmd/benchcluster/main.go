// Command benchcluster measures the sharded serving tier end to end:
// it boots a real cluster — N shards × R replicas, each replica a
// phomd engine behind the full HTTP API, followers replicating from
// their shard primary over the wire — fronts it with the consistent-
// hash router, and compares it against a single node holding the same
// catalog with the same per-node worker budget (Workers=1 everywhere,
// so the cluster's advantage is exactly its horizontal parallelism).
//
// Two things are gated, and both write into BENCH_cluster.json:
//
//   - Exactness: every scatter-gathered /v1/search top-k must be
//     bit-identical (hit array JSON) to the single node's answer. Any
//     divergence fails the run — this is the empirical check of the
//     DESIGN.md §11 merge-exactness argument.
//
//   - Scaling: aggregate search throughput through the router must be
//     ≥ -min-speedup × the single node's (default 2.0 at 3 shards ×
//     2 replicas). On hosts without enough cores to express the
//     parallelism (NumCPU ≤ shards) the measurement is still taken
//     and reported with cpu_limited=true, but the throughput gate is
//     skipped — a scaling benchmark on a serial machine measures the
//     scheduler, not the architecture. CI runs on multi-core runners
//     where the gate is live.
//
//     benchcluster -out BENCH_cluster.json          # full run
//     benchcluster -short -out BENCH_cluster.json   # CI-sized
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"graphmatch/internal/cluster"
	"graphmatch/internal/engine"
	"graphmatch/internal/graph"
	"graphmatch/internal/httpapi"
	"graphmatch/internal/webgen"
)

// node is one serving process stand-in: an engine behind the real
// HTTP API on a real TCP listener.
type node struct {
	eng *engine.Engine
	srv *http.Server
	url string
}

func startNode(eng *engine.Engine) (*node, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: httpapi.New(eng)}
	go srv.Serve(ln)
	return &node{eng: eng, srv: srv, url: "http://" + ln.Addr().String()}, nil
}

func (n *node) close() {
	n.srv.Close()
	n.eng.Close()
}

// sideReport is one side's (single node or cluster) measured serving
// performance.
type sideReport struct {
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50US   int64   `json:"p50_us"`
	P95US   int64   `json:"p95_us"`
	MaxUS   int64   `json:"max_us"`
}

// report is the BENCH_cluster.json schema.
type report struct {
	Timestamp    string     `json:"timestamp"`
	GoVersion    string     `json:"go_version"`
	GOMAXPROCS   int        `json:"gomaxprocs"`
	NumCPU       int        `json:"num_cpu"`
	Shards       int        `json:"shards"`
	Replicas     int        `json:"replicas_per_shard"`
	RingVNodes   int        `json:"ring_vnodes"`
	Graphs       int        `json:"graphs"`
	Pages        int        `json:"pages_per_site"`
	PatternNodes int        `json:"pattern_nodes"`
	K            int        `json:"k"`
	Clients      int        `json:"clients"`
	RegisterSec  float64    `json:"register_sec"`
	SyncSec      float64    `json:"sync_sec"`
	SingleNode   sideReport `json:"single_node"`
	Cluster      sideReport `json:"cluster"`
	// Speedup is Cluster.QPS / SingleNode.QPS — the aggregate search
	// scaling the sharded tier buys at equal per-node worker budget.
	Speedup float64 `json:"speedup"`
	// EqualTopK reports that every routed search's hit array was
	// bit-identical to the single node's.
	EqualTopK bool `json:"equal_topk"`
	// CPULimited marks a host without enough cores for the cluster's
	// parallelism; the throughput gate is skipped when set.
	CPULimited bool `json:"cpu_limited"`
	// MinSpeedup is the throughput gate actually applied (0 = skipped).
	MinSpeedup float64 `json:"min_speedup"`
}

func main() {
	out := flag.String("out", "BENCH_cluster.json", "output path")
	shardsN := flag.Int("shards", 3, "shard count")
	replicas := flag.Int("replicas", 2, "replicas per shard (primary + R-1 followers)")
	sites := flag.Int("sites", 12, "distinct web sites")
	versions := flag.Int("versions", 2, "archived versions per site (sites × versions = catalog size)")
	pages := flag.Int("pages", 60, "pages per site version")
	patNodes := flag.Int("pattern", 8, "pattern skeleton size")
	k := flag.Int("k", 10, "ranked hits per search")
	reps := flag.Int("reps", 6, "timed repetitions of the query set")
	clients := flag.Int("clients", 8, "concurrent benchmark clients")
	minSpeedup := flag.Float64("min-speedup", 2.0, "fail unless cluster/single QPS ≥ this (0 disables; auto-skipped on CPU-starved hosts)")
	short := flag.Bool("short", false, "CI-sized run: smaller sites, fewer repetitions")
	flag.Parse()
	if *short {
		*sites = 9
		*pages = 30
		*reps = 3
	}
	if *replicas < 1 {
		log.Fatalf("benchcluster: -replicas must be ≥ 1")
	}

	// --- Catalog ---------------------------------------------------------
	categories := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	var names []string
	var graphs []*graph.Graph
	patterns := make([]*graph.Graph, *sites)
	for s := 0; s < *sites; s++ {
		arch := webgen.Generate(webgen.Config{
			Category: categories[s%len(categories)],
			Pages:    *pages,
			Versions: *versions,
			Seed:     int64(4000 + s),
		})
		for v, g := range arch.Versions {
			names = append(names, fmt.Sprintf("s%02dv%02d", s, v))
			graphs = append(graphs, g)
		}
		patterns[s] = webgen.TopKSkeleton(arch.Versions[0], *patNodes)
	}

	// --- Single-node baseline (Workers=1, same budget as each replica) --
	single, err := startNode(engine.New(engine.Options{Workers: 1, MaxClosures: len(graphs) + 8}))
	if err != nil {
		log.Fatal(err)
	}
	defer single.close()

	// --- Cluster: N shards × R replicas, real replication ----------------
	tmp, err := os.MkdirTemp("", "benchcluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	cfg := cluster.Config{Version: 1}
	var primaries, followers []*node
	for i := 0; i < *shardsN; i++ {
		pdir := fmt.Sprintf("%s/s%d-primary", tmp, i)
		peng, err := engine.Open(engine.Options{Workers: 1, MaxClosures: len(graphs) + 8, StorePath: pdir})
		if err != nil {
			log.Fatal(err)
		}
		p, err := startNode(peng)
		if err != nil {
			log.Fatal(err)
		}
		defer p.close()
		primaries = append(primaries, p)
		eps := []string{p.url}
		for r := 1; r < *replicas; r++ {
			fdir := fmt.Sprintf("%s/s%d-follower%d", tmp, i, r)
			feng, err := engine.Open(engine.Options{
				Workers: 1, MaxClosures: len(graphs) + 8,
				StorePath: fdir, FollowURL: p.url,
			})
			if err != nil {
				log.Fatal(err)
			}
			f, err := startNode(feng)
			if err != nil {
				log.Fatal(err)
			}
			defer f.close()
			followers = append(followers, f)
			eps = append(eps, f.url)
		}
		cfg.Shards = append(cfg.Shards, cluster.ShardConfig{Name: fmt.Sprintf("s%d", i), Endpoints: eps})
	}
	rt, err := cluster.NewRouter(cfg, cluster.RouterOptions{
		ProbeInterval:  100 * time.Millisecond,
		RequestTimeout: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	rsrv := &http.Server{Handler: rt}
	go rsrv.Serve(rln)
	defer rsrv.Close()
	routerURL := "http://" + rln.Addr().String()

	// --- Register the catalog on both sides, over the wire ---------------
	regStart := time.Now()
	for i, name := range names {
		registerOrDie(routerURL, names[i], graphs[i])
		registerOrDie(single.url, name, graphs[i])
	}
	registerSec := time.Since(regStart).Seconds()

	// Followers must be provably at their primary's head before the
	// equivalence pass: a stale replica answering a balanced read would
	// turn a replication race into a false divergence.
	syncStart := time.Now()
	waitSynced(primaries, followers, 2*time.Minute)
	syncSec := time.Since(syncStart).Seconds()
	// Let the router's prober observe the synced, lag-0 state.
	time.Sleep(300 * time.Millisecond)

	// --- Equivalence gate (doubles as the warm-up pass) ------------------
	equal := true
	for pi, p := range patterns {
		req := httpapi.SearchRequest{Pattern: p, Algo: "maxsim", Sim: "content", K: *k}
		rHits := searchHits(routerURL, req)
		sHits := searchHits(single.url, req)
		if !bytes.Equal(rHits, sHits) {
			equal = false
			log.Printf("DIVERGENCE pattern %d:\n  cluster: %s\n  single:  %s", pi, rHits, sHits)
		}
	}

	// --- Throughput ------------------------------------------------------
	queries := make([]httpapi.SearchRequest, 0, len(patterns)**reps)
	for r := 0; r < *reps; r++ {
		for _, p := range patterns {
			queries = append(queries, httpapi.SearchRequest{Pattern: p, Algo: "maxsim", Sim: "content", K: *k})
		}
	}
	singleSide := drive(single.url, queries, *clients)
	clusterSide := drive(routerURL, queries, *clients)
	speedup := 0.0
	if singleSide.QPS > 0 {
		speedup = clusterSide.QPS / singleSide.QPS
	}

	cpuLimited := runtime.NumCPU() <= *shardsN
	gate := *minSpeedup
	if cpuLimited && gate > 0 {
		log.Printf("host has %d CPU(s) for a %d-shard cluster: throughput gate skipped (cpu_limited)",
			runtime.NumCPU(), *shardsN)
		gate = 0
	}

	rep := report{
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Shards:       *shardsN,
		Replicas:     *replicas,
		RingVNodes:   rt.Ring().Config().VNodes,
		Graphs:       len(graphs),
		Pages:        *pages,
		PatternNodes: *patNodes,
		K:            *k,
		Clients:      *clients,
		RegisterSec:  round3(registerSec),
		SyncSec:      round3(syncSec),
		SingleNode:   singleSide,
		Cluster:      clusterSide,
		Speedup:      round3(speedup),
		EqualTopK:    equal,
		CPULimited:   cpuLimited,
		MinSpeedup:   gate,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", data)
	fmt.Printf("\n%d graphs over %d shards × %d replicas: single %.1f q/s, cluster %.1f q/s — %.2fx, equal_topk=%v\n",
		len(graphs), *shardsN, *replicas, singleSide.QPS, clusterSide.QPS, speedup, equal)

	if !equal {
		log.Fatalf("FAIL: sharded top-k diverged from single node")
	}
	if gate > 0 && speedup < gate {
		log.Fatalf("FAIL: speedup %.2fx below the %.2fx gate", speedup, gate)
	}
}

func registerOrDie(base, name string, g *graph.Graph) {
	body, err := json.Marshal(httpapi.RegisterRequest{Name: name, Graph: g})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		log.Fatalf("register %s on %s: %d %s", name, base, resp.StatusCode, b)
	}
	io.Copy(io.Discard, resp.Body)
}

// waitSynced blocks until every follower has durably applied its
// primary's full log. Followers are grouped under primaries in
// registration order: followers[i*(R-1)...] belong to primaries[i].
func waitSynced(primaries, followers []*node, timeout time.Duration) {
	if len(followers) == 0 {
		return
	}
	perPrimary := len(followers) / len(primaries)
	deadline := time.Now().Add(timeout)
	for {
		synced := true
		for i, f := range followers {
			p := primaries[i/perPrimary]
			rs, ok := f.eng.ReplStats()
			if !ok {
				log.Fatalf("node %s is not a follower", f.url)
			}
			ps, _ := p.eng.StoreStats()
			if !(rs.SyncedOnce && !rs.Diverged && rs.LastApplied == ps.LastSeq) {
				synced = false
				break
			}
		}
		if synced {
			return
		}
		if time.Now().After(deadline) {
			log.Fatalf("followers never caught up within %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// searchHits POSTs one search and returns the hit array re-marshalled
// as canonical JSON (both sides decode into the same struct first, so
// field order and float formatting cannot cause false divergence —
// only actual values can).
func searchHits(base string, req httpapi.SearchRequest) []byte {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("search on %s: %d %s", base, resp.StatusCode, data)
	}
	var sr httpapi.SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		log.Fatalf("decoding search response from %s: %v", base, err)
	}
	hits, _ := json.Marshal(sr.Hits)
	return hits
}

// drive runs the query set once through `clients` concurrent workers
// against base and reports aggregate throughput and latency.
func drive(base string, queries []httpapi.SearchRequest, clients int) sideReport {
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		bodies[i], _ = json.Marshal(q)
	}
	lat := make([]time.Duration, len(queries))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients * 2}}
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(bodies) {
					return
				}
				qStart := time.Now()
				resp, err := client.Post(base+"/v1/search", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					log.Fatalf("search against %s: %v", base, err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("search against %s: status %d", base, resp.StatusCode)
				}
				lat[i] = time.Since(qStart)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	return sideReport{
		Queries: len(queries),
		QPS:     round3(float64(len(queries)) / elapsed.Seconds()),
		P50US:   lat[len(lat)/2].Microseconds(),
		P95US:   lat[len(lat)*95/100].Microseconds(),
		MaxUS:   lat[len(lat)-1].Microseconds(),
	}
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
