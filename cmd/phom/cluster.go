package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"graphmatch/internal/cluster"
)

// runCluster implements the cluster verb: fetch GET /v1/cluster from a
// router and render the ring layout (shard → vnodes → owned-graph
// sample), each endpoint's live /readyz state and replication lag, and
// exit non-zero when any shard is unreachable — so deploy scripts can
// gate on cluster health the same way snapshot scripts gate on
// `phom snapshot`.
func runCluster(args []string) {
	fs := flag.NewFlagSet("phom cluster", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8084", "phomd router base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	_ = fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(strings.TrimRight(*addr, "/") + "/v1/cluster")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	var out cluster.ClusterResponse
	if err := json.Unmarshal(body, &out); err != nil {
		fatal(fmt.Errorf("decoding /v1/cluster response: %w", err))
	}

	fmt.Printf("ring v%d: %d shards × %d vnodes\n",
		out.Ring.Version, len(out.Ring.Shards), out.Ring.VNodes)
	for _, s := range out.Shards {
		graphs := "unreachable"
		if s.Graphs >= 0 {
			graphs = fmt.Sprintf("%d graphs", s.Graphs)
		}
		fmt.Printf("\n%s  (%d vnodes, %s", s.Name, s.VNodes, graphs)
		if s.Misplaced > 0 {
			fmt.Printf(", %d misplaced", s.Misplaced)
		}
		fmt.Printf(")\n")
		if len(s.Sample) > 0 {
			fmt.Printf("  sample: %s\n", strings.Join(s.Sample, ", "))
		}
		if s.Error != "" {
			fmt.Printf("  error:  %s\n", s.Error)
		}
		for _, ep := range s.Endpoints {
			role := "replica"
			if ep.Primary {
				role = "primary"
			}
			state := "ready"
			switch {
			case !ep.Probed:
				state = "unprobed"
			case !ep.Ready:
				state = "NOT READY"
				if ep.Error != "" {
					state += " (" + ep.Error + ")"
				}
			}
			fmt.Printf("  %-7s %-28s %-10s lag=%d\n", role, ep.URL, state, ep.Lag)
		}
	}
	if !out.Reachable {
		fmt.Fprintln(os.Stderr, "\nphom cluster: one or more shards unreachable")
		os.Exit(1)
	}
}
