package main

// phom repl: replication status of a running phomd follower, from the
// replication section of GET /v1/stats. Exits non-zero when the server
// is unreachable, is not a follower, or has diverged from its primary
// — so a health check or deploy gate can script it:
//
//	phom repl -addr http://replica:8081

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"graphmatch/internal/repl"
)

func runRepl(args []string) {
	fs := flag.NewFlagSet("phom repl", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "follower base URL")
	asJSON := fs.Bool("json", false, "print the raw replication stats object")
	_ = fs.Parse(args)

	body := getOrDie(*addr + "/v1/stats")
	var stats struct {
		Replication *repl.Stats `json:"replication"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		fatal(fmt.Errorf("decoding /v1/stats: %w", err))
	}
	rs := stats.Replication
	if rs == nil {
		fatal(fmt.Errorf("%s is not a follower (no replication section in /v1/stats)", *addr))
	}

	if *asJSON {
		out, err := json.MarshalIndent(rs, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		state := "catching up"
		switch {
		case rs.Diverged:
			state = "DIVERGED"
		case !rs.Connected:
			state = "disconnected"
		case rs.SyncedOnce && rs.LagSeq == 0:
			state = "in sync"
		case rs.SyncedOnce:
			state = "lagging"
		}
		fmt.Printf("following       %s (%s)\n", rs.Primary, state)
		fmt.Printf("last applied    seq %d (primary at seq %d, lag %d)\n",
			rs.LastApplied, rs.PrimarySeq, rs.LagSeq)
		fmt.Printf("seconds behind  %.1f\n", rs.SecondsBehind)
		fmt.Printf("applied         %d ops, %d reconnects, %d resyncs\n",
			rs.Applied, rs.Reconnects, rs.Resyncs)
		if rs.LastError != "" {
			fmt.Printf("last error      %s\n", rs.LastError)
		}
	}

	if rs.Diverged {
		fmt.Fprintf(os.Stderr, "phom repl: follower has diverged from %s\n", rs.Primary)
		os.Exit(1)
	}
}
