package main

// The metrics and top verbs are the CLI side of phomd's observability:
//
//	phom metrics -addr http://localhost:8080 [-grep engine_]
//	phom top     -addr http://localhost:8080
//
// metrics dumps the raw Prometheus exposition (optionally filtered);
// top renders a one-screen operational summary — pool pressure, cache
// hit rate, shed counts, per-route request counts and p50/p99 latency
// — computed client-side from /metrics and /v1/stats. Both exit
// non-zero on transport failures and HTTP error responses, like every
// other phom verb.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"graphmatch/internal/metrics"
)

func runMetrics(args []string) {
	fs := flag.NewFlagSet("phom metrics", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "phomd base URL")
	grep := fs.String("grep", "", "print only lines containing this substring")
	_ = fs.Parse(args)

	body := getOrDie(*addr + "/metrics")
	if *grep == "" {
		os.Stdout.Write(body)
		return
	}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.Contains(line, *grep) {
			fmt.Println(line)
		}
	}
}

// statsWire mirrors the /v1/stats response shape (see httpapi).
type statsWire struct {
	Engine struct {
		Requests  uint64 `json:"requests"`
		Executed  uint64 `json:"executed"`
		Coalesced uint64 `json:"coalesced"`
		Errors    uint64 `json:"errors"`
		Shed      uint64 `json:"shed"`
		Pending   int64  `json:"pending"`
		Batches   uint64 `json:"batches"`
		Searches  uint64 `json:"searches"`
		Workers   int    `json:"workers"`
	} `json:"engine"`
	Catalog struct {
		Graphs           int     `json:"graphs"`
		ResidentClosures int     `json:"resident_closures"`
		ResidentDense    int     `json:"resident_dense"`
		ResidentSparse   int     `json:"resident_sparse"`
		ResidentBytes    int64   `json:"resident_bytes"`
		Hits             uint64  `json:"hits"`
		Misses           uint64  `json:"misses"`
		Evictions        uint64  `json:"evictions"`
		HitRate          float64 `json:"hit_rate"`
	} `json:"catalog"`
	Store *struct {
		LastSeq       uint64 `json:"last_seq"`
		Appended      uint64 `json:"appended"`
		SinceSnapshot int    `json:"since_snapshot"`
		Snapshots     uint64 `json:"snapshots"`
		Segments      int    `json:"segments"`
		WALBytes      int64  `json:"wal_bytes"`
	} `json:"store"`
}

func runTop(args []string) {
	fs := flag.NewFlagSet("phom top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "phomd base URL")
	_ = fs.Parse(args)

	var st statsWire
	if err := json.Unmarshal(getOrDie(*addr+"/v1/stats"), &st); err != nil {
		fatal(fmt.Errorf("decoding /v1/stats: %w", err))
	}
	fams, err := metrics.Parse(bytes.NewReader(getOrDie(*addr + "/metrics")))
	if err != nil {
		fatal(fmt.Errorf("parsing /metrics: %w", err))
	}

	e := st.Engine
	fmt.Printf("engine:  %d workers, pending %d (queue depth %s), executed %d / %d requests (%d coalesced, %d shed, %d errors)\n",
		e.Workers, e.Pending, gaugeStr(fams, "phomd_engine_queue_depth"),
		e.Executed, e.Requests, e.Coalesced, e.Shed, e.Errors)
	c := st.Catalog
	fmt.Printf("catalog: %d graphs, closure hit rate %.1f%% (%d hits, %d misses, %d evictions), %d resident (%d dense, %d sparse), %s\n",
		c.Graphs, c.HitRate*100, c.Hits, c.Misses, c.Evictions,
		c.ResidentClosures, c.ResidentDense, c.ResidentSparse, sizeStr(c.ResidentBytes))
	if s := st.Store; s != nil {
		fmt.Printf("store:   seq %d, %d appended (%d since snapshot), %d snapshots, %d segments, %s WAL\n",
			s.LastSeq, s.Appended, s.SinceSnapshot, s.Snapshots, s.Segments, sizeStr(s.WALBytes))
	}

	routes := routeTable(fams)
	if len(routes) == 0 {
		fmt.Println("\nno per-route samples yet (no requests served since start)")
	} else {
		fmt.Printf("\n%-28s %8s %8s %10s %10s\n", "route", "reqs", "errs", "p50", "p99")
		for _, r := range routes {
			fmt.Printf("%-28s %8d %8d %10s %10s\n",
				r.route, r.reqs, r.errs, durStr(r.p50), durStr(r.p99))
		}
	}
	printSlowTraces(*addr)
}

// printSlowTraces appends the flight recorder's slowest recent traces
// to the top view; skipped silently when the server runs -no-trace or
// predates /debug/traces.
func printSlowTraces(addr string) {
	resp, err := http.Get(addr + "/debug/traces")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return
	}
	var list struct {
		Traces []struct {
			ID         string `json:"id"`
			Route      string `json:"route"`
			DurationUS int64  `json:"duration_us"`
			Dominant   string `json:"dominant"`
		} `json:"traces"`
	}
	if json.Unmarshal(body, &list) != nil || len(list.Traces) == 0 {
		return
	}
	sort.SliceStable(list.Traces, func(i, j int) bool {
		return list.Traces[i].DurationUS > list.Traces[j].DurationUS
	})
	n := len(list.Traces)
	if n > 5 {
		n = 5
	}
	fmt.Printf("\nslowest recent traces (phom trace <id> for the span tree):\n")
	fmt.Printf("%-32s  %-26s %10s  %s\n", "trace_id", "route", "dur", "dominant")
	for _, t := range list.Traces[:n] {
		fmt.Printf("%-32s  %-26s %10s  %s\n",
			t.ID, t.Route, durStr(float64(t.DurationUS)/1e6), t.Dominant)
	}
}

type routeRow struct {
	route    string
	reqs     uint64
	errs     uint64
	p50, p99 float64
}

// routeTable folds the per-route counter and latency families into
// display rows. Quantiles use the same linear interpolation Prometheus
// applies to histogram_quantile.
func routeTable(fams map[string]*metrics.Family) []routeRow {
	byRoute := map[string]*routeRow{}
	if f := fams["phomd_http_requests_total"]; f != nil {
		for _, s := range f.Samples {
			route := s.Labels["route"]
			if route == "" {
				continue
			}
			row := byRoute[route]
			if row == nil {
				row = &routeRow{route: route}
				byRoute[route] = row
			}
			row.reqs += uint64(s.Value)
			if code := s.Labels["code"]; len(code) > 0 && code[0] != '2' {
				row.errs += uint64(s.Value)
			}
		}
	}
	if f := fams["phomd_http_request_seconds"]; f != nil {
		buckets := map[string][]metrics.Sample{}
		for _, s := range f.Samples {
			if strings.HasSuffix(s.Name, "_bucket") {
				route := s.Labels["route"]
				buckets[route] = append(buckets[route], s)
			}
		}
		for route, bs := range buckets {
			row := byRoute[route]
			if row == nil {
				row = &routeRow{route: route}
				byRoute[route] = row
			}
			row.p50 = metrics.HistogramQuantile(0.50, bs)
			row.p99 = metrics.HistogramQuantile(0.99, bs)
		}
	}
	rows := make([]routeRow, 0, len(byRoute))
	for _, r := range byRoute {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].route < rows[j].route })
	return rows
}

func gaugeStr(fams map[string]*metrics.Family, name string) string {
	if f := fams[name]; f != nil && len(f.Samples) > 0 {
		return fmt.Sprintf("%.0f", f.Samples[0].Value)
	}
	return "?"
}

func durStr(seconds float64) string {
	switch {
	case seconds != seconds: // NaN: no observations
		return "-"
	case seconds < 1e-3:
		return fmt.Sprintf("%.0fµs", seconds*1e6)
	case seconds < 1:
		return fmt.Sprintf("%.1fms", seconds*1e3)
	default:
		return fmt.Sprintf("%.2fs", seconds)
	}
}

func sizeStr(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// getOrDie GETs a URL and returns the body; transport failures and
// non-2xx statuses are fatal with a non-zero exit, mirroring postOrDie.
func getOrDie(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			fatal(fmt.Errorf("%s: %s", resp.Status, e.Error))
		}
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	return body
}
