package main

// The trace verb is the CLI side of phomd's flight recorder:
//
//	phom trace -addr http://localhost:8080            # recent traces, newest first
//	phom trace -addr http://localhost:8080 <id>       # one span tree
//
// The id accepts either a 32-hex trace id (from an ?explain=1
// response, an error body's trace_id, or a traceparent header) or the
// X-Request-ID a response carried. Exits non-zero on transport
// failures and HTTP errors, like every phom verb.

import (
	"encoding/json"
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"graphmatch/internal/httpapi"
)

func runTrace(args []string) {
	fs := flag.NewFlagSet("phom trace", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "phomd base URL")
	limit := fs.Int("limit", 20, "max traces to list (0 = everything in the recorder)")
	slowOnly := fs.Bool("slow", false, "list only traces over the server's slow threshold")
	_ = fs.Parse(args)

	if fs.NArg() > 0 {
		printTraceDetail(*addr, fs.Arg(0))
		return
	}

	var list httpapi.TraceListResponse
	// Fetch unlimited and cut after the slow filter, so -slow -limit 5
	// means "5 slow traces", not "slow ones among the last 5".
	if err := json.Unmarshal(getOrDie(*addr+"/debug/traces"), &list); err != nil {
		fatal(fmt.Errorf("decoding /debug/traces: %w", err))
	}
	fmt.Printf("flight recorder: %d completed, %d slow retained (threshold %s), %d spans dropped\n\n",
		list.Completed, list.SlowRetained, durStr(float64(list.SlowThresholdUS)/1e6), list.DroppedSpans)
	rows := list.Traces
	if *slowOnly {
		kept := rows[:0]
		for _, t := range rows {
			if t.Slow {
				kept = append(kept, t)
			}
		}
		rows = kept
	}
	if *limit > 0 && len(rows) > *limit {
		rows = rows[:*limit]
	}
	if len(rows) == 0 {
		fmt.Println("no traces recorded yet")
		return
	}
	fmt.Printf("%-32s  %-26s %10s %6s  %s\n", "trace_id", "route", "dur", "spans", "dominant")
	for _, t := range rows {
		flags := ""
		if t.Slow {
			flags = " [slow]"
		}
		if t.Remote {
			flags += " [remote]"
		}
		fmt.Printf("%-32s  %-26s %10s %6d  %s%s\n",
			t.ID, t.Route, durStr(float64(t.DurationUS)/1e6), t.Spans, t.Dominant, flags)
	}
}

func printTraceDetail(addr, id string) {
	var td httpapi.TraceDetailResponse
	if err := json.Unmarshal(getOrDie(addr+"/debug/traces/"+id), &td); err != nil {
		fatal(fmt.Errorf("decoding /debug/traces/%s: %w", id, err))
	}
	head := fmt.Sprintf("trace %s  %s  dur=%s", td.ID, td.Route, durStr(float64(td.DurationUS)/1e6))
	if td.RequestID != "" {
		head += "  req_id=" + td.RequestID
	}
	if td.Slow {
		head += "  [slow]"
	}
	if td.Remote {
		head += fmt.Sprintf("  [re-parented under remote span %d]", td.ParentSpan)
	}
	fmt.Println(head)
	fmt.Printf("started %s\n", td.Start.Format(time.RFC3339Nano))
	if td.DroppedSpans > 0 {
		fmt.Printf("%d spans dropped by the per-trace cap\n", td.DroppedSpans)
	}

	children := map[uint64][]httpapi.TraceSpan{}
	for _, sp := range td.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	var walk func(sp httpapi.TraceSpan, depth int)
	walk = func(sp httpapi.TraceSpan, depth int) {
		fmt.Printf("%s%-*s %10s  @%s%s\n",
			strings.Repeat("  ", depth), 30-2*depth, sp.Name,
			durStr(float64(sp.DurationUS)/1e6),
			durStr(float64(sp.StartUS)/1e6), attrStr(sp.Attrs))
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, root := range children[0] {
		walk(root, 0)
	}
}

// attrStr renders span attributes sorted by key, so the output is
// stable across runs.
func attrStr(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, attrs[k]))
	}
	return "  " + strings.Join(parts, " ")
}
