// Command phom matches two JSON graphs with the algorithms of the
// repository:
//
//	phom -pattern p.json -data d.json -algo maxcard -xi 0.75
//
// Graphs use the documented wire format (see internal/graph): a "nodes"
// array of {label, weight, content} records and an "edges" array of
// [from, to] index pairs. Node similarity defaults to shingle resemblance
// of node contents (falling back to labels); -sim label switches to label
// equality.
//
// Algorithms: decide, decide11 (exact, exponential), maxcard, maxcard11,
// maxsim, maxsim11 (the paper's approximation algorithms), simulation
// (the graph-simulation baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphmatch"
	"graphmatch/internal/graph"
)

func main() {
	patternPath := flag.String("pattern", "", "pattern graph G1 (JSON)")
	dataPath := flag.String("data", "", "data graph G2 (JSON)")
	algo := flag.String("algo", "maxcard", "decide | decide11 | maxcard | maxcard11 | maxsim | maxsim11 | simulation")
	xi := flag.Float64("xi", 0.75, "node-similarity threshold ξ")
	simKind := flag.String("sim", "content", "node similarity: content (shingles) | label (equality)")
	showMapping := flag.Bool("mapping", false, "print the node mapping")
	pathLimit := flag.Int("pathlimit", 0, "bound pattern-edge images to paths of ≤ k hops (0 = unbounded; 1 = edge-to-edge)")
	symmetric := flag.Bool("symmetric", false, "match pattern paths too (replace the pattern by its transitive closure)")
	flag.Parse()

	if *patternPath == "" || *dataPath == "" {
		fmt.Fprintln(os.Stderr, "both -pattern and -data are required")
		flag.Usage()
		os.Exit(2)
	}
	g1, err := loadGraph(*patternPath)
	if err != nil {
		fatal(err)
	}
	g2, err := loadGraph(*dataPath)
	if err != nil {
		fatal(err)
	}

	var mat graphmatch.Matrix
	switch *simKind {
	case "content":
		mat = graphmatch.ContentSimilarity(g1, g2, 0)
	case "label":
		mat = graphmatch.LabelEquality(g1, g2)
	default:
		fatal(fmt.Errorf("unknown -sim %q", *simKind))
	}

	var opts []graphmatch.Option
	if *pathLimit > 0 {
		opts = append(opts, graphmatch.WithPathLimit(*pathLimit))
	}
	m := graphmatch.NewMatcher(g1, g2, mat, *xi, opts...)
	if *symmetric {
		m = m.Symmetric()
	}
	start := time.Now()
	var (
		sigma graphmatch.Mapping
		holds bool
	)
	switch *algo {
	case "decide":
		sigma, holds = m.IsPHom()
		fmt.Printf("G1 p-hom G2: %v\n", holds)
	case "decide11":
		sigma, holds = m.IsPHom11()
		fmt.Printf("G1 1-1 p-hom G2: %v\n", holds)
	case "maxcard":
		sigma = m.MaxCard()
	case "maxcard11":
		sigma = m.MaxCard11()
	case "maxsim":
		sigma = m.MaxSim()
	case "maxsim11":
		sigma = m.MaxSim11()
	case "simulation":
		fmt.Printf("G1 simulated by G2: %v\n", graphmatch.Simulates(g1, g2, mat, *xi))
		fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Microsecond))
		return
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}
	elapsed := time.Since(start)

	fmt.Printf("matched nodes: %d / %d\n", len(sigma), g1.NumNodes())
	fmt.Printf("qualCard: %.4f\n", m.QualCard(sigma))
	fmt.Printf("qualSim:  %.4f\n", m.QualSim(sigma))
	fmt.Printf("elapsed:  %v\n", elapsed.Round(time.Microsecond))
	if *showMapping {
		for _, v := range sigma.Domain() {
			u := sigma[v]
			fmt.Printf("  %q (#%d) -> %q (#%d)\n", g1.Label(v), v, g2.Label(u), u)
		}
	}
}

func loadGraph(path string) (*graphmatch.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phom:", err)
	os.Exit(1)
}
