// Command phom matches two JSON graphs with the algorithms of the
// repository:
//
//	phom -pattern p.json -data d.json -algo maxcard -xi 0.75
//
// Graphs use the documented wire format (see internal/graph): a "nodes"
// array of {label, weight, content} records and an "edges" array of
// [from, to] index pairs. Node similarity defaults to shingle resemblance
// of node contents (falling back to labels); -sim label switches to label
// equality.
//
// Algorithms: decide, decide11 (exact, exponential), maxcard, maxcard11,
// maxsim, maxsim11 (the paper's approximation algorithms), simulation
// (the graph-simulation baseline).
//
// The search verb ranks a catalog of data graphs against one pattern —
// "which of these graphs does the pattern match best?" — using the
// shingle-prefiltered top-k pipeline of the serving engine:
//
//	phom search -pattern p.json -k 5 site1.json mirrors/site2.json web=site3.json
//
// Positional arguments are data-graph files, registered under their
// base name (or an explicit name=path). -min-resemblance and
// -max-candidates bound the prefilter; -brute disables it for an
// exhaustive scan.
//
// The snapshot and compact verbs manage a phomd store (see phomd
// -store): snapshot asks a running server to compact its WAL into a
// fresh snapshot over HTTP, compact does the same offline on the store
// directory while the server is down. Both exit non-zero on failure —
// including HTTP error responses — so they can gate scripts:
//
//	phom snapshot -addr http://localhost:8080
//	phom compact -store /var/lib/phomd
//
// The metrics, top and trace verbs inspect a running phomd (see
// observe.go and trace.go):
//
//	phom metrics -addr http://localhost:8080 -grep engine_
//	phom top -addr http://localhost:8080
//	phom trace -addr http://localhost:8080 [trace-id | request-id]
//
// The patch verb applies a live edit to a graph registered on a
// running phomd — the JSON body of PATCH /v1/graphs/{name} (add_nodes,
// set_content, del_edges, add_edges), read from a file or stdin:
//
//	phom patch -addr http://localhost:8080 web edits.json
//	generate-edits | phom patch web
//
// Like snapshot, it exits non-zero on any HTTP error so mutation
// scripts can gate on success.
//
// The cluster verb inspects a phomd router (see phomd -router): ring
// layout with per-shard vnode counts and owned-graph samples, each
// endpoint's /readyz state and replication lag, non-zero exit when any
// shard is unreachable:
//
//	phom cluster -addr http://localhost:8084
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphmatch"
	"graphmatch/internal/graph"
	"graphmatch/internal/httpapi"
	"graphmatch/internal/store"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "search":
			runSearch(os.Args[2:])
			return
		case "snapshot":
			runSnapshot(os.Args[2:])
			return
		case "compact":
			runCompact(os.Args[2:])
			return
		case "metrics":
			runMetrics(os.Args[2:])
			return
		case "top":
			runTop(os.Args[2:])
			return
		case "repl":
			runRepl(os.Args[2:])
			return
		case "patch":
			runPatch(os.Args[2:])
			return
		case "trace":
			runTrace(os.Args[2:])
			return
		case "cluster":
			runCluster(os.Args[2:])
			return
		}
	}
	patternPath := flag.String("pattern", "", "pattern graph G1 (JSON)")
	dataPath := flag.String("data", "", "data graph G2 (JSON)")
	algo := flag.String("algo", "maxcard", "decide | decide11 | maxcard | maxcard11 | maxsim | maxsim11 | simulation")
	xi := flag.Float64("xi", 0.75, "node-similarity threshold ξ")
	simKind := flag.String("sim", "content", "node similarity: content (shingles) | label (equality)")
	showMapping := flag.Bool("mapping", false, "print the node mapping")
	pathLimit := flag.Int("pathlimit", 0, "bound pattern-edge images to paths of ≤ k hops (0 = unbounded; 1 = edge-to-edge)")
	symmetric := flag.Bool("symmetric", false, "match pattern paths too (replace the pattern by its transitive closure)")
	flag.Parse()

	if *patternPath == "" || *dataPath == "" {
		fmt.Fprintln(os.Stderr, "both -pattern and -data are required")
		flag.Usage()
		os.Exit(2)
	}
	g1, err := loadGraph(*patternPath)
	if err != nil {
		fatal(err)
	}
	g2, err := loadGraph(*dataPath)
	if err != nil {
		fatal(err)
	}

	var mat graphmatch.Matrix
	switch *simKind {
	case "content":
		mat = graphmatch.ContentSimilarity(g1, g2, 0)
	case "label":
		mat = graphmatch.LabelEquality(g1, g2)
	default:
		fatal(fmt.Errorf("unknown -sim %q", *simKind))
	}

	var opts []graphmatch.Option
	if *pathLimit > 0 {
		opts = append(opts, graphmatch.WithPathLimit(*pathLimit))
	}
	m := graphmatch.NewMatcher(g1, g2, mat, *xi, opts...)
	if *symmetric {
		m = m.Symmetric()
	}
	start := time.Now()
	var (
		sigma graphmatch.Mapping
		holds bool
	)
	switch *algo {
	case "decide":
		sigma, holds = m.IsPHom()
		fmt.Printf("G1 p-hom G2: %v\n", holds)
	case "decide11":
		sigma, holds = m.IsPHom11()
		fmt.Printf("G1 1-1 p-hom G2: %v\n", holds)
	case "maxcard":
		sigma = m.MaxCard()
	case "maxcard11":
		sigma = m.MaxCard11()
	case "maxsim":
		sigma = m.MaxSim()
	case "maxsim11":
		sigma = m.MaxSim11()
	case "simulation":
		fmt.Printf("G1 simulated by G2: %v\n", graphmatch.Simulates(g1, g2, mat, *xi))
		fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Microsecond))
		return
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}
	elapsed := time.Since(start)

	fmt.Printf("matched nodes: %d / %d\n", len(sigma), g1.NumNodes())
	fmt.Printf("qualCard: %.4f\n", m.QualCard(sigma))
	fmt.Printf("qualSim:  %.4f\n", m.QualSim(sigma))
	fmt.Printf("elapsed:  %v\n", elapsed.Round(time.Microsecond))
	if *showMapping {
		for _, v := range sigma.Domain() {
			u := sigma[v]
			fmt.Printf("  %q (#%d) -> %q (#%d)\n", g1.Label(v), v, g2.Label(u), u)
		}
	}
}

// runSearch implements the search verb over an in-process serving
// engine: register every data graph, then run one catalog-wide top-k
// search and print the ranking with the prune stats.
func runSearch(args []string) {
	fs := flag.NewFlagSet("phom search", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: phom search -pattern p.json [flags] data.json [name=path.json ...]")
		fs.PrintDefaults()
	}
	patternPath := fs.String("pattern", "", "pattern graph G1 (JSON)")
	algo := fs.String("algo", "maxsim", "maxcard | maxcard11 | maxsim | maxsim11 | decide | decide11 | simulation")
	xi := fs.Float64("xi", 0.75, "node-similarity threshold ξ")
	simKind := fs.String("sim", "content", "node similarity: content (shingles) | label (equality)")
	k := fs.Int("k", 5, "ranked hits to return")
	pathLimit := fs.Int("pathlimit", 0, "bound pattern-edge images to paths of ≤ k hops (0 = unbounded)")
	maxCand := fs.Int("max-candidates", 0, "cap prefilter candidates reaching the matcher (0 = unlimited)")
	minRes := fs.Float64("min-resemblance", 0, "prune graphs whose shingle-containment score is below this (0 = keep all)")
	brute := fs.Bool("brute", false, "skip the prefilter and match every graph (brute-force scan)")
	_ = fs.Parse(args)

	if *patternPath == "" || fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	pattern, err := loadGraph(*patternPath)
	if err != nil {
		fatal(err)
	}

	eng := graphmatch.NewEngine(graphmatch.EngineOptions{MaxClosures: fs.NArg() + 8})
	defer eng.Close()
	for _, spec := range fs.Args() {
		name, path, hasName := strings.Cut(spec, "=")
		if !hasName {
			path = spec
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		g, err := loadGraph(path)
		if err != nil {
			fatal(err)
		}
		if err := eng.Register(name, g); err != nil {
			fatal(err)
		}
	}

	res := eng.Search(context.Background(), graphmatch.SearchRequest{
		Pattern:        pattern,
		Algo:           graphmatch.EngineAlgorithm(*algo),
		Xi:             *xi,
		PathLimit:      *pathLimit,
		Sim:            graphmatch.SimKind(simWire(*simKind)),
		K:              *k,
		MaxCandidates:  *maxCand,
		MinResemblance: *minRes,
		NoPrefilter:    *brute,
	})
	if res.Err != nil {
		fatal(res.Err)
	}

	fmt.Printf("rank  %-24s %8s %9s %8s %6s %12s\n",
		"graph", "score", "qualCard", "qualSim", "holds", "containment")
	for i, h := range res.Hits {
		fmt.Printf("%4d  %-24s %8.4f %9.4f %8.4f %6v %12.3f\n",
			i+1, h.Graph, h.Score, h.QualCard, h.QualSim, h.Holds, h.Containment)
	}
	st := res.Stats
	fmt.Printf("\n%d graphs, %d candidates, %d pruned (%.0f%%), %d matched; stage1 %v, stage2 %v\n",
		st.Graphs, st.Candidates, st.Pruned, st.PruneRate*100, st.Matched,
		st.Stage1.Round(time.Microsecond), st.Stage2.Round(time.Microsecond))
}

// runSnapshot asks a running phomd to compact its WAL into a fresh
// snapshot via POST /v1/admin/snapshot.
func runSnapshot(args []string) {
	fs := flag.NewFlagSet("phom snapshot", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "phomd base URL")
	_ = fs.Parse(args)

	body := postOrDie(*addr + "/v1/admin/snapshot")
	var out struct {
		Store graphmatch.StoreStats `json:"store"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	st := out.Store
	fmt.Printf("snapshot written: seq %d, %d segment(s), %d WAL bytes since\n",
		st.SnapshotSeq, st.Segments, st.WALBytes)
}

// postOrDie POSTs with an empty body and returns the response body.
// Any transport failure or non-2xx status is fatal with a non-zero
// exit code — an HTTP error response must fail the command, not just
// print the server's error text and exit 0.
func postOrDie(url string) []byte {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			fatal(fmt.Errorf("%s: %s", resp.Status, e.Error))
		}
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	return body
}

// runCompact folds a store directory's WAL into a fresh snapshot
// offline (the owning phomd must be stopped).
func runCompact(args []string) {
	fs := flag.NewFlagSet("phom compact", flag.ExitOnError)
	dir := fs.String("store", "", "store directory (as passed to phomd -store)")
	_ = fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "phom compact: -store is required")
		fs.PrintDefaults()
		os.Exit(2)
	}
	info, err := store.Compact(*dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compacted %s: %d graphs at seq %d (%d WAL ops folded in)\n",
		*dir, info.Graphs, info.LastSeq, info.ReplayedOps)
}

// runPatch applies a live edit to a graph on a running phomd: the
// wire-format patch JSON (see httpapi.PatchRequest) comes from a file
// argument or stdin, is validated locally — unknown fields and an
// empty patch are caught before the request goes out — and is sent as
// PATCH /v1/graphs/{name}. The acknowledgement means the patch is
// durable (when the server has a store) and already matchable.
func runPatch(args []string) {
	fs := flag.NewFlagSet("phom patch", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: phom patch [-addr url] <graph> [patch.json]")
		fmt.Fprintln(os.Stderr, "reads the patch JSON from the file argument, or stdin when absent or \"-\"")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", "http://localhost:8080", "phomd base URL")
	_ = fs.Parse(args)
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fs.Usage()
		os.Exit(2)
	}
	name := fs.Arg(0)

	var (
		raw []byte
		err error
	)
	if src := fs.Arg(1); src == "" || src == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(src)
	}
	if err != nil {
		fatal(err)
	}
	// Validate before sending: a typo'd field name would otherwise be
	// silently dropped server-side and turn into a confusing "empty
	// patch" (or worse, a partial edit).
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var pr httpapi.PatchRequest
	if err := dec.Decode(&pr); err != nil {
		fatal(fmt.Errorf("invalid patch JSON: %w", err))
	}
	if len(pr.AddNodes) == 0 && len(pr.SetContent) == 0 && len(pr.DelEdges) == 0 && len(pr.AddEdges) == 0 {
		fatal(fmt.Errorf("empty patch: nothing to apply"))
	}

	req, err := http.NewRequest(http.MethodPatch,
		*addr+"/v1/graphs/"+name, bytes.NewReader(raw))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			fatal(fmt.Errorf("%s: %s", resp.Status, e.Error))
		}
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body))))
	}
	var out httpapi.PatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		fatal(fmt.Errorf("decoding response: %w", err))
	}
	fmt.Printf("patched %s: %d nodes, %d edges (+%d nodes, +%d content, -%d/+%d edges)\n",
		out.Name, out.Nodes, out.Edges,
		len(pr.AddNodes), len(pr.SetContent), len(pr.DelEdges), len(pr.AddEdges))
}

// simWire maps the CLI's similarity names onto the engine's wire
// values (the CLI default "content" predates the engine's "label"
// default, so the mapping is explicit).
func simWire(s string) string {
	switch s {
	case "content", "label":
		return s
	default:
		fatal(fmt.Errorf("unknown -sim %q", s))
		return ""
	}
}

func loadGraph(path string) (*graphmatch.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "phom:", err)
	os.Exit(1)
}
