package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"graphmatch/internal/graph"
)

// Binary wire formats of the durability subsystem. Everything on disk
// is framed records:
//
//	uint32  payload length (little endian)
//	[]byte  payload
//	uint32  CRC-32C of the payload (Castagnoli)
//
// so every record — WAL ops and snapshot graphs alike — carries its own
// checksum and a torn or corrupted write is detected at the record that
// suffered it, never propagated past it. Payloads are versioned: the
// graph codec leads with a format byte, so the encoding can evolve
// without invalidating existing stores.

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms phomd serves from.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordBytes rejects implausible record lengths before allocating:
// a corrupted length prefix must not ask the replayer for gigabytes.
const maxRecordBytes = 1 << 30

// graphCodecVersion is the current graph payload format.
const graphCodecVersion = 1

// errCorrupt tags integrity failures (bad CRC, short payloads, codec
// violations) so the replayer can distinguish "damaged record" from
// I/O errors.
type errCorrupt struct{ msg string }

func (e errCorrupt) Error() string { return "store: corrupt record: " + e.msg }

func corruptf(format string, args ...any) error {
	return errCorrupt{msg: fmt.Sprintf(format, args...)}
}

// IsCorrupt reports whether err is a record-integrity failure (checksum
// mismatch, truncated payload, malformed encoding) rather than an I/O
// error.
func IsCorrupt(err error) bool {
	_, ok := err.(errCorrupt)
	return ok
}

// writeRecord frames payload onto w. Oversized payloads are rejected
// before a byte is written: readRecord refuses lengths past
// maxRecordBytes, so writing one would fsync and acknowledge a record
// that the next boot silently truncates away (and past 4 GiB the
// uint32 length header itself would wrap, corrupting the framing).
func writeRecord(w io.Writer, payload []byte) error {
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("store: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(payload, crcTable))
	_, err := w.Write(hdr[:])
	return err
}

// recordSize is the on-disk footprint of a framed payload.
func recordSize(payload []byte) int64 { return int64(len(payload)) + 8 }

// readRecord reads one framed record from r. It returns io.EOF cleanly
// at end of input, io.ErrUnexpectedEOF when the input ends mid-record
// (a torn tail write), and an errCorrupt when the checksum disagrees.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF at a record boundary is the clean end
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxRecordBytes {
		return nil, corruptf("record length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(hdr[:]); got != want {
		return nil, corruptf("checksum %08x != %08x", got, want)
	}
	return payload, nil
}

// The exported codec surface: the replication protocol frames its
// wire messages with the same length+payload+CRC records the WAL
// uses, and ships WAL op payloads verbatim, so internal/repl needs the
// record framing and the op/graph codecs without owning a copy.

// WriteFramed frames payload onto w as one store record (length,
// payload, CRC-32C).
func WriteFramed(w io.Writer, payload []byte) error { return writeRecord(w, payload) }

// ReadFramed reads one framed record from r, validating its checksum.
// It returns io.EOF at a clean end, io.ErrUnexpectedEOF mid-record,
// and an error satisfying IsCorrupt on a checksum mismatch.
func ReadFramed(r io.Reader) ([]byte, error) { return readRecord(r) }

// EncodeOp serialises op into a WAL record payload.
func EncodeOp(op Op) ([]byte, error) { return encodeOp(op) }

// DecodeOp parses a WAL record payload.
func DecodeOp(payload []byte) (Op, error) { return decodeOp(payload) }

// PeekSeq extracts the sequence number from an op payload without
// decoding the rest — the tail reader filters records by position
// before anything needs the graph bytes.
func PeekSeq(payload []byte) (uint64, error) {
	d := &dec{buf: payload}
	return d.u64()
}

// EncodeNamedGraph serialises a (name, graph) pair — the replication
// bootstrap's unit of transfer, matching the snapshot's graph record
// layout.
func EncodeNamedGraph(name string, g *graph.Graph) []byte {
	e := &enc{buf: make([]byte, 0, 1024)}
	e.str(name)
	encodeGraph(e, g)
	return e.buf
}

// DecodeNamedGraph parses a payload written by EncodeNamedGraph.
func DecodeNamedGraph(payload []byte) (string, *graph.Graph, error) {
	d := &dec{buf: payload}
	name, err := d.str()
	if err != nil {
		return "", nil, err
	}
	g, err := decodeGraph(d)
	if err != nil {
		return "", nil, err
	}
	if d.remaining() != 0 {
		return "", nil, corruptf("%d trailing bytes after graph", d.remaining())
	}
	return name, g, nil
}

// enc is an append-only payload builder.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)          { e.buf = append(e.buf, v) }
func (e *enc) u64(v uint64)        { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) uvarint(v int)       { e.buf = binary.AppendUvarint(e.buf, uint64(v)) }
func (e *enc) str(s string)        { e.uvarint(len(s)); e.buf = append(e.buf, s...) }
func (e *enc) f64(v float64)       { e.u64(math.Float64bits(v)) }
func (e *enc) node(v graph.NodeID) { e.uvarint(int(v)) }

// dec is the matching cursor decoder; every read validates bounds and
// fails with errCorrupt instead of panicking, because the bytes come
// straight off disk.
type dec struct {
	buf []byte
	off int
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) u8() (uint8, error) {
	if d.remaining() < 1 {
		return 0, corruptf("truncated payload at offset %d", d.off)
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *dec) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, corruptf("truncated payload at offset %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *dec) uvarint() (int, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, corruptf("bad uvarint at offset %d", d.off)
	}
	if v > maxRecordBytes {
		return 0, corruptf("uvarint %d exceeds limit", v)
	}
	d.off += n
	return int(v), nil
}

func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.remaining() < n {
		return "", corruptf("string of %d bytes overruns payload", n)
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *dec) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *dec) node() (graph.NodeID, error) {
	v, err := d.uvarint()
	return graph.NodeID(v), err
}

// encodeGraph appends the versioned binary encoding of g: node records
// (label, weight, content) then the sorted edge list. It is a fraction
// of the JSON wire format's size and decodes without reflection, which
// is what makes snapshot replay beat re-registering from JSON.
func encodeGraph(e *enc, g *graph.Graph) {
	e.u8(graphCodecVersion)
	n := g.NumNodes()
	e.uvarint(n)
	for v := 0; v < n; v++ {
		nd := g.Node(graph.NodeID(v))
		e.str(nd.Label)
		e.f64(nd.Weight)
		e.str(nd.Content)
	}
	e.uvarint(g.NumEdges())
	g.Edges(func(from, to graph.NodeID) bool {
		e.node(from)
		e.node(to)
		return true
	})
}

// decodeGraph reads one encoded graph.
func decodeGraph(d *dec) (*graph.Graph, error) {
	ver, err := d.u8()
	if err != nil {
		return nil, err
	}
	if ver != graphCodecVersion {
		return nil, corruptf("graph codec version %d (supported: %d)", ver, graphCodecVersion)
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		var nd graph.Node
		if nd.Label, err = d.str(); err != nil {
			return nil, err
		}
		if nd.Weight, err = d.f64(); err != nil {
			return nil, err
		}
		if nd.Content, err = d.str(); err != nil {
			return nil, err
		}
		g.AddNodeFull(nd)
	}
	edges, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := 0; i < edges; i++ {
		from, err := d.node()
		if err != nil {
			return nil, err
		}
		to, err := d.node()
		if err != nil {
			return nil, err
		}
		if int(from) >= n || int(to) >= n {
			return nil, corruptf("edge %d→%d outside [0,%d)", from, to, n)
		}
		g.AddEdge(from, to)
	}
	g.Finish()
	return g, nil
}

// encodePatch appends the binary encoding of p.
func encodePatch(e *enc, p *graph.Patch) {
	e.uvarint(len(p.AddNodes))
	for _, nd := range p.AddNodes {
		e.str(nd.Label)
		e.f64(nd.Weight)
		e.str(nd.Content)
	}
	e.uvarint(len(p.SetContent))
	for _, cu := range p.SetContent {
		e.node(cu.Node)
		e.str(cu.Content)
	}
	e.uvarint(len(p.DelEdges))
	for _, ed := range p.DelEdges {
		e.node(ed[0])
		e.node(ed[1])
	}
	e.uvarint(len(p.AddEdges))
	for _, ed := range p.AddEdges {
		e.node(ed[0])
		e.node(ed[1])
	}
}

// decodePatch reads one encoded patch.
func decodePatch(d *dec) (*graph.Patch, error) {
	p := &graph.Patch{}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var nd graph.Node
		if nd.Label, err = d.str(); err != nil {
			return nil, err
		}
		if nd.Weight, err = d.f64(); err != nil {
			return nil, err
		}
		if nd.Content, err = d.str(); err != nil {
			return nil, err
		}
		p.AddNodes = append(p.AddNodes, nd)
	}
	if n, err = d.uvarint(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var cu graph.ContentUpdate
		if cu.Node, err = d.node(); err != nil {
			return nil, err
		}
		if cu.Content, err = d.str(); err != nil {
			return nil, err
		}
		p.SetContent = append(p.SetContent, cu)
	}
	if n, err = d.uvarint(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var ed [2]graph.NodeID
		if ed[0], err = d.node(); err != nil {
			return nil, err
		}
		if ed[1], err = d.node(); err != nil {
			return nil, err
		}
		p.DelEdges = append(p.DelEdges, ed)
	}
	if n, err = d.uvarint(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		var ed [2]graph.NodeID
		if ed[0], err = d.node(); err != nil {
			return nil, err
		}
		if ed[1], err = d.node(); err != nil {
			return nil, err
		}
		p.AddEdges = append(p.AddEdges, ed)
	}
	return p, nil
}

// encodeOp builds the payload of one WAL record.
func encodeOp(op Op) ([]byte, error) {
	e := &enc{buf: make([]byte, 0, 64)}
	e.u64(op.Seq)
	e.u8(uint8(op.Kind))
	e.str(op.Name)
	switch op.Kind {
	case OpRegister:
		if op.Graph == nil {
			return nil, fmt.Errorf("store: register op %q without graph", op.Name)
		}
		encodeGraph(e, op.Graph)
	case OpRemove:
	case OpPatch:
		if op.Patch == nil {
			return nil, fmt.Errorf("store: patch op %q without patch", op.Name)
		}
		encodePatch(e, op.Patch)
	default:
		return nil, fmt.Errorf("store: unknown op kind %d", op.Kind)
	}
	// Trailing optional section: absent entirely for untraced ops so
	// their encoding is byte-identical to the pre-trace format.
	if op.Trace != "" {
		e.str(op.Trace)
	}
	return e.buf, nil
}

// decodeOp parses one WAL record payload.
func decodeOp(payload []byte) (Op, error) {
	d := &dec{buf: payload}
	var op Op
	var err error
	if op.Seq, err = d.u64(); err != nil {
		return Op{}, err
	}
	kind, err := d.u8()
	if err != nil {
		return Op{}, err
	}
	op.Kind = OpKind(kind)
	if op.Name, err = d.str(); err != nil {
		return Op{}, err
	}
	switch op.Kind {
	case OpRegister:
		if op.Graph, err = decodeGraph(d); err != nil {
			return Op{}, err
		}
	case OpRemove:
	case OpPatch:
		if op.Patch, err = decodePatch(d); err != nil {
			return Op{}, err
		}
	default:
		return Op{}, corruptf("unknown op kind %d", kind)
	}
	if d.remaining() > 0 {
		if op.Trace, err = d.str(); err != nil {
			return Op{}, err
		}
	}
	if d.remaining() != 0 {
		return Op{}, corruptf("%d trailing bytes after op", d.remaining())
	}
	return op, nil
}
