package store

import (
	"io"
	"os"
)

// walFile is the slice of *os.File the append path needs. Production
// code always talks to real files; the errfs test helper swaps
// openWALFile to inject write, fsync, and truncate failures (ENOSPC,
// I/O errors) without touching the kernel, so the rotation and
// rollback failure paths stay covered by fast, deterministic tests.
type walFile interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// openWALFile opens a WAL segment for writing. Tests substitute it;
// everything else must go through it so injected faults reach every
// append-path open (fresh segments and reopened tails alike).
var openWALFile = func(path string, flag int, perm os.FileMode) (walFile, error) {
	return os.OpenFile(path, flag, perm)
}
