//go:build !unix

package store

import "os"

// lockDir is a no-op where flock is unavailable; the store still
// works, it just cannot detect a concurrent opener.
func lockDir(dir string) (*os.File, error) { return nil, nil }

// unlockDir matches lockDir.
func unlockDir(f *os.File) {}
