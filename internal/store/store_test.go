package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"graphmatch/internal/graph"
)

// testGraph builds a small deterministic graph.
func testGraph(seed int) *graph.Graph {
	rng := rand.New(rand.NewSource(int64(seed)))
	n := 3 + rng.Intn(6)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNodeFull(graph.Node{
			Label:   fmt.Sprintf("L%d", rng.Intn(4)),
			Weight:  1 + float64(rng.Intn(3)),
			Content: fmt.Sprintf("content of node %d in graph %d", i, seed),
		})
	}
	for i := 0; i < n*2; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

// replayAll collects every op a fresh open replays.
func replayAll(t *testing.T, dir string) []Op {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ops []Op
	if err := s.Replay(func(op Op) error { ops = append(ops, op); return nil }); err != nil {
		t.Fatal(err)
	}
	return ops
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := testGraph(1), testGraph(2)
	patch := &graph.Patch{
		AddNodes:   []graph.Node{{Label: "new", Weight: 1, Content: "fresh page"}},
		SetContent: []graph.ContentUpdate{{Node: 0, Content: "edited"}},
		AddEdges:   [][2]graph.NodeID{{0, 1}},
	}
	for i, op := range []Op{
		{Kind: OpRegister, Name: "a", Graph: g1},
		{Kind: OpRegister, Name: "b", Graph: g2},
		{Kind: OpPatch, Name: "a", Patch: patch},
		{Kind: OpRemove, Name: "b"},
	} {
		seq, err := s.Append(op)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ops := replayAll(t, dir)
	if len(ops) != 4 {
		t.Fatalf("replayed %d ops, want 4", len(ops))
	}
	if ops[0].Kind != OpRegister || ops[0].Name != "a" || !graph.Equal(ops[0].Graph, g1) {
		t.Fatalf("op 0 mismatch: %+v", ops[0])
	}
	if !graph.Equal(ops[1].Graph, g2) {
		t.Fatal("op 1 graph mismatch")
	}
	p := ops[2].Patch
	if ops[2].Kind != OpPatch || len(p.AddNodes) != 1 || p.AddNodes[0].Content != "fresh page" ||
		len(p.SetContent) != 1 || p.SetContent[0].Content != "edited" ||
		len(p.AddEdges) != 1 || p.AddEdges[0] != [2]graph.NodeID{0, 1} || len(p.DelEdges) != 0 {
		t.Fatalf("op 2 patch mismatch: %+v", p)
	}
	if ops[3].Kind != OpRemove || ops[3].Name != "b" {
		t.Fatalf("op 3 mismatch: %+v", ops[3])
	}
}

// appendN opens a store at dir and appends n register ops.
func appendN(t *testing.T, dir string, n int) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Append(Op{Kind: OpRegister, Name: fmt.Sprintf("g%02d", i), Graph: testGraph(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// walPath returns the single live WAL segment.
func walPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	return segs[0]
}

func TestRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 5)
	path := walPath(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop 3 bytes off the last record: a torn tail write.
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Recovered; got != 1 {
		t.Fatalf("Recovered = %d, want 1", got)
	}
	if got := s.Stats().LastSeq; got != 4 {
		t.Fatalf("LastSeq = %d, want 4", got)
	}
	var ops []Op
	if err := s.Replay(func(op Op) error { ops = append(ops, op); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("replayed %d ops after torn tail, want 4", len(ops))
	}
	// The store keeps serving: the next append reuses the truncated
	// segment and lands at the recovered position.
	seq, err := s.Append(Op{Kind: OpRemove, Name: "g00"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("post-recovery seq = %d, want 5", seq)
	}
	s.Close()
	if got := len(replayAll(t, dir)); got != 5 {
		t.Fatalf("replayed %d ops after recovery append, want 5", got)
	}
}

func TestRecoveryCorruptChecksum(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 5)
	path := walPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the file: some record's payload no
	// longer matches its checksum, and everything from that record on is
	// dropped.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", st.Recovered)
	}
	if st.LastSeq >= 5 {
		t.Fatalf("LastSeq = %d, want < 5 after mid-file corruption", st.LastSeq)
	}
	var ops []Op
	if err := s.Replay(func(op Op) error { ops = append(ops, op); return nil }); err != nil {
		t.Fatal(err)
	}
	if uint64(len(ops)) != st.LastSeq {
		t.Fatalf("replayed %d ops, want %d (the intact prefix)", len(ops), st.LastSeq)
	}
	for i, op := range ops {
		if op.Name != fmt.Sprintf("g%02d", i) || !graph.Equal(op.Graph, testGraph(i)) {
			t.Fatalf("op %d damaged by recovery: %+v", i, op)
		}
	}
	s.Close()
}

func TestSnapshotFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[string]*graph.Graph)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("g%02d", i)
		g := testGraph(i)
		state[name] = g
		if _, err := s.Append(Op{Kind: OpRegister, Name: name, Graph: g}); err != nil {
			t.Fatal(err)
		}
	}
	lastSeq, sealed, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 4 || len(sealed) != 1 {
		t.Fatalf("Rotate = (%d, %v)", lastSeq, sealed)
	}
	if err := s.WriteSnapshot(state, lastSeq, sealed); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SnapshotSeq != 4 || st.Snapshots != 1 || st.SinceSnapshot != 0 {
		t.Fatalf("post-snapshot stats: %+v", st)
	}
	// Ops after the snapshot land in the fresh segment.
	if _, err := s.Append(Op{Kind: OpRemove, Name: "g03"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	ops := replayAll(t, dir)
	// 4 snapshot registers + 1 WAL remove.
	if len(ops) != 5 {
		t.Fatalf("replayed %d ops, want 5", len(ops))
	}
	for i := 0; i < 4; i++ {
		if ops[i].Kind != OpRegister || ops[i].Seq != 4 {
			t.Fatalf("snapshot op %d: %+v", i, ops[i])
		}
	}
	if ops[4].Kind != OpRemove || ops[4].Seq != 5 {
		t.Fatalf("WAL op: %+v", ops[4])
	}
}

// TestSnapshotCrashBeforeSegmentDeletion simulates the crash window
// between the snapshot rename and the sealed-segment deletion: replay
// must not double-apply the sealed ops.
func TestSnapshotCrashBeforeSegmentDeletion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[string]*graph.Graph)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("g%02d", i)
		state[name] = testGraph(i)
		if _, err := s.Append(Op{Kind: OpRegister, Name: name, Graph: state[name]}); err != nil {
			t.Fatal(err)
		}
	}
	lastSeq, sealed, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Keep copies of the sealed segments, snapshot, then restore them —
	// as if the process died after the rename but before the deletes.
	saved := make(map[string][]byte)
	for _, p := range sealed {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		saved[p] = data
	}
	if err := s.WriteSnapshot(state, lastSeq, sealed); err != nil {
		t.Fatal(err)
	}
	s.Close()
	for p, data := range saved {
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	ops := replayAll(t, dir)
	if len(ops) != 3 {
		t.Fatalf("replayed %d ops, want 3 (sealed segment must be skipped)", len(ops))
	}
	for _, op := range ops {
		if op.Seq != 3 {
			t.Fatalf("expected only snapshot ops at seq 3, got %+v", op)
		}
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gA := testGraph(1)
	if _, err := s.Append(Op{Kind: OpRegister, Name: "a", Graph: gA}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Op{Kind: OpRegister, Name: "b", Graph: testGraph(2)}); err != nil {
		t.Fatal(err)
	}
	patch := &graph.Patch{AddNodes: []graph.Node{{Label: "x", Weight: 1}}}
	if _, err := s.Append(Op{Kind: OpPatch, Name: "a", Patch: patch}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Op{Kind: OpRemove, Name: "b"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	info, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Graphs != 1 || info.LastSeq != 4 || info.ReplayedOps != 4 {
		t.Fatalf("CompactInfo = %+v", info)
	}

	ops := replayAll(t, dir)
	if len(ops) != 1 || ops[0].Name != "a" {
		t.Fatalf("post-compact replay: %+v", ops)
	}
	want, err := gA.ApplyPatch(patch)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(ops[0].Graph, want) {
		t.Fatal("compacted graph does not reflect the patch")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Append(Op{Kind: OpRemove, Name: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestReopenWithoutClose models kill -9: acknowledged appends are
// fsynced, so a store abandoned without Close replays completely.
func TestReopenWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Append(Op{Kind: OpRegister, Name: fmt.Sprintf("g%d", i), Graph: testGraph(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: Abandon drops the fds and the directory lock without the
	// final sync, exactly what kill -9 leaves behind.
	s.Abandon()
	if got := len(replayAll(t, dir)); got != 3 {
		t.Fatalf("replayed %d ops, want 3", got)
	}
}

// TestSnapshotThenCompact is the regression for the empty-segment
// rotation: snapshot rotates to a fresh (empty) segment, the process
// dies, and an offline compact must not collide with that segment's
// name — repeated compactions included.
func TestSnapshotThenCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := map[string]*graph.Graph{"a": testGraph(1)}
	if _, err := s.Append(Op{Kind: OpRegister, Name: "a", Graph: state["a"]}); err != nil {
		t.Fatal(err)
	}
	lastSeq, sealed, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(state, lastSeq, sealed); err != nil {
		t.Fatal(err)
	}
	s.Close()

	for i := 0; i < 2; i++ {
		info, err := Compact(dir)
		if err != nil {
			t.Fatalf("compact %d: %v", i, err)
		}
		if info.Graphs != 1 || info.LastSeq != 1 {
			t.Fatalf("compact %d: %+v", i, info)
		}
	}
	if got := len(replayAll(t, dir)); got != 1 {
		t.Fatalf("replayed %d ops, want 1", got)
	}
}

// TestRotateEmptySegmentNoGrowth checks back-to-back rotations with no
// traffic neither error nor accumulate segment files.
func TestRotateEmptySegmentNoGrowth(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		lastSeq, sealed, err := s.Rotate()
		if err != nil {
			t.Fatalf("rotate %d: %v", i, err)
		}
		if err := s.WriteSnapshot(nil, lastSeq, sealed); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("segments = %d, want 1", st.Segments)
	}
}

// TestOpenLocked checks the single-opener guard: a live store blocks a
// second Open (e.g. phom compact against a running phomd) until Close.
func TestOpenLocked(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("second Open of a live store succeeded")
	}
	if _, err := Compact(dir); err == nil {
		t.Fatal("Compact of a live store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}

// TestRecoveryTornHeader is the regression for a segment whose header
// itself was torn mid-write: it must be recreated with a valid magic,
// so ops acknowledged after the recovery survive the next restart.
func TestRecoveryTornHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walPrefix+"0000000000000001"+walSuffix)
	if err := os.WriteFile(path, []byte("PHO"), 0o644); err != nil { // 3 of 8 magic bytes
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(Op{Kind: OpRegister, Name: "g", Graph: testGraph(1)}); err != nil {
		t.Fatal(err)
	}
	s.Abandon() // crash right after the acknowledged append
	if got := len(replayAll(t, dir)); got != 1 {
		t.Fatalf("replayed %d ops after torn-header recovery, want 1", got)
	}
}

// TestRecoveryDuplicateRecord is the regression for sequence-number
// validation: a record duplicated at the tail (splice mutation, block
// duplication) carries a valid checksum but must still be treated as
// damage — replaying it twice would double-apply the op and break
// FoldState.
func TestRecoveryDuplicateRecord(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 3)
	path := walPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the last record's bytes: find its start by re-framing
	// from the front (header 8, then len-prefixed records).
	off := 8
	lastStart := off
	for off < len(data) {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		lastStart = off
		off += 8 + n
	}
	dup := append(data, data[lastStart:]...)
	if err := os.WriteFile(path, dup, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Recovered != 1 || st.LastSeq != 3 {
		t.Fatalf("stats after duplicate-record recovery: %+v", st)
	}
	seen := map[uint64]bool{}
	if err := s.Replay(func(op Op) error {
		if seen[op.Seq] {
			t.Fatalf("seq %d replayed twice", op.Seq)
		}
		seen[op.Seq] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("replayed %d ops, want 3", len(seen))
	}
	// FoldState — the boot path — must succeed on the recovered store.
	state, _, err := s.FoldState()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 3 {
		t.Fatalf("folded %d graphs, want 3", len(state))
	}
	s.Close()
}

// TestSnapshotFailureKeepsSealedSegments checks that a snapshot
// attempt failing after the rotation does not orphan the sealed
// segments: the next successful snapshot still reclaims them.
func TestSnapshotFailureKeepsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	state := make(map[string]*graph.Graph)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("g%02d", i)
		state[name] = testGraph(i)
		if _, err := s.Append(Op{Kind: OpRegister, Name: name, Graph: state[name]}); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate as a snapshot would, then "fail" the write (simply never
	// call WriteSnapshot). The sealed segment must resurface on the
	// next rotation.
	lastSeq, sealed1, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed1) != 1 {
		t.Fatalf("first rotate sealed %v", sealed1)
	}
	if st := s.Stats(); st.Segments != 2 {
		t.Fatalf("segments after failed snapshot = %d, want 2 (sealed + current)", st.Segments)
	}
	// One more op so the second rotation seals a record-bearing segment.
	if _, err := s.Append(Op{Kind: OpRemove, Name: "g00"}); err != nil {
		t.Fatal(err)
	}
	delete(state, "g00")
	lastSeq, sealed2, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed2) != 2 {
		t.Fatalf("second rotate must carry the orphan too, sealed %v", sealed2)
	}
	if err := s.WriteSnapshot(state, lastSeq, sealed2); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("segments after successful snapshot = %d, want 1", st.Segments)
	}
	left, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("WAL files on disk after reclaim: %v", left)
	}
}

// TestSinceSnapshotSurvivesRestart checks the compaction trigger
// resumes from the recovered WAL tail instead of resetting to zero.
func TestSinceSnapshotSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	appendN(t, dir, 4)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().SinceSnapshot; got != 4 {
		t.Fatalf("SinceSnapshot after restart = %d, want 4", got)
	}
}
