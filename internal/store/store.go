// Package store is the durability subsystem of the serving layer: an
// append-only write-ahead log of catalog mutations (graph register,
// remove, and in-place patch) plus periodic compacted snapshots, both
// in a versioned binary format with per-record checksums. A phomd
// restart replays snapshot + WAL to rebuild the catalog — closure
// tiers and the search index rewarm through the ordinary registration
// path — instead of losing every registered graph.
//
// On-disk layout (one directory per store):
//
//	snapshot.snap       compacted state: every graph at WAL position S
//	wal-<startSeq>.log  ordered WAL segments of ops with seq > their start
//	snapshot.tmp        transient; a crash mid-snapshot leaves it behind
//	                    and open removes it
//
// Every mutation is assigned a monotonically increasing sequence
// number, appended to the current WAL segment, and fsynced before the
// mutation is acknowledged — an acknowledged op survives kill -9.
// Snapshots rotate the WAL first (a new segment opens while the
// registry is locked, so the snapshot state and its recorded sequence
// number agree exactly), then write the full state to a temp file and
// atomically rename it in; old segments are deleted only after the
// rename is durable. A crash at any point leaves either the old
// snapshot + old segments or the new snapshot + the new segment, both
// complete.
//
// Recovery trusts checksums, not file sizes: open scans every segment
// record by record, truncates the first torn or checksum-corrupt
// record (and drops any later, now-unreachable segments), and replay
// skips records at or below the snapshot's sequence number, so a crash
// between snapshot rename and segment deletion does not double-apply.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"graphmatch/internal/graph"
)

const (
	walMagic      = "PHOMWAL1"
	snapshotMagic = "PHOMSNP1"
	snapshotName  = "snapshot.snap"
	snapshotTmp   = "snapshot.tmp"
	walPrefix     = "wal-"
	walSuffix     = ".log"
)

// syncWrites gates every fsync. Always true in production; the fuzzer
// turns it off because its throwaway stores need throughput, not
// durability.
var syncWrites = true

// sync fsyncs f when durability is on.
func syncFile(f interface{ Sync() error }) error {
	if !syncWrites {
		return nil
	}
	return f.Sync()
}

// OpKind discriminates WAL records.
type OpKind uint8

// The logged mutation kinds, mirroring the catalog's mutation surface.
const (
	OpRegister OpKind = 1
	OpRemove   OpKind = 2
	OpPatch    OpKind = 3
)

// Op is one logged catalog mutation. Graph is set for OpRegister,
// Patch for OpPatch. Trace optionally carries the W3C traceparent of
// the request that caused the mutation; it is encoded only when
// non-empty (old logs decode unchanged) and ships to replication
// followers verbatim, letting them re-parent applied-op spans under
// the primary's trace context.
type Op struct {
	Seq   uint64
	Kind  OpKind
	Name  string
	Graph *graph.Graph
	Patch *graph.Patch
	Trace string
}

// Stats is a point-in-time snapshot of the store, served alongside the
// engine and catalog counters on /v1/stats.
type Stats struct {
	// Dir is the store directory.
	Dir string `json:"dir"`
	// LastSeq is the sequence number of the newest durable op.
	LastSeq uint64 `json:"last_seq"`
	// SnapshotSeq is the WAL position of the current snapshot (0 when
	// none exists); ops above it live only in WAL segments.
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// Appended counts ops logged since the store was opened.
	Appended uint64 `json:"appended"`
	// SinceSnapshot counts ops logged since the last snapshot — the
	// counter Options.SnapshotEvery triggers on.
	SinceSnapshot int `json:"since_snapshot"`
	// Snapshots counts snapshots written since the store was opened.
	Snapshots uint64 `json:"snapshots"`
	// Segments is the number of live WAL segment files.
	Segments int `json:"segments"`
	// WALBytes is the total size of the live WAL segments.
	WALBytes int64 `json:"wal_bytes"`
	// Recovered counts torn or corrupt WAL tails dropped during open —
	// non-zero after a recovery that lost unacknowledged records.
	Recovered int `json:"recovered"`
}

// Store is one open WAL + snapshot directory. It is safe for
// concurrent use; Append serialises internally. Replay must run before
// the first Append (the engine replays during boot, before it installs
// the catalog persister).
type Store struct {
	dir string

	mu            sync.Mutex
	seg           walFile // current append segment (nil when read-only)
	segPath       string
	segRecords    int      // records in the current append segment
	segSize       int64    // bytes in the current append segment
	segs          []string // live segment paths, append order; last is current
	sealed        []string // rotated-out segments awaiting snapshot deletion
	failed        error    // sticky fault: set when the log's tail state is unknown
	seq           uint64   // last durable sequence number
	snapshotSeq   uint64
	snapGraphs    int // graphs in the current snapshot (replay workload)
	appended      uint64
	sinceSnapshot int
	snapshots     uint64
	walBytes      int64
	recovered     int
	closed        bool

	// readOnly marks a store opened by OpenReadOnly: no flock, no
	// append segment, and — critically — no repair. Damage found during
	// the scan is remembered as a per-segment byte limit (segLimits)
	// instead of truncated, so a live writer's files are never mutated.
	readOnly  bool
	segLimits map[string]int64 // read-only: validated byte prefix per segment

	lock *os.File // exclusive flock on dir/LOCK, held until Close

	// obs receives durability timings (see Observer). Installed once at
	// boot, before concurrent appends start; nil callbacks are skipped.
	obs Observer
}

// Observer receives durability timings for instrumentation. All
// callbacks are optional (nil = not observed) and must be cheap and
// safe for concurrent use: Append and Fsync fire under the store lock
// on every logged mutation, Snapshot fires once per snapshot. Seconds
// are wall-clock durations.
type Observer struct {
	// Append observes the full Append critical section: encode, write,
	// and fsync of one record.
	Append func(seconds float64)
	// Fsync observes just the fsync portion of an Append — the
	// dominant, device-dependent cost the WAL pays per mutation.
	Fsync func(seconds float64)
	// Snapshot observes WriteSnapshot wall time.
	Snapshot func(seconds float64)
}

// Instrument installs the observer. Call it during boot, before the
// store sees concurrent traffic (the engine installs it right after
// replay, alongside the persister).
func (s *Store) Instrument(obs Observer) {
	s.mu.Lock()
	s.obs = obs
	s.mu.Unlock()
}

// Open opens (creating if needed) the store directory, validates every
// WAL segment record by record, and truncates torn or corrupt tails so
// the log ends at the last intact record. The returned store is ready
// for Replay and Append.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// One process at a time: a live phomd and an offline compaction on
	// the same directory would append from independent sequence
	// counters and delete each other's segments.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	// A crash mid-snapshot leaves the temp file; it was never renamed,
	// so it is dead weight.
	_ = os.Remove(filepath.Join(dir, snapshotTmp))

	s := &Store{dir: dir, lock: lock}
	if err := s.loadSnapshotHeader(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	if err := s.scanSegments(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	if err := s.openAppendSegment(); err != nil {
		unlockDir(lock)
		return nil, err
	}
	// The compaction trigger counts ops beyond the snapshot; a restart
	// must resume that count from the recovered WAL tail, or a
	// read-mostly server would sit on an oversized log until
	// SnapshotEvery *new* mutations arrive.
	s.sinceSnapshot = int(s.seq - s.snapshotSeq)
	return s, nil
}

// ErrReadOnly is returned by every mutating method of a store opened
// with OpenReadOnly.
var ErrReadOnly = fmt.Errorf("store: opened read-only")

// OpenReadOnly opens the store for reading while skipping everything
// Open does to claim ownership: no directory flock (a live phomd may
// hold it), no append segment, no removal of a stale snapshot temp
// file, and no truncation of damaged tails. Instead the scan records
// the validated byte prefix of each segment and Replay/FoldState stop
// there, yielding a consistent point-in-time view of the durable state
// at open. Append, Rotate, WriteSnapshot, and friends return
// ErrReadOnly.
//
// The view is a snapshot: ops the writer appends after OpenReadOnly
// are not visible. If the writer compacts concurrently, a segment this
// view still needs may be deleted before it is replayed; Replay then
// fails with the underlying not-exist error and the caller should
// simply reopen and retry.
func OpenReadOnly(dir string) (*Store, error) {
	s := &Store{dir: dir, readOnly: true, segLimits: make(map[string]int64)}
	if err := s.loadSnapshotHeader(); err != nil {
		return nil, err
	}
	if err := s.scanSegments(); err != nil {
		return nil, err
	}
	s.sinceSnapshot = int(s.seq - s.snapshotSeq)
	return s, nil
}

// loadSnapshotHeader reads just the snapshot's header record to learn
// its WAL position; the graphs are decoded later, by Replay.
func (s *Store) loadSnapshotHeader() error {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	seq, count, err := readSnapshotHeader(f)
	if err != nil {
		return fmt.Errorf("store: snapshot %s: %w", snapshotName, err)
	}
	s.snapshotSeq = seq
	s.seq = seq
	s.snapGraphs = count
	return nil
}

// readSnapshotHeader consumes the magic and header record from r.
func readSnapshotHeader(r io.Reader) (lastSeq uint64, count int, err error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, 0, corruptf("short magic: %v", err)
	}
	if string(magic[:]) != snapshotMagic {
		return 0, 0, corruptf("bad magic %q", magic[:])
	}
	payload, err := readRecord(r)
	if err != nil {
		return 0, 0, corruptf("header record: %v", err)
	}
	d := &dec{buf: payload}
	if lastSeq, err = d.u64(); err != nil {
		return 0, 0, err
	}
	if count, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	return lastSeq, count, nil
}

// scanSegments lists the WAL segments in order and walks every record,
// validating framing, checksums, and sequence monotonicity. The first
// damaged record ends the log: the segment is truncated there and
// later segments — unreachable past the hole — are deleted. The scan
// also recovers the last durable sequence number.
func (s *Store) scanSegments() error {
	names, err := filepath.Glob(filepath.Join(s.dir, walPrefix+"*"+walSuffix))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(names) // %016x names sort in numeric = sequence order

	// prevSeq enforces strictly increasing sequence numbers across the
	// whole log (within and across segments): a record duplicated or
	// spliced out of order would otherwise carry a valid checksum, be
	// replayed twice, and break FoldState. Note it starts at 0, not the
	// snapshot's seq — segments sealed into the snapshot but not yet
	// deleted legitimately hold records below it.
	var prevSeq uint64
	prevRecords := 0
	for i, path := range names {
		good, lastSeq, records, intact, err := scanSegment(path, prevSeq)
		if err != nil {
			return err
		}
		s.walBytes += good
		if lastSeq > s.seq {
			s.seq = lastSeq
		}
		s.segs = append(s.segs, path)
		s.segRecords = records
		if s.readOnly {
			// Freeze the validated prefix: a live writer may keep
			// appending past it, but this view replays exactly the
			// records that were intact at open.
			s.segLimits[path] = good
		}
		if intact {
			if records > 0 {
				prevSeq = lastSeq
			}
			prevRecords = records
			continue
		}
		// Damaged record: drop everything from it on.
		s.recovered++
		if s.readOnly {
			// A reader must not repair: the "damage" may simply be the
			// writer's in-flight append. The byte limit above already
			// fences replay; keep a torn-header segment out of the
			// list and ignore anything past the damage.
			if good == 0 {
				s.segs = s.segs[:len(s.segs)-1]
				s.segRecords = prevRecords
			}
			break
		}
		if good == 0 {
			// The header itself was torn: the file has no valid magic.
			// Truncating would leave a magicless segment that accepts
			// appends and then reads as empty on the next open — silently
			// discarding acknowledged ops. Delete it; the append target
			// falls back to the previous segment (whose record count must
			// be restored) or is recreated with a fresh header.
			s.segs = s.segs[:len(s.segs)-1]
			s.segRecords = prevRecords
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("store: removing torn %s: %w", path, err)
			}
		} else if err := os.Truncate(path, good); err != nil {
			return fmt.Errorf("store: truncating %s: %w", path, err)
		}
		for _, later := range names[i+1:] {
			s.recovered++
			if err := os.Remove(later); err != nil {
				return fmt.Errorf("store: removing %s: %w", later, err)
			}
		}
		break
	}
	return nil
}

// scanSegment walks one segment. Records must carry strictly
// increasing sequence numbers continuing from prevSeq (the last seq of
// the preceding segment); a duplicate or out-of-order record is
// damage, like a bad checksum. It returns the byte offset of the end
// of the last intact record, the last sequence number seen, how many
// intact records precede any damage, and whether the segment was fully
// intact.
func scanSegment(path string, prevSeq uint64) (good int64, lastSeq uint64, records int, intact bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != walMagic {
		// A header torn mid-write: the whole segment is empty.
		return 0, 0, 0, false, nil
	}
	good = int64(len(magic))
	lastSeq = prevSeq
	for {
		payload, err := readRecord(f)
		if err == io.EOF {
			return good, lastSeq, records, true, nil
		}
		if err == io.ErrUnexpectedEOF || IsCorrupt(err) {
			return good, lastSeq, records, false, nil
		}
		if err != nil {
			return 0, 0, 0, false, fmt.Errorf("store: reading %s: %w", path, err)
		}
		// decodeOp re-validates structure; a record whose checksum holds
		// but whose payload cannot decode — or whose sequence number does
		// not advance — is treated as the end of the intact prefix, like
		// a checksum failure.
		op, derr := decodeOp(payload)
		if derr != nil || op.Seq <= lastSeq {
			return good, lastSeq, records, false, nil
		}
		good += recordSize(payload)
		lastSeq = op.Seq
		records++
	}
}

// openAppendSegment opens the last live segment for appending, or
// starts a fresh one when the directory has none.
func (s *Store) openAppendSegment() error {
	if len(s.segs) == 0 {
		return s.startSegment()
	}
	path := s.segs[len(s.segs)-1]
	f, err := openWALFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.seg, s.segPath, s.segSize = f, path, fi.Size()
	return nil
}

// startSegment creates and syncs a new WAL segment named after the
// next sequence number, making it the append target. Callers hold s.mu
// (or have exclusive access during Open).
func (s *Store) startSegment() error {
	path := filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", walPrefix, s.seq+1, walSuffix))
	f, err := s.createSegment(path)
	if err != nil {
		return err
	}
	s.seg, s.segPath, s.segSize = f, path, int64(len(walMagic))
	s.segRecords = 0
	s.segs = append(s.segs, path)
	s.walBytes += int64(len(walMagic))
	return nil
}

// createSegment creates and syncs a segment file without touching the
// store's state, so a failure (disk full) leaves the current append
// target untouched. O_APPEND matters even on a fresh file: a rolled-
// back append truncates the segment, and a positional fd would keep
// writing at its old offset afterwards, leaving a zero-filled hole
// that recovery reads as damage — silently dropping every later
// acknowledged op.
func (s *Store) createSegment(path string) (walFile, error) {
	f, err := openWALFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syncFile(f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// Replay streams the persisted state to apply in its durable order:
// first every snapshot graph (as OpRegister with the snapshot's
// sequence number), then every WAL op newer than the snapshot. An
// apply error aborts the replay and is returned. Replay must complete
// before the first Append.
func (s *Store) Replay(apply func(Op) error) error {
	if err := s.replaySnapshot(apply); err != nil {
		return err
	}
	s.mu.Lock()
	segs := append([]string(nil), s.segs...)
	snapSeq := s.snapshotSeq
	limits := make(map[string]int64, len(s.segLimits))
	for p, l := range s.segLimits {
		limits[p] = l
	}
	s.mu.Unlock()
	for _, path := range segs {
		if err := replaySegment(path, limits[path], snapSeq, apply); err != nil {
			return err
		}
	}
	return nil
}

// replaySnapshot decodes the snapshot's graphs and feeds them to apply.
func (s *Store) replaySnapshot(apply func(Op) error) error {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	lastSeq, count, err := readSnapshotHeader(f)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	for i := 0; i < count; i++ {
		payload, err := readRecord(f)
		if err != nil {
			return fmt.Errorf("store: snapshot graph %d/%d: %w", i+1, count, err)
		}
		d := &dec{buf: payload}
		name, err := d.str()
		if err != nil {
			return fmt.Errorf("store: snapshot graph %d/%d: %w", i+1, count, err)
		}
		g, err := decodeGraph(d)
		if err != nil {
			return fmt.Errorf("store: snapshot graph %q: %w", name, err)
		}
		if err := apply(Op{Seq: lastSeq, Kind: OpRegister, Name: name, Graph: g}); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment feeds one segment's ops newer than snapSeq to apply.
// The segment was validated (and possibly truncated) at open, so any
// damage here is an I/O failure, not a recoverable tail. A non-zero
// limit bounds the read to the validated byte prefix — the read-only
// open records one per segment instead of truncating, since a live
// writer may still be appending past it.
func replaySegment(path string, limit int64, snapSeq uint64, apply func(Op) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if limit > 0 {
		r = io.LimitReader(f, limit)
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil // fully truncated segment: no records survived
		}
		return fmt.Errorf("store: %s: %w", path, err)
	}
	for {
		payload, err := readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: replaying %s: %w", path, err)
		}
		op, err := decodeOp(payload)
		if err != nil {
			return fmt.Errorf("store: replaying %s: %w", path, err)
		}
		if op.Seq <= snapSeq {
			continue // already folded into the snapshot
		}
		if err := apply(op); err != nil {
			return err
		}
	}
}

// Append assigns the next sequence number to op, writes it to the
// current WAL segment, and fsyncs before returning — when Append
// returns nil the op is durable. The engine calls it through the
// catalog's persister hook, under the catalog lock, so the log order
// is exactly the mutation order.
func (s *Store) Append(op Op) (uint64, error) {
	seq, _, err := s.AppendTimed(op)
	return seq, err
}

// AppendTiming breaks an append's latency into its total and the
// fsync portion, for callers attaching the durability cost to a
// request trace.
type AppendTiming struct {
	Total time.Duration
	Fsync time.Duration
}

// AppendTimed is Append returning per-phase timings alongside the
// assigned sequence number.
func (s *Store) AppendTimed(op Op) (uint64, AppendTiming, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendGuard(); err != nil {
		return 0, AppendTiming{}, err
	}
	op.Seq = s.seq + 1
	tm, err := s.appendLocked(op)
	if err != nil {
		return 0, tm, err
	}
	return op.Seq, tm, nil
}

// AppendAt appends an op that already carries its sequence number —
// the replication path, where the primary assigned the seq and the
// follower must persist it verbatim so a restarted follower resumes
// from the exact upstream position. The seq must be beyond the last
// durable one; gaps are legal (a bootstrap resets the base), going
// backwards is not.
func (s *Store) AppendAt(op Op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendGuard(); err != nil {
		return err
	}
	if op.Seq <= s.seq {
		return fmt.Errorf("store: AppendAt seq %d not beyond durable seq %d", op.Seq, s.seq)
	}
	_, err := s.appendLocked(op)
	return err
}

// appendGuard rejects appends on a store that cannot take them.
func (s *Store) appendGuard() error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.readOnly {
		return ErrReadOnly
	}
	if s.failed != nil {
		return fmt.Errorf("store: failed: %w", s.failed)
	}
	return nil
}

// appendLocked writes op — seq already assigned — to the current
// segment and fsyncs. Callers hold s.mu and have passed appendGuard.
func (s *Store) appendLocked(op Op) (AppendTiming, error) {
	payload, err := encodeOp(op)
	if err != nil {
		return AppendTiming{}, err
	}
	// A failed (= vetoed) append must leave the segment exactly as it
	// was: partial record bytes would make recovery truncate away every
	// LATER acknowledged op, and a fully written but unacknowledged
	// record would replay a mutation the caller was told failed. Roll
	// the file back to the pre-write size; if even that fails, the tail
	// state is unknown and the store goes sticky-failed rather than
	// risk acknowledging ops after garbage.
	rollback := func(cause error) error {
		if terr := s.seg.Truncate(s.segSize); terr != nil {
			s.failed = fmt.Errorf("rollback of %s to %d after %v: %w", s.segPath, s.segSize, cause, terr)
			return fmt.Errorf("store: %w", s.failed)
		}
		return cause
	}
	start := time.Now()
	if err := writeRecord(s.seg, payload); err != nil {
		return AppendTiming{}, rollback(fmt.Errorf("store: appending to %s: %w", s.segPath, err))
	}
	syncStart := time.Now()
	if err := syncFile(s.seg); err != nil {
		return AppendTiming{}, rollback(fmt.Errorf("store: syncing %s: %w", s.segPath, err))
	}
	tm := AppendTiming{Fsync: time.Since(syncStart)}
	tm.Total = time.Since(start)
	if s.obs.Fsync != nil {
		s.obs.Fsync(tm.Fsync.Seconds())
	}
	if s.obs.Append != nil {
		s.obs.Append(tm.Total.Seconds())
	}
	s.seq = op.Seq
	s.appended++
	s.sinceSnapshot++
	s.segRecords++
	s.segSize += recordSize(payload)
	s.walBytes += recordSize(payload)
	return tm, nil
}

// Rotate seals the current WAL segment and starts a new one, returning
// the last durable sequence number and the sealed segments. It is the
// first half of a snapshot and must run while the registry cannot
// mutate (the engine calls it inside catalog.Export, under the catalog
// lock) so the exported state corresponds exactly to lastSeq.
func (s *Store) Rotate() (lastSeq uint64, sealed []string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, fmt.Errorf("store: closed")
	}
	if s.readOnly {
		return 0, nil, ErrReadOnly
	}
	if s.segRecords == 0 {
		// The current segment holds nothing: keep appending to it and
		// seal only the earlier segments. This also avoids a name
		// collision — a fresh segment would be named after the same
		// next sequence number the empty one already claims.
		s.sealed = append(s.sealed, s.segs[:len(s.segs)-1]...)
		s.segs = s.segs[len(s.segs)-1:]
		return s.seq, append([]string(nil), s.sealed...), nil
	}
	// Create the successor before closing the current segment, so a
	// creation failure (disk full) leaves the store fully serviceable —
	// the snapshot attempt fails, appends continue, a later attempt
	// retries the rotation.
	path := filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", walPrefix, s.seq+1, walSuffix))
	f, err := s.createSegment(path)
	if err != nil {
		return 0, nil, err
	}
	if err := s.seg.Close(); err != nil {
		f.Close()
		os.Remove(path)
		return 0, nil, fmt.Errorf("store: sealing %s: %w", s.segPath, err)
	}
	// Sealed segments accumulate until a snapshot actually deletes them:
	// if this snapshot attempt fails after the rotation (disk full, say),
	// the next attempt's sealed list still carries these files, so they
	// are reclaimed instead of orphaned until restart.
	s.sealed = append(s.sealed, s.segs...)
	s.seg, s.segPath, s.segSize = f, path, int64(len(walMagic))
	s.segRecords = 0
	s.segs = []string{path}
	s.walBytes += int64(len(walMagic))
	return s.seq, append([]string(nil), s.sealed...), nil
}

// WriteSnapshot persists state — the full registry at WAL position
// lastSeq, as returned by Rotate — and then deletes the sealed
// segments its ops came from. The snapshot is written to a temp file,
// fsynced, and renamed over the previous snapshot, so a crash leaves
// either the old snapshot (sealed segments still present) or the new
// one (sealed segments' ops all at or below lastSeq, skipped by
// replay); both recover exactly.
func (s *Store) WriteSnapshot(state map[string]*graph.Graph, lastSeq uint64, sealed []string) error {
	s.mu.Lock()
	ro := s.readOnly
	s.mu.Unlock()
	if ro {
		return ErrReadOnly
	}
	start := time.Now()
	if err := writeSnapshotFile(s.dir, state, lastSeq); err != nil {
		return err
	}
	// The rename is durable: the sealed segments' ops are all ≤ lastSeq
	// and would be skipped by replay anyway. Reclaim them.
	var sealedBytes int64
	deleted := make(map[string]bool, len(sealed))
	for _, path := range sealed {
		if fi, err := os.Stat(path); err == nil {
			sealedBytes += fi.Size()
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: removing sealed %s: %w", path, err)
		}
		deleted[path] = true
	}
	s.mu.Lock()
	s.snapshotSeq = lastSeq
	s.snapGraphs = len(state)
	s.snapshots++
	// Ops may have been appended while the snapshot was encoding; the
	// exact count of not-yet-folded ops is the sequence distance, not 0.
	s.sinceSnapshot = int(s.seq - lastSeq)
	s.walBytes -= sealedBytes
	kept := s.sealed[:0]
	for _, path := range s.sealed {
		if !deleted[path] {
			kept = append(kept, path)
		}
	}
	s.sealed = kept
	obs := s.obs.Snapshot
	s.mu.Unlock()
	if obs != nil {
		obs(time.Since(start).Seconds())
	}
	return nil
}

// writeSnapshotFile encodes state at WAL position lastSeq to the
// snapshot temp file, fsyncs it, and atomically renames it into place.
// It touches no Store state — WriteSnapshot and ReplaceWithSnapshot
// share it and account for the result themselves.
func writeSnapshotFile(dir string, state map[string]*graph.Graph, lastSeq uint64) error {
	names := make([]string, 0, len(state))
	for n := range state {
		names = append(names, n)
	}
	sort.Strings(names)

	tmpPath := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds
	werr := func() error {
		defer f.Close()
		if _, err := f.Write([]byte(snapshotMagic)); err != nil {
			return err
		}
		hdr := &enc{}
		hdr.u64(lastSeq)
		hdr.uvarint(len(names))
		if err := writeRecord(f, hdr.buf); err != nil {
			return err
		}
		for _, name := range names {
			e := &enc{buf: make([]byte, 0, 1024)}
			e.str(name)
			encodeGraph(e, state[name])
			if err := writeRecord(f, e.buf); err != nil {
				return err
			}
		}
		return syncFile(f)
	}()
	if werr != nil {
		return fmt.Errorf("store: writing snapshot: %w", werr)
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, snapshotName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// ReplaceWithSnapshot discards the store's entire history and restarts
// it from state at WAL position seq — the follower's landing path for
// a replication bootstrap, whose state comes from the primary's
// catalog export rather than the local log. Ordering makes a crash at
// any point recoverable: the old segments are deleted first (recovery
// then lands on the old snapshot, an older-but-consistent position the
// follower simply re-requests), the new snapshot is renamed in second
// (recovery lands exactly on seq), and a fresh append segment opens
// last. A failure mid-replace leaves the log's shape unknown, so the
// store goes sticky-failed rather than risk appending after it.
func (s *Store) ReplaceWithSnapshot(state map[string]*graph.Graph, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.readOnly {
		return ErrReadOnly
	}
	if s.failed != nil {
		return fmt.Errorf("store: failed: %w", s.failed)
	}
	fail := func(err error) error {
		s.failed = err
		return fmt.Errorf("store: replacing with snapshot: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fail(err)
	}
	for _, path := range append(append([]string(nil), s.sealed...), s.segs...) {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fail(err)
		}
	}
	s.sealed, s.segs = nil, nil
	s.seg, s.segPath, s.segSize, s.segRecords, s.walBytes = nil, "", 0, 0, 0
	if err := writeSnapshotFile(s.dir, state, seq); err != nil {
		return fail(err)
	}
	s.seq = seq
	s.snapshotSeq = seq
	s.snapGraphs = len(state)
	s.snapshots++
	s.sinceSnapshot = 0
	if err := s.startSegment(); err != nil {
		return fail(err)
	}
	return nil
}

// SinceSnapshot reports how many ops were appended after the last
// snapshot — the engine's SnapshotEvery trigger reads it after each
// mutation.
func (s *Store) SinceSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnapshot
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Dir:           s.dir,
		LastSeq:       s.seq,
		SnapshotSeq:   s.snapshotSeq,
		Appended:      s.appended,
		SinceSnapshot: s.sinceSnapshot,
		Snapshots:     s.snapshots,
		Segments:      len(s.segs) + len(s.sealed),
		WALBytes:      s.walBytes,
		Recovered:     s.recovered,
	}
}

// Close fsyncs and closes the append segment. Appends after Close fail;
// Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.lock != nil {
		defer unlockDir(s.lock)
	}
	if s.seg == nil {
		return nil // read-only stores have no append segment
	}
	if err := syncFile(s.seg); err != nil {
		s.seg.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := s.seg.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Abandon simulates a crash: it drops the append segment without the
// final sync and releases the directory lock, leaving the files
// exactly as kill -9 would (every acknowledged append is already
// fsynced, so nothing owed is lost — that is the durability contract
// under test). Appends after Abandon fail. Real code paths use Close.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.seg != nil {
		_ = s.seg.Close()
	}
	if s.lock != nil {
		unlockDir(s.lock)
	}
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := syncFile(d); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}

// FoldState replays the store into an in-memory registry, applying
// every op semantically: the result maps each surviving name to its
// final graph (registers replayed, patches applied in order, removed
// names absent). Boot-time recovery consumes this instead of pushing
// every op through the live catalog — a graph patched a thousand times
// gets one closure build, not a thousand — and offline compaction
// snapshots it directly. replayed counts the WAL ops applied on top of
// the snapshot. FoldState must run before the first Append.
func (s *Store) FoldState() (state map[string]*graph.Graph, replayed int, err error) {
	return s.FoldStateObserved(nil)
}

// FoldStateObserved is FoldState with a progress callback: onOp fires
// after each op folds in (snapshot graphs and WAL ops alike), so boot
// can estimate replay time remaining for its Retry-After header.
func (s *Store) FoldStateObserved(onOp func()) (state map[string]*graph.Graph, replayed int, err error) {
	s.mu.Lock()
	snapSeq := s.snapshotSeq
	s.mu.Unlock()
	state = make(map[string]*graph.Graph)
	err = s.Replay(func(op Op) error {
		if onOp != nil {
			defer onOp()
		}
		switch op.Kind {
		case OpRegister:
			if _, dup := state[op.Name]; dup {
				return fmt.Errorf("store: duplicate register of %q at seq %d", op.Name, op.Seq)
			}
			state[op.Name] = op.Graph
		case OpRemove:
			if _, ok := state[op.Name]; !ok {
				return fmt.Errorf("store: remove of unknown graph %q at seq %d", op.Name, op.Seq)
			}
			delete(state, op.Name)
		case OpPatch:
			g, ok := state[op.Name]
			if !ok {
				return fmt.Errorf("store: patch for unknown graph %q at seq %d", op.Name, op.Seq)
			}
			ng, err := g.ApplyPatch(op.Patch)
			if err != nil {
				return fmt.Errorf("store: replaying patch for %q at seq %d: %w", op.Name, op.Seq, err)
			}
			state[op.Name] = ng
		default:
			return fmt.Errorf("store: unknown op kind %d at seq %d", op.Kind, op.Seq)
		}
		if op.Seq > snapSeq {
			replayed++
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return state, replayed, nil
}

// ReplayPlan reports the boot replay workload before it runs: the
// number of graphs in the current snapshot and the number of WAL ops
// above it. Paired with FoldStateObserved it lets boot turn "how far
// along is replay" into a Retry-After estimate.
func (s *Store) ReplayPlan() (snapshotGraphs, walOps int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapGraphs, int(s.seq - s.snapshotSeq)
}

// CompactInfo reports what an offline compaction did.
type CompactInfo struct {
	// Graphs is the number of graphs in the written snapshot.
	Graphs int
	// LastSeq is the WAL position the snapshot captures.
	LastSeq uint64
	// ReplayedOps is the number of WAL ops folded in.
	ReplayedOps int
}

// Compact is the offline compaction behind `phom compact -store DIR`:
// it replays the store into memory, writes a fresh snapshot, and
// deletes the replayed WAL segments — run it while the server is down
// to bound the next boot's replay work. The store must not be open
// elsewhere.
func Compact(dir string) (CompactInfo, error) {
	s, err := Open(dir)
	if err != nil {
		return CompactInfo{}, err
	}
	defer s.Close()

	state, ops, err := s.FoldState()
	if err != nil {
		return CompactInfo{}, err
	}
	lastSeq, sealed, err := s.Rotate()
	if err != nil {
		return CompactInfo{}, err
	}
	if err := s.WriteSnapshot(state, lastSeq, sealed); err != nil {
		return CompactInfo{}, err
	}
	return CompactInfo{Graphs: len(state), LastSeq: lastSeq, ReplayedOps: ops}, nil
}
