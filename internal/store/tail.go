package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The replication tail reader. The primary's replicate endpoint polls
// ReadSince to ship WAL records past the follower's position; it works
// on any open store (the owning one — a read-only open sees only its
// frozen point-in-time view, so a live primary serves from its own
// handle).

// Record is one framed WAL op exactly as stored: its sequence number
// and the raw, CRC-validated payload. Payloads ship over the wire
// verbatim — the primary never decodes graphs just to forward them —
// and DecodeOp parses them on the follower.
type Record struct {
	Seq     uint64
	Payload []byte
}

// TruncatedHistoryError reports that the requested position precedes
// the store's snapshot: the records were (or may already have been)
// compacted away, and the reader needs a full bootstrap instead of a
// tail.
type TruncatedHistoryError struct {
	// SnapshotSeq is the oldest position the WAL can still serve from.
	SnapshotSeq uint64
}

func (e *TruncatedHistoryError) Error() string {
	return fmt.Sprintf("store: history before seq %d is compacted away", e.SnapshotSeq)
}

// ReadSince returns up to max WAL records with sequence numbers beyond
// from, in order. It reads the segment files directly, without holding
// the store lock across I/O, so a streaming replicator does not stall
// appends. Concurrent activity is handled, not locked out:
//
//   - records are capped at the last *acknowledged* seq, so an append
//     that is mid-write (or about to be rolled back after a failed
//     fsync) is never shipped;
//   - a torn or corrupt tail — the writer racing us — ends the batch
//     cleanly, to be re-read next call;
//   - a segment deleted by a concurrent compaction is skipped if its
//     records were already behind from, and reported as
//     TruncatedHistoryError otherwise.
//
// An empty batch with a nil error means the caller is caught up.
func (s *Store) ReadSince(from uint64, max int) ([]Record, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: closed")
	}
	capSeq := s.seq
	snapSeq := s.snapshotSeq
	segs := make([]string, 0, len(s.sealed)+len(s.segs))
	segs = append(segs, s.sealed...)
	segs = append(segs, s.segs...)
	limits := make(map[string]int64, len(s.segLimits))
	for p, l := range s.segLimits {
		limits[p] = l
	}
	s.mu.Unlock()

	if from < snapSeq {
		return nil, &TruncatedHistoryError{SnapshotSeq: snapSeq}
	}
	if from >= capSeq || max <= 0 {
		return nil, nil
	}

	var recs []Record
	for i, path := range segs {
		// Segment names carry the seq the segment was started at; every
		// record in it is ≥ that, and every record in its predecessors
		// is below it. A successor starting at or below from+1 proves
		// this whole segment is behind the cursor.
		if i+1 < len(segs) {
			if next, ok := segStartSeq(segs[i+1]); ok && next <= from+1 {
				continue
			}
		}
		var err error
		recs, err = readSegmentSince(path, limits[path], from, capSeq, max, recs)
		if err != nil {
			if os.IsNotExist(err) {
				// Compacted away mid-read. Harmless iff its records were
				// all behind the cursor, which holds exactly when the
				// cursor is still at or past the (possibly just-advanced)
				// snapshot position.
				s.mu.Lock()
				snapSeq = s.snapshotSeq
				s.mu.Unlock()
				if from >= snapSeq {
					continue
				}
				return nil, &TruncatedHistoryError{SnapshotSeq: snapSeq}
			}
			return nil, err
		}
		if len(recs) > 0 {
			from = recs[len(recs)-1].Seq
		}
		if len(recs) >= max {
			break
		}
	}
	return recs, nil
}

// readSegmentSince scans one segment, appending records in (from,
// capSeq] to recs until max. Torn tails and checksum failures end the
// scan cleanly: against a live writer they are simply the in-flight
// append.
func readSegmentSince(path string, limit int64, from, capSeq uint64, max int, recs []Record) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return recs, err
	}
	defer f.Close()
	var r io.Reader = f
	if limit > 0 {
		r = io.LimitReader(f, limit)
	}
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != walMagic {
		// A header still mid-write by the segment's creator: no records.
		return recs, nil
	}
	var prev uint64 // last seq seen in this file; must strictly increase
	for len(recs) < max {
		payload, err := readRecord(r)
		if err == io.EOF || err == io.ErrUnexpectedEOF || IsCorrupt(err) {
			return recs, nil
		}
		if err != nil {
			return recs, fmt.Errorf("store: tailing %s: %w", path, err)
		}
		seq, err := PeekSeq(payload)
		if err != nil || seq <= prev {
			return recs, nil // damage past the validated prefix: stop here
		}
		prev = seq
		if seq > capSeq {
			return recs, nil // written but not yet acknowledged
		}
		if seq > from {
			recs = append(recs, Record{Seq: seq, Payload: payload})
		}
	}
	return recs, nil
}

// segStartSeq parses the starting sequence number a segment file was
// named after.
func segStartSeq(path string) (uint64, bool) {
	name := filepath.Base(path)
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix), 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
