package store

import (
	"errors"
	"os"
	"testing"

	"graphmatch/internal/graph"
)

// register is shorthand for appending a register op.
func register(t *testing.T, s *Store, name string, seed int) uint64 {
	t.Helper()
	seq, err := s.Append(Op{Kind: OpRegister, Name: name, Graph: testGraph(seed)})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestOpenReadOnlyWhileLive is the flock satellite: a second,
// read-only opener must see the durable state while the owning store
// is live and holding the exclusive directory lock.
func TestOpenReadOnlyWhileLive(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	register(t, rw, "a", 1)
	register(t, rw, "b", 2)

	// A second exclusive open must still fail…
	if _, err := Open(dir); err == nil {
		t.Fatal("second exclusive Open succeeded while the store is live")
	}
	// …but a read-only open succeeds and sees both graphs.
	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	state, _, err := ro.FoldState()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 2 || state["a"] == nil || state["b"] == nil {
		t.Fatalf("read-only FoldState saw %d graphs, want a and b", len(state))
	}

	// The view is point-in-time: ops appended after the read-only open
	// are not visible to it.
	register(t, rw, "c", 3)
	state2, _, err := ro.FoldState()
	if err != nil {
		t.Fatal(err)
	}
	if len(state2) != 2 {
		t.Fatalf("read-only view grew to %d graphs after a concurrent append", len(state2))
	}

	// And the writer is untouched: the read-only open repaired nothing
	// and the exclusive owner keeps appending.
	register(t, rw, "d", 4)
	if got := rw.Stats().LastSeq; got != 4 {
		t.Fatalf("writer LastSeq = %d after read-only open, want 4", got)
	}
}

func TestOpenReadOnlyRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	register(t, rw, "a", 1)
	rw.Close()

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Append(Op{Kind: OpRemove, Name: "a"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Append on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro.AppendAt(Op{Seq: 9, Kind: OpRemove, Name: "a"}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("AppendAt on read-only store: %v, want ErrReadOnly", err)
	}
	if _, _, err := ro.Rotate(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Rotate on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro.WriteSnapshot(nil, 1, nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("WriteSnapshot on read-only store: %v, want ErrReadOnly", err)
	}
	if err := ro.ReplaceWithSnapshot(nil, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ReplaceWithSnapshot on read-only store: %v, want ErrReadOnly", err)
	}
}

// TestOpenReadOnlyTornTail: the read-only scan must fence replay at
// the damage without truncating the writer's file.
func TestOpenReadOnlyTornTail(t *testing.T) {
	dir := t.TempDir()
	rw, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	register(t, rw, "a", 1)
	register(t, rw, "b", 2)
	segPath := rw.segPath
	rw.Close()

	// Tear the tail: chop the last record mid-payload.
	fi, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	tornSize := fi.Size() - 5

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	state, _, err := ro.FoldState()
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 1 || state["a"] == nil {
		t.Fatalf("read-only FoldState past a torn tail saw %v, want just a", state)
	}
	// The file was not repaired.
	if fi, err := os.Stat(segPath); err != nil || fi.Size() != tornSize {
		t.Fatalf("read-only open changed the segment file: size %d, want %d (err %v)", fi.Size(), tornSize, err)
	}
}

func TestAppendAtPreservesUpstreamSeqs(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint64{3, 4, 7} { // gaps are legal
		if err := s.AppendAt(Op{Seq: seq, Kind: OpRegister, Name: string(rune('a' + seq)), Graph: testGraph(int(seq))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendAt(Op{Seq: 7, Kind: OpRemove, Name: "x"}); err == nil {
		t.Fatal("AppendAt accepted a non-advancing seq")
	}
	if got := s.Stats().LastSeq; got != 7 {
		t.Fatalf("LastSeq = %d, want 7", got)
	}
	s.Close()

	// A reopen resumes from the preserved upstream position.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().LastSeq; got != 7 {
		t.Fatalf("reopened LastSeq = %d, want 7", got)
	}
	ops := 0
	if err := s2.Replay(func(Op) error { ops++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ops != 3 {
		t.Fatalf("replayed %d ops, want 3", ops)
	}
}

func TestReplaceWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	register(t, s, "old1", 1)
	register(t, s, "old2", 2)

	state := map[string]*graph.Graph{"new1": testGraph(10), "new2": testGraph(11)}
	if err := s.ReplaceWithSnapshot(state, 42); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.LastSeq != 42 || st.SnapshotSeq != 42 {
		t.Fatalf("after replace: LastSeq %d SnapshotSeq %d, want 42/42", st.LastSeq, st.SnapshotSeq)
	}
	// The store keeps appending from the new base.
	if err := s.AppendAt(Op{Seq: 43, Kind: OpRegister, Name: "tail", Graph: testGraph(12)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, _, err := s2.FoldState()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got["new1"] == nil || got["new2"] == nil || got["tail"] == nil {
		t.Fatalf("recovered %d graphs %v, want new1+new2+tail (old history gone)", len(got), names(got))
	}
}

func names(state map[string]*graph.Graph) []string {
	var out []string
	for n := range state {
		out = append(out, n)
	}
	return out
}

func TestReadSince(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 10; i++ {
		register(t, s, string(rune('a'+i)), i)
	}

	// Full tail from 0, batched.
	var got []uint64
	from := uint64(0)
	for {
		recs, err := s.ReadSince(from, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			got = append(got, r.Seq)
			op, err := DecodeOp(r.Payload)
			if err != nil {
				t.Fatalf("payload of seq %d: %v", r.Seq, err)
			}
			if op.Seq != r.Seq {
				t.Fatalf("payload seq %d != record seq %d", op.Seq, r.Seq)
			}
		}
		from = recs[len(recs)-1].Seq
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("tail seqs = %v, want 1..10", got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("tailed %d records, want 10", len(got))
	}

	// Mid-log cursor, spanning a rotation.
	if _, _, err := s.Rotate(); err != nil {
		t.Fatal(err)
	}
	register(t, s, "k", 11)
	recs, err := s.ReadSince(9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 10 || recs[1].Seq != 11 {
		t.Fatalf("ReadSince(9) = %v, want seqs 10,11", recSeqs(recs))
	}
}

func recSeqs(recs []Record) []uint64 {
	var out []uint64
	for _, r := range recs {
		out = append(out, r.Seq)
	}
	return out
}

// TestReadSinceTruncatedHistory: a cursor behind the snapshot demands
// a bootstrap, not a silent partial tail.
func TestReadSinceTruncatedHistory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	state := make(map[string]*graph.Graph)
	for i := 1; i <= 5; i++ {
		name := string(rune('a' + i))
		register(t, s, name, i)
		state[name] = testGraph(i)
	}
	lastSeq, sealed, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(state, lastSeq, sealed); err != nil {
		t.Fatal(err)
	}
	register(t, s, "z", 99)

	var th *TruncatedHistoryError
	if _, err := s.ReadSince(2, 100); !errors.As(err, &th) {
		t.Fatalf("ReadSince behind the snapshot: %v, want TruncatedHistoryError", err)
	} else if th.SnapshotSeq != lastSeq {
		t.Fatalf("TruncatedHistoryError.SnapshotSeq = %d, want %d", th.SnapshotSeq, lastSeq)
	}
	// At the snapshot boundary the live segment still serves.
	recs, err := s.ReadSince(lastSeq, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != lastSeq+1 {
		t.Fatalf("ReadSince(snapshotSeq) = %v, want the one post-snapshot op", recSeqs(recs))
	}
}

// TestReadSinceIgnoresTornTail: a torn in-flight append must end the
// batch cleanly, then surface once completed.
func TestReadSinceIgnoresTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	register(t, s, "a", 1)

	// Simulate the writer mid-append: raw garbage past the last record.
	f, err := os.OpenFile(s.segPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := s.ReadSince(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("ReadSince with a torn tail = %v, want just seq 1", recSeqs(recs))
	}
}

func TestReplayPlan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := make(map[string]*graph.Graph)
	for i := 1; i <= 4; i++ {
		name := string(rune('a' + i))
		register(t, s, name, i)
		state[name] = testGraph(i)
	}
	lastSeq, sealed, err := s.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(state, lastSeq, sealed); err != nil {
		t.Fatal(err)
	}
	register(t, s, "x", 50)
	register(t, s, "y", 51)
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snapGraphs, walOps := s2.ReplayPlan()
	if snapGraphs != 4 || walOps != 2 {
		t.Fatalf("ReplayPlan = (%d, %d), want (4, 2)", snapGraphs, walOps)
	}
	seen := 0
	if _, _, err := s2.FoldStateObserved(func() { seen++ }); err != nil {
		t.Fatal(err)
	}
	if seen != snapGraphs+walOps {
		t.Fatalf("FoldStateObserved fired %d times, want %d", seen, snapGraphs+walOps)
	}
}
