package store

import (
	"bytes"
	"testing"

	"graphmatch/internal/graph"
)

// TestOpTraceRoundTrip checks the optional traceparent field survives
// encode/decode for every op kind.
func TestOpTraceRoundTrip(t *testing.T) {
	const tp = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	p := &graph.Patch{}
	ops := []Op{
		{Seq: 1, Kind: OpRegister, Name: "g", Graph: testGraph(1), Trace: tp},
		{Seq: 2, Kind: OpRemove, Name: "g", Trace: tp},
		{Seq: 3, Kind: OpPatch, Name: "g", Patch: p, Trace: tp},
	}
	for _, op := range ops {
		payload, err := encodeOp(op)
		if err != nil {
			t.Fatalf("encode kind %d: %v", op.Kind, err)
		}
		got, err := decodeOp(payload)
		if err != nil {
			t.Fatalf("decode kind %d: %v", op.Kind, err)
		}
		if got.Trace != tp {
			t.Fatalf("kind %d: trace = %q, want %q", op.Kind, got.Trace, tp)
		}
	}
}

// TestOpWithoutTraceEncodingUnchanged pins backward compatibility:
// an untraced op encodes to exactly the bytes the pre-trace format
// produced (no trailing section), and those bytes decode to an op
// with an empty Trace.
func TestOpWithoutTraceEncodingUnchanged(t *testing.T) {
	op := Op{Seq: 9, Kind: OpRemove, Name: "g"}
	plain, err := encodeOp(op)
	if err != nil {
		t.Fatal(err)
	}
	op.Trace = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	traced, err := encodeOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(traced, plain) {
		t.Fatal("traced encoding does not extend the plain encoding")
	}
	if len(traced) == len(plain) {
		t.Fatal("trace field not encoded")
	}
	got, err := decodeOp(plain)
	if err != nil {
		t.Fatalf("decoding pre-trace payload: %v", err)
	}
	if got.Trace != "" {
		t.Fatalf("pre-trace payload decoded with trace %q", got.Trace)
	}
}

// TestAppendTimed checks timings are populated and the seq advances
// exactly as Append would.
func TestAppendTimed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seq, tm, err := s.AppendTimed(Op{Kind: OpRegister, Name: "g", Graph: testGraph(1), Trace: "tp"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if tm.Total <= 0 || tm.Fsync < 0 || tm.Fsync > tm.Total {
		t.Fatalf("timing = %+v", tm)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ops := replayAll(t, dir)
	if len(ops) != 1 || ops[0].Trace != "tp" {
		t.Fatalf("replayed ops = %+v", ops)
	}
}
