package store

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"graphmatch/internal/graph"
)

// errfs is the reusable error-injecting file abstraction behind the
// WAL's failure-path tests: it swaps the package's openWALFile hook so
// every segment the store opens for writing goes through it, then
// fails chosen operations (write, fsync, truncate, open) with chosen
// errors — ENOSPC, EIO — at chosen moments. PR-5 hardened these paths
// by hand-rolling one-off fakes; this formalizes them into one helper
// every future failure test can share.
type errfs struct {
	mu sync.Mutex
	// failWrite/failSync/failTruncate, while non-nil, fail that op on
	// every injected file. failOpen fails openWALFile itself.
	failWrite    error
	failSync     error
	failTruncate error
	failOpen     error
	// onlyNew restricts injection to newly created segments (O_EXCL),
	// leaving the already-open append target healthy — the rotation
	// tests target exactly the successor-creation path.
	onlyNew bool
}

// install swaps the hook for the duration of the test.
func (fs *errfs) install(t *testing.T) {
	t.Helper()
	prev := openWALFile
	openWALFile = func(path string, flag int, perm os.FileMode) (walFile, error) {
		fs.mu.Lock()
		failOpen := fs.failOpen
		inject := !fs.onlyNew || flag&os.O_EXCL != 0
		fs.mu.Unlock()
		if failOpen != nil && inject {
			return nil, failOpen
		}
		f, err := os.OpenFile(path, flag, perm)
		if err != nil {
			return nil, err
		}
		if !inject {
			return f, nil
		}
		return &errFile{File: f, fs: fs}, nil
	}
	t.Cleanup(func() { openWALFile = prev })
}

func (fs *errfs) set(f func(*errfs)) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f(fs)
}

// errFile wraps a real file, consulting the shared errfs before every
// fallible op.
type errFile struct {
	*os.File
	fs *errfs
}

func (f *errFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	err := f.fs.failWrite
	f.fs.mu.Unlock()
	if err != nil {
		// A short write models ENOSPC mid-record: some bytes land.
		if len(p) > 1 {
			f.File.Write(p[:len(p)/2])
		}
		return 0, err
	}
	return f.File.Write(p)
}

func (f *errFile) Sync() error {
	f.fs.mu.Lock()
	err := f.fs.failSync
	f.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *errFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	err := f.fs.failTruncate
	f.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return f.File.Truncate(size)
}

var errNoSpace = errors.New("injected: no space left on device")

// TestRotateSurvivesSegmentCreationFailure: a rotation whose successor
// segment cannot be created (disk full) must fail without wedging the
// store — appends continue into the old segment and a later rotation
// succeeds.
func TestRotateSurvivesSegmentCreationFailure(t *testing.T) {
	fs := &errfs{onlyNew: true}
	fs.install(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	register(t, s, "a", 1)

	fs.set(func(fs *errfs) { fs.failSync = errNoSpace })
	if _, _, err := s.Rotate(); err == nil {
		t.Fatal("Rotate succeeded with a failing segment fsync")
	}
	fs.set(func(fs *errfs) { fs.failSync = nil })

	// Store still serviceable: appends land, the retried rotation works.
	register(t, s, "b", 2)
	lastSeq, sealed, err := s.Rotate()
	if err != nil {
		t.Fatalf("retried Rotate: %v", err)
	}
	if lastSeq != 2 {
		t.Fatalf("rotated at seq %d, want 2", lastSeq)
	}
	state := map[string]*graph.Graph{"a": testGraph(1), "b": testGraph(2)}
	if err := s.WriteSnapshot(state, lastSeq, sealed); err != nil {
		t.Fatal(err)
	}
	register(t, s, "c", 3)
	s.Close()

	got, _, err := mustOpenFold(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("recovered %d graphs after faulted rotation, want 3", len(got))
	}
}

// TestRotateSurvivesCreateOpenFailure: same serviceability contract
// when the successor's open itself fails.
func TestRotateSurvivesCreateOpenFailure(t *testing.T) {
	fs := &errfs{onlyNew: true}
	fs.install(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	register(t, s, "a", 1)

	fs.set(func(fs *errfs) { fs.failOpen = errNoSpace })
	if _, _, err := s.Rotate(); err == nil {
		t.Fatal("Rotate succeeded with a failing segment create")
	}
	fs.set(func(fs *errfs) { fs.failOpen = nil })
	register(t, s, "b", 2)
	if _, _, err := s.Rotate(); err != nil {
		t.Fatalf("retried Rotate: %v", err)
	}
}

// TestAppendENOSPCRollsBack: a write failure mid-record must roll the
// segment back so recovery never sees the partial bytes, and the store
// keeps accepting appends.
func TestAppendENOSPCRollsBack(t *testing.T) {
	fs := &errfs{}
	fs.install(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	register(t, s, "a", 1)

	fs.set(func(fs *errfs) { fs.failWrite = errNoSpace })
	if _, err := s.Append(Op{Kind: OpRegister, Name: "b", Graph: testGraph(2)}); !errors.Is(err, errNoSpace) {
		t.Fatalf("Append with failing write: %v, want injected ENOSPC", err)
	}
	fs.set(func(fs *errfs) { fs.failWrite = nil })

	register(t, s, "c", 3)
	s.Close()

	state, _, err := mustOpenFold(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 2 || state["a"] == nil || state["c"] == nil {
		t.Fatalf("recovered %v, want a and c (b was never acknowledged)", names(state))
	}
}

// TestAppendFsyncFailureRollsBack: same contract when the record is
// fully written but the fsync fails — the op was never acknowledged,
// so it must not replay.
func TestAppendFsyncFailureRollsBack(t *testing.T) {
	fs := &errfs{}
	fs.install(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	register(t, s, "a", 1)

	fs.set(func(fs *errfs) { fs.failSync = errNoSpace })
	if _, err := s.Append(Op{Kind: OpRegister, Name: "b", Graph: testGraph(2)}); !errors.Is(err, errNoSpace) {
		t.Fatalf("Append with failing fsync: %v, want injected ENOSPC", err)
	}
	fs.set(func(fs *errfs) { fs.failSync = nil })
	register(t, s, "c", 3)
	s.Close()

	state, _, err := mustOpenFold(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(state) != 2 || state["a"] == nil || state["c"] == nil {
		t.Fatalf("recovered %v, want a and c", names(state))
	}
}

// TestAppendRollbackFailureIsSticky: when even the rollback truncate
// fails, the tail state is unknown — the store must refuse every
// further append instead of acknowledging ops after garbage.
func TestAppendRollbackFailureIsSticky(t *testing.T) {
	fs := &errfs{}
	fs.install(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	register(t, s, "a", 1)

	fs.set(func(fs *errfs) { fs.failWrite = errNoSpace; fs.failTruncate = errors.New("injected: truncate EIO") })
	if _, err := s.Append(Op{Kind: OpRegister, Name: "b", Graph: testGraph(2)}); err == nil {
		t.Fatal("Append succeeded with failing write and truncate")
	}
	fs.set(func(fs *errfs) { fs.failWrite = nil; fs.failTruncate = nil })

	if _, err := s.Append(Op{Kind: OpRegister, Name: "c", Graph: testGraph(3)}); err == nil {
		t.Fatal("append accepted after a failed rollback")
	} else if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("post-rollback append error %q does not mark the store failed", err)
	}
}

// mustOpenFold reopens dir and folds its state.
func mustOpenFold(t *testing.T, dir string) (map[string]*graph.Graph, int, error) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	return s.FoldState()
}
