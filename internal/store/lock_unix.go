//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK, guarding the
// store against a second process (a live phomd versus an offline
// `phom compact`, say) appending to the same segments or deleting each
// other's files. flock is released automatically when the process dies
// — a kill -9 never wedges the store — and explicitly by unlockDir on
// Close.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+string(os.PathSeparator)+"LOCK", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (flock: %w)", dir, err)
	}
	return f, nil
}

// unlockDir releases the advisory lock.
func unlockDir(f *os.File) {
	if f == nil {
		return
	}
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}
