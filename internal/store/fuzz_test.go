package store

import (
	"os"
	"path/filepath"
	"testing"

	"graphmatch/internal/graph"
)

// FuzzWALReplay throws arbitrary bytes at the WAL recovery path: open
// must never panic and never fail on damaged data — it recovers the
// longest intact record prefix — and the recovered store must replay
// cleanly and accept new appends. The seed corpus includes a valid
// segment so mutations explore near-valid framing (flipped checksums,
// truncated payloads, oversized length prefixes), not just noise.
func FuzzWALReplay(f *testing.F) {
	// Seed: a well-formed segment with one op of each kind.
	seedDir := f.TempDir()
	s, err := Open(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	g := graph.FromEdgeList([]string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}})
	g.SetContent(0, "seed content")
	ops := []Op{
		{Kind: OpRegister, Name: "g", Graph: g},
		{Kind: OpPatch, Name: "g", Patch: &graph.Patch{
			AddNodes: []graph.Node{{Label: "D", Weight: 1}},
			AddEdges: [][2]graph.NodeID{{2, 3}},
			DelEdges: [][2]graph.NodeID{{0, 1}},
		}},
		{Kind: OpRemove, Name: "g"},
	}
	for _, op := range ops {
		if _, err := s.Append(op); err != nil {
			f.Fatal(err)
		}
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(seedDir, walPrefix+"*"+walSuffix))
	if len(segs) != 1 {
		f.Fatalf("seed store has %d segments", len(segs))
	}
	seed, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])         // torn tail
	f.Add([]byte(walMagic))           // empty segment
	f.Add([]byte{})                   // no header at all
	f.Add([]byte("PHOMWAL1\xff\xff")) // garbage after header

	// Throwaway stores: durability syncs off, for fuzz throughput.
	syncWrites = false
	defer func() { syncWrites = true }()

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walPrefix+"0000000000000001"+walSuffix)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("open failed on damaged WAL (must recover instead): %v", err)
		}
		defer st.Close()
		prev := uint64(0)
		if err := st.Replay(func(op Op) error {
			if op.Seq <= prev {
				t.Fatalf("non-monotonic replay: seq %d after %d", op.Seq, prev)
			}
			prev = op.Seq
			if op.Kind == OpRegister && op.Graph == nil {
				t.Fatal("register op without graph survived recovery")
			}
			if op.Kind == OpPatch && op.Patch == nil {
				t.Fatal("patch op without patch survived recovery")
			}
			return nil
		}); err != nil {
			t.Fatalf("replay failed after successful open: %v", err)
		}
		// The recovered store must keep serving.
		if _, err := st.Append(Op{Kind: OpRemove, Name: "post-recovery"}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
