package metrics

import (
	"fmt"
	"io"
	"strings"
)

// exemplar is one sampled observation with a linkage label — in this
// codebase, a trace_id tying a latency bucket to a concrete request in
// the flight recorder.
type exemplar struct {
	labelKey string
	labelVal string
	value    float64
}

// ObserveWithExemplar records the observation like Observe and
// additionally retains (labelKey=labelVal, v) as the histogram's most
// recent exemplar. Exemplars surface only on the OpenMetrics
// exposition (Accept: application/openmetrics-text); the default
// text-format rendering is byte-identical with or without them.
func (h *Histogram) ObserveWithExemplar(v float64, labelKey, labelVal string) {
	if h == nil {
		return
	}
	h.Observe(v)
	h.ex.Store(&exemplar{labelKey: labelKey, labelVal: labelVal, value: v})
}

// Exemplar returns the most recent exemplar's label value and
// observation, or ok=false when none was recorded.
func (h *Histogram) Exemplar() (labelKey, labelVal string, v float64, ok bool) {
	if h == nil {
		return "", "", 0, false
	}
	ex := h.ex.Load()
	if ex == nil {
		return "", "", 0, false
	}
	return ex.labelKey, ex.labelVal, ex.value, true
}

// WriteOpenMetrics renders the registry in the OpenMetrics 1.0 text
// format: counter families drop their "_total" suffix on HELP/TYPE
// lines (samples keep it), histogram bucket lines carry the family's
// most recent exemplar on the bucket containing its value, and the
// exposition ends with "# EOF".
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	b := &strings.Builder{}
	for _, f := range fams {
		f.writeOpenMetrics(b)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeOpenMetrics(b *strings.Builder) {
	famName := f.name
	if f.kind == kindCounter {
		famName = strings.TrimSuffix(famName, "_total")
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", famName, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", famName, f.kind)
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	for _, s := range series {
		switch {
		case s.fn != nil:
			writeSample(b, f.name, f.labelNames, s.labels, "", s.fn())
		case s.ctr != nil:
			writeSample(b, f.name, f.labelNames, s.labels, "", float64(s.ctr.Value()))
		case s.gauge != nil:
			writeSample(b, f.name, f.labelNames, s.labels, "", s.gauge.Value())
		case s.hist != nil:
			s.writeHistOpenMetrics(b, f)
		}
	}
}

// writeHistOpenMetrics renders one histogram series with its exemplar
// (if any) attached to the bucket line whose range contains the
// exemplar's value — the only placement OpenMetrics permits.
func (s *series) writeHistOpenMetrics(b *strings.Builder, f *family) {
	h := s.hist
	ex := h.ex.Load()
	exBucket := -1
	if ex != nil {
		exBucket = 0
		for exBucket < len(h.bounds) && ex.value > h.bounds[exBucket] {
			exBucket++
		}
	}
	writeBucket := func(i int, le string, cum uint64) {
		b.WriteString(f.name)
		b.WriteString("_bucket{")
		for j, ln := range f.labelNames {
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(s.labels[j]))
			b.WriteString(`",`)
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(formatFloat(float64(cum)))
		if ex != nil && i == exBucket {
			fmt.Fprintf(b, " # {%s=%q} %s", ex.labelKey, ex.labelVal, formatFloat(ex.value))
		}
		b.WriteByte('\n')
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(i, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(len(h.bounds), "+Inf", cum)
	writeSample(b, f.name+"_sum", f.labelNames, s.labels, "", h.Sum())
	writeSample(b, f.name+"_count", f.labelNames, s.labels, "", float64(cum))
}

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics exposition.
func acceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}
