package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label set,
// and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: the TYPE declaration plus every
// sample under the base name (histogram _bucket/_sum/_count samples
// are grouped under their base family).
type Family struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", or "untyped"
	Help    string
	Samples []Sample
}

// Parse reads a Prometheus text exposition and groups it into
// families. It understands exactly the subset WritePrometheus emits
// (plus untyped lines), which is enough for the round-trip test and
// the phom CLI renderers. Unknown or malformed lines are an error —
// drift in the exposition should fail loudly.
func Parse(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	// typeOf maps a sample name to its family, accounting for the
	// histogram suffixes that share the base family.
	resolve := func(sample string) *Family {
		if f, ok := fams[sample]; ok {
			return f
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample, suf)
			if base != sample {
				if f, ok := fams[base]; ok && f.Type == "histogram" {
					return f
				}
			}
		}
		return nil
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := fams[name]
			if f == nil {
				f = &Family{Name: name, Type: "untyped"}
				fams[name] = f
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("metrics: line %d: malformed TYPE line %q", lineNo, line)
			}
			f := fams[name]
			if f == nil {
				f = &Family{Name: name}
				fams[name] = f
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		f := resolve(s.Name)
		if f == nil {
			f = &Family{Name: s.Name, Type: "untyped"}
			fams[s.Name] = f
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("no value in %q", line)
		}
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parseValue(valStr[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(v, 64)
}

func parseLabels(s string, into map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		name := s[:eq]
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", s)
		}
		rest = rest[1:]
		var b strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i == len(rest) {
			return fmt.Errorf("unterminated label value in %q", s)
		}
		into[name] = b.String()
		rest = rest[i+1:]
		s = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		s = strings.TrimSpace(s)
	}
	return nil
}

// HistogramQuantile estimates quantile q (0..1) from the _bucket
// samples of one histogram series, using the same linear interpolation
// Prometheus's histogram_quantile applies. The samples must all carry
// an "le" label; other labels are ignored (callers filter to one
// series first). Returns NaN when the histogram is empty.
func HistogramQuantile(q float64, buckets []Sample) float64 {
	type bk struct {
		le    float64
		count float64
	}
	bks := make([]bk, 0, len(buckets))
	for _, s := range buckets {
		le, ok := s.Labels["le"]
		if !ok {
			continue
		}
		v, err := parseValue(le)
		if err != nil {
			continue
		}
		bks = append(bks, bk{le: v, count: s.Value})
	}
	sort.Slice(bks, func(i, j int) bool { return bks[i].le < bks[j].le })
	if len(bks) == 0 || bks[len(bks)-1].count == 0 {
		return math.NaN()
	}
	total := bks[len(bks)-1].count
	rank := q * total
	for i, b := range bks {
		if b.count >= rank {
			lower, lowerCount := 0.0, 0.0
			if i > 0 {
				lower, lowerCount = bks[i-1].le, bks[i-1].count
			}
			if math.IsInf(b.le, 1) {
				return lower // best estimate inside the +Inf bucket
			}
			inBucket := b.count - lowerCount
			if inBucket <= 0 {
				return b.le
			}
			return lower + (b.le-lower)*((rank-lowerCount)/inBucket)
		}
	}
	return bks[len(bks)-1].le
}
