package metrics

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests")
	g := r.Gauge("test_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2.5)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", got)
	}
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	cv.With("x").Inc()
	hv.With("y").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVectorsAndEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("test_http_total", "by path", "path", "code")
	cv.With("/v1/match", "200").Add(3)
	cv.With("/v1/match", "429").Inc()
	cv.With(`/weird"path`+"\n", "200").Inc()
	if cv.With("/v1/match", "200") != cv.With("/v1/match", "200") {
		t.Fatal("With must return the same child for the same labels")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `test_http_total{path="/v1/match",code="200"} 3`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	if !strings.Contains(out, `path="/weird\"path\n"`) {
		t.Errorf("label escaping broken:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ok_total", "")
	for name, fn := range map[string]func(){
		"duplicate":    func() { r.Counter("test_ok_total", "") },
		"invalid name": func() { r.Counter("bad-name", "") },
		"bad label":    func() { r.CounterVec("test_v_total", "", "bad-label") },
		"no labels":    func() { r.CounterVec("test_v2_total", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFuncCollectors(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("test_live_gauge", "live", func() float64 { return n })
	r.CounterFunc("test_live_total", "live", func() float64 { return n + 1 })
	n = 41
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "test_live_gauge 41") || !strings.Contains(b.String(), "test_live_total 42") {
		t.Fatalf("func collectors not scraped:\n%s", b.String())
	}
}

// TestParseRoundTrip is the exposition-validity gate: everything the
// writer emits must come back intact through the parser.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Add(7)
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(-1.25)
	h := r.Histogram("test_seconds", "a histogram", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(2)
	hv := r.HistogramVec("test_by_path_seconds", "labeled histogram", []float64{1}, "path")
	hv.With("/a").Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, b.String())
	}
	ct := fams["test_total"]
	if ct == nil || ct.Type != "counter" || len(ct.Samples) != 1 || ct.Samples[0].Value != 7 {
		t.Fatalf("counter family wrong: %+v", ct)
	}
	gg := fams["test_gauge"]
	if gg == nil || gg.Type != "gauge" || gg.Samples[0].Value != -1.25 {
		t.Fatalf("gauge family wrong: %+v", gg)
	}
	hh := fams["test_seconds"]
	if hh == nil || hh.Type != "histogram" {
		t.Fatalf("histogram family wrong: %+v", hh)
	}
	// 3 buckets (0.5, 1, +Inf) + sum + count = 5 samples.
	if len(hh.Samples) != 5 {
		t.Fatalf("histogram samples = %d, want 5: %+v", len(hh.Samples), hh.Samples)
	}
	var infSeen bool
	for _, s := range hh.Samples {
		if s.Labels["le"] == "+Inf" && s.Value == 2 {
			infSeen = true
		}
	}
	if !infSeen {
		t.Fatalf("+Inf bucket missing or wrong: %+v", hh.Samples)
	}
	lv := fams["test_by_path_seconds"]
	if lv == nil || lv.Type != "histogram" {
		t.Fatalf("labeled histogram missing: %+v", lv)
	}
	for _, s := range lv.Samples {
		if s.Labels["path"] != "/a" {
			t.Fatalf("labeled histogram sample lost its label: %+v", s)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_q_seconds", "", []float64{0.1, 0.2, 0.4, 0.8})
	for i := 0; i < 100; i++ {
		h.Observe(0.15) // all in the (0.1, 0.2] bucket
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	var buckets []Sample
	for _, s := range fams["test_q_seconds"].Samples {
		if _, ok := s.Labels["le"]; ok {
			buckets = append(buckets, s)
		}
	}
	p50 := HistogramQuantile(0.5, buckets)
	if p50 < 0.1 || p50 > 0.2 {
		t.Fatalf("p50 = %v, want within (0.1, 0.2]", p50)
	}
	if !math.IsNaN(HistogramQuantile(0.5, nil)) {
		t.Fatal("empty histogram must yield NaN")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "t").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	fams, err := Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if fams["test_total"] == nil {
		t.Fatal("handler did not serve the registry")
	}
}

func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "")
	h := r.Histogram("test_seconds", "", nil)
	cv := r.CounterVec("test_vec_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				cv.With("a").Inc()
				if j%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || cv.With("a").Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d v=%d", c.Value(), h.Count(), cv.With("a").Value())
	}
}

// TestVecFirstUseConcurrent hammers the *first* resolution of each
// child: every goroutine races to create the same fresh label tuple.
// The payload must be created under the family lock — a lazy nil-check
// in With would both race and lose updates here.
func TestVecFirstUseConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("first_total", "", "k")
	hv := r.HistogramVec("first_seconds", "", nil, "k")
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < rounds; j++ {
				key := fmt.Sprintf("k%d", j)
				cv.With(key).Inc()
				hv.With(key).Observe(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	for j := 0; j < rounds; j++ {
		key := fmt.Sprintf("k%d", j)
		if got := cv.With(key).Value(); got != workers {
			t.Fatalf("counter %s: lost first-use updates: got %d, want %d", key, got, workers)
		}
		if got := hv.With(key).Count(); got != workers {
			t.Fatalf("histogram %s: lost first-use updates: got %d, want %d", key, got, workers)
		}
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_b_total", "")
	r.Gauge("test_a_gauge", "")
	got := r.Names()
	if len(got) != 2 || got[0] != "test_a_gauge" || got[1] != "test_b_total" {
		t.Fatalf("Names() = %v", got)
	}
}
