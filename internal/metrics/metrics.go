// Package metrics is a dependency-free metrics library exposing the
// Prometheus text exposition format (version 0.0.4). The serving stack
// — httpapi, engine, catalog, search, store — registers its
// instruments here and phomd serves the registry on GET /metrics, so a
// standard Prometheus scraper (or `phom metrics`) can watch queue
// depth, latency distributions, cache effectiveness, and WAL fsync
// cost without any third-party client library.
//
// Three instrument kinds are provided, each in plain and labeled
// ("vector") form, plus function-backed collectors for subsystems that
// already maintain their own atomic counters:
//
//   - Counter: a monotonically increasing count (requests served,
//     records appended). Exposed with the `counter` type.
//   - Gauge: a value that goes up and down (queue depth, resident
//     bytes). Exposed with the `gauge` type.
//   - Histogram: an observation distribution over configurable
//     cumulative buckets (request latency, task wait time). Exposed as
//     `name_bucket{le="..."}` series plus `name_sum` and `name_count`.
//
// All instruments are safe for concurrent use and their hot paths are
// single atomic operations; a nil instrument is inert (every method is
// nil-receiver-safe), so a subsystem built without a registry pays
// nothing for its instrumentation points.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// nameRE is the Prometheus metric-name grammar. Deployment-specific
// policies (phomd demands the stricter ^phomd_[a-z0-9_]+$) layer on
// top; see the lint test in internal/httpapi.
var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// labelRE is the Prometheus label-name grammar.
var labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// DefBuckets are the default latency buckets in seconds: 100µs up to
// 10s, a decade denser than Prometheus's defaults at the low end
// because the matcher's hot path answers in microseconds.
var DefBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing uint64 count.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that may go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// Inc adds 1. Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into cumulative buckets. The
// upper bounds are fixed at construction; +Inf is implicit.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	// ex is the most recent exemplar (see ObserveWithExemplar); only
	// rendered on the OpenMetrics exposition path.
	ex atomic.Pointer[exemplar]
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~20) and the early buckets
	// are the hot ones for latency metrics.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// kind discriminates family exposition types.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family.
type series struct {
	labels []string // values, aligned with family.labelNames
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // function-backed counter/gauge
}

// family is one registered metric name with its type, help text, and
// every labeled series under it.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// Registry holds a set of metric families and renders them in the
// Prometheus text exposition format. Create one with NewRegistry.
// Registration methods panic on an invalid or duplicate name —
// instrument registration is program structure, not input handling.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	f := &family{
		name: name, help: help, kind: k,
		labelNames: append([]string(nil), labels...),
		buckets:    buckets,
		byKey:      make(map[string]*series),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	c := &Counter{}
	f.series = append(f.series, &series{ctr: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for subsystems that already keep their own atomic
// counters. fn must be monotonically non-decreasing and safe to call
// concurrently.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.series = append(f.series, &series{fn: fn})
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	g := &Gauge{}
	f.series = append(f.series, &series{gauge: g})
	return g
}

// GaugeFunc registers a gauge evaluated from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.series = append(f.series, &series{fn: fn})
}

// Histogram registers and returns an unlabeled histogram over the
// given cumulative bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets)
	h := newHistogram(buckets)
	f.series = append(f.series, &series{hist: h})
	return h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vector %q needs at least one label", name))
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vector %q needs at least one label", name))
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vector %q needs at least one label", name))
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, buckets)}
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns (creating on first use) the counter for the given label
// values, which must match the family's label names positionally.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).ctr
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns (creating on first use) the gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).gauge
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns (creating on first use) the histogram for the label
// values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).hist
}

// child resolves (creating once) the series for one label-value tuple.
// The payload (counter/gauge/histogram, per the family kind) is created
// here, under the family lock — not lazily by the caller, where two
// first-users could race on the nil check.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.ctr = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// Names returns every registered metric name, sorted — the hook the
// exposition-policy lint test uses.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders the registry in the text exposition format.
// Families appear in registration order; series within a family in
// creation order, which is stable across scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	b := &strings.Builder{}
	for _, f := range fams {
		f.write(b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	for _, s := range series {
		switch {
		case s.fn != nil:
			writeSample(b, f.name, f.labelNames, s.labels, "", s.fn())
		case s.ctr != nil:
			writeSample(b, f.name, f.labelNames, s.labels, "", float64(s.ctr.Value()))
		case s.gauge != nil:
			writeSample(b, f.name, f.labelNames, s.labels, "", s.gauge.Value())
		case s.hist != nil:
			h := s.hist
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				writeSample(b, f.name+"_bucket", append(f.labelNames, "le"), append(s.labels, formatFloat(bound)), "", float64(cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			writeSample(b, f.name+"_bucket", append(f.labelNames, "le"), append(s.labels, "+Inf"), "", float64(cum))
			writeSample(b, f.name+"_sum", f.labelNames, s.labels, "", h.Sum())
			writeSample(b, f.name+"_count", f.labelNames, s.labels, "", float64(cum))
		}
	}
}

func writeSample(b *strings.Builder, name string, labelNames, labelValues []string, _ string, v float64) {
	b.WriteString(name)
	if len(labelNames) > 0 {
		b.WriteByte('{')
		for i, ln := range labelNames {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ln)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labelValues[i]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the exposition — the body of
// GET /metrics. Clients that accept application/openmetrics-text get
// the OpenMetrics rendering (which carries histogram exemplars);
// everyone else gets the classic text format, unchanged.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if acceptsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
