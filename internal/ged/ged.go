// Package ged computes graph edit distance, the third structure-based
// similarity family the paper surveys (Zeng et al. [31]; "graph edit
// distance is essentially based on subgraph isomorphism", Section 2).
//
// The distance is the minimum total cost of node substitutions,
// insertions and deletions — with the induced edge insertions and
// deletions charged alongside — that turn G1 into G2. The solver is an
// A* search over partial node assignments with an admissible
// label-multiset heuristic; like every exact GED solver it is
// exponential, so an expansion budget guards against blow-up (mirroring
// the MCS baseline's deadline).
package ged

import (
	"container/heap"
	"errors"

	"graphmatch/internal/graph"
)

// ErrBudget reports that the search exceeded its expansion budget; the
// returned value is a valid lower bound on the distance.
var ErrBudget = errors.New("ged: search budget exhausted")

// Costs configures the edit operations. Zero values select unit costs.
type Costs struct {
	NodeSub float64 // relabelling a node (charged only on label mismatch)
	NodeIns float64
	NodeDel float64
	EdgeIns float64
	EdgeDel float64
}

func (c Costs) withDefaults() Costs {
	if c.NodeSub == 0 {
		c.NodeSub = 1
	}
	if c.NodeIns == 0 {
		c.NodeIns = 1
	}
	if c.NodeDel == 0 {
		c.NodeDel = 1
	}
	if c.EdgeIns == 0 {
		c.EdgeIns = 1
	}
	if c.EdgeDel == 0 {
		c.EdgeDel = 1
	}
	return c
}

// Options bounds the search.
type Options struct {
	Costs Costs
	// Budget caps A* expansions (default 200 000).
	Budget int
}

// state is a partial assignment: G1 nodes 0..len(images)-1 are handled;
// images[v] is the G2 image or -1 for deletion.
type state struct {
	images []int32
	g      float64 // cost incurred
	f      float64 // g + admissible heuristic
}

// Distance computes the exact edit distance between g1 and g2, or
// returns ErrBudget together with the best lower bound reached.
func Distance(g1, g2 *graph.Graph, opts Options) (float64, error) {
	costs := opts.Costs.withDefaults()
	budget := opts.Budget
	if budget <= 0 {
		budget = 200000
	}
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	if n1 == 0 {
		// Nothing to assign: G2 is built from scratch.
		return float64(n2)*costs.NodeIns + float64(g2.NumEdges())*costs.EdgeIns, nil
	}

	start := &state{}
	start.f = heuristic(g1, g2, start, costs)
	pq := &stateHeap{start}
	expansions := 0

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(*state)
		if len(cur.images) == n1 {
			return cur.g, nil
		}
		expansions++
		if expansions > budget {
			return cur.f, ErrBudget
		}
		// Delete the next node, or map it to any unused G2 node.
		push(pq, expand(g1, g2, cur, -1, costs))
		used := usedImages(cur)
		for u := 0; u < n2; u++ {
			if !used[u] {
				push(pq, expand(g1, g2, cur, int32(u), costs))
			}
		}
	}
	return 0, errors.New("ged: empty search space")
}

func push(pq *stateHeap, s *state) { heap.Push(pq, s) }

func usedImages(s *state) map[int]bool {
	used := make(map[int]bool, len(s.images))
	for _, img := range s.images {
		if img >= 0 {
			used[int(img)] = true
		}
	}
	return used
}

// expand advances a state by handling the next G1 node (image = -1 means
// deletion), charging the node operation plus the incremental edge
// operations against every already-handled node.
func expand(g1, g2 *graph.Graph, cur *state, image int32, costs Costs) *state {
	v := graph.NodeID(len(cur.images))
	next := &state{
		images: append(append(make([]int32, 0, len(cur.images)+1), cur.images...), image),
		g:      cur.g,
	}
	if image < 0 {
		next.g += costs.NodeDel
	} else if g1.Label(v) != g2.Label(graph.NodeID(image)) {
		next.g += costs.NodeSub
	}

	chargePair := func(a, b graph.NodeID) {
		inG1 := g1.HasEdge(a, b)
		imgA, imgB := next.images[a], next.images[b]
		inG2 := imgA >= 0 && imgB >= 0 &&
			g2.HasEdge(graph.NodeID(imgA), graph.NodeID(imgB))
		switch {
		case inG1 && !inG2:
			next.g += costs.EdgeDel
		case !inG1 && inG2:
			next.g += costs.EdgeIns
		}
	}
	for w := graph.NodeID(0); w < v; w++ {
		chargePair(v, w)
		chargePair(w, v)
	}
	chargePair(v, v) // self-loop agreement

	// On completion, unused G2 nodes and every edge touching them are
	// insertions. (Edges between used images were charged pairwise.)
	if len(next.images) == g1.NumNodes() {
		used := usedImages(next)
		for u := 0; u < g2.NumNodes(); u++ {
			if !used[u] {
				next.g += costs.NodeIns
			}
		}
		g2.Edges(func(from, to graph.NodeID) bool {
			if !used[int(from)] || !used[int(to)] {
				next.g += costs.EdgeIns
			}
			return true
		})
	}
	next.f = next.g + heuristic(g1, g2, next, costs)
	return next
}

// heuristic lower-bounds the remaining cost by label-multiset matching of
// the unhandled G1 nodes against the unused G2 nodes: every unmatchable
// remaining node costs at least the cheapest node operation, and every
// surplus G2 node costs an insertion. Edge costs are ignored, keeping the
// bound admissible.
func heuristic(g1, g2 *graph.Graph, s *state, costs Costs) float64 {
	remaining := map[string]int{}
	remTotal := 0
	for v := len(s.images); v < g1.NumNodes(); v++ {
		remaining[g1.Label(graph.NodeID(v))]++
		remTotal++
	}
	used := usedImages(s)
	available := map[string]int{}
	availTotal := 0
	for u := 0; u < g2.NumNodes(); u++ {
		if !used[u] {
			available[g2.Label(graph.NodeID(u))]++
			availTotal++
		}
	}
	matched := 0
	for label, cnt := range remaining {
		if a := available[label]; a < cnt {
			matched += a
		} else {
			matched += cnt
		}
	}
	minOp := costs.NodeSub
	if costs.NodeDel < minOp {
		minOp = costs.NodeDel
	}
	h := float64(remTotal-matched) * minOp
	if surplus := availTotal - remTotal; surplus > 0 {
		h += float64(surplus) * costs.NodeIns
	}
	return h
}

type stateHeap []*state

func (h stateHeap) Len() int           { return len(h) }
func (h stateHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h stateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x any)        { *h = append(*h, x.(*state)) }
func (h *stateHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Similarity converts a distance into a [0, 1] score by normalising with
// the cost of deleting G1 entirely and building G2 from scratch.
func Similarity(g1, g2 *graph.Graph, opts Options) (float64, error) {
	d, err := Distance(g1, g2, opts)
	if err != nil {
		return 0, err
	}
	costs := opts.Costs.withDefaults()
	worst := float64(g1.NumNodes())*costs.NodeDel + float64(g2.NumNodes())*costs.NodeIns +
		float64(g1.NumEdges())*costs.EdgeDel + float64(g2.NumEdges())*costs.EdgeIns
	if worst == 0 {
		return 1, nil
	}
	s := 1 - d/worst
	if s < 0 {
		s = 0
	}
	return s, nil
}
