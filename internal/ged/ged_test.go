package ged

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
)

func dist(t *testing.T, g1, g2 *graph.Graph) float64 {
	t.Helper()
	d, err := Distance(g1, g2, Options{})
	if err != nil {
		t.Fatalf("Distance: %v", err)
	}
	return d
}

func TestIdenticalGraphsZero(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	if d := dist(t, g, g); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestSingleRelabel(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"a", "x"}, [][2]int{{0, 1}})
	if d := dist(t, g1, g2); d != 1 {
		t.Fatalf("relabel distance = %v, want 1", d)
	}
}

func TestSingleEdgeEdit(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"a", "b"}, nil)
	if d := dist(t, g1, g2); d != 1 {
		t.Fatalf("edge deletion distance = %v, want 1", d)
	}
	// Reverse direction: insertion.
	if d := dist(t, g2, g1); d != 1 {
		t.Fatalf("edge insertion distance = %v, want 1", d)
	}
}

func TestNodeInsertion(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a"}, nil)
	g2 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	// Insert node b (1) and edge (1): distance 2.
	if d := dist(t, g1, g2); d != 2 {
		t.Fatalf("distance = %v, want 2", d)
	}
}

func TestEmptyGraphs(t *testing.T) {
	e := graph.New(0)
	if d := dist(t, e, e); d != 0 {
		t.Fatalf("empty distance = %v", d)
	}
	g := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	if d := dist(t, e, g); d != 3 { // 2 node ins + 1 edge ins
		t.Fatalf("empty→g distance = %v, want 3", d)
	}
	if d := dist(t, g, e); d != 3 { // 2 node del + 1 edge del
		t.Fatalf("g→empty distance = %v, want 3", d)
	}
}

func TestSelfLoopAgreement(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a"}, [][2]int{{0, 0}})
	g2 := graph.FromEdgeList([]string{"a"}, nil)
	if d := dist(t, g1, g2); d != 1 {
		t.Fatalf("self-loop removal distance = %v, want 1", d)
	}
}

func TestSymmetryProperty(t *testing.T) {
	// With symmetric costs, GED is symmetric.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := []string{"a", "b"}
		mk := func(n int) *graph.Graph {
			g := graph.New(n)
			for i := 0; i < n; i++ {
				g.AddNode(labels[rng.Intn(2)])
			}
			for i := 0; i < n; i++ {
				g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
			}
			g.Finish()
			return g
		}
		g1, g2 := mk(3+rng.Intn(3)), mk(3+rng.Intn(3))
		d12, err1 := Distance(g1, g2, Options{})
		d21, err2 := Distance(g2, g1, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return d12 == d21
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalitySpot(t *testing.T) {
	a := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	b := graph.FromEdgeList([]string{"a", "x"}, [][2]int{{0, 1}})
	c := graph.FromEdgeList([]string{"y", "x"}, [][2]int{{0, 1}})
	dab, dbc, dac := dist(t, a, b), dist(t, b, c), dist(t, a, c)
	if dac > dab+dbc {
		t.Fatalf("triangle inequality violated: %v > %v + %v", dac, dab, dbc)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func() *graph.Graph {
		g := graph.New(12)
		for i := 0; i < 12; i++ {
			g.AddNode("same")
		}
		for i := 0; i < 30; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(12)), graph.NodeID(rng.Intn(12)))
		}
		g.Finish()
		return g
	}
	_, err := Distance(mk(), mk(), Options{Budget: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestSimilarityRange(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	s, err := Similarity(g1, g2, Options{})
	if err != nil || s != 1 {
		t.Fatalf("self similarity = %v (%v), want 1", s, err)
	}
	g3 := graph.FromEdgeList([]string{"x", "y"}, nil)
	s2, err := Similarity(g1, g3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2 >= s || s2 < 0 {
		t.Fatalf("dissimilar graphs score %v, want in [0, 1)", s2)
	}
	e := graph.New(0)
	se, err := Similarity(e, e, Options{})
	if err != nil || se != 1 {
		t.Fatalf("empty similarity = %v (%v), want 1", se, err)
	}
}

func TestDistanceLowerBoundOnBudget(t *testing.T) {
	// The value returned with ErrBudget must not exceed the true
	// distance.
	g1 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	g2 := graph.FromEdgeList([]string{"a", "b", "x"}, [][2]int{{0, 1}})
	exact := dist(t, g1, g2)
	bound, err := Distance(g1, g2, Options{Budget: 1})
	if !errors.Is(err, ErrBudget) {
		t.Skip("search finished within one expansion")
	}
	if bound > exact {
		t.Fatalf("budget bound %v exceeds exact %v", bound, exact)
	}
}
