// Package simmatrix provides the node-similarity matrix mat() of
// Section 3.1: for every node pair (v, u) ∈ V1 × V2, mat(v, u) ∈ [0, 1]
// says how close the two nodes are, and a similarity threshold ξ gates
// which pairs are admissible matches (v may map to u only if
// mat(v, u) ≥ ξ).
//
// The paper leaves the origin of mat() open — shingle-based textual
// similarity, vertex-similarity matrices, or plain label equality — so the
// package defines a small Matrix interface with several implementations:
//
//   - Dense: an explicit |V1|×|V2| float matrix.
//   - Sparse: a map-backed matrix for the common case where most pairs
//     score zero (e.g. the worked examples and reduction constructions).
//   - LabelEquality: mat(v, u) = 1 iff L1(v) = L2(u) (the convention used
//     in Fig. 2's examples and the conventional-notion comparisons).
//   - Grouped: labels are partitioned into groups; cross-group pairs score
//     0 and in-group pairs carry a per-pair score (the synthetic-data
//     convention of Section 6).
//   - FromContent: shingle resemblance of node contents (the Web-graph
//     convention of Section 6).
package simmatrix

import (
	"graphmatch/internal/graph"
	"graphmatch/internal/shingle"
)

// Matrix scores the similarity of node v of G1 against node u of G2.
// Implementations must return values in [0, 1] and be safe for concurrent
// readers once built.
type Matrix interface {
	Score(v, u graph.NodeID) float64
}

// Dense is an explicit matrix over dense node IDs.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols zero matrix (rows index V1, cols V2).
func NewDense(rows, cols int) *Dense {
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Set assigns mat(v, u) = s.
func (d *Dense) Set(v, u graph.NodeID, s float64) {
	d.data[int(v)*d.cols+int(u)] = s
}

// Score reports mat(v, u).
func (d *Dense) Score(v, u graph.NodeID) float64 {
	return d.data[int(v)*d.cols+int(u)]
}

// Rows reports |V1|.
func (d *Dense) Rows() int { return d.rows }

// Cols reports |V2|.
func (d *Dense) Cols() int { return d.cols }

// Sparse is a map-backed matrix: absent pairs score 0.
type Sparse struct {
	scores map[[2]graph.NodeID]float64
}

// NewSparse returns an empty sparse matrix.
func NewSparse() *Sparse {
	return &Sparse{scores: make(map[[2]graph.NodeID]float64)}
}

// Set assigns mat(v, u) = s.
func (sp *Sparse) Set(v, u graph.NodeID, s float64) {
	sp.scores[[2]graph.NodeID{v, u}] = s
}

// Score reports mat(v, u), zero when unset.
func (sp *Sparse) Score(v, u graph.NodeID) float64 {
	return sp.scores[[2]graph.NodeID{v, u}]
}

// Len reports the number of explicitly set pairs.
func (sp *Sparse) Len() int { return len(sp.scores) }

// LabelEquality scores 1 for equal labels and 0 otherwise — the similarity
// convention of the paper's Fig. 2 walkthrough ("mat(v, u) = 1 if u and v
// have the same label").
type LabelEquality struct {
	g1, g2 *graph.Graph
}

// NewLabelEquality builds a label-equality matrix over the two graphs.
func NewLabelEquality(g1, g2 *graph.Graph) *LabelEquality {
	return &LabelEquality{g1: g1, g2: g2}
}

// Score reports 1 iff the labels coincide.
func (le *LabelEquality) Score(v, u graph.NodeID) float64 {
	if le.g1.Label(v) == le.g2.Label(u) {
		return 1
	}
	return 0
}

// Grouped implements the synthetic-data convention of Section 6: the label
// alphabet is partitioned into groups; labels in different groups are
// "totally different" (score 0) and labels in the same group carry a
// pairwise score assigned at generation time.
type Grouped struct {
	g1, g2 *graph.Graph
	group  map[string]int
	score  map[[2]string]float64
}

// NewGrouped builds a grouped matrix. group maps each label to its group
// index; score carries the in-group pairwise similarities keyed by
// [labelOfV, labelOfU]. Identical labels always score 1 even if absent
// from score.
func NewGrouped(g1, g2 *graph.Graph, group map[string]int, score map[[2]string]float64) *Grouped {
	return &Grouped{g1: g1, g2: g2, group: group, score: score}
}

// Score reports the configured in-group similarity.
func (gr *Grouped) Score(v, u graph.NodeID) float64 {
	lv, lu := gr.g1.Label(v), gr.g2.Label(u)
	if lv == lu {
		return 1
	}
	gv, okv := gr.group[lv]
	gu, oku := gr.group[lu]
	if !okv || !oku || gv != gu {
		return 0
	}
	return gr.score[[2]string{lv, lu}]
}

// FromContent precomputes a Dense matrix from shingle resemblance of node
// contents, falling back to label text when a node has no content. This is
// how Web-graph similarity is derived in Section 6 ("the similarity between
// two nodes was measured by the textual similarity of their contents based
// on shingles").
func FromContent(g1, g2 *graph.Graph, shingleSize int) *Dense {
	return FromContentSets(g1, ContentSets(g2, shingleSize), shingleSize)
}

// ContentSets precomputes the shingle set of every node of g (content,
// falling back to the label), indexed by NodeID. The serving catalog
// caches this per registered data graph so content similarity does not
// re-shingle the data side on every request.
func ContentSets(g *graph.Graph, shingleSize int) []shingle.Set {
	sh := shingle.NewShingler(shingleSize)
	sets := make([]shingle.Set, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		sets[v] = sh.Shingle(contentText(g, graph.NodeID(v)))
	}
	return sets
}

// FromContentSets builds the content-similarity matrix of g1 against
// precomputed data-side shingle sets (see ContentSets). shingleSize
// must match the one the sets were built with.
func FromContentSets(g1 *graph.Graph, sets2 []shingle.Set, shingleSize int) *Dense {
	sh := shingle.NewShingler(shingleSize)
	d := NewDense(g1.NumNodes(), len(sets2))
	for v := 0; v < g1.NumNodes(); v++ {
		set1 := sh.Shingle(contentText(g1, graph.NodeID(v)))
		for u := range sets2 {
			if s := shingle.Resemblance(set1, sets2[u]); s > 0 {
				d.Set(graph.NodeID(v), graph.NodeID(u), s)
			}
		}
	}
	return d
}

// ContentSet returns the shingle set of one node's content text
// (content falling back to label) — the per-node unit ContentSets
// aggregates, exposed so incremental maintenance of derived state (the
// search index under graph patches) re-shingles exactly the changed
// nodes with the same rule.
func ContentSet(g *graph.Graph, v graph.NodeID, shingleSize int) shingle.Set {
	return shingle.NewShingler(shingleSize).Shingle(contentText(g, v))
}

func contentText(g *graph.Graph, v graph.NodeID) string {
	if c := g.Content(v); c != "" {
		return c
	}
	return g.Label(v)
}

// Candidates lists, for every node v of g1, the nodes u of g2 with
// mat(v, u) ≥ ξ — the initial H[v].good sets of Fig. 3 (line 4). The
// result is indexed by v.
func Candidates(g1, g2 *graph.Graph, mat Matrix, xi float64) [][]graph.NodeID {
	out := make([][]graph.NodeID, g1.NumNodes())
	for v := 0; v < g1.NumNodes(); v++ {
		var cs []graph.NodeID
		for u := 0; u < g2.NumNodes(); u++ {
			if mat.Score(graph.NodeID(v), graph.NodeID(u)) >= xi {
				cs = append(cs, graph.NodeID(u))
			}
		}
		out[v] = cs
	}
	return out
}

// Constant scores every pair with the same value; useful in tests and for
// degenerate configurations.
type Constant float64

// Score reports the constant.
func (c Constant) Score(v, u graph.NodeID) float64 { return float64(c) }
