package simmatrix

import (
	"testing"

	"graphmatch/internal/graph"
)

func TestDense(t *testing.T) {
	d := NewDense(2, 3)
	if d.Rows() != 2 || d.Cols() != 3 {
		t.Fatalf("dims = %d×%d", d.Rows(), d.Cols())
	}
	d.Set(1, 2, 0.8)
	if got := d.Score(1, 2); got != 0.8 {
		t.Fatalf("Score = %v, want 0.8", got)
	}
	if got := d.Score(0, 0); got != 0 {
		t.Fatalf("unset Score = %v, want 0", got)
	}
}

func TestSparse(t *testing.T) {
	sp := NewSparse()
	sp.Set(3, 4, 0.6)
	if got := sp.Score(3, 4); got != 0.6 {
		t.Fatalf("Score = %v, want 0.6", got)
	}
	if got := sp.Score(4, 3); got != 0 {
		t.Fatalf("transposed Score = %v, want 0", got)
	}
	if sp.Len() != 1 {
		t.Fatalf("Len = %d, want 1", sp.Len())
	}
}

func TestLabelEquality(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"A", "B"}, nil)
	g2 := graph.FromEdgeList([]string{"B", "A"}, nil)
	le := NewLabelEquality(g1, g2)
	if le.Score(0, 1) != 1 {
		t.Error("A vs A should score 1")
	}
	if le.Score(0, 0) != 0 {
		t.Error("A vs B should score 0")
	}
}

func TestGrouped(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"l0", "l1"}, nil)
	g2 := graph.FromEdgeList([]string{"l2", "l3"}, nil)
	group := map[string]int{"l0": 0, "l1": 1, "l2": 0, "l3": 1}
	score := map[[2]string]float64{
		{"l0", "l2"}: 0.9,
	}
	gr := NewGrouped(g1, g2, group, score)
	if got := gr.Score(0, 0); got != 0.9 {
		t.Errorf("in-group Score = %v, want 0.9", got)
	}
	if got := gr.Score(0, 1); got != 0 {
		t.Errorf("cross-group Score = %v, want 0", got)
	}
	if got := gr.Score(1, 0); got != 0 {
		t.Errorf("cross-group Score = %v, want 0", got)
	}
	// Unlisted in-group pair scores zero.
	if got := gr.Score(1, 1); got != 0 {
		t.Errorf("unlisted in-group Score = %v, want 0", got)
	}
}

func TestGroupedIdenticalLabels(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g2 := graph.FromEdgeList([]string{"x"}, nil)
	gr := NewGrouped(g1, g2, map[string]int{"x": 0}, nil)
	if gr.Score(0, 0) != 1 {
		t.Error("identical labels should score 1 even without explicit entry")
	}
}

func TestFromContent(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"p"}, nil)
	g1.SetContent(0, "science fiction books for young readers")
	g2 := graph.FromEdgeList([]string{"q", "r"}, nil)
	g2.SetContent(0, "science fiction books for young readers")
	g2.SetContent(1, "totally unrelated gardening supplies catalogue")
	d := FromContent(g1, g2, 3)
	if got := d.Score(0, 0); got != 1 {
		t.Errorf("identical content Score = %v, want 1", got)
	}
	if got := d.Score(0, 1); got != 0 {
		t.Errorf("unrelated content Score = %v, want 0", got)
	}
}

func TestFromContentFallsBackToLabel(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"books about history"}, nil)
	g2 := graph.FromEdgeList([]string{"books about history"}, nil)
	d := FromContent(g1, g2, 2)
	if d.Score(0, 0) != 1 {
		t.Error("label fallback should make identical labels score 1")
	}
}

func TestCandidates(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a", "b"}, nil)
	g2 := graph.FromEdgeList([]string{"x", "y", "z"}, nil)
	d := NewDense(2, 3)
	d.Set(0, 0, 0.9)
	d.Set(0, 1, 0.5)
	d.Set(1, 2, 0.75)
	cands := Candidates(g1, g2, d, 0.75)
	if len(cands[0]) != 1 || cands[0][0] != 0 {
		t.Errorf("cands[0] = %v, want [0]", cands[0])
	}
	if len(cands[1]) != 1 || cands[1][0] != 2 {
		t.Errorf("cands[1] = %v, want [2]", cands[1])
	}
	// Threshold is inclusive.
	cands = Candidates(g1, g2, d, 0.5)
	if len(cands[0]) != 2 {
		t.Errorf("cands[0] at ξ=0.5 = %v, want two entries", cands[0])
	}
}

func TestConstant(t *testing.T) {
	c := Constant(0.42)
	if c.Score(1, 2) != 0.42 {
		t.Error("Constant should score its value")
	}
}
