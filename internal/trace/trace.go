// Package trace is a dependency-free span layer: W3C traceparent
// propagation, monotonic-clock spans with typed attributes, per-trace
// span trees, and a ring-buffer flight recorder of recent and slow
// traces (recorder.go).
//
// The zero Span is inert: every method is a no-op and Active reports
// false, mirroring the nil-receiver idiom of internal/metrics. Layers
// therefore instrument unconditionally and pay one context lookup per
// request when tracing is off.
package trace

import (
	"context"
	"sync"
	"time"
)

// maxSpansPerTrace bounds a single trace's span tree. Spans started
// past the cap are counted as dropped and return an inert handle.
const maxSpansPerTrace = 512

// maxAttrsPerSpan bounds attributes on one span; excess sets are
// silently ignored.
const maxAttrsPerSpan = 32

// Attr is a typed span attribute.
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
	Bool  bool
}

// AttrKind discriminates the Attr union.
type AttrKind uint8

const (
	AttrStr AttrKind = iota
	AttrInt
	AttrFloat
	AttrBool
)

// Value returns the attribute's dynamic value.
func (a Attr) Value() any {
	switch a.Kind {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Float
	case AttrBool:
		return a.Bool
	default:
		return a.Str
	}
}

// SpanData is one completed (or force-closed) span in a trace
// snapshot. Start and End are offsets from the trace start; End < 0
// means the span was still open when the snapshot was taken.
type SpanData struct {
	ID     uint64
	Parent uint64 // 0 for the root span
	Name   string
	Start  time.Duration
	End    time.Duration
	Attrs  []Attr
}

// Duration returns the span's length, or 0 if it is still open.
func (s SpanData) Duration() time.Duration {
	if s.End < 0 {
		return 0
	}
	return s.End - s.Start
}

// TraceData is an immutable snapshot of a trace's span tree.
type TraceData struct {
	ID        TraceID
	Name      string // root operation, e.g. "POST /v1/match"
	RequestID string
	Start     time.Time
	Duration  time.Duration // 0 while the trace is live
	Remote    bool          // true when re-parented under a remote traceparent
	Parent    uint64        // remote parent span id (0 if local root)
	Dropped   int           // spans not recorded due to the per-trace cap
	Spans     []SpanData    // span 1 is the root; IDs are sequential
}

// live is the mutable state behind a trace's Span handles.
type live struct {
	rec       *Recorder
	id        TraceID
	name      string
	requestID string
	remote    bool
	parent    uint64
	start     time.Time

	mu      sync.Mutex
	spans   []SpanData
	next    uint64
	dropped int
	done    bool
}

// Span is a lightweight handle to one node of a live trace's span
// tree. The zero value is inert.
type Span struct {
	tr *live
	id uint64
}

// Active reports whether the handle refers to a recorded span.
func (s Span) Active() bool { return s.tr != nil }

// TraceID returns the trace id, or the zero id for an inert span.
func (s Span) TraceID() TraceID {
	if s.tr == nil {
		return TraceID{}
	}
	return s.tr.id
}

// Traceparent renders a W3C traceparent header identifying this span
// as the parent, or "" for an inert span.
func (s Span) Traceparent() string {
	if s.tr == nil {
		return ""
	}
	return FormatTraceparent(s.tr.id, s.id)
}

// Child starts a new span under s. Returns an inert handle when s is
// inert, the trace is complete, or the span cap is hit.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.startSpan(s.id, name, time.Since(s.tr.start), -1)
}

// ChildSpanning records an already-completed child covering
// [start, end], e.g. a queue wait measured with timestamps taken
// before tracing was consulted.
func (s Span) ChildSpanning(name string, start, end time.Time) Span {
	if s.tr == nil {
		return Span{}
	}
	so := start.Sub(s.tr.start)
	eo := end.Sub(s.tr.start)
	if so < 0 {
		so = 0
	}
	if eo < so {
		eo = so
	}
	return s.tr.startSpan(s.id, name, so, eo)
}

func (t *live) startSpan(parent uint64, name string, start, end time.Duration) Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done || len(t.spans) >= maxSpansPerTrace {
		t.dropped++
		return Span{}
	}
	t.next++
	id := t.next
	t.spans = append(t.spans, SpanData{ID: id, Parent: parent, Name: name, Start: start, End: end})
	return Span{tr: t, id: id}
}

// span returns a pointer to the span's slot; IDs are assigned
// sequentially so the slot index is id-1.
func (t *live) span(id uint64) *SpanData {
	return &t.spans[id-1]
}

func (s Span) setAttr(a Attr) {
	if s.tr == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	sd := t.span(s.id)
	if len(sd.Attrs) >= maxAttrsPerSpan {
		return
	}
	sd.Attrs = append(sd.Attrs, a)
}

// SetStr sets a string attribute.
func (s Span) SetStr(key, v string) { s.setAttr(Attr{Key: key, Kind: AttrStr, Str: v}) }

// SetInt sets an integer attribute.
func (s Span) SetInt(key string, v int64) { s.setAttr(Attr{Key: key, Kind: AttrInt, Int: v}) }

// SetFloat sets a float attribute.
func (s Span) SetFloat(key string, v float64) { s.setAttr(Attr{Key: key, Kind: AttrFloat, Float: v}) }

// SetBool sets a boolean attribute.
func (s Span) SetBool(key string, v bool) { s.setAttr(Attr{Key: key, Kind: AttrBool, Bool: v}) }

// End completes the span. Ending the root span completes the whole
// trace: still-open spans are force-closed with an unfinished marker
// (they mark the cancellation point on deadlined requests) and the
// snapshot is handed to the recorder.
func (s Span) End() { s.endAt(-1) }

// EndAfter completes the span at exactly d past its start, letting
// the caller reuse a duration measured with its own single clock read
// so the trace, access log, and histograms all agree.
func (s Span) EndAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.endAt(d)
}

func (s Span) endAt(after time.Duration) {
	if s.tr == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	sd := t.span(s.id)
	if sd.End < 0 {
		if after >= 0 {
			sd.End = sd.Start + after
		} else {
			sd.End = time.Since(t.start)
		}
	}
	if s.id != 1 {
		t.mu.Unlock()
		return
	}
	// Root ended: force-close open children and seal the trace.
	end := sd.End
	for i := range t.spans {
		if t.spans[i].End < 0 {
			t.spans[i].End = end
			if len(t.spans[i].Attrs) < maxAttrsPerSpan {
				t.spans[i].Attrs = append(t.spans[i].Attrs, Attr{Key: "unfinished", Kind: AttrBool, Bool: true})
			}
		}
	}
	t.done = true
	td := t.snapshotLocked()
	rec := t.rec
	t.mu.Unlock()
	if rec != nil {
		rec.complete(td)
	}
}

func (t *live) snapshotLocked() TraceData {
	spans := make([]SpanData, len(t.spans))
	copy(spans, t.spans)
	for i := range spans {
		if n := len(t.spans[i].Attrs); n > 0 {
			spans[i].Attrs = make([]Attr, n)
			copy(spans[i].Attrs, t.spans[i].Attrs)
		}
	}
	var dur time.Duration
	if t.done && len(spans) > 0 {
		dur = spans[0].End
	}
	return TraceData{
		ID:        t.id,
		Name:      t.name,
		RequestID: t.requestID,
		Start:     t.start,
		Duration:  dur,
		Remote:    t.remote,
		Parent:    t.parent,
		Dropped:   t.dropped,
		Spans:     spans,
	}
}

// Snapshot returns a point-in-time copy of the span tree, usable
// while the trace is still live (spans not yet ended have End < 0).
func (s Span) Snapshot() (TraceData, bool) {
	if s.tr == nil {
		return TraceData{}, false
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.snapshotLocked(), true
}

type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the current span, or an inert Span.
func SpanFromContext(ctx context.Context) Span {
	if sp, ok := ctx.Value(ctxKey{}).(Span); ok {
		return sp
	}
	return Span{}
}

// Stage is one entry of a deterministic per-query EXPLAIN breakdown.
type Stage struct {
	Name       string         `json:"stage"`
	StartUS    int64          `json:"start_us"`
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// explainStage reports whether a span belongs in the EXPLAIN stage
// set. The allowlist holds exactly the spans that are emitted
// unconditionally for a given query shape; conditional work (closure
// builds, index builds, WAL appends) stays visible in /debug/traces
// but is excluded here so the same query always yields the same stage
// structure, with variability expressed as attributes (e.g.
// closure_cache_hit) on the always-present spans.
func explainStage(name string) bool {
	switch name {
	case "engine.match", "engine.queue", "engine.search",
		"search.stage1", "search.stage2", "catalog.resolve":
		return true
	}
	return len(name) > 5 && name[:5] == "core."
}

// Stages derives the EXPLAIN breakdown from a trace snapshot: the
// allowlisted spans in span-id order (assignment order, deterministic
// for a fixed query), with attributes flattened to a map. The root
// and any still-open spans are excluded.
func (td TraceData) Stages() []Stage {
	var out []Stage
	for _, sd := range td.Spans {
		if sd.ID == 1 || sd.End < 0 || !explainStage(sd.Name) {
			continue
		}
		st := Stage{
			Name:       sd.Name,
			StartUS:    sd.Start.Microseconds(),
			DurationUS: sd.Duration().Microseconds(),
		}
		if len(sd.Attrs) > 0 {
			st.Attrs = make(map[string]any, len(sd.Attrs))
			for _, a := range sd.Attrs {
				st.Attrs[a.Key] = a.Value()
			}
		}
		out = append(out, st)
	}
	return out
}
