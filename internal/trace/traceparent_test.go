package trace

import (
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	id, span, ok := ParseTraceparent(h)
	if !ok {
		t.Fatal("valid header rejected")
	}
	if id.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s", id)
	}
	if span != 0x00f067aa0ba902b7 {
		t.Fatalf("span = %x", span)
	}
	if got := FormatTraceparent(id, span); got != h {
		t.Fatalf("round trip = %q, want %q", got, h)
	}

	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       // missing flags
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // wrong version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",    // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",    // non-hex flags
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-ex", // trailing
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted invalid header %q", h)
		}
	}
}

func TestDeriveTraceID(t *testing.T) {
	// 32-hex request ids become the trace id directly.
	id := DeriveTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if id.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("32-hex derive = %s", id)
	}
	// 16-hex ids (the format newRequestID emits) fill the low bytes.
	id = DeriveTraceID("00f067aa0ba902b7")
	if id.String() != "000000000000000000f067aa0ba902b7" {
		t.Fatalf("16-hex derive = %s", id)
	}
	// Anything else hashes deterministically and is non-zero.
	a := DeriveTraceID("my-custom-id")
	b := DeriveTraceID("my-custom-id")
	if a != b || a.IsZero() {
		t.Fatalf("hash derive unstable or zero: %s vs %s", a, b)
	}
	if DeriveTraceID("other") == a {
		t.Fatal("distinct inputs collided")
	}
	if DeriveTraceID("").IsZero() {
		t.Fatal("empty input produced zero id")
	}
}

func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("")
	f.Add("00-zz-yy-01")
	f.Add(strings.Repeat("0", 55))
	f.Fuzz(func(t *testing.T, h string) {
		id, span, ok := ParseTraceparent(h)
		if !ok {
			return
		}
		// Anything accepted must round-trip through Format/Parse
		// exactly (modulo flags, which Format pins to 01).
		out := FormatTraceparent(id, span)
		id2, span2, ok2 := ParseTraceparent(out)
		if !ok2 || id2 != id || span2 != span {
			t.Fatalf("round trip failed: %q -> (%s, %x) -> %q -> (%s, %x, %v)",
				h, id, span, out, id2, span2, ok2)
		}
		// Parsing is case-insensitive; formatting emits lowercase.
		if !strings.EqualFold(out[:53], h[:53]) {
			t.Fatalf("reformatted header diverged: %q vs %q", out, h)
		}
	})
}
