package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func testID(n byte) TraceID {
	var id TraceID
	id[15] = n
	if n == 0 {
		id[14] = 1
	}
	return id
}

// checkWellFormed validates the structural invariants of a snapshot:
// sequential ids, parents precede children, offsets ordered and inside
// the root, exactly one root.
func checkWellFormed(t *testing.T, td TraceData) {
	t.Helper()
	if len(td.Spans) == 0 {
		t.Fatalf("trace %s has no spans", td.ID)
	}
	root := td.Spans[0]
	if root.ID != 1 || root.Parent != 0 {
		t.Fatalf("span 0 is not the root: %+v", root)
	}
	for i, sd := range td.Spans {
		if sd.ID != uint64(i+1) {
			t.Fatalf("span ids not sequential: index %d has id %d", i, sd.ID)
		}
		if sd.ID != 1 && (sd.Parent == 0 || sd.Parent >= sd.ID) {
			t.Fatalf("span %d (%s) has invalid parent %d", sd.ID, sd.Name, sd.Parent)
		}
		if sd.End < 0 {
			t.Fatalf("span %d (%s) left open in completed trace", sd.ID, sd.Name)
		}
		if sd.End < sd.Start || sd.Start < 0 {
			t.Fatalf("span %d (%s) has bad offsets [%v, %v]", sd.ID, sd.Name, sd.Start, sd.End)
		}
		if sd.End > root.End {
			t.Fatalf("span %d (%s) ends after root: %v > %v", sd.ID, sd.Name, sd.End, root.End)
		}
	}
}

func TestSpanTreeWellFormed(t *testing.T) {
	rec := NewRecorder(8, time.Hour)
	root := rec.StartTrace(testID(1), "POST /v1/match", "req-1")
	if !root.Active() {
		t.Fatal("root not active")
	}
	a := root.Child("engine.match")
	a.SetStr("algo", "maxcard")
	b := a.Child("catalog.resolve")
	b.SetBool("closure_cache_hit", true)
	b.End()
	c := a.Child("core.maxcard")
	c.SetInt("initial_pairs", 42)
	c.End()
	a.End()
	root.End()

	td, ok := rec.Get(testID(1).String())
	if !ok {
		t.Fatal("trace not found by id")
	}
	checkWellFormed(t, td)
	if td.Spans[1].Parent != 1 || td.Spans[2].Parent != 2 || td.Spans[3].Parent != 2 {
		t.Fatalf("unexpected parents: %+v", td.Spans)
	}
	if td.Name != "POST /v1/match" || td.RequestID != "req-1" {
		t.Fatalf("trace identity wrong: %+v", td)
	}
	if got := td.Spans[2].Attrs[0].Value(); got != true {
		t.Fatalf("bool attr = %v", got)
	}
}

func TestLookupByRequestID(t *testing.T) {
	rec := NewRecorder(8, time.Hour)
	sp := rec.StartTrace(testID(7), "GET /x", "req-abc")
	sp.End()
	if _, ok := rec.Get("req-abc"); !ok {
		t.Fatal("lookup by request id failed")
	}
	if _, ok := rec.Get("req-missing"); ok {
		t.Fatal("lookup of unknown key succeeded")
	}
	// Newest trace wins for a reused request id.
	sp2 := rec.StartTrace(testID(8), "GET /y", "req-abc")
	time.Sleep(time.Millisecond)
	sp2.End()
	td, ok := rec.Get("req-abc")
	if !ok || td.ID != testID(8) {
		t.Fatalf("expected newest trace for reused request id, got %v ok=%v", td.ID, ok)
	}
}

func TestUnfinishedSpansClosedAtCompletion(t *testing.T) {
	rec := NewRecorder(8, time.Hour)
	root := rec.StartTrace(testID(2), "POST /v1/match", "r")
	child := root.Child("engine.match")
	_ = child // never ended: simulates a deadline abort
	root.End()
	td, _ := rec.Get(testID(2).String())
	checkWellFormed(t, td)
	sd := td.Spans[1]
	found := false
	for _, a := range sd.Attrs {
		if a.Key == "unfinished" && a.Kind == AttrBool && a.Bool {
			found = true
		}
	}
	if !found {
		t.Fatalf("force-closed span missing unfinished marker: %+v", sd)
	}
	// Operations on a sealed trace are inert.
	child.SetStr("late", "x")
	child.End()
	if got := child.Child("nope"); got.Active() {
		t.Fatal("child of sealed trace should be inert")
	}
}

func TestRecorderEviction(t *testing.T) {
	rec := NewRecorder(4, time.Hour)
	for i := 0; i < 10; i++ {
		sp := rec.StartTrace(testID(byte(i+1)), "op", fmt.Sprintf("req-%d", i))
		sp.End()
	}
	snap := rec.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot size = %d, want ring capacity 4", len(snap))
	}
	// Newest first: traces 10, 9, 8, 7.
	for i, td := range snap {
		if want := testID(byte(10 - i)); td.ID != want {
			t.Fatalf("snapshot[%d].ID = %v, want %v", i, td.ID, want)
		}
	}
	if _, ok := rec.Get(testID(1).String()); ok {
		t.Fatal("evicted trace still findable")
	}
	st := rec.Stats()
	if st.Completed != 10 || st.Slow != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSlowRetention(t *testing.T) {
	rec := NewRecorder(4, 10*time.Millisecond)
	slow := rec.StartTraceAt(testID(100), "slow-op", "req-slow", time.Now().Add(-50*time.Millisecond))
	slow.End()
	if td, ok := rec.Get(testID(100).String()); !ok || td.Duration < 10*time.Millisecond {
		t.Fatalf("slow trace not recorded: ok=%v dur=%v", ok, td.Duration)
	}
	// Flood the recent ring with fast traces.
	for i := 0; i < 16; i++ {
		sp := rec.StartTrace(testID(byte(i+1)), "fast-op", "req-fast")
		sp.End()
	}
	td, ok := rec.Get(testID(100).String())
	if !ok {
		t.Fatal("slow trace evicted by fast traffic; slow ring failed")
	}
	if td.Name != "slow-op" {
		t.Fatalf("wrong trace: %+v", td)
	}
	snap := rec.Snapshot(0)
	foundSlow := false
	for _, s := range snap {
		if s.ID == testID(100) {
			foundSlow = true
		}
	}
	if !foundSlow {
		t.Fatal("slow trace missing from snapshot")
	}
	st := rec.Stats()
	if st.Slow != 1 {
		t.Fatalf("Slow = %d, want 1", st.Slow)
	}
}

func TestSpanCap(t *testing.T) {
	rec := NewRecorder(2, time.Hour)
	root := rec.StartTrace(testID(3), "op", "r")
	for i := 0; i < maxSpansPerTrace+50; i++ {
		sp := root.Child("s")
		sp.End()
	}
	root.End()
	td, _ := rec.Get(testID(3).String())
	if len(td.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.Dropped != 51 { // 50 over cap + root's slot was taken first
		t.Fatalf("dropped = %d, want 51", td.Dropped)
	}
	checkWellFormed(t, td)
}

func TestEndAfterAndChildSpanning(t *testing.T) {
	rec := NewRecorder(2, time.Hour)
	start := time.Now()
	root := rec.StartTraceAt(testID(4), "op", "r", start)
	root.ChildSpanning("engine.queue", start.Add(2*time.Millisecond), start.Add(5*time.Millisecond))
	root.EndAfter(9 * time.Millisecond)
	td, _ := rec.Get(testID(4).String())
	checkWellFormed(t, td)
	if td.Duration != 9*time.Millisecond {
		t.Fatalf("duration = %v, want 9ms", td.Duration)
	}
	q := td.Spans[1]
	if q.Start != 2*time.Millisecond || q.End != 5*time.Millisecond {
		t.Fatalf("queue span offsets [%v, %v]", q.Start, q.End)
	}
}

func TestZeroSpanInert(t *testing.T) {
	var sp Span
	if sp.Active() {
		t.Fatal("zero span active")
	}
	sp.SetStr("k", "v")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1.5)
	sp.SetBool("k", true)
	sp.End()
	sp.EndAfter(time.Second)
	if c := sp.Child("x"); c.Active() {
		t.Fatal("child of zero span active")
	}
	if got := sp.Traceparent(); got != "" {
		t.Fatalf("Traceparent = %q", got)
	}
	if _, ok := sp.Snapshot(); ok {
		t.Fatal("snapshot of zero span")
	}
	ctx := context.Background()
	if got := SpanFromContext(ctx); got.Active() {
		t.Fatal("span from empty context active")
	}
}

func TestContextRoundTrip(t *testing.T) {
	rec := NewRecorder(2, time.Hour)
	sp := rec.StartTrace(testID(5), "op", "r")
	ctx := ContextWithSpan(context.Background(), sp)
	got := SpanFromContext(ctx)
	if !got.Active() || got.TraceID() != testID(5) {
		t.Fatalf("context round trip lost span: %+v", got)
	}
	sp.End()
}

func TestStagesDeterministicAndFiltered(t *testing.T) {
	build := func(withClosureBuild bool) []Stage {
		rec := NewRecorder(2, time.Hour)
		root := rec.StartTrace(testID(6), "POST /v1/match", "r")
		m := root.Child("engine.match")
		res := m.Child("catalog.resolve")
		res.SetBool("closure_cache_hit", !withClosureBuild)
		if withClosureBuild {
			cb := res.Child("catalog.closure_build")
			cb.End()
		}
		res.End()
		core := m.Child("core.maxcard")
		core.SetInt("initial_pairs", 7)
		core.End()
		m.End()
		snap, _ := root.Snapshot()
		root.End()
		return snap.Stages()
	}
	cold := build(true)
	warm := build(false)
	if len(cold) != len(warm) {
		t.Fatalf("stage count differs across cache states: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i].Name != warm[i].Name {
			t.Fatalf("stage[%d] name differs: %q vs %q", i, cold[i].Name, warm[i].Name)
		}
	}
	want := []string{"engine.match", "catalog.resolve", "core.maxcard"}
	for i, w := range want {
		if cold[i].Name != w {
			t.Fatalf("stage[%d] = %q, want %q", i, cold[i].Name, w)
		}
	}
	if cold[1].Attrs["closure_cache_hit"] != false || warm[1].Attrs["closure_cache_hit"] != true {
		t.Fatalf("cache-hit attr not carried: cold=%v warm=%v", cold[1].Attrs, warm[1].Attrs)
	}
	// The live snapshot excludes the not-yet-ended root.
	for _, st := range cold {
		if st.Name == "POST /v1/match" {
			t.Fatal("root leaked into stages")
		}
	}
}

// TestConcurrentTraces hammers one recorder from many goroutines and
// checks every completed trace is well-formed. Run with -race.
func TestConcurrentTraces(t *testing.T) {
	rec := NewRecorder(64, time.Hour)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var id TraceID
				id[0] = byte(w + 1)
				id[1] = byte(i + 1)
				id[15] = 1
				root := rec.StartTrace(id, "op", fmt.Sprintf("w%d-%d", w, i))
				var inner sync.WaitGroup
				for c := 0; c < 4; c++ {
					inner.Add(1)
					go func(c int) {
						defer inner.Done()
						sp := root.Child("concurrent")
						sp.SetInt("c", int64(c))
						sp.End()
					}(c)
				}
				inner.Wait()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	snap := rec.Snapshot(0)
	if len(snap) != 64 {
		t.Fatalf("snapshot = %d traces, want 64", len(snap))
	}
	for _, td := range snap {
		checkWellFormed(t, td)
		if len(td.Spans) != 5 {
			t.Fatalf("trace %v has %d spans, want 5", td.ID, len(td.Spans))
		}
	}
	if st := rec.Stats(); st.Completed != workers*perWorker {
		t.Fatalf("completed = %d, want %d", st.Completed, workers*perWorker)
	}
}
