package trace

import (
	"crypto/sha256"
	"encoding/hex"
)

// TraceID is a 16-byte W3C trace id.
type TraceID [16]byte

// IsZero reports whether the id is all zeroes (invalid per W3C).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses a 32-hex-character trace id. The all-zero id is
// rejected, as the spec requires.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !decodeHex(id[:], s) || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// DeriveTraceID builds a deterministic trace id from a request id so
// that X-Request-ID doubles as the trace identity when the caller did
// not send a traceparent. A 32-hex request id is used directly; a
// 16-hex one (the format newRequestID emits) fills the low 8 bytes;
// anything else is hashed.
func DeriveTraceID(requestID string) TraceID {
	var id TraceID
	switch len(requestID) {
	case 32:
		if decodeHex(id[:], requestID) && !id.IsZero() {
			return id
		}
	case 16:
		if decodeHex(id[8:], requestID) && !id.IsZero() {
			return id
		}
	}
	sum := sha256.Sum256([]byte(requestID))
	copy(id[:], sum[:16])
	if id.IsZero() { // vanishingly unlikely, but keep the invariant
		id[15] = 1
	}
	return id
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-spanid-flags, e.g.
// "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01") and
// returns the trace id and parent span id. Only version 00 with the
// exact field widths is accepted; the all-zero trace id and span id
// are rejected.
func ParseTraceparent(h string) (TraceID, uint64, bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, 0, false
	}
	if h[0] != '0' || h[1] != '0' { // only version 00
		return TraceID{}, 0, false
	}
	id, ok := ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, 0, false
	}
	span, ok := parseHexU64(h[36:52])
	if !ok || span == 0 {
		return TraceID{}, 0, false
	}
	var flags [1]byte
	if !decodeHex(flags[:], h[53:55]) {
		return TraceID{}, 0, false
	}
	return id, span, true
}

// FormatTraceparent renders a version-00 traceparent header with the
// sampled flag set.
func FormatTraceparent(id TraceID, span uint64) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = appendHex(buf, id[:])
	buf = append(buf, '-')
	var sp [8]byte
	for i := 0; i < 8; i++ {
		sp[i] = byte(span >> (56 - 8*i))
	}
	buf = appendHex(buf, sp[:])
	buf = append(buf, '-', '0', '1')
	return string(buf)
}

const hexDigits = "0123456789abcdef"

func appendHex(dst, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return dst
}

// decodeHex fills dst from exactly len(dst)*2 lowercase-or-uppercase
// hex characters, returning false on any non-hex byte or length
// mismatch.
func decodeHex(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func parseHexU64(s string) (uint64, bool) {
	var v uint64
	if len(s) != 16 {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		d, ok := hexVal(s[i])
		if !ok {
			return 0, false
		}
		v = v<<4 | uint64(d)
	}
	return v, true
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
