package trace

import (
	"sync"
	"time"
)

// DefaultCapacity is the flight-recorder ring size when the caller
// passes 0.
const DefaultCapacity = 128

// DefaultSlowThreshold is the latency above which a completed trace
// is retained in the slow ring when the caller passes 0.
const DefaultSlowThreshold = 250 * time.Millisecond

// slowRingFraction sizes the slow ring relative to the main ring.
const slowRingFraction = 4

// RecorderStats are cumulative flight-recorder counters.
type RecorderStats struct {
	Completed    uint64 // traces completed into the recorder
	Slow         uint64 // of those, traces over the slow threshold
	DroppedSpans uint64 // spans dropped by the per-trace cap
}

// Recorder is the flight recorder: a ring of the last N completed
// traces plus a smaller ring that only slow traces (duration over the
// threshold) enter, so a burst of fast requests cannot evict the
// evidence of a slow one. Completion takes one short mutex hold; live
// traces never touch the recorder lock.
type Recorder struct {
	slowThreshold time.Duration

	mu     sync.Mutex
	recent ring
	slow   ring
	stats  RecorderStats
}

type ring struct {
	buf  []*TraceData
	next int
	n    int // total ever appended
}

func (r *ring) add(td *TraceData) {
	r.buf[r.next] = td
	r.next = (r.next + 1) % len(r.buf)
	r.n++
}

// newestFirst appends the ring's entries, newest first, to dst.
func (r *ring) newestFirst(dst []*TraceData) []*TraceData {
	count := r.n
	if count > len(r.buf) {
		count = len(r.buf)
	}
	for i := 1; i <= count; i++ {
		dst = append(dst, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return dst
}

// NewRecorder builds a flight recorder. capacity <= 0 selects
// DefaultCapacity; slowThreshold <= 0 selects DefaultSlowThreshold.
func NewRecorder(capacity int, slowThreshold time.Duration) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	slowCap := capacity / slowRingFraction
	if slowCap < 4 {
		slowCap = 4
	}
	return &Recorder{
		slowThreshold: slowThreshold,
		recent:        ring{buf: make([]*TraceData, capacity)},
		slow:          ring{buf: make([]*TraceData, slowCap)},
	}
}

// SlowThreshold returns the configured slow-trace latency threshold.
func (r *Recorder) SlowThreshold() time.Duration { return r.slowThreshold }

// StartTrace begins a locally-rooted trace whose root span is named
// name. The root span's End completes the trace into the recorder.
func (r *Recorder) StartTrace(id TraceID, name, requestID string) Span {
	return r.start(id, name, requestID, time.Now(), false, 0)
}

// StartTraceAt is StartTrace with an explicit start timestamp, for
// callers that already took their single clock read for the request.
func (r *Recorder) StartTraceAt(id TraceID, name, requestID string, start time.Time) Span {
	return r.start(id, name, requestID, start, false, 0)
}

// StartRemote begins a trace re-parented under a remote traceparent:
// it keeps the remote trace id and records the remote span as the
// root's logical parent. Used by the replication follower to file
// applied-op spans under the primary's trace context.
func (r *Recorder) StartRemote(id TraceID, parent uint64, name, requestID string) Span {
	return r.start(id, name, requestID, time.Now(), true, parent)
}

// StartRemoteAt is StartRemote with an explicit start timestamp, for
// the transport shell continuing an incoming traceparent with the
// clock read it already took for the request.
func (r *Recorder) StartRemoteAt(id TraceID, parent uint64, name, requestID string, start time.Time) Span {
	return r.start(id, name, requestID, start, true, parent)
}

func (r *Recorder) start(id TraceID, name, requestID string, start time.Time, remote bool, parent uint64) Span {
	t := &live{
		rec:       r,
		id:        id,
		name:      name,
		requestID: requestID,
		remote:    remote,
		parent:    parent,
		start:     start,
	}
	return t.startSpan(0, name, 0, -1)
}

func (r *Recorder) complete(td TraceData) {
	slow := td.Duration >= r.slowThreshold
	r.mu.Lock()
	r.recent.add(&td)
	r.stats.Completed++
	r.stats.DroppedSpans += uint64(td.Dropped)
	if slow {
		r.slow.add(&td)
		r.stats.Slow++
	}
	r.mu.Unlock()
}

// Stats returns cumulative counters.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Get looks a completed trace up by its 32-hex trace id or by the
// request id it was started with. When several traces share the key
// (e.g. retries reusing a request id) the newest wins. Slow traces
// remain findable after falling out of the recent ring.
func (r *Recorder) Get(key string) (TraceData, bool) {
	id, isID := ParseTraceID(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	scratch := make([]*TraceData, 0, len(r.recent.buf)+len(r.slow.buf))
	scratch = r.recent.newestFirst(scratch)
	scratch = r.slow.newestFirst(scratch)
	var best *TraceData
	for _, td := range scratch {
		if isID && td.ID == id || key != "" && td.RequestID == key {
			if best == nil || td.Start.After(best.Start) {
				best = td
			}
		}
	}
	if best == nil {
		return TraceData{}, false
	}
	return *best, true
}

// Snapshot returns up to limit completed traces, newest first, with
// slow-ring survivors included after the recent ones (deduplicated).
// limit <= 0 means no limit.
func (r *Recorder) Snapshot(limit int) []TraceData {
	r.mu.Lock()
	recent := r.recent.newestFirst(nil)
	slow := r.slow.newestFirst(nil)
	r.mu.Unlock()
	seen := make(map[*TraceData]bool, len(recent))
	out := make([]TraceData, 0, len(recent)+len(slow))
	for _, td := range recent {
		seen[td] = true
		out = append(out, *td)
	}
	for _, td := range slow {
		if !seen[td] {
			out = append(out, *td)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}
