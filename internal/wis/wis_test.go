package wis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphmatch/internal/bitset"
)

func randomUndirected(seed int64, n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestAddEdgeUndirected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 2)
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Error("edge should be symmetric")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(1, 1)
	if g.HasEdge(1, 1) || g.NumEdges() != 0 {
		t.Error("self-loops must be ignored")
	}
}

func TestComplement(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	c := g.Complement()
	if c.HasEdge(0, 1) {
		t.Error("complement kept original edge")
	}
	if !c.HasEdge(0, 2) || !c.HasEdge(1, 2) {
		t.Error("complement missing edges")
	}
	if c.HasEdge(0, 0) {
		t.Error("complement introduced self-loop")
	}
	// Complement is an involution.
	cc := c.Complement()
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if cc.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("complement not involutive at (%d,%d)", u, v)
			}
		}
	}
}

func TestIsIndependentSetAndClique(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	if !g.IsClique([]int{0, 1, 2}) {
		t.Error("triangle should be a clique")
	}
	if g.IsIndependentSet([]int{0, 1}) {
		t.Error("adjacent nodes are not independent")
	}
	if !g.IsIndependentSet([]int{0, 3}) {
		t.Error("non-adjacent nodes are independent")
	}
}

func TestRamseyReturnsValidSets(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomUndirected(seed, 25, 0.3)
		within := bitset.New(25)
		within.Fill()
		is, clique := g.Ramsey(within)
		if !g.IsIndependentSet(is.Slice()) {
			t.Fatalf("seed %d: Ramsey IS invalid: %v", seed, is.Slice())
		}
		if !g.IsClique(clique.Slice()) {
			t.Fatalf("seed %d: Ramsey clique invalid: %v", seed, clique.Slice())
		}
		if is.Empty() || clique.Empty() {
			t.Fatalf("seed %d: Ramsey returned empty set on nonempty graph", seed)
		}
	}
}

func TestRamseyEmptyGraph(t *testing.T) {
	g := NewGraph(5)
	is, clique := g.Ramsey(bitset.New(5))
	if !is.Empty() || !clique.Empty() {
		t.Error("Ramsey on empty within should return empty sets")
	}
}

func TestCliqueRemovalValidAndNontrivial(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomUndirected(seed, 30, 0.25)
		is := g.CliqueRemoval()
		if !g.IsIndependentSet(is) {
			t.Fatalf("seed %d: CliqueRemoval returned non-IS %v", seed, is)
		}
		if len(is) == 0 {
			t.Fatalf("seed %d: CliqueRemoval returned empty set", seed)
		}
	}
}

func TestISRemovalValid(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomUndirected(seed, 30, 0.5)
		c := g.ISRemoval()
		if !g.IsClique(c) {
			t.Fatalf("seed %d: ISRemoval returned non-clique %v", seed, c)
		}
		if len(c) == 0 {
			t.Fatalf("seed %d: ISRemoval returned empty clique", seed)
		}
	}
}

func TestCliqueRemovalOnEdgelessGraph(t *testing.T) {
	g := NewGraph(10)
	is := g.CliqueRemoval()
	if len(is) != 10 {
		t.Fatalf("edgeless graph: IS size = %d, want 10", len(is))
	}
}

func TestCliqueRemovalOnCompleteGraph(t *testing.T) {
	g := NewGraph(8)
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			g.AddEdge(u, v)
		}
	}
	is := g.CliqueRemoval()
	if len(is) != 1 {
		t.Fatalf("complete graph: IS size = %d, want 1", len(is))
	}
	c := g.ISRemoval()
	if len(c) != 8 {
		t.Fatalf("complete graph: clique size = %d, want 8", len(c))
	}
}

func TestExactMaxIS(t *testing.T) {
	// 5-cycle has max IS of size 2.
	g := NewGraph(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	is := g.ExactMaxIS()
	if len(is) != 2 {
		t.Fatalf("C5 max IS = %d, want 2", len(is))
	}
	if !g.IsIndependentSet(is) {
		t.Fatal("exact IS invalid")
	}
}

func TestExactMaxClique(t *testing.T) {
	// Triangle plus pendant: max clique 3.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	c := g.ExactMaxClique()
	if len(c) != 3 {
		t.Fatalf("max clique = %d, want 3", len(c))
	}
	if !g.IsClique(c) {
		t.Fatal("exact clique invalid")
	}
}

func TestExactMaxWeightIS(t *testing.T) {
	// Path 0-1-2; weights 1, 5, 1. Max weight IS = {1} (5) beats {0,2} (2).
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.SetWeight(1, 5)
	is := g.ExactMaxWeightIS()
	if g.WeightOf(is) != 5 {
		t.Fatalf("max weight IS weight = %v, want 5 (set %v)", g.WeightOf(is), is)
	}
}

func TestApproxNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(14)
		g := randomUndirected(seed, n, 0.3)
		approx := g.CliqueRemoval()
		exact := g.ExactMaxIS()
		return g.IsIndependentSet(approx) && len(approx) <= len(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestISRemovalNeverBeatsExactClique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		g := randomUndirected(seed, n, 0.5)
		approx := g.ISRemoval()
		exact := g.ExactMaxClique()
		return g.IsClique(approx) && len(approx) <= len(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWeightISValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		g := randomUndirected(seed, n, 0.3)
		for v := 0; v < n; v++ {
			g.SetWeight(v, 0.1+rng.Float64()*9.9)
		}
		approx := g.MaxWeightIS()
		exact := g.ExactMaxWeightIS()
		return g.IsIndependentSet(approx) &&
			g.WeightOf(approx) <= g.WeightOf(exact)+1e-9 &&
			len(approx) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWeightISUniformMatchesUnweightedBehaviour(t *testing.T) {
	g := randomUndirected(3, 20, 0.3)
	is := g.MaxWeightIS()
	if !g.IsIndependentSet(is) || len(is) == 0 {
		t.Fatal("uniform-weight MaxWeightIS invalid")
	}
}

func TestMaxWeightISEmptyGraph(t *testing.T) {
	g := NewGraph(0)
	if got := g.MaxWeightIS(); len(got) != 0 {
		t.Fatalf("empty graph IS = %v", got)
	}
}

// Ramsey guarantee sanity: on a graph with an independent set of size k and
// no large cliques, CliqueRemoval should find a reasonably large IS. We
// check the specific structural case of a perfect matching (n/2 disjoint
// edges): max IS = n/2 and CliqueRemoval finds it exactly, since every
// "clique" Ramsey can remove has ≤ 2 nodes.
func TestCliqueRemovalOnPerfectMatching(t *testing.T) {
	n := 20
	g := NewGraph(n)
	for i := 0; i < n; i += 2 {
		g.AddEdge(i, i+1)
	}
	is := g.CliqueRemoval()
	if len(is) != n/2 {
		t.Fatalf("matching: IS = %d, want %d", len(is), n/2)
	}
}

func BenchmarkCliqueRemoval(b *testing.B) {
	g := randomUndirected(1, 200, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CliqueRemoval()
	}
}

func BenchmarkMaxWeightIS(b *testing.B) {
	g := randomUndirected(1, 200, 0.1)
	rng := rand.New(rand.NewSource(2))
	for v := 0; v < 200; v++ {
		g.SetWeight(v, rng.Float64()*10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxWeightIS()
	}
}
