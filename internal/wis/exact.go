package wis

import "graphmatch/internal/bitset"

// Exact exponential solvers, used by tests to validate the approximation
// algorithms and by the experiment harness on tiny instances. All operate
// by branch-and-bound over bitsets and are only suitable for graphs of a
// few dozen nodes.

// ExactMaxIS returns a maximum independent set.
func (g *Graph) ExactMaxIS() []int {
	within := bitset.New(g.n)
	within.Fill()
	best := bitset.New(g.n)
	cur := bitset.New(g.n)
	g.misBranch(within, cur, &best)
	return best.Slice()
}

func (g *Graph) misBranch(within, cur *bitset.Set, best **bitset.Set) {
	if cur.Count()+within.Count() <= (*best).Count() {
		return // bound: even taking everything left cannot beat best
	}
	v := within.Next(0)
	if v < 0 {
		if cur.Count() > (*best).Count() {
			*best = cur.Clone()
		}
		return
	}
	// Branch 1: include v.
	w1 := within.Clone()
	w1.Remove(v)
	w1.AndNot(g.adj[v])
	cur.Add(v)
	g.misBranch(w1, cur, best)
	cur.Remove(v)
	// Branch 2: exclude v.
	w2 := within.Clone()
	w2.Remove(v)
	g.misBranch(w2, cur, best)
}

// ExactMaxClique returns a maximum clique (via max IS on the complement).
func (g *Graph) ExactMaxClique() []int {
	return g.Complement().ExactMaxIS()
}

// ExactMaxWeightIS returns an independent set of maximum total weight.
func (g *Graph) ExactMaxWeightIS() []int {
	within := bitset.New(g.n)
	within.Fill()
	var best []int
	bestW := -1.0
	var cur []int
	var curW float64
	// Upper bound helper: total weight of remaining candidates.
	var rec func(within *bitset.Set)
	rec = func(within *bitset.Set) {
		restW := 0.0
		for v := within.Next(0); v >= 0; v = within.Next(v + 1) {
			restW += g.weight[v]
		}
		if curW+restW <= bestW {
			return
		}
		v := within.Next(0)
		if v < 0 {
			if curW > bestW {
				bestW = curW
				best = append([]int(nil), cur...)
			}
			return
		}
		// Include v.
		w1 := within.Clone()
		w1.Remove(v)
		w1.AndNot(g.adj[v])
		cur = append(cur, v)
		curW += g.weight[v]
		rec(w1)
		cur = cur[:len(cur)-1]
		curW -= g.weight[v]
		// Exclude v.
		w2 := within.Clone()
		w2.Remove(v)
		rec(w2)
	}
	rec(within)
	if best == nil {
		return []int{}
	}
	return best
}
