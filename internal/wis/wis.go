// Package wis implements the (weighted) independent set and clique
// machinery the paper builds on:
//
//   - Ramsey and CliqueRemoval from Boppana & Halldórsson [7], which
//     guarantee an O(log²n / n) approximation for maximum independent set;
//   - ISRemoval (Fig. 9 of the paper), the dual of CliqueRemoval, which
//     finds a large clique by repeatedly removing independent sets —
//     compMaxCard simulates exactly this procedure on the product graph
//     (proof of Proposition 5.2);
//   - MaxWeightIS, Halldórsson's weighted extension [16]: drop nodes
//     lighter than W/n, split the rest into log n weight buckets
//     [W/2^i, W/2^(i-1)), solve each bucket unweighted, return the best —
//     compMaxSim borrows this exact trick;
//   - exact exponential solvers for cross-checking on small graphs.
//
// Graphs here are undirected with adjacency bitsets; they are the target
// representation of the product-graph reductions in internal/product.
package wis

import (
	"math"

	"graphmatch/internal/bitset"
)

// Graph is an undirected graph over dense node IDs with optional node
// weights (default 1).
type Graph struct {
	n      int
	adj    []*bitset.Set
	weight []float64
}

// NewGraph returns an edgeless undirected graph with n nodes of weight 1.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]*bitset.Set, n), weight: make([]float64, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
		g.weight[i] = 1
	}
	return g
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored (an
// independent set can never contain a self-adjacent node, and the product
// construction never emits them).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u].Contains(v) }

// NumEdges reports the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, row := range g.adj {
		total += row.Count()
	}
	return total / 2
}

// Neighbors returns the adjacency bitset of v (shared, do not modify).
func (g *Graph) Neighbors(v int) *bitset.Set { return g.adj[v] }

// SetWeight assigns node weight w(v).
func (g *Graph) SetWeight(v int, w float64) { g.weight[v] = w }

// Weight reports w(v).
func (g *Graph) Weight(v int) float64 { return g.weight[v] }

// WeightOf sums the weights of the given nodes.
func (g *Graph) WeightOf(nodes []int) float64 {
	total := 0.0
	for _, v := range nodes {
		total += g.weight[v]
	}
	return total
}

// Complement returns the complement graph (no self-loops), used by the
// SPH→WIS reduction which complements the product graph.
func (g *Graph) Complement() *Graph {
	c := NewGraph(g.n)
	copy(c.weight, g.weight)
	for v := 0; v < g.n; v++ {
		row := c.adj[v]
		row.Fill()
		row.AndNot(g.adj[v])
		row.Remove(v)
	}
	return c
}

// IsIndependentSet reports whether nodes are pairwise non-adjacent.
func (g *Graph) IsIndependentSet(nodes []int) bool {
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			if g.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// IsClique reports whether nodes are pairwise adjacent.
func (g *Graph) IsClique(nodes []int) bool {
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			if !g.HasEdge(u, v) {
				return false
			}
		}
	}
	return true
}

// Ramsey computes an independent set and a clique of the subgraph induced
// by within, following procedure Ramsey of Fig. 9: pick a node v, recurse
// on its neighbours and non-neighbours, and keep the larger of the two
// candidate sets on each side. Both returned sets are fresh bitsets over
// the full node range.
func (g *Graph) Ramsey(within *bitset.Set) (is, clique *bitset.Set) {
	v := within.Next(0)
	if v < 0 {
		return bitset.New(g.n), bitset.New(g.n)
	}
	neigh := within.Clone()
	neigh.And(g.adj[v])
	nonNeigh := within.Clone()
	nonNeigh.AndNot(g.adj[v])
	nonNeigh.Remove(v)

	c1, i1 := g.ramseyNC(neigh)
	c2, i2 := g.ramseyNC(nonNeigh)

	i2.Add(v)
	if i2.Count() >= i1.Count() {
		is = i2
	} else {
		is = i1
	}
	c1.Add(v)
	if c1.Count() >= c2.Count() {
		clique = c1
	} else {
		clique = c2
	}
	return is, clique
}

// ramseyNC mirrors Ramsey but returns (clique, is) to match Fig. 9's
// (C, I) ordering internally.
func (g *Graph) ramseyNC(within *bitset.Set) (clique, is *bitset.Set) {
	i, c := g.Ramsey(within)
	return c, i
}

// CliqueRemoval is the Boppana–Halldórsson approximation for maximum
// independent set: repeatedly run Ramsey, record the independent set, and
// delete the clique from the graph; return the largest independent set
// seen. Performance guarantee O(log²n / n).
func (g *Graph) CliqueRemoval() []int {
	remaining := bitset.New(g.n)
	remaining.Fill()
	best := bitset.New(g.n)
	for !remaining.Empty() {
		is, clique := g.Ramsey(remaining)
		if is.Count() > best.Count() {
			best = is
		}
		remaining.AndNot(clique)
	}
	return best.Slice()
}

// ISRemoval is algorithm ISRemoval of Fig. 9 — the dual of CliqueRemoval:
// repeatedly run Ramsey, record the clique, and delete the independent set;
// return the largest clique seen.
func (g *Graph) ISRemoval() []int {
	remaining := bitset.New(g.n)
	remaining.Fill()
	best := bitset.New(g.n)
	for !remaining.Empty() {
		is, clique := g.Ramsey(remaining)
		if clique.Count() > best.Count() {
			best = clique
		}
		remaining.AndNot(is)
	}
	return best.Slice()
}

// MaxWeightIS approximates maximum weight independent set with
// Halldórsson's bucket partition [16]: nodes lighter than W/n are dropped
// (they cannot contribute more than W in total), the remaining nodes are
// partitioned into ⌈log₂ n⌉ buckets by weight range [W/2^i, W/2^(i-1)),
// CliqueRemoval runs on each bucket-induced subgraph, and the heaviest
// resulting set wins.
func (g *Graph) MaxWeightIS() []int {
	if g.n == 0 {
		return nil
	}
	maxW := 0.0
	for _, w := range g.weight {
		if w > maxW {
			maxW = w
		}
	}
	if maxW <= 0 {
		return nil
	}
	floor := maxW / float64(g.n)
	buckets := int(math.Ceil(math.Log2(float64(g.n)))) + 1
	if buckets < 1 {
		buckets = 1
	}
	groups := make([][]int, buckets)
	for v := 0; v < g.n; v++ {
		w := g.weight[v]
		if w < floor || w <= 0 {
			continue
		}
		// Bucket i holds weights in (W/2^(i+1), W/2^i].
		i := 0
		if w < maxW {
			i = int(math.Floor(math.Log2(maxW / w)))
		}
		if i >= buckets {
			i = buckets - 1
		}
		groups[i] = append(groups[i], v)
	}
	var best []int
	bestW := -1.0
	for _, members := range groups {
		if len(members) == 0 {
			continue
		}
		within := bitset.New(g.n)
		for _, v := range members {
			within.Add(v)
		}
		set := g.cliqueRemovalWithin(within)
		if w := g.WeightOf(set); w > bestW {
			bestW = w
			best = set
		}
	}
	return best
}

// cliqueRemovalWithin runs CliqueRemoval restricted to the induced
// subgraph on within.
func (g *Graph) cliqueRemovalWithin(within *bitset.Set) []int {
	remaining := within.Clone()
	best := bitset.New(g.n)
	for !remaining.Empty() {
		is, clique := g.Ramsey(remaining)
		if is.Count() > best.Count() {
			best = is
		}
		remaining.AndNot(clique)
	}
	return best.Slice()
}
