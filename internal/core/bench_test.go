package core

import (
	"fmt"
	"math/rand"
	"testing"

	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Benchmarks for the serving hot path: per-request matcher setup and
// the greedyMatch recursion, under the catalog-cached regime (the
// data graph's closure and closure rows are built once and shared, as
// internal/catalog does for every registered graph).
//
// BenchmarkMatcherSetup vs BenchmarkMatcherSetupRowBuild quantifies the
// tentpole win: with shared rows, setup touches only the O(n1) pattern
// adjacency bitsets; without them, it re-materialises the O(n2²)
// closure rows per request, which is what every request paid before
// rows were shareable.

func benchGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("L%d", i%16))
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func benchPattern(g *graph.Graph, size int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	seen := map[graph.NodeID]bool{}
	var keep []graph.NodeID
	for len(keep) < size {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}

// benchFixture returns the shared (catalog-resident) state: data graph,
// pattern, closure, dense-tier index, and matrix.
func benchFixture() (g1, g2 *graph.Graph, mat simmatrix.Matrix, reach *closure.Reach, idx closure.Index) {
	g2 = benchGraph(400, 4, 1)
	g1 = benchPattern(g2, 10, 100)
	reach = closure.Compute(g2)
	idx = closure.NewRows(reach)
	mat = simmatrix.NewLabelEquality(g1, g2)
	return
}

// BenchmarkMatcherSetup is per-request matcher construction with the
// catalog-shared closure AND rows installed — the serving fast path.
func BenchmarkMatcherSetup(b *testing.B) {
	g1, g2, mat, reach, idx := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInstance(g1, g2, mat, 0.9)
		in.SetReach(reach)
		in.SetIndex(idx)
		_ = in.newMatcher(false)
	}
}

// BenchmarkMatcherSetupRowBuild is the same construction without shared
// rows: each request re-derives the forward/backward closure rows from
// the shared Reach index, reproducing the pre-rows cost every request
// used to pay.
func BenchmarkMatcherSetupRowBuild(b *testing.B) {
	g1, g2, mat, reach, _ := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInstance(g1, g2, mat, 0.9)
		in.SetReach(reach)
		_ = in.newMatcher(false)
	}
}

// BenchmarkCompMaxCardServing is one full serving-shaped request:
// instance construction, matcher setup, and the compMaxCard run, all
// against shared catalog state.
func BenchmarkCompMaxCardServing(b *testing.B) {
	g1, g2, mat, reach, idx := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInstance(g1, g2, mat, 0.9)
		in.SetReach(reach)
		in.SetIndex(idx)
		_ = in.CompMaxCard()
	}
}

// BenchmarkCompMaxCardSparseTier is the same serving-shaped request
// under the candidate-sparse index tier — the representation large
// registered graphs get — quantifying the throughput cost of the O(k)
// memory footprint against the dense baseline above.
func BenchmarkCompMaxCardSparseTier(b *testing.B) {
	g1, g2, mat, reach, _ := benchFixture()
	sparse := closure.NewCompIndex(reach)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInstance(g1, g2, mat, 0.9)
		in.SetReach(reach)
		in.SetIndex(sparse)
		_ = in.CompMaxCard()
	}
}

// BenchmarkCompMaxSimServing is the similarity variant of the above
// (weight buckets, memoized weight rows, weight-greedy picks).
func BenchmarkCompMaxSimServing(b *testing.B) {
	g1, g2, mat, reach, idx := benchFixture()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInstance(g1, g2, mat, 0.9)
		in.SetReach(reach)
		in.SetIndex(idx)
		_ = in.CompMaxSim()
	}
}

// BenchmarkGreedyMatchSteadyState measures the recursion alone on a
// warmed matcher: the free lists are primed by the first call, after
// which every round should run allocation-free (pinned exactly by
// TestGreedyMatchAllocationFree).
func BenchmarkGreedyMatchSteadyState(b *testing.B) {
	g1, g2, mat, reach, idx := benchFixture()
	in := NewInstance(g1, g2, mat, 0.9)
	in.SetReach(reach)
	in.SetIndex(idx)
	mx := in.newMatcher(false)
	h := mx.initialList()
	s, c := mx.greedyMatch(h)
	mx.putPairs(s)
	mx.putPairs(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, c := mx.greedyMatch(h)
		mx.putPairs(s)
		mx.putPairs(c)
	}
}
