package core

import (
	"context"

	"graphmatch/internal/graph"
)

// Candidate filtering for the exact decision procedures — the paper's
// closing future-work item ("we plan to improve our algorithms by
// leveraging indexing and filtering of [27, 30]").
//
// For the *decision* problems every pattern node must be mapped, which
// licenses sound degree/reachability filters that are unavailable for the
// optimisation problems (where nodes may simply be dropped):
//
//   - a pattern node with children needs an image with at least one
//     outgoing path; one with parents needs an incoming path;
//   - under 1-1 semantics the image must reach at least outdeg(v)
//     distinct nodes (each child takes a distinct image inside fwd(u)),
//     and be reachable from at least indeg(v) distinct nodes.
//
// The filters only ever remove candidates that cannot participate in any
// total (injective) p-hom mapping, so Decide/Decide11 results are
// unchanged; the search space shrinks, often drastically on hub-heavy
// patterns. TestFilterPreservesDecision pins the equivalence.

// filterStats reports how much the pre-filter removed.
type filterStats struct {
	before, after int
}

// filterCandidates prunes cands in place and reports the shrinkage.
func (in *Instance) filterCandidates(cands [][]graph.NodeID, injective bool) filterStats {
	// Fan-out and fan-in are computed lazily — the counts are only
	// needed for candidates that survive the cheap checks. When a
	// shared reachability index is already installed (a serving
	// request, or any instance that has run an approximation
	// algorithm), each count is an O(1) Index lookup — a word-level
	// population count on the dense tier, a precomputed per-component
	// aggregate on the sparse tier; the filter deliberately does NOT
	// force an index build, because the decision procedures otherwise
	// never need one and a filtered decide on a cold instance should
	// not pay for it — the fallback probes the Reach index per
	// surviving candidate instead.
	reach := in.Reach()
	_, idx := in.cachedIndexes()
	type fan struct {
		out, in int
		done    bool
	}
	fans := make([]fan, in.G2.NumNodes())
	fanOf := func(u graph.NodeID) (int, int) {
		f := &fans[u]
		if !f.done {
			if idx != nil {
				f.out = idx.FanOut(u)
				f.in = idx.FanIn(u)
			} else {
				f.out = reach.ReachableSet(u).Count()
				cin := 0
				for w := 0; w < in.G2.NumNodes(); w++ {
					if reach.Reachable(graph.NodeID(w), u) {
						cin++
					}
				}
				f.in = cin
			}
			f.done = true
		}
		return f.out, f.in
	}

	st := filterStats{}
	for v := range cands {
		vv := graph.NodeID(v)
		outdeg := len(in.G1.Post(vv))
		indeg := len(in.G1.Prev(vv))
		st.before += len(cands[v])
		keep := cands[v][:0]
		for _, u := range cands[v] {
			fout, fin := 0, 0
			if outdeg > 0 || indeg > 0 {
				fout, fin = fanOf(u)
			}
			if outdeg > 0 && fout == 0 {
				continue
			}
			if indeg > 0 && fin == 0 {
				continue
			}
			if injective {
				if fout < outdeg {
					continue
				}
				if fin < indeg {
					continue
				}
			}
			keep = append(keep, u)
		}
		cands[v] = keep
		st.after += len(keep)
	}
	return st
}

// DecideFiltered is Decide with the candidate pre-filter enabled. The
// result always equals Decide's; only the search cost changes.
func (in *Instance) DecideFiltered() (Mapping, bool) {
	m, ok, _ := in.decideWith(context.Background(), false, true)
	return m, ok
}

// Decide11Filtered is Decide11 with the candidate pre-filter enabled.
func (in *Instance) Decide11Filtered() (Mapping, bool) {
	m, ok, _ := in.decideWith(context.Background(), true, true)
	return m, ok
}
