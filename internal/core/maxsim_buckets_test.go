package core

import (
	"testing"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Direct unit tests for the Halldórsson weight-bucket partition inside
// compMaxSim (simBuckets), separate from the end-to-end algorithm tests.

func bucketFixture() (*Instance, *matcher, *matchList) {
	// Four isolated pattern nodes with weights spanning two orders of
	// magnitude against four data nodes.
	g1 := graph.FromEdgeList([]string{"a", "b", "c", "d"}, nil)
	g1.SetWeight(0, 100) // heaviest pair weight 100
	g1.SetWeight(1, 40)
	g1.SetWeight(2, 10)
	g1.SetWeight(3, 0.001) // below the W/(n1·n2) floor
	g2 := graph.FromEdgeList([]string{"a", "b", "c", "d"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	mx := in.newMatcher(false)
	return in, mx, mx.initialList()
}

func TestSimBucketsPartition(t *testing.T) {
	_, mx, h := bucketFixture()
	buckets := mx.simBuckets(h)
	if len(buckets) == 0 {
		t.Fatal("no buckets")
	}
	// Every surviving pair appears in exactly one bucket; the sub-floor
	// pair (node 3, weight 0.001 < 100/16) is dropped.
	seen := map[graph.NodeID]int{}
	for _, b := range buckets {
		for _, v := range b.nodes {
			seen[v] += b.good[v].Count()
		}
	}
	if seen[3] != 0 {
		t.Errorf("sub-floor pair survived: %v", seen)
	}
	for _, v := range []graph.NodeID{0, 1, 2} {
		if seen[v] != 1 {
			t.Errorf("node %d appears %d times across buckets, want 1", v, seen[v])
		}
	}
}

func TestSimBucketsWeightRanges(t *testing.T) {
	in, mx, h := bucketFixture()
	for _, b := range mx.simBuckets(h) {
		// Within a bucket, max/min pair weight ratio is at most 2 (the
		// [W/2^i, W/2^(i-1)) bands), up to the last band's tail.
		minW, maxW := 1e18, 0.0
		for _, v := range b.nodes {
			set := b.good[v]
			for u := set.Next(0); u >= 0; u = set.Next(u + 1) {
				w := in.pairWeight(v, graph.NodeID(u))
				if w < minW {
					minW = w
				}
				if w > maxW {
					maxW = w
				}
			}
		}
		if maxW > 2*minW*1.0001 && minW > 100.0/16 {
			t.Errorf("bucket spans ratio %v (%v..%v)", maxW/minW, minW, maxW)
		}
	}
}

func TestSimBucketsEmptyOnZeroWeights(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g2 := graph.FromEdgeList([]string{"y"}, nil) // no admissible pairs
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	mx := in.newMatcher(false)
	if buckets := mx.simBuckets(mx.initialList()); len(buckets) != 0 {
		t.Fatalf("buckets = %d, want 0", len(buckets))
	}
}

func TestPickCandidateBest(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"v"}, nil)
	g2 := graph.FromEdgeList([]string{"u0", "u1", "u2"}, nil)
	mat := simmatrix.NewSparse()
	mat.Set(0, 0, 0.8)
	mat.Set(0, 1, 0.95) // the heaviest candidate
	mat.Set(0, 2, 0.9)
	in := NewInstance(g1, g2, mat, 0.5)
	mx := in.newMatcher(false)
	h := mx.initialList()
	if got := mx.pickCandidate(0, h.good[0]); got != 0 {
		t.Errorf("default pick = %d, want first (0)", got)
	}
	mx.pickBest = true
	if got := mx.pickCandidate(0, h.good[0]); got != 1 {
		t.Errorf("best pick = %d, want 1", got)
	}
}
