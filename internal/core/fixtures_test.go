package core

import (
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Fixtures reconstructing the paper's worked examples. Figure 1's online
// stores and Example 3.1's similarity matrix mate() are reproduced
// faithfully from the text; the Figure 2 walkthroughs and Example 3.3's
// G5/G6 are reconstructed so that every property the text states holds
// (the figures themselves are not machine-readable, so topologies are
// chosen to satisfy the stated claims exactly).

// figure1 returns (Gp, G, mate) of Fig. 1 / Example 3.1: Gp is the online
// store pattern, G the candidate store, and mate() the page-checker
// similarity matrix. Gp ≼(e,p) G and Gp ≼1-1(e,p) G for any ξ ≤ 0.6.
func figure1() (*graph.Graph, *graph.Graph, simmatrix.Matrix) {
	gp := graph.New(6)
	pA := gp.AddNode("A")
	pBooks := gp.AddNode("books")
	pAudio := gp.AddNode("audio")
	pText := gp.AddNode("textbooks")
	pABooks := gp.AddNode("abooks")
	pAlbums := gp.AddNode("albums")
	gp.AddEdge(pA, pBooks)
	gp.AddEdge(pA, pAudio)
	gp.AddEdge(pBooks, pText)
	gp.AddEdge(pBooks, pABooks)
	gp.AddEdge(pAudio, pABooks)
	gp.AddEdge(pAudio, pAlbums)
	gp.Finish()

	g := graph.New(15)
	gB := g.AddNode("B")
	gBooks := g.AddNode("books")
	gSports := g.AddNode("sports")
	gDigital := g.AddNode("digital")
	gCategories := g.AddNode("categories")
	gAudio := g.AddNode("audio")
	gSchool := g.AddNode("school")
	gArts := g.AddNode("arts")
	gAudiobooks := g.AddNode("audiobooks")
	gBooksets := g.AddNode("booksets")
	gDVDs := g.AddNode("DVDs")
	gCDs := g.AddNode("CDs")
	gFeatures := g.AddNode("features")
	gGenres := g.AddNode("genres")
	gAlbums := g.AddNode("albums")
	g.AddEdge(gB, gBooks)
	g.AddEdge(gB, gSports)
	g.AddEdge(gB, gDigital)
	g.AddEdge(gBooks, gCategories)
	g.AddEdge(gBooks, gBooksets)
	g.AddEdge(gBooks, gAudio)
	g.AddEdge(gCategories, gSchool)
	g.AddEdge(gCategories, gArts)
	g.AddEdge(gAudio, gAudiobooks)
	g.AddEdge(gAudio, gDVDs)
	g.AddEdge(gAudio, gCDs)
	g.AddEdge(gDigital, gFeatures)
	g.AddEdge(gDigital, gGenres)
	g.AddEdge(gFeatures, gAudiobooks)
	g.AddEdge(gGenres, gAlbums)
	g.Finish()

	mate := simmatrix.NewSparse()
	mate.Set(pA, gB, 0.7)
	mate.Set(pAudio, gDigital, 0.7)
	mate.Set(pBooks, gBooks, 1.0)
	mate.Set(pABooks, gAudiobooks, 0.8)
	mate.Set(pBooks, gBooksets, 0.6)
	mate.Set(pText, gSchool, 0.6)
	mate.Set(pAlbums, gAlbums, 0.85)
	return gp, g, mate
}

// figure2pair1 exhibits Fig. 2's first property: G1 ≼(e,p) G2 (both "A"
// nodes of G1 share the "A" node of G2) but G1 is not 1-1 p-hom to G2.
// Label equality, ξ = 0.5.
func figure2pair1() (*graph.Graph, *graph.Graph, simmatrix.Matrix) {
	g1 := graph.FromEdgeList([]string{"A", "A", "B"}, [][2]int{{0, 2}, {1, 2}})
	g2 := graph.FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	return g1, g2, simmatrix.NewLabelEquality(g1, g2)
}

// figure2pair2 exhibits Fig. 2's second property: G3 is not p-hom to G4
// because the single D node of G3 cannot serve both parents at once.
func figure2pair2() (*graph.Graph, *graph.Graph, simmatrix.Matrix) {
	// G3: A → D ← B.
	g3 := graph.FromEdgeList([]string{"A", "B", "D"}, [][2]int{{0, 2}, {1, 2}})
	// G4: A → D1, B → D2 — no single D is reachable from both A and B.
	g4 := graph.FromEdgeList([]string{"A", "B", "D", "D"}, [][2]int{{0, 2}, {1, 3}})
	return g3, g4, simmatrix.NewLabelEquality(g3, g4)
}

// example33 reconstructs Example 3.3: G5 with two B-labelled nodes v1, v2,
// the matrix mat0, threshold ξ = 0.6 and weight w(v2) = 6. The stated
// optima hold: the best 1-1 cardinality mapping covers {A, D, E, v1} with
// qualCard = 0.8 and qualSim = 0.36, while the best 1-1 similarity mapping
// covers {A, v2} with qualSim = 0.7.
func example33() (in *Instance, v1, v2 graph.NodeID) {
	g5 := graph.New(5)
	a := g5.AddNode("A")
	v1 = g5.AddNode("B") // the lightweight B node
	v2 = g5.AddNode("B") // the heavyweight hub
	d := g5.AddNode("D")
	e := g5.AddNode("E")
	g5.AddEdge(a, v1)
	g5.AddEdge(a, v2)
	g5.AddEdge(v2, d)
	g5.AddEdge(v2, e)
	g5.Finish()
	g5.SetWeight(v2, 6)

	g6 := graph.New(4)
	ga := g6.AddNode("A")
	gb := g6.AddNode("B")
	gd := g6.AddNode("D")
	ge := g6.AddNode("E")
	g6.AddEdge(ga, gb)
	g6.Finish()

	mat0 := simmatrix.NewSparse()
	mat0.Set(a, ga, 1)
	mat0.Set(d, gd, 1)
	mat0.Set(e, ge, 1)
	mat0.Set(v2, gb, 1)
	mat0.Set(v1, gb, 0.6)
	return NewInstance(g5, g6, mat0, 0.6), v1, v2
}

// example51 reconstructs Example 5.1's subgraph walkthrough: G'1 induced
// by {books, textbooks, abooks}, G'2 by {books, categories, booksets,
// school, audiobooks}, with the mate() scores of Example 3.1 and ξ = 0.5.
// compMaxCard finds the full 3-node mapping.
func example51() *Instance {
	g1 := graph.New(3)
	books := g1.AddNode("books")
	text := g1.AddNode("textbooks")
	abooks := g1.AddNode("abooks")
	g1.AddEdge(books, text)
	g1.AddEdge(books, abooks)
	g1.Finish()

	g2 := graph.New(5)
	books2 := g2.AddNode("books")
	categories := g2.AddNode("categories")
	booksets := g2.AddNode("booksets")
	school := g2.AddNode("school")
	audiobooks := g2.AddNode("audiobooks")
	g2.AddEdge(books2, categories)
	g2.AddEdge(books2, booksets)
	g2.AddEdge(categories, school)
	g2.AddEdge(categories, audiobooks)
	g2.Finish()

	mate := simmatrix.NewSparse()
	mate.Set(books, books2, 1.0)
	mate.Set(books, booksets, 0.6)
	mate.Set(text, school, 0.6)
	mate.Set(abooks, audiobooks, 0.8)
	return NewInstance(g1, g2, mate, 0.5)
}
