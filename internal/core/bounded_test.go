package core

import (
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Tests for the bounded-path variant (Instance.MaxPathLen) and the
// symmetric matching construction (Instance.Symmetric).

func chainInstance(k int) *Instance {
	// Pattern edge a→d vs data chain a→b→c→d (a path of length 3).
	g1 := graph.FromEdgeList([]string{"a", "d"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c", "d"},
		[][2]int{{0, 1}, {1, 2}, {2, 3}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	in.MaxPathLen = k
	return in
}

func TestBoundedPathThresholds(t *testing.T) {
	// The witness path has length 3: bounds below 3 must reject, bounds
	// of 3 or more (and unbounded) must accept.
	for k, want := range map[int]bool{1: false, 2: false, 3: true, 4: true, 0: true} {
		in := chainInstance(k)
		_, ok := in.Decide()
		if ok != want {
			t.Errorf("MaxPathLen=%d: Decide = %v, want %v", k, ok, want)
		}
	}
}

func TestBoundedPathEdgeToEdgeIsHomomorphism(t *testing.T) {
	// With MaxPathLen = 1 and label equality, p-hom degenerates to graph
	// homomorphism: the Fig. 2(1)-style instance maps edge-to-edge.
	g1 := graph.FromEdgeList([]string{"A", "A", "B"}, [][2]int{{0, 2}, {1, 2}})
	g2 := graph.FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	in.MaxPathLen = 1
	m, ok := in.Decide()
	if !ok {
		t.Fatal("homomorphism exists (both A nodes to A, B to B)")
	}
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	// An edge-to-path-only instance must now fail.
	in2 := chainInstance(1)
	if _, ok := in2.Decide(); ok {
		t.Fatal("edge-to-edge matching must reject path-only witnesses")
	}
}

func TestBoundedCheckMappingConsistent(t *testing.T) {
	// CheckMapping must apply the same bounded semantics as Decide.
	in := chainInstance(2)
	bad := Mapping{0: 0, 1: 3}
	if err := in.CheckMapping(bad, false); err == nil {
		t.Fatal("length-3 path must violate a 2-bounded instance")
	}
	in3 := chainInstance(3)
	if err := in3.CheckMapping(bad, false); err != nil {
		t.Fatalf("length-3 path should satisfy a 3-bounded instance: %v", err)
	}
}

func TestBoundedApproxValid(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 7, 10)
		in.MaxPathLen = 2
		m := in.CompMaxCard()
		if in.CheckMapping(m, false) != nil {
			return false
		}
		m11 := in.CompMaxCard11()
		return in.CheckMapping(m11, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedMonotone(t *testing.T) {
	// A larger path bound only adds candidate paths, so the exact optimum
	// is monotone in the bound.
	f := func(seed int64) bool {
		base := randomInstance(seed, 6, 8)
		prev := -1
		for _, k := range []int{1, 2, 3, 0} { // 0 = unbounded
			in := NewInstance(base.G1, base.G2, base.Mat, base.Xi)
			in.MaxPathLen = k
			size := len(in.ExactMaxCard(false))
			if size < prev {
				return false
			}
			prev = size
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetricMatchesPatternPaths(t *testing.T) {
	// Pattern chain a→b→c against data a→c with b missing: plain p-hom
	// fails; the symmetric instance drops... no — Symmetric keeps all
	// pattern nodes but adds closure edges, so b still needs an image.
	// The discriminating case: pattern a→b→c vs data where a reaches c
	// only directly, with a b elsewhere.
	g1 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	// Data: a→c directly, plus a→b (b is a dead end).
	g2 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 2}, {0, 1}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if _, ok := in.Decide(); ok {
		t.Fatal("plain p-hom should fail: b's image is a dead end, c unreachable from it")
	}
	// Symmetric: the pattern closure adds edge a→c, but (b, c) must still
	// map to a path — Symmetric alone does not fix this instance; its
	// value is that pattern paths become direct constraints. Verify the
	// construction at least preserves satisfiable instances.
	gp, g, mate := figure1()
	full := NewInstance(gp, g, mate, 0.5)
	sym := full.Symmetric()
	m, ok := sym.Decide()
	if !ok {
		t.Fatal("symmetric Fig. 1 instance should still match")
	}
	if err := sym.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	// The symmetric pattern is the closure: it must have at least as many
	// edges as the original.
	if sym.G1.NumEdges() < full.G1.NumEdges() {
		t.Fatal("pattern closure lost edges")
	}
}

func TestSymmetricStrictlyStronger(t *testing.T) {
	// A mapping valid for the symmetric instance is valid for the plain
	// one (the closure only adds constraints on the pattern side).
	f := func(seed int64) bool {
		in := randomInstance(seed, 6, 9)
		sym := in.Symmetric()
		m := sym.CompMaxCard()
		if sym.CheckMapping(m, false) != nil {
			return false
		}
		return in.CheckMapping(m, false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
