package core

import (
	"testing"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func TestDecideFigure1(t *testing.T) {
	gp, g, mate := figure1()
	for _, xi := range []float64{0.3, 0.5, 0.6} {
		in := NewInstance(gp, g, mate, xi)
		m, ok := in.Decide()
		if !ok {
			t.Fatalf("ξ=%v: Gp should be p-hom to G", xi)
		}
		if err := in.CheckMapping(m, false); err != nil {
			t.Fatalf("ξ=%v: witness invalid: %v", xi, err)
		}
		if len(m) != gp.NumNodes() {
			t.Fatalf("ξ=%v: witness covers %d nodes, want %d", xi, len(m), gp.NumNodes())
		}
		// Example 3.2: the mapping is also 1-1.
		m11, ok := in.Decide11()
		if !ok {
			t.Fatalf("ξ=%v: Gp should be 1-1 p-hom to G", xi)
		}
		if err := in.CheckMapping(m11, true); err != nil {
			t.Fatalf("ξ=%v: 1-1 witness invalid: %v", xi, err)
		}
	}
	// Above the top mate() score, nothing matches.
	in := NewInstance(gp, g, mate, 0.75)
	if _, ok := in.Decide(); ok {
		t.Fatal("ξ=0.75 should not admit a full p-hom mapping (A scores only 0.7)")
	}
}

func TestDecideFigure1ExpectedImages(t *testing.T) {
	gp, g, mate := figure1()
	in := NewInstance(gp, g, mate, 0.6)
	m, ok := in.Decide11()
	if !ok {
		t.Fatal("expected 1-1 p-hom")
	}
	// The mate() matrix admits exactly one image per pattern node at ξ=0.6
	// except books (books or booksets); the edge constraints force books.
	want := map[string]string{
		"A": "B", "books": "books", "audio": "digital",
		"textbooks": "school", "abooks": "audiobooks", "albums": "albums",
	}
	for v, u := range m {
		if got := g.Label(u); want[gp.Label(v)] != got {
			t.Errorf("%s mapped to %s, want %s", gp.Label(v), got, want[gp.Label(v)])
		}
	}
}

func TestDecideFigure2Pair1(t *testing.T) {
	g1, g2, mat := figure2pair1()
	in := NewInstance(g1, g2, mat, 0.5)
	m, ok := in.Decide()
	if !ok {
		t.Fatal("G1 should be p-hom to G2")
	}
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	if m.Injective() {
		t.Fatal("the only p-hom mapping maps both A nodes to one image; witness should not be injective")
	}
	if _, ok := in.Decide11(); ok {
		t.Fatal("G1 should not be 1-1 p-hom to G2")
	}
}

func TestDecideFigure2Pair2(t *testing.T) {
	g3, g4, mat := figure2pair2()
	in := NewInstance(g3, g4, mat, 0.5)
	if _, ok := in.Decide(); ok {
		t.Fatal("G3 should not be p-hom to G4")
	}
}

func TestDecideExample33(t *testing.T) {
	in, _, _ := example33()
	if _, ok := in.Decide11(); ok {
		t.Fatal("G5 should not be 1-1 p-hom to G6")
	}
}

func TestDecideEmptyPattern(t *testing.T) {
	g1 := graph.New(0)
	g2 := graph.FromEdgeList([]string{"x"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	m, ok := in.Decide()
	if !ok || len(m) != 0 {
		t.Fatal("empty pattern should match trivially")
	}
}

func TestDecideSelfLoopNeedsCycle(t *testing.T) {
	// Pattern with a self-loop cannot map onto an acyclic data graph.
	g1 := graph.FromEdgeList([]string{"a"}, [][2]int{{0, 0}})
	g2 := graph.FromEdgeList([]string{"a", "a"}, [][2]int{{0, 1}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if _, ok := in.Decide(); ok {
		t.Fatal("self-loop pattern should not match acyclic data")
	}
	// With a 2-cycle in the data it does.
	g3 := graph.FromEdgeList([]string{"a", "a"}, [][2]int{{0, 1}, {1, 0}})
	in2 := NewInstance(g1, g3, simmatrix.NewLabelEquality(g1, g3), 0.5)
	m, ok := in2.Decide()
	if !ok {
		t.Fatal("self-loop pattern should match a 2-cycle")
	}
	if err := in2.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
}

func TestDecideEdgeToPathNotEdgeToEdge(t *testing.T) {
	// Chain pattern a→c must match data a→b→c even though no direct edge
	// exists — the defining difference from plain homomorphism.
	g1 := graph.FromEdgeList([]string{"a", "c"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if _, ok := in.Decide(); !ok {
		t.Fatal("edge should map to a length-2 path")
	}
}

func TestDecideThresholdGates(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g2 := graph.FromEdgeList([]string{"y"}, nil)
	mat := simmatrix.NewSparse()
	mat.Set(0, 0, 0.7)
	if _, ok := NewInstance(g1, g2, mat, 0.7).Decide(); !ok {
		t.Fatal("threshold is inclusive: mat = ξ should match")
	}
	if _, ok := NewInstance(g1, g2, mat, 0.71).Decide(); ok {
		t.Fatal("mat < ξ should not match")
	}
}

func TestDecide11CountingConstraint(t *testing.T) {
	// Three pattern nodes, two candidates: p-hom fine, 1-1 impossible.
	g1 := graph.FromEdgeList([]string{"x", "x", "x"}, nil)
	g2 := graph.FromEdgeList([]string{"x", "x"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if _, ok := in.Decide(); !ok {
		t.Fatal("p-hom should hold")
	}
	if _, ok := in.Decide11(); ok {
		t.Fatal("1-1 p-hom needs 3 distinct images out of 2")
	}
}

func TestCheckMappingRejectsBadMappings(t *testing.T) {
	gp, g, mate := figure1()
	in := NewInstance(gp, g, mate, 0.6)
	// Similarity violation.
	bad := Mapping{0: 2} // A → sports, mat = 0
	if err := in.CheckMapping(bad, false); err == nil {
		t.Fatal("expected similarity violation")
	}
	// Edge-to-path violation: A→B and books→booksets: edge (A, books)
	// requires B ⇝ booksets, which holds... use audio → digital with
	// albums mapped but no path digital ⇝ albums? That path exists. Use
	// books→booksets (0.6 ≥ ξ? yes at ξ 0.6) plus textbooks→school: edge
	// (books, textbooks) needs booksets ⇝ school, which fails.
	bad2 := Mapping{1: 9, 3: 6} // books→booksets, textbooks→school
	if err := in.CheckMapping(bad2, false); err == nil {
		t.Fatal("expected edge-to-path violation")
	}
	// Non-injective rejected in 1-1 mode.
	g1 := graph.FromEdgeList([]string{"x", "x"}, nil)
	g2 := graph.FromEdgeList([]string{"x"}, nil)
	in2 := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	dup := Mapping{0: 0, 1: 0}
	if err := in2.CheckMapping(dup, false); err != nil {
		t.Fatalf("non-injective p-hom mapping should pass plain check: %v", err)
	}
	if err := in2.CheckMapping(dup, true); err == nil {
		t.Fatal("expected injectivity violation")
	}
	// Out-of-range nodes.
	if err := in2.CheckMapping(Mapping{99: 0}, false); err == nil {
		t.Fatal("expected domain range violation")
	}
	if err := in2.CheckMapping(Mapping{0: 99}, false); err == nil {
		t.Fatal("expected image range violation")
	}
}

func TestSymmetricMatchingViaClosure(t *testing.T) {
	// Section 3.2 Remark: to match paths on both sides, check G1+ ≼ G2.
	// Pattern chain a→b→c vs data a→c (b missing as intermediate): plain
	// p-hom fails (b has no image), but dropping b and using the closure
	// of the pattern, a→c maps to the data edge.
	g1 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	g2 := graph.FromEdgeList([]string{"a", "c"}, [][2]int{{0, 1}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if _, ok := in.Decide(); ok {
		t.Fatal("b has no candidate; full p-hom should fail")
	}
	// The maximum partial mapping covers a and c thanks to closure edges.
	m := in.CompMaxCard()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("partial mapping covers %d, want 2 (a and c)", len(m))
	}
}
