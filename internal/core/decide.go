package core

import (
	"context"
	"sort"

	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/trace"
)

// This file hosts the exact decision procedures for the p-hom and 1-1
// p-hom problems (G1 ≼(e,p) G2 and G1 ≼1-1(e,p) G2, Section 3.2). The
// problems are NP-complete even for DAGs (Theorem 4.1), so these are
// exponential backtracking searches. They exist to provide ground truth for
// the approximation algorithms on small inputs, to power the worked
// examples, and to validate the reduction constructions of Appendix A.

// Decide reports whether G1 is p-hom to G2 w.r.t. mat() and ξ, returning a
// witness mapping over the whole of V1 when it is.
func (in *Instance) Decide() (Mapping, bool) {
	m, ok, _ := in.decideWith(context.Background(), false, false)
	return m, ok
}

// Decide11 reports whether G1 is 1-1 p-hom to G2, returning an injective
// witness mapping when it is.
func (in *Instance) Decide11() (Mapping, bool) {
	m, ok, _ := in.decideWith(context.Background(), true, false)
	return m, ok
}

func (in *Instance) decideWith(ctx context.Context, injective, filtered bool) (Mapping, bool, error) {
	n1 := in.G1.NumNodes()
	if n1 == 0 {
		return Mapping{}, true, nil
	}
	reach := in.Reach()
	// Cooperative cancellation: the backtracking search polls done every
	// cancelStep recursive calls. Background's nil Done disables it.
	done := ctx.Done()
	var steps uint64

	// Candidate lists per node, pre-filtered by ξ and the self-loop
	// condition (a node with a self-loop needs an image on a cycle).
	cands := make([][]graph.NodeID, n1)
	for v := 0; v < n1; v++ {
		vv := graph.NodeID(v)
		selfLoop := in.G1.HasEdge(vv, vv)
		for u := 0; u < in.G2.NumNodes(); u++ {
			uu := graph.NodeID(u)
			if !in.admissible(vv, uu) {
				continue
			}
			if selfLoop && !reach.Reachable(uu, uu) {
				continue
			}
			cands[v] = append(cands[v], uu)
		}
		if len(cands[v]) == 0 {
			return nil, false, nil
		}
	}
	if sp := trace.SpanFromContext(ctx); sp.Active() {
		total := 0
		for _, c := range cands {
			total += len(c)
		}
		sp.SetInt("nodes", int64(n1))
		sp.SetInt("candidates", int64(total))
	}
	if filtered {
		in.filterCandidates(cands, injective)
		for v := range cands {
			if len(cands[v]) == 0 {
				return nil, false, nil
			}
		}
		if sp := trace.SpanFromContext(ctx); sp.Active() {
			total := 0
			for _, c := range cands {
				total += len(c)
			}
			sp.SetInt("candidates_filtered", int64(total))
		}
	}

	// Assign scarcest-first: fewer candidates fail faster.
	order := make([]graph.NodeID, n1)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return len(cands[order[i]]) < len(cands[order[j]])
	})

	assigned := make([]graph.NodeID, n1)
	for i := range assigned {
		assigned[i] = graph.Invalid
	}
	used := make(map[graph.NodeID]int) // image use counts for 1-1

	var try func(k int) bool
	try = func(k int) bool {
		if done != nil {
			steps++
			if steps%cancelStep == 0 {
				select {
				case <-done:
					panic(matchAbort{wrapDeadline(ctx.Err())})
				default:
				}
			}
		}
		if k == n1 {
			return true
		}
		v := order[k]
		for _, u := range cands[v] {
			if injective && used[u] > 0 {
				continue
			}
			if !consistent(in, reach, assigned, v, u) {
				continue
			}
			assigned[v] = u
			used[u]++
			if try(k + 1) {
				return true
			}
			used[u]--
			assigned[v] = graph.Invalid
		}
		return false
	}
	var abortErr error
	found := func() bool {
		defer func() {
			if r := recover(); r != nil {
				ab, ok := r.(matchAbort)
				if !ok {
					panic(r)
				}
				abortErr = ab.err
			}
		}()
		return try(0)
	}()
	if sp := trace.SpanFromContext(ctx); sp.Active() {
		sp.SetInt("poll_steps", int64(steps))
	}
	if abortErr != nil {
		return nil, false, abortErr
	}
	if !found {
		return nil, false, nil
	}
	m := make(Mapping, n1)
	for v := 0; v < n1; v++ {
		m[graph.NodeID(v)] = assigned[v]
	}
	return m, true, nil
}

// consistent checks the edge-to-path condition of v→u against every
// already-assigned neighbour of v.
func consistent(in *Instance, reach *closure.Reach, assigned []graph.NodeID, v, u graph.NodeID) bool {
	for _, v2 := range in.G1.Post(v) {
		if u2 := assigned[v2]; u2 != graph.Invalid && !reach.Reachable(u, u2) {
			return false
		}
	}
	for _, v0 := range in.G1.Prev(v) {
		if u0 := assigned[v0]; u0 != graph.Invalid && !reach.Reachable(u0, u) {
			return false
		}
	}
	return true
}
