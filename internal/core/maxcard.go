package core

import (
	"context"

	"graphmatch/internal/bitset"
	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
)

// This file implements algorithm compMaxCard of Fig. 3 and its procedures
// greedyMatch and trimMatching of Fig. 4, together with the 1-1 variant
// compMaxCard1−1 (Section 5, "Approximation algorithm for CPH1−1").
//
// The matching list H keeps, for every pattern node v still in play, the
// set H[v].good of data nodes that may match v. greedyMatch picks a
// candidate pair (v, u), trims the neighbours' candidate sets against it
// (parents must reach u, children must be reachable from u — consulting
// the closure index H2), and splits H into H+ (the world where (v, u) is a
// match) and H− (the world where it is not: every candidate the trim
// displaced, plus v's remaining candidates). The larger of the two
// recursive solutions wins; the set I of pairwise-contradictory pairs that
// comes back up lets the outer loop discard bad regions of the search
// space early. The procedure simulates Ramsey/ISRemoval on the product
// graph (Proposition 5.2) and inherits the O(log²(n1·n2)/(n1·n2))
// guarantee of Theorem 5.1.
//
// The hot path is engineered to be allocation-free in steady state: the
// reachability index of G2+ is shared immutable state (closure.Index,
// injected by the serving catalog or built once per instance; dense
// rows on small graphs, candidate-sparse component probes on large
// ones), matching lists use dense slice-indexed storage instead of
// maps, the trim is a single Index.Split pass producing the kept and
// displaced candidates together, and lists, candidate bitsets and pair
// buffers are recycled through per-matcher free lists.
// TestGreedyMatchAllocationFree pins the zero-allocation property; the
// equivalence tests pin that the restructuring returns bit-identical
// mappings to the direct transcription of Figs. 3–4, and
// TestTierEquivalence pins that both index tiers agree bit for bit.

// Pair is one candidate match (v, u) handled by the matching list.
type Pair struct {
	V graph.NodeID
	U graph.NodeID
}

// matchList is the matching list H restricted to nodes with nonempty good
// sets. good is indexed densely by pattern node ID (nil = not in the
// list); nodes preserves insertion order, which the max-|good| pick and
// the partitioning both iterate, so list order — and therefore the
// search — is deterministic. minus sets are not stored between calls:
// both H+ and H− reset minus to ∅ (Fig. 4 lines 7 and 9), so they live
// only inside greedyMatch.
type matchList struct {
	nodes []graph.NodeID
	good  []*bitset.Set
	// owned lists the sets drawn from the matcher's free list for this
	// matchList, as opposed to rows shared with the parent list; only
	// these go back to the pool when the list is released.
	owned []*bitset.Set
}

// add inserts a row shared with (or outliving) the parent list.
func (h *matchList) add(v graph.NodeID, set *bitset.Set) {
	h.nodes = append(h.nodes, v)
	h.good[v] = set
}

// addOwned inserts a row drawn from the matcher's set pool.
func (h *matchList) addOwned(v graph.NodeID, set *bitset.Set) {
	h.add(v, set)
	h.owned = append(h.owned, set)
}

func newMatchList(n1 int) *matchList {
	return &matchList{good: make([]*bitset.Set, n1)}
}

// pairCount reports the number of candidate pairs Σ_v |good[v]|.
func (h *matchList) pairCount() int {
	total := 0
	for _, v := range h.nodes {
		total += h.good[v].Count()
	}
	return total
}

// SearchStats instruments one run of the compMaxCard machinery. All
// counters are cumulative over the outer loop's greedyMatch invocations.
type SearchStats struct {
	// InitialPairs is Σ|H[v].good| at the start (product-graph size).
	InitialPairs int
	// OuterIterations counts rounds of the Fig. 3 while loop.
	OuterIterations int
	// GreedyCalls counts recursive greedyMatch invocations.
	GreedyCalls int
	// MaxDepth is the deepest recursion reached.
	MaxDepth int
	// ConflictPairsRemoved counts pairs discarded via the I sets.
	ConflictPairsRemoved int
	// AugmentedPairs counts pairs added by the augmentation pass.
	AugmentedPairs int
}

// matcher carries the per-run state shared by all greedyMatch
// invocations: the pattern adjacency (H1), the shared reachability
// index of G2+ (H2, either tier), the injectivity flag, and the free
// lists that make the recursion allocation-free. A matcher is
// single-use and single-goroutine; concurrency happens one matcher per
// call.
type matcher struct {
	in        *Instance
	injective bool
	pickFirst bool // ablation: pick the first node instead of max-|good|
	pickBest  bool // pick the heaviest candidate u (used by compMaxSim)
	n1        int
	n2        int
	idx       closure.Index // shared reachability index of G2+
	prevBits  []*bitset.Set // prevBits[v] over V1
	postBits  []*bitset.Set // postBits[v] over V1
	weights   [][]float64   // memoized pairWeight rows, built per v on demand
	stats     SearchStats

	// Cooperative cancellation (see cancel.go): done is the bound
	// context's Done channel (nil = polling disabled), steps gates the
	// channel select to every cancelStep-th poll.
	ctx   context.Context
	done  <-chan struct{}
	steps uint64

	// Free lists. Sets are over V2, lists over V1, pair buffers hold
	// partial σ / I results; all recycle through the recursion so
	// steady-state greedyMatch does no heap allocation.
	setPool  []*bitset.Set
	listPool []*matchList
	pairPool [][]Pair
}

func (in *Instance) newMatcher(injective bool) *matcher {
	n1, n2 := in.G1.NumNodes(), in.G2.NumNodes()
	mx := &matcher{in: in, injective: injective, n1: n1, n2: n2, idx: in.Index()}
	mx.prevBits = make([]*bitset.Set, n1)
	mx.postBits = make([]*bitset.Set, n1)
	for v := 0; v < n1; v++ {
		pb := bitset.New(n1)
		for _, p := range in.G1.Prev(graph.NodeID(v)) {
			pb.Add(int(p))
		}
		mx.prevBits[v] = pb
		sb := bitset.New(n1)
		for _, s := range in.G1.Post(graph.NodeID(v)) {
			sb.Add(int(s))
		}
		mx.postBits[v] = sb
	}
	return mx
}

// Free-list plumbing. Pooled sets come back dirty: every consumer fully
// overwrites them (CopyFrom / SplitInto) before reading.

func (mx *matcher) getSet() *bitset.Set {
	if n := len(mx.setPool); n > 0 {
		s := mx.setPool[n-1]
		mx.setPool = mx.setPool[:n-1]
		return s
	}
	return bitset.New(mx.n2)
}

func (mx *matcher) putSet(s *bitset.Set) { mx.setPool = append(mx.setPool, s) }

func (mx *matcher) getList() *matchList {
	if n := len(mx.listPool); n > 0 {
		l := mx.listPool[n-1]
		mx.listPool = mx.listPool[:n-1]
		return l
	}
	return newMatchList(mx.n1)
}

// putList clears a list and returns it — and its owned sets — to the
// free lists. Rows shared with a parent list are left untouched.
func (mx *matcher) putList(h *matchList) {
	for _, v := range h.nodes {
		h.good[v] = nil
	}
	h.nodes = h.nodes[:0]
	for _, s := range h.owned {
		mx.putSet(s)
	}
	h.owned = h.owned[:0]
	mx.listPool = append(mx.listPool, h)
}

func (mx *matcher) getPairs() []Pair {
	if n := len(mx.pairPool); n > 0 {
		ps := mx.pairPool[n-1]
		mx.pairPool = mx.pairPool[:n-1]
		return ps
	}
	return make([]Pair, 0, 16)
}

// putPairs recycles a result buffer. nil-safe.
func (mx *matcher) putPairs(ps []Pair) {
	if ps == nil {
		return
	}
	mx.pairPool = append(mx.pairPool, ps[:0])
}

// appendPair appends to a result buffer, drawing a pooled buffer when
// the child returned none.
func (mx *matcher) appendPair(ps []Pair, p Pair) []Pair {
	if ps == nil {
		ps = mx.getPairs()
	}
	return append(ps, p)
}

// initialList builds the top-level matching list (Fig. 3 line 4): good[v]
// holds every u with mat(v, u) ≥ ξ, additionally respecting the self-loop
// condition (a pattern node on a cycle of length one needs a self-reaching
// image). Nodes with no candidates are excluded — they can never join a
// mapping (the Appendix B partitioning observation). The top-level list
// owns its sets privately (removePairs mutates them); it never returns
// to the free lists.
func (mx *matcher) initialList() *matchList {
	in := mx.in
	reach := in.Reach()
	h := newMatchList(mx.n1)
	for v := 0; v < mx.n1; v++ {
		vv := graph.NodeID(v)
		selfLoop := in.G1.HasEdge(vv, vv)
		set := bitset.New(mx.n2)
		for u := 0; u < mx.n2; u++ {
			uu := graph.NodeID(u)
			if !in.admissible(vv, uu) {
				continue
			}
			if selfLoop && !reach.Reachable(uu, uu) {
				continue
			}
			set.Add(u)
		}
		if !set.Empty() {
			h.add(vv, set)
		}
	}
	return h
}

// greedyMatch is procedure greedyMatch of Fig. 4. It never mutates h; the
// partitions share unchanged rows with the parent list, which is safe
// because lists are read-only once constructed. The returned pair slices
// are pooled: callers hand them back via putPairs once consumed.
func (mx *matcher) greedyMatch(h *matchList) (sigma, conflicts []Pair) {
	return mx.greedyMatchAt(h, 1)
}

func (mx *matcher) greedyMatchAt(h *matchList, depth int) (sigma, conflicts []Pair) {
	if len(h.nodes) == 0 {
		return nil, nil
	}
	mx.poll()
	mx.stats.GreedyCalls++
	if depth > mx.stats.MaxDepth {
		mx.stats.MaxDepth = depth
	}
	// Line 2: pick v with maximal good set, then a candidate u. The
	// pickFirst ablation takes the first node instead, quantifying how
	// much the max-|good| heuristic contributes.
	var v graph.NodeID
	if mx.pickFirst {
		v = h.nodes[0]
	} else {
		best := -1
		for _, cand := range h.nodes {
			if c := h.good[cand].Count(); c > best {
				best, v = c, cand
			}
		}
	}
	u := mx.pickCandidate(v, h.good[v])
	ui := int(u)

	plus := mx.getList()
	minus := mx.getList()

	// Line 3: v keeps only u (which moves out of the list via the match);
	// its displaced candidates seed H−.
	mv := mx.getSet()
	mv.CopyFrom(h.good[v])
	mv.Remove(ui)
	if !mv.Empty() {
		minus.addOwned(v, mv)
	} else {
		mx.putSet(mv)
	}

	// Line 4 (trimMatching) merged with lines 5–9 (partition): for every
	// other node, trim its candidates against the reachability
	// constraints the edges demand; displaced candidates go to H−. One
	// Index.Split pass (a word-level SplitInto on the dense tier, a
	// per-candidate component probe on the sparse tier) yields the kept
	// and displaced candidates together.
	for _, v2 := range h.nodes {
		if v2 == v {
			continue
		}
		old := h.good[v2]
		isPrev := mx.prevBits[v].Contains(int(v2)) // edge (v2, v): σ(v2) must reach u
		isPost := mx.postBits[v].Contains(int(v2)) // edge (v, v2): u must reach σ(v2)
		needsU := mx.injective && old.Contains(ui)
		if !isPrev && !isPost && !needsU {
			plus.add(v2, old) // untouched row: share it
			continue
		}
		trimmed := mx.getSet()
		moved := mx.getSet()
		var anyTrimmed, anyMoved bool
		if isPrev || isPost {
			anyTrimmed, anyMoved = mx.idx.Split(old, u, isPrev, isPost, trimmed, moved)
		} else {
			// Only the matched image u is displaced (injective trim with
			// no edge constraint): rows in a list are never empty, so
			// trimmed starts nonempty.
			trimmed.CopyFrom(old)
			moved.Clear()
			anyTrimmed = true
		}
		if needsU && trimmed.Contains(ui) {
			trimmed.Remove(ui)
			moved.Add(ui)
			anyMoved = true
			anyTrimmed = !trimmed.Empty()
		}
		if anyTrimmed {
			plus.addOwned(v2, trimmed)
		} else {
			mx.putSet(trimmed)
		}
		if anyMoved {
			minus.addOwned(v2, moved)
		} else {
			mx.putSet(moved)
		}
	}

	// Lines 10–13: recurse on both worlds and keep the larger outcomes.
	// The loser's buffer goes back to the pool; the winner's backing
	// array travels up as this call's result.
	s1, i1 := mx.greedyMatchAt(plus, depth+1)
	s2, i2 := mx.greedyMatchAt(minus, depth+1)
	mx.putList(plus)
	mx.putList(minus)

	if len(s1)+1 >= len(s2) {
		sigma = mx.appendPair(s1, Pair{V: v, U: u})
		mx.putPairs(s2)
	} else {
		sigma = s2
		mx.putPairs(s1)
	}
	if len(i1) > len(i2)+1 {
		conflicts = i1
		mx.putPairs(i2)
	} else {
		conflicts = mx.appendPair(i2, Pair{V: v, U: u})
		mx.putPairs(i1)
	}
	return sigma, conflicts
}

// pickCandidate selects u from v's good set: the first candidate by ID
// for the cardinality algorithms (any candidate contributes equally to
// qualCard), or the heaviest pair w(v)·mat(v, u) for the similarity
// algorithms (where the pick directly feeds the qualSim numerator).
// Weight rows are memoized per pattern node, so repeated scans over one
// run — and over the log n bucket runs of compMaxSim — compute each
// w(v)·mat(v, u) once instead of per call.
func (mx *matcher) pickCandidate(v graph.NodeID, good *bitset.Set) graph.NodeID {
	first := good.Next(0)
	if !mx.pickBest {
		return graph.NodeID(first)
	}
	row := mx.weightRow(v)
	best, bestW := first, row[first]
	for u := good.Next(first + 1); u >= 0; u = good.Next(u + 1) {
		if w := row[u]; w > bestW {
			bestW, best = w, u
		}
	}
	return graph.NodeID(best)
}

// weightRow returns the memoized pairWeight row of v, computing it on
// first use.
func (mx *matcher) weightRow(v graph.NodeID) []float64 {
	if mx.weights == nil {
		mx.weights = make([][]float64, mx.n1)
	}
	row := mx.weights[v]
	if row == nil {
		row = make([]float64, mx.n2)
		for u := range row {
			row[u] = mx.in.pairWeight(v, graph.NodeID(u))
		}
		mx.weights[v] = row
	}
	return row
}

// removePairs deletes the pairs of I from the top-level matching list
// (Fig. 3 line 10, "H := H \ I") and drops nodes whose candidate sets
// become empty.
func (h *matchList) removePairs(pairs []Pair) {
	for _, p := range pairs {
		if set := h.good[p.V]; set != nil {
			set.Remove(int(p.U))
		}
	}
	alive := h.nodes[:0]
	for _, v := range h.nodes {
		if h.good[v].Empty() {
			h.good[v] = nil
			continue
		}
		alive = append(alive, v)
	}
	h.nodes = alive
}

// run is the outer loop of compMaxCard (Fig. 3 lines 8–12), followed by a
// greedy augmentation pass: leftover pattern nodes absorb any remaining
// candidate consistent with the mapping found. Augmentation can only grow
// a valid mapping, so the approximation guarantee survives; it matters
// most at low thresholds ξ, where candidates abound and the paper observes
// that "it is relatively easy for a node in G1 to find its matching
// nodes".
func (mx *matcher) run(h *matchList) Mapping {
	mx.stats.InitialPairs += h.pairCount()
	var sigmaM []Pair
	for len(h.nodes) > len(sigmaM) {
		mx.stats.OuterIterations++
		sigma, conflicts := mx.greedyMatch(h)
		if len(sigma) > len(sigmaM) {
			mx.putPairs(sigmaM)
			sigmaM = sigma
		} else {
			mx.putPairs(sigma)
		}
		if len(conflicts) == 0 {
			break // defensive: cannot make progress
		}
		mx.stats.ConflictPairsRemoved += len(conflicts)
		h.removePairs(conflicts)
		mx.putPairs(conflicts)
	}
	base := pairsToMapping(sigmaM)
	mx.putPairs(sigmaM)
	out := mx.augment(base)
	mx.stats.AugmentedPairs += len(out) - len(base)
	return out
}

func pairsToMapping(pairs []Pair) Mapping {
	m := make(Mapping, len(pairs))
	for _, p := range pairs {
		m[p.V] = p.U
	}
	return m
}

// CompMaxCard is algorithm compMaxCard (Fig. 3): an approximation for the
// maximum cardinality problem CPH with quality within
// O(log²(|V1|·|V2|)/(|V1|·|V2|)) of the optimum (Proposition 5.2). The
// returned mapping is always a valid p-hom mapping from the subgraph of G1
// induced by its domain to G2.
func (in *Instance) CompMaxCard() Mapping {
	mx := in.newMatcher(false)
	return mx.run(mx.initialList())
}

// CompMaxCard11 is compMaxCard1−1: the CPH1−1 variant that keeps mappings
// injective by displacing a matched data node from every other candidate
// set. Same complexity and guarantee as CompMaxCard (Section 5).
func (in *Instance) CompMaxCard11() Mapping {
	mx := in.newMatcher(true)
	return mx.run(mx.initialList())
}

// MatchOptions tunes the compMaxCard machinery for experiments.
type MatchOptions struct {
	// Injective switches to the 1-1 variant.
	Injective bool
	// ArbitraryPick replaces the max-|good| node selection of Fig. 4
	// line 2 with "first node in list order" (ablation: DESIGN.md #4).
	ArbitraryPick bool
}

// CompMaxCardOpts runs compMaxCard with explicit options.
func (in *Instance) CompMaxCardOpts(opts MatchOptions) Mapping {
	m, _ := in.CompMaxCardStats(opts)
	return m
}

// CompMaxCardStats runs compMaxCard with explicit options and returns the
// search instrumentation alongside the mapping.
func (in *Instance) CompMaxCardStats(opts MatchOptions) (Mapping, SearchStats) {
	mx := in.newMatcher(opts.Injective)
	mx.pickFirst = opts.ArbitraryPick
	m := mx.run(mx.initialList())
	return m, mx.stats
}
