package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// randomInstance builds a small random instance with a handful of labels,
// so that label-equality candidates are plentiful but not universal.
func randomInstance(seed int64, n1, n2 int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "d"}
	g1 := graph.New(n1)
	for i := 0; i < n1; i++ {
		g1.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < n1*2; i++ {
		g1.AddEdge(graph.NodeID(rng.Intn(n1)), graph.NodeID(rng.Intn(n1)))
	}
	g1.Finish()
	g2 := graph.New(n2)
	for i := 0; i < n2; i++ {
		g2.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < n2*2; i++ {
		g2.AddEdge(graph.NodeID(rng.Intn(n2)), graph.NodeID(rng.Intn(n2)))
	}
	g2.Finish()
	return NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
}

func TestCompMaxCardExample51(t *testing.T) {
	in := example51()
	m := in.CompMaxCard()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	if got := in.QualCard(m); got != 1 {
		t.Fatalf("qualCard = %v, want 1 (mapping %v)", got, m)
	}
	// The walkthrough's final mapping: books→books, textbooks→school,
	// abooks→audiobooks.
	want := Mapping{0: 0, 1: 3, 2: 4}
	for v, u := range want {
		if m[v] != u {
			t.Fatalf("mapping = %v, want %v", m, want)
		}
	}
}

func TestCompMaxCardFigure1Full(t *testing.T) {
	gp, g, mate := figure1()
	in := NewInstance(gp, g, mate, 0.5)
	m := in.CompMaxCard()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	if in.QualCard(m) != 1 {
		t.Fatalf("Fig. 1 pattern should match fully, got qualCard %v (σ=%v)", in.QualCard(m), m)
	}
	m11 := in.CompMaxCard11()
	if err := in.CheckMapping(m11, true); err != nil {
		t.Fatal(err)
	}
	if in.QualCard(m11) != 1 {
		t.Fatalf("Fig. 1 1-1 should match fully, got %v", in.QualCard(m11))
	}
}

func TestCompMaxCardFigure2Pair1(t *testing.T) {
	g1, g2, mat := figure2pair1()
	in := NewInstance(g1, g2, mat, 0.5)
	m := in.CompMaxCard()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("p-hom mapping should cover all 3 nodes, got %v", m)
	}
	// 1-1: only one A available, so at most 2 of 3 nodes.
	m11 := in.CompMaxCard11()
	if err := in.CheckMapping(m11, true); err != nil {
		t.Fatal(err)
	}
	if len(m11) != 2 {
		t.Fatalf("1-1 mapping should cover 2 nodes, got %v", m11)
	}
}

func TestCompMaxCardExample33Cardinality(t *testing.T) {
	in, v1, v2 := example33()
	m := in.CompMaxCard11()
	if err := in.CheckMapping(m, true); err != nil {
		t.Fatal(err)
	}
	if got := in.QualCard(m); got != 0.8 {
		t.Fatalf("qualCard = %v, want 0.8 (σ=%v)", got, m)
	}
	// The cardinality-optimal mapping uses the lightweight v1, not v2.
	if _, ok := m[v1]; !ok {
		t.Errorf("σc should include v1; got %v", m)
	}
	if _, ok := m[v2]; ok {
		t.Errorf("σc should exclude v2; got %v", m)
	}
	// Its overall similarity is the paper's 0.36.
	if got := in.QualSim(m); got < 0.359 || got > 0.361 {
		t.Errorf("qualSim(σc) = %v, want 0.36", got)
	}
}

func TestCompMaxCardValidityRandom(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 12)
		m := in.CompMaxCard()
		if in.CheckMapping(m, false) != nil {
			return false
		}
		m11 := in.CompMaxCard11()
		return in.CheckMapping(m11, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompMaxCardNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 6, 8)
		approx := in.CompMaxCard()
		exact := in.ExactMaxCard(false)
		if len(approx) > len(exact) {
			return false
		}
		a11 := in.CompMaxCard11()
		e11 := in.ExactMaxCard(true)
		return len(a11) <= len(e11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompMaxCard11NeverExceedsPlain(t *testing.T) {
	// A 1-1 mapping is a p-hom mapping, so the exact 1-1 optimum is ≤ the
	// exact plain optimum; sanity-check the approximations stay ordered
	// against their own exact counterparts (checked above) and against
	// instance size.
	f := func(seed int64) bool {
		in := randomInstance(seed, 7, 9)
		m := in.CompMaxCard()
		m11 := in.CompMaxCard11()
		return len(m) <= in.G1.NumNodes() && len(m11) <= in.G1.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompMaxCardFindsFullMappingWhenDecideDoes(t *testing.T) {
	// When the pattern embeds fully, the exact optimum is |V1|. The
	// approximation may fall short in principle, but on identity instances
	// (G2 = G1) it should find the full mapping.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = string(rune('a' + i)) // unique labels
		}
		var edges [][2]int
		for i := 0; i < n*2; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		g1 := graph.FromEdgeList(labels, edges)
		g2 := g1.Clone()
		in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
		m := in.CompMaxCard()
		return in.QualCard(m) == 1 && in.CheckMapping(m, false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompMaxCardEmptyCandidates(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g2 := graph.FromEdgeList([]string{"y"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if m := in.CompMaxCard(); len(m) != 0 {
		t.Fatalf("no candidates should yield empty mapping, got %v", m)
	}
}

func TestCompMaxCardDisconnectedPattern(t *testing.T) {
	// Two disconnected pattern edges match two disjoint data regions.
	g1 := graph.FromEdgeList([]string{"a", "b", "c", "d"}, [][2]int{{0, 1}, {2, 3}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c", "d"}, [][2]int{{0, 1}, {2, 3}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	m := in.CompMaxCard()
	if in.QualCard(m) != 1 {
		t.Fatalf("disconnected pattern should match fully, got %v", m)
	}
}

func TestCompMaxCardAgainstNaiveOnSmallInstances(t *testing.T) {
	// compMaxCard simulates ISRemoval on the product graph
	// (Proposition 5.2); both must return valid mappings, and neither may
	// exceed the exact optimum. Their sizes can differ by tie-breaking, so
	// compare both to the optimum rather than to each other.
	for seed := int64(0); seed < 20; seed++ {
		in := randomInstance(seed, 6, 8)
		direct := in.CompMaxCard()
		naive := in.NaiveMaxCard()
		exact := in.ExactMaxCard(false)
		if err := in.CheckMapping(direct, false); err != nil {
			t.Fatalf("seed %d: direct invalid: %v", seed, err)
		}
		if err := in.CheckMapping(naive, false); err != nil {
			t.Fatalf("seed %d: naive invalid: %v", seed, err)
		}
		if len(direct) > len(exact) || len(naive) > len(exact) {
			t.Fatalf("seed %d: approximation exceeds optimum", seed)
		}
	}
}

func TestMappingHelpers(t *testing.T) {
	m := Mapping{3: 7, 1: 7}
	if m.Injective() {
		t.Error("duplicate image should not be injective")
	}
	dom := m.Domain()
	if len(dom) != 2 || dom[0] != 1 || dom[1] != 3 {
		t.Errorf("Domain = %v", dom)
	}
	if s := m.String(); s != "{1→7, 3→7}" {
		t.Errorf("String = %q", s)
	}
	c := m.Clone()
	c[5] = 1
	if len(m) != 2 {
		t.Error("Clone not independent")
	}
}

func TestMetrics(t *testing.T) {
	gp, g, mate := figure1()
	in := NewInstance(gp, g, mate, 0.5)
	full, ok := in.Decide()
	if !ok {
		t.Fatal("setup: expected full mapping")
	}
	if in.QualCard(full) != 1 {
		t.Error("full mapping qualCard should be 1")
	}
	// qualSim of the full mapping: Σ mat / 6 with uniform weights =
	// (0.7 + 1.0 + 0.7 + 0.6 + 0.8 + 0.85) / 6.
	want := (0.7 + 1.0 + 0.7 + 0.6 + 0.8 + 0.85) / 6
	if got := in.QualSim(full); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("qualSim = %v, want %v", got, want)
	}
	if in.QualCard(Mapping{}) != 0 {
		t.Error("empty mapping qualCard should be 0")
	}
}
