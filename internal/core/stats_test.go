package core

import (
	"testing"
	"testing/quick"
)

func TestSearchStatsPopulated(t *testing.T) {
	in := example51()
	m, st := in.CompMaxCardStats(MatchOptions{})
	if in.QualCard(m) != 1 {
		t.Fatalf("qualCard = %v", in.QualCard(m))
	}
	if st.InitialPairs != 4 {
		t.Errorf("InitialPairs = %d, want 4 (books×2, textbooks, abooks)", st.InitialPairs)
	}
	if st.GreedyCalls == 0 || st.OuterIterations == 0 || st.MaxDepth == 0 {
		t.Errorf("counters not populated: %+v", st)
	}
}

func TestSearchStatsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 12)
		m, st := in.CompMaxCardStats(MatchOptions{})
		if st.MaxDepth > st.GreedyCalls {
			return false
		}
		if st.ConflictPairsRemoved > st.InitialPairs {
			return false
		}
		if st.AugmentedPairs < 0 || st.AugmentedPairs > len(m) {
			return false
		}
		// Total pairs discarded cannot exceed pairs that existed.
		return st.OuterIterations >= 1 || st.InitialPairs == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchStatsEmptyInstance(t *testing.T) {
	in := randomInstance(1, 3, 3)
	in.Xi = 1.1 // clamp is bypassed by direct assignment; no candidates
	_, st := in.CompMaxCardStats(MatchOptions{})
	if st.InitialPairs != 0 {
		t.Errorf("InitialPairs = %d, want 0", st.InitialPairs)
	}
	if st.GreedyCalls != 0 {
		t.Errorf("GreedyCalls = %d, want 0", st.GreedyCalls)
	}
}

func TestPickOrderAblationBothValid(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 10)
		m1 := in.CompMaxCardOpts(MatchOptions{})
		m2 := in.CompMaxCardOpts(MatchOptions{ArbitraryPick: true})
		return in.CheckMapping(m1, false) == nil && in.CheckMapping(m2, false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
