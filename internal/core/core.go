// Package core implements the paper's primary contribution: the
// p-homomorphism and 1-1 p-homomorphism matching notions (Section 3), the
// exact decision procedures (Section 4's NP membership), and the
// approximation algorithms compMaxCard, compMaxCard1−1, compMaxSim and
// compMaxSim1−1 of Section 5 (Figs. 3–4), together with the Appendix B
// optimisations and naive product-graph variants used for cross-checking.
package core

import (
	"fmt"
	"sort"
	"sync"

	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Mapping is a (partial) node mapping σ from G1 to G2: dom(σ) ⊆ V1,
// σ(v) ∈ V2. All algorithms in this package return Mappings whose validity
// can be re-checked with Instance.CheckMapping.
type Mapping map[graph.NodeID]graph.NodeID

// Clone returns an independent copy.
func (m Mapping) Clone() Mapping {
	c := make(Mapping, len(m))
	for v, u := range m {
		c[v] = u
	}
	return c
}

// Domain returns dom(σ) sorted by node ID.
func (m Mapping) Domain() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Injective reports whether σ maps distinct nodes to distinct nodes.
func (m Mapping) Injective() bool {
	seen := make(map[graph.NodeID]struct{}, len(m))
	for _, u := range m {
		if _, dup := seen[u]; dup {
			return false
		}
		seen[u] = struct{}{}
	}
	return true
}

// String renders the mapping deterministically for logs and tests.
func (m Mapping) String() string {
	dom := m.Domain()
	s := "{"
	for i, v := range dom {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d→%d", v, m[v])
	}
	return s + "}"
}

// Instance bundles one matching problem: pattern G1, data graph G2, the
// similarity matrix mat() and threshold ξ of Section 3.1. The transitive
// closure of G2 is computed lazily and cached; Instances are cheap to pass
// by pointer and safe for concurrent use after the first algorithm call.
type Instance struct {
	G1  *graph.Graph
	G2  *graph.Graph
	Mat simmatrix.Matrix
	Xi  float64

	// MaxPathLen, when positive, bounds the length of the data-graph
	// paths that pattern edges may map to — the fixed-length variant of
	// pattern matching (cf. [32] in the paper's related work). 1 demands
	// edge-to-edge images (similarity-relaxed homomorphism); 0 means
	// unbounded, the paper's default. Set it before the first algorithm
	// call.
	MaxPathLen int

	// mu guards lazy initialisation of reach and idx. A mutex rather
	// than sync.Once: the build must be single-flight AND other
	// methods (Symmetric, filterCandidates) need to peek at what is
	// already cached without forcing a build, which Once cannot offer
	// race-free.
	mu    sync.Mutex
	reach *closure.Reach
	idx   closure.Index
}

// NewInstance builds an instance. Xi outside [0, 1] is clamped.
func NewInstance(g1, g2 *graph.Graph, mat simmatrix.Matrix, xi float64) *Instance {
	if xi < 0 {
		xi = 0
	}
	if xi > 1 {
		xi = 1
	}
	return &Instance{G1: g1, G2: g2, Mat: mat, Xi: xi}
}

// Reach returns the cached reachability index of G2: the full transitive
// closure by default (the adjacency matrix H2 of Fig. 3, lines 5–7), or
// the bounded index when MaxPathLen is set. Lazy initialisation is
// mutex-guarded and single-flight, so concurrent algorithm calls on a
// cold instance race neither on the build nor on the cache write.
func (in *Instance) Reach() *closure.Reach {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reachLocked()
}

func (in *Instance) reachLocked() *closure.Reach {
	if in.reach == nil {
		in.reach = closure.ComputeBounded(in.G2, in.MaxPathLen)
	}
	return in.reach
}

// SetReach installs a precomputed reachability index for G2, replacing
// the lazily computed private one. This is how the serving catalog
// (internal/catalog) shares one closure across every Instance matching
// against the same data graph instead of recomputing it per request.
// The index must have been built over this instance's G2 with the same
// MaxPathLen bound; violating that silently changes the matching
// semantics. Call it before the first algorithm invocation.
func (in *Instance) SetReach(r *closure.Reach) {
	in.mu.Lock()
	in.reach = r
	in.mu.Unlock()
}

// Index returns the cached reachability index of G2 in the
// representation greedyMatch's trim consumes — the dense closure rows
// of G2+ on small graphs, the candidate-sparse component probes beyond
// the auto-tier threshold (closure.AutoIndex) — deriving it from Reach
// on first use. Like Reach, lazy initialisation is single-flight and
// the result is immutable and safe to share across concurrent
// algorithm calls.
func (in *Instance) Index() closure.Index {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.idx == nil {
		in.idx = closure.AutoIndex(in.reachLocked())
	}
	return in.idx
}

// SetIndex installs a precomputed reachability index for G2, mirroring
// SetReach: the serving catalog builds each registered graph's index
// once (choosing the tier by graph size) and every request-scoped
// Instance consumes the shared copy, making per-request matcher setup
// near-free. The index must derive from the same Reach that SetReach
// installs (the catalog guarantees this). Call it before the first
// algorithm invocation.
func (in *Instance) SetIndex(ix closure.Index) {
	in.mu.Lock()
	in.idx = ix
	in.mu.Unlock()
}

// cachedIndexes peeks at the lazily built caches without forcing
// either build — for callers that can proceed (more cheaply) without
// them.
func (in *Instance) cachedIndexes() (*closure.Reach, closure.Index) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reach, in.idx
}

// BenchSetup runs the per-request matcher construction path once and
// discards the result. It exists so external benchmark drivers
// (cmd/benchcore) can time setup cost without access to package
// internals; it is not part of the matching API.
func (in *Instance) BenchSetup() { in.newMatcher(false) }

// Symmetric returns the instance that matches paths on both sides
// (Section 3.2, Remark): the pattern is replaced by its transitive
// closure G1+, so a pattern *path* v ⇝ v′ may map to a data path. The
// returned instance shares this instance's data graph, matrix, threshold
// and cached closure.
func (in *Instance) Symmetric() *Instance {
	g1plus := closure.Compute(in.G1).Graph(in.G1)
	reach, idx := in.cachedIndexes()
	return &Instance{
		G1: g1plus, G2: in.G2, Mat: in.Mat, Xi: in.Xi,
		MaxPathLen: in.MaxPathLen, reach: reach, idx: idx,
	}
}

// admissible reports whether v may map to u at all: mat(v, u) ≥ ξ.
func (in *Instance) admissible(v, u graph.NodeID) bool {
	return in.Mat.Score(v, u) >= in.Xi
}

// CheckMapping verifies that σ is a valid p-hom mapping from the subgraph
// of G1 induced by dom(σ) to G2 — the polynomial-time certificate check
// behind the NP upper bound of Theorem 4.1. With injective set it also
// demands a 1-1 mapping. It returns nil when σ is valid and a descriptive
// error otherwise.
func (in *Instance) CheckMapping(m Mapping, injective bool) error {
	reach := in.Reach()
	for v, u := range m {
		if int(v) < 0 || int(v) >= in.G1.NumNodes() {
			return fmt.Errorf("core: domain node %d outside G1", v)
		}
		if int(u) < 0 || int(u) >= in.G2.NumNodes() {
			return fmt.Errorf("core: image node %d outside G2", u)
		}
		if !in.admissible(v, u) {
			return fmt.Errorf("core: pair (%d,%d) has mat %.3f < ξ %.3f", v, u, in.Mat.Score(v, u), in.Xi)
		}
	}
	if injective && !m.Injective() {
		return fmt.Errorf("core: mapping is not injective")
	}
	// Edge-to-path condition over edges internal to dom(σ).
	for v, u := range m {
		for _, v2 := range in.G1.Post(v) {
			u2, ok := m[v2]
			if !ok {
				continue
			}
			if !reach.Reachable(u, u2) {
				return fmt.Errorf("core: edge (%d,%d) of G1 maps to (%d,%d) with no nonempty path in G2", v, v2, u, u2)
			}
		}
	}
	return nil
}

// QualCard is the maximum-cardinality metric of Section 3.3:
// qualCard(σ) = |dom(σ)| / |V1|. An empty G1 scores 1 by convention.
func (in *Instance) QualCard(m Mapping) float64 {
	n := in.G1.NumNodes()
	if n == 0 {
		return 1
	}
	return float64(len(m)) / float64(n)
}

// QualSim is the maximum-overall-similarity metric of Section 3.3:
// qualSim(σ) = Σ_{v ∈ dom σ} w(v)·mat(v, σ(v)) / Σ_{v ∈ V1} w(v).
// The numerator accumulates in node-ID order, not map order: float
// addition is not associative, and compMaxSim selects bucket winners by
// comparing qualSim values, so an iteration-order-dependent ulp would
// make the returned mapping differ run to run.
func (in *Instance) QualSim(m Mapping) float64 {
	total := 0.0
	for v := 0; v < in.G1.NumNodes(); v++ {
		total += in.G1.Weight(graph.NodeID(v))
	}
	if total == 0 {
		return 1
	}
	got := 0.0
	for v := 0; v < in.G1.NumNodes(); v++ {
		vv := graph.NodeID(v)
		if u, ok := m[vv]; ok {
			got += in.G1.Weight(vv) * in.Mat.Score(vv, u)
		}
	}
	return got / total
}

// pairWeight is the product-graph node weight w(v)·mat(v, u) used by the
// similarity-driven algorithms.
func (in *Instance) pairWeight(v, u graph.NodeID) float64 {
	return in.G1.Weight(v) * in.Mat.Score(v, u)
}
