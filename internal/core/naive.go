package core

import (
	"graphmatch/internal/product"
)

// This file hosts the naive approximation algorithms sketched after
// Theorem 5.1 — materialise the product graph with the AFP-reduction's f,
// run the independent-set/clique machinery of [7, 16] on it, and translate
// back with g — plus exact optimum solvers built on the same product
// (exponential, for ground truth in tests and on tiny inputs).
//
// The naive algorithms cost O(|V1|³|V2|³) time because the product graph
// has O(|V1|·|V2|) nodes and O(|V1|²|V2|²) edges; compMaxCard exists
// precisely to avoid this blow-up (Section 5). Benchmarks quantify the gap
// (DESIGN.md ablation #3).

func (in *Instance) buildProduct(injective bool) *product.Product {
	return product.Build(in.G1, in.G2, in.Mat, in.Xi, injective, in.Reach())
}

// NaiveMaxCard approximates CPH on the explicit product graph with
// ISRemoval.
func (in *Instance) NaiveMaxCard() Mapping {
	p := in.buildProduct(false)
	return Mapping(p.MappingFromClique(p.MaxCardClique()))
}

// NaiveMaxCard11 approximates CPH1−1 on the injective product graph.
func (in *Instance) NaiveMaxCard11() Mapping {
	p := in.buildProduct(true)
	return Mapping(p.MappingFromClique(p.MaxCardClique()))
}

// NaiveMaxSim approximates SPH with Halldórsson's weighted algorithm on
// the complement of the product graph.
func (in *Instance) NaiveMaxSim() Mapping {
	p := in.buildProduct(false)
	return Mapping(p.MappingFromClique(p.MaxSimClique()))
}

// NaiveMaxSim11 approximates SPH1−1.
func (in *Instance) NaiveMaxSim11() Mapping {
	p := in.buildProduct(true)
	return Mapping(p.MappingFromClique(p.MaxSimClique()))
}

// ExactMaxCard computes an optimal CPH (or CPH1−1) mapping by exhaustive
// clique search on the product graph. Exponential — use on small
// instances only.
func (in *Instance) ExactMaxCard(injective bool) Mapping {
	p := in.buildProduct(injective)
	return Mapping(p.MappingFromClique(p.ExactMaxCardClique()))
}

// ExactMaxSim computes an optimal SPH (or SPH1−1) mapping by exhaustive
// weighted clique search on the product graph. Exponential.
func (in *Instance) ExactMaxSim(injective bool) Mapping {
	p := in.buildProduct(injective)
	return Mapping(p.MappingFromClique(p.ExactMaxSimClique()))
}

// Matches reports the paper's Section 6 match convention: G1 matches G2
// when the mapping's quality reaches the threshold (0.75 in all reported
// experiments). The metric argument selects qualCard or qualSim.
func Matches(in *Instance, m Mapping, metric Metric, threshold float64) bool {
	switch metric {
	case MetricCard:
		return in.QualCard(m) >= threshold
	case MetricSim:
		return in.QualSim(m) >= threshold
	default:
		return false
	}
}

// Metric selects one of the paper's two graph-similarity measures.
type Metric int

const (
	// MetricCard is maximum cardinality: qualCard(σ) = |dom σ| / |V1|.
	MetricCard Metric = iota
	// MetricSim is maximum overall similarity:
	// qualSim(σ) = Σ w(v)·mat(v,σ(v)) / Σ w(v).
	MetricSim
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricCard:
		return "qualCard"
	case MetricSim:
		return "qualSim"
	default:
		return "unknown"
	}
}
