package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Old-vs-new equivalence tests for the allocation-free greedyMatch hot
// path. refMatcher below is a direct transcription of the
// implementation before the rewrite — map-backed matching lists,
// per-recursion Clone+And/AndNot trims, closure rows re-materialised
// per matcher via Reach.ReachableSet — kept verbatim as executable
// ground truth. The rewrite is a pure representation change, so every
// algorithm must return bit-identical mappings (not merely mappings of
// equal quality), and these tests quickcheck that over random
// instances.

// refList is the pre-rewrite matchList: node order slice plus a map of
// good sets.
type refList struct {
	nodes []graph.NodeID
	good  map[graph.NodeID]*bitset.Set
}

func newRefList() *refList {
	return &refList{good: make(map[graph.NodeID]*bitset.Set)}
}

func (h *refList) add(v graph.NodeID, set *bitset.Set) {
	h.nodes = append(h.nodes, v)
	h.good[v] = set
}

func (h *refList) pairCount() int {
	total := 0
	for _, v := range h.nodes {
		total += h.good[v].Count()
	}
	return total
}

func (h *refList) removePairs(pairs []Pair) {
	for _, p := range pairs {
		if set, ok := h.good[p.V]; ok {
			set.Remove(int(p.U))
		}
	}
	alive := h.nodes[:0]
	for _, v := range h.nodes {
		if h.good[v].Empty() {
			delete(h.good, v)
			continue
		}
		alive = append(alive, v)
	}
	h.nodes = alive
}

// refMatcher reproduces the pre-rewrite matcher, including its eager
// per-matcher materialisation of the closure rows.
type refMatcher struct {
	in        *Instance
	injective bool
	pickFirst bool
	pickBest  bool
	n2        int
	fwd       []*bitset.Set
	bwd       []*bitset.Set
	prevBits  []*bitset.Set
	postBits  []*bitset.Set
}

func newRefMatcher(in *Instance, injective bool) *refMatcher {
	n1, n2 := in.G1.NumNodes(), in.G2.NumNodes()
	reach := in.Reach()
	mx := &refMatcher{in: in, injective: injective, n2: n2}
	mx.fwd = make([]*bitset.Set, n2)
	mx.bwd = make([]*bitset.Set, n2)
	for u := 0; u < n2; u++ {
		mx.fwd[u] = reach.ReachableSet(graph.NodeID(u))
		mx.bwd[u] = bitset.New(n2)
	}
	for u := 0; u < n2; u++ {
		row := mx.fwd[u]
		for w := row.Next(0); w >= 0; w = row.Next(w + 1) {
			mx.bwd[w].Add(u)
		}
	}
	mx.prevBits = make([]*bitset.Set, n1)
	mx.postBits = make([]*bitset.Set, n1)
	for v := 0; v < n1; v++ {
		pb := bitset.New(n1)
		for _, p := range in.G1.Prev(graph.NodeID(v)) {
			pb.Add(int(p))
		}
		mx.prevBits[v] = pb
		sb := bitset.New(n1)
		for _, s := range in.G1.Post(graph.NodeID(v)) {
			sb.Add(int(s))
		}
		mx.postBits[v] = sb
	}
	return mx
}

func (mx *refMatcher) initialList() *refList {
	in := mx.in
	reach := in.Reach()
	h := newRefList()
	for v := 0; v < in.G1.NumNodes(); v++ {
		vv := graph.NodeID(v)
		selfLoop := in.G1.HasEdge(vv, vv)
		set := bitset.New(mx.n2)
		for u := 0; u < mx.n2; u++ {
			uu := graph.NodeID(u)
			if !in.admissible(vv, uu) {
				continue
			}
			if selfLoop && !reach.Reachable(uu, uu) {
				continue
			}
			set.Add(u)
		}
		if !set.Empty() {
			h.add(vv, set)
		}
	}
	return h
}

func (mx *refMatcher) pickCandidate(v graph.NodeID, good *bitset.Set) graph.NodeID {
	if !mx.pickBest {
		return graph.NodeID(good.Next(0))
	}
	best, bestW := good.Next(0), -1.0
	for u := good.Next(0); u >= 0; u = good.Next(u + 1) {
		if w := mx.in.pairWeight(v, graph.NodeID(u)); w > bestW {
			bestW, best = w, u
		}
	}
	return graph.NodeID(best)
}

func (mx *refMatcher) greedyMatch(h *refList) (sigma, conflicts []Pair) {
	if len(h.nodes) == 0 {
		return nil, nil
	}
	var v graph.NodeID
	if mx.pickFirst {
		v = h.nodes[0]
	} else {
		best := -1
		for _, cand := range h.nodes {
			if c := h.good[cand].Count(); c > best {
				best, v = c, cand
			}
		}
	}
	u := mx.pickCandidate(v, h.good[v])

	plus := newRefList()
	minus := newRefList()

	mv := h.good[v].Clone()
	mv.Remove(int(u))
	if !mv.Empty() {
		minus.add(v, mv)
	}

	for _, v2 := range h.nodes {
		if v2 == v {
			continue
		}
		old := h.good[v2]
		isPrev := mx.prevBits[v].Contains(int(v2))
		isPost := mx.postBits[v].Contains(int(v2))
		needsU := mx.injective && old.Contains(int(u))
		if !isPrev && !isPost && !needsU {
			plus.add(v2, old)
			continue
		}
		trimmed := old.Clone()
		if isPrev {
			trimmed.And(mx.bwd[u])
		}
		if isPost {
			trimmed.And(mx.fwd[u])
		}
		if needsU {
			trimmed.Remove(int(u))
		}
		moved := old.Clone()
		moved.AndNot(trimmed)
		if !trimmed.Empty() {
			plus.add(v2, trimmed)
		}
		if !moved.Empty() {
			minus.add(v2, moved)
		}
	}

	s1, i1 := mx.greedyMatch(plus)
	s2, i2 := mx.greedyMatch(minus)

	if len(s1)+1 >= len(s2) {
		sigma = append(s1, Pair{V: v, U: u})
	} else {
		sigma = s2
	}
	if len(i1) > len(i2)+1 {
		conflicts = i1
	} else {
		conflicts = append(i2, Pair{V: v, U: u})
	}
	return sigma, conflicts
}

func (mx *refMatcher) run(h *refList) Mapping {
	var sigmaM []Pair
	for len(h.nodes) > len(sigmaM) {
		sigma, conflicts := mx.greedyMatch(h)
		if len(sigma) > len(sigmaM) {
			sigmaM = sigma
		}
		if len(conflicts) == 0 {
			break
		}
		h.removePairs(conflicts)
	}
	base := pairsToMapping(sigmaM)
	return mx.refAugment(base)
}

// refAugment is the pre-rewrite augmentation pass (unchanged in the
// rewrite, transcribed anyway so the reference stands alone).
func (mx *refMatcher) refAugment(m Mapping) Mapping {
	in := mx.in
	reach := in.Reach()
	out := m.Clone()
	used := make(map[graph.NodeID]bool, len(out))
	for _, u := range out {
		used[u] = true
	}
	type cand struct {
		v, u graph.NodeID
		w    float64
	}
	var cands []cand
	for v := 0; v < in.G1.NumNodes(); v++ {
		vv := graph.NodeID(v)
		if _, ok := out[vv]; ok {
			continue
		}
		selfLoop := in.G1.HasEdge(vv, vv)
		for u := 0; u < mx.n2; u++ {
			uu := graph.NodeID(u)
			if !in.admissible(vv, uu) {
				continue
			}
			if selfLoop && !reach.Reachable(uu, uu) {
				continue
			}
			cands = append(cands, cand{v: vv, u: uu, w: in.pairWeight(vv, uu)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		if cands[i].v != cands[j].v {
			return cands[i].v < cands[j].v
		}
		return cands[i].u < cands[j].u
	})
	for _, c := range cands {
		if _, ok := out[c.v]; ok {
			continue
		}
		if mx.injective && used[c.u] {
			continue
		}
		ok := true
		for _, v2 := range in.G1.Post(c.v) {
			if u2, in2 := out[v2]; in2 && !reach.Reachable(c.u, u2) {
				ok = false
				break
			}
		}
		if ok {
			for _, v0 := range in.G1.Prev(c.v) {
				if u0, in0 := out[v0]; in0 && !reach.Reachable(u0, c.u) {
					ok = false
					break
				}
			}
		}
		if ok {
			out[c.v] = c.u
			used[c.u] = true
		}
	}
	return out
}

func (mx *refMatcher) simBuckets(h *refList) []*refList {
	in := mx.in
	maxW := 0.0
	for _, v := range h.nodes {
		set := h.good[v]
		for u := set.Next(0); u >= 0; u = set.Next(u + 1) {
			if w := in.pairWeight(v, graph.NodeID(u)); w > maxW {
				maxW = w
			}
		}
	}
	if maxW <= 0 {
		return nil
	}
	n := in.G1.NumNodes() * in.G2.NumNodes()
	if n < 2 {
		n = 2
	}
	floor := maxW / float64(n)
	nb := int(math.Ceil(math.Log2(float64(n)))) + 1
	buckets := make([]*refList, nb)
	for _, v := range h.nodes {
		set := h.good[v]
		for u := set.Next(0); u >= 0; u = set.Next(u + 1) {
			w := in.pairWeight(v, graph.NodeID(u))
			if w < floor || w <= 0 {
				continue
			}
			i := 0
			if w < maxW {
				i = int(math.Floor(math.Log2(maxW / w)))
			}
			if i >= nb {
				i = nb - 1
			}
			if buckets[i] == nil {
				buckets[i] = newRefList()
			}
			b := buckets[i]
			if _, ok := b.good[v]; !ok {
				b.add(v, bitset.New(mx.n2))
			}
			b.good[v].Add(u)
		}
	}
	out := buckets[:0]
	for _, b := range buckets {
		if b != nil {
			out = append(out, b)
		}
	}
	return out
}

func (mx *refMatcher) runSim(h *refList) Mapping {
	in := mx.in
	best := Mapping{}
	bestQ := -1.0
	consider := func(m Mapping) {
		m = mx.refAugment(m)
		if q := in.QualSim(m); q > bestQ {
			bestQ = q
			best = m
		}
	}
	for _, b := range mx.simBuckets(h) {
		consider(mx.run(b))
	}
	consider(mx.run(h))
	return best
}

func refCompMaxCard(in *Instance, injective, pickFirst bool) Mapping {
	mx := newRefMatcher(in, injective)
	mx.pickFirst = pickFirst
	return mx.run(mx.initialList())
}

func refCompMaxSim(in *Instance, injective bool) Mapping {
	mx := newRefMatcher(in, injective)
	mx.pickBest = true
	return mx.runSim(mx.initialList())
}

// weightedRandomInstance builds an instance with a dense random
// similarity matrix and random node weights, so thresholds, buckets and
// weight-greedy picks all get exercised (label equality only yields 0/1
// scores and uniform weights, which leaves most of compMaxSim cold).
func weightedRandomInstance(seed int64, n1, n2 int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "d"}
	build := func(n, deg int) *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < n*deg; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g.Finish()
		return g
	}
	g1 := build(n1, 2)
	g2 := build(n2, 2)
	for v := 0; v < n1; v++ {
		g1.SetWeight(graph.NodeID(v), 0.25+rng.Float64())
	}
	mat := simmatrix.NewDense(n1, n2)
	for v := 0; v < n1; v++ {
		for u := 0; u < n2; u++ {
			// Quantised scores create plenty of ties, stressing the
			// deterministic tie-breaking of both implementations.
			mat.Set(graph.NodeID(v), graph.NodeID(u), float64(rng.Intn(5))/4)
		}
	}
	return NewInstance(g1, g2, mat, 0.5)
}

func mappingsEqual(t *testing.T, label string, seed int64, got, want Mapping) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s seed %d: got %v, want %v", label, seed, got, want)
	}
	for v, u := range want {
		if got[v] != u {
			t.Fatalf("%s seed %d: got %v, want %v", label, seed, got, want)
		}
	}
}

func TestGreedyMatchEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		in := randomInstance(seed, 4+int(seed%7), 6+int(seed%11))
		mappingsEqual(t, "CompMaxCard", seed, in.CompMaxCard(), refCompMaxCard(in, false, false))
		mappingsEqual(t, "CompMaxCard11", seed, in.CompMaxCard11(), refCompMaxCard(in, true, false))
		mappingsEqual(t, "ArbitraryPick", seed,
			in.CompMaxCardOpts(MatchOptions{ArbitraryPick: true}), refCompMaxCard(in, false, true))
	}
}

func TestGreedyMatchEquivalenceWeighted(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		in := weightedRandomInstance(seed, 4+int(seed%6), 6+int(seed%9))
		got, want := in.CompMaxCard(), refCompMaxCard(in, false, false)
		mappingsEqual(t, "CompMaxCard/weighted", seed, got, want)
		if gq, wq := in.QualCard(got), in.QualCard(want); gq != wq {
			t.Fatalf("qualCard seed %d: %v != %v", seed, gq, wq)
		}
		got, want = in.CompMaxSim(), refCompMaxSim(in, false)
		mappingsEqual(t, "CompMaxSim", seed, got, want)
		// Tolerance, not equality: QualSim sums over map iteration
		// order, so even identical mappings may differ by an ulp.
		if gq, wq := in.QualSim(got), in.QualSim(want); math.Abs(gq-wq) > 1e-9 {
			t.Fatalf("qualSim seed %d: %v != %v", seed, gq, wq)
		}
		mappingsEqual(t, "CompMaxSim11", seed, in.CompMaxSim11(), refCompMaxSim(in, true))
	}
}

func TestGreedyMatchEquivalenceBounded(t *testing.T) {
	// The bounded-path variant swaps in a different Reach shape
	// (singleton components) — the rows fast path must not change
	// results there either.
	for seed := int64(0); seed < 20; seed++ {
		for _, k := range []int{1, 2, 3} {
			in := randomInstance(seed, 5, 9)
			in.MaxPathLen = k
			ref := randomInstance(seed, 5, 9)
			ref.MaxPathLen = k
			mappingsEqual(t, "CompMaxCard/bounded", seed, in.CompMaxCard(), refCompMaxCard(ref, false, false))
			mappingsEqual(t, "CompMaxCard11/bounded", seed, in.CompMaxCard11(), refCompMaxCard(ref, true, false))
		}
	}
}

func TestSearchStatsSemanticsPreserved(t *testing.T) {
	// The rewrite must not change what the counters count: rerun the
	// instrumented path twice and check the counters are deterministic
	// and sane against the reference recursion shape.
	in := randomInstance(7, 8, 14)
	m1, s1 := in.CompMaxCardStats(MatchOptions{})
	m2, s2 := in.CompMaxCardStats(MatchOptions{})
	if s1 != s2 {
		t.Fatalf("stats not deterministic: %+v vs %+v", s1, s2)
	}
	mappingsEqual(t, "stats-run", 7, m1, m2)
	if s1.GreedyCalls == 0 || s1.InitialPairs == 0 || s1.MaxDepth == 0 {
		t.Fatalf("instrumentation lost: %+v", s1)
	}
}
