package core

import (
	"sync"
	"testing"
)

// The documented contract: an Instance is safe for concurrent use once
// the closure cache is primed (any first algorithm call primes it). The
// matching algorithms themselves share only immutable state.
func TestConcurrentMatching(t *testing.T) {
	in := randomInstance(3, 10, 14)
	in.Reach() // prime the closure cache
	want := len(in.CompMaxCard())

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var m Mapping
			switch i % 4 {
			case 0:
				m = in.CompMaxCard()
				if len(m) != want {
					errs <- "nondeterministic CompMaxCard size"
				}
			case 1:
				m = in.CompMaxCard11()
			case 2:
				m = in.CompMaxSim()
			case 3:
				m = in.CompMaxSim11()
			}
			if err := in.CheckMapping(m, i%4 == 1 || i%4 == 3); err != nil {
				errs <- err.Error()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// The algorithms are fully deterministic: repeated runs on one
	// instance yield identical mappings.
	in := randomInstance(11, 12, 16)
	first := in.CompMaxCard()
	for i := 0; i < 5; i++ {
		again := in.CompMaxCard()
		if len(again) != len(first) {
			t.Fatalf("run %d: size %d != %d", i, len(again), len(first))
		}
		for v, u := range first {
			if again[v] != u {
				t.Fatalf("run %d: mapping differs at %d", i, v)
			}
		}
	}
}

func BenchmarkInitialList(b *testing.B) {
	in := randomInstance(1, 100, 300)
	mx := in.newMatcher(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mx.initialList()
	}
}

func BenchmarkNewMatcher(b *testing.B) {
	in := randomInstance(1, 100, 300)
	in.Reach()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.newMatcher(false)
	}
}

func BenchmarkGreedyMatchRound(b *testing.B) {
	in := randomInstance(1, 60, 120)
	mx := in.newMatcher(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := mx.initialList()
		mx.greedyMatch(h)
	}
}

func BenchmarkCompMaxCardMedium(b *testing.B) {
	in := randomInstance(2, 80, 200)
	in.Reach()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.CompMaxCard()
	}
}

func TestConcurrentSymmetricSafe(t *testing.T) {
	// Symmetric peeks at the lazily built closure caches while other
	// goroutines may be building them — must be race-free on a cold
	// instance (run under -race).
	in := randomInstance(9, 8, 12)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				in.CompMaxCard()
			} else {
				sym := in.Symmetric()
				if err := sym.CheckMapping(sym.CompMaxCard(), false); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
}
