package core

import (
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// figure10a reproduces the Appendix B partitioning example (Fig. 10(a)):
// G1 is connected through a node C that has no admissible candidate;
// removing C splits G1 into three components.
func figure10a() (*graph.Graph, *graph.Graph, simmatrix.Matrix) {
	// G1: A→B, A→C, C→D, C→F, D→E, F→G  (C is the cut node).
	g1 := graph.FromEdgeList([]string{"A", "B", "C", "D", "E", "F", "G"},
		[][2]int{{0, 1}, {0, 2}, {2, 3}, {2, 5}, {3, 4}, {5, 6}})
	// G2 carries every label except C.
	g2 := graph.FromEdgeList([]string{"A", "B", "D", "E", "F", "G"},
		[][2]int{{0, 1}, {2, 3}, {4, 5}})
	return g1, g2, simmatrix.NewLabelEquality(g1, g2)
}

func TestPartitionedMaxCardFigure10a(t *testing.T) {
	g1, g2, mat := figure10a()
	in := NewInstance(g1, g2, mat, 0.5)
	m := in.PartitionedMaxCard()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	// All nodes except C are matchable: 6 of 7.
	if len(m) != 6 {
		t.Fatalf("partitioned mapping covers %d, want 6 (σ=%v)", len(m), m)
	}
	if _, ok := m[2]; ok {
		t.Fatal("candidate-free node C must stay unmatched")
	}
}

func TestPartitionedMatchesDirectQuality(t *testing.T) {
	// Proposition 1: per-component optima union to a global optimum. The
	// approximation may differ from the direct run, but on these instances
	// both should produce valid mappings and the partitioned result should
	// not be worse than the direct one (it solves easier subproblems).
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 10)
		direct := in.CompMaxCard()
		part := in.PartitionedMaxCard()
		if in.CheckMapping(part, false) != nil {
			return false
		}
		exact := in.ExactMaxCard(false)
		return len(part) <= len(exact) && len(direct) <= len(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedSingletonComponents(t *testing.T) {
	// Fully disconnected pattern: every component is a singleton and takes
	// its best candidate.
	g1 := graph.FromEdgeList([]string{"a", "b"}, nil)
	g2 := graph.FromEdgeList([]string{"a", "b"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	m := in.PartitionedMaxCard()
	if len(m) != 2 {
		t.Fatalf("singleton components should all match, got %v", m)
	}
}

func TestPartitionedSingletonPicksBestScore(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g2 := graph.FromEdgeList([]string{"x1", "x2"}, nil)
	mat := simmatrix.NewSparse()
	mat.Set(0, 0, 0.6)
	mat.Set(0, 1, 0.9)
	in := NewInstance(g1, g2, mat, 0.5)
	m := in.PartitionedMaxCard()
	if m[0] != 1 {
		t.Fatalf("singleton should take the best candidate (node 1), got %v", m)
	}
}

func TestPartitionedMaxSimValid(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 10)
		m := in.PartitionedMaxSim()
		return in.CheckMapping(m, false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedMaxCardValid(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 12)
		m := in.CompressedMaxCard()
		return in.CheckMapping(m, false) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedMaxCardOnCyclicData(t *testing.T) {
	// Pattern chain a→b→c against a data 3-cycle with matching labels:
	// the whole cycle is one SCC, so the compressed data graph has one bag
	// node, and all three pattern nodes map into it.
	g1 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	m := in.CompressedMaxCard()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("compressed matching covers %d, want 3 (σ=%v)", len(m), m)
	}
}

func TestCompressedMatchesDirectOnDAGs(t *testing.T) {
	// On a DAG every SCC is trivial, so compression is the identity and
	// the compressed run must find a mapping of the same cardinality.
	g1 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {0, 2}})
	g2 := graph.FromEdgeList([]string{"a", "x", "b", "c"}, [][2]int{{0, 1}, {1, 2}, {0, 3}})
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	direct := in.CompMaxCard()
	compressed := in.CompressedMaxCard()
	if len(direct) != len(compressed) {
		t.Fatalf("direct %v vs compressed %v", direct, compressed)
	}
}

func TestPartitionComponentsShareClosure(t *testing.T) {
	// The sub-instances reuse the parent's closure; validate by checking a
	// mapping found on a component against the parent instance.
	g1, g2, mat := figure10a()
	in := NewInstance(g1, g2, mat, 0.5)
	parts := in.partitionComponents()
	if len(parts) != 3 {
		t.Fatalf("components = %d, want 3", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += p.sub.G1.NumNodes()
	}
	if total != 6 {
		t.Fatalf("component nodes = %d, want 6 (C pruned)", total)
	}
}
