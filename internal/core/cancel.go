package core

import (
	"context"
	"errors"
	"fmt"

	"graphmatch/internal/closure"
	"graphmatch/internal/trace"
)

// This file threads context cancellation into the matching algorithms.
// The paper's procedures have wildly input-dependent cost — the
// approximation algorithms are cubic with large constants, the exact
// deciders exponential — so a serving system needs per-request
// deadlines that actually stop the recursion, not just abandon its
// result. The design:
//
//   - Every *Ctx entry point installs the context's Done channel on
//     the matcher and polls it every cancelStep recursive calls (a
//     single counter increment and predictable branch on the hot
//     path; the channel select only every 128th call).
//   - A fired poll panics with matchAbort, unwinding the entire
//     recursion at once; the entry point recovers it and returns
//     ErrDeadline. Unwinding abandons the matcher's free lists mid
//     flight, which is safe precisely because the pools are
//     per-matcher: no shared state is left inconsistent, the
//     abandoned matcher is garbage collected whole, and a subsequent
//     identical request builds a fresh matcher and returns
//     bit-identical results (pinned by TestCancelPoisonsNothing).
//   - The closure/index build paths get the same treatment via
//     closure.ComputeCtx/ComputeBoundedCtx (polled per node), reached
//     through ReachCtx/IndexCtx. Builds installed by the catalog are
//     shared across requests and are never cancelled — only a
//     request-private lazy build dies with its request.
//
// The non-Ctx methods delegate with context.Background(), whose nil
// Done channel disables polling entirely — library callers pay
// nothing.

// ErrDeadline reports that a matching computation was abandoned
// because its context was cancelled or its deadline expired before the
// algorithm finished. Errors returned by the *Ctx entry points wrap
// both ErrDeadline and the context's own error, so errors.Is works
// against either.
var ErrDeadline = errors.New("core: deadline exceeded")

// cancelStep is the poll cadence: the Done channel is selected every
// this many recursive calls. Power of two so the modulo compiles to a
// mask. 128 bounds post-cancel overrun to microseconds while keeping
// the common-path cost to one increment + compare.
const cancelStep = 128

// matchAbort is the panic sentinel that unwinds the recursion when a
// poll observes cancellation. It never escapes this package: every
// *Ctx entry point recovers it.
type matchAbort struct{ err error }

// wrapDeadline converts a context error into the typed ErrDeadline,
// preserving the cause for logs.
func wrapDeadline(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return fmt.Errorf("%w: %w", ErrDeadline, cause)
}

// bind installs ctx on the matcher. A context that can never be
// cancelled (Background) leaves polling disabled.
func (mx *matcher) bind(ctx context.Context) {
	if ctx == nil {
		return
	}
	mx.done = ctx.Done()
	mx.ctx = ctx
}

// poll is the cooperative cancellation check, called from the hot
// recursion. With no cancellable context bound it is two predictable
// instructions.
func (mx *matcher) poll() {
	if mx.done == nil {
		return
	}
	mx.steps++
	if mx.steps%cancelStep != 0 {
		return
	}
	select {
	case <-mx.done:
		panic(matchAbort{wrapDeadline(mx.ctx.Err())})
	default:
	}
}

// recoverAbort turns a matchAbort panic into the entry point's error
// return; any other panic propagates.
func recoverAbort(m *Mapping, err *error) {
	if r := recover(); r != nil {
		ab, ok := r.(matchAbort)
		if !ok {
			panic(r)
		}
		*m, *err = nil, ab.err
	}
}

// ReachCtx is Reach with a cancellable build: when the index is not
// yet cached the (potentially cubic) closure construction runs under
// ctx and a cancelled build leaves the cache empty — the next caller
// rebuilds. A cached index returns immediately regardless of ctx.
func (in *Instance) ReachCtx(ctx context.Context) (*closure.Reach, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.reach == nil {
		r, err := closure.ComputeBoundedCtx(ctx, in.G2, in.MaxPathLen)
		if err != nil {
			return nil, wrapDeadline(err)
		}
		in.reach = r
	}
	return in.reach, nil
}

// IndexCtx is Index with a cancellable build, mirroring ReachCtx.
func (in *Instance) IndexCtx(ctx context.Context) (closure.Index, error) {
	if _, err := in.ReachCtx(ctx); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapDeadline(err)
	}
	return in.Index(), nil
}

// prepareCtx runs the shared preflight of every *Ctx entry point:
// reject an already-dead context before doing any work, then make sure
// the reachability index exists (building it cancellably if not).
func (in *Instance) prepareCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return wrapDeadline(err)
	}
	_, err := in.ReachCtx(ctx)
	return err
}

// CompMaxCardCtx is CompMaxCard with cooperative cancellation: when
// ctx is cancelled mid-recursion the search stops within cancelStep
// calls and the typed ErrDeadline (wrapping ctx's error) is returned.
func (in *Instance) CompMaxCardCtx(ctx context.Context) (m Mapping, err error) {
	if err := in.prepareCtx(ctx); err != nil {
		return nil, err
	}
	defer recoverAbort(&m, &err)
	mx := in.newMatcher(false)
	mx.bind(ctx)
	_, end := startMatchSpan(ctx, "core.maxcard")
	defer end(mx)
	return mx.run(mx.initialList()), nil
}

// CompMaxCard11Ctx is CompMaxCard11 with cooperative cancellation.
func (in *Instance) CompMaxCard11Ctx(ctx context.Context) (m Mapping, err error) {
	if err := in.prepareCtx(ctx); err != nil {
		return nil, err
	}
	defer recoverAbort(&m, &err)
	mx := in.newMatcher(true)
	mx.bind(ctx)
	_, end := startMatchSpan(ctx, "core.maxcard11")
	defer end(mx)
	return mx.run(mx.initialList()), nil
}

// CompMaxSimCtx is CompMaxSim with cooperative cancellation.
func (in *Instance) CompMaxSimCtx(ctx context.Context) (m Mapping, err error) {
	if err := in.prepareCtx(ctx); err != nil {
		return nil, err
	}
	defer recoverAbort(&m, &err)
	mx := in.newMatcher(false)
	mx.pickBest = true
	mx.bind(ctx)
	_, end := startMatchSpan(ctx, "core.maxsim")
	defer end(mx)
	return mx.runSim(mx.initialList()), nil
}

// CompMaxSim11Ctx is CompMaxSim11 with cooperative cancellation.
func (in *Instance) CompMaxSim11Ctx(ctx context.Context) (m Mapping, err error) {
	if err := in.prepareCtx(ctx); err != nil {
		return nil, err
	}
	defer recoverAbort(&m, &err)
	mx := in.newMatcher(true)
	mx.pickBest = true
	mx.bind(ctx)
	_, end := startMatchSpan(ctx, "core.maxsim11")
	defer end(mx)
	return mx.runSim(mx.initialList()), nil
}

// DecideCtx is Decide with cooperative cancellation — the entry point
// that matters most operationally, since the exact decider is
// exponential and a single adversarial pattern can otherwise pin a
// worker for hours.
func (in *Instance) DecideCtx(ctx context.Context) (Mapping, bool, error) {
	return in.decideCtx(ctx, false, false)
}

// Decide11Ctx is Decide11 with cooperative cancellation.
func (in *Instance) Decide11Ctx(ctx context.Context) (Mapping, bool, error) {
	return in.decideCtx(ctx, true, false)
}

func (in *Instance) decideCtx(ctx context.Context, injective, filtered bool) (Mapping, bool, error) {
	if err := in.prepareCtx(ctx); err != nil {
		return nil, false, err
	}
	name := "core.decide"
	if injective {
		name = "core.decide11"
	}
	sp := trace.SpanFromContext(ctx).Child(name)
	if sp.Active() {
		// Re-wrap so decideWith's candidate-construction phase can attach
		// its counts to this span rather than the engine's parent.
		ctx = trace.ContextWithSpan(ctx, sp)
		defer sp.End()
	}
	m, ok, err := in.decideWith(ctx, injective, filtered)
	if sp.Active() {
		sp.SetBool("holds", ok)
		if err != nil {
			sp.SetStr("error", err.Error())
		}
	}
	return m, ok, err
}
