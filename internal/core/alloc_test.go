//go:build !race

package core

import (
	"testing"
)

// Allocation regression tests for the greedyMatch hot path. The free
// lists make steady-state recursion allocation-free: once the pools are
// warm, a full greedyMatch round — every greedyMatchAt recursion step,
// its list partitions, trims and result buffers — must not touch the
// heap. Excluded under -race, where the detector's instrumentation
// perturbs allocation accounting.

// warmGreedy runs enough rounds to fill every pool to its steady-state
// size (buffer capacities grow monotonically and the recursion is
// deterministic, so a few rounds suffice).
func warmGreedy(mx *matcher, h *matchList) {
	for i := 0; i < 5; i++ {
		s, c := mx.greedyMatch(h)
		mx.putPairs(s)
		mx.putPairs(c)
	}
}

func TestGreedyMatchAllocationFree(t *testing.T) {
	for _, tc := range []struct {
		name      string
		injective bool
	}{
		{"maxcard", false},
		{"maxcard11", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := randomInstance(3, 12, 120)
			mx := in.newMatcher(tc.injective)
			h := mx.initialList()
			if len(h.nodes) == 0 {
				t.Fatal("degenerate fixture: empty matching list")
			}
			warmGreedy(mx, h)
			avg := testing.AllocsPerRun(50, func() {
				s, c := mx.greedyMatch(h)
				mx.putPairs(s)
				mx.putPairs(c)
			})
			if avg != 0 {
				t.Fatalf("steady-state greedyMatch allocates %.2f allocs/run, want 0", avg)
			}
		})
	}
}

func TestGreedyMatchAllocationFreePickBest(t *testing.T) {
	// The compMaxSim pick path additionally consults the memoized
	// weight rows; after the rows are built the recursion must still be
	// allocation-free.
	in := weightedRandomInstance(5, 10, 90)
	mx := in.newMatcher(false)
	mx.pickBest = true
	h := mx.initialList()
	if len(h.nodes) == 0 {
		t.Fatal("degenerate fixture: empty matching list")
	}
	warmGreedy(mx, h)
	avg := testing.AllocsPerRun(50, func() {
		s, c := mx.greedyMatch(h)
		mx.putPairs(s)
		mx.putPairs(c)
	})
	if avg != 0 {
		t.Fatalf("steady-state pickBest greedyMatch allocates %.2f allocs/run, want 0", avg)
	}
}
