package core

import (
	"math"
	"sort"

	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
)

// This file implements compMaxSim and compMaxSim1−1 (Section 5,
// "Approximation algorithms for SPH and SPH1−1"). The algorithms borrow
// Halldórsson's weighted-independent-set trick [16]: candidate pairs
// lighter than W/(n1·n2) are dropped (W being the heaviest pair), the rest
// are partitioned into ⌈log₂(n1·n2)⌉ weight buckets [W/2^i, W/2^(i-1)),
// compMaxCard's machinery runs on each bucket's induced matching list, and
// the mapping with the best qualSim wins. Each pair's weight is
// w(v)·mat(v, σ(v)) — the summand of the qualSim numerator.

// simBuckets partitions the admissible pairs of the initial matching list
// into weight buckets. Bucket i holds pairs with weight in
// (W/2^(i+1), W/2^i]; pairs below the W/(n1·n2) floor are discarded.
// Pair weights come from the matcher's memoized rows, so each
// w(v)·mat(v, u) is computed once across the scan, the bucket
// assignment, and every pickCandidate of the bucket runs.
func (mx *matcher) simBuckets(h *matchList) []*matchList {
	in := mx.in
	maxW := 0.0
	for _, v := range h.nodes {
		set := h.good[v]
		row := mx.weightRow(v)
		for u := set.Next(0); u >= 0; u = set.Next(u + 1) {
			if w := row[u]; w > maxW {
				maxW = w
			}
		}
	}
	if maxW <= 0 {
		return nil
	}
	n := in.G1.NumNodes() * in.G2.NumNodes()
	if n < 2 {
		n = 2
	}
	floor := maxW / float64(n)
	nb := int(math.Ceil(math.Log2(float64(n)))) + 1
	buckets := make([]*matchList, nb)
	for _, v := range h.nodes {
		set := h.good[v]
		row := mx.weightRow(v)
		for u := set.Next(0); u >= 0; u = set.Next(u + 1) {
			w := row[u]
			if w < floor || w <= 0 {
				continue
			}
			i := 0
			if w < maxW {
				i = int(math.Floor(math.Log2(maxW / w)))
			}
			if i >= nb {
				i = nb - 1
			}
			if buckets[i] == nil {
				buckets[i] = newMatchList(mx.n1)
			}
			b := buckets[i]
			if b.good[v] == nil {
				b.add(v, bitset.New(mx.n2))
			}
			b.good[v].Add(u)
		}
	}
	out := buckets[:0]
	for _, b := range buckets {
		if b != nil {
			out = append(out, b)
		}
	}
	return out
}

// runSim evaluates the bucket runs plus one run over the full list, greedily
// augments each candidate mapping, and returns the mapping with the highest
// qualSim. Both additions are conservative: an extra candidate mapping and a
// pass that only ever adds weight can only raise the max, so the
// O(log²(n1·n2)/(n1·n2)) guarantee of the bucket scheme is preserved.
func (mx *matcher) runSim(h *matchList) Mapping {
	in := mx.in
	best := Mapping{}
	bestQ := -1.0
	consider := func(m Mapping) {
		m = mx.augment(m)
		if q := in.QualSim(m); q > bestQ {
			bestQ = q
			best = m
		}
	}
	for _, b := range mx.simBuckets(h) {
		consider(mx.run(b))
	}
	consider(mx.run(h))
	return best
}

// augment extends a valid mapping with additional admissible pairs in
// descending weight order, keeping the edge-to-path and (if configured)
// injectivity constraints intact. The bucket partition deliberately keeps
// weights homogeneous within a run, so a bucket winner often leaves
// compatible heavy/light pairs from other buckets on the table; picking
// them up never decreases qualSim.
func (mx *matcher) augment(m Mapping) Mapping {
	in := mx.in
	reach := in.Reach()
	out := m.Clone()
	used := make(map[graph.NodeID]bool, len(out))
	for _, u := range out {
		used[u] = true
	}
	type cand struct {
		v, u graph.NodeID
		w    float64
	}
	var cands []cand
	for v := 0; v < in.G1.NumNodes(); v++ {
		mx.poll()
		vv := graph.NodeID(v)
		if _, ok := out[vv]; ok {
			continue
		}
		selfLoop := in.G1.HasEdge(vv, vv)
		for u := 0; u < mx.n2; u++ {
			uu := graph.NodeID(u)
			if !in.admissible(vv, uu) {
				continue
			}
			if selfLoop && !reach.Reachable(uu, uu) {
				continue
			}
			cands = append(cands, cand{v: vv, u: uu, w: in.pairWeight(vv, uu)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		if cands[i].v != cands[j].v {
			return cands[i].v < cands[j].v
		}
		return cands[i].u < cands[j].u
	})
	for _, c := range cands {
		if _, ok := out[c.v]; ok {
			continue
		}
		if mx.injective && used[c.u] {
			continue
		}
		ok := true
		for _, v2 := range in.G1.Post(c.v) {
			if u2, in2 := out[v2]; in2 && !reach.Reachable(c.u, u2) {
				ok = false
				break
			}
		}
		if ok {
			for _, v0 := range in.G1.Prev(c.v) {
				if u0, in0 := out[v0]; in0 && !reach.Reachable(u0, c.u) {
					ok = false
					break
				}
			}
		}
		if ok {
			out[c.v] = c.u
			used[c.u] = true
		}
	}
	return out
}

// CompMaxSim is algorithm compMaxSim: an approximation for the maximum
// overall similarity problem SPH with the same performance guarantee as
// compMaxCard (Theorem 5.1) and an extra log(|V1|·|V2|) time factor.
// Candidate picks inside greedyMatch are weight-greedy here — the choice
// of u from H[v].good is free in Fig. 4, and the heaviest pair is the
// natural choice when maximising Σ w(v)·mat(v, σ(v)).
func (in *Instance) CompMaxSim() Mapping {
	mx := in.newMatcher(false)
	mx.pickBest = true
	return mx.runSim(mx.initialList())
}

// CompMaxSim11 is compMaxSim1−1, the injective variant for SPH1−1.
func (in *Instance) CompMaxSim11() Mapping {
	mx := in.newMatcher(true)
	mx.pickBest = true
	return mx.runSim(mx.initialList())
}
