package core

import (
	"testing"
	"testing/quick"

	"graphmatch/internal/closure"
)

// Tier-equivalence quickchecks: the candidate-sparse index tier is a
// pure representation change, so every algorithm must return
// bit-identical mappings — not merely mappings of equal quality — under
// either tier. The search is deterministic given the index answers, so
// any divergence means one tier answered a reachability query wrong.

// sameMapping reports exact equality of two mappings.
func sameMapping(a, b Mapping) bool {
	if len(a) != len(b) {
		return false
	}
	for v, u := range a {
		if b[v] != u {
			return false
		}
	}
	return true
}

// tierPair clones one random instance into a dense-tier and a
// sparse-tier copy sharing nothing but the (recomputed, identical)
// closure.
func tierPair(mk func() *Instance) (dense, sparse *Instance) {
	dense, sparse = mk(), mk()
	dense.SetIndex(closure.NewRows(dense.Reach()))
	sparse.SetIndex(closure.NewCompIndex(sparse.Reach()))
	return dense, sparse
}

func TestTierEquivalence(t *testing.T) {
	type algo struct {
		name string
		run  func(*Instance) Mapping
	}
	algos := []algo{
		{"maxcard", func(in *Instance) Mapping { return in.CompMaxCard() }},
		{"maxcard11", func(in *Instance) Mapping { return in.CompMaxCard11() }},
		{"maxsim", func(in *Instance) Mapping { return in.CompMaxSim() }},
		{"maxsim11", func(in *Instance) Mapping { return in.CompMaxSim11() }},
	}
	f := func(seed int64) bool {
		for _, mk := range []func() *Instance{
			func() *Instance { return randomInstance(seed, 8, 24) },
			func() *Instance { return weightedRandomInstance(seed, 7, 20) },
		} {
			for _, a := range algos {
				dense, sparse := tierPair(mk)
				md, ms := a.run(dense), a.run(sparse)
				if !sameMapping(md, ms) {
					t.Logf("seed %d %s: dense %v, sparse %v", seed, a.name, md, ms)
					return false
				}
				if err := dense.CheckMapping(md, a.name == "maxcard11" || a.name == "maxsim11"); err != nil {
					t.Logf("seed %d %s: invalid mapping: %v", seed, a.name, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTierEquivalencePartitionedAndFiltered(t *testing.T) {
	// The Appendix B partitioned variants and the filtered decision
	// procedures consult the index through different paths
	// (partitionComponents shares it across sub-instances; the filter
	// reads fan counts); they too must be tier-blind.
	for seed := int64(0); seed < 25; seed++ {
		dense, sparse := tierPair(func() *Instance { return randomInstance(seed, 8, 24) })
		if md, ms := dense.PartitionedMaxCard(), sparse.PartitionedMaxCard(); !sameMapping(md, ms) {
			t.Fatalf("seed %d: PartitionedMaxCard diverges: %v vs %v", seed, md, ms)
		}
		md, okd := dense.DecideFiltered()
		ms, oks := sparse.DecideFiltered()
		if okd != oks || !sameMapping(md, ms) {
			t.Fatalf("seed %d: DecideFiltered diverges: (%v,%v) vs (%v,%v)", seed, md, okd, ms, oks)
		}
		md11, okd11 := dense.Decide11Filtered()
		ms11, oks11 := sparse.Decide11Filtered()
		if okd11 != oks11 || !sameMapping(md11, ms11) {
			t.Fatalf("seed %d: Decide11Filtered diverges: (%v,%v) vs (%v,%v)", seed, md11, okd11, ms11, oks11)
		}
	}
}

func TestAutoIndexTierSelection(t *testing.T) {
	// A small instance must auto-build the dense tier (the fast path
	// existing callers rely on); the sparse tier only takes over via
	// catalog injection or the auto threshold on genuinely large graphs.
	in := randomInstance(1, 6, 18)
	if tier := in.Index().Tier(); tier != closure.TierDense {
		t.Fatalf("small instance auto-built %q, want %q", tier, closure.TierDense)
	}
}
