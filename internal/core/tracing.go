package core

import (
	"context"

	"graphmatch/internal/trace"
)

// This file attaches the matcher's existing SearchStats counters to the
// request trace. Instrumentation happens only at the entry points — one
// context lookup and one span per algorithm invocation — never inside
// greedyMatch or the backtracking recursion, so the hot path stays
// allocation-free whether or not tracing is enabled (pinned by
// TestGreedyMatchAllocationFree). The per-phase counters the span
// carries (initial pairs, trim rounds, greedy calls, conflict removals,
// augmentation) are the ones the matcher already maintains via the
// cancelStep-polled recursion, so tracing adds no new work to it.

// startMatchSpan opens the per-algorithm span under the request's trace
// and returns it with an end func that stamps the matcher's search
// stats and closes the span. The end func is safe to defer before
// recoverAbort: on a deadline abort it still runs (during unwinding),
// so the recorded trace shows how far the search got before it was
// cancelled.
func startMatchSpan(ctx context.Context, name string) (trace.Span, func(*matcher)) {
	sp := trace.SpanFromContext(ctx).Child(name)
	if !sp.Active() {
		return sp, func(*matcher) {}
	}
	return sp, func(mx *matcher) {
		st := mx.stats
		sp.SetInt("initial_pairs", int64(st.InitialPairs))
		sp.SetInt("outer_iterations", int64(st.OuterIterations))
		sp.SetInt("greedy_calls", int64(st.GreedyCalls))
		sp.SetInt("max_depth", int64(st.MaxDepth))
		sp.SetInt("conflicts_removed", int64(st.ConflictPairsRemoved))
		sp.SetInt("augmented_pairs", int64(st.AugmentedPairs))
		sp.SetInt("poll_steps", int64(mx.steps))
		sp.End()
	}
}
