package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// randInstance builds a moderately dense random instance that keeps
// the matcher busy long enough for mid-flight cancellation to land.
func randInstance(t testing.TB, n1, n2 int, seed int64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g1 := graph.New(n1)
	for v := 0; v < n1; v++ {
		g1.AddNode(fmt.Sprintf("l%d", rng.Intn(4)))
	}
	for v := 0; v < n1; v++ {
		for w := 0; w < n1; w++ {
			if v != w && rng.Float64() < 0.25 {
				g1.AddEdge(graph.NodeID(v), graph.NodeID(w))
			}
		}
	}
	g1.Finish()
	g2 := graph.New(n2)
	for u := 0; u < n2; u++ {
		g2.AddNode(fmt.Sprintf("l%d", rng.Intn(4)))
	}
	for u := 0; u < n2; u++ {
		for w := 0; w < n2; w++ {
			if u != w && rng.Float64() < 0.15 {
				g2.AddEdge(graph.NodeID(u), graph.NodeID(w))
			}
		}
	}
	g2.Finish()
	return NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.9)
}

func TestExpiredContextRejectedUpFront(t *testing.T) {
	in := randInstance(t, 6, 20, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := in.CompMaxCardCtx(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("CompMaxCardCtx(expired) err = %v, want ErrDeadline", err)
	}
	if _, err := in.CompMaxSim11Ctx(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("CompMaxSim11Ctx(expired) err = %v, want ErrDeadline", err)
	}
	if _, _, err := in.DecideCtx(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("DecideCtx(expired) err = %v, want ErrDeadline", err)
	}
	// The wrapped cause must survive for logs.
	_, err := in.CompMaxCardCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestBackgroundContextMatchesPlainCalls(t *testing.T) {
	in := randInstance(t, 8, 30, 2)
	want := in.CompMaxCard()
	got, err := in.CompMaxCardCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("ctx variant diverged: %v vs %v", got, want)
	}
	wd, wok := in.Decide()
	gd, gok, err := in.DecideCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gok != wok || gd.String() != wd.String() {
		t.Fatalf("DecideCtx diverged: (%v,%v) vs (%v,%v)", gd, gok, wd, wok)
	}
}

// TestCancelPoisonsNothing is the mid-recursion cancellation
// quickcheck demanded by the issue: cancel a run mid-flight at random
// points, then verify a fresh identical request still returns
// bit-identical results — the abandoned matcher left no shared state
// behind.
func TestCancelPoisonsNothing(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := randInstance(t, 10, 60, 100+seed)
		want := in.CompMaxCard().String()
		wantSim := in.CompMaxSim().String()
		for trial := 0; trial < 6; trial++ {
			ctx, cancel := context.WithCancel(context.Background())
			go func(d time.Duration) {
				time.Sleep(d)
				cancel()
			}(time.Duration(trial*50) * time.Microsecond)
			m, err := in.CompMaxCardCtx(ctx)
			if err != nil {
				if !errors.Is(err, ErrDeadline) {
					t.Fatalf("unexpected error: %v", err)
				}
			} else if m.String() != want {
				t.Fatalf("seed %d trial %d: uncancelled run diverged", seed, trial)
			}
			cancel()
		}
		// After all the aborted runs, the same instance must still
		// produce the original answers.
		if got := in.CompMaxCard().String(); got != want {
			t.Fatalf("seed %d: post-cancel CompMaxCard diverged: %s vs %s", seed, got, want)
		}
		if got := in.CompMaxSim().String(); got != wantSim {
			t.Fatalf("seed %d: post-cancel CompMaxSim diverged: %s vs %s", seed, got, wantSim)
		}
	}
}

// TestDecideCancelReturnsPromptly pins that a cancelled exponential
// decision stops quickly instead of pinning the goroutine until the
// search space is exhausted.
func TestDecideCancelReturnsPromptly(t *testing.T) {
	// A pattern demanding an injective total mapping with abundant
	// near-matches forces deep backtracking.
	in := randInstance(t, 14, 48, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := in.Decide11Ctx(ctx)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, ErrDeadline) {
		t.Fatalf("unexpected error: %v", err)
	}
	// Generous bound: either it finished fast legitimately, or the
	// cancellation cut it off — both well under a second.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled decide ran %v", elapsed)
	}
}

func TestReachCtxCancelledBuildRetries(t *testing.T) {
	in := randInstance(t, 4, 40, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := in.ReachCtx(ctx); !errors.Is(err, ErrDeadline) {
		t.Fatalf("ReachCtx(expired) err = %v, want ErrDeadline", err)
	}
	// The failed build must not have cached anything: a live context
	// succeeds.
	r, err := in.ReachCtx(context.Background())
	if err != nil || r == nil {
		t.Fatalf("retry failed: %v", err)
	}
}
