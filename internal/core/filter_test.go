package core

import (
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func TestFilterPreservesDecision(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 7, 10)
		_, plain := in.Decide()
		_, filtered := in.DecideFiltered()
		if plain != filtered {
			return false
		}
		_, plain11 := in.Decide11()
		_, filtered11 := in.Decide11Filtered()
		return plain11 == filtered11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterWitnessesValid(t *testing.T) {
	gp, g, mate := figure1()
	in := NewInstance(gp, g, mate, 0.6)
	m, ok := in.DecideFiltered()
	if !ok {
		t.Fatal("Fig. 1 should remain p-hom under filtering")
	}
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	m11, ok := in.Decide11Filtered()
	if !ok {
		t.Fatal("Fig. 1 should remain 1-1 p-hom under filtering")
	}
	if err := in.CheckMapping(m11, true); err != nil {
		t.Fatal(err)
	}
}

func TestFilterPrunesDeadEnds(t *testing.T) {
	// Pattern hub with 3 children; data has a decoy hub whose label
	// matches but which reaches only one node. The injective filter must
	// remove the decoy candidate.
	g1 := graph.FromEdgeList([]string{"hub", "a", "b", "c"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}})
	g2 := graph.FromEdgeList(
		[]string{"hub", "a", "b", "c", "hub", "a"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {4, 5}},
	)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	cands := [][]graph.NodeID{
		{0, 4}, // pattern hub: real hub and decoy hub
		{1, 5}, // a
		{2},    // b
		{3},    // c
	}
	st := in.filterCandidates(cands, true)
	if st.before != 6 {
		t.Fatalf("before = %d, want 6", st.before)
	}
	// The decoy hub (node 4, fan-out 1 < outdeg 3) must be gone.
	for _, u := range cands[0] {
		if u == 4 {
			t.Fatal("decoy hub survived the injective filter")
		}
	}
	if st.after >= st.before {
		t.Fatalf("filter removed nothing: %+v", st)
	}
}

func TestFilterKeepsLeafCandidates(t *testing.T) {
	// Isolated pattern nodes (no edges) must keep all candidates: the
	// filter has no degree evidence against them.
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g2 := graph.FromEdgeList([]string{"x", "x"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	cands := [][]graph.NodeID{{0, 1}}
	in.filterCandidates(cands, true)
	if len(cands[0]) != 2 {
		t.Fatalf("filter dropped leaf candidates: %v", cands[0])
	}
}

func TestFilterRowsAndFallbackAgree(t *testing.T) {
	// The filter uses materialised closure rows when an instance has
	// them and per-candidate Reach probes when it does not; both paths
	// must prune identically and preserve the decision.
	for seed := int64(0); seed < 12; seed++ {
		cold := randomInstance(seed, 5, 9)
		warm := randomInstance(seed, 5, 9)
		warm.Index() // force the indexed fast path
		mc, okc := cold.DecideFiltered()
		mw, okw := warm.DecideFiltered()
		if okc != okw {
			t.Fatalf("seed %d: cold=%v warm=%v", seed, okc, okw)
		}
		if len(mc) != len(mw) {
			t.Fatalf("seed %d: witness sizes differ: %v vs %v", seed, mc, mw)
		}
		for v, u := range mc {
			if mw[v] != u {
				t.Fatalf("seed %d: witnesses differ: %v vs %v", seed, mc, mw)
			}
		}
	}
}
