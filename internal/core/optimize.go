package core

import (
	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// This file implements the Appendix B optimisation techniques.
//
// Partitioning G1: nodes with no admissible candidate can never join a
// mapping, so they are removed; the remainder may fall apart into
// disconnected components, and by Proposition 1 the union of per-component
// maximum p-hom mappings is a maximum p-hom mapping for the whole graph.
// Components shrink n, and since the guarantee log²n/n degrades as n grows
// (beyond e²), partitioning improves both running time and match quality.
// The proposition relies on mappings of disjoint components being freely
// combinable, which fails for 1-1 mappings (two components might claim the
// same data node), so the partitioned algorithms are p-hom only.
//
// Compressing G2+: every SCC of G2 is a clique in the closure, so it can
// collapse into one bag-labelled node with a self-loop (graph G2* of
// Fig. 10(b)). Matching runs against the much smaller G2* and lifts back.

// remapMatrix presents a similarity matrix for an induced subgraph of G1
// whose node IDs were renumbered.
type remapMatrix struct {
	base simmatrix.Matrix
	orig []graph.NodeID // new ID in the subgraph → original ID in G1
}

func (r remapMatrix) Score(v, u graph.NodeID) float64 {
	return r.base.Score(r.orig[v], u)
}

// partitionComponents removes unmatchable G1 nodes and returns the
// connected components of the remaining induced subgraph, each as its own
// sub-instance sharing this instance's G2 and closure.
func (in *Instance) partitionComponents() []struct {
	sub  *Instance
	orig []graph.NodeID
} {
	reach := in.Reach()
	idx := in.Index()
	var keep []graph.NodeID
	for v := 0; v < in.G1.NumNodes(); v++ {
		vv := graph.NodeID(v)
		selfLoop := in.G1.HasEdge(vv, vv)
		for u := 0; u < in.G2.NumNodes(); u++ {
			uu := graph.NodeID(u)
			if in.admissible(vv, uu) && (!selfLoop || reach.Reachable(uu, uu)) {
				keep = append(keep, vv)
				break
			}
		}
	}
	pruned, prunedOrig := in.G1.InducedSubgraph(keep)
	var out []struct {
		sub  *Instance
		orig []graph.NodeID
	}
	for _, comp := range pruned.ConnectedComponents() {
		sub, subOrig := pruned.InducedSubgraph(comp)
		orig := make([]graph.NodeID, len(subOrig))
		for i, p := range subOrig {
			orig[i] = prunedOrig[p]
		}
		out = append(out, struct {
			sub  *Instance
			orig []graph.NodeID
		}{
			sub:  &Instance{G1: sub, G2: in.G2, Mat: remapMatrix{base: in.Mat, orig: orig}, Xi: in.Xi, reach: reach, idx: idx},
			orig: orig,
		})
	}
	return out
}

// bestCandidate returns the admissible u with maximal mat(v, u), or
// Invalid when none exists.
func (in *Instance) bestCandidate(v graph.NodeID) graph.NodeID {
	reach := in.Reach()
	selfLoop := in.G1.HasEdge(v, v)
	best, bestScore := graph.Invalid, -1.0
	for u := 0; u < in.G2.NumNodes(); u++ {
		uu := graph.NodeID(u)
		if !in.admissible(v, uu) {
			continue
		}
		if selfLoop && !reach.Reachable(uu, uu) {
			continue
		}
		if s := in.Mat.Score(v, uu); s > bestScore {
			bestScore, best = s, uu
		}
	}
	return best
}

// PartitionedMaxCard runs CompMaxCard independently per connected
// component of the pruned pattern (Appendix B) and unions the results.
// Singleton components take their best candidate directly.
func (in *Instance) PartitionedMaxCard() Mapping {
	return in.partitioned(func(sub *Instance) Mapping { return sub.CompMaxCard() })
}

// PartitionedMaxSim is the partitioned variant of CompMaxSim; qualSim is
// additive over nodes, so Proposition 1 carries over.
func (in *Instance) PartitionedMaxSim() Mapping {
	return in.partitioned(func(sub *Instance) Mapping { return sub.CompMaxSim() })
}

func (in *Instance) partitioned(solve func(*Instance) Mapping) Mapping {
	result := Mapping{}
	for _, part := range in.partitionComponents() {
		if part.sub.G1.NumNodes() == 1 {
			orig := part.orig[0]
			if u := in.bestCandidate(orig); u != graph.Invalid {
				result[orig] = u
			}
			continue
		}
		sub := solve(part.sub)
		for v, u := range sub {
			result[part.orig[v]] = u
		}
	}
	return result
}

// componentMatrix scores a pattern node against a compressed component as
// the best score over the component's members.
type componentMatrix struct {
	base    simmatrix.Matrix
	members [][]graph.NodeID
}

func (cm componentMatrix) Score(v, c graph.NodeID) float64 {
	best := 0.0
	for _, u := range cm.members[c] {
		if s := cm.base.Score(v, u); s > best {
			best = s
		}
	}
	return best
}

// CompressedMaxCard runs compMaxCard against the compressed closure G2*
// (Appendix B, Fig. 10(b)) and lifts the component-level mapping back to
// concrete G2 nodes. Because G2* is transitively closed, no further
// closure computation is needed; the lift picks, for every matched pattern
// node, the best-scoring member of its component. p-hom only — bags absorb
// arbitrarily many pattern nodes, which a 1-1 mapping would need capacity
// accounting for.
func (in *Instance) CompressedMaxCard() Mapping {
	comp := closure.Compress(in.G2)
	cm := componentMatrix{base: in.Mat, members: comp.Members}
	sub := &Instance{G1: in.G1, G2: comp.Star, Mat: cm, Xi: in.Xi}
	m := sub.CompMaxCard()
	lifted := make(Mapping, len(m))
	for v, c := range m {
		best, bestScore := graph.Invalid, -1.0
		for _, u := range comp.Members[c] {
			if !in.admissible(v, u) {
				continue
			}
			if s := in.Mat.Score(v, u); s > bestScore {
				bestScore, best = s, u
			}
		}
		if best != graph.Invalid {
			lifted[v] = best
		}
	}
	return lifted
}
