package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func TestCompMaxSimExample33(t *testing.T) {
	// Example 3.3's headline: under the similarity metric the optimal 1-1
	// mapping covers {A, v2} only, with qualSim = 0.7, although the
	// cardinality-optimal mapping covers four nodes.
	in, _, v2 := example33()
	m := in.CompMaxSim11()
	if err := in.CheckMapping(m, true); err != nil {
		t.Fatal(err)
	}
	if got := in.QualSim(m); got < 0.699 || got > 0.701 {
		t.Fatalf("qualSim = %v, want 0.7 (σ=%v)", got, m)
	}
	if _, ok := m[v2]; !ok {
		t.Fatalf("σs should include the heavyweight v2; got %v", m)
	}
	// Cross-check against the exact optimum.
	exact := in.ExactMaxSim(true)
	if got, want := in.QualSim(m), in.QualSim(Mapping(exact)); got < want-1e-9 {
		t.Fatalf("approximation %v below exact optimum %v", got, want)
	}
}

func TestCompMaxSimPrefersHeavyNodes(t *testing.T) {
	// Two disconnected pattern nodes compete for one data node; the
	// heavier one must win under qualSim.
	g1 := graph.FromEdgeList([]string{"x", "x"}, nil)
	g1.SetWeight(0, 1)
	g1.SetWeight(1, 10)
	g2 := graph.FromEdgeList([]string{"x"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	m := in.CompMaxSim11()
	if err := in.CheckMapping(m, true); err != nil {
		t.Fatal(err)
	}
	if _, ok := m[1]; !ok {
		t.Fatalf("heavy node should be matched, got %v", m)
	}
}

func TestCompMaxSimValidityRandom(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 8, 12)
		m := in.CompMaxSim()
		if in.CheckMapping(m, false) != nil {
			return false
		}
		m11 := in.CompMaxSim11()
		return in.CheckMapping(m11, true) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompMaxSimNeverBeatsExact(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed, 6, 8)
		// Random weights spread over an order of magnitude to exercise
		// the bucket partition.
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		for v := 0; v < in.G1.NumNodes(); v++ {
			in.G1.SetWeight(graph.NodeID(v), 0.5+rng.Float64()*9.5)
		}
		approx := in.QualSim(in.CompMaxSim())
		exact := in.QualSim(in.ExactMaxSim(false))
		if approx > exact+1e-9 {
			return false
		}
		a11 := in.QualSim(in.CompMaxSim11())
		e11 := in.QualSim(in.ExactMaxSim(true))
		return a11 <= e11+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompMaxSimAtLeastAsGoodAsCardOnSim(t *testing.T) {
	// runSim also evaluates the plain compMaxCard run, so its qualSim can
	// never fall below compMaxCard's.
	f := func(seed int64) bool {
		in := randomInstance(seed, 7, 10)
		simQ := in.QualSim(in.CompMaxSim())
		cardQ := in.QualSim(in.CompMaxCard())
		return simQ >= cardQ-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompMaxSimUniformWeightsFigure1(t *testing.T) {
	gp, g, mate := figure1()
	in := NewInstance(gp, g, mate, 0.5)
	m := in.CompMaxSim()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	// Full mapping exists; with uniform weights qualSim is maximised by
	// the best-scoring full assignment: (0.7+1.0+0.7+0.6+0.8+0.85)/6.
	want := (0.7 + 1.0 + 0.7 + 0.6 + 0.8 + 0.85) / 6
	if got := in.QualSim(m); got < want-1e-9 {
		t.Fatalf("qualSim = %v, want ≥ %v", got, want)
	}
}

func TestCompMaxSimEmptyPattern(t *testing.T) {
	g1 := graph.New(0)
	g2 := graph.FromEdgeList([]string{"x"}, nil)
	in := NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if m := in.CompMaxSim(); len(m) != 0 {
		t.Fatalf("empty pattern should yield empty mapping, got %v", m)
	}
}

func TestNaiveMaxSimValid(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := randomInstance(seed, 6, 8)
		m := in.NaiveMaxSim()
		if err := in.CheckMapping(m, false); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m11 := in.NaiveMaxSim11()
		if err := in.CheckMapping(m11, true); err != nil {
			t.Fatalf("seed %d (1-1): %v", seed, err)
		}
	}
}

func TestNaiveMaxCard11Valid(t *testing.T) {
	for seed := int64(20); seed < 35; seed++ {
		in := randomInstance(seed, 6, 8)
		m := in.NaiveMaxCard11()
		if err := in.CheckMapping(m, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMatchesConvention(t *testing.T) {
	gp, g, mate := figure1()
	in := NewInstance(gp, g, mate, 0.5)
	m := in.CompMaxCard()
	if !Matches(in, m, MetricCard, 0.75) {
		t.Error("full mapping should match at threshold 0.75 under qualCard")
	}
	if Matches(in, Mapping{}, MetricCard, 0.75) {
		t.Error("empty mapping should not match")
	}
	if MetricCard.String() != "qualCard" || MetricSim.String() != "qualSim" {
		t.Error("metric names wrong")
	}
	if Metric(99).String() != "unknown" {
		t.Error("unknown metric name wrong")
	}
	if Matches(in, m, Metric(99), 0.1) {
		t.Error("unknown metric should never match")
	}
}
