// Package product implements the approximation-factor-preserving (AFP)
// reduction of Theorem 5.1: an SPH/CPH instance (G1, G2, mat, ξ) maps to a
// weighted independent set instance on the complement of a product graph
// G = G1 × G2+, such that cliques of G (equivalently, independent sets of
// its complement Gc) correspond exactly to p-hom mappings from subgraphs of
// G1 to G2 (Claim 2 in Appendix A).
//
// The construction is the function f of the reduction; MappingFromClique is
// the function g. The naive approximation algorithms of Section 5 run
// Boppana–Halldórsson on this product; internal/core's compMaxCard operates
// directly on the matching list instead but simulates the same procedure,
// and tests in internal/core cross-check the two.
package product

import (
	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/wis"
)

// Pair is a candidate match [v, u]: node v of G1 against node u of G2.
type Pair struct {
	V graph.NodeID // node in G1
	U graph.NodeID // node in G2
}

// Product is the compatibility graph of an instance. Node i of G stands
// for Pairs[i]; an edge {i, j} means the two candidate matches can coexist
// in one p-hom mapping. A clique therefore is a p-hom mapping from the
// induced subgraph of G1 on the covered nodes.
type Product struct {
	Pairs []Pair
	// G is the compatibility graph; node weights are w(v)·mat(v, u), so a
	// maximum-weight clique maximises the qualSim numerator and (with unit
	// mat and weights) a maximum clique maximises qualCard.
	G *wis.Graph
	// Injective records whether 1-1 compatibility was enforced (pairs
	// sharing the same u are incompatible).
	Injective bool
}

// Build constructs the product graph of an instance. reach must be the
// transitive-closure index of g2 (computed by the caller so it can be
// shared across constructions). Conditions, following the proof of
// Theorem 5.1:
//
//	node [v, u] exists iff mat(v, u) ≥ ξ, and — strengthening the paper's
//	edge-level condition (b) so that singleton cliques remain sound — if
//	(v, v) ∈ E1 then u must reach itself by a nonempty path in G2;
//
//	edge {[v1, u1], [v2, u2]} exists iff v1 ≠ v2, and in both directions
//	an edge in G1 implies reachability in G2: (v1, v2) ∈ E1 ⇒ u1 ⇝ u2 and
//	(v2, v1) ∈ E1 ⇒ u2 ⇝ u1; for injective products additionally u1 ≠ u2.
func Build(g1, g2 *graph.Graph, mat simmatrix.Matrix, xi float64, injective bool, reach *closure.Reach) *Product {
	var pairs []Pair
	for v := 0; v < g1.NumNodes(); v++ {
		vv := graph.NodeID(v)
		selfLoop := g1.HasEdge(vv, vv)
		for u := 0; u < g2.NumNodes(); u++ {
			uu := graph.NodeID(u)
			if mat.Score(vv, uu) < xi {
				continue
			}
			if selfLoop && !reach.Reachable(uu, uu) {
				continue
			}
			pairs = append(pairs, Pair{V: vv, U: uu})
		}
	}
	pg := wis.NewGraph(len(pairs))
	for i := range pairs {
		pg.SetWeight(i, g1.Weight(pairs[i].V)*mat.Score(pairs[i].V, pairs[i].U))
	}
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			if compatible(g1, reach, pairs[i], pairs[j], injective) {
				pg.AddEdge(i, j)
			}
		}
	}
	return &Product{Pairs: pairs, G: pg, Injective: injective}
}

func compatible(g1 *graph.Graph, reach *closure.Reach, a, b Pair, injective bool) bool {
	if a.V == b.V {
		return false
	}
	if injective && a.U == b.U {
		return false
	}
	if g1.HasEdge(a.V, b.V) && !reach.Reachable(a.U, b.U) {
		return false
	}
	if g1.HasEdge(b.V, a.V) && !reach.Reachable(b.U, a.U) {
		return false
	}
	return true
}

// MappingFromClique is the function g of the AFP-reduction: it converts a
// clique of the product graph (given as node indices into Pairs) into the
// corresponding partial mapping from G1 to G2.
func (p *Product) MappingFromClique(clique []int) map[graph.NodeID]graph.NodeID {
	m := make(map[graph.NodeID]graph.NodeID, len(clique))
	for _, i := range clique {
		m[p.Pairs[i].V] = p.Pairs[i].U
	}
	return m
}

// MaxCardClique approximates a maximum clique of the product graph with
// ISRemoval (Fig. 9), yielding the naive CPH approximation of Section 5.
func (p *Product) MaxCardClique() []int {
	return p.G.ISRemoval()
}

// MaxSimClique approximates a maximum-weight clique by running
// Halldórsson's weighted independent set algorithm on the complement
// graph, yielding the naive SPH approximation of Section 5.
func (p *Product) MaxSimClique() []int {
	return p.G.Complement().MaxWeightIS()
}

// ExactMaxCardClique computes an exact maximum clique (exponential; small
// instances only). It anchors correctness and approximation-quality tests.
func (p *Product) ExactMaxCardClique() []int {
	return p.G.ExactMaxClique()
}

// ExactMaxSimClique computes an exact maximum-weight clique via exact
// maximum-weight independent set on the complement (exponential).
func (p *Product) ExactMaxSimClique() []int {
	return p.G.Complement().ExactMaxWeightIS()
}
