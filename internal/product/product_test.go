package product

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func randomPair(seed int64, n1, n2 int) (*graph.Graph, *graph.Graph, simmatrix.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c"}
	mk := func(n int) *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g.Finish()
		return g
	}
	g1 := mk(n1)
	g2 := mk(n2)
	return g1, g2, simmatrix.NewLabelEquality(g1, g2)
}

// validMapping re-checks the p-hom conditions directly (independent of the
// core package, to avoid an import cycle in spirit).
func validMapping(g1, g2 *graph.Graph, mat simmatrix.Matrix, xi float64, m map[graph.NodeID]graph.NodeID, injective bool) bool {
	reach := closure.Compute(g2)
	if injective {
		seen := map[graph.NodeID]bool{}
		for _, u := range m {
			if seen[u] {
				return false
			}
			seen[u] = true
		}
	}
	for v, u := range m {
		if mat.Score(v, u) < xi {
			return false
		}
		for _, v2 := range g1.Post(v) {
			if u2, ok := m[v2]; ok && !reach.Reachable(u, u2) {
				return false
			}
		}
	}
	return true
}

func TestProductCliquesAreMappings(t *testing.T) {
	f := func(seed int64) bool {
		g1, g2, mat := randomPair(seed, 5, 7)
		reach := closure.Compute(g2)
		for _, injective := range []bool{false, true} {
			p := Build(g1, g2, mat, 0.5, injective, reach)
			clique := p.ExactMaxCardClique()
			if !p.G.IsClique(clique) {
				return false
			}
			m := p.MappingFromClique(clique)
			if len(m) != len(clique) {
				return false // distinct v per clique node
			}
			if !validMapping(g1, g2, mat, 0.5, m, injective) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProductApproxCliquesAreMappings(t *testing.T) {
	f := func(seed int64) bool {
		g1, g2, mat := randomPair(seed, 6, 8)
		reach := closure.Compute(g2)
		p := Build(g1, g2, mat, 0.5, false, reach)
		m1 := p.MappingFromClique(p.MaxCardClique())
		m2 := p.MappingFromClique(p.MaxSimClique())
		return validMapping(g1, g2, mat, 0.5, m1, false) &&
			validMapping(g1, g2, mat, 0.5, m2, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestProductSelfLoopNodeCondition(t *testing.T) {
	// Pattern node with a self-loop only pairs with self-reaching data
	// nodes, even as a singleton (strengthened condition (b)).
	g1 := graph.FromEdgeList([]string{"a"}, [][2]int{{0, 0}})
	g2 := graph.FromEdgeList([]string{"a", "a"}, [][2]int{{0, 1}}) // acyclic
	mat := simmatrix.NewLabelEquality(g1, g2)
	p := Build(g1, g2, mat, 0.5, false, closure.Compute(g2))
	if len(p.Pairs) != 0 {
		t.Fatalf("no pair should survive, got %v", p.Pairs)
	}
	g3 := graph.FromEdgeList([]string{"a"}, [][2]int{{0, 0}}) // data self-loop
	p2 := Build(g1, g3, mat, 0.5, false, closure.Compute(g3))
	if len(p2.Pairs) != 1 {
		t.Fatalf("self-loop data node should pair, got %v", p2.Pairs)
	}
}

func TestProductInjectiveEdges(t *testing.T) {
	// Two pattern nodes sharing one candidate: compatible in the plain
	// product, incompatible in the injective product.
	g1 := graph.FromEdgeList([]string{"x", "x"}, nil)
	g2 := graph.FromEdgeList([]string{"x"}, nil)
	mat := simmatrix.NewLabelEquality(g1, g2)
	reach := closure.Compute(g2)
	plain := Build(g1, g2, mat, 0.5, false, reach)
	if plain.G.NumEdges() != 1 {
		t.Fatalf("plain product edges = %d, want 1", plain.G.NumEdges())
	}
	inj := Build(g1, g2, mat, 0.5, true, reach)
	if inj.G.NumEdges() != 0 {
		t.Fatalf("injective product edges = %d, want 0", inj.G.NumEdges())
	}
	if !inj.Injective {
		t.Fatal("Injective flag not set")
	}
}

func TestProductEdgeConstraint(t *testing.T) {
	// Pattern edge a→b; data has a→b (path) but not b→a. Pairs (a,a),(b,b)
	// compatible; pairs (a,b),(b,a) would need reversed reachability.
	g1 := graph.FromEdgeList([]string{"n", "n"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"n", "n"}, [][2]int{{0, 1}})
	mat := simmatrix.NewLabelEquality(g1, g2)
	p := Build(g1, g2, mat, 0.5, false, closure.Compute(g2))
	// Pairs: (0,0),(0,1),(1,0),(1,1). Compatible: {(0,0),(1,1)} only,
	// since edge 0→1 in G1 needs u0 ⇝ u1 in G2.
	idx := func(v, u graph.NodeID) int {
		for i, pr := range p.Pairs {
			if pr.V == v && pr.U == u {
				return i
			}
		}
		t.Fatalf("pair (%d,%d) missing", v, u)
		return -1
	}
	if !p.G.HasEdge(idx(0, 0), idx(1, 1)) {
		t.Error("compatible pair not connected")
	}
	if p.G.HasEdge(idx(0, 1), idx(1, 0)) {
		t.Error("incompatible pair connected (needs path 1⇝0)")
	}
	if p.G.HasEdge(idx(0, 0), idx(1, 0)) {
		t.Error("pairs sharing... (0,0)-(1,0) needs path 0⇝0, absent")
	}
}

func TestProductWeights(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g1.SetWeight(0, 3)
	g2 := graph.FromEdgeList([]string{"x"}, nil)
	mat := simmatrix.NewSparse()
	mat.Set(0, 0, 0.8)
	p := Build(g1, g2, mat, 0.5, false, closure.Compute(g2))
	if len(p.Pairs) != 1 {
		t.Fatalf("pairs = %v", p.Pairs)
	}
	if got := p.G.Weight(0); got < 2.4-1e-9 || got > 2.4+1e-9 {
		t.Fatalf("product weight = %v, want 2.4 (= 3 × 0.8)", got)
	}
}
