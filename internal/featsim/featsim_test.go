package featsim

import (
	"testing"

	"graphmatch/internal/graph"
	"graphmatch/internal/syngen"
)

func TestIdenticalGraphsScoreOne(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	if got := Similarity(g, g); got < 0.999 {
		t.Fatalf("self similarity = %v, want 1", got)
	}
}

func TestDisjointLabelsScoreZero(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"x", "y"}, [][2]int{{0, 1}})
	if got := Similarity(g1, g2); got != 0 {
		t.Fatalf("disjoint similarity = %v, want 0", got)
	}
}

func TestExtractCountsPaths(t *testing.T) {
	// Chain a→b→c with pathLen 2: paths a/b/c, b/c, c — one per start.
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	bag := Extract(g, 2, 0)
	if len(bag) != 3 {
		t.Fatalf("distinct paths = %d, want 3 (%v)", len(bag), bag)
	}
}

func TestExtractBudgetCap(t *testing.T) {
	// Complete-ish graph explodes in walks; the cap must bound work.
	n := 12
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("x")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	g.Finish()
	bag := Extract(g, 5, 50)
	total := 0.0
	for _, c := range bag {
		total += c
	}
	if total > float64(n*50) {
		t.Fatalf("cap breached: %v paths charged", total)
	}
}

func TestEmptyBags(t *testing.T) {
	if Cosine(Bag{}, Bag{}) != 1 {
		t.Error("two empty bags should score 1")
	}
	if Cosine(Bag{1: 1}, Bag{}) != 0 {
		t.Error("empty vs nonempty should score 0")
	}
}

func TestCosineRange(t *testing.T) {
	a := Bag{1: 2, 2: 1}
	b := Bag{1: 1, 3: 4}
	got := Cosine(a, b)
	if got <= 0 || got >= 1 {
		t.Fatalf("partial overlap cosine = %v, want (0,1)", got)
	}
	if Cosine(a, b) != Cosine(b, a) {
		t.Error("cosine must be symmetric")
	}
}

func TestPathStretchingDegradesFeatureSimilarity(t *testing.T) {
	// The paper's point: edge→path noise rewrites the path bag, so the
	// feature-based score collapses while p-hom still matches (see
	// integration tests). High noise must score the derived graph lower
	// than a noise-free copy.
	clean := syngen.Generate(syngen.Config{M: 40, NoisePercent: 0, NumData: 1, Seed: 5})
	noisy := syngen.Generate(syngen.Config{M: 40, NoisePercent: 40, NumData: 1, Seed: 5})
	simClean := Similarity(clean.G1, clean.G2s[0])
	simNoisy := Similarity(noisy.G1, noisy.G2s[0])
	if simClean < 0.999 {
		t.Fatalf("noise-free copy similarity = %v, want 1", simClean)
	}
	if simNoisy >= simClean {
		t.Fatalf("noise should reduce feature similarity: %v >= %v", simNoisy, simClean)
	}
}
