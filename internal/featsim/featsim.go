// Package featsim implements a feature-based graph-similarity baseline in
// the style of the bag-of-paths model (Joshi et al. [18] in the paper).
// The paper's conclusion names the comparison against feature-based
// approaches as future work; this package supplies it.
//
// A graph is represented by the multiset of label paths of bounded length
// it contains; two graphs are similar when their path bags overlap
// (cosine similarity over path counts). As the paper observes — citing
// [25, 30] — the approach "does not observe global structural
// connectivity": stretched navigation paths change the bag wholesale,
// which is exactly what the Exp-2 noise model does, so bag-of-paths
// degrades where p-hom holds steady.
package featsim

import (
	"hash/fnv"
	"math"

	"graphmatch/internal/graph"
)

// DefaultLength is the path length (edge count) used when a non-positive
// length is requested. Length-2 paths (three labels) balance specificity
// and robustness on the workloads here.
const DefaultLength = 2

// DefaultCap bounds the number of paths charged to any single start node,
// keeping the extraction polynomial on dense graphs.
const DefaultCap = 10000

// Bag is a sparse multiset of hashed label paths.
type Bag map[uint64]float64

// Extract builds the bag of label paths with exactly pathLen edges
// (falling back to shorter paths from nodes that cannot extend) for g.
// Paths are walks — they may revisit nodes, as the model's simplicity
// dictates — but each start node contributes at most cap paths.
func Extract(g *graph.Graph, pathLen, cap int) Bag {
	if pathLen <= 0 {
		pathLen = DefaultLength
	}
	if cap <= 0 {
		cap = DefaultCap
	}
	bag := make(Bag)
	labels := make([]string, 0, pathLen+1)
	for v := 0; v < g.NumNodes(); v++ {
		budget := cap
		labels = labels[:0]
		extend(g, graph.NodeID(v), pathLen, labels, bag, &budget)
	}
	return bag
}

func extend(g *graph.Graph, v graph.NodeID, left int, labels []string, bag Bag, budget *int) {
	if *budget <= 0 {
		return
	}
	labels = append(labels, g.Label(v))
	post := g.Post(v)
	if left == 0 || len(post) == 0 {
		bag[hashPath(labels)]++
		*budget--
		return
	}
	for _, w := range post {
		extend(g, w, left-1, labels, bag, budget)
		if *budget <= 0 {
			return
		}
	}
}

func hashPath(labels []string) uint64 {
	h := fnv.New64a()
	for i, l := range labels {
		if i > 0 {
			h.Write([]byte{'/'})
		}
		h.Write([]byte(l))
	}
	return h.Sum64()
}

// Cosine is the cosine similarity of two bags in [0, 1]; empty bags score
// 1 against each other and 0 against anything else.
func Cosine(a, b Bag) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for k, x := range a {
		na += x * x
		if y, ok := b[k]; ok {
			dot += x * y
		}
	}
	for _, y := range b {
		nb += y * y
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Similarity extracts bags with the default parameters and returns their
// cosine — the graph-level score the feature-based approach matches on.
func Similarity(g1, g2 *graph.Graph) float64 {
	return Cosine(Extract(g1, DefaultLength, DefaultCap), Extract(g2, DefaultLength, DefaultCap))
}
