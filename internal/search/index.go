package search

import (
	"sort"
	"sync"

	"graphmatch/internal/catalog"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// patchDelta is one committed graph patch awaiting incremental folding
// into a record's summary: g is prev with p applied.
type patchDelta struct {
	prev, g *graph.Graph
	p       *graph.Patch
}

// rec is the index's record of one registered graph. The summary is
// built lazily (once, outside the index lock — summarising shingles a
// whole graph, which must not stall registration or concurrent
// searches) and maintained incrementally afterwards: committed patches
// queue as deltas under Index.mu and the next search folds them into
// the refcounted intermediates, re-shingling only changed nodes.
type rec struct {
	name string

	// Guarded by Index.mu: the latest graph, the queue of unfolded
	// patch deltas, whether the summary build has been published, and
	// whether sum.Hashes live in the postings map.
	g       *graph.Graph
	pending []patchDelta
	built   bool
	indexed bool

	// buildMu serialises summary builds and delta folds for this
	// record. counts (distinct shingle hash → number of contributing
	// nodes) and degs (raw degree-bucket counts) are touched only by
	// the buildMu holder; sum is written by the buildMu holder and
	// published under Index.mu, where Candidates snapshots it.
	buildMu sync.Mutex
	sum     Summary
	counts  map[uint64]int32
	degs    [HistBuckets]int
}

// Index is the stage-1 candidate index over a catalog's registered
// graphs: an inverted index from content shingle hashes to graphs,
// plus per-graph structural signatures. It is safe for concurrent use
// and stays coherent with the catalog through the mutation hook
// NewIndex installs — Register, Remove and Apply reach the index
// synchronously, in mutation order.
type Index struct {
	mu       sync.Mutex
	recs     map[string]*rec
	postings map[uint64][]*rec
}

// NewIndex builds an index over cat and keeps it coherent by
// installing the catalog's mutation hook (replacing any previous hook;
// the catalog supports one observer, and the serving engine creates
// exactly one index per catalog). Graphs already registered are
// replayed into the index during installation, so attaching to a
// populated catalog is equivalent to having observed every Register.
func NewIndex(cat *catalog.Catalog) *Index {
	ix := &Index{
		recs:     make(map[string]*rec),
		postings: make(map[uint64][]*rec),
	}
	cat.SetMutationHook(ix.onMutate)
	return ix
}

// onMutate is the catalog hook. It runs under the catalog lock, so it
// only does map bookkeeping — the expensive summary work is deferred
// to the next search. A patch against the graph the record already
// tracks queues an incremental delta; anything else (register, replace,
// a patch whose base we never saw) drops the record and starts fresh.
func (ix *Index) onMutate(name string, g *graph.Graph, m catalog.Mutation) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.recs[name]
	if m.Removed {
		if old != nil {
			ix.dropLocked(old)
		}
		return
	}
	if old != nil {
		if old.g == g {
			return // idempotent replay of a graph already indexed
		}
		if m.Patch != nil && old.g == m.Prev {
			old.pending = append(old.pending, patchDelta{prev: m.Prev, g: g, p: m.Patch})
			old.g = g
			return
		}
		ix.dropLocked(old)
	}
	ix.recs[name] = &rec{name: name, g: g}
}

// dropLocked removes r from the record map and, when its hashes were
// committed, from every posting list. Callers hold ix.mu.
func (ix *Index) dropLocked(r *rec) {
	if ix.recs[r.name] == r {
		delete(ix.recs, r.name)
	}
	if !r.indexed {
		return
	}
	r.indexed = false
	for _, h := range r.sum.Hashes {
		ix.removePostingLocked(h, r)
	}
}

// removePostingLocked deletes r from the posting list of h. Callers
// hold ix.mu.
func (ix *Index) removePostingLocked(h uint64, r *rec) {
	list := ix.postings[h]
	for i, other := range list {
		if other == r {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(ix.postings, h)
	} else {
		ix.postings[h] = list
	}
}

// ensure brings r's summary up to date: a full summarizeCounted on
// first use, an incremental fold of the queued patch deltas afterwards.
// Edge-only patches touch no shingles — the hash sample and postings
// are reused as-is and only the degree signature shifts; content
// changes re-shingle exactly the written nodes and diff the bottom-k
// sample against the postings. Folding from refcounts keeps the result
// bit-identical to a fresh Summarize of the current graph.
func (ix *Index) ensure(r *rec) {
	r.buildMu.Lock()
	defer r.buildMu.Unlock()

	ix.mu.Lock()
	alive := ix.recs[r.name] == r
	g := r.g
	pending := r.pending
	r.pending = nil
	built := r.built
	ix.mu.Unlock()
	if !alive {
		return
	}

	if !built {
		sum, counts, degs := summarizeCounted(g)
		ix.mu.Lock()
		if ix.recs[r.name] == r {
			if !r.indexed {
				for _, h := range sum.Hashes {
					ix.postings[h] = append(ix.postings[h], r)
				}
				r.indexed = true
			}
			r.sum, r.counts, r.degs = sum, counts, degs
			r.built = true
		}
		ix.mu.Unlock()
		return
	}
	if len(pending) == 0 {
		return
	}

	contentChanged := false
	for _, pd := range pending {
		prevN := pd.prev.NumNodes()

		// Degree histogram: only endpoints of changed edges and new
		// nodes can shift buckets.
		touched := make(map[graph.NodeID]struct{}, 2*(len(pd.p.DelEdges)+len(pd.p.AddEdges)))
		for _, e := range pd.p.DelEdges {
			touched[e[0]] = struct{}{}
			touched[e[1]] = struct{}{}
		}
		for _, e := range pd.p.AddEdges {
			touched[e[0]] = struct{}{}
			touched[e[1]] = struct{}{}
		}
		for v := prevN; v < pd.g.NumNodes(); v++ {
			touched[graph.NodeID(v)] = struct{}{}
		}
		for v := range touched {
			if int(v) < prevN {
				r.degs[degreeBucket(pd.prev.Degree(v))]--
			}
			r.degs[degreeBucket(pd.g.Degree(v))]++
		}

		// Shingle refcounts: re-shingle only the nodes whose text
		// changed — SetContent targets and added nodes.
		for v := range contentTargets(pd) {
			if int(v) < prevN {
				for h := range simmatrix.ContentSet(pd.prev, v, 0) {
					if r.counts[h]--; r.counts[h] == 0 {
						delete(r.counts, h)
					}
				}
			}
			for h := range simmatrix.ContentSet(pd.g, v, 0) {
				r.counts[h]++
			}
			contentChanged = true
		}
	}

	newSum := Summary{Sig: signatureFromCounts(g.NumNodes(), g.NumEdges(), r.degs)}
	if !contentChanged {
		newSum.Hashes, newSum.Total = r.sum.Hashes, r.sum.Total
		ix.mu.Lock()
		if ix.recs[r.name] == r {
			r.sum = newSum
		}
		ix.mu.Unlock()
		return
	}
	newSum.Total, newSum.Hashes = hashesFromCounts(r.counts)
	added, removed := diffSorted(r.sum.Hashes, newSum.Hashes)
	ix.mu.Lock()
	if ix.recs[r.name] == r {
		if r.indexed {
			for _, h := range removed {
				ix.removePostingLocked(h, r)
			}
			for _, h := range added {
				ix.postings[h] = append(ix.postings[h], r)
			}
		}
		r.sum = newSum
	}
	ix.mu.Unlock()
}

// contentTargets collects the nodes whose content text the patch may
// have changed: SetContent targets plus every added node.
func contentTargets(pd patchDelta) map[graph.NodeID]struct{} {
	out := make(map[graph.NodeID]struct{}, len(pd.p.SetContent)+len(pd.p.AddNodes))
	for v := pd.prev.NumNodes(); v < pd.g.NumNodes(); v++ {
		out[graph.NodeID(v)] = struct{}{}
	}
	for _, cu := range pd.p.SetContent {
		out[cu.Node] = struct{}{}
	}
	return out
}

// diffSorted compares two sorted hash slices and returns the values
// only in b (added) and only in a (removed).
func diffSorted(a, b []uint64) (added, removed []uint64) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			removed = append(removed, a[i])
			i++
		default:
			added = append(added, b[j])
			j++
		}
	}
	removed = append(removed, a[i:]...)
	added = append(added, b[j:]...)
	return added, removed
}

// Len reports the number of graphs currently indexed.
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.recs)
}

// Candidates scores the query summary against every indexed graph and
// returns the survivors of pol, ordered deterministically: by score
// descending, ties by name ascending (name order alone under
// Policy.Brute). The search operates on a snapshot of the registry —
// graphs registered or patched while a search is scoring are picked up
// by the next search; graphs removed concurrently are skipped.
func (ix *Index) Candidates(pattern Summary, pol Policy) ([]Candidate, Stats) {
	// Snapshot the records, then build or refresh summaries outside the
	// index lock: summarising is pure per record, and rec.buildMu makes
	// concurrent searches cooperate instead of duplicating work.
	// Per-record commits matter because the catalog's mutation hook
	// runs under the catalog lock and takes ix.mu: a whole-catalog
	// commit under one hold would stall every catalog operation, match
	// traffic included, behind the first search.
	ix.mu.Lock()
	snapshot := make([]*rec, 0, len(ix.recs))
	for _, r := range ix.recs {
		snapshot = append(snapshot, r)
	}
	ix.mu.Unlock()
	for _, r := range snapshot {
		ix.ensure(r)
	}

	// Gather overlaps, re-validate the snapshot and capture each
	// record's summary under one more short hold — summaries are
	// republished by later folds, so scoring reads the captured values,
	// which are consistent with the postings gathered in the same hold.
	// A record removed after this point may still be scored — stage 2
	// resolves every candidate through the catalog and drops vanished
	// ones, so coherence holds.
	ix.mu.Lock()
	overlap := make(map[*rec]int)
	if !pol.Brute {
		for _, h := range pattern.Hashes {
			for _, r := range ix.postings[h] {
				overlap[r]++
			}
		}
	}
	alive := snapshot[:0]
	sums := make([]Summary, 0, len(snapshot))
	for _, r := range snapshot {
		if ix.recs[r.name] == r {
			alive = append(alive, r)
			sums = append(sums, r.sum)
		}
	}
	ix.mu.Unlock()

	stats := Stats{Graphs: len(alive)}
	var cands []Candidate
	for i, r := range alive {
		if pol.Brute {
			cands = append(cands, Candidate{Name: r.name})
			continue
		}
		sum := sums[i]
		cont, res := scoreContent(pattern, sum, overlap[r])
		if pol.MinResemblance > 0 && cont < pol.MinResemblance {
			stats.PrunedScore++
			continue
		}
		ss := pattern.Sig.StructSim(sum.Sig)
		cands = append(cands, Candidate{
			Name:        r.name,
			Score:       (1-structWeight)*cont + structWeight*ss,
			Containment: cont,
			Resemblance: res,
			StructSim:   ss,
			Overlap:     overlap[r],
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Name < cands[j].Name
	})
	// Brute force means every graph: the cap never applies to it.
	if !pol.Brute && pol.MaxCandidates > 0 && len(cands) > pol.MaxCandidates {
		stats.PrunedCap = len(cands) - pol.MaxCandidates
		cands = cands[:pol.MaxCandidates:pol.MaxCandidates]
	}
	stats.Candidates = len(cands)
	return cands, stats
}
