package search

import (
	"sort"
	"sync"

	"graphmatch/internal/catalog"
	"graphmatch/internal/graph"
)

// rec is the index's record of one registered graph. The summary is
// built lazily (once, outside the index lock — summarising shingles a
// whole graph, which must not stall registration or concurrent
// searches) and its hashes are committed into the postings under the
// lock afterwards.
type rec struct {
	name string
	g    *graph.Graph

	once sync.Once
	sum  Summary

	// indexed records that sum.Hashes live in the postings map; it is
	// guarded by Index.mu, and set only after once has completed, so a
	// remover reading sum under the lock observes a fully built summary.
	indexed bool
}

// Index is the stage-1 candidate index over a catalog's registered
// graphs: an inverted index from content shingle hashes to graphs,
// plus per-graph structural signatures. It is safe for concurrent use
// and stays coherent with the catalog through the mutation hook
// NewIndex installs — Register and Remove reach the index
// synchronously, in mutation order.
type Index struct {
	mu       sync.Mutex
	recs     map[string]*rec
	postings map[uint64][]*rec
}

// NewIndex builds an index over cat and keeps it coherent by
// installing the catalog's mutation hook (replacing any previous hook;
// the catalog supports one observer, and the serving engine creates
// exactly one index per catalog). Graphs already registered are
// replayed into the index during installation, so attaching to a
// populated catalog is equivalent to having observed every Register.
func NewIndex(cat *catalog.Catalog) *Index {
	ix := &Index{
		recs:     make(map[string]*rec),
		postings: make(map[uint64][]*rec),
	}
	cat.SetMutationHook(ix.onMutate)
	return ix
}

// onMutate is the catalog hook. It runs under the catalog lock, so it
// only does map bookkeeping — the expensive summary build is deferred
// to the next search.
func (ix *Index) onMutate(name string, g *graph.Graph, removed bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	old := ix.recs[name]
	if removed {
		if old != nil {
			ix.dropLocked(old)
		}
		return
	}
	if old != nil {
		if old.g == g {
			return // idempotent replay of a graph already indexed
		}
		ix.dropLocked(old)
	}
	ix.recs[name] = &rec{name: name, g: g}
}

// dropLocked removes r from the record map and, when its hashes were
// committed, from every posting list. Callers hold ix.mu.
func (ix *Index) dropLocked(r *rec) {
	if ix.recs[r.name] == r {
		delete(ix.recs, r.name)
	}
	if !r.indexed {
		return
	}
	r.indexed = false
	for _, h := range r.sum.Hashes {
		list := ix.postings[h]
		for i, other := range list {
			if other == r {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(ix.postings, h)
		} else {
			ix.postings[h] = list
		}
	}
}

// Len reports the number of graphs currently indexed.
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.recs)
}

// Candidates scores the query summary against every indexed graph and
// returns the survivors of pol, ordered deterministically: by score
// descending, ties by name ascending (name order alone under
// Policy.Brute). The search operates on a snapshot of the registry —
// graphs registered while a search is scoring are picked up by the
// next search; graphs removed concurrently are skipped.
func (ix *Index) Candidates(pattern Summary, pol Policy) ([]Candidate, Stats) {
	// Snapshot the records, then build missing summaries outside the
	// lock: Summarize is pure, and rec.once makes concurrent searches
	// cooperate instead of duplicating work.
	ix.mu.Lock()
	snapshot := make([]*rec, 0, len(ix.recs))
	for _, r := range ix.recs {
		snapshot = append(snapshot, r)
	}
	ix.mu.Unlock()
	for _, r := range snapshot {
		r.once.Do(func() { r.sum = Summarize(r.g) })
		// Commit this record's postings under its own short lock hold —
		// unless it was removed while building, in which case its hashes
		// must stay out (the remover already ran and saw indexed ==
		// false). Per-record commits matter because the catalog's
		// mutation hook runs under the catalog lock and takes ix.mu: a
		// whole-catalog commit under one hold would stall every catalog
		// operation, match traffic included, behind the first search.
		ix.mu.Lock()
		if ix.recs[r.name] == r && !r.indexed {
			for _, h := range r.sum.Hashes {
				ix.postings[h] = append(ix.postings[h], r)
			}
			r.indexed = true
		}
		ix.mu.Unlock()
	}

	// Gather overlaps and re-validate the snapshot under one more short
	// hold; the per-candidate scoring below runs outside the lock (it
	// reads only immutable summaries). A record removed after this point
	// may still be scored — stage 2 resolves every candidate through the
	// catalog and drops vanished ones, so coherence holds.
	ix.mu.Lock()
	overlap := make(map[*rec]int)
	if !pol.Brute {
		for _, h := range pattern.Hashes {
			for _, r := range ix.postings[h] {
				overlap[r]++
			}
		}
	}
	alive := snapshot[:0]
	for _, r := range snapshot {
		if ix.recs[r.name] == r {
			alive = append(alive, r)
		}
	}
	ix.mu.Unlock()

	stats := Stats{Graphs: len(alive)}
	var cands []Candidate
	for _, r := range alive {
		if pol.Brute {
			cands = append(cands, Candidate{Name: r.name})
			continue
		}
		cont, res := scoreContent(pattern, r.sum, overlap[r])
		if pol.MinResemblance > 0 && cont < pol.MinResemblance {
			stats.PrunedScore++
			continue
		}
		ss := pattern.Sig.StructSim(r.sum.Sig)
		cands = append(cands, Candidate{
			Name:        r.name,
			Score:       (1-structWeight)*cont + structWeight*ss,
			Containment: cont,
			Resemblance: res,
			StructSim:   ss,
			Overlap:     overlap[r],
		})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		return cands[i].Name < cands[j].Name
	})
	// Brute force means every graph: the cap never applies to it.
	if !pol.Brute && pol.MaxCandidates > 0 && len(cands) > pol.MaxCandidates {
		stats.PrunedCap = len(cands) - pol.MaxCandidates
		cands = cands[:pol.MaxCandidates:pol.MaxCandidates]
	}
	stats.Candidates = len(cands)
	return cands, stats
}
