package search

import (
	"container/heap"
	"sort"
)

// Hit is one scored result in a top-k fold. Score is the primary rank
// key (higher is better), Tie the secondary; equal (Score, Tie) pairs
// order by Name ascending, which is what makes a search over a fixed
// catalog return the same ranking on every run regardless of the order
// stage 2 completes in.
type Hit struct {
	Name    string
	Score   float64
	Tie     float64
	Payload any
}

// Better reports whether a ranks strictly ahead of b.
func Better(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Tie != b.Tie {
		return a.Tie > b.Tie
	}
	return a.Name < b.Name
}

// TopK folds a stream of hits into the best k, deterministically.
// Create one with NewTopK; it is not safe for concurrent use (the
// engine folds from a single goroutine as batch results arrive).
type TopK struct {
	k  int
	hs hitHeap
}

// NewTopK returns a fold keeping the best k hits; k <= 0 keeps
// everything.
func NewTopK(k int) *TopK { return &TopK{k: k} }

// Push offers one hit to the fold.
func (t *TopK) Push(h Hit) {
	if t.k > 0 && len(t.hs) == t.k {
		// Full: h must beat the current worst (the heap root) to enter.
		if !Better(h, t.hs[0]) {
			return
		}
		t.hs[0] = h
		heap.Fix(&t.hs, 0)
		return
	}
	heap.Push(&t.hs, h)
}

// Len reports the hits currently held.
func (t *TopK) Len() int { return len(t.hs) }

// Ranked returns the held hits best-first. The fold remains usable.
func (t *TopK) Ranked() []Hit {
	out := make([]Hit, len(t.hs))
	copy(out, t.hs)
	sort.Slice(out, func(i, j int) bool { return Better(out[i], out[j]) })
	return out
}

// hitHeap is a min-heap on rank order: the root is the worst held hit,
// so a full TopK evicts in O(log k).
type hitHeap []Hit

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return Better(h[j], h[i]) }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
