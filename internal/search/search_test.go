package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"graphmatch/internal/catalog"
	"graphmatch/internal/graph"
)

// contentGraph builds a tiny graph whose nodes carry the given texts
// as content (one node per text, chained by edges so degrees are
// non-trivial).
func contentGraph(texts ...string) *graph.Graph {
	g := graph.New(len(texts))
	for i, txt := range texts {
		g.AddNodeFull(graph.Node{Label: fmt.Sprintf("n%d", i), Weight: 1, Content: txt})
	}
	for i := 1; i < len(texts); i++ {
		g.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
	}
	g.Finish()
	return g
}

func TestSignatureOf(t *testing.T) {
	g := contentGraph("a b c d", "e f g h", "i j k l")
	sig := SignatureOf(g)
	if sig.Nodes != 3 || sig.Edges != 2 {
		t.Fatalf("sig = %+v", sig)
	}
	total := 0.0
	for _, f := range sig.DegHist {
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("histogram sums to %v, want 1", total)
	}
	if got := sig.StructSim(sig); got != 1 {
		t.Fatalf("self StructSim = %v, want 1", got)
	}
	empty := SignatureOf(graph.New(0))
	if empty.Nodes != 0 {
		t.Fatalf("empty signature = %+v", empty)
	}
	// Disjoint histograms score 0; an empty graph's zero histogram
	// against a real one stays within [0, 1].
	if s := empty.StructSim(sig); s < 0 || s > 1 {
		t.Fatalf("empty-vs-real StructSim = %v outside [0,1]", s)
	}
}

func TestSummarizeExactWhenSmall(t *testing.T) {
	g := contentGraph(
		"alpha beta gamma delta epsilon zeta",
		"alpha beta gamma delta theta iota",
	)
	sum := Summarize(g)
	if sum.Total != len(sum.Hashes) {
		t.Fatalf("small graph sampled: total %d, hashes %d", sum.Total, len(sum.Hashes))
	}
	if sum.Total == 0 {
		t.Fatal("no shingles extracted")
	}
	if rate := sum.sampleRate(); rate != 1 {
		t.Fatalf("sampleRate = %v, want 1", rate)
	}
	for i := 1; i < len(sum.Hashes); i++ {
		if sum.Hashes[i-1] >= sum.Hashes[i] {
			t.Fatal("hashes not sorted distinct")
		}
	}
}

// TestScoreContentEdgeCases pins the divide-by-zero guards: empty
// pattern, empty graph, both empty — mirroring the shingle package's
// Resemblance/Containment conventions.
func TestScoreContentEdgeCases(t *testing.T) {
	empty := Summary{}
	full := Summarize(contentGraph("some words to shingle here now"))
	if c, r := scoreContent(empty, empty, 0); c != 1 || r != 1 {
		t.Fatalf("empty/empty = %v, %v; want 1, 1", c, r)
	}
	if c, r := scoreContent(empty, full, 0); c != 1 || r != 0 {
		t.Fatalf("empty pattern = %v, %v; want 1, 0", c, r)
	}
	if c, r := scoreContent(full, empty, 0); c != 0 || r != 0 {
		t.Fatalf("empty graph = %v, %v; want 0, 0", c, r)
	}
	if c, r := scoreContent(full, full, len(full.Hashes)); c != 1 || r != 1 {
		t.Fatalf("self = %v, %v; want 1, 1", c, r)
	}
	// Overlap beyond the smaller set is clamped, never above 1.
	if c, r := scoreContent(full, full, 10*len(full.Hashes)); c > 1 || r > 1 {
		t.Fatalf("clamped = %v, %v; want ≤ 1", c, r)
	}
}

func newIndexOver(t *testing.T, graphs map[string]*graph.Graph) (*catalog.Catalog, *Index) {
	t.Helper()
	cat := catalog.New(0)
	for name, g := range graphs {
		if err := cat.Register(name, g); err != nil {
			t.Fatal(err)
		}
	}
	return cat, NewIndex(cat)
}

func TestCandidatesContainmentExact(t *testing.T) {
	shared := "the quick brown fox jumps over the lazy dog again and again"
	_, ix := newIndexOver(t, map[string]*graph.Graph{
		"same":  contentGraph(shared),
		"half":  contentGraph(shared + " with entirely different trailing words appended here making overlap partial"),
		"other": contentGraph("completely unrelated text about graph homomorphism and matching"),
	})
	q := Summarize(contentGraph(shared))
	cands, stats := ix.Candidates(q, Policy{})
	if stats.Graphs != 3 || len(cands) != 3 {
		t.Fatalf("stats %+v, %d candidates", stats, len(cands))
	}
	byName := map[string]Candidate{}
	for _, c := range cands {
		byName[c.Name] = c
	}
	if c := byName["same"]; c.Containment != 1 {
		t.Fatalf("same containment = %v, want 1", c.Containment)
	}
	if c := byName["half"]; c.Containment != 1 {
		// All pattern shingles appear in "half" (it extends the text).
		t.Fatalf("half containment = %v, want 1", c.Containment)
	}
	if c := byName["other"]; c.Containment != 0 {
		t.Fatalf("other containment = %v, want 0", c.Containment)
	}
	if byName["same"].Resemblance <= byName["half"].Resemblance {
		t.Fatal("resemblance should prefer the identical graph over the superset")
	}
	if cands[len(cands)-1].Name != "other" {
		t.Fatalf("worst candidate = %q, want other", cands[len(cands)-1].Name)
	}
}

func TestCandidatesPruning(t *testing.T) {
	shared := "one two three four five six seven eight nine ten"
	_, ix := newIndexOver(t, map[string]*graph.Graph{
		"hit":  contentGraph(shared),
		"miss": contentGraph("unrelated content entirely disjoint from the query text here"),
	})
	q := Summarize(contentGraph(shared))

	cands, stats := ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "hit" || stats.PrunedScore != 1 {
		t.Fatalf("cands %v, stats %+v", cands, stats)
	}

	// MinResemblance 0 keeps everything — the equivalence guarantee.
	cands, stats = ix.Candidates(q, Policy{})
	if len(cands) != 2 || stats.PrunedScore != 0 {
		t.Fatalf("exact policy pruned: %v, %+v", cands, stats)
	}

	cands, stats = ix.Candidates(q, Policy{MaxCandidates: 1})
	if len(cands) != 1 || cands[0].Name != "hit" || stats.PrunedCap != 1 {
		t.Fatalf("cap: cands %v, stats %+v", cands, stats)
	}

	cands, _ = ix.Candidates(q, Policy{Brute: true})
	if len(cands) != 2 || cands[0].Name != "hit" || cands[1].Name != "miss" {
		t.Fatalf("brute order: %v", cands)
	}
}

// TestIndexCoherence drives Register/Remove through the catalog and
// checks the index tracks them: removed graphs disappear, re-registered
// names serve the new graph.
func TestIndexCoherence(t *testing.T) {
	cat, ix := newIndexOver(t, map[string]*graph.Graph{
		"a": contentGraph("text of graph a which stays registered throughout"),
		"b": contentGraph("text of graph b which will be removed midway"),
	})
	q := Summarize(contentGraph("text of graph b which will be removed midway"))
	cands, _ := ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "b" {
		t.Fatalf("before remove: %v", cands)
	}
	if err := cat.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Fatalf("index holds %d records after remove, want 1", ix.Len())
	}
	cands, stats := ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 0 {
		t.Fatalf("after remove: %v", cands)
	}
	if stats.Graphs != 1 {
		t.Fatalf("stats.Graphs = %d, want 1", stats.Graphs)
	}
	// Re-register the name with different content: the index must serve
	// the new graph, not the stale postings.
	if err := cat.Register("b", contentGraph("completely new content for the reused name")); err != nil {
		t.Fatal(err)
	}
	cands, _ = ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 0 {
		t.Fatalf("stale postings survived re-register: %v", cands)
	}
	q2 := Summarize(contentGraph("completely new content for the reused name"))
	cands, _ = ix.Candidates(q2, Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "b" {
		t.Fatalf("new content not indexed: %v", cands)
	}
}

// TestIndexAttachesToPopulatedCatalog checks the hook replay: an index
// created after graphs were registered still sees them.
func TestIndexAttachesToPopulatedCatalog(t *testing.T) {
	cat := catalog.New(0)
	if err := cat.Register("pre", contentGraph("registered before the index existed")); err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(cat)
	if ix.Len() != 1 {
		t.Fatalf("index missed the pre-registered graph: len %d", ix.Len())
	}
	cands, _ := ix.Candidates(Summarize(contentGraph("registered before the index existed")), Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "pre" {
		t.Fatalf("candidates %v", cands)
	}
}

// TestIndexConcurrentChurn hammers the index with concurrent catalog
// mutations and searches; run under -race this pins the locking
// protocol (hook under the catalog lock, summaries built outside,
// commits re-validated).
func TestIndexConcurrentChurn(t *testing.T) {
	cat, ix := newIndexOver(t, map[string]*graph.Graph{
		"stable": contentGraph("stable graph text that never goes away during the churn"),
	})
	q := Summarize(contentGraph("stable graph text that never goes away during the churn"))

	const churners = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			name := fmt.Sprintf("churn-%d", c)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := contentGraph(fmt.Sprintf("churning content %d %d %s", c, i, "filler words to shingle"))
				_ = cat.Register(name, g)
				if rng.Intn(4) > 0 { // leave the name registered now and then
					_ = cat.Remove(name)
				}
			}
		}(c)
	}
	valid := map[string]bool{"stable": true}
	for c := 0; c < churners; c++ {
		valid[fmt.Sprintf("churn-%d", c)] = true
	}
	for i := 0; i < 200; i++ {
		cands, _ := ix.Candidates(q, Policy{})
		found := false
		for _, cand := range cands {
			if !valid[cand.Name] {
				t.Errorf("unknown candidate %q", cand.Name)
			}
			if cand.Name == "stable" {
				found = true
			}
		}
		if !found {
			t.Error("stable graph missing from candidates")
		}
	}
	close(stop)
	wg.Wait()
	// Drain the churned names; only the stable graph must remain.
	for c := 0; c < churners; c++ {
		_ = cat.Remove(fmt.Sprintf("churn-%d", c))
	}
	cands, stats := ix.Candidates(q, Policy{})
	if stats.Graphs != 1 || len(cands) != 1 || cands[0].Name != "stable" {
		t.Fatalf("after churn: cands %v, stats %+v", cands, stats)
	}
}

// randomSearchPatch builds a valid non-empty patch against g: random
// node additions (with content), content rewrites, deletes of distinct
// existing edges, and random edge additions.
func randomSearchPatch(rng *rand.Rand, g *graph.Graph, words []string) *graph.Patch {
	text := func() string {
		n := 2 + rng.Intn(5)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(parts, " ")
	}
	for {
		p := &graph.Patch{}
		for i := 0; i < rng.Intn(3); i++ {
			p.AddNodes = append(p.AddNodes, graph.Node{Label: fmt.Sprintf("n%d", rng.Intn(100)), Weight: 1, Content: text()})
		}
		total := g.NumNodes() + len(p.AddNodes)
		for i := 0; i < rng.Intn(3); i++ {
			p.SetContent = append(p.SetContent, graph.ContentUpdate{
				Node:    graph.NodeID(rng.Intn(total)),
				Content: text(),
			})
		}
		var existing [][2]graph.NodeID
		g.Edges(func(from, to graph.NodeID) bool {
			existing = append(existing, [2]graph.NodeID{from, to})
			return true
		})
		seen := map[[2]graph.NodeID]bool{}
		for i := 0; i < rng.Intn(3) && len(existing) > 0; i++ {
			e := existing[rng.Intn(len(existing))]
			if !seen[e] {
				seen[e] = true
				p.DelEdges = append(p.DelEdges, e)
			}
		}
		for i := 0; i < rng.Intn(4); i++ {
			e := [2]graph.NodeID{graph.NodeID(rng.Intn(total)), graph.NodeID(rng.Intn(total))}
			if !seen[e] {
				p.AddEdges = append(p.AddEdges, e)
			}
		}
		if !p.Empty() {
			return p
		}
	}
}

// TestIndexPatchEquivalence is the incremental-maintenance quickcheck:
// after every committed patch, candidate scoring through the live index
// (folded deltas, diffed postings) must be bit-identical to a fresh
// index built over the same graphs from scratch. Covers edge-only
// patches (shared hash sample), content rewrites, node growth, and
// mixed sequences.
func TestIndexPatchEquivalence(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"}
	trials := 60
	if testing.Short() {
		trials = 15
	}
	names := []string{"g0", "g1", "g2"}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		text := func() string {
			parts := make([]string, 3+rng.Intn(6))
			for i := range parts {
				parts[i] = words[rng.Intn(len(words))]
			}
			return strings.Join(parts, " ")
		}
		cat := catalog.New(0)
		ix := NewIndex(cat)
		for _, name := range names {
			if err := cat.Register(name, contentGraph(text(), text(), text())); err != nil {
				t.Fatal(err)
			}
		}
		query := Summarize(contentGraph(text(), text()))
		ix.Candidates(query, Policy{}) // force the initial builds so later folds are incremental

		for step := 0; step < 6; step++ {
			name := names[rng.Intn(len(names))]
			g, err := cat.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := cat.Apply(name, randomSearchPatch(rng, g, words)); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}

			got, gotStats := ix.Candidates(query, Policy{})

			fresh := catalog.New(0)
			for _, n := range names {
				cur, err := cat.Get(n)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.Register(n, cur); err != nil {
					t.Fatal(err)
				}
			}
			want, wantStats := NewIndex(fresh).Candidates(query, Policy{})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d step %d: incremental candidates diverge\n got %+v\nwant %+v", trial, step, got, want)
			}
			if gotStats != wantStats {
				t.Fatalf("trial %d step %d: stats diverge: %+v vs %+v", trial, step, gotStats, wantStats)
			}
		}
	}
}

// TestIndexEdgeOnlyPatchSharesHashes pins the cheap path: a patch that
// touches no content must leave the hash sample (and hence postings)
// physically shared, shifting only the structural signature.
func TestIndexEdgeOnlyPatchSharesHashes(t *testing.T) {
	cat := catalog.New(0)
	ix := NewIndex(cat)
	if err := cat.Register("g", contentGraph("some shared words", "more shared words", "yet more text")); err != nil {
		t.Fatal(err)
	}
	q := Summarize(contentGraph("some shared words"))
	ix.Candidates(q, Policy{})

	ix.mu.Lock()
	before := ix.recs["g"].sum
	ix.mu.Unlock()

	if _, err := cat.Apply("g", &graph.Patch{AddEdges: [][2]graph.NodeID{{0, 2}}}); err != nil {
		t.Fatal(err)
	}
	cands, _ := ix.Candidates(q, Policy{})
	if len(cands) != 1 {
		t.Fatalf("candidates %v", cands)
	}

	ix.mu.Lock()
	after := ix.recs["g"].sum
	ix.mu.Unlock()
	if len(before.Hashes) == 0 || &before.Hashes[0] != &after.Hashes[0] {
		t.Fatal("edge-only patch rebuilt the hash sample instead of sharing it")
	}
	if before.Sig == after.Sig {
		t.Fatal("edge patch left the structural signature unchanged")
	}
}

func TestTopKDeterministic(t *testing.T) {
	// Push the same hits in two different orders; the ranking must not
	// change, and ties must break by name.
	hits := []Hit{
		{Name: "c", Score: 0.5, Tie: 0.1},
		{Name: "a", Score: 0.9, Tie: 0.2},
		{Name: "b", Score: 0.9, Tie: 0.2},
		{Name: "d", Score: 0.5, Tie: 0.3},
		{Name: "e", Score: 0.1},
	}
	want := []string{"a", "b", "d"}
	for perm := 0; perm < 10; perm++ {
		rng := rand.New(rand.NewSource(int64(perm)))
		shuffled := append([]Hit(nil), hits...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		top := NewTopK(3)
		for _, h := range shuffled {
			top.Push(h)
		}
		var got []string
		for _, h := range top.Ranked() {
			got = append(got, h.Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("perm %d: ranked %v, want %v", perm, got, want)
		}
	}
}

func TestTopKUnbounded(t *testing.T) {
	top := NewTopK(0)
	for i := 0; i < 20; i++ {
		top.Push(Hit{Name: fmt.Sprintf("g%02d", i), Score: float64(i)})
	}
	ranked := top.Ranked()
	if len(ranked) != 20 {
		t.Fatalf("unbounded fold kept %d", len(ranked))
	}
	if ranked[0].Name != "g19" || ranked[19].Name != "g00" {
		t.Fatalf("order: first %q last %q", ranked[0].Name, ranked[19].Name)
	}
}
