package search

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"graphmatch/internal/catalog"
	"graphmatch/internal/graph"
)

// contentGraph builds a tiny graph whose nodes carry the given texts
// as content (one node per text, chained by edges so degrees are
// non-trivial).
func contentGraph(texts ...string) *graph.Graph {
	g := graph.New(len(texts))
	for i, txt := range texts {
		g.AddNodeFull(graph.Node{Label: fmt.Sprintf("n%d", i), Weight: 1, Content: txt})
	}
	for i := 1; i < len(texts); i++ {
		g.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
	}
	g.Finish()
	return g
}

func TestSignatureOf(t *testing.T) {
	g := contentGraph("a b c d", "e f g h", "i j k l")
	sig := SignatureOf(g)
	if sig.Nodes != 3 || sig.Edges != 2 {
		t.Fatalf("sig = %+v", sig)
	}
	total := 0.0
	for _, f := range sig.DegHist {
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("histogram sums to %v, want 1", total)
	}
	if got := sig.StructSim(sig); got != 1 {
		t.Fatalf("self StructSim = %v, want 1", got)
	}
	empty := SignatureOf(graph.New(0))
	if empty.Nodes != 0 {
		t.Fatalf("empty signature = %+v", empty)
	}
	// Disjoint histograms score 0; an empty graph's zero histogram
	// against a real one stays within [0, 1].
	if s := empty.StructSim(sig); s < 0 || s > 1 {
		t.Fatalf("empty-vs-real StructSim = %v outside [0,1]", s)
	}
}

func TestSummarizeExactWhenSmall(t *testing.T) {
	g := contentGraph(
		"alpha beta gamma delta epsilon zeta",
		"alpha beta gamma delta theta iota",
	)
	sum := Summarize(g)
	if sum.Total != len(sum.Hashes) {
		t.Fatalf("small graph sampled: total %d, hashes %d", sum.Total, len(sum.Hashes))
	}
	if sum.Total == 0 {
		t.Fatal("no shingles extracted")
	}
	if rate := sum.sampleRate(); rate != 1 {
		t.Fatalf("sampleRate = %v, want 1", rate)
	}
	for i := 1; i < len(sum.Hashes); i++ {
		if sum.Hashes[i-1] >= sum.Hashes[i] {
			t.Fatal("hashes not sorted distinct")
		}
	}
}

// TestScoreContentEdgeCases pins the divide-by-zero guards: empty
// pattern, empty graph, both empty — mirroring the shingle package's
// Resemblance/Containment conventions.
func TestScoreContentEdgeCases(t *testing.T) {
	empty := Summary{}
	full := Summarize(contentGraph("some words to shingle here now"))
	if c, r := scoreContent(empty, empty, 0); c != 1 || r != 1 {
		t.Fatalf("empty/empty = %v, %v; want 1, 1", c, r)
	}
	if c, r := scoreContent(empty, full, 0); c != 1 || r != 0 {
		t.Fatalf("empty pattern = %v, %v; want 1, 0", c, r)
	}
	if c, r := scoreContent(full, empty, 0); c != 0 || r != 0 {
		t.Fatalf("empty graph = %v, %v; want 0, 0", c, r)
	}
	if c, r := scoreContent(full, full, len(full.Hashes)); c != 1 || r != 1 {
		t.Fatalf("self = %v, %v; want 1, 1", c, r)
	}
	// Overlap beyond the smaller set is clamped, never above 1.
	if c, r := scoreContent(full, full, 10*len(full.Hashes)); c > 1 || r > 1 {
		t.Fatalf("clamped = %v, %v; want ≤ 1", c, r)
	}
}

func newIndexOver(t *testing.T, graphs map[string]*graph.Graph) (*catalog.Catalog, *Index) {
	t.Helper()
	cat := catalog.New(0)
	for name, g := range graphs {
		if err := cat.Register(name, g); err != nil {
			t.Fatal(err)
		}
	}
	return cat, NewIndex(cat)
}

func TestCandidatesContainmentExact(t *testing.T) {
	shared := "the quick brown fox jumps over the lazy dog again and again"
	_, ix := newIndexOver(t, map[string]*graph.Graph{
		"same":  contentGraph(shared),
		"half":  contentGraph(shared + " with entirely different trailing words appended here making overlap partial"),
		"other": contentGraph("completely unrelated text about graph homomorphism and matching"),
	})
	q := Summarize(contentGraph(shared))
	cands, stats := ix.Candidates(q, Policy{})
	if stats.Graphs != 3 || len(cands) != 3 {
		t.Fatalf("stats %+v, %d candidates", stats, len(cands))
	}
	byName := map[string]Candidate{}
	for _, c := range cands {
		byName[c.Name] = c
	}
	if c := byName["same"]; c.Containment != 1 {
		t.Fatalf("same containment = %v, want 1", c.Containment)
	}
	if c := byName["half"]; c.Containment != 1 {
		// All pattern shingles appear in "half" (it extends the text).
		t.Fatalf("half containment = %v, want 1", c.Containment)
	}
	if c := byName["other"]; c.Containment != 0 {
		t.Fatalf("other containment = %v, want 0", c.Containment)
	}
	if byName["same"].Resemblance <= byName["half"].Resemblance {
		t.Fatal("resemblance should prefer the identical graph over the superset")
	}
	if cands[len(cands)-1].Name != "other" {
		t.Fatalf("worst candidate = %q, want other", cands[len(cands)-1].Name)
	}
}

func TestCandidatesPruning(t *testing.T) {
	shared := "one two three four five six seven eight nine ten"
	_, ix := newIndexOver(t, map[string]*graph.Graph{
		"hit":  contentGraph(shared),
		"miss": contentGraph("unrelated content entirely disjoint from the query text here"),
	})
	q := Summarize(contentGraph(shared))

	cands, stats := ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "hit" || stats.PrunedScore != 1 {
		t.Fatalf("cands %v, stats %+v", cands, stats)
	}

	// MinResemblance 0 keeps everything — the equivalence guarantee.
	cands, stats = ix.Candidates(q, Policy{})
	if len(cands) != 2 || stats.PrunedScore != 0 {
		t.Fatalf("exact policy pruned: %v, %+v", cands, stats)
	}

	cands, stats = ix.Candidates(q, Policy{MaxCandidates: 1})
	if len(cands) != 1 || cands[0].Name != "hit" || stats.PrunedCap != 1 {
		t.Fatalf("cap: cands %v, stats %+v", cands, stats)
	}

	cands, _ = ix.Candidates(q, Policy{Brute: true})
	if len(cands) != 2 || cands[0].Name != "hit" || cands[1].Name != "miss" {
		t.Fatalf("brute order: %v", cands)
	}
}

// TestIndexCoherence drives Register/Remove through the catalog and
// checks the index tracks them: removed graphs disappear, re-registered
// names serve the new graph.
func TestIndexCoherence(t *testing.T) {
	cat, ix := newIndexOver(t, map[string]*graph.Graph{
		"a": contentGraph("text of graph a which stays registered throughout"),
		"b": contentGraph("text of graph b which will be removed midway"),
	})
	q := Summarize(contentGraph("text of graph b which will be removed midway"))
	cands, _ := ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "b" {
		t.Fatalf("before remove: %v", cands)
	}
	if err := cat.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1 {
		t.Fatalf("index holds %d records after remove, want 1", ix.Len())
	}
	cands, stats := ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 0 {
		t.Fatalf("after remove: %v", cands)
	}
	if stats.Graphs != 1 {
		t.Fatalf("stats.Graphs = %d, want 1", stats.Graphs)
	}
	// Re-register the name with different content: the index must serve
	// the new graph, not the stale postings.
	if err := cat.Register("b", contentGraph("completely new content for the reused name")); err != nil {
		t.Fatal(err)
	}
	cands, _ = ix.Candidates(q, Policy{MinResemblance: 0.5})
	if len(cands) != 0 {
		t.Fatalf("stale postings survived re-register: %v", cands)
	}
	q2 := Summarize(contentGraph("completely new content for the reused name"))
	cands, _ = ix.Candidates(q2, Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "b" {
		t.Fatalf("new content not indexed: %v", cands)
	}
}

// TestIndexAttachesToPopulatedCatalog checks the hook replay: an index
// created after graphs were registered still sees them.
func TestIndexAttachesToPopulatedCatalog(t *testing.T) {
	cat := catalog.New(0)
	if err := cat.Register("pre", contentGraph("registered before the index existed")); err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(cat)
	if ix.Len() != 1 {
		t.Fatalf("index missed the pre-registered graph: len %d", ix.Len())
	}
	cands, _ := ix.Candidates(Summarize(contentGraph("registered before the index existed")), Policy{MinResemblance: 0.5})
	if len(cands) != 1 || cands[0].Name != "pre" {
		t.Fatalf("candidates %v", cands)
	}
}

// TestIndexConcurrentChurn hammers the index with concurrent catalog
// mutations and searches; run under -race this pins the locking
// protocol (hook under the catalog lock, summaries built outside,
// commits re-validated).
func TestIndexConcurrentChurn(t *testing.T) {
	cat, ix := newIndexOver(t, map[string]*graph.Graph{
		"stable": contentGraph("stable graph text that never goes away during the churn"),
	})
	q := Summarize(contentGraph("stable graph text that never goes away during the churn"))

	const churners = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			name := fmt.Sprintf("churn-%d", c)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := contentGraph(fmt.Sprintf("churning content %d %d %s", c, i, "filler words to shingle"))
				_ = cat.Register(name, g)
				if rng.Intn(4) > 0 { // leave the name registered now and then
					_ = cat.Remove(name)
				}
			}
		}(c)
	}
	valid := map[string]bool{"stable": true}
	for c := 0; c < churners; c++ {
		valid[fmt.Sprintf("churn-%d", c)] = true
	}
	for i := 0; i < 200; i++ {
		cands, _ := ix.Candidates(q, Policy{})
		found := false
		for _, cand := range cands {
			if !valid[cand.Name] {
				t.Errorf("unknown candidate %q", cand.Name)
			}
			if cand.Name == "stable" {
				found = true
			}
		}
		if !found {
			t.Error("stable graph missing from candidates")
		}
	}
	close(stop)
	wg.Wait()
	// Drain the churned names; only the stable graph must remain.
	for c := 0; c < churners; c++ {
		_ = cat.Remove(fmt.Sprintf("churn-%d", c))
	}
	cands, stats := ix.Candidates(q, Policy{})
	if stats.Graphs != 1 || len(cands) != 1 || cands[0].Name != "stable" {
		t.Fatalf("after churn: cands %v, stats %+v", cands, stats)
	}
}

func TestTopKDeterministic(t *testing.T) {
	// Push the same hits in two different orders; the ranking must not
	// change, and ties must break by name.
	hits := []Hit{
		{Name: "c", Score: 0.5, Tie: 0.1},
		{Name: "a", Score: 0.9, Tie: 0.2},
		{Name: "b", Score: 0.9, Tie: 0.2},
		{Name: "d", Score: 0.5, Tie: 0.3},
		{Name: "e", Score: 0.1},
	}
	want := []string{"a", "b", "d"}
	for perm := 0; perm < 10; perm++ {
		rng := rand.New(rand.NewSource(int64(perm)))
		shuffled := append([]Hit(nil), hits...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		top := NewTopK(3)
		for _, h := range shuffled {
			top.Push(h)
		}
		var got []string
		for _, h := range top.Ranked() {
			got = append(got, h.Name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("perm %d: ranked %v, want %v", perm, got, want)
		}
	}
}

func TestTopKUnbounded(t *testing.T) {
	top := NewTopK(0)
	for i := 0; i < 20; i++ {
		top.Push(Hit{Name: fmt.Sprintf("g%02d", i), Score: float64(i)})
	}
	ranked := top.Ranked()
	if len(ranked) != 20 {
		t.Fatalf("unbounded fold kept %d", len(ranked))
	}
	if ranked[0].Name != "g19" || ranked[19].Name != "g00" {
		t.Fatalf("order: first %q last %q", ranked[0].Name, ranked[19].Name)
	}
}
