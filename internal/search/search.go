// Package search is the catalog-wide graph search subsystem: it ranks
// every data graph registered with the serving catalog against a query
// pattern and returns the best matches, turning the one-graph-per-request
// matcher into a graph search service — the paper's headline Web-mirror
// application ("which of these archived sites is the one this skeleton
// describes?") asked over a whole fleet of graphs at once.
//
// Running the p-hom matcher against every registered graph is the
// brute-force scan, and its cost grows linearly with the catalog. The
// subsystem instead splits a search into two stages, mirroring the
// filter-then-verify architecture of modern subgraph-matching pipelines
// (a cheap candidate filter gates the expensive matcher):
//
//   - Stage 1 — candidate index. An inverted index maps content
//     shingles (the same Broder shingles the similarity matrix mat()
//     is built from, see internal/shingle) to the graphs that contain
//     them, alongside cheap structural signatures (node/edge counts,
//     a log-scale degree histogram). Scoring a pattern against the
//     whole catalog costs one posting lookup per pattern shingle — no
//     matcher, no closure — and yields a containment estimate per
//     graph that prunes hopeless candidates and orders the rest.
//
//   - Stage 2 — ranked matching. The surviving candidates fan out
//     through the engine's worker pool as ordinary match requests; the
//     per-candidate qualities fold into a deterministic top-k heap
//     (ties broken by graph name) so repeated searches over the same
//     catalog return byte-identical rankings.
//
// The index stays coherent with the catalog through its mutation hook:
// Register and Remove update the index synchronously (in mutation
// order), so a search started after a Remove returns never ranks the
// removed graph, and a newly registered graph is searchable the moment
// Register returns. Summaries are built lazily outside the lock —
// registration stays cheap, the first search pays the shingling.
package search

import (
	"math"
	"math/bits"
	"sort"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// HistBuckets is the size of the structural degree histogram: bucket i
// counts nodes whose total degree d has bit-length i (d = 0, 1, 2–3,
// 4–7, ...), with the last bucket absorbing everything larger. A
// log-scale histogram separates hub-and-spoke sites from meshes at any
// size, which is what a structural prefilter needs.
const HistBuckets = 8

// Signature is the cheap structural summary of one graph.
type Signature struct {
	// Nodes and Edges are the graph's size.
	Nodes int
	Edges int
	// DegHist is the normalised log-scale total-degree histogram; the
	// buckets sum to 1 for a non-empty graph.
	DegHist [HistBuckets]float64
}

// degreeBucket maps a total degree to its log-scale histogram bucket.
func degreeBucket(d int) int {
	b := bits.Len(uint(d))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// signatureFromCounts assembles a Signature from raw degree-bucket
// counts — the representation the incremental index maintains, since
// counts compose under edge mutations while the normalised histogram
// does not.
func signatureFromCounts(nodes, edges int, counts [HistBuckets]int) Signature {
	s := Signature{Nodes: nodes, Edges: edges}
	if nodes == 0 {
		return s
	}
	for i, c := range counts {
		s.DegHist[i] = float64(c) / float64(nodes)
	}
	return s
}

// degreeCounts tallies the raw degree histogram of g.
func degreeCounts(g *graph.Graph) [HistBuckets]int {
	var counts [HistBuckets]int
	for v := 0; v < g.NumNodes(); v++ {
		counts[degreeBucket(g.Degree(graph.NodeID(v)))]++
	}
	return counts
}

// SignatureOf derives the structural signature of g.
func SignatureOf(g *graph.Graph) Signature {
	return signatureFromCounts(g.NumNodes(), g.NumEdges(), degreeCounts(g))
}

// StructSim scores the similarity of two degree histograms in [0, 1]:
// 1 − L1/2, so identical shapes score 1 and disjoint ones 0. The
// histograms are normalised, which makes the measure size-invariant —
// a skeleton and the site it was carved from keep similar shapes.
func (s Signature) StructSim(t Signature) float64 {
	l1 := 0.0
	for i := range s.DegHist {
		l1 += math.Abs(s.DegHist[i] - t.DegHist[i])
	}
	return 1 - l1/2
}

// MaxIndexedShingles caps the shingle hashes indexed per graph. Graphs
// with more distinct shingles contribute their smallest-valued hashes —
// a bottom-k sketch, which is a uniform sample of the set because the
// hashes are themselves uniform — and scoring scales the observed
// overlap back up by the sample rate. The cap bounds the inverted
// index at O(catalog size · MaxIndexedShingles) no matter how much
// text the registered graphs carry.
const MaxIndexedShingles = 1 << 16

// Summary is the stage-1 view of one graph (or of a query pattern):
// its structural signature plus the indexed sample of its content
// shingle set.
type Summary struct {
	// Sig is the structural signature.
	Sig Signature
	// Hashes is the sorted, distinct sample of content shingle hashes
	// (the union over all nodes of the per-node sets the similarity
	// matrix uses, content falling back to label).
	Hashes []uint64
	// Total is the number of distinct shingles before sampling; equal
	// to len(Hashes) whenever the graph fits the cap, in which case
	// stage-1 containment is exact rather than estimated.
	Total int
}

// Summarize builds the stage-1 summary of g. It is a pure function of
// the graph — safe to call concurrently, no shared state.
func Summarize(g *graph.Graph) Summary {
	sum, _, _ := summarizeCounted(g)
	return sum
}

// summarizeCounted is Summarize plus the mutable intermediates the
// incremental index folds patches into: per-hash node refcounts (how
// many nodes contribute each distinct shingle — decrementable under
// content rewrites, where a plain set is not) and the raw degree-bucket
// counts behind the signature.
func summarizeCounted(g *graph.Graph) (Summary, map[uint64]int32, [HistBuckets]int) {
	counts := make(map[uint64]int32)
	for _, s := range simmatrix.ContentSets(g, 0) {
		for h := range s {
			counts[h]++
		}
	}
	degs := degreeCounts(g)
	sum := Summary{Sig: signatureFromCounts(g.NumNodes(), g.NumEdges(), degs)}
	sum.Total, sum.Hashes = hashesFromCounts(counts)
	return sum, counts, degs
}

// hashesFromCounts derives the indexed bottom-k hash sample from the
// refcount map. Rebuilding from the full map (never from the previous
// sample) keeps incremental summaries bit-identical to Summarize: a
// hash that drops out of the bottom k and later returns is recovered
// exactly.
func hashesFromCounts(counts map[uint64]int32) (total int, hashes []uint64) {
	total = len(counts)
	hashes = make([]uint64, 0, len(counts))
	for h := range counts {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	if len(hashes) > MaxIndexedShingles {
		hashes = hashes[:MaxIndexedShingles:MaxIndexedShingles]
	}
	return total, hashes
}

// sampleRate is the fraction of the graph's distinct shingles that made
// it into Hashes (1 for empty or uncapped sets).
func (s Summary) sampleRate() float64 {
	if s.Total == 0 {
		return 1
	}
	return float64(len(s.Hashes)) / float64(s.Total)
}

// scoreContent converts a raw posting overlap (pattern hashes found in
// the graph's indexed sample) into containment and resemblance
// estimates, mirroring the shingle package's empty-set conventions so
// search scoring never divides by zero: two empty sets resemble fully,
// an empty pattern is contained in anything, and an empty graph
// contains nothing. When both sides fit MaxIndexedShingles the
// estimates are exact; otherwise the overlap is scaled by the smaller
// sample rate (both samples keep their smallest hashes, so the shared
// low-hash region is governed by the more aggressively sampled side).
func scoreContent(p, g Summary, overlap int) (containment, resemblance float64) {
	np, ng := p.Total, g.Total
	switch {
	case np == 0 && ng == 0:
		return 1, 1
	case np == 0:
		return 1, 0
	case ng == 0:
		return 0, 0
	}
	est := float64(overlap) / min(p.sampleRate(), g.sampleRate())
	if limit := float64(min(np, ng)); est > limit {
		est = limit
	}
	containment = est / float64(np)
	resemblance = est / (float64(np) + float64(ng) - est)
	return containment, resemblance
}

// Policy bounds stage 1: how many candidates may reach the matcher and
// how weak a content overlap is still worth matching. The zero value
// prunes nothing — every registered graph becomes a candidate, ordered
// by prefilter score — which makes the prefiltered search provably
// equivalent to the brute-force scan (the prefilter then only orders,
// never drops).
type Policy struct {
	// MaxCandidates caps the candidates handed to the matcher, keeping
	// the best-scored (ties by name). Non-positive means unlimited.
	MaxCandidates int
	// MinResemblance prunes candidates whose content score — the
	// containment of the pattern's shingles in the graph, Broder's
	// directional variant of resemblance, which is the right direction
	// for pattern-in-graph search where the data graph dwarfs the
	// pattern — falls below it. Non-positive keeps every graph.
	MinResemblance float64
	// Brute bypasses scoring entirely: every registered graph becomes
	// a candidate in name order with zero scores. This is the
	// brute-force baseline the benchmark compares the prefilter
	// against.
	Brute bool
}

// Candidate is one graph that survived stage 1.
type Candidate struct {
	// Name is the registered graph name.
	Name string
	// Score is the combined prefilter score candidates are ordered by
	// (content containment blended with structural similarity).
	Score float64
	// Containment estimates how much of the pattern's shingle set the
	// graph covers.
	Containment float64
	// Resemblance estimates the Jaccard resemblance of the two shingle
	// sets.
	Resemblance float64
	// StructSim is the degree-histogram similarity.
	StructSim float64
	// Overlap is the raw count of shared indexed shingle hashes.
	Overlap int
}

// Stats reports what stage 1 did for one query.
type Stats struct {
	// Graphs is the number of registered graphs visible to the query.
	Graphs int
	// Candidates survived pruning and were returned.
	Candidates int
	// PrunedScore counts graphs dropped by Policy.MinResemblance.
	PrunedScore int
	// PrunedCap counts graphs dropped by Policy.MaxCandidates.
	PrunedCap int
}

// structWeight blends the structural signature into the candidate
// score: content dominates (it is what the matcher's similarity matrix
// measures too), structure splits content ties between shape-alike and
// shape-unlike graphs.
const structWeight = 0.15
