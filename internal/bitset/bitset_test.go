package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("set missing %d after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 7 {
		t.Fatalf("Remove failed: contains=%v count=%d", s.Contains(64), s.Count())
	}
}

func TestFillRespectsCapacity(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d): Count = %d", n, s.Count())
		}
	}
}

func TestEmptyAndClear(t *testing.T) {
	s := New(70)
	if !s.Empty() {
		t.Error("fresh set not empty")
	}
	s.Add(69)
	if s.Empty() {
		t.Error("set with bit 69 reported empty")
	}
	s.Clear()
	if !s.Empty() {
		t.Error("cleared set not empty")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 50; i++ {
		a.Add(i)
	}
	for i := 25; i < 75; i++ {
		b.Add(i)
	}
	union := a.Clone()
	union.Or(b)
	if union.Count() != 75 {
		t.Errorf("union count = %d, want 75", union.Count())
	}
	inter := a.Clone()
	inter.And(b)
	if inter.Count() != 25 {
		t.Errorf("intersection count = %d, want 25", inter.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 25 {
		t.Errorf("difference count = %d, want 25", diff.Count())
	}
	if got := a.IntersectionCount(b); got != 25 {
		t.Errorf("IntersectionCount = %d, want 25", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	c := New(100)
	c.Add(99)
	if a.Intersects(c) {
		t.Error("Intersects disjoint = true")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := New(64)
	b := New(64)
	a.Add(3)
	b.Add(3)
	b.Add(5)
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a unexpected")
	}
	if a.Equal(b) {
		t.Error("a == b unexpected")
	}
	a.Add(5)
	if !a.Equal(b) {
		t.Error("a == b expected after Add")
	}
}

func TestNextIteration(t *testing.T) {
	s := New(200)
	want := []int{0, 1, 63, 64, 100, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if s.Next(200) != -1 {
		t.Error("Next past capacity should be -1")
	}
	empty := New(10)
	if empty.Next(0) != -1 {
		t.Error("Next on empty should be -1")
	}
}

func TestSliceMatchesNext(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		s := New(n)
		ref := map[int]bool{}
		for i := 0; i < n/2; i++ {
			x := rng.Intn(n)
			s.Add(x)
			ref[x] = true
		}
		sl := s.Slice()
		if len(sl) != len(ref) || len(sl) != s.Count() {
			return false
		}
		for _, x := range sl {
			if !ref[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// Property: |a ∪ b| = |a| + |b| − |a ∩ b|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(256)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.Or(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).Or(New(20))
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(5)
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
	m.Set(1, 3)
	m.Set(1, 4)
	if !m.Get(1, 3) || !m.Get(1, 4) || m.Get(3, 1) {
		t.Error("Get/Set mismatch")
	}
	if m.Row(1).Count() != 2 {
		t.Errorf("Row(1).Count = %d, want 2", m.Row(1).Count())
	}
	src := New(5)
	src.Add(0)
	m.OrRow(1, src)
	if !m.Get(1, 0) {
		t.Error("OrRow did not apply")
	}
}

func TestCopyFrom(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		s.Add(i)
	}
	dst := New(130)
	dst.Add(7) // stale bit: CopyFrom must fully overwrite
	dst.CopyFrom(s)
	if !dst.Equal(s) {
		t.Fatalf("CopyFrom: got %v, want %v", dst.Slice(), s.Slice())
	}
	s.Remove(63)
	if !dst.Contains(63) {
		t.Fatal("CopyFrom must copy, not alias")
	}
}

func TestSplitInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		s, a, b := New(n), New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Add(i)
			}
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		for _, withB := range []bool{false, true} {
			var maskB *Set
			wantT := s.Clone()
			wantT.And(a)
			if withB {
				maskB = b
				wantT.And(b)
			}
			wantM := s.Clone()
			wantM.AndNot(wantT)
			// Dirty destinations: SplitInto must overwrite them fully.
			trimmed, moved := New(n), New(n)
			trimmed.Fill()
			moved.Fill()
			anyT, anyM := s.SplitInto(a, maskB, trimmed, moved)
			if !trimmed.Equal(wantT) || !moved.Equal(wantM) {
				t.Fatalf("trial %d withB=%v: SplitInto mismatch", trial, withB)
			}
			if anyT != !wantT.Empty() || anyM != !wantM.Empty() {
				t.Fatalf("trial %d withB=%v: emptiness flags (%v,%v) want (%v,%v)",
					trial, withB, anyT, anyM, !wantT.Empty(), !wantM.Empty())
			}
		}
	}
}

func TestSplitIntoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).SplitInto(New(10), nil, New(10), New(20))
}
