// Package bitset implements a dense fixed-capacity bitset used by the
// transitive-closure index, the independent-set algorithms and the maximum
// common subgraph search. Row-oriented bit matrices over node IDs are the
// backbone of the adjacency matrix H2 for the transitive closure graph G2+
// (Fig. 3, lines 5–7 of the paper).
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bitset. The zero value is unusable; create sets
// with New. Capacity is fixed at creation: operations on mismatched lengths
// panic, since that always indicates a programming error here.
type Set struct {
	words []uint64
	n     int
}

// New returns a set able to hold bits 0..n-1, all clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len reports the capacity n of the set.
func (s *Set) Len() int { return s.n }

// Add sets bit i.
func (s *Set) Add(i int) { s.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Remove clears bit i.
func (s *Set) Remove(i int) { s.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count reports the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear resets all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets bits 0..n-1.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim clears the unused tail bits of the last word so Count stays exact.
func (s *Set) trim() {
	if r := uint(s.n) % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << r) - 1
	}
}

// Grown returns a set of capacity n ≥ s.Len() containing the same bits.
// When the word count is unchanged the result shares s's storage — treat
// both as immutable afterwards (the trim invariant keeps the shared tail
// bits clear, so the wider view observes no phantom bits). Otherwise the
// result is an independent copy.
func (s *Set) Grown(n int) *Set {
	if n < s.n {
		panic("bitset: Grown shrinks")
	}
	if n == s.n {
		return s
	}
	words := (n + wordBits - 1) / wordBits
	if words == len(s.words) {
		return &Set{words: s.words, n: n}
	}
	w := make([]uint64, words)
	copy(w, s.words)
	return &Set{words: w, n: n}
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t without allocating.
func (s *Set) CopyFrom(t *Set) {
	s.checkLen(t)
	copy(s.words, t.words)
}

// SplitInto partitions s against the mask a ∩ b in one word-level pass:
// trimmed receives s ∩ a ∩ b and moved receives s \ (a ∩ b). b may be
// nil, in which case the mask is a alone. trimmed and moved are fully
// overwritten (they may hold stale bits from a free list) and must be
// distinct from s, a and b. The returns report whether trimmed and
// moved are nonempty, so callers avoid a separate Empty scan.
func (s *Set) SplitInto(a, b, trimmed, moved *Set) (anyTrimmed, anyMoved bool) {
	s.checkLen(a)
	s.checkLen(trimmed)
	s.checkLen(moved)
	var tAcc, mAcc uint64
	if b == nil {
		for i, w := range s.words {
			m := a.words[i]
			t, d := w&m, w&^m
			trimmed.words[i] = t
			moved.words[i] = d
			tAcc |= t
			mAcc |= d
		}
	} else {
		s.checkLen(b)
		for i, w := range s.words {
			m := a.words[i] & b.words[i]
			t, d := w&m, w&^m
			trimmed.words[i] = t
			moved.words[i] = d
			tAcc |= t
			mAcc |= d
		}
	}
	return tAcc != 0, mAcc != 0
}

// Or sets s to s ∪ t.
func (s *Set) Or(t *Set) {
	s.checkLen(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And sets s to s ∩ t.
func (s *Set) And(t *Set) {
	s.checkLen(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// AndNot sets s to s \ t.
func (s *Set) AndNot(t *Set) {
	s.checkLen(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// IntersectionCount reports |s ∩ t| without allocating.
func (s *Set) IntersectionCount(t *Set) int {
	s.checkLen(t)
	c := 0
	for i, w := range t.words {
		c += bits.OnesCount64(s.words[i] & w)
	}
	return c
}

// Intersects reports whether s ∩ t is nonempty.
func (s *Set) Intersects(t *Set) bool {
	s.checkLen(t)
	for i, w := range t.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range t.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is set in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.checkLen(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Next returns the smallest set bit ≥ i, or -1 if none exists. Together
// with a for loop it iterates set bits in increasing order:
//
//	for i := s.Next(0); i >= 0; i = s.Next(i + 1) { ... }
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Slice returns the set bits in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	for i := s.Next(0); i >= 0; i = s.Next(i + 1) {
		out = append(out, i)
	}
	return out
}

func (s *Set) checkLen(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
}

// Matrix is a square bit matrix with row-level bitset access: row v answers
// "which columns does v relate to". It backs the transitive-closure index
// H2 (H2[u1][u2] = 1 iff (u1,u2) ∈ E+, Fig. 3).
type Matrix struct {
	rows []*Set
	n    int
}

// NewMatrix returns an n×n all-zero bit matrix.
func NewMatrix(n int) *Matrix {
	m := &Matrix{rows: make([]*Set, n), n: n}
	for i := range m.rows {
		m.rows[i] = New(n)
	}
	return m
}

// N reports the dimension.
func (m *Matrix) N() int { return m.n }

// Set sets entry (i, j).
func (m *Matrix) Set(i, j int) { m.rows[i].Add(j) }

// Get reports entry (i, j).
func (m *Matrix) Get(i, j int) bool { return m.rows[i].Contains(j) }

// Row returns row i. The row is shared, not copied.
func (m *Matrix) Row(i int) *Set { return m.rows[i] }

// OrRow ORs src into row i.
func (m *Matrix) OrRow(i int, src *Set) { m.rows[i].Or(src) }
