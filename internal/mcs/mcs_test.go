package mcs

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func find(t *testing.T, g1, g2 *graph.Graph) *Result {
	t.Helper()
	r, err := Find(g1, g2, simmatrix.NewLabelEquality(g1, g2), Options{Xi: 0.5})
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	return r
}

func TestIdenticalGraphs(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	r := find(t, g, g)
	if r.Cardinality() != 3 {
		t.Fatalf("MCS of identical graphs = %d, want 3", r.Cardinality())
	}
	if !r.Complete {
		t.Fatal("small search should complete")
	}
}

func TestCommonSubgraphIsInduced(t *testing.T) {
	// G1: triangle a-b-c (directed cycle). G2: path a→b→c. Their maximum
	// common induced subgraph is 2 nodes (any single edge).
	g1 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	r := find(t, g1, g2)
	if r.Cardinality() != 2 {
		t.Fatalf("MCS = %d, want 2 (mapping %v)", r.Cardinality(), r.Mapping)
	}
	validateCommon(t, g1, g2, r)
}

func TestDisjointLabels(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"x"}, nil)
	g2 := graph.FromEdgeList([]string{"y"}, nil)
	r := find(t, g1, g2)
	if r.Cardinality() != 0 {
		t.Fatalf("MCS = %d, want 0", r.Cardinality())
	}
}

func TestMappingValidRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	labels := []string{"a", "b"}
	mk := func(n int) *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < n; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g.Finish()
		return g
	}
	for i := 0; i < 15; i++ {
		g1, g2 := mk(6), mk(6)
		r := find(t, g1, g2)
		validateCommon(t, g1, g2, r)
	}
}

func validateCommon(t *testing.T, g1, g2 *graph.Graph, r *Result) {
	t.Helper()
	seen := map[graph.NodeID]bool{}
	for _, u := range r.Mapping {
		if seen[u] {
			t.Fatal("mapping not injective")
		}
		seen[u] = true
	}
	for v, u := range r.Mapping {
		for v2, u2 := range r.Mapping {
			if g1.HasEdge(v, v2) != g2.HasEdge(u, u2) {
				t.Fatalf("edge disagreement: (%d,%d) vs (%d,%d)", v, v2, u, u2)
			}
		}
	}
}

func TestDeadline(t *testing.T) {
	// A dense same-label instance blows up the clique search; a tiny
	// budget must abort with ErrDeadline, mirroring cdkMCS failing to run
	// to completion on skeletons 1.
	rng := rand.New(rand.NewSource(1))
	mk := func(n int) *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode("same")
		}
		for i := 0; i < n*3; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g.Finish()
		return g
	}
	g1, g2 := mk(30), mk(30)
	_, err := Find(g1, g2, simmatrix.NewLabelEquality(g1, g2), Options{Xi: 0.5, Budget: time.Millisecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestPartialResultOnDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode("same")
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g.Finish()
		return g
	}
	g1, g2 := mk(25), mk(25)
	r, err := Find(g1, g2, simmatrix.NewLabelEquality(g1, g2), Options{Xi: 0.5, Budget: 5 * time.Millisecond})
	if err == nil {
		t.Skip("search completed within budget on this machine")
	}
	if r == nil {
		t.Fatal("partial result must be returned on deadline")
	}
	if r.Complete {
		t.Fatal("Complete must be false on deadline")
	}
	validateCommon(t, g1, g2, r)
}

func TestSubgraphOfLarger(t *testing.T) {
	// G1 is an exact induced subgraph of G2 → MCS covers all of G1.
	g1 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}})
	r := find(t, g1, g2)
	if r.Cardinality() != 2 {
		t.Fatalf("MCS = %d, want 2", r.Cardinality())
	}
}
