// Package mcs computes maximum common subgraphs — the repository's
// stand-in for the CDK cdkMCS baseline of Section 6 [1]. The paper uses
// MCS both as a comparison point (Table 3) and as the special case of
// CPH1−1 it generalises (Section 3.3: "the familiar maximum common
// subgraph problem is a special case of CPH1−1").
//
// The solver reduces MCS to maximum clique on the modular product of the
// two graphs (pairs of similar nodes; two pairs are adjacent when their
// pattern and data sides agree on edges in both directions) and explores
// it with Bron–Kerbosch branch and bound under a wall-clock budget.
// Exactly like the original cdkMCS, it fails to complete on graphs beyond
// a few dozen nodes — Table 3 reports that as N/A, and the experiment
// harness reproduces the behaviour through ErrDeadline.
package mcs

import (
	"errors"
	"time"

	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// ErrDeadline reports that the search exceeded its time budget before
// proving optimality. The best clique found so far is still returned.
var ErrDeadline = errors.New("mcs: time budget exhausted")

// Result is a common-subgraph correspondence between G1 and G2.
type Result struct {
	// Mapping pairs G1 nodes with G2 nodes; it is injective and
	// edge-preserving in both directions (an induced common subgraph).
	Mapping map[graph.NodeID]graph.NodeID
	// Complete reports whether the search proved optimality.
	Complete bool
}

// Cardinality reports the number of matched nodes.
func (r *Result) Cardinality() int { return len(r.Mapping) }

// Options configures the search.
type Options struct {
	// Budget bounds the wall-clock search time; zero means no limit.
	Budget time.Duration
	// Xi is the node-similarity threshold for pairing nodes (label
	// equality corresponds to a LabelEquality matrix with Xi ≤ 1).
	Xi float64
}

// Find computes a maximum common induced subgraph of g1 and g2 under the
// node-similarity constraint mat(v, u) ≥ ξ. It returns ErrDeadline when
// the budget expires first; the partial result is still meaningful.
func Find(g1, g2 *graph.Graph, mat simmatrix.Matrix, opts Options) (*Result, error) {
	type pair struct{ v, u graph.NodeID }
	var pairs []pair
	for v := 0; v < g1.NumNodes(); v++ {
		for u := 0; u < g2.NumNodes(); u++ {
			vv, uu := graph.NodeID(v), graph.NodeID(u)
			if mat.Score(vv, uu) < opts.Xi {
				continue
			}
			// Induced subgraphs must agree on self-loops too.
			if g1.HasEdge(vv, vv) != g2.HasEdge(uu, uu) {
				continue
			}
			pairs = append(pairs, pair{vv, uu})
		}
	}
	n := len(pairs)
	adj := make([]*bitset.Set, n)
	for i := range adj {
		adj[i] = bitset.New(n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := pairs[i], pairs[j]
			if a.v == b.v || a.u == b.u {
				continue
			}
			// Induced-subgraph compatibility: edges must agree in both
			// graphs, in both directions.
			if g1.HasEdge(a.v, b.v) != g2.HasEdge(a.u, b.u) {
				continue
			}
			if g1.HasEdge(b.v, a.v) != g2.HasEdge(b.u, a.u) {
				continue
			}
			adj[i].Add(j)
			adj[j].Add(i)
		}
	}

	var deadline time.Time
	if opts.Budget > 0 {
		deadline = time.Now().Add(opts.Budget)
	}
	s := &search{adj: adj, deadline: deadline}
	r := bitset.New(n)
	p := bitset.New(n)
	p.Fill()
	s.expand(r, p, bitset.New(n))

	m := make(map[graph.NodeID]graph.NodeID, s.best.Count())
	for i := s.best.Next(0); i >= 0; i = s.best.Next(i + 1) {
		m[pairs[i].v] = pairs[i].u
	}
	res := &Result{Mapping: m, Complete: !s.timedOut}
	if s.timedOut {
		return res, ErrDeadline
	}
	return res, nil
}

type search struct {
	adj      []*bitset.Set
	best     *bitset.Set
	deadline time.Time
	timedOut bool
	ticks    int
}

// expand is Bron–Kerbosch with pivoting on (R, P, X), keeping the largest
// R seen. P ∪ X shrink along adjacency; the |R| + |P| bound prunes.
func (s *search) expand(r, p, x *bitset.Set) {
	if s.timedOut {
		return
	}
	s.ticks++
	if s.ticks%256 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.timedOut = true
		return
	}
	if s.best == nil {
		s.best = bitset.New(len(s.adj))
	}
	if p.Empty() && x.Empty() {
		if r.Count() > s.best.Count() {
			s.best = r.Clone()
		}
		return
	}
	if r.Count()+p.Count() <= s.best.Count() {
		return
	}
	// Pivot: the P ∪ X node with most neighbours in P.
	pivot, bestDeg := -1, -1
	for _, set := range []*bitset.Set{p, x} {
		for i := set.Next(0); i >= 0; i = set.Next(i + 1) {
			if d := s.adj[i].IntersectionCount(p); d > bestDeg {
				bestDeg, pivot = d, i
			}
		}
	}
	cands := p.Clone()
	if pivot >= 0 {
		cands.AndNot(s.adj[pivot])
	}
	for v := cands.Next(0); v >= 0; v = cands.Next(v + 1) {
		r.Add(v)
		np := p.Clone()
		np.And(s.adj[v])
		nx := x.Clone()
		nx.And(s.adj[v])
		s.expand(r, np, nx)
		r.Remove(v)
		p.Remove(v)
		x.Add(v)
		if s.timedOut {
			return
		}
	}
}
