package catalog

import (
	"fmt"
	"math/rand"
	"testing"

	"graphmatch/internal/graph"
)

// randomGraph builds an n-node random digraph with the given average
// out-degree, the shape the closure cache is sized for.
func randomGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("n%d", i%64))
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

// BenchmarkReachHit measures the steady-state cost of a shared-closure
// lookup — the per-request overhead the catalog adds to a match.
func BenchmarkReachHit(b *testing.B) {
	c := New(8)
	if err := c.Register("g", randomGraph(500, 4, 1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reach("g", 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.Stats().HitRate()*100, "hit%")
}

// BenchmarkReachMiss measures a full closure build by thrashing a
// capacity-1 cache between two graphs — the cost an eviction re-incurs.
func BenchmarkReachMiss(b *testing.B) {
	for _, n := range []int{200, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := New(1)
			if err := c.Register("a", randomGraph(n, 4, 1)); err != nil {
				b.Fatal(err)
			}
			if err := c.Register("b", randomGraph(n, 4, 2)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := "a"
				if i%2 == 0 {
					name = "b"
				}
				if _, err := c.Reach(name, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReachParallel measures contention on the catalog lock under
// concurrent hit traffic.
func BenchmarkReachParallel(b *testing.B) {
	c := New(8)
	if err := c.Register("g", randomGraph(500, 4, 1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Reach("g", 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
