// Package catalog is the serving layer's registry of data graphs. A
// production deployment matches many patterns against a fixed fleet of
// data graphs, so the dominant preprocessing cost — the transitive
// closure of G2 (the matrix H2 of Fig. 3, which every p-hom algorithm
// consults) — must be computed once per graph and shared across all
// concurrent requests, not once per core.Instance as the library
// defaults to.
//
// The Catalog keeps every registered graph resident but bounds the
// number of resident reachability indexes with an LRU policy, because a
// closure can be quadratically larger than its graph. Closure builds
// are single-flight: concurrent requests for the same (graph, path
// limit) pair wait for one build instead of racing to duplicate it.
// Hit/miss/eviction counters expose cache effectiveness to /v1/stats
// and the benchmarks.
package catalog

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/shingle"
	"graphmatch/internal/simmatrix"
)

// Errors distinguished by the HTTP layer.
var (
	// ErrNotFound reports an unknown graph name.
	ErrNotFound = errors.New("catalog: graph not found")
	// ErrDuplicate reports a Register against a name already taken.
	ErrDuplicate = errors.New("catalog: graph already registered")
)

// DefaultMaxClosures bounds resident closures when no explicit capacity
// is given.
const DefaultMaxClosures = 64

// Stats is a point-in-time snapshot of catalog effectiveness.
type Stats struct {
	// Graphs is the number of registered data graphs.
	Graphs int `json:"graphs"`
	// ResidentClosures counts reachability indexes currently cached
	// (including ones still being built).
	ResidentClosures int `json:"resident_closures"`
	// ResidentRows counts cached closures whose materialised row
	// matrices (forward/backward closure rows over node IDs) have been
	// built; rows are built lazily, on the first request that runs a
	// row-consuming algorithm.
	ResidentRows int `json:"resident_rows"`
	// ResidentBytes approximates the heap held by resident reachability
	// indexes and closure rows — the quantity the MaxClosures LRU bound
	// is protecting.
	ResidentBytes int64 `json:"resident_bytes"`
	// MaxClosures is the LRU capacity.
	MaxClosures int `json:"max_closures"`
	// Hits counts Reach calls served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts Reach calls that had to build a closure.
	Misses uint64 `json:"misses"`
	// Evictions counts closures dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// BuildTime is the cumulative wall time spent building closures
	// and closure rows.
	BuildTime time.Duration `json:"build_ns"`
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// closureKey identifies one cached index: the same graph under
// different path-limit bounds yields different (incomparable) indexes.
type closureKey struct {
	name      string
	pathLimit int
}

// entry is one cache slot. ready is closed once reach is final, so
// lookups can wait for an in-flight build without holding the catalog
// lock. Builds cannot fail (closure.ComputeBounded is total), so the
// slot carries no error. The materialised closure rows ride in the same
// slot — built lazily (single-flight via rowsOnce) because only the
// approximation algorithms consume them — so the LRU bound accounts
// for closure and rows together and eviction drops both. bytes and
// rowsBytes are maintained under the catalog lock for the ResidentBytes
// stat.
type entry struct {
	key   closureKey
	elem  *list.Element
	ready chan struct{}
	reach *closure.Reach

	rowsOnce sync.Once
	rows     *closure.Rows

	bytes     int64
	rowsBytes int64
	// rowsCounted records that this entry contributed to residentRows
	// (rowsBytes alone cannot: a tiny graph's rows can round to zero
	// bytes while still being resident).
	rowsCounted bool
}

// graphEntry is one registered data graph plus its lazily computed,
// shared content shingle sets (the data-side half of content
// similarity, which would otherwise be recomputed per request).
type graphEntry struct {
	g           *graph.Graph
	contentOnce sync.Once
	contentSets []shingle.Set
}

// Catalog is a concurrency-safe registry of named data graphs with a
// bounded, shared closure cache. The zero value is not usable; create
// catalogs with New.
type Catalog struct {
	mu       sync.Mutex
	graphs   map[string]*graphEntry
	closures map[closureKey]*entry
	lru      *list.List // front = most recently used; values are *entry
	capacity int

	hits, misses, evictions uint64
	buildTime               time.Duration
	residentBytes           int64
	residentRows            int
}

// New returns an empty catalog bounding resident closures at
// maxClosures (DefaultMaxClosures when non-positive).
func New(maxClosures int) *Catalog {
	if maxClosures <= 0 {
		maxClosures = DefaultMaxClosures
	}
	return &Catalog{
		graphs:   make(map[string]*graphEntry),
		closures: make(map[closureKey]*entry),
		lru:      list.New(),
		capacity: maxClosures,
	}
}

// Register adds a data graph under name and eagerly builds its
// unbounded closure so the first match request is already a cache hit.
// The catalog takes ownership: the graph must not be mutated afterwards
// (it is normalised here so concurrent readers never race on lazy
// adjacency sorting). Registering an existing name fails with
// ErrDuplicate.
func (c *Catalog) Register(name string, g *graph.Graph) error {
	if name == "" {
		return fmt.Errorf("catalog: empty graph name")
	}
	if g == nil {
		return fmt.Errorf("catalog: nil graph %q", name)
	}
	g.Finish()
	c.mu.Lock()
	if _, dup := c.graphs[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	c.graphs[name] = &graphEntry{g: g}
	c.mu.Unlock()
	_, err := c.Reach(name, 0)
	return err
}

// Remove drops a graph and every cached closure derived from it.
func (c *Catalog) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.graphs[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(c.graphs, name)
	for k, e := range c.closures {
		if k.name == name {
			c.lru.Remove(e.elem)
			c.dropAccountingLocked(e)
			delete(c.closures, k)
		}
	}
	return nil
}

// dropAccountingLocked retires an entry's contribution to the resident
// memory stats. Callers hold c.mu.
func (c *Catalog) dropAccountingLocked(e *entry) {
	c.residentBytes -= e.bytes + e.rowsBytes
	if e.rowsCounted {
		c.residentRows--
	}
	e.bytes, e.rowsBytes, e.rowsCounted = 0, 0, false
}

// Get returns the registered graph.
func (c *Catalog) Get(name string) (*graph.Graph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e.g, nil
}

// ContentSets returns the cached shingle sets of the named graph's
// node contents (computed once, on first use, with the default shingle
// window) together with the graph they index — callers that resolved
// the graph separately can detect a concurrent Remove/Register swap by
// comparing pointers.
func (c *Catalog) ContentSets(name string) (*graph.Graph, []shingle.Set, error) {
	c.mu.Lock()
	e, ok := c.graphs[name]
	c.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.contentOnce.Do(func() {
		e.contentSets = simmatrix.ContentSets(e.g, 0)
	})
	return e.g, e.contentSets, nil
}

// Names lists the registered graphs in sorted order.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.graphs))
	for n := range c.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered graphs.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.graphs)
}

// Reach returns the shared reachability index of the named graph under
// the given path limit (0 = the full transitive closure), building and
// caching it on first use. Concurrent callers for the same key share a
// single build.
func (c *Catalog) Reach(name string, pathLimit int) (*closure.Reach, error) {
	_, r, err := c.GetWithReach(name, pathLimit)
	return r, err
}

// GetWithReach resolves the named graph and its shared reachability
// index in one step, so the pair is guaranteed consistent even if the
// name is concurrently removed and re-registered with a different
// graph (separate Get + Reach calls could pair the old graph with the
// new graph's closure). The graph and the cached closure entry are
// resolved under one lock acquisition; a fresh build uses the graph
// pointer captured there, never a re-lookup by name.
func (c *Catalog) GetWithReach(name string, pathLimit int) (*graph.Graph, *closure.Reach, error) {
	g, e, err := c.getEntry(name, pathLimit)
	if err != nil {
		return nil, nil, err
	}
	return g, e.reach, nil
}

// GetWithRows resolves the named graph, its reachability index, and the
// materialised closure rows (forward/backward rows of G2+, the
// representation the compMaxCard/compMaxSim trim consumes) as one
// consistent triple. Rows are built once per cached closure —
// single-flight, like the closure itself — and shared by every request,
// so per-request matcher setup does not re-materialise the O(n²) row
// matrices.
func (c *Catalog) GetWithRows(name string, pathLimit int) (*graph.Graph, *closure.Reach, *closure.Rows, error) {
	g, e, err := c.getEntry(name, pathLimit)
	if err != nil {
		return nil, nil, nil, err
	}
	e.rowsOnce.Do(func() {
		start := time.Now()
		e.rows = closure.NewRows(e.reach)
		built := time.Since(start)
		rb := int64(e.rows.Bytes())
		c.mu.Lock()
		c.buildTime += built
		// Account only while the entry is still resident; an entry
		// evicted mid-build keeps serving its direct waiters but no
		// longer counts toward resident memory.
		if c.closures[e.key] == e {
			e.rowsBytes = rb
			e.rowsCounted = true
			c.residentBytes += rb
			c.residentRows++
		}
		c.mu.Unlock()
	})
	return g, e.reach, e.rows, nil
}

// getEntry resolves the graph and the cache slot for (name, pathLimit),
// waiting on or performing the single-flight closure build.
func (c *Catalog) getEntry(name string, pathLimit int) (*graph.Graph, *entry, error) {
	if pathLimit < 0 {
		pathLimit = 0
	}
	key := closureKey{name: name, pathLimit: pathLimit}

	c.mu.Lock()
	ge, ok := c.graphs[name]
	if !ok {
		c.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	g := ge.g
	if e, ok := c.closures[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return g, e, nil
	}
	c.misses++
	e := &entry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.closures[key] = e
	c.evictLocked()
	c.mu.Unlock()

	start := time.Now()
	e.reach = closure.ComputeBounded(g, pathLimit)
	built := time.Since(start)
	close(e.ready)

	rb := int64(e.reach.Bytes())
	c.mu.Lock()
	c.buildTime += built
	if c.closures[key] == e { // not evicted while building
		e.bytes = rb
		c.residentBytes += rb
	}
	c.mu.Unlock()
	return g, e, nil
}

// evictLocked enforces the LRU bound. In-flight builds may be evicted —
// their waiters keep a direct pointer to the entry and are unaffected;
// the closure simply is not retained once they are done.
func (c *Catalog) evictLocked() {
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		c.lru.Remove(back)
		c.dropAccountingLocked(victim)
		delete(c.closures, victim.key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Graphs:           len(c.graphs),
		ResidentClosures: c.lru.Len(),
		ResidentRows:     c.residentRows,
		ResidentBytes:    c.residentBytes,
		MaxClosures:      c.capacity,
		Hits:             c.hits,
		Misses:           c.misses,
		Evictions:        c.evictions,
		BuildTime:        c.buildTime,
	}
}
