// Package catalog is the serving layer's registry of data graphs. A
// production deployment matches many patterns against a fixed fleet of
// data graphs, so the dominant preprocessing cost — the transitive
// closure of G2 (the matrix H2 of Fig. 3, which every p-hom algorithm
// consults) — must be computed once per graph and shared across all
// concurrent requests, not once per core.Instance as the library
// defaults to.
//
// The Catalog keeps every registered graph resident but bounds the
// resident reachability indexes with an LRU policy — by count
// (MaxClosures) and optionally by total bytes (WithMaxBytes) — because
// a closure can be quadratically larger than its graph. Closure builds
// are single-flight: concurrent requests for the same (graph, path
// limit) pair wait for one build instead of racing to duplicate it.
// Hit/miss/eviction counters expose cache effectiveness to /v1/stats
// and the benchmarks.
//
// Each cached closure also carries a matcher-facing reachability index
// (closure.Index) in one of two tiers, selected automatically by
// projected size: small graphs get dense per-node closure rows (fast
// word-level trims), large graphs get the candidate-sparse
// component-probe tier whose footprint is O(n + k²) in the number of
// SCC-condensation components k rather than O(n²) — the representation
// that lets the catalog register ≥100k-node data graphs at all.
package catalog

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
	"graphmatch/internal/shingle"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/trace"
)

// Errors distinguished by the HTTP layer.
var (
	// ErrNotFound reports an unknown graph name.
	ErrNotFound = errors.New("catalog: graph not found")
	// ErrDuplicate reports a Register against a name already taken.
	ErrDuplicate = errors.New("catalog: graph already registered")
	// ErrBadPatch reports an Apply whose patch failed validation (empty,
	// out-of-range node, absent edge) — the client's fault, nothing
	// committed.
	ErrBadPatch = errors.New("catalog: invalid patch")
)

// DefaultMaxClosures bounds resident closures when no explicit capacity
// is given.
const DefaultMaxClosures = 64

// Option customises a Catalog beyond the resident-closure count bound.
type Option func(*Catalog)

// WithMaxBytes bounds the total resident bytes of cached reachability
// indexes (closures plus their tier indexes). When an insertion or a
// build pushes the resident total past the budget, least-recently-used
// entries are evicted until it fits again — except the entry just
// touched, so a single closure larger than the budget still serves its
// requests (it just evicts everything else and is dropped on the next
// miss). Non-positive means unbounded (the default).
func WithMaxBytes(n int64) Option {
	return func(c *Catalog) { c.maxBytes = n }
}

// WithTierPolicy fixes the reachability-index tier instead of the
// default auto selection by projected size.
func WithTierPolicy(p closure.TierPolicy) Option {
	return func(c *Catalog) { c.tierPolicy = p }
}

// WithDenseMaxBytes overrides the auto-tier threshold: graphs whose
// projected dense rows exceed n bytes get the candidate-sparse tier.
// Non-positive keeps closure.DefaultDenseMaxBytes.
func WithDenseMaxBytes(n int) Option {
	return func(c *Catalog) { c.denseMaxBytes = n }
}

// WithDeltaBudget tunes incremental closure maintenance on Apply: the
// cached closure is patched in place while the update's work estimate
// stays under the budget, and rebuilt from scratch beyond it. Zero (the
// default) derives the budget from the graph size — roughly half the
// estimated rebuild cost; negative disables incremental maintenance
// entirely, forcing the invalidate+rebuild path (the rebuild baseline
// cmd/benchpatch measures against).
func WithDeltaBudget(n int) Option {
	return func(c *Catalog) { c.deltaBudget = n }
}

// Stats is a point-in-time snapshot of catalog effectiveness.
type Stats struct {
	// Graphs is the number of registered data graphs.
	Graphs int `json:"graphs"`
	// ResidentClosures counts reachability indexes currently cached
	// (including ones still being built).
	ResidentClosures int `json:"resident_closures"`
	// ResidentIndexes counts cached closures whose matcher-facing
	// reachability index has been built; indexes are built lazily, on
	// the first request that runs an index-consuming algorithm.
	ResidentIndexes int `json:"resident_indexes"`
	// ResidentDense and ResidentSparse break ResidentIndexes down by
	// tier (dense closure rows vs candidate-sparse component probes).
	ResidentDense  int `json:"resident_dense"`
	ResidentSparse int `json:"resident_sparse"`
	// DenseIndexBytes and SparseIndexBytes approximate the heap held by
	// resident indexes of each tier, beyond the closures they derive
	// from.
	DenseIndexBytes  int64 `json:"dense_index_bytes"`
	SparseIndexBytes int64 `json:"sparse_index_bytes"`
	// ResidentBytes approximates the heap held by resident reachability
	// closures and their indexes — the quantity the LRU bounds protect.
	ResidentBytes int64 `json:"resident_bytes"`
	// MaxClosures is the LRU capacity by entry count.
	MaxClosures int `json:"max_closures"`
	// MaxBytes is the LRU capacity by resident bytes; 0 = unbounded.
	MaxBytes int64 `json:"max_bytes"`
	// TierPolicy is the index tier selection in force (auto, dense or
	// sparse).
	TierPolicy string `json:"tier_policy"`
	// Hits counts Reach calls served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts Reach calls that had to build a closure.
	Misses uint64 `json:"misses"`
	// Evictions counts closures dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// BuildTime is the cumulative wall time spent building closures
	// and closure rows.
	BuildTime time.Duration `json:"build_ns"`
	// PatchesIncremental counts Apply commits whose cached closure was
	// patched in place; PatchesRebuild counts the ones that fell back to
	// invalidate+rebuild (no cached closure, SCC reshape, or delta cone
	// over budget).
	PatchesIncremental uint64 `json:"patches_incremental"`
	PatchesRebuild     uint64 `json:"patches_rebuild"`
}

// HitRate is Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// closureKey identifies one cached index: the same graph under
// different path-limit bounds yields different (incomparable) indexes.
type closureKey struct {
	name      string
	pathLimit int
}

// entry is one cache slot. ready is closed once reach is final, so
// lookups can wait for an in-flight build without holding the catalog
// lock. Builds cannot fail (closure.ComputeBounded is total), so the
// slot carries no error. The matcher-facing reachability index rides
// in the same slot — built lazily (single-flight via idxOnce) because
// only the approximation algorithms consume it — so the LRU bounds
// account for closure and index together and eviction drops both.
// bytes and idxBytes are maintained under the catalog lock for the
// ResidentBytes stat.
type entry struct {
	key   closureKey
	elem  *list.Element
	ready chan struct{}
	reach *closure.Reach

	idxOnce sync.Once
	idx     closure.Index

	bytes    int64
	idxBytes int64
	idxTier  closure.Tier
	// idxCounted records that this entry contributed to the per-tier
	// resident counters (idxBytes alone cannot: a tiny graph's index
	// can round to zero bytes while still being resident).
	idxCounted bool
}

// graphEntry is one registered data graph plus its lazily computed,
// shared content shingle sets (the data-side half of content
// similarity, which would otherwise be recomputed per request).
type graphEntry struct {
	g           *graph.Graph
	contentOnce sync.Once
	contentSets []shingle.Set
}

// Mutation describes one committed registry change for MutationHook
// observers.
type Mutation struct {
	// Removed marks a Remove; g is the graph that was registered.
	Removed bool
	// Patch and Prev are set on Apply and carry the changed-content
	// delta: g was produced by applying Patch to Prev. Observers that
	// maintain per-node derived state (the search index's shingle
	// postings and degree signatures) use them to update only what
	// changed instead of re-deriving the whole graph. Both are nil on
	// Register, Replace and hook-installation replay.
	Patch *graph.Patch
	Prev  *graph.Graph
}

// MutationHook observes registry mutations: it is invoked once per
// successful Register, Remove and Apply (g is the patched replacement
// graph on Apply — a new pointer, which is how observers distinguish an
// in-place update from a replayed Register). Hooks run synchronously
// under the catalog lock so observers see mutations in their true
// order; they must return quickly and must not call back into the
// catalog.
type MutationHook func(name string, g *graph.Graph, m Mutation)

// Persister is the catalog's write-ahead durability callback. Each
// method is invoked under the catalog lock, after validation but
// before the in-memory mutation commits: an error vetoes the mutation
// (nothing changes, the caller gets the error), and a nil return means
// the op is durable — the store fsyncs before returning — so every
// acknowledged mutation survives a crash. LogPatch receives the patch,
// not the patched graph: the log stays proportional to the edit, and
// replaying patches against replayed graphs is deterministic.
//
// The persister and the MutationHook split the observer duties: the
// persister runs first (write-ahead, fallible), the hook after commit
// (coherence, infallible). Replay installs neither until boot is done,
// so replayed mutations are not re-logged.
// The context carries the request's trace span (if any) so the
// persister can attribute the durability cost — the WAL append and
// fsync — to the request that caused it and stamp the traceparent
// into the logged op.
type Persister interface {
	LogRegister(ctx context.Context, name string, g *graph.Graph) error
	LogRemove(ctx context.Context, name string) error
	LogPatch(ctx context.Context, name string, p *graph.Patch) error
}

// Catalog is a concurrency-safe registry of named data graphs with a
// bounded, shared closure cache. The zero value is not usable; create
// catalogs with New.
type Catalog struct {
	mu       sync.Mutex
	graphs   map[string]*graphEntry
	closures map[closureKey]*entry
	lru      *list.List // front = most recently used; values are *entry
	capacity int
	maxBytes int64 // 0 = unbounded

	onMutate MutationHook
	persist  Persister
	patchObs PatchObserver

	tierPolicy    closure.TierPolicy
	denseMaxBytes int
	deltaBudget   int

	hits, misses, evictions uint64
	patchesIncremental      uint64
	patchesRebuild          uint64
	buildTime               time.Duration
	residentBytes           int64
	residentDense           int
	residentSparse          int
	denseBytes              int64
	sparseBytes             int64
}

// New returns an empty catalog bounding resident closures at
// maxClosures (DefaultMaxClosures when non-positive), customised by
// opts.
func New(maxClosures int, opts ...Option) *Catalog {
	if maxClosures <= 0 {
		maxClosures = DefaultMaxClosures
	}
	c := &Catalog{
		graphs:     make(map[string]*graphEntry),
		closures:   make(map[closureKey]*entry),
		lru:        list.New(),
		capacity:   maxClosures,
		tierPolicy: closure.PolicyAuto,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.tierPolicy == "" {
		c.tierPolicy = closure.PolicyAuto
	}
	return c
}

// Register adds a data graph under name and eagerly builds its
// unbounded closure so the first match request is already a cache hit.
// The catalog takes ownership: the graph must not be mutated afterwards
// (it is normalised here so concurrent readers never race on lazy
// adjacency sorting). Registering an existing name fails with
// ErrDuplicate.
func (c *Catalog) Register(name string, g *graph.Graph) error {
	return c.RegisterCtx(context.Background(), name, g)
}

// RegisterCtx is Register with a request context for trace
// attribution: the commit is recorded as a catalog.commit span and the
// persister receives ctx for WAL-append spans.
func (c *Catalog) RegisterCtx(ctx context.Context, name string, g *graph.Graph) error {
	if name == "" {
		return fmt.Errorf("catalog: empty graph name")
	}
	if g == nil {
		return fmt.Errorf("catalog: nil graph %q", name)
	}
	sp := trace.SpanFromContext(ctx).Child("catalog.commit")
	sp.SetStr("op", "register")
	sp.SetStr("graph", name)
	defer sp.End()
	g.Finish()
	c.mu.Lock()
	if _, dup := c.graphs[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	if c.persist != nil {
		if err := c.persist.LogRegister(ctx, name, g); err != nil {
			c.mu.Unlock()
			return err
		}
	}
	c.graphs[name] = &graphEntry{g: g}
	if c.onMutate != nil {
		c.onMutate(name, g, Mutation{})
	}
	c.mu.Unlock()
	// The registration is committed (and durable, with a persister); the
	// eager closure build is a warm-up and can only fail if a concurrent
	// Remove already took the name — not a registration failure.
	_, _ = c.Reach(name, 0)
	return nil
}

// SetPersister installs p as the catalog's write-ahead durability
// callback (one at most; nil removes it). Unlike SetMutationHook there
// is no replay: the persister is installed after boot-time recovery
// precisely so the recovered state is not re-logged.
func (c *Catalog) SetPersister(p Persister) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.persist = p
}

// SetMutationHook installs fn as the catalog's mutation observer (one
// hook at most; a later call replaces the previous hook, nil removes
// it). Installation replays every currently registered graph through fn
// in sorted-name order, so a late-attaching observer — the search
// index — starts coherent with the registry and never misses a graph:
// the replay and all future mutations are serialised under the same
// lock. See MutationHook for the constraints fn must obey.
func (c *Catalog) SetMutationHook(fn MutationHook) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onMutate = fn
	if fn == nil {
		return
	}
	names := make([]string, 0, len(c.graphs))
	for n := range c.graphs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn(n, c.graphs[n].g, Mutation{})
	}
}

// SetPatchObserver installs obs as the catalog's per-patch telemetry
// sink (one at most; zero-value fields are skipped). Observations fire
// after each Apply commit, outside the catalog lock.
func (c *Catalog) SetPatchObserver(obs PatchObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.patchObs = obs
}

// PatchObserver receives per-Apply maintenance telemetry for the
// metrics layer: the end-to-end patch latency in seconds and — on
// incremental commits — the delta cone size in components.
type PatchObserver struct {
	Latency  func(seconds float64)
	ConeSize func(comps float64)
}

// Remove drops a graph and every cached closure derived from it.
func (c *Catalog) Remove(name string) error {
	return c.RemoveCtx(context.Background(), name)
}

// RemoveCtx is Remove with a request context for trace attribution.
func (c *Catalog) RemoveCtx(ctx context.Context, name string) error {
	sp := trace.SpanFromContext(ctx).Child("catalog.commit")
	sp.SetStr("op", "remove")
	sp.SetStr("graph", name)
	defer sp.End()
	c.mu.Lock()
	defer c.mu.Unlock()
	ge, ok := c.graphs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if c.persist != nil {
		if err := c.persist.LogRemove(ctx, name); err != nil {
			return err
		}
	}
	delete(c.graphs, name)
	if c.onMutate != nil {
		c.onMutate(name, ge.g, Mutation{Removed: true})
	}
	c.dropClosuresLocked(name)
	return nil
}

// Apply patches a registered graph in place: the live-mutation path
// behind PATCH /v1/graphs/{name}. Registered graphs are shared
// immutable objects (concurrent matchers and cached closures read
// them), so the patch is applied copy-on-write — the patched clone is
// swapped into the registry and the mutation hook fires with the new
// graph and the patch delta so the search index updates only what
// changed — all under one lock hold, so observers never see a
// half-applied edit.
//
// The cached full closure is maintained incrementally whenever it can
// be: the delta update (and, for the dense tier, the row patch) runs
// outside the lock against the captured closure, and the commit swaps
// the patched closure in alongside the graph. When the update cannot be
// incremental — no cached closure, the patch reshapes the SCC
// condensation, or the delta cone blows the cost budget — the closure
// is invalidated and rebuilt eagerly, like Register's. In-flight
// requests that resolved the old (graph, closure) pair finish against
// that consistent pair.
func (c *Catalog) Apply(name string, p *graph.Patch) (*graph.Graph, error) {
	return c.ApplyCtx(context.Background(), name, p)
}

// ApplyCtx is Apply with a request context for trace attribution: the
// whole commit is recorded as a catalog.commit span (with the
// incremental-vs-rebuild outcome and delta cone size as attributes)
// and the persister receives ctx for WAL-append spans.
func (c *Catalog) ApplyCtx(ctx context.Context, name string, p *graph.Patch) (*graph.Graph, error) {
	if p == nil || p.Empty() {
		return nil, fmt.Errorf("%w: empty patch for %q", ErrBadPatch, name)
	}
	sp := trace.SpanFromContext(ctx).Child("catalog.commit")
	sp.SetStr("op", "patch")
	sp.SetStr("graph", name)
	defer sp.End()
	start := time.Now()
	// Clone + patch outside the lock: the clone is O(nodes + edges) and
	// the catalog mutex gates every match request's graph resolution —
	// holding it across a 100k-node copy would stall the serving hot
	// path behind each mutation. The commit below re-checks that the
	// entry is still the one the clone derived from and retries against
	// the newer graph otherwise (same optimistic pattern the search
	// index uses for its summaries).
	var ng *graph.Graph
	var incremental bool
	var coneSize int
	for {
		c.mu.Lock()
		ge, ok := c.graphs[name]
		var oldReach *closure.Reach
		var oldIdx closure.Index
		if ok {
			if e, cached := c.closures[closureKey{name: name, pathLimit: 0}]; cached {
				select {
				case <-e.ready: // only a finished build can be patched
					oldReach = e.reach
					if e.idxCounted {
						oldIdx = e.idx
					}
				default:
				}
			}
		}
		c.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		var err error
		if ng, err = ge.g.ApplyPatch(p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPatch, err)
		}

		// Incremental closure maintenance, still outside the lock: the
		// delta is computed copy-on-write against the captured closure,
		// so concurrent readers of the old entry are undisturbed and a
		// lost commit race just discards the work.
		var newReach *closure.Reach
		var newIdx closure.Index
		var deltaTime time.Duration
		incremental, coneSize = false, 0
		if oldReach != nil && c.deltaBudget >= 0 {
			deltaStart := time.Now()
			if nr, d, ok2 := oldReach.ApplyEdges(ge.g, len(p.AddNodes), p.DelEdges, p.AddEdges, c.deltaBudget); ok2 {
				newReach = nr
				incremental = true
				coneSize = d.ConeSize()
				switch old := oldIdx.(type) {
				case nil:
					// No index built yet; leave it lazy.
				case *closure.CompIndex:
					// The sparse tier reads straight through the Reach:
					// rewrapping is O(1), incremental by construction.
					newIdx = closure.NewCompIndex(newReach)
				case *closure.Rows:
					if rw, ok3 := closure.UpdateRows(old, oldReach, newReach, d); ok3 {
						newIdx = rw
					} else {
						// Row patch declined (node growth or a wide
						// cone): rebuild the index — cheap at the scale
						// the dense tier admits — re-running tier
						// selection, since the graph may have outgrown
						// the dense budget.
						newIdx = closure.BuildIndex(newReach, c.tierPolicy, c.denseMaxBytes)
					}
				default:
					newIdx = closure.BuildIndex(newReach, c.tierPolicy, c.denseMaxBytes)
				}
			}
			deltaTime = time.Since(deltaStart)
		}

		c.mu.Lock()
		if c.graphs[name] != ge {
			c.mu.Unlock()
			continue // lost a race with another mutation of this name
		}
		if c.persist != nil {
			if err := c.persist.LogPatch(ctx, name, p); err != nil {
				c.mu.Unlock()
				return nil, err
			}
		}
		c.graphs[name] = &graphEntry{g: ng}
		if c.onMutate != nil {
			c.onMutate(name, ng, Mutation{Patch: p, Prev: ge.g})
		}
		c.buildTime += deltaTime
		if incremental {
			c.patchesIncremental++
			c.installClosureLocked(name, newReach, newIdx)
		} else {
			c.patchesRebuild++
			c.dropClosuresLocked(name)
		}
		c.mu.Unlock()
		break
	}
	if !incremental {
		// Warm the closure eagerly, like Register. The patch is
		// committed (and, with a persister, durable) at this point: a
		// warm-up failure — only possible when a concurrent Remove takes
		// the name, making the warm-up moot — must not be reported as a
		// mutation failure, or a client would retry an already-applied
		// patch.
		_, _ = c.Reach(name, 0)
	}
	c.mu.Lock()
	obs := c.patchObs
	c.mu.Unlock()
	if obs.Latency != nil {
		obs.Latency(time.Since(start).Seconds())
	}
	if obs.ConeSize != nil && incremental {
		obs.ConeSize(float64(coneSize))
	}
	sp.SetBool("incremental", incremental)
	if incremental {
		sp.SetInt("cone_comps", int64(coneSize))
	}
	return ng, nil
}

// installClosureLocked replaces every cached closure of name with one
// freshly patched full-closure entry (already built, ready closed) and
// optionally its maintained index, keeping the LRU accounting exact.
// Bounded-path-limit entries are simply dropped — they are rebuilt
// lazily on next use. Callers hold c.mu.
func (c *Catalog) installClosureLocked(name string, r *closure.Reach, idx closure.Index) {
	c.dropClosuresLocked(name)
	key := closureKey{name: name, pathLimit: 0}
	e := &entry{key: key, ready: make(chan struct{}), reach: r}
	close(e.ready)
	e.elem = c.lru.PushFront(e)
	c.closures[key] = e
	e.bytes = int64(r.Bytes())
	c.residentBytes += e.bytes
	if idx != nil {
		e.idxOnce.Do(func() { e.idx = idx })
		ib := int64(idx.Bytes())
		e.idxBytes = ib
		e.idxTier = idx.Tier()
		e.idxCounted = true
		c.residentBytes += ib
		switch e.idxTier {
		case closure.TierSparse:
			c.residentSparse++
			c.sparseBytes += ib
		default:
			c.residentDense++
			c.denseBytes += ib
		}
	}
	c.evictLocked()
	c.evictBytesLocked(e)
}

// Replace swaps the entire registry for state in one lock hold: every
// current graph is removed (the mutation hook fires so the search
// index drops it), every graph in state is registered (the hook fires
// again), and no observer ever sees a mixture of old and new. It is
// the follower's bootstrap path — the primary shipped a full catalog
// at an exact seq — so, unlike Register/Remove, it never consults the
// persister: the caller owns durability and has already landed the
// store on a snapshot of exactly this state. Like Register, closures
// of the new graphs are warmed eagerly after the swap.
func (c *Catalog) Replace(state map[string]*graph.Graph) error {
	names := make([]string, 0, len(state))
	for name, g := range state {
		if name == "" {
			return fmt.Errorf("catalog: empty graph name")
		}
		if g == nil {
			return fmt.Errorf("catalog: nil graph %q", name)
		}
		g.Finish()
		names = append(names, name)
	}
	sort.Strings(names)
	c.mu.Lock()
	old := make([]string, 0, len(c.graphs))
	for n := range c.graphs {
		old = append(old, n)
	}
	sort.Strings(old)
	for _, n := range old {
		ge := c.graphs[n]
		delete(c.graphs, n)
		if c.onMutate != nil {
			c.onMutate(n, ge.g, Mutation{Removed: true})
		}
		c.dropClosuresLocked(n)
	}
	for _, n := range names {
		c.graphs[n] = &graphEntry{g: state[n]}
		if c.onMutate != nil {
			c.onMutate(n, state[n], Mutation{})
		}
	}
	c.mu.Unlock()
	// Warm-ups, like Register's: the swap is committed; a warm-up can
	// only fail if a concurrent mutation already took the name.
	for _, n := range names {
		_, _ = c.Reach(n, 0)
	}
	return nil
}

// dropClosuresLocked evicts every cached closure derived from name.
// Callers hold c.mu.
func (c *Catalog) dropClosuresLocked(name string) {
	for k, e := range c.closures {
		if k.name == name {
			c.lru.Remove(e.elem)
			c.dropAccountingLocked(e)
			delete(c.closures, k)
		}
	}
}

// Export returns a point-in-time copy of the registry (name → graph;
// the graphs are the shared immutable objects, not clones). When
// prepare is non-nil it runs under the same lock hold, before the
// copy: the snapshot path passes the store's WAL rotation here, so the
// exported state corresponds exactly to the rotation's sequence number
// — no mutation (and therefore no WAL append, since the persister also
// runs under this lock) can interleave.
func (c *Catalog) Export(prepare func()) map[string]*graph.Graph {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prepare != nil {
		prepare()
	}
	out := make(map[string]*graph.Graph, len(c.graphs))
	for n, ge := range c.graphs {
		out[n] = ge.g
	}
	return out
}

// dropAccountingLocked retires an entry's contribution to the resident
// memory stats. Callers hold c.mu.
func (c *Catalog) dropAccountingLocked(e *entry) {
	c.residentBytes -= e.bytes + e.idxBytes
	if e.idxCounted {
		switch e.idxTier {
		case closure.TierSparse:
			c.residentSparse--
			c.sparseBytes -= e.idxBytes
		default:
			c.residentDense--
			c.denseBytes -= e.idxBytes
		}
	}
	e.bytes, e.idxBytes, e.idxCounted = 0, 0, false
}

// Get returns the registered graph.
func (c *Catalog) Get(name string) (*graph.Graph, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e.g, nil
}

// ContentSets returns the cached shingle sets of the named graph's
// node contents (computed once, on first use, with the default shingle
// window) together with the graph they index — callers that resolved
// the graph separately can detect a concurrent Remove/Register swap by
// comparing pointers.
func (c *Catalog) ContentSets(name string) (*graph.Graph, []shingle.Set, error) {
	c.mu.Lock()
	e, ok := c.graphs[name]
	c.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.contentOnce.Do(func() {
		e.contentSets = simmatrix.ContentSets(e.g, 0)
	})
	return e.g, e.contentSets, nil
}

// GraphInfo is a point-in-time description of one registered graph and
// the reachability state the catalog holds for it, as served by the
// GET /v1/graphs/{name} detail endpoint.
type GraphInfo struct {
	// Name is the registered name.
	Name string `json:"name"`
	// Nodes and Edges describe the graph itself.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// ResidentClosures counts cached closure entries derived from this
	// graph (one per requested path limit).
	ResidentClosures int `json:"resident_closures"`
	// ClosureBytes sums the resident closure bytes across those entries.
	ClosureBytes int64 `json:"closure_bytes"`
	// IndexTier is the tier of the full (path-limit 0) closure's
	// matcher-facing index, empty while none is built.
	IndexTier string `json:"index_tier,omitempty"`
	// IndexBytes sums the resident index bytes across the entries.
	IndexBytes int64 `json:"index_bytes"`
}

// Describe reports the catalog's view of one registered graph: its
// size plus how much reachability state is currently resident for it
// and in which tier.
func (c *Catalog) Describe(name string) (GraphInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ge, ok := c.graphs[name]
	if !ok {
		return GraphInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	info := GraphInfo{
		Name:  name,
		Nodes: ge.g.NumNodes(),
		Edges: ge.g.NumEdges(),
	}
	for k, e := range c.closures {
		if k.name != name {
			continue
		}
		info.ResidentClosures++
		info.ClosureBytes += e.bytes
		info.IndexBytes += e.idxBytes
		if k.pathLimit == 0 && e.idxCounted {
			info.IndexTier = string(e.idxTier)
		}
	}
	return info, nil
}

// Names lists the registered graphs in sorted order.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.graphs))
	for n := range c.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered graphs.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.graphs)
}

// Reach returns the shared reachability index of the named graph under
// the given path limit (0 = the full transitive closure), building and
// caching it on first use. Concurrent callers for the same key share a
// single build.
func (c *Catalog) Reach(name string, pathLimit int) (*closure.Reach, error) {
	_, r, err := c.GetWithReach(name, pathLimit)
	return r, err
}

// GetWithReach resolves the named graph and its shared reachability
// index in one step, so the pair is guaranteed consistent even if the
// name is concurrently removed and re-registered with a different
// graph (separate Get + Reach calls could pair the old graph with the
// new graph's closure). The graph and the cached closure entry are
// resolved under one lock acquisition; a fresh build uses the graph
// pointer captured there, never a re-lookup by name.
func (c *Catalog) GetWithReach(name string, pathLimit int) (*graph.Graph, *closure.Reach, error) {
	g, e, _, err := c.getEntry(trace.Span{}, name, pathLimit)
	if err != nil {
		return nil, nil, err
	}
	return g, e.reach, nil
}

// GetWithReachCtx is GetWithReach recording a catalog.resolve span
// (cache hit, closure build time) under the request's trace.
func (c *Catalog) GetWithReachCtx(ctx context.Context, name string, pathLimit int) (*graph.Graph, *closure.Reach, error) {
	sp := trace.SpanFromContext(ctx).Child("catalog.resolve")
	defer sp.End()
	sp.SetStr("graph", name)
	g, e, hit, err := c.getEntry(sp, name, pathLimit)
	if err != nil {
		sp.SetStr("error", err.Error())
		return nil, nil, err
	}
	sp.SetBool("closure_cache_hit", hit)
	return g, e.reach, nil
}

// GetWithIndexCtx is GetWithIndex recording a catalog.resolve span
// (cache hit, tier, build times) under the request's trace.
func (c *Catalog) GetWithIndexCtx(ctx context.Context, name string, pathLimit int) (*graph.Graph, *closure.Reach, closure.Index, error) {
	sp := trace.SpanFromContext(ctx).Child("catalog.resolve")
	defer sp.End()
	sp.SetStr("graph", name)
	g, e, hit, err := c.getEntry(sp, name, pathLimit)
	if err != nil {
		sp.SetStr("error", err.Error())
		return nil, nil, nil, err
	}
	sp.SetBool("closure_cache_hit", hit)
	c.ensureIndex(sp, e)
	sp.SetStr("tier", string(e.idx.Tier()))
	return g, e.reach, e.idx, nil
}

// GetWithIndex resolves the named graph, its reachability closure, and
// the matcher-facing index (the representation the compMaxCard /
// compMaxSim trim consumes, in whichever tier the catalog's policy
// selects for the graph's size) as one consistent triple. The index is
// built once per cached closure — single-flight, like the closure
// itself — and shared by every request, so per-request matcher setup
// materialises nothing.
func (c *Catalog) GetWithIndex(name string, pathLimit int) (*graph.Graph, *closure.Reach, closure.Index, error) {
	g, e, _, err := c.getEntry(trace.Span{}, name, pathLimit)
	if err != nil {
		return nil, nil, nil, err
	}
	c.ensureIndex(trace.Span{}, e)
	return g, e.reach, e.idx, nil
}

// ensureIndex performs the single-flight matcher-index build for a
// resolved closure entry. When this call is the one that builds, a
// catalog.index_build child span records the tier-selection outcome
// under the request's resolve span (inert span = untraced caller).
func (c *Catalog) ensureIndex(sp trace.Span, e *entry) {
	e.idxOnce.Do(func() {
		bsp := sp.Child("catalog.index_build")
		start := time.Now()
		e.idx = closure.BuildIndex(e.reach, c.tierPolicy, c.denseMaxBytes)
		built := time.Since(start)
		ib := int64(e.idx.Bytes())
		tier := e.idx.Tier()
		bsp.SetStr("tier", string(tier))
		bsp.SetInt("bytes", ib)
		bsp.End()
		c.mu.Lock()
		c.buildTime += built
		// Account only while the entry is still resident; an entry
		// evicted mid-build keeps serving its direct waiters but no
		// longer counts toward resident memory.
		if c.closures[e.key] == e {
			e.idxBytes = ib
			e.idxTier = tier
			e.idxCounted = true
			c.residentBytes += ib
			switch tier {
			case closure.TierSparse:
				c.residentSparse++
				c.sparseBytes += ib
			default:
				c.residentDense++
				c.denseBytes += ib
			}
			c.evictBytesLocked(e)
		}
		c.mu.Unlock()
	})
}

// getEntry resolves the graph and the cache slot for (name, pathLimit),
// waiting on or performing the single-flight closure build. hit
// reports whether the closure was already cached (possibly still
// building under another request); a build performed here is recorded
// as a catalog.closure_build child of sp when sp is active.
func (c *Catalog) getEntry(sp trace.Span, name string, pathLimit int) (*graph.Graph, *entry, bool, error) {
	if pathLimit < 0 {
		pathLimit = 0
	}
	key := closureKey{name: name, pathLimit: pathLimit}

	c.mu.Lock()
	ge, ok := c.graphs[name]
	if !ok {
		c.mu.Unlock()
		return nil, nil, false, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	g := ge.g
	if e, ok := c.closures[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return g, e, true, nil
	}
	c.misses++
	e := &entry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.closures[key] = e
	c.evictLocked()
	c.mu.Unlock()

	bsp := sp.Child("catalog.closure_build")
	start := time.Now()
	e.reach = closure.ComputeBounded(g, pathLimit)
	built := time.Since(start)
	close(e.ready)
	bsp.SetInt("path_limit", int64(pathLimit))
	bsp.End()

	rb := int64(e.reach.Bytes())
	c.mu.Lock()
	c.buildTime += built
	if c.closures[key] == e { // not evicted while building
		e.bytes = rb
		c.residentBytes += rb
		c.evictBytesLocked(e)
	}
	c.mu.Unlock()
	return g, e, false, nil
}

// evictLocked enforces the count LRU bound. In-flight builds may be
// evicted — their waiters keep a direct pointer to the entry and are
// unaffected; the closure simply is not retained once they are done.
func (c *Catalog) evictLocked() {
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		c.lru.Remove(back)
		c.dropAccountingLocked(victim)
		delete(c.closures, victim.key)
		c.evictions++
	}
}

// evictBytesLocked enforces the byte LRU bound after an accounting
// update. keep — the entry whose build just landed — is never the
// victim: evicting the closure a request is actively consuming would
// thrash (rebuild, re-evict, repeat) whenever one graph alone exceeds
// the budget, so a single oversized entry instead empties the rest of
// the cache and is dropped on the next miss. keep is merely skipped,
// not a stop condition — it can sit at the LRU back when a concurrent
// hit promoted another entry mid-build, and the budget must still win
// against the entries in front of it. Callers hold c.mu.
func (c *Catalog) evictBytesLocked(keep *entry) {
	if c.maxBytes <= 0 {
		return
	}
	for c.residentBytes > c.maxBytes {
		el := c.lru.Back()
		if el != nil && el.Value.(*entry) == keep {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		victim := el.Value.(*entry)
		c.lru.Remove(el)
		c.dropAccountingLocked(victim)
		delete(c.closures, victim.key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Catalog) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Graphs:             len(c.graphs),
		ResidentClosures:   c.lru.Len(),
		ResidentIndexes:    c.residentDense + c.residentSparse,
		ResidentDense:      c.residentDense,
		ResidentSparse:     c.residentSparse,
		DenseIndexBytes:    c.denseBytes,
		SparseIndexBytes:   c.sparseBytes,
		ResidentBytes:      c.residentBytes,
		MaxClosures:        c.capacity,
		MaxBytes:           c.maxBytes,
		TierPolicy:         string(c.tierPolicy),
		Hits:               c.hits,
		Misses:             c.misses,
		Evictions:          c.evictions,
		BuildTime:          c.buildTime,
		PatchesIncremental: c.patchesIncremental,
		PatchesRebuild:     c.patchesRebuild,
	}
}
