package catalog

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"graphmatch/internal/closure"
	"graphmatch/internal/graph"
)

func chain(n int) *graph.Graph {
	labels := make([]string, n)
	edges := make([][2]int, 0, n-1)
	for i := range labels {
		labels[i] = fmt.Sprintf("n%d", i)
		if i > 0 {
			edges = append(edges, [2]int{i - 1, i})
		}
	}
	return graph.FromEdgeList(labels, edges)
}

func TestRegisterAndGet(t *testing.T) {
	c := New(4)
	g := chain(5)
	if err := c.Register("web", g); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("web")
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("Get returned a different graph")
	}
	if err := c.Register("web", chain(3)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register: err = %v, want ErrDuplicate", err)
	}
	if _, err := c.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing get: err = %v, want ErrNotFound", err)
	}
	if names := c.Names(); len(names) != 1 || names[0] != "web" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegisterPrecomputesClosure(t *testing.T) {
	c := New(4)
	if err := c.Register("g", chain(6)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.ResidentClosures != 1 {
		t.Fatalf("after register: %+v, want 1 miss and 1 resident closure", s)
	}
	r, err := c.Reach("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable(0, 5) || r.Reachable(5, 0) {
		t.Fatalf("closure semantics wrong on a 6-chain")
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("post-register Reach should hit, stats %+v", s)
	}
}

func TestReachSharedPointer(t *testing.T) {
	c := New(4)
	if err := c.Register("g", chain(8)); err != nil {
		t.Fatal(err)
	}
	r1, _ := c.Reach("g", 0)
	r2, _ := c.Reach("g", 0)
	if r1 != r2 {
		t.Fatalf("repeated Reach returned distinct indexes — closure not shared")
	}
	// A bounded index is a different cache slot with different semantics.
	b, err := c.Reach("g", 1)
	if err != nil {
		t.Fatal(err)
	}
	if b == r1 {
		t.Fatalf("bounded and unbounded indexes share a slot")
	}
	if b.Reachable(0, 2) {
		t.Fatalf("1-bounded index reports a 2-hop path")
	}
	if !r1.Reachable(0, 2) {
		t.Fatalf("unbounded index misses a 2-hop path")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	for _, name := range []string{"a", "b", "c"} {
		if err := c.Register(name, chain(4)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.ResidentClosures != 2 {
		t.Fatalf("resident = %d, want 2", s.ResidentClosures)
	}
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// "a" was evicted; touching it is a miss that rebuilds and evicts "b".
	if _, err := c.Reach("a", 0); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Misses != 4 || s.Evictions != 2 {
		t.Fatalf("after rebuild: %+v, want 4 misses and 2 evictions", s)
	}
	// "c" is still resident: a hit.
	hits := s.Hits
	if _, err := c.Reach("c", 0); err != nil {
		t.Fatal(err)
	}
	if s = c.Stats(); s.Hits != hits+1 {
		t.Fatalf("touching resident closure was not a hit: %+v", s)
	}
}

func TestRemove(t *testing.T) {
	c := New(4)
	if err := c.Register("g", chain(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reach("g", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("g"); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Graphs != 0 || s.ResidentClosures != 0 {
		t.Fatalf("after remove: %+v", s)
	}
	if _, err := c.Reach("g", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Reach after remove: %v, want ErrNotFound", err)
	}
	if err := c.Remove("g"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v, want ErrNotFound", err)
	}
}

// TestConcurrentReachSingleFlight hammers one key from many goroutines:
// every caller must get the same index and the build must run once.
func TestConcurrentReachSingleFlight(t *testing.T) {
	c := New(4)
	c.mu.Lock()
	g := chain(64)
	g.Finish()
	c.graphs["g"] = &graphEntry{g: g} // bypass Register's eager build
	c.mu.Unlock()

	const workers = 32
	results := make([]any, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Reach("g", 0)
			if err != nil {
				results[i] = err
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got %v, worker 0 got %v", i, results[i], results[0])
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", s.Misses)
	}
	if s.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, workers-1)
	}
}

// TestContentSetsCachedAndConsistent checks that the data-side shingle
// sets are computed once per graph and returned with the graph they
// index.
func TestContentSetsCachedAndConsistent(t *testing.T) {
	c := New(4)
	g := chain(5)
	if err := c.Register("g", g); err != nil {
		t.Fatal(err)
	}
	cg, sets, err := c.ContentSets("g")
	if err != nil {
		t.Fatal(err)
	}
	if cg != g {
		t.Fatalf("ContentSets returned a different graph")
	}
	if len(sets) != g.NumNodes() {
		t.Fatalf("sets = %d, want %d", len(sets), g.NumNodes())
	}
	_, sets2, err := c.ContentSets("g")
	if err != nil {
		t.Fatal(err)
	}
	if &sets[0] != &sets2[0] {
		t.Fatalf("ContentSets recomputed instead of returning the cached slice")
	}
	if _, _, err := c.ContentSets("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing graph: %v, want ErrNotFound", err)
	}
	// GetWithReach returns a consistent (graph, closure) pair.
	gg, r, err := c.GetWithReach("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gg != g || r.NumNodes() != g.NumNodes() {
		t.Fatalf("GetWithReach pair inconsistent")
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatalf("empty hit rate = %v", s.HitRate())
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

func TestGetWithIndexSharedAndConsistent(t *testing.T) {
	c := New(4)
	g := chain(12)
	if err := c.Register("web", g); err != nil {
		t.Fatal(err)
	}
	g1, r1, idx1, err := c.GetWithIndex("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, r2, idx2, err := c.GetWithIndex("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 || r1 != r2 || idx1 != idx2 {
		t.Fatal("GetWithIndex must return the shared (graph, reach, index) triple")
	}
	// The index must agree with the reach it derives from.
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if idx1.Reachable(graph.NodeID(u), graph.NodeID(v)) != r1.Reachable(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("index disagrees with reach at (%d,%d)", u, v)
			}
		}
	}
	// A different path limit is a different cache slot with its own index.
	_, rb, idxB, err := c.GetWithIndex("web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if idxB == idx1 || rb == r1 {
		t.Fatal("bounded index must not share the unbounded slot")
	}
}

func TestTierPolicySelection(t *testing.T) {
	g := chain(16)
	for _, tc := range []struct {
		opts []Option
		want closure.Tier
	}{
		{nil, closure.TierDense}, // auto on a tiny graph
		{[]Option{WithTierPolicy(closure.PolicySparse)}, closure.TierSparse},
		{[]Option{WithTierPolicy(closure.PolicyDense)}, closure.TierDense},
		// Auto with a 1-byte dense budget tips over to sparse.
		{[]Option{WithDenseMaxBytes(1)}, closure.TierSparse},
	} {
		c := New(4, tc.opts...)
		if err := c.Register("web", g.Clone()); err != nil {
			t.Fatal(err)
		}
		_, _, idx, err := c.GetWithIndex("web", 0)
		if err != nil {
			t.Fatal(err)
		}
		if idx.Tier() != tc.want {
			t.Fatalf("opts %v built tier %q, want %q", tc.opts, idx.Tier(), tc.want)
		}
		st := c.Stats()
		wantDense, wantSparse := 1, 0
		if tc.want == closure.TierSparse {
			wantDense, wantSparse = 0, 1
		}
		if st.ResidentDense != wantDense || st.ResidentSparse != wantSparse {
			t.Fatalf("per-tier counts %d/%d, want %d/%d", st.ResidentDense, st.ResidentSparse, wantDense, wantSparse)
		}
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// A budget big enough for roughly one chain(60) closure: resolving a
	// second graph must evict the first, but never the entry just
	// resolved.
	c := New(16, WithMaxBytes(int64(closureFootprint(60))+64))
	for _, name := range []string{"a", "b"} {
		if err := c.Register(name, chain(60)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no byte-budget evictions after two registrations: %+v", st)
	}
	if st.MaxBytes <= 0 {
		t.Fatalf("MaxBytes = %d, want > 0", st.MaxBytes)
	}
	if st.ResidentBytes > st.MaxBytes {
		t.Fatalf("ResidentBytes %d exceeds budget %d", st.ResidentBytes, st.MaxBytes)
	}
	// The most recent graph must still resolve from cache (a hit).
	before := c.Stats().Hits
	if _, _, err := c.GetWithReach("b", 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != before+1 {
		t.Fatal("byte eviction removed the most recently resolved entry")
	}
}

func TestByteBudgetKeepsOversizedEntryServing(t *testing.T) {
	// One graph alone blows the budget: its requests must still be
	// served (the entry survives as the sole resident) rather than
	// thrashing.
	c := New(16, WithMaxBytes(8))
	if err := c.Register("big", chain(40)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.GetWithIndex("big", 0); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ResidentClosures != 1 {
		t.Fatalf("ResidentClosures = %d, want the oversized entry to stay resident", st.ResidentClosures)
	}
}

// closureFootprint reports the resident bytes of one chain(n) closure
// as the catalog accounts them.
func closureFootprint(n int) int {
	return closure.Compute(chain(n)).Bytes()
}

func TestConcurrentIndexSingleFlight(t *testing.T) {
	c := New(4)
	if err := c.Register("web", chain(60)); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	got := make([]closure.Index, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, idx, err := c.GetWithIndex("web", 0)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = idx
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent GetWithIndex built more than one index")
		}
	}
	if st := c.Stats(); st.ResidentIndexes != 1 {
		t.Fatalf("ResidentIndexes = %d, want 1", st.ResidentIndexes)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := New(2)
	for _, name := range []string{"a", "b"} {
		if err := c.Register(name, chain(20)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ResidentBytes <= 0 {
		t.Fatalf("ResidentBytes = %d, want > 0 after registration", st.ResidentBytes)
	}
	if st.ResidentIndexes != 0 {
		t.Fatalf("ResidentIndexes = %d, want 0 before any index consumer", st.ResidentIndexes)
	}
	if _, _, _, err := c.GetWithIndex("a", 0); err != nil {
		t.Fatal(err)
	}
	withIdx := c.Stats()
	if withIdx.ResidentIndexes != 1 {
		t.Fatalf("ResidentIndexes = %d, want 1", withIdx.ResidentIndexes)
	}
	if withIdx.ResidentBytes <= st.ResidentBytes {
		t.Fatal("materialising the index must grow ResidentBytes")
	}
	// Filling the LRU with fresh slots evicts the old ones and returns
	// their bytes; removing everything zeroes the account.
	if _, _, err := c.GetWithReach("a", 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetWithReach("b", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("b"); err != nil {
		t.Fatal(err)
	}
	end := c.Stats()
	if end.ResidentBytes != 0 || end.ResidentIndexes != 0 || end.ResidentClosures != 0 {
		t.Fatalf("after removing all graphs: %+v, want empty accounting", end)
	}
	if end.ResidentDense != 0 || end.ResidentSparse != 0 || end.DenseIndexBytes != 0 || end.SparseIndexBytes != 0 {
		t.Fatalf("per-tier accounting not zeroed: %+v", end)
	}
}

func TestResidentIndexAccountingZeroByteIndex(t *testing.T) {
	// A 0-node graph's index occupies zero bytes but is still resident;
	// the ResidentIndexes counter must balance across build and removal
	// even then.
	c := New(2)
	empty := graph.New(0)
	if err := c.Register("empty", empty); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.GetWithIndex("empty", 0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentIndexes != 1 {
		t.Fatalf("ResidentIndexes = %d, want 1", st.ResidentIndexes)
	}
	if err := c.Remove("empty"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentIndexes != 0 || st.ResidentBytes != 0 {
		t.Fatalf("after remove: %+v, want zeroed accounting", st)
	}
}

func TestByteBudgetEvictsPastKeptEntry(t *testing.T) {
	// keep can sit at the LRU back when a concurrent hit promoted
	// another entry between keep's insertion and its build landing; the
	// evictor must skip keep and still reclaim the entries in front of
	// it, not give up. White-box: the interleaving is driven directly
	// because it needs a hit mid-build.
	c := New(16) // no byte budget yet: both entries must come resident
	for _, name := range []string{"a", "b"} {
		if err := c.Register(name, chain(30)); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	keep := c.closures[closureKey{name: "b", pathLimit: 0}]
	if keep == nil {
		t.Fatalf("entry b missing")
	}
	c.lru.MoveToBack(keep.elem) // the concurrent-hit-promoted-a shape
	c.maxBytes = 1              // now force the budget under both entries
	c.evictBytesLocked(keep)
	c.mu.Unlock()
	st := c.Stats()
	if st.ResidentClosures != 1 {
		t.Fatalf("ResidentClosures = %d, want only the kept entry resident", st.ResidentClosures)
	}
	c.mu.Lock()
	_, aAlive := c.closures[closureKey{name: "a", pathLimit: 0}]
	_, bAlive := c.closures[closureKey{name: "b", pathLimit: 0}]
	c.mu.Unlock()
	if aAlive || !bAlive {
		t.Fatalf("evictor kept a=%v b=%v, want the non-kept entry evicted", aAlive, bAlive)
	}
}

// TestNamesSorted is the determinism regression for the graph listing:
// names come back sorted no matter the registration order, so /v1/graphs
// and the search subsystem see a stable enumeration.
func TestNamesSorted(t *testing.T) {
	c := New(8)
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		if err := c.Register(name, chain(3)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "beta", "mid", "omega", "zeta"}
	for i := 0; i < 5; i++ { // map iteration would betray itself across calls
		got := c.Names()
		if len(got) != len(want) {
			t.Fatalf("Names = %v", got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Names = %v, want %v", got, want)
			}
		}
	}
}

// TestMutationHook pins the hook contract: replay on install, one
// event per Register/Remove, in order.
func TestMutationHook(t *testing.T) {
	type event struct {
		name    string
		removed bool
	}
	c := New(4)
	if err := c.Register("pre", chain(3)); err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		events []event
	)
	c.SetMutationHook(func(name string, g *graph.Graph, m Mutation) {
		if g == nil {
			t.Errorf("hook for %q got nil graph", name)
		}
		mu.Lock()
		events = append(events, event{name, m.Removed})
		mu.Unlock()
	})
	if err := c.Register("a", chain(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("pre"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove missing: %v", err)
	}
	want := []event{{"pre", false}, {"a", false}, {"pre", true}}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

// TestDescribe checks the detail view: graph size plus resident
// closure/index accounting, and ErrNotFound for unknown names.
func TestDescribe(t *testing.T) {
	c := New(4)
	if err := c.Register("g", chain(6)); err != nil {
		t.Fatal(err)
	}
	info, err := c.Describe("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "g" || info.Nodes != 6 || info.Edges != 5 {
		t.Fatalf("info = %+v", info)
	}
	if info.ResidentClosures != 1 || info.ClosureBytes <= 0 {
		t.Fatalf("closure accounting: %+v", info)
	}
	if info.IndexTier != "" {
		t.Fatalf("index tier %q before any index build", info.IndexTier)
	}
	if _, _, _, err := c.GetWithIndex("g", 0); err != nil {
		t.Fatal(err)
	}
	info, err = c.Describe("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.IndexTier != string(closure.TierDense) {
		t.Fatalf("index tier = %q after index build, want dense", info.IndexTier)
	}
	if _, err := c.Describe("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("describe missing: %v", err)
	}
}

// TestApplyPatch checks the live-mutation path: copy-on-write swap,
// closure invalidation + eager rebuild, and the mutation hook firing
// with the patched graph.
func TestApplyPatch(t *testing.T) {
	c := New(4)
	if err := c.Register("web", chain(3)); err != nil {
		t.Fatal(err)
	}
	old, _ := c.Get("web")
	oldReach, err := c.Reach("web", 0)
	if err != nil {
		t.Fatal(err)
	}

	var hooked *graph.Graph
	var hookedMut Mutation
	c.SetMutationHook(func(name string, g *graph.Graph, m Mutation) {
		if name == "web" && !m.Removed {
			hooked = g
			hookedMut = m
		}
	})

	ng, err := c.Apply("web", &graph.Patch{
		AddNodes: []graph.Node{{Label: "n3", Weight: 1}},
		AddEdges: [][2]graph.NodeID{{2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ng == old {
		t.Fatal("Apply mutated in place instead of copy-on-write")
	}
	if old.NumNodes() != 3 {
		t.Fatal("old graph mutated")
	}
	got, _ := c.Get("web")
	if got != ng || got.NumNodes() != 4 {
		t.Fatalf("registry holds %v, want patched graph", got)
	}
	if hooked != ng {
		t.Fatal("mutation hook did not observe the patched graph")
	}
	if hookedMut.Patch == nil || hookedMut.Prev != old {
		t.Fatalf("mutation hook delta = %+v, want patch and previous graph", hookedMut)
	}
	// The cached closure was replaced for the new graph (patched
	// incrementally or rebuilt — either way a fresh value).
	newReach, err := c.Reach("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	if newReach == oldReach {
		t.Fatal("stale closure survived the patch")
	}
	if !newReach.Reachable(0, 3) {
		t.Fatal("rebuilt closure misses the patched path 0→3")
	}

	// Bad patches leave everything untouched.
	if _, err := c.Apply("web", &graph.Patch{DelEdges: [][2]graph.NodeID{{3, 0}}}); err == nil {
		t.Fatal("deleting an absent edge should fail")
	}
	if g, _ := c.Get("web"); g != ng {
		t.Fatal("failed patch replaced the graph")
	}
	if _, err := c.Apply("missing", &graph.Patch{AddNodes: []graph.Node{{Label: "x"}}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("apply to missing graph: %v", err)
	}
	if _, err := c.Apply("web", &graph.Patch{}); err == nil {
		t.Fatal("empty patch should fail")
	}
}

// vetoPersister fails every log call.
type vetoPersister struct{ err error }

func (v vetoPersister) LogRegister(context.Context, string, *graph.Graph) error { return v.err }
func (v vetoPersister) LogRemove(context.Context, string) error                 { return v.err }
func (v vetoPersister) LogPatch(context.Context, string, *graph.Patch) error    { return v.err }

// TestPersisterVeto checks write-ahead semantics: a persister error
// aborts the mutation before anything commits.
func TestPersisterVeto(t *testing.T) {
	c := New(4)
	if err := c.Register("keep", chain(3)); err != nil {
		t.Fatal(err)
	}
	bang := errors.New("disk full")
	c.SetPersister(vetoPersister{err: bang})

	if err := c.Register("new", chain(2)); !errors.Is(err, bang) {
		t.Fatalf("register under veto: %v", err)
	}
	if _, err := c.Get("new"); !errors.Is(err, ErrNotFound) {
		t.Fatal("vetoed register still committed")
	}
	if err := c.Remove("keep"); !errors.Is(err, bang) {
		t.Fatalf("remove under veto: %v", err)
	}
	if _, err := c.Get("keep"); err != nil {
		t.Fatal("vetoed remove still committed")
	}
	if _, err := c.Apply("keep", &graph.Patch{AddNodes: []graph.Node{{Label: "x"}}}); !errors.Is(err, bang) {
		t.Fatalf("apply under veto: %v", err)
	}
	if g, _ := c.Get("keep"); g.NumNodes() != 3 {
		t.Fatal("vetoed apply still committed")
	}

	c.SetPersister(nil)
	if err := c.Register("new", chain(2)); err != nil {
		t.Fatal(err)
	}
}

func TestExport(t *testing.T) {
	c := New(4)
	for _, n := range []string{"a", "b"} {
		if err := c.Register(n, chain(3)); err != nil {
			t.Fatal(err)
		}
	}
	prepared := false
	state := c.Export(func() { prepared = true })
	if !prepared {
		t.Fatal("prepare did not run")
	}
	if len(state) != 2 {
		t.Fatalf("exported %d graphs, want 2", len(state))
	}
	ga, _ := c.Get("a")
	if state["a"] != ga {
		t.Fatal("export should share the registered graph objects")
	}
}

// applyRandomPatch builds and applies a random valid patch to the named
// graph in every given catalog, failing the test on any error or if the
// catalogs diverge on the patched graph.
func applyRandomPatch(t *testing.T, rng *rand.Rand, name string, cats ...*Catalog) {
	t.Helper()
	g, err := cats[0].Get(name)
	if err != nil {
		t.Fatal(err)
	}
	var p *graph.Patch
	for p == nil || p.Empty() {
		p = &graph.Patch{}
		for i := 0; i < rng.Intn(3); i++ {
			p.AddNodes = append(p.AddNodes, graph.Node{Label: fmt.Sprintf("p%d", rng.Intn(100)), Weight: 1})
		}
		total := g.NumNodes() + len(p.AddNodes)
		var existing [][2]graph.NodeID
		g.Edges(func(from, to graph.NodeID) bool {
			existing = append(existing, [2]graph.NodeID{from, to})
			return true
		})
		seen := map[[2]graph.NodeID]bool{}
		for i := 0; i < rng.Intn(4) && len(existing) > 0; i++ {
			e := existing[rng.Intn(len(existing))]
			if !seen[e] {
				seen[e] = true
				p.DelEdges = append(p.DelEdges, e)
			}
		}
		for i := 0; i < rng.Intn(5); i++ {
			e := [2]graph.NodeID{graph.NodeID(rng.Intn(total)), graph.NodeID(rng.Intn(total))}
			if !seen[e] {
				p.AddEdges = append(p.AddEdges, e)
			}
		}
	}
	for _, c := range cats {
		if _, err := c.Apply(name, p); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
}

// TestApplyIncrementalEquivalence is the closure-maintenance
// quickcheck: a catalog patching its cached closures incrementally must
// expose exactly the same reachability and index answers as one that
// rebuilds from scratch (WithDeltaBudget(-1)), across both index tiers
// and arbitrary patch sequences.
func TestApplyIncrementalEquivalence(t *testing.T) {
	tiers := []closure.TierPolicy{closure.PolicyDense, closure.PolicySparse}
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for _, tier := range tiers {
		t.Run(string(tier), func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(int64(trial)))
				n := 4 + rng.Intn(12)
				g := graph.New(n)
				for i := 0; i < n; i++ {
					g.AddNode(fmt.Sprintf("n%d", i))
				}
				for i := 0; i < rng.Intn(3*n); i++ {
					g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
				}
				g.Finish()

				inc := New(0, WithTierPolicy(tier))
				reb := New(0, WithTierPolicy(tier), WithDeltaBudget(-1))
				for _, c := range []*Catalog{inc, reb} {
					if err := c.Register("g", g); err != nil {
						t.Fatal(err)
					}
					if _, _, _, err := c.GetWithIndex("g", 0); err != nil {
						t.Fatal(err)
					}
				}

				for step := 0; step < 6; step++ {
					applyRandomPatch(t, rng, "g", inc, reb)
					_, ri, ii, err := inc.GetWithIndex("g", 0)
					if err != nil {
						t.Fatal(err)
					}
					_, rr, ir, err := reb.GetWithIndex("g", 0)
					if err != nil {
						t.Fatal(err)
					}
					if ri.NumNodes() != rr.NumNodes() {
						t.Fatalf("trial %d step %d: node counts diverge: %d vs %d", trial, step, ri.NumNodes(), rr.NumNodes())
					}
					for u := 0; u < ri.NumNodes(); u++ {
						uu := graph.NodeID(u)
						if ii.FanOut(uu) != ir.FanOut(uu) || ii.FanIn(uu) != ir.FanIn(uu) {
							t.Fatalf("trial %d step %d: fan counts diverge at %d", trial, step, u)
						}
						for v := 0; v < ri.NumNodes(); v++ {
							vv := graph.NodeID(v)
							if ri.Reachable(uu, vv) != rr.Reachable(uu, vv) {
								t.Fatalf("trial %d step %d: reachability diverges at (%d,%d): inc=%v reb=%v",
									trial, step, u, v, ri.Reachable(uu, vv), rr.Reachable(uu, vv))
							}
							if ii.Reachable(uu, vv) != ir.Reachable(uu, vv) {
								t.Fatalf("trial %d step %d: index diverges at (%d,%d)", trial, step, u, v)
							}
						}
					}
				}
				if inc.Stats().PatchesIncremental == 0 {
					t.Fatalf("trial %d: incremental catalog never took the delta path", trial)
				}
				if reb.Stats().PatchesIncremental != 0 {
					t.Fatalf("trial %d: rebuild catalog took the delta path", trial)
				}
			}
		})
	}
}
