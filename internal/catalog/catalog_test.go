package catalog

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"graphmatch/internal/graph"
)

func chain(n int) *graph.Graph {
	labels := make([]string, n)
	edges := make([][2]int, 0, n-1)
	for i := range labels {
		labels[i] = fmt.Sprintf("n%d", i)
		if i > 0 {
			edges = append(edges, [2]int{i - 1, i})
		}
	}
	return graph.FromEdgeList(labels, edges)
}

func TestRegisterAndGet(t *testing.T) {
	c := New(4)
	g := chain(5)
	if err := c.Register("web", g); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("web")
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("Get returned a different graph")
	}
	if err := c.Register("web", chain(3)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register: err = %v, want ErrDuplicate", err)
	}
	if _, err := c.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing get: err = %v, want ErrNotFound", err)
	}
	if names := c.Names(); len(names) != 1 || names[0] != "web" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegisterPrecomputesClosure(t *testing.T) {
	c := New(4)
	if err := c.Register("g", chain(6)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.ResidentClosures != 1 {
		t.Fatalf("after register: %+v, want 1 miss and 1 resident closure", s)
	}
	r, err := c.Reach("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable(0, 5) || r.Reachable(5, 0) {
		t.Fatalf("closure semantics wrong on a 6-chain")
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("post-register Reach should hit, stats %+v", s)
	}
}

func TestReachSharedPointer(t *testing.T) {
	c := New(4)
	if err := c.Register("g", chain(8)); err != nil {
		t.Fatal(err)
	}
	r1, _ := c.Reach("g", 0)
	r2, _ := c.Reach("g", 0)
	if r1 != r2 {
		t.Fatalf("repeated Reach returned distinct indexes — closure not shared")
	}
	// A bounded index is a different cache slot with different semantics.
	b, err := c.Reach("g", 1)
	if err != nil {
		t.Fatal(err)
	}
	if b == r1 {
		t.Fatalf("bounded and unbounded indexes share a slot")
	}
	if b.Reachable(0, 2) {
		t.Fatalf("1-bounded index reports a 2-hop path")
	}
	if !r1.Reachable(0, 2) {
		t.Fatalf("unbounded index misses a 2-hop path")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	for _, name := range []string{"a", "b", "c"} {
		if err := c.Register(name, chain(4)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.ResidentClosures != 2 {
		t.Fatalf("resident = %d, want 2", s.ResidentClosures)
	}
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// "a" was evicted; touching it is a miss that rebuilds and evicts "b".
	if _, err := c.Reach("a", 0); err != nil {
		t.Fatal(err)
	}
	s = c.Stats()
	if s.Misses != 4 || s.Evictions != 2 {
		t.Fatalf("after rebuild: %+v, want 4 misses and 2 evictions", s)
	}
	// "c" is still resident: a hit.
	hits := s.Hits
	if _, err := c.Reach("c", 0); err != nil {
		t.Fatal(err)
	}
	if s = c.Stats(); s.Hits != hits+1 {
		t.Fatalf("touching resident closure was not a hit: %+v", s)
	}
}

func TestRemove(t *testing.T) {
	c := New(4)
	if err := c.Register("g", chain(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reach("g", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("g"); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Graphs != 0 || s.ResidentClosures != 0 {
		t.Fatalf("after remove: %+v", s)
	}
	if _, err := c.Reach("g", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Reach after remove: %v, want ErrNotFound", err)
	}
	if err := c.Remove("g"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v, want ErrNotFound", err)
	}
}

// TestConcurrentReachSingleFlight hammers one key from many goroutines:
// every caller must get the same index and the build must run once.
func TestConcurrentReachSingleFlight(t *testing.T) {
	c := New(4)
	c.mu.Lock()
	g := chain(64)
	g.Finish()
	c.graphs["g"] = &graphEntry{g: g} // bypass Register's eager build
	c.mu.Unlock()

	const workers = 32
	results := make([]any, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Reach("g", 0)
			if err != nil {
				results[i] = err
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got %v, worker 0 got %v", i, results[i], results[0])
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", s.Misses)
	}
	if s.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", s.Hits, workers-1)
	}
}

// TestContentSetsCachedAndConsistent checks that the data-side shingle
// sets are computed once per graph and returned with the graph they
// index.
func TestContentSetsCachedAndConsistent(t *testing.T) {
	c := New(4)
	g := chain(5)
	if err := c.Register("g", g); err != nil {
		t.Fatal(err)
	}
	cg, sets, err := c.ContentSets("g")
	if err != nil {
		t.Fatal(err)
	}
	if cg != g {
		t.Fatalf("ContentSets returned a different graph")
	}
	if len(sets) != g.NumNodes() {
		t.Fatalf("sets = %d, want %d", len(sets), g.NumNodes())
	}
	_, sets2, err := c.ContentSets("g")
	if err != nil {
		t.Fatal(err)
	}
	if &sets[0] != &sets2[0] {
		t.Fatalf("ContentSets recomputed instead of returning the cached slice")
	}
	if _, _, err := c.ContentSets("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing graph: %v, want ErrNotFound", err)
	}
	// GetWithReach returns a consistent (graph, closure) pair.
	gg, r, err := c.GetWithReach("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gg != g || r.NumNodes() != g.NumNodes() {
		t.Fatalf("GetWithReach pair inconsistent")
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatalf("empty hit rate = %v", s.HitRate())
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

func TestGetWithRowsSharedAndConsistent(t *testing.T) {
	c := New(4)
	g := chain(12)
	if err := c.Register("web", g); err != nil {
		t.Fatal(err)
	}
	g1, r1, rows1, err := c.GetWithRows("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, r2, rows2, err := c.GetWithRows("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 || r1 != r2 || rows1 != rows2 {
		t.Fatal("GetWithRows must return the shared (graph, reach, rows) triple")
	}
	// The rows must agree with the reach they derive from.
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if rows1.Fwd(graph.NodeID(u)).Contains(v) != r1.Reachable(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("rows disagree with reach at (%d,%d)", u, v)
			}
		}
	}
	// A different path limit is a different cache slot with its own rows.
	_, rb, rowsB, err := c.GetWithRows("web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rowsB == rows1 || rb == r1 {
		t.Fatal("bounded index must not share the unbounded slot")
	}
}

func TestConcurrentRowsSingleFlight(t *testing.T) {
	c := New(4)
	if err := c.Register("web", chain(60)); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	got := make([]uintptr, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, rows, err := c.GetWithRows("web", 0)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = reflect.ValueOf(rows).Pointer()
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent GetWithRows built more than one Rows")
		}
	}
	if st := c.Stats(); st.ResidentRows != 1 {
		t.Fatalf("ResidentRows = %d, want 1", st.ResidentRows)
	}
}

func TestMemoryAccounting(t *testing.T) {
	c := New(2)
	for _, name := range []string{"a", "b"} {
		if err := c.Register(name, chain(20)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ResidentBytes <= 0 {
		t.Fatalf("ResidentBytes = %d, want > 0 after registration", st.ResidentBytes)
	}
	if st.ResidentRows != 0 {
		t.Fatalf("ResidentRows = %d, want 0 before any row consumer", st.ResidentRows)
	}
	if _, _, _, err := c.GetWithRows("a", 0); err != nil {
		t.Fatal(err)
	}
	withRows := c.Stats()
	if withRows.ResidentRows != 1 {
		t.Fatalf("ResidentRows = %d, want 1", withRows.ResidentRows)
	}
	if withRows.ResidentBytes <= st.ResidentBytes {
		t.Fatal("materialising rows must grow ResidentBytes")
	}
	// Filling the LRU with fresh slots evicts the old ones and returns
	// their bytes; removing everything zeroes the account.
	if _, _, err := c.GetWithReach("a", 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetWithReach("b", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Remove("b"); err != nil {
		t.Fatal(err)
	}
	end := c.Stats()
	if end.ResidentBytes != 0 || end.ResidentRows != 0 || end.ResidentClosures != 0 {
		t.Fatalf("after removing all graphs: %+v, want empty accounting", end)
	}
}

func TestResidentRowsAccountingZeroByteRows(t *testing.T) {
	// A 0-node graph's rows occupy zero bytes but are still resident;
	// the ResidentRows counter must balance across build and removal
	// even then.
	c := New(2)
	empty := graph.New(0)
	if err := c.Register("empty", empty); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.GetWithRows("empty", 0); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentRows != 1 {
		t.Fatalf("ResidentRows = %d, want 1", st.ResidentRows)
	}
	if err := c.Remove("empty"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentRows != 0 || st.ResidentBytes != 0 {
		t.Fatalf("after remove: %+v, want zeroed accounting", st)
	}
}
