package experiments

import (
	"graphmatch/internal/core"
	"graphmatch/internal/syngen"
)

// SynConfig parameterises one point of the Exp-2 reproduction (Figures 5
// and 6): a pattern size m, a noise rate and a similarity threshold ξ.
type SynConfig struct {
	M        int
	Noise    float64 // percent
	Xi       float64
	NumData  int // candidate data graphs per point (paper: 15)
	MatchBar float64
	Seed     int64
	// Algorithms to run; nil means the paper's four plus graphSimulation.
	Algorithms []Algorithm
}

func (c SynConfig) withDefaults() SynConfig {
	if c.NumData == 0 {
		c.NumData = 15
	}
	if c.Xi == 0 {
		c.Xi = 0.75
	}
	if c.MatchBar == 0 {
		c.MatchBar = 0.75
	}
	if c.Algorithms == nil {
		c.Algorithms = append(append([]Algorithm{}, OurAlgorithms...), GraphSim)
	}
	return c
}

// SynPoint is one x-position of a figure: per-algorithm accuracy and mean
// running time, plus the data-graph size range the paper annotates. NA
// marks algorithms whose every run failed to complete (cdkMCS or GED
// beyond budget).
type SynPoint struct {
	X          float64
	Accuracy   map[Algorithm]float64
	Seconds    map[Algorithm]float64
	NA         map[Algorithm]bool
	MinG2Nodes int
	MaxG2Nodes int
}

// RunSynthetic evaluates one configuration point.
func RunSynthetic(cfg SynConfig) SynPoint {
	cfg = cfg.withDefaults()
	w := syngen.Generate(syngen.Config{
		M:            cfg.M,
		NoisePercent: cfg.Noise,
		NumData:      cfg.NumData,
		Seed:         cfg.Seed,
	})
	aggs := make(map[Algorithm]*Aggregate, len(cfg.Algorithms))
	for _, alg := range cfg.Algorithms {
		aggs[alg] = &Aggregate{}
	}
	pt := SynPoint{
		Accuracy:   make(map[Algorithm]float64),
		Seconds:    make(map[Algorithm]float64),
		NA:         make(map[Algorithm]bool),
		MinG2Nodes: 1 << 30,
	}
	for _, g2 := range w.G2s {
		if n := g2.NumNodes(); n < pt.MinG2Nodes {
			pt.MinG2Nodes = n
		}
		if n := g2.NumNodes(); n > pt.MaxG2Nodes {
			pt.MaxG2Nodes = n
		}
		in := core.NewInstance(w.G1, g2, w.Matrix(g2), cfg.Xi)
		for _, alg := range cfg.Algorithms {
			aggs[alg].Add(RunOne(alg, in, 0, cfg.MatchBar))
		}
	}
	for _, alg := range cfg.Algorithms {
		pt.Accuracy[alg] = aggs[alg].AccuracyPercent()
		pt.Seconds[alg] = aggs[alg].MeanSeconds()
		pt.NA[alg] = aggs[alg].AllNA()
	}
	return pt
}

// Figure sweeps reproduce the series of Figs. 5 and 6. Each returns one
// SynPoint per x-value; accuracy series correspond to Fig. 5 and time
// series to Fig. 6 of the same letter.

// SweepSize is Figs. 5(a)/6(a): vary m, fixing noise = 10 % and ξ = 0.75.
func SweepSize(ms []int, seed int64, numData int) []SynPoint {
	var out []SynPoint
	for _, m := range ms {
		pt := RunSynthetic(SynConfig{M: m, Noise: 10, Xi: 0.75, Seed: seed + int64(m), NumData: numData})
		pt.X = float64(m)
		out = append(out, pt)
	}
	return out
}

// SweepNoise is Figs. 5(b)/6(b): vary noise %, fixing m = 500 (scaled via
// the m argument) and ξ = 0.75.
func SweepNoise(m int, noises []float64, seed int64, numData int) []SynPoint {
	var out []SynPoint
	for _, noise := range noises {
		pt := RunSynthetic(SynConfig{M: m, Noise: noise, Xi: 0.75, Seed: seed + int64(noise*10), NumData: numData})
		pt.X = noise
		out = append(out, pt)
	}
	return out
}

// SweepXi is Figs. 5(c)/6(c): vary ξ, fixing m and noise = 10 %.
func SweepXi(m int, xis []float64, seed int64, numData int) []SynPoint {
	var out []SynPoint
	for _, xi := range xis {
		pt := RunSynthetic(SynConfig{M: m, Noise: 10, Xi: xi, Seed: seed, NumData: numData})
		pt.X = xi
		out = append(out, pt)
	}
	return out
}
