package experiments

import (
	"strings"
	"testing"
)

func TestRunAblations(t *testing.T) {
	rows := RunAblations(64, 3)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 studies × 2 variants)", len(rows))
	}
	studies := map[string]int{}
	for _, r := range rows {
		studies[r.Study]++
		if r.Seconds < 0 {
			t.Errorf("%s/%s: negative time", r.Study, r.Variant)
		}
		if r.QualCard < 0 || r.QualCard > 1 {
			t.Errorf("%s/%s: quality out of range: %v", r.Study, r.Variant, r.QualCard)
		}
	}
	for _, s := range []string{"direct-vs-naive", "partition-g1", "compress-g2", "pick-order"} {
		if studies[s] != 2 {
			t.Errorf("study %s has %d variants, want 2", s, studies[s])
		}
	}
	// On identical-copy instances, both partition variants should find
	// full mappings.
	for _, r := range rows {
		if r.Study == "partition-g1" && r.QualCard != 1 {
			t.Errorf("partition study should fully match, got %v for %s", r.QualCard, r.Variant)
		}
	}
	text := FormatAblations(rows)
	if !strings.Contains(text, "direct-vs-naive") || !strings.Contains(text, "qualCard") {
		t.Fatalf("FormatAblations malformed:\n%s", text)
	}
}
