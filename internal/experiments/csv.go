package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters so figure series can be re-plotted directly (gnuplot,
// pandas, spreadsheets). One row per x-value; one accuracy and one time
// column per algorithm.

// WriteSeriesCSV writes a figure's series to w.
func WriteSeriesCSV(w io.Writer, xLabel string, points []SynPoint, algs []Algorithm) error {
	cw := csv.NewWriter(w)
	header := []string{xLabel, "g2_min_nodes", "g2_max_nodes"}
	for _, a := range algs {
		header = append(header, string(a)+"_accuracy_pct", string(a)+"_seconds")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pt := range points {
		row := []string{
			strconv.FormatFloat(pt.X, 'g', -1, 64),
			strconv.Itoa(pt.MinG2Nodes),
			strconv.Itoa(pt.MaxG2Nodes),
		}
		for _, a := range algs {
			row = append(row,
				strconv.FormatFloat(pt.Accuracy[a], 'f', 1, 64),
				strconv.FormatFloat(pt.Seconds[a], 'f', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV writes the Table 3 cells to w: one row per (algorithm,
// skeleton set, site).
func WriteTable3CSV(w io.Writer, res *Table3Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "skeleton_set", "site", "accuracy_pct", "seconds", "na"}); err != nil {
		return err
	}
	for _, alg := range Table3Algorithms {
		cells := res.Cells[alg]
		for skSet := 0; skSet < 2; skSet++ {
			for si := 0; si < 3; si++ {
				c := cells[skSet][si]
				row := []string{
					string(alg),
					fmt.Sprintf("skeletons%d", skSet+1),
					fmt.Sprintf("site%d", si+1),
					strconv.FormatFloat(c.Accuracy, 'f', 1, 64),
					strconv.FormatFloat(c.Seconds, 'f', 6, 64),
					strconv.FormatBool(c.NA),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
