package experiments

import (
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/webgen"
)

// WebConfig parameterises the Exp-1 reproduction (Tables 2 and 3).
type WebConfig struct {
	// Pages scales the three sites (store, organization, newspaper); zero
	// entries use the category defaults.
	Pages [3]int
	// Versions per archive (default 11, as in the paper).
	Versions int
	// Alpha is the skeleton-1 degree coefficient (paper: 0.2).
	Alpha float64
	// TopK is the skeleton-2 size (paper: 20).
	TopK int
	// Xi is the node-similarity threshold (paper: 0.75).
	Xi float64
	// MatchBar is the quality threshold for "G1 matches G2" (paper: 0.75).
	MatchBar float64
	// MCSBudget bounds each cdkMCS run; beyond it the run counts as N/A.
	MCSBudget time.Duration
	// Seed drives the generators.
	Seed int64
}

func (c WebConfig) withDefaults() WebConfig {
	if c.Versions == 0 {
		c.Versions = 11
	}
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.TopK == 0 {
		c.TopK = 20
	}
	if c.Xi == 0 {
		c.Xi = 0.75
	}
	if c.MatchBar == 0 {
		c.MatchBar = 0.75
	}
	if c.MCSBudget == 0 {
		c.MCSBudget = 3 * time.Second
	}
	return c
}

// SiteData bundles one site's archive and both skeleton sequences.
type SiteData struct {
	Name     string
	Category webgen.Category
	Versions []*graph.Graph
	Sk1      []*graph.Graph // α-degree skeletons, one per version
	Sk2      []*graph.Graph // top-K skeletons, one per version
}

// GenerateSites builds the three site archives with their skeletons.
func GenerateSites(cfg WebConfig) []*SiteData {
	cfg = cfg.withDefaults()
	cats := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	names := []string{"site 1", "site 2", "site 3"}
	var sites []*SiteData
	for i, cat := range cats {
		arch := webgen.Generate(webgen.Config{
			Category: cat,
			Pages:    cfg.Pages[i],
			Versions: cfg.Versions,
			Seed:     cfg.Seed + int64(i)*1000,
		})
		sd := &SiteData{Name: names[i], Category: cat, Versions: arch.Versions}
		for _, g := range arch.Versions {
			sd.Sk1 = append(sd.Sk1, webgen.Skeleton(g, cfg.Alpha))
			sd.Sk2 = append(sd.Sk2, webgen.TopKSkeleton(g, cfg.TopK))
		}
		sites = append(sites, sd)
	}
	return sites
}

// Table2Row reports one site's statistics in the layout of Table 2.
type Table2Row struct {
	Site               string
	Nodes, Edges       int
	AvgDeg             float64
	MaxDeg             int
	Sk1Nodes, Sk1Edges int
	Sk2Nodes, Sk2Edges int
}

// Table2 computes the data-set statistics of Table 2 from the oldest
// version of each site.
func Table2(sites []*SiteData) []Table2Row {
	var rows []Table2Row
	for _, s := range sites {
		g := s.Versions[0]
		st := graph.ComputeStats(g)
		sk1 := graph.ComputeStats(s.Sk1[0])
		sk2 := graph.ComputeStats(s.Sk2[0])
		rows = append(rows, Table2Row{
			Site:     s.Name,
			Nodes:    st.Nodes,
			Edges:    st.Edges,
			AvgDeg:   st.AvgDeg,
			MaxDeg:   st.MaxDeg,
			Sk1Nodes: sk1.Nodes,
			Sk1Edges: sk1.Edges,
			Sk2Nodes: sk2.Nodes,
			Sk2Edges: sk2.Edges,
		})
	}
	return rows
}

// Table3Cell is one (algorithm, skeleton set, site) entry: accuracy in
// percent and mean seconds, or N/A.
type Table3Cell struct {
	Accuracy float64
	Seconds  float64
	NA       bool
}

// Table3Result holds the full table plus the graph-simulation side
// observation the paper reports in prose ("graph simulation did not find
// matches in almost all the cases").
type Table3Result struct {
	// Cells[alg][skeletonSet][site]: skeletonSet 0 = skeletons 1 (α),
	// skeletonSet 1 = skeletons 2 (top-K); site indexes sites 1–3.
	Cells map[Algorithm][2][3]Table3Cell
	// SimulationMatches counts graph-simulation matches per skeleton set
	// and site, out of Runs.
	SimulationMatches [2][3]int
	Runs              int
}

// Table3Algorithms is the row order of Table 3.
var Table3Algorithms = []Algorithm{CompMaxCard, CompMaxCard11, CompMaxSim, CompMaxSim11, SF, CDKMCS}

// Table3 reproduces the accuracy/scalability experiment: the oldest
// version's skeleton is the pattern, each of the later versions must be
// matched back to it.
func Table3(sites []*SiteData, cfg WebConfig) *Table3Result {
	cfg = cfg.withDefaults()
	res := &Table3Result{Cells: make(map[Algorithm][2][3]Table3Cell)}
	aggs := make(map[Algorithm]*[2][3]Aggregate)
	for _, alg := range Table3Algorithms {
		aggs[alg] = &[2][3]Aggregate{}
	}
	for si, site := range sites {
		for skSet, sks := range [][]*graph.Graph{site.Sk1, site.Sk2} {
			pattern := sks[0]
			for _, data := range sks[1:] {
				in := contentInstance(pattern, data, cfg.Xi)
				for _, alg := range Table3Algorithms {
					aggs[alg][skSet][si].Add(RunOne(alg, in, cfg.MCSBudget, cfg.MatchBar))
				}
				if RunOne(GraphSim, in, 0, cfg.MatchBar).Matched {
					res.SimulationMatches[skSet][si]++
				}
			}
			res.Runs = len(sks) - 1
		}
	}
	for _, alg := range Table3Algorithms {
		var cells [2][3]Table3Cell
		for skSet := 0; skSet < 2; skSet++ {
			for si := 0; si < 3 && si < len(sites); si++ {
				a := aggs[alg][skSet][si]
				cells[skSet][si] = Table3Cell{
					Accuracy: a.AccuracyPercent(),
					Seconds:  a.MeanSeconds(),
					NA:       a.AllNA(),
				}
			}
		}
		res.Cells[alg] = cells
	}
	return res
}
