package experiments

import (
	"strings"
	"testing"
)

func TestRunBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline comparison runs the full algorithm suite (~10 s); skipped with -short")
	}
	cfg := SynConfig{M: 15, Noise: 10, Xi: 0.75, NumData: 3, Seed: 4}
	rows := RunBaselines(cfg)
	if len(rows) != len(BaselineAlgorithms) {
		t.Fatalf("rows = %d, want %d", len(rows), len(BaselineAlgorithms))
	}
	byAlg := map[Algorithm]BaselineRow{}
	for _, r := range rows {
		byAlg[r.Algorithm] = r
		if r.Accuracy < 0 || r.Accuracy > 100 {
			t.Errorf("%s: accuracy out of range: %v", r.Algorithm, r.Accuracy)
		}
		if r.Seconds < 0 {
			t.Errorf("%s: negative time", r.Algorithm)
		}
	}
	// The paper's qualitative claim at any scale: p-hom finds at least as
	// many matches as the edge-to-edge and whole-graph baselines.
	phom := byAlg[CompMaxCard].Accuracy
	if byAlg[GraphSim].Accuracy > phom {
		t.Errorf("simulation %v beats p-hom %v", byAlg[GraphSim].Accuracy, phom)
	}
	text := FormatBaselines(rows, cfg)
	if !strings.Contains(text, "bagOfPaths") || !strings.Contains(text, "editDistance") {
		t.Fatalf("FormatBaselines missing rows:\n%s", text)
	}
}

func TestRunOneGED(t *testing.T) {
	// Identity instance: GED similarity 1 → matched.
	pt := RunSynthetic(SynConfig{M: 8, Noise: 0, Xi: 0.75, NumData: 1, Seed: 9,
		Algorithms: []Algorithm{GED}})
	if pt.Accuracy[GED] != 100 {
		t.Fatalf("GED on noise-free copies = %v, want 100", pt.Accuracy[GED])
	}
}
