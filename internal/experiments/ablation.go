package experiments

import (
	"fmt"
	"strings"
	"time"

	"graphmatch/internal/core"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/syngen"
)

// Ablations quantify the design choices called out in DESIGN.md §5 on a
// shared synthetic workload: operating directly on the matching list
// versus materialising the product graph, the Appendix B partitioning and
// compression optimisations, and the max-|good| candidate pick of Fig. 4.

// AblationRow is one variant's measurement.
type AblationRow struct {
	Study    string
	Variant  string
	Seconds  float64
	QualCard float64
}

// RunAblations executes every ablation at the given pattern size and
// returns the rows in presentation order.
func RunAblations(m int, seed int64) []AblationRow {
	var rows []AblationRow
	measure := func(study, variant string, in *core.Instance, run func() core.Mapping) {
		start := time.Now()
		mapping := run()
		elapsed := time.Since(start).Seconds()
		rows = append(rows, AblationRow{
			Study:    study,
			Variant:  variant,
			Seconds:  elapsed,
			QualCard: in.QualCard(mapping),
		})
	}

	// Study 1: direct matching list vs naive product graph. The naive
	// algorithm is cubic in both graph sizes, so it runs on a reduced
	// instance.
	small := syngen.Generate(syngen.Config{M: m / 4, NoisePercent: 10, NumData: 1, Seed: seed})
	sIn := core.NewInstance(small.G1, small.G2s[0], small.Matrix(small.G2s[0]), 0.75)
	measure("direct-vs-naive", "direct", sIn, sIn.CompMaxCard)
	measure("direct-vs-naive", "naive-product", sIn, sIn.NaiveMaxCard)

	// Study 2: partitioning G1 (Appendix B) on a fragmented pattern.
	frag := fragmentedInstance(m, seed)
	measure("partition-g1", "direct", frag, frag.CompMaxCard)
	measure("partition-g1", "partitioned", frag, frag.PartitionedMaxCard)

	// Study 3: compressing G2+ (Appendix B) on SCC-heavy data.
	cyc := cyclicInstance(m, seed)
	measure("compress-g2", "raw-closure", cyc, cyc.CompMaxCard)
	measure("compress-g2", "compressed", cyc, cyc.CompressedMaxCard)

	// Study 4: the Fig. 4 max-|good| pick vs an arbitrary pick.
	w := syngen.Generate(syngen.Config{M: m, NoisePercent: 10, NumData: 1, Seed: seed + 1})
	pIn := core.NewInstance(w.G1, w.G2s[0], w.Matrix(w.G2s[0]), 0.75)
	measure("pick-order", "max-good", pIn, func() core.Mapping {
		return pIn.CompMaxCardOpts(core.MatchOptions{})
	})
	measure("pick-order", "arbitrary", pIn, func() core.Mapping {
		return pIn.CompMaxCardOpts(core.MatchOptions{ArbitraryPick: true})
	})
	return rows
}

// fragmentedInstance builds a pattern of disconnected chains over a
// matching data graph — the case partitioning exploits.
func fragmentedInstance(m int, seed int64) *core.Instance {
	chains := m / 8
	if chains < 2 {
		chains = 2
	}
	var labels []string
	var edges [][2]int
	for c := 0; c < chains; c++ {
		base := len(labels)
		for i := 0; i < 8; i++ {
			labels = append(labels, fmt.Sprintf("c%d_%d", c, i))
			if i > 0 {
				edges = append(edges, [2]int{base + i - 1, base + i})
			}
		}
	}
	g1 := graph.FromEdgeList(labels, edges)
	g2 := g1.Clone()
	return core.NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.75)
}

// cyclicInstance builds data full of nontrivial SCCs (rings joined in a
// chain) — the case closure compression exploits.
func cyclicInstance(m int, seed int64) *core.Instance {
	rings := m / 8
	if rings < 2 {
		rings = 2
	}
	var labels []string
	var edges [][2]int
	for r := 0; r < rings; r++ {
		base := len(labels)
		for i := 0; i < 8; i++ {
			labels = append(labels, fmt.Sprintf("r%d_%d", r, i))
			edges = append(edges, [2]int{base + i, base + (i+1)%8})
		}
		if r > 0 {
			edges = append(edges, [2]int{base - 8, base})
		}
	}
	g2 := graph.FromEdgeList(labels, edges)
	g1, _ := g2.InducedSubgraph(graph.TopKByDegree(g2, len(labels)/4))
	return core.NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.75)
}

// FormatAblations renders the rows grouped by study.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	last := ""
	for _, r := range rows {
		if r.Study != last {
			fmt.Fprintf(&b, "%s\n", r.Study)
			last = r.Study
		}
		fmt.Fprintf(&b, "  %-16s %10.4fs   qualCard %.3f\n", r.Variant, r.Seconds, r.QualCard)
	}
	return b.String()
}
