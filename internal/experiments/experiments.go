// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6): Table 2 (data-set statistics), Table 3 (accuracy
// and scalability on Web-site archives) and Figures 5–6 (accuracy and
// scalability on synthetic graphs versus size m, noise rate and similarity
// threshold ξ).
//
// The conventions follow the paper exactly: the match threshold is 0.75
// (G1 matches G2 when qualCard(σ) ≥ 0.75, resp. qualSim), node weights are
// uniform, the similarity threshold ξ defaults to 0.75, each accuracy
// number is the percentage of candidate graphs matched, and data sets are
// generated so that every candidate is a true match by construction.
package experiments

import (
	"time"

	"graphmatch/internal/core"
	"graphmatch/internal/featsim"
	"graphmatch/internal/ged"
	"graphmatch/internal/graph"
	"graphmatch/internal/mcs"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/simulation"
	"graphmatch/internal/vertexsim"
)

// Algorithm identifies one competitor in the evaluation.
type Algorithm string

// The evaluated algorithms: the paper's four, plus the three baselines.
const (
	CompMaxCard   Algorithm = "compMaxCard"
	CompMaxCard11 Algorithm = "compMaxCard1-1"
	CompMaxSim    Algorithm = "compMaxSim"
	CompMaxSim11  Algorithm = "compMaxSim1-1"
	SF            Algorithm = "SF"              // similarity flooding [21]
	Blondel       Algorithm = "blondel"         // Blondel et al. vertex similarity [6]
	CDKMCS        Algorithm = "cdkMCS"          // maximum common subgraph [1]
	GraphSim      Algorithm = "graphSimulation" // graph simulation [17]
	BagOfPaths    Algorithm = "bagOfPaths"      // feature-based baseline [18]
	GED           Algorithm = "editDistance"    // graph edit distance [31]
)

// OurAlgorithms lists the paper's four approximation algorithms in Table 3
// order.
var OurAlgorithms = []Algorithm{CompMaxCard, CompMaxCard11, CompMaxSim, CompMaxSim11}

// Outcome is one algorithm run on one (pattern, data) pair.
type Outcome struct {
	Matched bool
	Quality float64
	Elapsed time.Duration
	// NA marks runs that did not complete (cdkMCS beyond its budget).
	NA bool
}

// RunOne executes one algorithm on a prepared instance and applies the
// paper's match convention at matchBar. mcsBudget bounds the cdkMCS
// search; the other algorithms ignore it.
func RunOne(alg Algorithm, in *core.Instance, mcsBudget time.Duration, matchBar float64) Outcome {
	start := time.Now()
	var out Outcome
	switch alg {
	case CompMaxCard:
		m := in.CompMaxCard()
		out.Quality = in.QualCard(m)
	case CompMaxCard11:
		m := in.CompMaxCard11()
		out.Quality = in.QualCard(m)
	case CompMaxSim:
		m := in.CompMaxSim()
		out.Quality = in.QualSim(m)
	case CompMaxSim11:
		m := in.CompMaxSim11()
		out.Quality = in.QualSim(m)
	case SF:
		// Similarity flooding proposes the alignment; its quality is
		// judged against the original node similarity (a flooded score is
		// not calibrated to [0, 1] per pair), counting the pattern nodes
		// whose aligned partner is genuinely similar.
		flooded := vertexsim.Flood(in.G1, in.G2, in.Mat, vertexsim.Options{MaxIter: 15})
		out.Quality = alignmentQuality(in, vertexsim.Extract(flooded))
	case Blondel:
		// The paper also ran Blondel et al.'s vertex similarity and found
		// it comparable to SF; the same alignment-extraction convention
		// applies.
		scores := vertexsim.Blondel(in.G1, in.G2, vertexsim.Options{MaxIter: 20})
		out.Quality = alignmentQuality(in, vertexsim.Extract(scores))
	case CDKMCS:
		res, err := mcs.Find(in.G1, in.G2, in.Mat, mcs.Options{Xi: in.Xi, Budget: mcsBudget})
		if err != nil {
			out.NA = true
		}
		if in.G1.NumNodes() > 0 {
			out.Quality = float64(res.Cardinality()) / float64(in.G1.NumNodes())
		}
	case GraphSim:
		r := simulation.Compute(in.G1, in.G2, in.Mat, in.Xi)
		if r.Matches() {
			out.Quality = 1
		} else {
			out.Quality = 0
		}
	case BagOfPaths:
		// Feature-based similarity is a single graph-level score; the
		// match bar applies to it directly (the paper's future-work
		// comparison).
		out.Quality = featsim.Similarity(in.G1, in.G2)
	case GED:
		// Edit-distance similarity, like MCS, blows up beyond small
		// graphs; the expansion budget takes the role of the deadline.
		s, err := ged.Similarity(in.G1, in.G2, ged.Options{Budget: 20000})
		if err != nil {
			out.NA = true
		} else {
			out.Quality = s
		}
	}
	out.Elapsed = time.Since(start)
	out.Matched = !out.NA && out.Quality >= matchBar
	return out
}

// alignmentQuality judges a vertex-similarity alignment: the fraction of
// pattern nodes whose aligned partner is genuinely similar under the
// instance's matrix (a flooded or iterated score is not calibrated to
// [0, 1] per pair, so the original mat() does the judging).
func alignmentQuality(in *core.Instance, a *vertexsim.Alignment) float64 {
	n := in.G1.NumNodes()
	if n == 0 {
		return 1
	}
	good := 0
	for v, u := range a.Pairs {
		if in.Mat.Score(v, u) >= in.Xi {
			good++
		}
	}
	return float64(good) / float64(n)
}

// Aggregate accumulates outcomes into the two numbers Table 3 and the
// figures report: accuracy (percent matched) and mean seconds per run.
type Aggregate struct {
	Runs    int
	Matches int
	NARuns  int
	Total   time.Duration
}

// Add folds one outcome in.
func (a *Aggregate) Add(o Outcome) {
	a.Runs++
	if o.NA {
		a.NARuns++
	}
	if o.Matched {
		a.Matches++
	}
	a.Total += o.Elapsed
}

// AccuracyPercent is the paper's accuracy measure.
func (a *Aggregate) AccuracyPercent() float64 {
	if a.Runs == 0 {
		return 0
	}
	return 100 * float64(a.Matches) / float64(a.Runs)
}

// MeanSeconds is the paper's scalability measure.
func (a *Aggregate) MeanSeconds() float64 {
	if a.Runs == 0 {
		return 0
	}
	return a.Total.Seconds() / float64(a.Runs)
}

// AllNA reports whether every run failed to complete.
func (a *Aggregate) AllNA() bool { return a.Runs > 0 && a.NARuns == a.Runs }

// contentInstance prepares a matching instance between two Web skeletons:
// node similarity is shingle resemblance of page contents, as in Exp-1.
func contentInstance(pattern, data *graph.Graph, xi float64) *core.Instance {
	mat := simmatrix.FromContent(pattern, data, 4)
	return core.NewInstance(pattern, data, mat, xi)
}
