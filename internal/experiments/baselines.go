package experiments

import (
	"fmt"
	"strings"
)

// The extended baseline comparison goes beyond the paper's Table 3: it
// pits the p-hom algorithms against every similarity family the related
// work surveys — structure-based (graph simulation, MCS, edit distance),
// vertex-similarity (SF, Blondel) and feature-based (bag of paths) — on
// the synthetic workload, covering the comparison the paper's conclusion
// defers to future work.

// BaselineAlgorithms is the presentation order of the extended study.
var BaselineAlgorithms = []Algorithm{
	CompMaxCard, CompMaxCard11, CompMaxSim, CompMaxSim11,
	GraphSim, CDKMCS, GED, SF, Blondel, BagOfPaths,
}

// BaselineRow is one algorithm's aggregate over the workload.
type BaselineRow struct {
	Algorithm Algorithm
	Accuracy  float64
	Seconds   float64
	NA        bool
}

// RunBaselines runs the extended comparison at one synthetic setting.
// The small default size keeps the exponential baselines (MCS, GED)
// inside their budgets often enough to be informative.
func RunBaselines(cfg SynConfig) []BaselineRow {
	cfg = cfg.withDefaults()
	cfg.Algorithms = BaselineAlgorithms
	pt := RunSynthetic(cfg)
	rows := make([]BaselineRow, 0, len(BaselineAlgorithms))
	for _, alg := range BaselineAlgorithms {
		rows = append(rows, BaselineRow{
			Algorithm: alg,
			Accuracy:  pt.Accuracy[alg],
			Seconds:   pt.Seconds[alg],
			NA:        pt.NA[alg],
		})
	}
	return rows
}

// FormatBaselines renders the comparison.
func FormatBaselines(rows []BaselineRow, cfg SynConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "extended baseline study (m=%d, noise=%g%%, ξ=%g, %d data graphs)\n",
		cfg.M, cfg.Noise, cfg.Xi, cfg.NumData)
	fmt.Fprintf(&b, "%-18s %12s %12s\n", "algorithm", "accuracy(%)", "seconds")
	for _, r := range rows {
		if r.NA {
			fmt.Fprintf(&b, "%-18s %12s %12.4f\n", r.Algorithm, "N/A", r.Seconds)
			continue
		}
		fmt.Fprintf(&b, "%-18s %12.0f %12.4f\n", r.Algorithm, r.Accuracy, r.Seconds)
	}
	return b.String()
}
