package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestWriteSeriesCSV(t *testing.T) {
	pts := []SynPoint{
		{
			X:          100,
			Accuracy:   map[Algorithm]float64{CompMaxCard: 87.5},
			Seconds:    map[Algorithm]float64{CompMaxCard: 0.125},
			MinG2Nodes: 200, MaxG2Nodes: 300,
		},
	}
	var b strings.Builder
	if err := WriteSeriesCSV(&b, "m", pts, []Algorithm{CompMaxCard}); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("rows = %d, want 2", len(records))
	}
	if records[0][0] != "m" || records[0][3] != "compMaxCard_accuracy_pct" {
		t.Fatalf("header = %v", records[0])
	}
	if records[1][0] != "100" || records[1][3] != "87.5" {
		t.Fatalf("row = %v", records[1])
	}
}

func TestWriteTable3CSV(t *testing.T) {
	cfg := WebConfig{Pages: [3]int{300, 250, 250}, Versions: 2, Seed: 6, MCSBudget: 50 * time.Millisecond}
	sites := GenerateSites(cfg)
	res := Table3(sites, cfg)
	var b strings.Builder
	if err := WriteTable3CSV(&b, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 6 algorithms × 2 skeleton sets × 3 sites.
	if want := 1 + len(Table3Algorithms)*6; len(records) != want {
		t.Fatalf("rows = %d, want %d", len(records), want)
	}
}
