package experiments

import (
	"fmt"
	"strings"
)

// Rendering helpers producing the same rows the paper reports, as aligned
// plain text suitable for terminals and EXPERIMENTS.md.

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %8s | %9s %9s | %9s %9s\n",
		"Site", "nodes", "edges", "avgDeg", "maxDeg", "sk1 nodes", "sk1 edges", "sk2 nodes", "sk2 edges")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d %10d %8.2f %8d | %9d %9d | %9d %9d\n",
			r.Site, r.Nodes, r.Edges, r.AvgDeg, r.MaxDeg,
			r.Sk1Nodes, r.Sk1Edges, r.Sk2Nodes, r.Sk2Edges)
	}
	return b.String()
}

// FormatTable3 renders Table 3: accuracy and scalability per algorithm,
// skeleton set and site, plus the graph-simulation observation.
func FormatTable3(res *Table3Result) string {
	var b strings.Builder
	cell := func(c Table3Cell, acc bool) string {
		if c.NA {
			return "N/A"
		}
		if acc {
			return fmt.Sprintf("%.0f", c.Accuracy)
		}
		return fmt.Sprintf("%.3f", c.Seconds)
	}
	sections := []struct {
		title string
		acc   bool
	}{
		{"Accuracy (%)", true},
		{"Scalability (seconds)", false},
	}
	for _, sec := range sections {
		acc := sec.acc
		fmt.Fprintf(&b, "%s\n", sec.title)
		fmt.Fprintf(&b, "%-16s %28s   %28s\n", "", "Skeletons 1 (alpha=0.2)", "Skeletons 2 (top-20)")
		fmt.Fprintf(&b, "%-16s %8s %9s %9s   %8s %9s %9s\n",
			"Algorithm", "site 1", "site 2", "site 3", "site 1", "site 2", "site 3")
		for _, alg := range Table3Algorithms {
			cells := res.Cells[alg]
			fmt.Fprintf(&b, "%-16s %8s %9s %9s   %8s %9s %9s\n", alg,
				cell(cells[0][0], acc), cell(cells[0][1], acc), cell(cells[0][2], acc),
				cell(cells[1][0], acc), cell(cells[1][1], acc), cell(cells[1][2], acc))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "graphSimulation matches (of %d runs per cell): sk1 %v, sk2 %v\n",
		res.Runs, res.SimulationMatches[0], res.SimulationMatches[1])
	return b.String()
}

// FormatSeries renders one figure's series: a row per x-value, a column
// per algorithm. The value selector picks accuracy or seconds.
func FormatSeries(title, xLabel string, points []SynPoint, algs []Algorithm, seconds bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, alg := range algs {
		fmt.Fprintf(&b, " %16s", alg)
	}
	fmt.Fprintf(&b, " %14s\n", "|V2| range")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-12g", pt.X)
		for _, alg := range algs {
			if seconds {
				fmt.Fprintf(&b, " %16.3f", pt.Seconds[alg])
			} else {
				fmt.Fprintf(&b, " %16.0f", pt.Accuracy[alg])
			}
		}
		fmt.Fprintf(&b, "     [%d, %d]\n", pt.MinG2Nodes, pt.MaxG2Nodes)
	}
	return b.String()
}
