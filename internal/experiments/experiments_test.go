package experiments

import (
	"strings"
	"testing"
	"time"

	"graphmatch/internal/core"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// smallWebConfig keeps the Exp-1 reproduction fast enough for unit tests.
func smallWebConfig() WebConfig {
	return WebConfig{
		Pages:     [3]int{600, 400, 400},
		Versions:  4,
		Seed:      42,
		MCSBudget: 200 * time.Millisecond,
	}
}

func TestGenerateSitesShape(t *testing.T) {
	sites := GenerateSites(smallWebConfig())
	if len(sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(sites))
	}
	for _, s := range sites {
		if len(s.Versions) != 4 || len(s.Sk1) != 4 || len(s.Sk2) != 4 {
			t.Fatalf("%s: versions/sk lengths wrong", s.Name)
		}
		for _, sk := range s.Sk2 {
			if sk.NumNodes() > 20 {
				t.Fatalf("%s: top-20 skeleton has %d nodes", s.Name, sk.NumNodes())
			}
		}
		for _, sk := range s.Sk1 {
			if sk.NumNodes() == 0 {
				t.Fatalf("%s: empty α-skeleton", s.Name)
			}
		}
	}
}

func TestTable2Stats(t *testing.T) {
	sites := GenerateSites(smallWebConfig())
	rows := Table2(sites)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Nodes == 0 || r.Edges == 0 || r.AvgDeg <= 0 || r.MaxDeg == 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.Sk1Nodes == 0 || r.Sk2Nodes == 0 {
			t.Fatalf("empty skeletons in %+v", r)
		}
		if r.Sk1Nodes >= r.Nodes {
			t.Fatalf("skeleton not smaller than site: %+v", r)
		}
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "site 1") || !strings.Contains(text, "sk1 nodes") {
		t.Fatalf("FormatTable2 output malformed:\n%s", text)
	}
}

func TestRunOneAlgorithms(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	g2 := g1.Clone()
	in := core.NewInstance(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.75)
	for _, alg := range []Algorithm{CompMaxCard, CompMaxCard11, CompMaxSim, CompMaxSim11, SF, Blondel, CDKMCS, GraphSim, BagOfPaths, GED} {
		out := RunOne(alg, in, time.Second, 0.75)
		if out.NA {
			t.Errorf("%s: unexpected N/A", alg)
			continue
		}
		if !out.Matched {
			t.Errorf("%s: identical graphs should match (quality %v)", alg, out.Quality)
		}
	}
}

func TestRunOneUnknownAlgorithm(t *testing.T) {
	g := graph.FromEdgeList([]string{"a"}, nil)
	in := core.NewInstance(g, g, simmatrix.NewLabelEquality(g, g), 0.5)
	out := RunOne(Algorithm("bogus"), in, 0, 0.75)
	if out.Matched {
		t.Fatal("unknown algorithm should not match")
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	a.Add(Outcome{Matched: true, Elapsed: time.Second})
	a.Add(Outcome{Matched: false, Elapsed: 3 * time.Second})
	if got := a.AccuracyPercent(); got != 50 {
		t.Fatalf("accuracy = %v, want 50", got)
	}
	if got := a.MeanSeconds(); got != 2 {
		t.Fatalf("mean seconds = %v, want 2", got)
	}
	if a.AllNA() {
		t.Fatal("AllNA should be false")
	}
	var na Aggregate
	na.Add(Outcome{NA: true})
	if !na.AllNA() {
		t.Fatal("AllNA should be true")
	}
	var empty Aggregate
	if empty.AccuracyPercent() != 0 || empty.MeanSeconds() != 0 {
		t.Fatal("empty aggregate should report zeros")
	}
}

func TestTable3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 3 run is slow")
	}
	cfg := smallWebConfig()
	sites := GenerateSites(cfg)
	res := Table3(sites, cfg)
	if res.Runs != 3 {
		t.Fatalf("runs per cell = %d, want 3", res.Runs)
	}
	// The paper's headline shapes, scaled down:
	// (1) our algorithms find matches on the low-churn organization site.
	orgAcc := res.Cells[CompMaxCard][0][1].Accuracy
	if orgAcc < 50 {
		t.Errorf("compMaxCard accuracy on site 2 = %v, want ≥ 50", orgAcc)
	}
	// (2) p-hom accuracy ≥ 1-1 p-hom accuracy on every cell.
	for sk := 0; sk < 2; sk++ {
		for si := 0; si < 3; si++ {
			if res.Cells[CompMaxCard][sk][si].Accuracy < res.Cells[CompMaxCard11][sk][si].Accuracy {
				t.Errorf("1-1 beats plain p-hom at sk%d site%d", sk+1, si+1)
			}
		}
	}
	text := FormatTable3(res)
	if !strings.Contains(text, "compMaxCard") || !strings.Contains(text, "Accuracy") {
		t.Fatalf("FormatTable3 malformed:\n%s", text)
	}
}

func TestRunSyntheticPoint(t *testing.T) {
	pt := RunSynthetic(SynConfig{M: 30, Noise: 10, Xi: 0.75, NumData: 4, Seed: 7})
	for _, alg := range OurAlgorithms {
		if _, ok := pt.Accuracy[alg]; !ok {
			t.Fatalf("missing accuracy for %s", alg)
		}
		if pt.Seconds[alg] < 0 {
			t.Fatalf("negative time for %s", alg)
		}
	}
	if pt.MinG2Nodes < 30 || pt.MaxG2Nodes < pt.MinG2Nodes {
		t.Fatalf("G2 size range wrong: [%d, %d]", pt.MinG2Nodes, pt.MaxG2Nodes)
	}
	// Ground truth guarantees a full mapping exists; at low noise the
	// approximations should find matches for most data graphs.
	if pt.Accuracy[CompMaxCard] < 50 {
		t.Errorf("compMaxCard accuracy = %v, want ≥ 50", pt.Accuracy[CompMaxCard])
	}
}

func TestSweepsProduceSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	size := SweepSize([]int{20, 40}, 3, 3)
	if len(size) != 2 || size[0].X != 20 || size[1].X != 40 {
		t.Fatalf("size sweep malformed: %+v", size)
	}
	noise := SweepNoise(30, []float64{5, 15}, 3, 3)
	if len(noise) != 2 || noise[0].X != 5 {
		t.Fatalf("noise sweep malformed")
	}
	xi := SweepXi(30, []float64{0.5, 0.9}, 3, 3)
	if len(xi) != 2 || xi[1].X != 0.9 {
		t.Fatalf("xi sweep malformed")
	}
	text := FormatSeries("Fig 5(a)", "m", size, OurAlgorithms, false)
	if !strings.Contains(text, "Fig 5(a)") || !strings.Contains(text, "compMaxSim") {
		t.Fatalf("FormatSeries malformed:\n%s", text)
	}
}

func TestGraphSimulationFindsNoMatchOnNoisyData(t *testing.T) {
	// The paper's Exp-2 observation: graphSimulation finds 0% matches on
	// noisy synthetic data because edges stretch into paths.
	pt := RunSynthetic(SynConfig{
		M: 40, Noise: 20, Xi: 0.75, NumData: 5, Seed: 11,
		Algorithms: []Algorithm{GraphSim, CompMaxCard},
	})
	if pt.Accuracy[GraphSim] > pt.Accuracy[CompMaxCard] {
		t.Errorf("simulation (%v) should not beat p-hom (%v) on noisy data",
			pt.Accuracy[GraphSim], pt.Accuracy[CompMaxCard])
	}
}
