package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"graphmatch/internal/catalog"
	"graphmatch/internal/graph"
)

// coalesceBase builds a content-carrying chain of n nodes for the
// coalescer tests.
func coalesceBase(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNodeFull(graph.Node{Label: fmt.Sprintf("n%d", i), Weight: 1, Content: fmt.Sprintf("page %d", i)})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
	}
	g.Finish()
	return g
}

// TestCoalesceStormBatches fires a burst of concurrent patches inside
// one coalescing window and checks they commit as one catalog
// mutation with every edge present.
func TestCoalesceStormBatches(t *testing.T) {
	e := New(Options{Workers: 2, PatchCoalesceCount: 64, PatchCoalesceWindow: 50 * time.Millisecond})
	defer e.Close()
	if err := e.Register("g", coalesceBase(32)); err != nil {
		t.Fatal(err)
	}

	const storm = 12
	var wg sync.WaitGroup
	errs := make([]error, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct forward chords: disjoint, order-independent.
			_, errs[i] = e.ApplyPatch("g", &graph.Patch{
				AddEdges: [][2]graph.NodeID{{graph.NodeID(i), graph.NodeID(i + 2)}},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("patch %d: %v", i, err)
		}
	}
	g := e.mustGet(t, "g")
	for i := 0; i < storm; i++ {
		if !g.HasEdge(graph.NodeID(i), graph.NodeID(i+2)) {
			t.Fatalf("edge %d→%d missing after storm", i, i+2)
		}
	}
	s := e.Stats()
	if s.PatchBatches == 0 || s.PatchesCoalesced < 2 {
		t.Fatalf("storm inside one window did not batch: %+v", s)
	}
	// The closure kept up: the chain plus chords still reaches the end.
	r, err := e.cat.Reach("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reachable(0, 31) {
		t.Fatal("closure lost the chain after batched patches")
	}
}

// TestCoalesceBadPatchIsolated checks the fallback contract: when a
// batch contains an invalid patch, it alone fails — its neighbours in
// the batch commit, exactly as they would uncoalesced.
func TestCoalesceBadPatchIsolated(t *testing.T) {
	e := New(Options{Workers: 2, PatchCoalesceCount: 64, PatchCoalesceWindow: 50 * time.Millisecond})
	defer e.Close()
	if err := e.Register("g", coalesceBase(8)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, goodErr = e.ApplyPatch("g", &graph.Patch{AddEdges: [][2]graph.NodeID{{0, 5}}})
	}()
	go func() {
		defer wg.Done()
		// Deletes an edge that never existed: invalid alone and in any
		// composition.
		_, badErr = e.ApplyPatch("g", &graph.Patch{DelEdges: [][2]graph.NodeID{{5, 0}}})
	}()
	wg.Wait()
	if goodErr != nil {
		t.Fatalf("good patch failed alongside a bad one: %v", goodErr)
	}
	if !errors.Is(badErr, catalog.ErrBadPatch) {
		t.Fatalf("bad patch error = %v, want ErrBadPatch", badErr)
	}
	if !e.mustGet(t, "g").HasEdge(0, 5) {
		t.Fatal("good patch's edge missing")
	}
}

// TestCoalesceCancellingPatches checks that a batch composing to a
// no-op commits nothing: both waiters observe the unchanged graph.
func TestCoalesceCancellingPatches(t *testing.T) {
	e := New(Options{Workers: 2, PatchCoalesceCount: 64, PatchCoalesceWindow: 200 * time.Millisecond})
	defer e.Close()
	if err := e.Register("g", coalesceBase(4)); err != nil {
		t.Fatal(err)
	}
	before := e.mustGet(t, "g")

	var wg sync.WaitGroup
	var g1, g2 *graph.Graph
	var err1, err2 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		g1, err1 = e.ApplyPatch("g", &graph.Patch{AddEdges: [][2]graph.NodeID{{0, 2}}})
	}()
	time.Sleep(10 * time.Millisecond) // order the two inside one window
	wg.Add(1)
	go func() {
		defer wg.Done()
		g2, err2 = e.ApplyPatch("g", &graph.Patch{DelEdges: [][2]graph.NodeID{{0, 2}}})
	}()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if g1 != before || g2 != before {
		t.Fatal("cancelling batch should leave the registered graph object untouched")
	}
	if e.mustGet(t, "g").HasEdge(0, 2) {
		t.Fatal("cancelled edge materialised")
	}
}

// TestCoalesceSequentialOrdering checks that a caller's own sequence
// stays ordered: each ApplyPatch acknowledgement means committed, so a
// patch deleting what the previous one added must succeed.
func TestCoalesceSequentialOrdering(t *testing.T) {
	e := New(Options{Workers: 2, PatchCoalesceCount: 8})
	defer e.Close()
	if err := e.Register("g", coalesceBase(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := e.ApplyPatch("g", &graph.Patch{AddEdges: [][2]graph.NodeID{{0, 2}}}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if _, err := e.ApplyPatch("g", &graph.Patch{DelEdges: [][2]graph.NodeID{{0, 2}}}); err != nil {
			t.Fatalf("del %d: %v", i, err)
		}
	}
	if e.mustGet(t, "g").HasEdge(0, 2) {
		t.Fatal("final state wrong after add/del sequence")
	}
}

// TestCoalesceFollower runs a follower with patch batching against a
// storming primary and checks convergence: the follower's catalog
// matches the primary's graph edge-for-edge once drained, and a
// snapshot taken on the follower is consistent.
func TestCoalesceFollower(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "")
	defer p.shutdown()
	if err := p.eng.Register("web", coalesceBase(24)); err != nil {
		t.Fatal(err)
	}

	f, err := Open(Options{
		Workers:             2,
		StorePath:           t.TempDir(),
		FollowURL:           p.url(),
		FollowMinBackoff:    2 * time.Millisecond,
		FollowMaxBackoff:    25 * time.Millisecond,
		FollowStallTimeout:  250 * time.Millisecond,
		PatchCoalesceCount:  16,
		PatchCoalesceWindow: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	defer f.Close()
	waitSynced(t, f, p, 5*time.Second)

	// Storm the primary.
	for i := 0; i < 40; i++ {
		patch := &graph.Patch{AddEdges: [][2]graph.NodeID{{graph.NodeID(i % 20), graph.NodeID((i + 3) % 20)}}}
		if i%4 == 3 {
			patch = &graph.Patch{DelEdges: [][2]graph.NodeID{{graph.NodeID((i - 3) % 20), graph.NodeID(i % 20)}}}
		}
		if _, err := p.eng.ApplyPatch("web", patch); err != nil {
			t.Fatalf("primary patch %d: %v", i, err)
		}
	}
	waitSynced(t, f, p, 5*time.Second)
	// WAL-synced; now wait out the follower's asynchronous batch
	// commits before comparing catalogs.
	f.coalescer.drain()
	if serr := f.coalescer.stickyErr(); serr != nil {
		t.Fatalf("follower batch apply failed: %v", serr)
	}

	pg := p.eng.mustGet(t, "web")
	fg := f.mustGet(t, "web")
	if pg.NumNodes() != fg.NumNodes() || pg.NumEdges() != fg.NumEdges() {
		t.Fatalf("size diverged: primary %d/%d, follower %d/%d",
			pg.NumNodes(), pg.NumEdges(), fg.NumNodes(), fg.NumEdges())
	}
	same := true
	pg.Edges(func(from, to graph.NodeID) bool {
		if !fg.HasEdge(from, to) {
			same = false
		}
		return same
	})
	if !same {
		t.Fatal("follower edges diverged from primary")
	}

	// A follower snapshot drains first, so state and seq agree.
	if _, err := f.Snapshot(); err != nil {
		t.Fatalf("follower snapshot: %v", err)
	}
	rs, _ := f.ReplStats()
	if rs.Diverged {
		t.Fatal("follower diverged under a clean storm")
	}
}
