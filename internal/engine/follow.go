package engine

import (
	"context"
	"errors"
	"fmt"

	"graphmatch/internal/graph"
	"graphmatch/internal/repl"
	"graphmatch/internal/store"
	"graphmatch/internal/trace"
)

// This file wires the engine into the WAL-shipping replication of
// internal/repl. A primary exposes its store and catalog as a
// repl.Source (ReplSource); a follower (Options.FollowURL) runs a
// repl.Follower whose Apply/Reset callbacks land every streamed record
// through the ordinary catalog paths — closures rebuilt, search index
// reindexed — and into the follower's own WAL, so a restarted follower
// resumes from its local tail instead of re-fetching history.

// ErrReadOnly rejects local mutations on a follower engine: the
// catalog is a replica of the primary's, and a local write would
// diverge it. The transport maps it to HTTP 421 with the primary's
// location.
var ErrReadOnly = errors.New("engine: read-only follower")

// IsFollower reports whether the engine replicates from a primary.
func (e *Engine) IsFollower() bool { return e.follower != nil }

// PrimaryURL is the followed primary's base URL, empty on a
// non-follower.
func (e *Engine) PrimaryURL() string {
	if e.follower == nil {
		return ""
	}
	return e.primaryURL
}

// ReplStats snapshots the follower's replication state; ok is false on
// a non-follower.
func (e *Engine) ReplStats() (st repl.Stats, ok bool) {
	if e.follower == nil {
		return repl.Stats{}, false
	}
	return e.follower.Stats(), true
}

// ReplSource exposes the engine as a replication primary: the store
// whose WAL the stream ships and the catalog export that backs
// bootstraps. Nil without a store, and nil on a follower — chained
// replication is not supported (a follower's WAL appends do not run
// under the catalog lock, so the export-at-exact-seq contract the
// bootstrap relies on would not hold).
func (e *Engine) ReplSource() *repl.Source {
	if e.store == nil || e.follower != nil {
		return nil
	}
	return &repl.Source{Store: e.store, Export: e.cat.Export}
}

// startFollower launches the replication loop. Called at the end of
// Open, after replay and workers: the follower resumes from the local
// store's durable tail.
func (e *Engine) startFollower(opts Options) error {
	f, err := repl.New(repl.Config{
		Primary:      opts.FollowURL,
		Client:       opts.FollowClient,
		Store:        e.store,
		Apply:        e.applyReplicated,
		Reset:        e.resetReplicated,
		MinBackoff:   opts.FollowMinBackoff,
		MaxBackoff:   opts.FollowMaxBackoff,
		StallTimeout: opts.FollowStallTimeout,
	})
	if err != nil {
		return err
	}
	e.follower = f
	e.initReplMetrics()
	f.Start()
	return nil
}

// applyReplicated is the follower's repl.Config.Apply: persist the op
// to the local WAL at the primary's seq, then commit it through the
// ordinary catalog path. Both run under snapMu so a concurrent local
// snapshot (explicit or background) can never capture the append
// without the commit — Snapshot's Rotate+Export also runs under
// snapMu, so the (state, seq) pair it writes is always consistent. A
// catalog rejection means local state the primary's log cannot
// reproduce: reported as repl.ErrStateMismatch, which makes the
// follower resync.
func (e *Engine) applyReplicated(op store.Op) error {
	// A batched patch that failed asynchronously means the catalog has
	// diverged from the WAL we already acknowledged: surface it before
	// accepting anything further, so the follower resyncs.
	if e.coalescer != nil {
		if serr := e.coalescer.stickyErr(); serr != nil {
			return fmt.Errorf("%w: %v", repl.ErrStateMismatch, serr)
		}
		if op.Kind != store.OpPatch {
			// Register/Remove must observe every earlier patch: flush
			// the queue so replicated ops commit in stream order.
			e.coalescer.drain()
			if serr := e.coalescer.stickyErr(); serr != nil {
				return fmt.Errorf("%w: %v", repl.ErrStateMismatch, serr)
			}
		}
	}
	// Re-parent the apply under the primary's trace context: the op
	// carries the originating request's traceparent (shipped verbatim
	// off the primary's WAL), so the follower's flight recorder files
	// this apply under the SAME trace id — `phom trace <id>` on either
	// node finds the two halves of the mutation.
	ctx := context.Background()
	sp := e.startRemoteSpan(op)
	if sp.Active() {
		ctx = trace.ContextWithSpan(ctx, sp)
	}
	e.snapMu.Lock()
	asp := sp.Child("store.append")
	if err := e.store.AppendAt(op); err != nil {
		e.snapMu.Unlock()
		sp.SetStr("error", err.Error())
		sp.End()
		return err
	}
	asp.SetInt("seq", int64(op.Seq))
	asp.End()
	var err error
	switch op.Kind {
	case store.OpRegister:
		err = e.cat.RegisterCtx(ctx, op.Name, op.Graph)
	case store.OpRemove:
		err = e.cat.RemoveCtx(ctx, op.Name)
	case store.OpPatch:
		if e.coalescer != nil {
			// Fire-and-forget: the record is durable locally, and the
			// coalescer batches the catalog commit with its neighbours
			// in the burst. Enqueued under snapMu so a snapshot's
			// drain-then-export can never see the append without at
			// least the enqueue. A commit failure parks in stickyErr
			// and fails the next apply, which triggers the resync.
			// The trace context is NOT threaded: the commit happens
			// after this apply returns and ends its trace.
			_, err = e.coalescer.enqueue(context.Background(), op.Name, op.Patch, false)
		} else {
			_, err = e.cat.ApplyCtx(ctx, op.Name, op.Patch)
		}
	default:
		err = fmt.Errorf("unknown op kind %d", op.Kind)
	}
	e.snapMu.Unlock()
	if err != nil {
		sp.SetStr("error", err.Error())
		sp.End()
		return fmt.Errorf("%w: %v", repl.ErrStateMismatch, err)
	}
	sp.End()
	e.maybeSnapshot()
	return nil
}

// startRemoteSpan opens a repl.apply trace for a streamed op that
// carries the primary's traceparent; inert when the op is untraced or
// the follower's recorder is disabled.
func (e *Engine) startRemoteSpan(op store.Op) trace.Span {
	if e.tracer == nil || op.Trace == "" {
		return trace.Span{}
	}
	id, parent, ok := trace.ParseTraceparent(op.Trace)
	if !ok {
		return trace.Span{}
	}
	sp := e.tracer.StartRemote(id, parent, "repl.apply", "")
	sp.SetInt("seq", int64(op.Seq))
	sp.SetStr("op", opKindName(op.Kind))
	sp.SetStr("graph", op.Name)
	return sp
}

func opKindName(k store.OpKind) string {
	switch k {
	case store.OpRegister:
		return "register"
	case store.OpRemove:
		return "remove"
	case store.OpPatch:
		return "patch"
	}
	return "unknown"
}

// resetReplicated is the follower's repl.Config.Reset: land the local
// store on a snapshot of the bootstrap state at the primary's seq —
// discarding all local history — and swap the catalog to match. Under
// snapMu for the same reason as applyReplicated.
func (e *Engine) resetReplicated(state map[string]*graph.Graph, seq uint64) error {
	// Pending batched patches target catalog state the bootstrap is
	// about to replace wholesale: drop them, wait out in-flight
	// commits, and clear the sticky divergence they may have recorded.
	if e.coalescer != nil {
		e.coalescer.discard()
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if err := e.store.ReplaceWithSnapshot(state, seq); err != nil {
		return err
	}
	if err := e.cat.Replace(state); err != nil {
		return fmt.Errorf("%w: %v", repl.ErrStateMismatch, err)
	}
	return nil
}
