package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"graphmatch/internal/graph"
)

// pathGraph builds the directed path 0→1→…→n-1 with one shared label:
// its reachability is the total order i<j.
func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode("P")
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g.Finish()
	return g
}

// cyclePattern builds a directed k-cycle with the path graph's label.
// Against a DAG it is unsatisfiable — a cycle needs cyclic reachability
// — but the exact decider only discovers that after backtracking over
// every ordered candidate tuple, which makes request duration long,
// deterministic, and tunable via the data-graph size.
func cyclePattern(k int) *graph.Graph {
	g := graph.New(k)
	for i := 0; i < k; i++ {
		g.AddNode("P")
	}
	for i := 0; i < k; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%k))
	}
	g.Finish()
	return g
}

// slowReq returns a Decide request that keeps a worker busy for tens of
// milliseconds (cubic in the data-path length, so tunable and
// deterministic). salt differentiates requests via an admissibility-
// preserving ξ perturbation (labels match exactly, so mat = 1 ≥ ξ) so
// they do not coalesce with each other.
func slowReq(salt int) Request {
	return Request{Pattern: cyclePattern(3), GraphName: "path", Algo: Decide, Xi: float64(salt) * 1e-9}
}

func newOverloadEngine(t *testing.T, maxPending int) *Engine {
	t.Helper()
	e := New(Options{Workers: 1, QueueDepth: 4, MaxPending: maxPending})
	t.Cleanup(e.Close)
	if err := e.Register("path", pathGraph(160)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAdmissionControlSheds(t *testing.T) {
	e := newOverloadEngine(t, 2)
	ctx := context.Background()
	const n = 8
	results := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Match(ctx, slowReq(i))
		}(i)
	}
	wg.Wait()
	var shed, served int
	for _, r := range results {
		switch {
		case errors.Is(r.Err, ErrOverloaded):
			shed++
		case r.Err == nil:
			served++
		default:
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed with MaxPending=2 and %d concurrent slow requests", n)
	}
	if served == 0 {
		t.Fatal("every request shed: admitted work should still complete")
	}
	st := e.Stats()
	if st.Shed != uint64(shed) {
		t.Fatalf("Stats.Shed = %d, want %d", st.Shed, shed)
	}
	// The engine must fully recover once the burst drains.
	if res := e.Match(ctx, slowReq(0)); res.Err != nil {
		t.Fatalf("post-burst request failed: %v", res.Err)
	}
	if got := e.Stats().Pending; got != 0 {
		t.Fatalf("pending = %d after drain, want 0", got)
	}
}

func TestUnlimitedPendingNeverSheds(t *testing.T) {
	e := newOverloadEngine(t, 0)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.Match(ctx, slowReq(i)).Err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed with MaxPending=0: %v", i, err)
		}
	}
}

func TestExpiredContextRejectedBeforeEnqueue(t *testing.T) {
	e := newOverloadEngine(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := e.Stats().Executed
	res := e.Match(ctx, slowReq(0))
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", res.Err)
	}
	// Nothing may have reached the pool.
	if got := e.Stats().Executed; got != before {
		t.Fatalf("executed grew %d→%d for an expired-context request", before, got)
	}
	if got := e.Stats().Pending; got != 0 {
		t.Fatalf("pending = %d, want 0", got)
	}
	for i, r := range e.MatchBatch(ctx, []Request{slowReq(0), slowReq(2)}) {
		if !errors.Is(r.Err, ErrDeadline) {
			t.Fatalf("batch[%d] err = %v, want ErrDeadline", i, r.Err)
		}
	}
}

// TestMidFlightCancelFreesWorker pins the acceptance criterion: a
// cancelled match returns ErrDeadline promptly AND the worker abandons
// the recursion instead of running it to completion.
func TestMidFlightCancelFreesWorker(t *testing.T) {
	e := New(Options{Workers: 1})
	t.Cleanup(e.Close)
	// Big enough that the uncancelled decide takes ~seconds.
	if err := e.Register("path", pathGraph(2500)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := e.Match(ctx, slowReq(0))
	if !errors.Is(res.Err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", res.Err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancelled match took %v to return", waited)
	}
	// The single worker must become free long before the abandoned
	// decide would have finished: a quick follow-up request completes.
	quick := Request{Pattern: pathGraph(3), GraphName: "path", Algo: MaxCard, Xi: 0.5}
	done := make(chan Result, 1)
	go func() { done <- e.Match(context.Background(), quick) }()
	select {
	case r := <-done:
		if r.Err != nil {
			t.Fatalf("follow-up failed: %v", r.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker still pinned by the cancelled recursion")
	}
}

// TestCoalescedPeerSurvivesCancellation pins the refcount semantics:
// the first waiter giving up must not kill a computation a coalesced
// peer still wants.
func TestCoalescedPeerSurvivesCancellation(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 8})
	t.Cleanup(e.Close)
	if err := e.Register("path", pathGraph(200)); err != nil {
		t.Fatal(err)
	}
	// Occupy the worker so the interesting task stays queued while both
	// waiters attach.
	blocker := make(chan Result, 1)
	go func() { blocker <- e.Match(context.Background(), slowReq(2)) }()
	time.Sleep(10 * time.Millisecond)

	shared := slowReq(0)
	impatient, cancel := context.WithCancel(context.Background())
	first := make(chan Result, 1)
	go func() { first <- e.Match(impatient, shared) }()
	time.Sleep(10 * time.Millisecond)
	patient := make(chan Result, 1)
	go func() { patient <- e.Match(context.Background(), shared) }()
	time.Sleep(10 * time.Millisecond)

	cancel()
	if r := <-first; !errors.Is(r.Err, ErrDeadline) {
		t.Fatalf("impatient waiter err = %v, want ErrDeadline", r.Err)
	}
	r := <-patient
	if r.Err != nil {
		t.Fatalf("patient coalesced waiter failed: %v", r.Err)
	}
	if r.Holds {
		t.Fatal("cycle pattern cannot hold against a DAG")
	}
	if b := <-blocker; b.Err != nil {
		t.Fatalf("blocker failed: %v", b.Err)
	}
}

// TestCancelledResultNotInherited pins that a fresh identical request
// arriving after every waiter detached starts a new computation rather
// than inheriting the cancelled task's ErrDeadline result — and that
// the fresh result is bit-identical to an undisturbed run.
func TestCancelledResultNotInherited(t *testing.T) {
	e := New(Options{Workers: 1})
	t.Cleanup(e.Close)
	if err := e.Register("path", pathGraph(220)); err != nil {
		t.Fatal(err)
	}
	req := slowReq(0)
	want := e.Match(context.Background(), req)
	if want.Err != nil {
		t.Fatalf("baseline failed: %v", want.Err)
	}
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(5+i*7)*time.Millisecond)
		res := e.Match(ctx, req)
		cancel()
		if res.Err != nil && !errors.Is(res.Err, ErrDeadline) {
			t.Fatalf("unexpected error: %v", res.Err)
		}
		fresh := e.Match(context.Background(), req)
		if fresh.Err != nil {
			t.Fatalf("request after cancellation failed: %v", fresh.Err)
		}
		if fresh.Holds != want.Holds || fresh.QualCard != want.QualCard || fresh.QualSim != want.QualSim ||
			!mappingEqual(fresh.Mapping, want.Mapping) {
			t.Fatalf("post-cancel result diverged: %+v vs %+v", fresh, want)
		}
	}
}

func TestRequestIDDecoratesErrors(t *testing.T) {
	e := New(Options{Workers: 1})
	t.Cleanup(e.Close)
	ctx := WithRequestID(context.Background(), "abc123")
	res := e.Match(ctx, Request{Pattern: cyclePattern(3), GraphName: "nope", Algo: MaxCard})
	if res.Err == nil {
		t.Fatal("expected unknown-graph error")
	}
	if got := res.Err.Error(); !containsStr(got, "[req abc123]") {
		t.Fatalf("error %q lacks request id", got)
	}
	if RequestID(ctx) != "abc123" {
		t.Fatal("RequestID round trip failed")
	}
	if RequestID(context.Background()) != "" {
		t.Fatal("RequestID of bare context should be empty")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestEngineMetricsRegistered(t *testing.T) {
	e := New(Options{Workers: 1})
	t.Cleanup(e.Close)
	if e.Metrics() == nil {
		t.Fatal("Metrics() nil without NoMetrics")
	}
	e2 := New(Options{Workers: 1, NoMetrics: true})
	t.Cleanup(e2.Close)
	if e2.Metrics() != nil {
		t.Fatal("Metrics() non-nil with NoMetrics")
	}
	// NoMetrics engines must still serve requests (nil-safe
	// instruments).
	if err := e2.Register("path", pathGraph(10)); err != nil {
		t.Fatal(err)
	}
	if res := e2.Match(context.Background(), Request{Pattern: pathGraph(2), GraphName: "path", Algo: MaxCard, Xi: 0.5}); res.Err != nil {
		t.Fatalf("NoMetrics engine match failed: %v", res.Err)
	}
}

func TestSlowReqIsActuallySlow(t *testing.T) {
	// Guard for the other tests in this file: if the decider gets fast
	// enough that slowReq finishes instantly, the saturation tests stop
	// testing anything — fail loudly instead of silently passing.
	e := newOverloadEngine(t, 0)
	start := time.Now()
	if res := e.Match(context.Background(), slowReq(0)); res.Err != nil {
		t.Fatal(res.Err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("slowReq finished in %v; overload tests need a slower canonical request", d)
	}
	_ = fmt.Sprintf
}
