package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"graphmatch/internal/catalog"
	"graphmatch/internal/graph"
	"graphmatch/internal/search"
	"graphmatch/internal/trace"
)

// DefaultSearchK is the top-k size applied when a search request
// leaves K at 0.
const DefaultSearchK = 10

// SearchRequest asks "which registered graphs match this pattern
// best?": the pattern is scored against every graph in the catalog and
// the best K land in the result, ranked by match quality.
type SearchRequest struct {
	// Pattern is G1, the query. Normalised at submission; it must not
	// be mutated while the search is in flight.
	Pattern *graph.Graph
	// Algo selects the matching procedure run per candidate; empty
	// defaults to MaxSim (its qualSim metric gives the smoothest
	// ranking signal).
	Algo Algorithm
	// Xi is the node-similarity threshold ξ ∈ [0, 1].
	Xi float64
	// PathLimit bounds pattern-edge images, as in Request.
	PathLimit int
	// Sim selects the similarity matrix; empty defaults to SimLabel.
	Sim SimKind
	// K is the number of ranked hits to return; 0 means DefaultSearchK.
	K int
	// MaxCandidates caps how many stage-1 candidates reach the
	// matcher: 0 applies the engine's configured default, negative
	// means unlimited.
	MaxCandidates int
	// MinResemblance prunes candidates whose stage-1 content score
	// falls below it: 0 applies the engine's configured default,
	// negative disables pruning (exact search).
	MinResemblance float64
	// NoPrefilter bypasses stage 1 entirely and matches every
	// registered graph — the brute-force scan the benchmark compares
	// the prefilter against.
	NoPrefilter bool
}

// SearchHit is one ranked search result.
type SearchHit struct {
	// Graph is the registered graph name.
	Graph string
	// Score is the quality the ranking ordered by (qualSim for the
	// maxsim algorithms, qualCard for the maxcard ones, the 0/1
	// verdict for the decision procedures and the simulation
	// baseline).
	Score float64
	// Holds, Matched, QualCard and QualSim mirror the per-candidate
	// match result.
	Holds    bool
	Matched  int
	QualCard float64
	QualSim  float64
	// Containment, Resemblance and StructSim are the stage-1 prefilter
	// scores of the candidate (zero under NoPrefilter).
	Containment float64
	Resemblance float64
	StructSim   float64
}

// SearchStats reports the work a search did, stage by stage.
type SearchStats struct {
	// Graphs is the catalog size the search ran over.
	Graphs int
	// Candidates survived stage 1 and were handed to the matcher.
	Candidates int
	// Pruned counts graphs stage 1 skipped (score threshold plus
	// candidate cap) — the matcher invocations the prefilter saved.
	Pruned int
	// Matched counts candidates the matcher actually scored.
	Matched int
	// Missing counts candidates that vanished between stage 1 and
	// stage 2 (concurrently removed); they are silently dropped.
	Missing int
	// PruneRate is Pruned / Graphs, or 0 for an empty catalog.
	PruneRate float64
	// Stage1 and Stage2 are the wall times of candidate selection and
	// of the ranked matching fan-out.
	Stage1 time.Duration
	Stage2 time.Duration
}

// SearchResult carries the ranked hits and per-stage stats. Err is the
// request-level failure (validation, cancelled context, engine
// closed); per-candidate ErrNotFound from concurrent removals is not
// an error, just Stats.Missing.
type SearchResult struct {
	Hits  []SearchHit
	Stats SearchStats
	Err   error
}

// Search ranks the pattern against every registered graph and returns
// the top K hits. Stage 1 consults the candidate index (shingle
// postings + structural signatures) to order and prune the catalog
// without running the matcher; stage 2 fans the surviving candidates
// through the worker pool as one batch — concurrent, coalescible with
// other traffic, cancellable via ctx — and folds the qualities into a
// deterministic top-k (ties broken by graph name). The ranking is
// reproducible: the same catalog and request return the same hits in
// the same order on every run.
func (e *Engine) Search(ctx context.Context, req SearchRequest) SearchResult {
	e.searches.Add(1)
	if req.Algo == "" {
		req.Algo = MaxSim
	}
	ssp := trace.SpanFromContext(ctx).Child("engine.search")
	if ssp.Active() {
		ssp.SetStr("algo", string(req.Algo))
		defer ssp.End()
	}
	if err := e.validateSearch(req); err != nil {
		e.errors.Add(1)
		ssp.SetStr("error", err.Error())
		return SearchResult{Err: err}
	}
	k := req.K
	if k <= 0 {
		k = DefaultSearchK
	}
	pol := search.Policy{Brute: req.NoPrefilter}
	if !req.NoPrefilter {
		// Brute force means every graph, so neither the request's nor
		// the engine's default bounds apply to it.
		if maxCand := req.MaxCandidates; maxCand != 0 {
			pol.MaxCandidates = max(maxCand, 0)
		} else {
			pol.MaxCandidates = max(e.searchMaxCand, 0)
		}
		if minRes := req.MinResemblance; minRes != 0 {
			pol.MinResemblance = math.Max(minRes, 0)
		} else {
			pol.MinResemblance = math.Max(e.searchMinResembl, 0)
		}
	}
	// Normalise the pattern once, up front, under the same serialisation
	// submit uses (concurrent searches may share one pattern object).
	e.finishMu.Lock()
	req.Pattern.Finish()
	e.finishMu.Unlock()

	start := time.Now()
	cands, cstats := e.searchIdx.Candidates(search.Summarize(req.Pattern), pol)
	stats := SearchStats{
		Graphs:     cstats.Graphs,
		Candidates: len(cands),
		Pruned:     cstats.PrunedScore + cstats.PrunedCap,
		Stage1:     time.Since(start),
	}
	if stats.Graphs > 0 {
		stats.PruneRate = float64(stats.Pruned) / float64(stats.Graphs)
	}
	e.mSearchStage1.Observe(stats.Stage1.Seconds())
	e.mSearchCandidates.Observe(float64(stats.Candidates))
	if stats.Graphs > 0 {
		e.mSearchPruneRatio.Observe(stats.PruneRate)
	}
	if ssp.Active() {
		s1 := ssp.ChildSpanning("search.stage1", start, start.Add(stats.Stage1))
		s1.SetInt("graphs", int64(stats.Graphs))
		s1.SetInt("candidates", int64(stats.Candidates))
		s1.SetInt("pruned", int64(stats.Pruned))
		s1.SetFloat("prune_rate", stats.PruneRate)
	}
	if err := ctx.Err(); err != nil {
		e.errors.Add(1)
		ssp.SetStr("error", err.Error())
		return SearchResult{Stats: stats, Err: decorate(ctx, fmt.Errorf("%w: %w", ErrDeadline, err))}
	}

	reqs := make([]Request, len(cands))
	for i, c := range cands {
		reqs[i] = Request{
			Pattern:   req.Pattern,
			GraphName: c.Name,
			Algo:      req.Algo,
			Xi:        req.Xi,
			PathLimit: req.PathLimit,
			Sim:       req.Sim,
		}
	}
	stage2 := time.Now()
	results := e.MatchBatch(ctx, reqs)

	top := search.NewTopK(k)
	var firstErr error
	for i, res := range results {
		if res.Err != nil {
			if errors.Is(res.Err, catalog.ErrNotFound) {
				stats.Missing++ // removed between the stages: not a hit, not an error
				continue
			}
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		stats.Matched++
		primary, tie := rankScore(req.Algo, res)
		top.Push(search.Hit{Name: cands[i].Name, Score: primary, Tie: tie, Payload: searchPayload{cand: cands[i], res: res}})
	}
	stats.Stage2 = time.Since(stage2)
	e.mSearchStage2.Observe(stats.Stage2.Seconds())
	if ssp.Active() {
		s2 := ssp.ChildSpanning("search.stage2", stage2, stage2.Add(stats.Stage2))
		s2.SetInt("matched", int64(stats.Matched))
		s2.SetInt("missing", int64(stats.Missing))
	}

	hits := make([]SearchHit, 0, top.Len())
	for _, h := range top.Ranked() {
		p := h.Payload.(searchPayload)
		hits = append(hits, SearchHit{
			Graph:       h.Name,
			Score:       h.Score,
			Holds:       p.res.Holds,
			Matched:     len(p.res.Mapping),
			QualCard:    p.res.QualCard,
			QualSim:     p.res.QualSim,
			Containment: p.cand.Containment,
			Resemblance: p.cand.Resemblance,
			StructSim:   p.cand.StructSim,
		})
	}
	// Per-candidate failures were already counted by the batch's wait
	// path; adding one more here would double-count them.
	return SearchResult{Hits: hits, Stats: stats, Err: firstErr}
}

// searchPayload rides through the top-k fold.
type searchPayload struct {
	cand search.Candidate
	res  Result
}

// validateSearch mirrors submit's request validation for the fields a
// search shares with a match, so malformed searches fail before any
// per-candidate work.
func (e *Engine) validateSearch(req SearchRequest) error {
	if req.Pattern == nil {
		return fmt.Errorf("engine: nil pattern")
	}
	if _, err := ParseAlgorithm(string(req.Algo)); err != nil {
		return err
	}
	if req.Sim != "" && req.Sim != SimLabel && req.Sim != SimContent {
		return fmt.Errorf("engine: unknown similarity kind %q", req.Sim)
	}
	if math.IsNaN(req.Xi) {
		return fmt.Errorf("engine: ξ is NaN")
	}
	if (req.Algo == Decide || req.Algo == Decide11) &&
		e.exactLimit > 0 && req.Pattern.NumNodes() > e.exactLimit {
		return fmt.Errorf("%w: %d nodes > limit %d",
			ErrExactLimit, req.Pattern.NumNodes(), e.exactLimit)
	}
	return nil
}

// rankScore maps a match result onto the (primary, tie) ranking keys
// of the fold: whatever quality metric the chosen algorithm optimises
// ranks first, the other metric splits ties, and the graph name splits
// what remains (inside search.Better).
func rankScore(algo Algorithm, res Result) (primary, tie float64) {
	switch algo {
	case MaxSim, MaxSim11:
		return res.QualSim, res.QualCard
	case Decide, Decide11, Simulation:
		verdict := 0.0
		if res.Holds {
			verdict = 1
		}
		return verdict, res.QualSim
	default:
		return res.QualCard, res.QualSim
	}
}
