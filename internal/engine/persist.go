package engine

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"

	"graphmatch/internal/graph"
	"graphmatch/internal/store"
	"graphmatch/internal/trace"
)

// ErrNoStore rejects persistence operations (Snapshot, store stats) on
// an engine that was opened without Options.StorePath.
var ErrNoStore = errors.New("engine: no store configured")

// persister adapts the store to the catalog's write-ahead callback.
// Its methods run under the catalog lock, so the WAL order is exactly
// the mutation order and an acknowledged mutation is durable (Append
// fsyncs) before the registry commits it.
type persister struct{ st *store.Store }

// append logs op, attributing the durability cost to the request's
// trace when ctx carries one: the op is stamped with the request's
// traceparent (which the replication stream ships verbatim, so
// followers can re-parent their apply spans under the primary's trace)
// and a store.append span records the WAL write and fsync split.
func (p persister) append(ctx context.Context, op store.Op) error {
	sp := trace.SpanFromContext(ctx)
	if !sp.Active() {
		_, err := p.st.Append(op)
		return err
	}
	op.Trace = sp.Traceparent()
	ssp := sp.Child("store.append")
	seq, tm, err := p.st.AppendTimed(op)
	if err != nil {
		ssp.SetStr("error", err.Error())
	} else {
		ssp.SetInt("seq", int64(seq))
	}
	ssp.SetInt("fsync_us", tm.Fsync.Microseconds())
	ssp.End()
	return err
}

func (p persister) LogRegister(ctx context.Context, name string, g *graph.Graph) error {
	return p.append(ctx, store.Op{Kind: store.OpRegister, Name: name, Graph: g})
}

func (p persister) LogRemove(ctx context.Context, name string) error {
	return p.append(ctx, store.Op{Kind: store.OpRemove, Name: name})
}

func (p persister) LogPatch(ctx context.Context, name string, pt *graph.Patch) error {
	return p.append(ctx, store.Op{Kind: store.OpPatch, Name: name, Patch: pt})
}

// openStore opens and replays the store during engine boot. The ops
// are first folded to their final state — a graph registered once and
// patched N times yields one graph, not N+1 catalog mutations — and
// each survivor is registered through the ordinary catalog path, so
// closure tiers rebuild and the search index reindexes exactly once
// per graph; by the time Open returns, the recovered catalog is warm
// and the HTTP listener can accept traffic. The persister is installed
// only after the replay, so recovered state is not re-logged — and not
// at all on a follower, whose ops are logged by the replication apply
// path instead.
//
// progress (Options.ReplayProgress), when non-nil, observes the work:
// done counts snapshot graphs and WAL ops as the fold consumes them,
// then catalog registrations; total is extended once the fold reveals
// how many survivors there are to register.
func (e *Engine) openStore(path string, progress func(done, total int)) error {
	st, err := store.Open(path)
	if err != nil {
		return err
	}
	snapGraphs, walOps := st.ReplayPlan()
	done, total := 0, snapGraphs+walOps
	report := func() {
		if progress != nil {
			progress(done, total)
		}
	}
	report()
	state, _, err := st.FoldStateObserved(func() { done++; report() })
	if err != nil {
		st.Close()
		return fmt.Errorf("engine: replaying %s: %w", path, err)
	}
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	sort.Strings(names)
	total = done + len(names)
	report()
	for _, name := range names {
		if err := e.cat.Register(name, state[name]); err != nil {
			st.Close()
			return fmt.Errorf("engine: replaying %s: %w", path, err)
		}
		done++
		report()
	}
	e.store = st
	if e.primaryURL == "" {
		e.cat.SetPersister(persister{st: st})
	}
	return nil
}

// ApplyPatch edits a registered data graph in place (copy-on-write
// underneath): the patched graph is immediately matchable and
// searchable, every closure and index derived from the old version is
// invalidated, and — when the engine has a store — the patch is logged
// and fsynced before it is acknowledged. See graph.Patch for the edit
// semantics.
func (e *Engine) ApplyPatch(name string, p *graph.Patch) (*graph.Graph, error) {
	return e.ApplyPatchCtx(context.Background(), name, p)
}

// ApplyPatchCtx is ApplyPatch with a request context for trace
// attribution: the catalog commit and WAL append are recorded as
// spans under the request's trace, and the logged op carries the
// request's traceparent so followers can re-parent their apply.
func (e *Engine) ApplyPatchCtx(ctx context.Context, name string, p *graph.Patch) (*graph.Graph, error) {
	if e.follower != nil {
		return nil, fmt.Errorf("%w: patch %q on %s", ErrReadOnly, name, e.primaryURL)
	}
	if e.coalescer != nil {
		// The batch path: waits until the batch containing this patch
		// commits, so the acknowledgement still means durable and
		// visible. maybeSnapshot runs inside the coalescer, per commit.
		return e.coalescer.enqueue(ctx, name, p, true)
	}
	g, err := e.cat.ApplyCtx(ctx, name, p)
	if err != nil {
		return nil, err
	}
	e.maybeSnapshot()
	return g, nil
}

// Snapshot compacts the store: it rotates the WAL while the registry
// is briefly locked (so state and sequence number agree exactly),
// writes every registered graph to a new snapshot file, and deletes
// the WAL segments the snapshot folded in — bounding the next boot's
// replay work. It fails with ErrNoStore when the engine has no store.
func (e *Engine) Snapshot() (store.Stats, error) {
	if e.store == nil {
		return store.Stats{}, ErrNoStore
	}
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	// On a follower, patch commits are decoupled from WAL appends (the
	// coalescer applies them after the replication loop has already
	// persisted the records), so the catalog may lag the WAL tail.
	// Drain it so the exported state matches the rotated sequence
	// number; snapMu is held, so no new replicated records can arrive
	// mid-drain. A primary never needs (or safely could do) this: its
	// WAL appends happen inside each catalog commit, so state and seq
	// always agree, and draining under a sustained storm would stall
	// snapshots behind an ever-refilling queue.
	if e.follower != nil && e.coalescer != nil {
		e.coalescer.drain()
	}
	var (
		seq    uint64
		sealed []string
		rerr   error
	)
	state := e.cat.Export(func() { seq, sealed, rerr = e.store.Rotate() })
	if rerr != nil {
		return store.Stats{}, rerr
	}
	if err := e.store.WriteSnapshot(state, seq, sealed); err != nil {
		return store.Stats{}, err
	}
	return e.store.Stats(), nil
}

// StoreStats snapshots the store counters; ok is false when the engine
// has no store.
func (e *Engine) StoreStats() (st store.Stats, ok bool) {
	if e.store == nil {
		return store.Stats{}, false
	}
	return e.store.Stats(), true
}

// maybeSnapshot triggers a background snapshot when the WAL has grown
// past Options.SnapshotEvery since the last one. It runs after a
// mutation is acknowledged, off the caller's path: snapshots are
// capacity management, not durability (the WAL already is), so they
// must not add latency to mutations. snapMu serialises concurrent
// triggers; snapPending collapses a burst into one pass.
func (e *Engine) maybeSnapshot() {
	if e.store == nil || e.snapshotEvery <= 0 {
		return
	}
	if e.store.SinceSnapshot() < e.snapshotEvery {
		return
	}
	if !e.snapPending.CompareAndSwap(false, true) {
		return
	}
	// Register with snapWg under the closed check: Close flips closed
	// (under sendMu) before it waits on snapWg, so either this Add is
	// observed by that Wait, or closed is observed here and no snapshot
	// spawns against a closing store — never an Add racing the Wait.
	e.sendMu.RLock()
	if e.closed {
		e.sendMu.RUnlock()
		e.snapPending.Store(false)
		return
	}
	e.snapWg.Add(1)
	e.sendMu.RUnlock()
	go func() {
		defer e.snapWg.Done()
		defer e.snapPending.Store(false)
		// Re-check under the trigger: the burst that tripped this may
		// already have been folded in by a racing explicit Snapshot.
		if e.store.SinceSnapshot() < e.snapshotEvery {
			return
		}
		if _, err := e.Snapshot(); err != nil {
			log.Printf("engine: background snapshot: %v", err)
		}
	}()
}
