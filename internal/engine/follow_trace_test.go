package engine

// TestFollowerReParentsReplicatedTraces pins trace propagation across
// the replication boundary: a traced mutation on the primary ships its
// traceparent inside the WAL record, and the follower's apply runs
// under the SAME trace id, re-parented under the primary's span — so
// one id fetched on either node tells the whole cross-node story.

import (
	"context"
	"testing"
	"time"

	"graphmatch/internal/trace"
)

func TestFollowerReParentsReplicatedTraces(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "")
	defer p.shutdown()

	sp := p.eng.Tracer().StartTrace(trace.DeriveTraceID("rid-repl-9"), "POST /v1/graphs", "rid-repl-9")
	ctx := trace.ContextWithSpan(context.Background(), sp)
	if err := p.eng.RegisterCtx(ctx, "traced", randomGraph(40, 3, 7)); err != nil {
		t.Fatal(err)
	}
	id := sp.TraceID().String()
	sp.End()

	f := openFollower(t, t.TempDir(), p.url(), nil)
	defer f.Close()
	waitSynced(t, f, p, 10*time.Second)

	// The apply's span tree seals just after LastApplied advances, so
	// give the recorder a short poll window.
	var td trace.TraceData
	deadline := time.Now().Add(3 * time.Second)
	for {
		var ok bool
		if td, ok = f.Tracer().Get(id); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never recorded trace %s", id)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if got := td.ID.String(); got != id {
		t.Errorf("follower trace id %s, want the primary's %s", got, id)
	}
	if !td.Remote {
		t.Error("replicated apply trace not marked remote")
	}
	if td.Parent == 0 {
		t.Error("follower trace lost the primary's parent span id")
	}
	if len(td.Spans) == 0 {
		t.Fatal("follower trace has no spans")
	}
	if td.Spans[0].Name != "repl.apply" {
		t.Errorf("follower root span %q, want repl.apply", td.Spans[0].Name)
	}
	sawAppend := false
	for _, s := range td.Spans {
		if s.Name == "store.append" {
			sawAppend = true
		}
	}
	if !sawAppend {
		t.Error("repl.apply trace lacks the follower's store.append child span")
	}
}
