package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/trace"
)

// patchCoalescer batches bursts of patches against the same graph into
// one catalog mutation. Every committed patch pays for closure delta
// maintenance, index maintenance, a WAL fsync and a search-index fold;
// under a mutation storm those per-commit costs dominate, and ten tiny
// patches composed into one (graph.MergePatches) cost one commit
// instead of ten. Submitters either wait for their batch to commit
// (the primary's PATCH path — the HTTP response still means "durable
// and visible") or fire-and-forget (the follower's replication apply,
// which must not stall the stream on every record).
//
// Per graph, at most one flusher goroutine is active: it collects the
// queued waiters, applies the merged patch, delivers results, and
// loops while more work arrived during the apply — a group-commit
// pattern. Batches are equivalent to sequential application by the
// MergePatches composition law; when a merge or a merged apply fails,
// the flusher falls back to applying the batch sequentially so
// per-patch error semantics are exactly those of the uncoalesced path.
type patchCoalescer struct {
	eng *Engine
	// window is how long a flusher waits for a burst to accumulate
	// before each batch; 0 means pure group commit (no added latency —
	// batching happens only while a previous apply is in flight).
	window time.Duration
	// max caps patches per batch; 0 means unbounded.
	max int

	mu     sync.Mutex
	cond   *sync.Cond // signalled whenever a queue goes idle
	queues map[string]*patchQueue
	closed bool
	// err is the sticky failure of an asynchronous (fire-and-forget)
	// apply: the follower surfaces it on its next replication apply as
	// a state mismatch, forcing a resync.
	err error

	batches   atomic.Uint64 // multi-patch batches committed as one mutation
	coalesced atomic.Uint64 // patches that rode in those batches
}

// patchQueue is the pending work for one graph name.
type patchQueue struct {
	waiters  []*patchWaiter
	flushing bool
}

// patchWaiter is one submitted patch; done is nil for fire-and-forget
// submissions. ctx carries the submitter's trace span (never
// cancellation — a queued patch must still commit).
type patchWaiter struct {
	ctx  context.Context
	p    *graph.Patch
	done chan patchResult
}

type patchResult struct {
	g   *graph.Graph
	err error
}

func newPatchCoalescer(e *Engine, window time.Duration, max int) *patchCoalescer {
	co := &patchCoalescer{eng: e, window: window, max: max, queues: make(map[string]*patchQueue)}
	co.cond = sync.NewCond(&co.mu)
	return co
}

// enqueue submits a patch. When wait is true it blocks until the
// patch's batch commits and returns the resulting graph; otherwise it
// returns immediately and a failure becomes the coalescer's sticky
// error.
func (co *patchCoalescer) enqueue(ctx context.Context, name string, p *graph.Patch, wait bool) (*graph.Graph, error) {
	w := &patchWaiter{ctx: ctx, p: p}
	if wait {
		w.done = make(chan patchResult, 1)
	}
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil, fmt.Errorf("engine: closed")
	}
	q := co.queues[name]
	if q == nil {
		q = &patchQueue{}
		co.queues[name] = q
	}
	q.waiters = append(q.waiters, w)
	if !q.flushing {
		q.flushing = true
		go co.flush(name, q)
	}
	co.mu.Unlock()
	if !wait {
		return nil, nil
	}
	res := <-w.done
	return res.g, res.err
}

// flush is the per-graph group-commit loop. It runs while the queue
// has work, then marks the queue idle and exits.
func (co *patchCoalescer) flush(name string, q *patchQueue) {
	for {
		if co.window > 0 {
			time.Sleep(co.window)
		}
		co.mu.Lock()
		batch := q.waiters
		if co.max > 0 && len(batch) > co.max {
			batch = batch[:co.max:co.max]
			q.waiters = append([]*patchWaiter(nil), q.waiters[co.max:]...)
		} else {
			q.waiters = nil
		}
		if len(batch) == 0 {
			q.flushing = false
			co.cond.Broadcast()
			co.mu.Unlock()
			return
		}
		co.mu.Unlock()
		co.apply(name, batch)
	}
}

// apply commits one batch: single patches go straight through, larger
// batches are composed with MergePatches against the currently
// committed graph. Any merge or merged-apply failure degrades to
// sequential application, whose per-patch outcomes are definitionally
// those of the uncoalesced path.
func (co *patchCoalescer) apply(name string, batch []*patchWaiter) {
	if len(batch) == 1 {
		g, err := co.eng.cat.ApplyCtx(waiterCtx(batch[0]), name, batch[0].p)
		co.deliver(batch, g, err)
		if err == nil {
			co.eng.maybeSnapshot()
		}
		return
	}
	// A merged batch is one catalog commit serving many requests; the
	// commit is attributed to the first waiter that carries a live
	// trace (a documented approximation — the others record only their
	// own wait), with the batch size as an attribute.
	bctx := batchCtx(batch)
	trace.SpanFromContext(bctx).SetInt("patch_batch", int64(len(batch)))
	patches := make([]*graph.Patch, len(batch))
	for i, w := range batch {
		patches[i] = w.p
	}
	base, err := co.eng.cat.Get(name)
	if err != nil {
		co.deliver(batch, nil, err)
		return
	}
	merged, err := graph.MergePatches(base, patches...)
	if err == nil && merged.Empty() {
		// The batch cancels out (e.g. add then delete): nothing to
		// commit, everyone observes the unchanged graph.
		co.batches.Add(1)
		co.coalesced.Add(uint64(len(batch)))
		co.deliver(batch, base, nil)
		return
	}
	if err == nil {
		var g *graph.Graph
		if g, err = co.eng.cat.ApplyCtx(bctx, name, merged); err == nil {
			co.batches.Add(1)
			co.coalesced.Add(uint64(len(batch)))
			co.deliver(batch, g, nil)
			co.eng.maybeSnapshot()
			return
		}
	}
	// Composition or the merged commit failed — some patch in the batch
	// is individually bad, or the graph changed under the merge base.
	// Replay sequentially so each submitter gets its own verdict.
	for _, w := range batch {
		g, err := co.eng.cat.ApplyCtx(waiterCtx(w), name, w.p)
		co.deliver([]*patchWaiter{w}, g, err)
		if err == nil {
			co.eng.maybeSnapshot()
		}
	}
}

// waiterCtx returns the waiter's context, or Background for
// fire-and-forget submissions enqueued without one.
func waiterCtx(w *patchWaiter) context.Context {
	if w.ctx != nil {
		return w.ctx
	}
	return context.Background()
}

// batchCtx picks the first waiter context carrying an active span.
func batchCtx(batch []*patchWaiter) context.Context {
	for _, w := range batch {
		if w.ctx != nil && trace.SpanFromContext(w.ctx).Active() {
			return w.ctx
		}
	}
	return context.Background()
}

// deliver hands a batch outcome to its waiters; fire-and-forget
// failures become the sticky error.
func (co *patchCoalescer) deliver(ws []*patchWaiter, g *graph.Graph, err error) {
	var sticky bool
	for _, w := range ws {
		if w.done != nil {
			w.done <- patchResult{g: g, err: err}
		} else if err != nil {
			sticky = true
		}
	}
	if sticky {
		co.mu.Lock()
		if co.err == nil {
			co.err = err
		}
		co.mu.Unlock()
	}
}

// stickyErr reports (without clearing) the first asynchronous apply
// failure; discard clears it.
func (co *patchCoalescer) stickyErr() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.err
}

// drain blocks until every queue is empty and no flusher is mid-apply:
// the catalog then reflects every patch submitted before the call.
func (co *patchCoalescer) drain() {
	co.mu.Lock()
	co.waitIdleLocked()
	co.mu.Unlock()
}

func (co *patchCoalescer) waitIdleLocked() {
	for {
		busy := false
		for _, q := range co.queues {
			if q.flushing || len(q.waiters) > 0 {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		co.cond.Wait()
	}
}

// discard drops every pending patch (failing its waiters), waits out
// in-flight applies, and clears the sticky error. The follower calls
// it before a resync replaces the whole catalog — pending patches
// target state that is about to vanish.
func (co *patchCoalescer) discard() {
	co.mu.Lock()
	for _, q := range co.queues {
		for _, w := range q.waiters {
			if w.done != nil {
				w.done <- patchResult{err: fmt.Errorf("engine: patch discarded by replica resync")}
			}
		}
		q.waiters = nil
	}
	co.waitIdleLocked()
	co.err = nil
	co.mu.Unlock()
}

// close rejects further submissions and drains what is queued.
func (co *patchCoalescer) close() {
	co.mu.Lock()
	co.closed = true
	co.waitIdleLocked()
	co.mu.Unlock()
}
