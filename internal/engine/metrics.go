package engine

import (
	"graphmatch/internal/catalog"
	"graphmatch/internal/metrics"
	"graphmatch/internal/store"
)

// Metric registration for the engine and the subsystems it owns. The
// engine is the composition root of the serving stack — catalog,
// search index, and store all hang off it — so it also owns the one
// metrics.Registry the whole process exposes on /metrics. The
// transport layer (httpapi) registers its own families into the same
// registry via Engine.Metrics().
//
// Naming policy: every family is phomd_<subsystem>_<what>[_unit],
// matching ^phomd_[a-z0-9_]+$ (enforced by a lint test in httpapi).
// Counters that already exist as engine/catalog/store atomics are
// exposed as scrape-time CounterFunc/GaugeFunc collectors instead of
// being double-counted.

// searchCandidateBuckets histograms "how many candidates survived
// stage 1" — a count distribution, not a latency one.
var searchCandidateBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 250, 500, 1000}

// ratioBuckets histograms values in [0, 1] (prune rates).
var ratioBuckets = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

// coneBuckets histograms delta-cone sizes (closure components rewritten
// per incremental patch) — a count distribution spanning "touched one
// component" to "touched most of a large graph".
var coneBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 1000, 10000}

// Metrics returns the engine's registry, or nil when the engine was
// built with Options.NoMetrics (instrumentation fully disabled — the
// configuration the overhead benchmark compares against).
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// initMetrics registers the engine-pool, catalog, and search families.
// Called once from Open, before workers start; a nil registry leaves
// every instrument pointer nil, which the nil-safe metric methods turn
// into no-ops on the hot path.
func (e *Engine) initMetrics() {
	r := e.reg
	if r == nil {
		return
	}

	// Worker pool.
	e.mTaskWait = r.Histogram("phomd_engine_task_wait_seconds",
		"Time tasks spent queued before a worker picked them up.", nil)
	e.mTaskRun = r.Histogram("phomd_engine_task_run_seconds",
		"Worker execution time per task (matrix build, closure lookup, matching).", nil)
	r.GaugeFunc("phomd_engine_queue_depth",
		"Tasks currently buffered in the worker queue.",
		func() float64 { return float64(len(e.queue)) })
	r.GaugeFunc("phomd_engine_pending",
		"Admitted tasks not yet finished executing (queued + running).",
		func() float64 { return float64(e.pending.Load()) })
	r.GaugeFunc("phomd_engine_workers",
		"Worker pool size.",
		func() float64 { return float64(e.workers) })
	r.GaugeFunc("phomd_engine_max_pending",
		"Admission-control bound on pending tasks (0 = unlimited).",
		func() float64 { return float64(e.maxPending) })
	r.CounterFunc("phomd_engine_requests_total",
		"Match submissions, including coalesced ones.",
		func() float64 { return float64(e.requests.Load()) })
	r.CounterFunc("phomd_engine_executed_total",
		"Computations actually run by workers.",
		func() float64 { return float64(e.executed.Load()) })
	r.CounterFunc("phomd_engine_coalesced_total",
		"Requests that attached to an identical in-flight computation.",
		func() float64 { return float64(e.coalesced.Load()) })
	r.CounterFunc("phomd_engine_errors_total",
		"Requests that finished with a non-nil error.",
		func() float64 { return float64(e.errors.Load()) })
	r.CounterFunc("phomd_engine_shed_total",
		"Requests rejected by admission control (HTTP 429).",
		func() float64 { return float64(e.shed.Load()) })
	r.CounterFunc("phomd_engine_batches_total",
		"MatchBatch calls.",
		func() float64 { return float64(e.batches.Load()) })

	// Catalog closure cache. Scrape-time snapshots of catalog.Stats.
	r.GaugeFunc("phomd_catalog_graphs",
		"Registered data graphs.",
		func() float64 { return float64(e.cat.Stats().Graphs) })
	r.CounterFunc("phomd_catalog_closure_hits_total",
		"Reachability lookups served from the closure cache.",
		func() float64 { return float64(e.cat.Stats().Hits) })
	r.CounterFunc("phomd_catalog_closure_misses_total",
		"Reachability lookups that had to build a closure.",
		func() float64 { return float64(e.cat.Stats().Misses) })
	r.CounterFunc("phomd_catalog_closure_evictions_total",
		"Closures dropped by the LRU bounds.",
		func() float64 { return float64(e.cat.Stats().Evictions) })
	r.GaugeFunc("phomd_catalog_resident_closures",
		"Reachability indexes currently cached.",
		func() float64 { return float64(e.cat.Stats().ResidentClosures) })
	r.GaugeFunc("phomd_catalog_resident_bytes",
		"Approximate heap held by resident closures and indexes.",
		func() float64 { return float64(e.cat.Stats().ResidentBytes) })
	r.GaugeFunc("phomd_catalog_resident_dense",
		"Resident matcher indexes on the dense tier.",
		func() float64 { return float64(e.cat.Stats().ResidentDense) })
	r.GaugeFunc("phomd_catalog_resident_sparse",
		"Resident matcher indexes on the candidate-sparse tier.",
		func() float64 { return float64(e.cat.Stats().ResidentSparse) })
	r.GaugeFunc("phomd_catalog_dense_index_bytes",
		"Approximate heap held by dense-tier matcher indexes.",
		func() float64 { return float64(e.cat.Stats().DenseIndexBytes) })
	r.GaugeFunc("phomd_catalog_sparse_index_bytes",
		"Approximate heap held by sparse-tier matcher indexes.",
		func() float64 { return float64(e.cat.Stats().SparseIndexBytes) })
	r.CounterFunc("phomd_catalog_closure_build_seconds_total",
		"Cumulative wall time spent building closures and closure rows.",
		func() float64 { return e.cat.Stats().BuildTime.Seconds() })

	// Live mutation (patch) maintenance.
	r.CounterFunc("phomd_catalog_patch_incremental_total",
		"Patches whose cached closures were updated in place by delta maintenance.",
		func() float64 { return float64(e.cat.Stats().PatchesIncremental) })
	r.CounterFunc("phomd_catalog_patch_rebuild_total",
		"Patches that fell back to dropping and rebuilding closures.",
		func() float64 { return float64(e.cat.Stats().PatchesRebuild) })
	patchHist := r.Histogram("phomd_catalog_patch_seconds",
		"Patch commit wall time (clone, delta or rebuild, swap).", nil)
	coneHist := r.Histogram("phomd_catalog_patch_cone_comps",
		"Closure components rewritten per incremental patch (the delta cone).",
		coneBuckets)
	e.cat.SetPatchObserver(catalog.PatchObserver{
		Latency:  patchHist.Observe,
		ConeSize: coneHist.Observe,
	})
	if e.coalescer != nil {
		r.CounterFunc("phomd_catalog_patch_batches_total",
			"Multi-patch batches the coalescer committed as one mutation.",
			func() float64 { return float64(e.coalescer.batches.Load()) })
		r.CounterFunc("phomd_catalog_patch_coalesced_total",
			"Patches that rode in a multi-patch batch.",
			func() float64 { return float64(e.coalescer.coalesced.Load()) })
	}

	// Search.
	r.CounterFunc("phomd_search_requests_total",
		"Catalog-wide search calls.",
		func() float64 { return float64(e.searches.Load()) })
	e.mSearchCandidates = r.Histogram("phomd_search_candidates",
		"Stage-1 candidates handed to the matcher per search.", searchCandidateBuckets)
	e.mSearchPruneRatio = r.Histogram("phomd_search_prune_ratio",
		"Fraction of the catalog stage 1 pruned per search.", ratioBuckets)
	e.mSearchStage1 = r.Histogram("phomd_search_stage1_seconds",
		"Stage-1 (candidate selection) wall time per search.", nil)
	e.mSearchStage2 = r.Histogram("phomd_search_stage2_seconds",
		"Stage-2 (ranked matching fan-out) wall time per search.", nil)
}

// initStoreMetrics registers the WAL/snapshot families and installs
// the store observer. Called from openStore, after replay (replay does
// not append, so nothing is missed) and before traffic.
func (e *Engine) initStoreMetrics() {
	r := e.reg
	if r == nil || e.store == nil {
		return
	}
	appendHist := r.Histogram("phomd_store_append_seconds",
		"WAL append critical section (encode + write + fsync) per mutation.", nil)
	fsyncHist := r.Histogram("phomd_store_fsync_seconds",
		"fsync portion of each WAL append.", nil)
	snapHist := r.Histogram("phomd_store_snapshot_seconds",
		"Snapshot write wall time.", nil)
	e.store.Instrument(store.Observer{
		Append:   appendHist.Observe,
		Fsync:    fsyncHist.Observe,
		Snapshot: snapHist.Observe,
	})
	r.CounterFunc("phomd_store_appended_total",
		"Ops logged since the store was opened.",
		func() float64 { return float64(e.store.Stats().Appended) })
	r.CounterFunc("phomd_store_snapshots_total",
		"Snapshots written since the store was opened.",
		func() float64 { return float64(e.store.Stats().Snapshots) })
	r.GaugeFunc("phomd_store_segments",
		"Live WAL segment files.",
		func() float64 { return float64(e.store.Stats().Segments) })
	r.GaugeFunc("phomd_store_wal_bytes",
		"Total size of the live WAL segments.",
		func() float64 { return float64(e.store.Stats().WALBytes) })
	r.GaugeFunc("phomd_store_since_snapshot",
		"Ops logged since the last snapshot.",
		func() float64 { return float64(e.store.Stats().SinceSnapshot) })
}

// initReplMetrics registers the follower's replication families.
// Called from startFollower, before the loop starts; a primary exports
// nothing here (its side of replication is ordinary store traffic,
// already covered by the phomd_store_* families).
func (e *Engine) initReplMetrics() {
	r := e.reg
	if r == nil || e.follower == nil {
		return
	}
	f := e.follower
	b01 := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	r.GaugeFunc("phomd_repl_lag_seq",
		"Ops the primary has committed that this follower has not yet applied.",
		func() float64 { return float64(f.Stats().LagSeq) })
	r.GaugeFunc("phomd_repl_seconds_behind",
		"Seconds since this follower was last provably at the primary's head (0 when caught up).",
		func() float64 { return f.Stats().SecondsBehind })
	r.GaugeFunc("phomd_repl_last_applied_seq",
		"Newest primary sequence number durably applied locally.",
		func() float64 { return float64(f.Stats().LastApplied) })
	r.GaugeFunc("phomd_repl_primary_seq",
		"Primary head sequence number as of the last checkpoint frame.",
		func() float64 { return float64(f.Stats().PrimarySeq) })
	r.GaugeFunc("phomd_repl_connected",
		"1 while a replication stream is open to the primary.",
		func() float64 { return b01(f.Stats().Connected) })
	r.GaugeFunc("phomd_repl_synced_once",
		"1 once the follower has caught up to the primary's head at least once (the readiness precondition).",
		func() float64 { return b01(f.Stats().SyncedOnce) })
	r.GaugeFunc("phomd_repl_diverged",
		"1 between detecting an unrecoverable position and the resync that repairs it.",
		func() float64 { return b01(f.Stats().Diverged) })
	r.CounterFunc("phomd_repl_reconnects_total",
		"Replication stream reconnect attempts.",
		func() float64 { return float64(f.Stats().Reconnects) })
	r.CounterFunc("phomd_repl_resyncs_total",
		"Full bootstrap resyncs (divergence repair or behind the snapshot horizon).",
		func() float64 { return float64(f.Stats().Resyncs) })
	r.CounterFunc("phomd_repl_applied_total",
		"Replicated ops applied since this process started.",
		func() float64 { return float64(f.Stats().Applied) })
}
