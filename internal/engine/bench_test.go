package engine

import (
	"context"
	"fmt"
	"testing"

	"graphmatch/internal/core"
	"graphmatch/internal/simmatrix"
)

// benchEngine registers one data graph and returns request variants
// cycling over algorithms and patterns — the serving steady state where
// the closure is always a cache hit.
func benchEngine(b *testing.B, workers, dataNodes int) (*Engine, []Request) {
	b.Helper()
	e := New(Options{Workers: workers})
	data := randomGraph(dataNodes, 4, 1)
	if err := e.Register("data", data); err != nil {
		b.Fatal(err)
	}
	var reqs []Request
	for _, algo := range []Algorithm{MaxCard, MaxCard11, MaxSim, MaxSim11} {
		for p := 0; p < 4; p++ {
			reqs = append(reqs, Request{
				Pattern:   patternFrom(data, 8, int64(p)),
				GraphName: "data",
				Algo:      algo,
				Xi:        0.9,
			})
		}
	}
	return e, reqs
}

// BenchmarkMatchSequential measures single-request latency through the
// scheduler (queue + worker hop + shared closure lookup + matching).
func BenchmarkMatchSequential(b *testing.B) {
	for _, n := range []int{100, 400} {
		b.Run(fmt.Sprintf("data=%d", n), func(b *testing.B) {
			e, reqs := benchEngine(b, 1, n)
			defer e.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := e.Match(ctx, reqs[i%len(reqs)]); res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			b.ReportMetric(e.Catalog().Stats().HitRate()*100, "closure-hit%")
		})
	}
}

// BenchmarkMatchParallel measures throughput with many client
// goroutines over the full worker pool — the serving regime.
func BenchmarkMatchParallel(b *testing.B) {
	e, reqs := benchEngine(b, 0, 400)
	defer e.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := 0
		for pb.Next() {
			if res := e.Match(ctx, reqs[i%len(reqs)]); res.Err != nil {
				b.Fatal(res.Err)
			}
			i++
		}
	})
	b.ReportMetric(e.Catalog().Stats().HitRate()*100, "closure-hit%")
}

// BenchmarkMatchBatch measures batch dispatch of distinct requests.
func BenchmarkMatchBatch(b *testing.B) {
	e, reqs := benchEngine(b, 0, 400)
	defer e.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range e.MatchBatch(ctx, reqs) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
	b.ReportMetric(float64(len(reqs)), "reqs/batch")
}

// BenchmarkSharedVsPrivateClosure quantifies the tentpole win: the same
// request stream with the catalog's shared index versus a fresh
// core.Instance closure per request (the seed's behaviour).
func BenchmarkSharedVsPrivateClosure(b *testing.B) {
	e, reqs := benchEngine(b, 1, 400)
	defer e.Close()
	data, err := e.Catalog().Get("data")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := e.Match(ctx, reqs[i%len(reqs)]); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})
	b.Run("private", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			req := reqs[i%len(reqs)]
			// A fresh instance per request recomputes the closure —
			// the seed's per-Matcher behaviour.
			in := core.NewInstance(req.Pattern, data, simmatrix.NewLabelEquality(req.Pattern, data), req.Xi)
			switch req.Algo {
			case MaxCard:
				in.CompMaxCard()
			case MaxCard11:
				in.CompMaxCard11()
			case MaxSim:
				in.CompMaxSim()
			case MaxSim11:
				in.CompMaxSim11()
			}
		}
	})
}
