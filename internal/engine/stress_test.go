package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentStress is the -race acceptance test: many goroutines
// issue mixed Match/MatchBatch calls for a pool of distinct requests
// against a shared catalog, and every result must equal the
// single-threaded answer computed up front. It exercises the worker
// pool, the coalescing map, and the shared closure cache concurrently.
func TestConcurrentStress(t *testing.T) {
	e := New(Options{Workers: 8, MaxClosures: 4})
	defer e.Close()

	graphs := map[string]int64{"alpha": 21, "beta": 22, "gamma": 23}
	for name, seed := range graphs {
		if err := e.Register(name, randomGraph(50, 3, seed)); err != nil {
			t.Fatal(err)
		}
	}

	// A fixed request pool mixing graphs, algorithms, thresholds and
	// path limits. Exact algorithms stay out: their runtime varies too
	// much for a stress loop; TestEngineMatchesDirectMatcher covers them.
	var pool []Request
	var want []Result
	algos := []Algorithm{MaxCard, MaxCard11, MaxSim, MaxSim11}
	i := 0
	for name := range graphs {
		data, err := e.Catalog().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range algos {
			for _, limit := range []int{0, 3} {
				req := Request{
					Pattern:   patternFrom(data, 6, int64(100+i)),
					GraphName: name,
					Algo:      algo,
					Xi:        0.9,
					PathLimit: limit,
				}
				pool = append(pool, req)
				want = append(want, directResult(t, data, req))
				i++
			}
		}
	}

	const (
		workers    = 16
		iterations = 25
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers*iterations)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			ctx := context.Background()
			for it := 0; it < iterations; it++ {
				check := func(idx int, got Result) {
					if got.Err != nil {
						errs <- got.Err.Error()
						return
					}
					if !mappingEqual(got.Mapping, want[idx].Mapping) {
						errs <- "mapping diverged from single-threaded run"
					}
					if got.QualCard != want[idx].QualCard || got.QualSim != want[idx].QualSim {
						errs <- "quality diverged from single-threaded run"
					}
				}
				if it%3 == 0 {
					// A batch of 4 random picks (duplicates possible,
					// exercising intra-batch coalescing).
					idxs := make([]int, 4)
					reqs := make([]Request, 4)
					for j := range reqs {
						idxs[j] = rng.Intn(len(pool))
						reqs[j] = pool[idxs[j]]
					}
					for j, res := range e.MatchBatch(ctx, reqs) {
						check(idxs[j], res)
					}
				} else {
					idx := rng.Intn(len(pool))
					check(idx, e.Match(ctx, pool[idx]))
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	failures := 0
	for msg := range errs {
		if failures < 10 {
			t.Error(msg)
		}
		failures++
	}
	if failures > 0 {
		t.Fatalf("%d concurrent results diverged or failed", failures)
	}

	s := e.Stats()
	if s.Requests == 0 || s.Executed == 0 {
		t.Fatalf("stress ran nothing: %+v", s)
	}
	cs := e.Catalog().Stats()
	if cs.Hits == 0 {
		t.Fatalf("no shared-closure hits under stress: %+v", cs)
	}
	t.Logf("engine: %+v", s)
	t.Logf("catalog: %+v (hit rate %.1f%%)", cs, cs.HitRate()*100)
}
