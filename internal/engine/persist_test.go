package engine

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"graphmatch/internal/graph"
	"graphmatch/internal/webgen"
)

// fullResult strips the non-deterministic fields (timings, coalescing)
// from a match result so two engines can be compared bit for bit.
type fullResult struct {
	Mapping  map[graph.NodeID]graph.NodeID
	Holds    bool
	QualCard float64
	QualSim  float64
	Err      string
}

func normalise(res Result) fullResult {
	out := fullResult{Holds: res.Holds, QualCard: res.QualCard, QualSim: res.QualSim}
	if res.Mapping != nil {
		out.Mapping = map[graph.NodeID]graph.NodeID(res.Mapping)
	}
	if res.Err != nil {
		out.Err = res.Err.Error()
	}
	return out
}

// probeEngines runs identical match and search traffic against both
// engines and fails the test on any divergence — mappings, qualities,
// hit order, prefilter scores, everything deterministic must agree.
func probeEngines(t *testing.T, label string, a, b *Engine, patterns []*graph.Graph) {
	t.Helper()
	ctx := context.Background()
	if got, want := a.Catalog().Names(), b.Catalog().Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: catalogs diverge: %v vs %v", label, got, want)
	}
	names := a.Catalog().Names()
	for pi, pattern := range patterns {
		for _, algo := range []Algorithm{MaxCard, MaxSim} {
			for _, sim := range []SimKind{SimLabel, SimContent} {
				for _, name := range names {
					req := Request{Pattern: pattern, GraphName: name, Algo: algo, Xi: 0.7, Sim: sim}
					ra := normalise(a.Match(ctx, req))
					rb := normalise(b.Match(ctx, req))
					if !reflect.DeepEqual(ra, rb) {
						t.Fatalf("%s: pattern %d %s/%s vs %q diverge:\n%+v\n%+v",
							label, pi, algo, sim, name, ra, rb)
					}
				}
				sreq := SearchRequest{Pattern: pattern, Algo: algo, Xi: 0.7, Sim: sim, K: 5}
				sa, sb := a.Search(ctx, sreq), b.Search(ctx, sreq)
				if sa.Err != nil || sb.Err != nil {
					t.Fatalf("%s: search err %v / %v", label, sa.Err, sb.Err)
				}
				if !reflect.DeepEqual(sa.Hits, sb.Hits) {
					t.Fatalf("%s: pattern %d %s/%s search hits diverge:\n%+v\n%+v",
						label, pi, algo, sim, sa.Hits, sb.Hits)
				}
			}
		}
	}
}

// randomPatch derives a valid random patch for g: new pages, content
// edits, link additions and deletions.
func randomPatch(rng *rand.Rand, g *graph.Graph) *graph.Patch {
	n := g.NumNodes()
	p := &graph.Patch{}
	adds := 1 + rng.Intn(2)
	for i := 0; i < adds; i++ {
		p.AddNodes = append(p.AddNodes, graph.Node{
			Label:   "patched",
			Weight:  1,
			Content: fmt.Sprintf("patched page %d added by mutation", rng.Intn(1000)),
		})
	}
	total := n + adds
	for i := 0; i < 2; i++ {
		p.SetContent = append(p.SetContent, graph.ContentUpdate{
			Node:    graph.NodeID(rng.Intn(n)),
			Content: fmt.Sprintf("rewritten content %d", rng.Intn(1000)),
		})
	}
	// Delete one existing edge, if the graph has any.
	if g.NumEdges() > 0 {
		for tries := 0; tries < 50; tries++ {
			v := graph.NodeID(rng.Intn(n))
			if post := g.Post(v); len(post) > 0 {
				p.DelEdges = append(p.DelEdges, [2]graph.NodeID{v, post[rng.Intn(len(post))]})
				break
			}
		}
	}
	for i := 0; i < 3; i++ {
		p.AddEdges = append(p.AddEdges, [2]graph.NodeID{
			graph.NodeID(rng.Intn(total)), graph.NodeID(rng.Intn(total)),
		})
	}
	return p
}

// TestReplayEquivalenceQuickCheck is the crash-recovery property: over
// random webgen catalogs and random mutation sequences (register,
// patch, remove), an engine abandoned without Close (kill -9: the WAL
// fsyncs every acknowledged op, nothing else is needed) and reopened
// from its store must serve bit-identical match and search results to
// a reference engine that applied the same ops and never restarted.
func TestReplayEquivalenceQuickCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("matcher-heavy quickcheck")
	}
	cats := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(173 * (trial + 1))))
			dir := t.TempDir()
			// A mid-sequence snapshot in some trials exercises the
			// snapshot+WAL replay path, not just pure WAL.
			durable, err := Open(Options{Workers: 2, StorePath: dir})
			if err != nil {
				t.Fatal(err)
			}
			reference := New(Options{Workers: 2})
			defer reference.Close()

			var patterns []*graph.Graph
			names := []string{}
			apply := func(op func(e *Engine) error) {
				if err := op(durable); err != nil {
					t.Fatal(err)
				}
				if err := op(reference); err != nil {
					t.Fatal(err)
				}
			}
			// Seed catalog.
			sites := 2 + rng.Intn(2)
			for s := 0; s < sites; s++ {
				arch := webgen.Generate(webgen.Config{
					Category: cats[rng.Intn(len(cats))],
					Pages:    50 + rng.Intn(40),
					Versions: 2,
					Seed:     int64(trial*50 + s),
				})
				for v, g := range arch.Versions {
					name := fmt.Sprintf("site%d/v%d", s, v)
					names = append(names, name)
					// Register clones per engine would share the graph object;
					// both catalogs take ownership, so give each its own copy.
					g2 := g.Clone()
					apply(func(e *Engine) error {
						if e == reference {
							return e.Register(name, g2)
						}
						return e.Register(name, g)
					})
				}
				patterns = append(patterns, webgen.TopKSkeleton(arch.Versions[0], 8))
			}
			// Random mutation sequence.
			for i := 0; i < 12; i++ {
				switch r := rng.Float64(); {
				case r < 0.55: // patch a random survivor
					name := names[rng.Intn(len(names))]
					g, err := durable.Catalog().Get(name)
					if err != nil {
						continue
					}
					p := randomPatch(rng, g)
					apply(func(e *Engine) error { _, err := e.ApplyPatch(name, p); return err })
				case r < 0.7 && len(names) > 2: // remove one
					j := rng.Intn(len(names))
					name := names[j]
					names = append(names[:j], names[j+1:]...)
					apply(func(e *Engine) error { return e.Remove(name) })
				default: // register a fresh small graph
					name := fmt.Sprintf("extra%d", i)
					g := webgen.Generate(webgen.Config{
						Category: cats[rng.Intn(len(cats))],
						Pages:    30,
						Versions: 1,
						Seed:     int64(1000*trial + i),
					}).Versions[0]
					g2 := g.Clone()
					names = append(names, name)
					apply(func(e *Engine) error {
						if e == reference {
							return e.Register(name, g2)
						}
						return e.Register(name, g)
					})
				}
				if trial%2 == 0 && i == 5 {
					if _, err := durable.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Crash: no engine Close — store.Abandon drops the fds and the
			// directory flock exactly as process death would; every
			// acknowledged op is already fsynced. (The leaked workers idle
			// until the test binary exits.)
			durable.store.Abandon()
			reopened, err := Open(Options{Workers: 2, StorePath: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			probeEngines(t, fmt.Sprintf("trial %d", trial), reopened, reference, patterns)
		})
	}
}

// TestPersistMutationBurstCrash hammers a durable engine with
// concurrent patch bursts against distinct graphs, "kills" it without
// Close, and checks the replayed engine agrees with a reference that
// applied the same acknowledged patches.
func TestPersistMutationBurstCrash(t *testing.T) {
	dir := t.TempDir()
	durable, err := Open(Options{Workers: 4, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	reference := New(Options{Workers: 4})
	defer reference.Close()

	const graphs = 4
	for s := 0; s < graphs; s++ {
		g := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 40, Versions: 1, Seed: int64(s)}).Versions[0]
		if err := durable.Register(fmt.Sprintf("g%d", s), g.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := reference.Register(fmt.Sprintf("g%d", s), g); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent bursts, one goroutine per graph so per-graph patch
	// order is deterministic and the reference can mirror it.
	var wg sync.WaitGroup
	patches := make([][]*graph.Patch, graphs)
	for s := 0; s < graphs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7 + s)))
			name := fmt.Sprintf("g%d", s)
			for i := 0; i < 8; i++ {
				g, err := durable.Catalog().Get(name)
				if err != nil {
					t.Error(err)
					return
				}
				p := randomPatch(rng, g)
				if _, err := durable.ApplyPatch(name, p); err != nil {
					t.Error(err)
					return
				}
				patches[s] = append(patches[s], p)
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for s, ps := range patches {
		name := fmt.Sprintf("g%d", s)
		for _, p := range ps {
			if _, err := reference.ApplyPatch(name, p); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Crash without Close (Abandon = what kill -9 leaves), reopen, compare.
	durable.store.Abandon()
	reopened, err := Open(Options{Workers: 4, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	pattern := webgen.TopKSkeleton(func() *graph.Graph {
		g, err := reference.Catalog().Get("g0")
		if err != nil {
			t.Fatal(err)
		}
		return g
	}(), 8)
	probeEngines(t, "burst", reopened, reference, []*graph.Graph{pattern})
}

// TestPersistSnapshotEvery checks the automatic background compaction
// trigger: after enough mutations the WAL is folded into a snapshot.
func TestPersistSnapshotEvery(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Workers: 2, StorePath: dir, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		g := graph.FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
		if err := e.Register(fmt.Sprintf("g%02d", i), g); err != nil {
			t.Fatal(err)
		}
	}
	e.Close() // waits out any background snapshot mid-write
	st, ok := e.StoreStats()
	if !ok {
		t.Fatal("no store stats")
	}
	if st.Snapshots == 0 {
		t.Fatalf("no background snapshot after 12 mutations with SnapshotEvery=5: %+v", st)
	}

	reopened, err := Open(Options{Workers: 2, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.Catalog().Len(); got != 12 {
		t.Fatalf("reopened catalog has %d graphs, want 12", got)
	}
}

// TestPersistApplyPatchSearchCoherence checks the mutation →
// invalidation contract end to end: after a patch rewrites content,
// search sees the new shingles immediately, without re-registering.
func TestPersistApplyPatchSearchCoherence(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	mk := func(content string) *graph.Graph {
		g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
		for v := 0; v < 3; v++ {
			g.SetContent(graph.NodeID(v), content)
		}
		return g
	}
	if err := e.Register("target", mk("completely unrelated filler text about nothing")); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("decoy", mk("some other filler that stays put")); err != nil {
		t.Fatal(err)
	}
	pattern := mk("the quick brown fox jumps over the lazy dog")

	res := e.Search(context.Background(), SearchRequest{Pattern: pattern, Algo: MaxSim, Xi: 0.7, Sim: SimContent, K: 1, MinResemblance: 0.5})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("expected no hits before the patch, got %v", res.Hits)
	}

	// Rewrite target's contents to the pattern's text via a live patch.
	p := &graph.Patch{}
	for v := 0; v < 3; v++ {
		p.SetContent = append(p.SetContent, graph.ContentUpdate{Node: graph.NodeID(v), Content: "the quick brown fox jumps over the lazy dog"})
	}
	if _, err := e.ApplyPatch("target", p); err != nil {
		t.Fatal(err)
	}
	res = e.Search(context.Background(), SearchRequest{Pattern: pattern, Algo: MaxSim, Xi: 0.7, Sim: SimContent, K: 1, MinResemblance: 0.5})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Hits) != 1 || res.Hits[0].Graph != "target" {
		t.Fatalf("patched graph not found by search: %+v", res.Hits)
	}
}
