package engine

import (
	"context"
	"fmt"
)

// Request-ID plumbing. The transport (internal/httpapi) assigns every
// request an X-Request-ID — generated when the client sent none — and
// threads it here via context, so engine-level failures carry the same
// identifier the access log and the client response do. The helpers
// live in this package (not httpapi) because httpapi already imports
// engine and the dependency must stay one-directional.

type requestIDKey struct{}

// WithRequestID returns a context carrying the request identifier.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request identifier, or "" when none was set.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// decorate prefixes an error with the context's request ID so engine
// failures are greppable against the access log. Wrapping preserves
// errors.Is/As chains (statusFor in httpapi depends on that).
func decorate(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if id := RequestID(ctx); id != "" {
		return fmt.Errorf("[req %s] %w", id, err)
	}
	return err
}
