package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"graphmatch/internal/catalog"
	"graphmatch/internal/core"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// randomGraph builds a deterministic random digraph whose labels repeat
// every 16 nodes, so label equality admits many candidates.
func randomGraph(n, avgDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("L%d", i%16))
	}
	for i := 0; i < n*avgDeg; i++ {
		g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

// patternFrom carves a connected-ish pattern out of a data graph so
// matches actually exist.
func patternFrom(g *graph.Graph, size int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	keep := make([]graph.NodeID, 0, size)
	seen := make(map[graph.NodeID]bool)
	for len(keep) < size {
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if !seen[v] {
			seen[v] = true
			keep = append(keep, v)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}

func mappingEqual(a, b core.Mapping) bool {
	if len(a) != len(b) {
		return false
	}
	for v, u := range a {
		if b[v] != u {
			return false
		}
	}
	return true
}

// directResult recomputes a request with a private core.Instance — the
// pre-engine code path the scheduler must agree with.
func directResult(t *testing.T, g2 *graph.Graph, req Request) Result {
	t.Helper()
	var mat simmatrix.Matrix
	if req.Sim == SimContent {
		mat = simmatrix.FromContent(req.Pattern, g2, 0)
	} else {
		mat = simmatrix.NewLabelEquality(req.Pattern, g2)
	}
	in := core.NewInstance(req.Pattern, g2, mat, req.Xi)
	in.MaxPathLen = req.PathLimit
	var res Result
	switch req.Algo {
	case MaxCard:
		res.Mapping = in.CompMaxCard()
	case MaxCard11:
		res.Mapping = in.CompMaxCard11()
	case MaxSim:
		res.Mapping = in.CompMaxSim()
	case MaxSim11:
		res.Mapping = in.CompMaxSim11()
	case Decide:
		res.Mapping, res.Holds = in.Decide()
	case Decide11:
		res.Mapping, res.Holds = in.Decide11()
	default:
		t.Fatalf("directResult cannot run %q", req.Algo)
	}
	res.QualCard = in.QualCard(res.Mapping)
	res.QualSim = in.QualSim(res.Mapping)
	return res
}

// TestEngineMatchesDirectMatcher is the core acceptance check: for every
// algorithm, the engine (shared closure, worker pool) returns exactly
// the result of a standalone instance.
func TestEngineMatchesDirectMatcher(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()
	data := randomGraph(60, 3, 1)
	if err := e.Register("data", data); err != nil {
		t.Fatal(err)
	}
	pattern := patternFrom(data, 8, 2)

	for _, algo := range []Algorithm{MaxCard, MaxCard11, MaxSim, MaxSim11, Decide, Decide11} {
		for _, pathLimit := range []int{0, 2} {
			req := Request{Pattern: pattern, GraphName: "data", Algo: algo, Xi: 0.9, PathLimit: pathLimit}
			got := e.Match(context.Background(), req)
			if got.Err != nil {
				t.Fatalf("%s/limit=%d: %v", algo, pathLimit, got.Err)
			}
			want := directResult(t, data, req)
			if !mappingEqual(got.Mapping, want.Mapping) {
				t.Errorf("%s/limit=%d: mapping %v, direct %v", algo, pathLimit, got.Mapping, want.Mapping)
			}
			if got.QualCard != want.QualCard || got.QualSim != want.QualSim {
				t.Errorf("%s/limit=%d: quality (%v,%v), direct (%v,%v)",
					algo, pathLimit, got.QualCard, got.QualSim, want.QualCard, want.QualSim)
			}
			if algo == Decide || algo == Decide11 {
				if got.Holds != want.Holds {
					t.Errorf("%s/limit=%d: holds %v, direct %v", algo, pathLimit, got.Holds, want.Holds)
				}
			}
			// The engine mapping must verify as a valid p-hom mapping.
			if len(got.Mapping) > 0 {
				in := core.NewInstance(pattern, data, simmatrix.NewLabelEquality(pattern, data), 0.9)
				in.MaxPathLen = pathLimit
				injective := algo == MaxCard11 || algo == MaxSim11 || algo == Decide11
				if err := in.CheckMapping(got.Mapping, injective); err != nil {
					t.Errorf("%s/limit=%d: invalid mapping: %v", algo, pathLimit, err)
				}
			}
		}
	}
	// Every request above hit the closure cache: one miss at Register
	// for limit 0 plus one per bounded limit used.
	s := e.Catalog().Stats()
	if s.Misses != 2 {
		t.Errorf("closure misses = %d, want 2 (register + limit-2 index)", s.Misses)
	}
	if s.Hits == 0 {
		t.Errorf("no closure cache hits across %d requests", e.Stats().Requests)
	}
}

func TestEngineSimulationBaseline(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()
	data := randomGraph(40, 3, 3)
	if err := e.Register("data", data); err != nil {
		t.Fatal(err)
	}
	pattern := patternFrom(data, 5, 4)
	res := e.Match(context.Background(), Request{Pattern: pattern, GraphName: "data", Algo: Simulation, Xi: 0.9})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Mapping != nil {
		t.Errorf("simulation returned a mapping: %v", res.Mapping)
	}
}

// TestCoalescing issues a batch of identical, deliberately heavy
// requests through a single worker: all but the first must attach to
// the in-flight computation.
func TestCoalescing(t *testing.T) {
	e := New(Options{Workers: 1, QueueDepth: 64})
	defer e.Close()
	data := randomGraph(250, 4, 5)
	if err := e.Register("data", data); err != nil {
		t.Fatal(err)
	}
	pattern := patternFrom(data, 25, 6)
	// Content similarity forces a dense shingle matrix per execution —
	// easily slow enough that duplicates arrive while it runs.
	req := Request{Pattern: pattern, GraphName: "data", Algo: MaxCard, Xi: 0.3, Sim: SimContent}
	const dup = 16
	reqs := make([]Request, dup)
	for i := range reqs {
		// Distinct pattern objects with identical content must still
		// coalesce: the key is a content digest, not object identity.
		reqs[i] = req
		reqs[i].Pattern = pattern.Clone()
	}
	results := e.MatchBatch(context.Background(), reqs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if !mappingEqual(r.Mapping, results[0].Mapping) {
			t.Fatalf("request %d mapping differs from request 0", i)
		}
	}
	s := e.Stats()
	if s.Coalesced != dup-1 {
		t.Errorf("coalesced = %d, want %d", s.Coalesced, dup-1)
	}
	if s.Executed != 1 {
		t.Errorf("executed = %d, want 1", s.Executed)
	}
	coalescedFlags := 0
	for _, r := range results {
		if r.Coalesced {
			coalescedFlags++
		}
	}
	if coalescedFlags != dup-1 {
		t.Errorf("results flagged coalesced = %d, want %d", coalescedFlags, dup-1)
	}
}

func TestRequestValidation(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	if err := e.Register("g", randomGraph(10, 2, 7)); err != nil {
		t.Fatal(err)
	}
	pattern := graph.FromEdgeList([]string{"L0"}, nil)
	ctx := context.Background()

	if res := e.Match(ctx, Request{GraphName: "g", Algo: MaxCard}); res.Err == nil {
		t.Error("nil pattern accepted")
	}
	if res := e.Match(ctx, Request{Pattern: pattern, GraphName: "g", Algo: "bogus"}); res.Err == nil {
		t.Error("bogus algorithm accepted")
	}
	if res := e.Match(ctx, Request{Pattern: pattern, GraphName: "g", Algo: MaxCard, Sim: "bogus"}); res.Err == nil {
		t.Error("bogus similarity accepted")
	}
	res := e.Match(ctx, Request{Pattern: pattern, GraphName: "missing", Algo: MaxCard})
	if !errors.Is(res.Err, catalog.ErrNotFound) {
		t.Errorf("unknown graph: err = %v, want ErrNotFound", res.Err)
	}
	if got := e.Stats().Errors; got != 4 {
		t.Errorf("error counter = %d, want 4", got)
	}
}

// TestExactNodeLimit checks the DoS guard: exact decisions beyond the
// configured pattern size are rejected at submission, approximation
// algorithms are unaffected.
func TestExactNodeLimit(t *testing.T) {
	e := New(Options{Workers: 1, ExactNodeLimit: 5})
	defer e.Close()
	data := randomGraph(30, 3, 12)
	if err := e.Register("g", data); err != nil {
		t.Fatal(err)
	}
	big := patternFrom(data, 8, 13)
	small := patternFrom(data, 4, 14)
	ctx := context.Background()

	res := e.Match(ctx, Request{Pattern: big, GraphName: "g", Algo: Decide, Xi: 0.9})
	if !errors.Is(res.Err, ErrExactLimit) {
		t.Errorf("decide over limit: err = %v, want ErrExactLimit", res.Err)
	}
	if res := e.Match(ctx, Request{Pattern: small, GraphName: "g", Algo: Decide11, Xi: 0.9}); res.Err != nil {
		t.Errorf("decide11 within limit: %v", res.Err)
	}
	if res := e.Match(ctx, Request{Pattern: big, GraphName: "g", Algo: MaxCard, Xi: 0.9}); res.Err != nil {
		t.Errorf("maxcard is not limited: %v", res.Err)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	e := New(Options{Workers: 1})
	defer e.Close()
	if err := e.Register("g", randomGraph(10, 2, 8)); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("g", randomGraph(10, 2, 9)); !errors.Is(err, catalog.ErrDuplicate) {
		t.Errorf("duplicate register: %v, want ErrDuplicate", err)
	}
}

func TestClose(t *testing.T) {
	e := New(Options{Workers: 2})
	if err := e.Register("g", randomGraph(20, 2, 10)); err != nil {
		t.Fatal(err)
	}
	pattern := patternFrom(e.mustGet(t, "g"), 4, 11)
	if res := e.Match(context.Background(), Request{Pattern: pattern, GraphName: "g", Algo: MaxCard}); res.Err != nil {
		t.Fatal(res.Err)
	}
	e.Close()
	e.Close() // idempotent
	if res := e.Match(context.Background(), Request{Pattern: pattern, GraphName: "g", Algo: MaxCard}); res.Err == nil {
		t.Error("Match after Close succeeded")
	}
}

func (e *Engine) mustGet(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := e.cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("subiso"); err == nil {
		t.Error("ParseAlgorithm accepted an unknown name")
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	a := graph.FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	b := graph.FromEdgeList([]string{"A", "B"}, [][2]int{{1, 0}})
	c := graph.FromEdgeList([]string{"A", "C"}, [][2]int{{0, 1}})
	if fingerprint(a) == fingerprint(b) {
		t.Error("edge direction not fingerprinted")
	}
	if fingerprint(a) == fingerprint(c) {
		t.Error("labels not fingerprinted")
	}
	if fingerprint(a) != fingerprint(a.Clone()) {
		t.Error("identical graphs fingerprint differently")
	}
	d := a.Clone()
	d.SetWeight(0, 0.5)
	if fingerprint(a) == fingerprint(d) {
		t.Error("weights not fingerprinted")
	}
	e := a.Clone()
	e.SetContent(1, "text")
	if fingerprint(a) == fingerprint(e) {
		t.Error("contents not fingerprinted")
	}
}
