// Package engine is the concurrent batch scheduler of the serving
// subsystem. It sits between the transport (internal/httpapi, or direct
// library use via graphmatch.Engine) and the matching core:
//
//   - a bounded worker pool executes match requests concurrently, so a
//     burst of requests saturates the CPUs instead of serialising;
//   - duplicate in-flight requests are coalesced: requests with the
//     same (pattern, graph, algorithm, ξ, path limit, similarity) key
//     attach to the one running computation and share its result;
//   - every request resolves its data graph and reachability index
//     through the shared catalog, so the expensive transitive closure
//     of each registered graph is computed once, not per request.
//
// Requests carry everything Fan et al.'s algorithms need: the pattern
// G1, the name of a registered data graph G2, the algorithm (the
// paper's compMaxCard/compMaxCard1-1/compMaxSim/compMaxSim1-1, the
// exact decision procedures, or the graph-simulation baseline), the
// similarity threshold ξ, and the optional bounded-path variant.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphmatch/internal/catalog"
	"graphmatch/internal/closure"
	"graphmatch/internal/core"
	"graphmatch/internal/graph"
	"graphmatch/internal/metrics"
	"graphmatch/internal/repl"
	"graphmatch/internal/search"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/simulation"
	"graphmatch/internal/store"
	"graphmatch/internal/trace"
)

// Algorithm names one of the matching procedures the engine can run.
type Algorithm string

// The supported algorithms. The four comp* values are the paper's
// approximation algorithms (Figs. 3–4); Decide and Decide11 are the
// exact exponential procedures; Simulation is the conventional
// graph-simulation baseline of the experimental comparison.
const (
	MaxCard    Algorithm = "maxcard"
	MaxCard11  Algorithm = "maxcard11"
	MaxSim     Algorithm = "maxsim"
	MaxSim11   Algorithm = "maxsim11"
	Decide     Algorithm = "decide"
	Decide11   Algorithm = "decide11"
	Simulation Algorithm = "simulation"
)

// Algorithms lists every supported algorithm.
var Algorithms = []Algorithm{MaxCard, MaxCard11, MaxSim, MaxSim11, Decide, Decide11, Simulation}

// ParseAlgorithm validates a wire-format algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	a := Algorithm(s)
	for _, known := range Algorithms {
		if a == known {
			return a, nil
		}
	}
	return "", fmt.Errorf("engine: unknown algorithm %q", s)
}

// SimKind selects how the node-similarity matrix mat() is derived.
type SimKind string

// Similarity kinds. SimLabel is label equality (the paper's Fig. 2
// convention); SimContent is shingle resemblance of node contents (the
// Web-matching convention of Section 6).
const (
	SimLabel   SimKind = "label"
	SimContent SimKind = "content"
)

// Request is one unit of work: match Pattern against the registered
// graph GraphName.
type Request struct {
	// Pattern is G1. The engine normalises it at submission; it must
	// not be mutated while the request is in flight.
	Pattern *graph.Graph
	// GraphName names a data graph registered with the catalog.
	GraphName string
	// Algo selects the matching procedure.
	Algo Algorithm
	// Xi is the node-similarity threshold ξ ∈ [0, 1].
	Xi float64
	// PathLimit bounds pattern-edge images to paths of at most k hops;
	// 0 means unbounded (the paper's p-hom semantics), 1 demands
	// edge-to-edge images.
	PathLimit int
	// Sim selects the similarity matrix; empty defaults to SimLabel.
	Sim SimKind
}

// Result carries the outcome of one request.
type Result struct {
	// Mapping is the computed (partial) node mapping σ. Nil for the
	// simulation baseline and for failed decisions.
	Mapping core.Mapping
	// Holds is the verdict of decide/decide11/simulation; for the
	// approximation algorithms it reports whether σ is total.
	Holds bool
	// QualCard and QualSim are the paper's Section 3.3 quality metrics
	// of the mapping.
	QualCard float64
	QualSim  float64
	// Elapsed is the execution wall time (matrix construction,
	// closure lookup, and matching; zero extra for coalesced waiters).
	Elapsed time.Duration
	// Coalesced reports that this request attached to an identical
	// in-flight computation instead of running its own.
	Coalesced bool
	// Err is the per-request failure, if any (unknown graph, invalid
	// algorithm, cancelled context).
	Err error
}

// Stats is a point-in-time snapshot of engine throughput counters.
type Stats struct {
	// Requests counts submissions, including coalesced ones.
	Requests uint64 `json:"requests"`
	// Executed counts computations actually run by workers.
	Executed uint64 `json:"executed"`
	// Coalesced counts requests that shared an in-flight computation.
	Coalesced uint64 `json:"coalesced"`
	// Errors counts requests that finished with a non-nil error.
	Errors uint64 `json:"errors"`
	// Shed counts requests rejected by admission control.
	Shed uint64 `json:"shed"`
	// Pending is the point-in-time count of admitted tasks queued or
	// running.
	Pending int64 `json:"pending"`
	// Batches counts MatchBatch calls.
	Batches uint64 `json:"batches"`
	// Searches counts Search calls (catalog-wide top-k rankings).
	Searches uint64 `json:"searches"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// PatchBatches counts multi-patch batches the coalescer committed
	// as single catalog mutations; PatchesCoalesced counts the patches
	// that rode in them. Zero when batching is disabled.
	PatchBatches     uint64 `json:"patch_batches"`
	PatchesCoalesced uint64 `json:"patches_coalesced"`
}

// ErrExactLimit rejects an exact-decision request whose pattern
// exceeds the engine's configured bound (see Options.ExactNodeLimit).
var ErrExactLimit = errors.New("engine: pattern too large for exact decision")

// ErrOverloaded rejects a request shed by admission control: the
// engine already has Options.MaxPending tasks admitted and refusing
// fast beats queueing into a latency collapse. The transport maps it
// to HTTP 429 with a Retry-After hint.
var ErrOverloaded = errors.New("engine: overloaded, request shed")

// ErrDeadline reports that a request's context was cancelled or its
// deadline expired before the computation finished — whether while
// queued, mid-recursion in the matcher, or during a closure build. It
// is the core package's sentinel re-exported so transports need only
// one errors.Is target; httpapi maps it to HTTP 504.
var ErrDeadline = core.ErrDeadline

// Options configures a new Engine.
type Options struct {
	// Workers sizes the pool; defaults to GOMAXPROCS.
	Workers int
	// MaxClosures bounds resident reachability indexes in the catalog;
	// defaults to catalog.DefaultMaxClosures.
	MaxClosures int
	// MaxClosureBytes bounds the catalog's resident closure + index
	// bytes; LRU entries are evicted past it. 0 means unbounded.
	MaxClosureBytes int64
	// ReachTier selects the reachability-index tier the catalog builds
	// for registered graphs: closure.PolicyAuto (the default — dense
	// rows while they fit DenseMaxBytes, candidate-sparse beyond),
	// closure.PolicyDense or closure.PolicySparse.
	ReachTier closure.TierPolicy
	// DenseMaxBytes overrides the auto-tier threshold; 0 keeps
	// closure.DefaultDenseMaxBytes.
	DenseMaxBytes int
	// QueueDepth bounds pending tasks before Match blocks; defaults to
	// 4 × Workers.
	QueueDepth int
	// MaxPending enables load-shedding admission control: when more
	// than this many admitted tasks are queued or running, new
	// non-coalesced submissions fail immediately with ErrOverloaded
	// instead of blocking on the queue. Coalesced requests always
	// attach (they add no work). 0 — the library default — disables
	// shedding and preserves the blocking-submit behaviour; servers
	// exposed to untrusted load should set it (phomd does, to
	// QueueDepth + Workers). Keeping MaxPending ≤ QueueDepth + Workers
	// guarantees an admitted task's queue send never blocks.
	MaxPending int
	// NoMetrics disables instrumentation entirely: Metrics() returns
	// nil and every metric point on the hot path is a nil-receiver
	// no-op. Exists for the instrumentation-overhead benchmark
	// (cmd/benchload) and for embedders that bring their own metrics.
	NoMetrics bool
	// ExactNodeLimit, when positive, rejects Decide/Decide11 requests
	// whose pattern has more nodes — those procedures are exponential,
	// and while a context deadline now aborts them mid-recursion, a
	// request submitted without one can still pin a worker for a long
	// time. 0 means unlimited (library default); servers exposed to
	// untrusted clients should set it (phomd does).
	ExactNodeLimit int
	// SearchMaxCandidates is the default stage-1 candidate cap for
	// Search requests that leave MaxCandidates at 0. Non-positive
	// means unlimited.
	SearchMaxCandidates int
	// SearchMinResemblance is the default stage-1 prune threshold for
	// Search requests that leave MinResemblance at 0. Non-positive
	// keeps every graph (the prefilter then only orders candidates,
	// never drops them, so search is exactly equivalent to a
	// brute-force scan).
	SearchMinResemblance float64
	// StorePath, when non-empty, makes the catalog durable: mutations
	// (Register, Remove, ApplyPatch) are written to a WAL in this
	// directory and fsynced before they are acknowledged, and Open
	// replays snapshot + WAL to rebuild the catalog — closure tiers and
	// search index included — before returning. Engines with a
	// StorePath must be created with Open, not New.
	StorePath string
	// SnapshotEvery compacts the WAL into a fresh snapshot after this
	// many logged mutations (in the background, off the mutation path).
	// Non-positive disables automatic snapshots; explicit Snapshot
	// calls still work.
	SnapshotEvery int
	// FollowURL, when non-empty, runs the engine as a read-only replica
	// of the phomd primary at this base URL: after the local replay the
	// engine tails the primary's WAL stream (see internal/repl),
	// applying every record through the ordinary catalog path and
	// persisting it to its own store, so restarts resume from the local
	// tail. Requires StorePath. Local mutations (Register, Remove,
	// ApplyPatch) fail with ErrReadOnly.
	FollowURL string
	// FollowClient issues the replication stream requests; nil means a
	// default client. Tests inject a fault transport here.
	FollowClient *http.Client
	// FollowStallTimeout, FollowMinBackoff and FollowMaxBackoff tune
	// the follower's stall detector and reconnect schedule; zero keeps
	// the repl package defaults.
	FollowStallTimeout time.Duration
	FollowMinBackoff   time.Duration
	FollowMaxBackoff   time.Duration
	// ReplayProgress, when non-nil, observes boot-time store replay:
	// it is called as (done, total) work units — snapshot graphs, WAL
	// ops, then catalog registrations — so a boot-phase handler can
	// derive a Retry-After estimate. total may grow between calls (the
	// registration count is only known once the fold finishes).
	ReplayProgress func(done, total int)
	// PatchCoalesceCount enables patch batching: bursts of ApplyPatch
	// calls (and, on a follower, replicated patch records) against the
	// same graph are composed with graph.MergePatches and committed as
	// one catalog mutation — one closure delta, one WAL fsync, one
	// search-index fold per batch instead of per patch. The value caps
	// patches per batch. Values ≤ 1 disable batching unless
	// PatchCoalesceWindow is set (an unbounded batch then).
	PatchCoalesceCount int
	// PatchCoalesceWindow, when positive, makes each batch wait this
	// long for a burst to accumulate before committing — higher
	// throughput under storms at the cost of added patch latency. 0
	// (the default) is pure group commit: patches batch only while a
	// previous commit is in flight, adding no latency when idle.
	PatchCoalesceWindow time.Duration
	// ClosureDeltaBudget tunes the catalog's incremental closure
	// maintenance on patches: 0 picks a budget proportional to the
	// graph (the default), positive values override it, and negative
	// values disable incremental maintenance entirely — every patch
	// rebuilds closures from scratch (the benchmark baseline).
	ClosureDeltaBudget int
	// NoTrace disables the flight recorder entirely: Tracer() returns
	// nil and no spans are ever recorded, even for requests that carry
	// a traceparent. Requests without a span in their context already
	// skip all span work (one context lookup per layer), so this
	// matters mainly for embedders that bring their own tracing.
	NoTrace bool
	// TraceCapacity sizes the flight recorder's ring of recently
	// completed traces; 0 keeps trace.DefaultCapacity.
	TraceCapacity int
	// TraceSlowThreshold is the latency above which a completed trace
	// is retained in the recorder's slow ring, surviving eviction by
	// faster traffic; 0 keeps trace.DefaultSlowThreshold.
	TraceSlowThreshold time.Duration
}

// reqKey identifies a computation for coalescing. The pattern is
// represented by a collision-resistant digest of its full content so
// two structurally identical patterns coalesce even when they are
// distinct objects (e.g. decoded from separate HTTP requests).
type reqKey struct {
	pattern   [sha256.Size]byte
	graphName string
	algo      Algorithm
	xi        float64
	pathLimit int
	sim       SimKind
}

// task is one scheduled computation plus its completion signal and
// its cancellation state. The task owns a private context derived from
// Background — never from any single waiter's context, because
// coalesced peers with laxer deadlines must not die with the first
// impatient waiter. waiters refcounts the attached requests; the last
// one to abandon the task cancels its context, which the executing
// matcher observes cooperatively (core's *Ctx entry points).
type task struct {
	req      Request
	key      reqKey
	done     chan struct{}
	res      Result
	ctx      context.Context
	cancel   context.CancelFunc
	waiters  atomic.Int32
	enqueued time.Time
	// span is the submitting request's engine.match span (inert when
	// the submitter was untraced). The worker parents queue-wait and
	// execution spans under it; coalesced waiters do not get their own
	// execution spans — they record the owner's trace id instead.
	span trace.Span
}

// attach registers one more waiter. It fails when the refcount already
// hit zero — every previous waiter gave up and the task's context is
// (or is about to be) cancelled — in which case the caller must start
// a fresh task rather than inherit a doomed result.
func (t *task) attach() bool {
	for {
		n := t.waiters.Load()
		if n <= 0 {
			return false
		}
		if t.waiters.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// detach drops one waiter, cancelling the task when nobody is left to
// consume its result.
func (t *task) detach() {
	if t.waiters.Add(-1) == 0 {
		t.cancel()
	}
}

// Engine schedules match requests over a shared catalog. Create one
// with New; it is safe for concurrent use. Close releases the workers.
type Engine struct {
	cat   *catalog.Catalog
	queue chan *task
	wg    sync.WaitGroup

	exactLimit int

	// searchIdx is the stage-1 candidate index of the search subsystem;
	// it observes catalog mutations through the mutation hook, so it is
	// coherent with Register/Remove by construction.
	searchIdx        *search.Index
	searchMaxCand    int
	searchMinResembl float64

	mu       sync.Mutex
	inflight map[reqKey]*task

	// finishMu serialises pattern normalisation: Finish mutates the
	// graph when it is not yet clean, and two concurrent submissions
	// may legitimately share one pattern object.
	finishMu sync.Mutex

	// sendMu serialises queue sends against Close: submitters hold the
	// read side across the check-closed + send pair, so the channel is
	// never closed with a send in flight.
	sendMu sync.RWMutex
	closed bool

	// store is the durability subsystem (nil without Options.StorePath):
	// the catalog's persister appends every mutation to its WAL, and
	// Snapshot compacts it. snapMu serialises snapshots (explicit and
	// background) and holds them off during Close; snapPending collapses
	// concurrent background triggers into one.
	store         *store.Store
	snapshotEvery int
	snapMu        sync.Mutex
	snapWg        sync.WaitGroup
	snapPending   atomic.Bool

	// Follower mode (Options.FollowURL): the repl loop tailing the
	// primary, and the primary's base URL for 421 redirects. Both are
	// set once in Open and never change.
	follower   *repl.Follower
	primaryURL string

	// coalescer batches patch bursts per graph (see Options.
	// PatchCoalesceCount); nil when batching is disabled, in which case
	// patches commit one at a time.
	coalescer *patchCoalescer

	// tracer is the flight recorder (nil with Options.NoTrace):
	// completed request traces land here, queryable through
	// GET /debug/traces and the explain path.
	tracer *trace.Recorder

	// Admission control: pending counts admitted tasks (queued +
	// running, coalesced attaches excluded); maxPending > 0 sheds past
	// the bound.
	maxPending int
	pending    atomic.Int64
	shed       atomic.Uint64

	requests  atomic.Uint64
	executed  atomic.Uint64
	coalesced atomic.Uint64
	errors    atomic.Uint64
	batches   atomic.Uint64
	searches  atomic.Uint64
	workers   int

	// reg is the process-wide metrics registry (nil with
	// Options.NoMetrics); the m* instruments are nil exactly when reg
	// is, making every observation a nil-receiver no-op.
	reg               *metrics.Registry
	mTaskWait         *metrics.Histogram
	mTaskRun          *metrics.Histogram
	mSearchCandidates *metrics.Histogram
	mSearchPruneRatio *metrics.Histogram
	mSearchStage1     *metrics.Histogram
	mSearchStage2     *metrics.Histogram
}

// New starts an engine with the given options. It panics when
// Options.StorePath is set and opening or replaying the store fails —
// persistent engines should use Open, which returns that error.
func New(opts Options) *Engine {
	e, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Open starts an engine. When Options.StorePath is set, the persisted
// catalog is replayed — graphs registered, patches applied, closures
// and the search index rebuilt — before Open returns, so a server can
// bind its listener only once the recovered engine is ready to serve.
func Open(opts Options) (*Engine, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	e := &Engine{
		cat: catalog.New(opts.MaxClosures,
			catalog.WithMaxBytes(opts.MaxClosureBytes),
			catalog.WithTierPolicy(opts.ReachTier),
			catalog.WithDenseMaxBytes(opts.DenseMaxBytes),
			catalog.WithDeltaBudget(opts.ClosureDeltaBudget)),
		queue:            make(chan *task, depth),
		inflight:         make(map[reqKey]*task),
		workers:          workers,
		exactLimit:       opts.ExactNodeLimit,
		maxPending:       opts.MaxPending,
		searchMaxCand:    opts.SearchMaxCandidates,
		searchMinResembl: opts.SearchMinResemblance,
		snapshotEvery:    opts.SnapshotEvery,
	}
	if opts.FollowURL != "" && opts.StorePath == "" {
		return nil, fmt.Errorf("engine: FollowURL requires StorePath (the follower persists the stream to its own WAL)")
	}
	if opts.PatchCoalesceCount > 1 || opts.PatchCoalesceWindow > 0 {
		e.coalescer = newPatchCoalescer(e, opts.PatchCoalesceWindow, opts.PatchCoalesceCount)
	}
	if !opts.NoMetrics {
		e.reg = metrics.NewRegistry()
	}
	if !opts.NoTrace {
		e.tracer = trace.NewRecorder(opts.TraceCapacity, opts.TraceSlowThreshold)
	}
	e.initMetrics()
	e.searchIdx = search.NewIndex(e.cat)
	if opts.StorePath != "" {
		// primaryURL is set before the replay so openStore knows not to
		// install the persister: a follower's ops are logged by the
		// replication apply path, never by the catalog.
		e.primaryURL = strings.TrimRight(opts.FollowURL, "/")
		if err := e.openStore(opts.StorePath, opts.ReplayProgress); err != nil {
			return nil, err
		}
		e.initStoreMetrics()
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	if opts.FollowURL != "" {
		if err := e.startFollower(opts); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// Catalog exposes the underlying graph registry (for stats endpoints
// and tests).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Tracer exposes the flight recorder, or nil when Options.NoTrace
// disabled it. The HTTP layer starts root spans against it and serves
// its contents on GET /debug/traces.
func (e *Engine) Tracer() *trace.Recorder { return e.tracer }

// Register adds a data graph to the catalog and precomputes its shared
// closure. When the engine has a store, the registration is logged and
// fsynced before it is acknowledged. See catalog.Catalog.Register for
// ownership rules.
func (e *Engine) Register(name string, g *graph.Graph) error {
	return e.RegisterCtx(context.Background(), name, g)
}

// RegisterCtx is Register with a request context for trace
// attribution (catalog commit and WAL append spans).
func (e *Engine) RegisterCtx(ctx context.Context, name string, g *graph.Graph) error {
	if e.follower != nil {
		return fmt.Errorf("%w: register %q on %s", ErrReadOnly, name, e.primaryURL)
	}
	if err := e.cat.RegisterCtx(ctx, name, g); err != nil {
		return err
	}
	e.maybeSnapshot()
	return nil
}

// Remove drops a registered data graph and every cached closure and
// index derived from it. In-flight requests against the graph finish
// against the state they already resolved. With a store, the removal
// is durable before it is acknowledged.
func (e *Engine) Remove(name string) error {
	return e.RemoveCtx(context.Background(), name)
}

// RemoveCtx is Remove with a request context for trace attribution.
func (e *Engine) RemoveCtx(ctx context.Context, name string) error {
	if e.follower != nil {
		return fmt.Errorf("%w: remove %q on %s", ErrReadOnly, name, e.primaryURL)
	}
	if err := e.cat.RemoveCtx(ctx, name); err != nil {
		return err
	}
	e.maybeSnapshot()
	return nil
}

// Close drains the pool and, when the engine has a store, fsyncs and
// closes the WAL — after Close returns, no acknowledged mutation can
// be lost and no tail record is in flight. Pending tasks complete;
// subsequent Match calls fail. Close is idempotent.
func (e *Engine) Close() {
	e.sendMu.Lock()
	if e.closed {
		e.sendMu.Unlock()
		return
	}
	e.closed = true
	e.sendMu.Unlock()
	// Stop the follower first: its apply path writes the store and
	// triggers snapshots, so no replication work may be in flight when
	// the store closes below.
	if e.follower != nil {
		e.follower.Stop()
	}
	// With the follower stopped and closed set, no new patches can be
	// submitted; flush what the coalescer still holds before the store
	// goes away so every accepted patch commits (and, on a primary, is
	// logged) by the time Close returns.
	if e.coalescer != nil {
		e.coalescer.close()
	}
	close(e.queue)
	e.wg.Wait()
	if e.store != nil {
		// Let an already-triggered background snapshot finish (snapWg),
		// and hold snapMu so no snapshot can be mid-write while the store
		// closes underneath it.
		e.snapWg.Wait()
		e.snapMu.Lock()
		if err := e.store.Close(); err != nil {
			log.Printf("engine: closing store: %v", err)
		}
		e.snapMu.Unlock()
	}
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Requests:  e.requests.Load(),
		Executed:  e.executed.Load(),
		Coalesced: e.coalesced.Load(),
		Errors:    e.errors.Load(),
		Shed:      e.shed.Load(),
		Pending:   e.pending.Load(),
		Batches:   e.batches.Load(),
		Searches:  e.searches.Load(),
		Workers:   e.workers,
	}
	if e.coalescer != nil {
		s.PatchBatches = e.coalescer.batches.Load()
		s.PatchesCoalesced = e.coalescer.coalesced.Load()
	}
	return s
}

// Match schedules one request and waits for its result. An
// already-expired context is rejected before any work is enqueued; a
// context that dies while the request is queued or running detaches
// the waiter, and when it was the last one the computation itself is
// cancelled cooperatively (coalesced peers keep it alive as long as
// any of them still wants the result). Both cases return ErrDeadline.
func (e *Engine) Match(ctx context.Context, req Request) Result {
	// The engine.match span covers validation, queueing and execution;
	// shed and deadline outcomes are recorded on it so a 429/504 is
	// attributable in the flight recorder. One context lookup when the
	// request is untraced.
	msp := trace.SpanFromContext(ctx).Child("engine.match")
	if msp.Active() {
		msp.SetStr("algo", string(req.Algo))
		msp.SetStr("graph", req.GraphName)
	}
	if err := ctx.Err(); err != nil {
		e.requests.Add(1)
		e.errors.Add(1)
		msp.SetStr("cancel_point", "pre-submit")
		msp.End()
		return Result{Err: decorate(ctx, fmt.Errorf("%w: %w", ErrDeadline, err))}
	}
	t, coalesced, err := e.submit(req, msp)
	if err != nil {
		e.errors.Add(1)
		if msp.Active() {
			if errors.Is(err, ErrOverloaded) {
				msp.SetBool("shed", true)
			}
			msp.SetStr("error", err.Error())
			msp.End()
		}
		return Result{Err: decorate(ctx, err)}
	}
	res := e.wait(ctx, t, coalesced)
	if msp.Active() {
		if coalesced {
			msp.SetBool("coalesced", true)
			if owner := t.span; owner.Active() {
				msp.SetStr("exec_trace_id", owner.TraceID().String())
			}
		}
		if res.Err != nil {
			if errors.Is(res.Err, ErrDeadline) {
				msp.SetStr("cancel_point", "wait")
			}
			msp.SetStr("error", res.Err.Error())
		}
		msp.End()
	}
	return res
}

// MatchBatch schedules all requests before waiting on any, so
// independent requests run concurrently across the pool and duplicates
// within the batch coalesce. Results are positional. The error reports
// only submission-level failure of the whole batch (engine closed);
// per-request failures land in Result.Err.
func (e *Engine) MatchBatch(ctx context.Context, reqs []Request) []Result {
	e.batches.Add(1)
	results := make([]Result, len(reqs))
	if err := ctx.Err(); err != nil {
		// Already expired: reject the whole batch before enqueuing any
		// work.
		for i := range results {
			e.requests.Add(1)
			e.errors.Add(1)
			results[i] = Result{Err: decorate(ctx, fmt.Errorf("%w: %w", ErrDeadline, err))}
		}
		return results
	}
	tasks := make([]*task, len(reqs))
	flags := make([]bool, len(reqs))
	for i, req := range reqs {
		// Batch items do not get per-item spans: a search fan-out would
		// blow the per-trace span cap and drown the interesting stages.
		t, coalesced, err := e.submit(req, trace.Span{})
		if err != nil {
			e.errors.Add(1)
			results[i] = Result{Err: err}
			continue
		}
		tasks[i] = t
		flags[i] = coalesced
	}
	for i, t := range tasks {
		if t == nil {
			continue
		}
		results[i] = e.wait(ctx, t, flags[i])
	}
	return results
}

// submit validates a request and either enqueues a new task or attaches
// to an identical in-flight one. sp is the submitter's engine.match
// span (inert when untraced); a newly created task adopts it, so the
// worker's execution spans land in the trace of the request that
// caused the work.
func (e *Engine) submit(req Request, sp trace.Span) (*task, bool, error) {
	e.requests.Add(1)
	if req.Pattern == nil {
		return nil, false, fmt.Errorf("engine: nil pattern")
	}
	if _, err := ParseAlgorithm(string(req.Algo)); err != nil {
		return nil, false, err
	}
	if req.Sim == "" {
		req.Sim = SimLabel
	}
	if req.Sim != SimLabel && req.Sim != SimContent {
		return nil, false, fmt.Errorf("engine: unknown similarity kind %q", req.Sim)
	}
	if req.PathLimit < 0 {
		req.PathLimit = 0
	}
	if math.IsNaN(req.Xi) {
		return nil, false, fmt.Errorf("engine: ξ is NaN")
	}
	if (req.Algo == Decide || req.Algo == Decide11) &&
		e.exactLimit > 0 && req.Pattern.NumNodes() > e.exactLimit {
		return nil, false, fmt.Errorf("%w: %d nodes > limit %d",
			ErrExactLimit, req.Pattern.NumNodes(), e.exactLimit)
	}
	// Normalise the pattern before workers or coalesced readers touch
	// it. Serialised because Finish mutates a not-yet-clean graph and
	// concurrent submissions may share one pattern object.
	e.finishMu.Lock()
	req.Pattern.Finish()
	e.finishMu.Unlock()
	key := reqKey{
		pattern:   fingerprint(req.Pattern),
		graphName: req.GraphName,
		algo:      req.Algo,
		xi:        req.Xi,
		pathLimit: req.PathLimit,
		sim:       req.Sim,
	}

	e.mu.Lock()
	if t, ok := e.inflight[key]; ok && t.attach() {
		e.mu.Unlock()
		e.coalesced.Add(1)
		return t, true, nil
	}
	// No live in-flight task to coalesce onto (either none, or one whose
	// waiters all gave up — its cancelled result must not be inherited).
	// This is new work: admission control applies before anything is
	// published or enqueued.
	n := e.pending.Add(1)
	if e.maxPending > 0 && n > int64(e.maxPending) {
		e.pending.Add(-1)
		e.mu.Unlock()
		e.shed.Add(1)
		return nil, false, fmt.Errorf("%w: %d tasks pending (limit %d)",
			ErrOverloaded, n-1, e.maxPending)
	}
	tctx, cancel := context.WithCancel(context.Background())
	t := &task{req: req, key: key, done: make(chan struct{}), ctx: tctx, cancel: cancel, span: sp}
	t.waiters.Store(1)
	e.inflight[key] = t // overwrites a dead (waiterless) predecessor, if any
	e.mu.Unlock()

	e.sendMu.RLock()
	if e.closed {
		e.sendMu.RUnlock()
		// The task was already published to inflight, so a concurrent
		// identical request may have coalesced onto it: resolve it with
		// the error before unpublishing, or that waiter hangs forever.
		t.res = Result{Err: fmt.Errorf("engine: closed")}
		e.unpublish(t)
		e.pending.Add(-1)
		close(t.done)
		t.cancel()
		return nil, false, fmt.Errorf("engine: closed")
	}
	t.enqueued = time.Now()
	e.queue <- t
	e.sendMu.RUnlock()
	return t, false, nil
}

// unpublish removes a task from the inflight map — but only if it is
// still the published entry for its key. A dead task (all waiters
// detached) may already have been replaced by a fresh one; deleting
// blindly would unpublish the successor and break its coalescing.
func (e *Engine) unpublish(t *task) {
	e.mu.Lock()
	if e.inflight[t.key] == t {
		delete(e.inflight, t.key)
	}
	e.mu.Unlock()
}

// wait blocks until the task finishes or ctx is cancelled. A waiter
// that gives up detaches from the task; the last detach cancels the
// task's own context, which stops the matcher cooperatively.
func (e *Engine) wait(ctx context.Context, t *task, coalesced bool) Result {
	select {
	case <-t.done:
	case <-ctx.Done():
		t.detach()
		e.errors.Add(1)
		return Result{
			Err:       decorate(ctx, fmt.Errorf("%w: %w", ErrDeadline, ctx.Err())),
			Coalesced: coalesced,
		}
	}
	res := t.res
	res.Coalesced = coalesced
	if res.Err != nil {
		e.errors.Add(1)
		res.Err = decorate(ctx, res.Err)
	}
	return res
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for t := range e.queue {
		picked := time.Now()
		e.mTaskWait.Observe(picked.Sub(t.enqueued).Seconds())
		ctx := t.ctx
		if t.span.Active() {
			// Queue wait is recorded from timestamps already taken for
			// the metrics, and the task span rides into execute's
			// context so catalog/core spans nest under it.
			t.span.ChildSpanning("engine.queue", t.enqueued, picked)
			ctx = trace.ContextWithSpan(ctx, t.span)
		}
		runStart := time.Now()
		t.res = e.execute(ctx, t.req)
		runSecs := time.Since(runStart).Seconds()
		if t.span.Active() {
			e.mTaskRun.ObserveWithExemplar(runSecs, "trace_id", t.span.TraceID().String())
		} else {
			e.mTaskRun.Observe(runSecs)
		}
		e.executed.Add(1)
		e.pending.Add(-1)
		// Unpublish before signalling completion so a request arriving
		// after done is closed starts a fresh computation instead of
		// reading a task that will never change again — semantically
		// fine either way, but unpublishing keeps the inflight map from
		// retaining finished patterns. (unpublish also guards against
		// deleting a successor task that replaced this one after every
		// waiter detached.)
		e.unpublish(t)
		close(t.done)
		t.cancel() // release the task context's resources
	}
}

// execute runs one computation against the shared catalog. ctx is the
// task's private context — cancelled only when every attached waiter
// gave up — and is threaded into the core matcher's cooperative
// cancellation points, so an abandoned computation stops burning its
// worker within microseconds instead of running to completion.
func (e *Engine) execute(ctx context.Context, req Request) Result {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		// Every waiter detached while the task was still queued: skip
		// the work entirely.
		return Result{Err: fmt.Errorf("%w: %w", ErrDeadline, err)}
	}
	// Resolve the graph and its closure as one consistent pair; a
	// separate Get + Reach could straddle a Remove/Register of the
	// same name and mix one graph with another's index. The
	// approximation algorithms additionally receive the catalog's
	// tiered reachability index (dense rows or candidate-sparse,
	// whichever the catalog selected for the graph's size), so their
	// per-request matcher setup materialises nothing at all.
	var (
		g2    *graph.Graph
		reach *closure.Reach
		idx   closure.Index
		err   error
	)
	switch req.Algo {
	case Simulation:
		g2, err = e.cat.Get(req.GraphName) // simulation never consults the closure
	case Decide, Decide11:
		g2, reach, err = e.cat.GetWithReachCtx(ctx, req.GraphName, req.PathLimit)
	default:
		g2, reach, idx, err = e.cat.GetWithIndexCtx(ctx, req.GraphName, req.PathLimit)
	}
	if err != nil {
		return Result{Err: err}
	}
	var mat simmatrix.Matrix
	switch req.Sim {
	case SimContent:
		cg, sets2, err := e.cat.ContentSets(req.GraphName)
		if err != nil {
			return Result{Err: err}
		}
		if cg != g2 {
			return Result{Err: fmt.Errorf("engine: graph %q replaced mid-request", req.GraphName)}
		}
		mat = simmatrix.FromContentSets(req.Pattern, sets2, 0)
	default:
		mat = simmatrix.NewLabelEquality(req.Pattern, g2)
	}

	if req.Algo == Simulation {
		// The simulation fixpoint has no internal cancellation points;
		// its cost is polynomial and small, so a pre-check suffices.
		if err := ctx.Err(); err != nil {
			return Result{Err: fmt.Errorf("%w: %w", ErrDeadline, err)}
		}
		holds := simulation.Compute(req.Pattern, g2, mat, req.Xi).Matches()
		return Result{Holds: holds, Elapsed: time.Since(start)}
	}

	in := core.NewInstance(req.Pattern, g2, mat, req.Xi)
	in.MaxPathLen = req.PathLimit
	in.SetReach(reach)
	if idx != nil {
		in.SetIndex(idx)
	}

	var (
		sigma core.Mapping
		holds bool
		err2  error
	)
	switch req.Algo {
	case MaxCard:
		sigma, err2 = in.CompMaxCardCtx(ctx)
	case MaxCard11:
		sigma, err2 = in.CompMaxCard11Ctx(ctx)
	case MaxSim:
		sigma, err2 = in.CompMaxSimCtx(ctx)
	case MaxSim11:
		sigma, err2 = in.CompMaxSim11Ctx(ctx)
	case Decide:
		sigma, holds, err2 = in.DecideCtx(ctx)
	case Decide11:
		sigma, holds, err2 = in.Decide11Ctx(ctx)
	default:
		return Result{Err: fmt.Errorf("engine: unknown algorithm %q", req.Algo)}
	}
	if err2 != nil {
		return Result{Err: err2}
	}
	res := Result{
		Mapping:  sigma,
		Holds:    holds,
		QualCard: in.QualCard(sigma),
		QualSim:  in.QualSim(sigma),
		Elapsed:  time.Since(start),
	}
	switch req.Algo {
	case MaxCard, MaxCard11, MaxSim, MaxSim11:
		res.Holds = len(sigma) == req.Pattern.NumNodes()
	}
	return res
}

// fingerprint digests a graph's complete content — node count, labels,
// weights, contents, and edge list — so structurally identical patterns
// coalesce regardless of object identity.
func fingerprint(g *graph.Graph) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(len(s))
		h.Write([]byte(s))
	}
	writeInt(g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		n := g.Node(graph.NodeID(v))
		writeStr(n.Label)
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(n.Weight))
		h.Write(buf[:])
		writeStr(n.Content)
	}
	g.Edges(func(from, to graph.NodeID) bool {
		writeInt(int(from))
		writeInt(int(to))
		return true
	})
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
