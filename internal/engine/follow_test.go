package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"graphmatch/internal/graph"
	"graphmatch/internal/repl"
	"graphmatch/internal/store"
	"graphmatch/internal/webgen"
)

// End-to-end replication tests: a real primary engine behind a real
// TCP listener, a follower engine tailing it, and the repl package's
// fault transport sabotaging the wire. The tests live in this package
// (not httpapi, which would be an import cycle from engine tests) and
// mount repl.NewHandler directly — the same handler httpapi mounts.

// fastRepl are stream options tuned for tests: tight poll and
// checkpoint intervals so convergence is measured in milliseconds.
var fastRepl = repl.HandlerOptions{Poll: 2 * time.Millisecond, CheckpointEvery: 20 * time.Millisecond}

// testPrimary is a primary engine serving its replication stream on a
// real listener, restartable at the same address.
type testPrimary struct {
	t    *testing.T
	dir  string
	addr string
	eng  *Engine
	srv  *http.Server
	ln   net.Listener
}

// startPrimary boots a primary over dir and serves its stream. addr ""
// picks a fresh port; passing a previous primary's addr rebinds it (a
// restart, from the follower's point of view).
func startPrimary(t *testing.T, dir, addr string) *testPrimary {
	t.Helper()
	eng, err := Open(Options{Workers: 2, StorePath: dir})
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /v1/replicate/since/{seq}", repl.NewHandler(eng.ReplSource(), fastRepl))
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := retryListen(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &testPrimary{t: t, dir: dir, addr: ln.Addr().String(), eng: eng, srv: srv, ln: ln}
}

// retryListen rebinds an address that may still be releasing after a
// hard server teardown.
func retryListen(addr string, timeout time.Duration) (net.Listener, error) {
	deadline := time.Now().Add(timeout)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil || time.Now().After(deadline) {
			return ln, err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (p *testPrimary) url() string { return "http://" + p.addr }

// kill is the primary's kill -9: listener and connections torn down,
// store fds and flock dropped without Close. Every acknowledged op is
// already fsynced; the leaked workers idle until the binary exits.
func (p *testPrimary) kill() {
	p.srv.Close()
	p.ln.Close()
	p.eng.store.Abandon()
}

// restart brings the primary back on the same address from its store.
func (p *testPrimary) restart() *testPrimary {
	return startPrimary(p.t, p.dir, p.addr)
}

func (p *testPrimary) shutdown() {
	p.srv.Close()
	p.ln.Close()
	p.eng.Close()
}

// openFollower boots a follower engine over dir tailing primary, with
// test-tight backoff and stall settings.
func openFollower(t *testing.T, dir, primary string, client *http.Client) *Engine {
	t.Helper()
	e, err := Open(Options{
		Workers:            2,
		StorePath:          dir,
		FollowURL:          primary,
		FollowClient:       client,
		FollowMinBackoff:   2 * time.Millisecond,
		FollowMaxBackoff:   25 * time.Millisecond,
		FollowStallTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	return e
}

// killFollower is the follower's kill -9 equivalent: the loop stops
// issuing appends, then the store fds drop without Close. (A real
// SIGKILL interrupts the loop mid-append at worst — and an interrupted
// append is exactly the torn tail the store's replay truncates.)
func killFollower(e *Engine) {
	e.follower.Stop()
	e.store.Abandon()
}

// waitSynced blocks until the follower has durably applied everything
// the primary's store holds, without being diverged.
func waitSynced(t *testing.T, f *Engine, p *testPrimary, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rs, ok := f.ReplStats()
		if !ok {
			t.Fatal("waitSynced on a non-follower")
		}
		ps, ok := p.eng.StoreStats()
		if !ok {
			t.Fatal("primary has no store")
		}
		if rs.SyncedOnce && !rs.Diverged && rs.LastApplied == ps.LastSeq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: follower %+v, primary seq %d", rs, ps.LastSeq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// seedPrimary registers sites generated per category and returns the
// match/search patterns probeEngines will replay.
func seedPrimary(t *testing.T, p *testPrimary, sites, pages int) []*graph.Graph {
	t.Helper()
	cats := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	var patterns []*graph.Graph
	for s := 0; s < sites; s++ {
		arch := webgen.Generate(webgen.Config{
			Category: cats[s%len(cats)],
			Pages:    pages,
			Versions: 1,
			Seed:     int64(31 + s),
		})
		if err := p.eng.Register(fmt.Sprintf("site%d", s), arch.Versions[0]); err != nil {
			t.Fatal(err)
		}
		patterns = append(patterns, webgen.TopKSkeleton(arch.Versions[0], 6))
	}
	return patterns
}

// TestFollowerServesAndRejectsWrites is the basic replication
// contract: a follower converges to the primary's exact catalog,
// serves bit-identical match and search results, keeps converging as
// the primary mutates, and rejects every local mutation with
// ErrReadOnly.
func TestFollowerServesAndRejectsWrites(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "")
	defer p.shutdown()
	patterns := seedPrimary(t, p, 2, 30)

	f := openFollower(t, t.TempDir(), p.url(), nil)
	defer f.Close()
	waitSynced(t, f, p, 5*time.Second)

	if !f.IsFollower() || f.PrimaryURL() != p.url() {
		t.Fatalf("follower identity: IsFollower=%v PrimaryURL=%q", f.IsFollower(), f.PrimaryURL())
	}
	if p.eng.IsFollower() || p.eng.PrimaryURL() != "" {
		t.Fatalf("primary identity: IsFollower=%v PrimaryURL=%q", p.eng.IsFollower(), p.eng.PrimaryURL())
	}
	if f.ReplSource() != nil {
		t.Fatal("follower must not offer a replication source (chaining unsupported)")
	}
	probeEngines(t, "initial sync", f, p.eng, patterns)

	// Live mutations flow through.
	rng := rand.New(rand.NewSource(7))
	g, err := p.eng.Catalog().Get("site0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.eng.ApplyPatch("site0", randomPatch(rng, g)); err != nil {
		t.Fatal(err)
	}
	extra := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 20, Versions: 1, Seed: 99}).Versions[0]
	if err := p.eng.Register("extra", extra); err != nil {
		t.Fatal(err)
	}
	waitSynced(t, f, p, 5*time.Second)
	probeEngines(t, "after mutations", f, p.eng, patterns)

	// Local mutations are refused.
	if err := f.Register("local", extra.Clone()); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Register on follower = %v, want ErrReadOnly", err)
	}
	if _, err := f.ApplyPatch("site0", &graph.Patch{}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("ApplyPatch on follower = %v, want ErrReadOnly", err)
	}
	if err := f.Remove("site0"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Remove on follower = %v, want ErrReadOnly", err)
	}
	// None of the refused mutations may have leaked into the catalog.
	probeEngines(t, "after refused writes", f, p.eng, patterns)
}

// TestFollowerRestartResumesFromLocalTail kills a synced follower,
// mutates the primary while it is down, and reopens it from the same
// store: it must resume from its durable tail — no bootstrap resync —
// and converge on just the missed ops.
func TestFollowerRestartResumesFromLocalTail(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "")
	defer p.shutdown()
	patterns := seedPrimary(t, p, 2, 30)

	dir := t.TempDir()
	f := openFollower(t, dir, p.url(), nil)
	waitSynced(t, f, p, 5*time.Second)
	killFollower(f)

	// Primary moves on while the follower is down.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3; i++ {
		g, err := p.eng.Catalog().Get("site1")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.eng.ApplyPatch("site1", randomPatch(rng, g)); err != nil {
			t.Fatal(err)
		}
	}

	f2 := openFollower(t, dir, p.url(), nil)
	defer f2.Close()
	waitSynced(t, f2, p, 5*time.Second)
	rs, _ := f2.ReplStats()
	if rs.Resyncs != 0 {
		t.Fatalf("restart resumed via %d resyncs, want 0 (local tail should carry it)", rs.Resyncs)
	}
	probeEngines(t, "after restart", f2, p.eng, patterns)
}

// TestFollowerResync covers the two bootstrap paths: a fresh follower
// behind the primary's snapshot horizon, and a follower whose local
// tail holds a phantom op the primary never committed (divergence).
func TestFollowerResync(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "")
	defer p.shutdown()
	patterns := seedPrimary(t, p, 2, 30)

	t.Run("behind the snapshot horizon", func(t *testing.T) {
		// Compact the primary so seq 0 predates its oldest WAL record:
		// a fresh follower cannot tail from 0 and must bootstrap.
		if _, err := p.eng.Snapshot(); err != nil {
			t.Fatal(err)
		}
		f := openFollower(t, t.TempDir(), p.url(), nil)
		defer f.Close()
		waitSynced(t, f, p, 5*time.Second)
		probeEngines(t, "bootstrap", f, p.eng, patterns)
	})

	t.Run("phantom local tail", func(t *testing.T) {
		dir := t.TempDir()
		f := openFollower(t, dir, p.url(), nil)
		waitSynced(t, f, p, 5*time.Second)
		killFollower(f)

		// Forge an op the primary never committed: the follower's tail
		// is now ahead of the primary's log, the position the stream
		// answers 409 to, and only a full resync can repair.
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		phantom := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 10, Versions: 1, Seed: 1234}).Versions[0]
		if err := st.AppendAt(store.Op{Seq: st.Stats().LastSeq + 1, Kind: store.OpRegister, Name: "phantom", Graph: phantom}); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		f2 := openFollower(t, dir, p.url(), nil)
		defer f2.Close()
		waitSynced(t, f2, p, 5*time.Second)
		rs, _ := f2.ReplStats()
		if rs.Resyncs == 0 {
			t.Fatal("diverged follower converged without a resync")
		}
		if rs.Diverged {
			t.Fatal("follower still flagged diverged after resync")
		}
		// The phantom graph must be gone: probeEngines starts from a
		// catalog-name comparison.
		probeEngines(t, "after resync", f2, p.eng, patterns)
	})
}

// TestFollowerFaultQuickCheck is the convergence property under
// hostile conditions: while the primary absorbs a mutation storm, the
// follower tails it through a rotating schedule of injected wire
// faults — connections refused, streams cut mid-record, payload bytes
// flipped, silent stalls — and both processes suffer a kill -9 and
// restart mid-storm. When the dust settles the follower must serve
// bit-identical match and search results. Runs under -short: the
// graphs are small and the whole exercise is a few seconds.
func TestFollowerFaultQuickCheck(t *testing.T) {
	p := startPrimary(t, t.TempDir(), "")
	patterns := seedPrimary(t, p, 3, 25)

	// Rotating sabotage: connection n gets plan[n % len(plan)]. The
	// first connection is healthy so the follower syncs once; every
	// reconnect after that walks the fault rotation.
	plan := []repl.Fault{
		{},                // healthy
		{CutAfter: 700},   // torn mid-record
		{CorruptAt: 450},  // CRC failure
		{Refuse: true},    // connection refused
		{StallAfter: 300}, // hung-but-open link
		{CutAfter: 64},    // torn inside the very first frame
	}
	ft := &repl.FaultTransport{Plan: func(conn int) repl.Fault { return plan[conn%len(plan)] }}
	client := &http.Client{Transport: ft}

	fdir := t.TempDir()
	f := openFollower(t, fdir, p.url(), client)

	// storm applies n random mutations to the current primary engine.
	// No mirroring to a reference: the primary itself is the reference,
	// and an op it refused (mid-kill) is absent from its WAL and hence
	// from the follower too — both sides converge on the log.
	rng := rand.New(rand.NewSource(42))
	names := []string{"site0", "site1", "site2"}
	storm := func(eng *Engine, n int) {
		for i := 0; i < n; i++ {
			switch r := rng.Float64(); {
			case r < 0.65:
				name := names[rng.Intn(len(names))]
				g, err := eng.Catalog().Get(name)
				if err != nil {
					continue
				}
				_, _ = eng.ApplyPatch(name, randomPatch(rng, g))
			case r < 0.8:
				name := fmt.Sprintf("burst%d", rng.Intn(1000))
				g := webgen.Generate(webgen.Config{Category: webgen.Newspaper, Pages: 15, Versions: 1, Seed: int64(i)}).Versions[0]
				if err := eng.Register(name, g); err == nil {
					names = append(names, name)
				}
			case len(names) > 3:
				j := 3 + rng.Intn(len(names)-3) // keep the seed sites
				_ = eng.Remove(names[j])
				names = append(names[:j], names[j+1:]...)
			}
			time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
		}
	}

	storm(p.eng, 10)

	// kill -9 the primary mid-storm; the follower rides its backoff
	// until the restart comes up on the same address.
	p.kill()
	p = p.restart()
	defer p.shutdown()
	storm(p.eng, 10)

	// kill -9 the follower mid-storm; reopen from its local tail with
	// the same hostile transport.
	killFollower(f)
	storm(p.eng, 5)
	f = openFollower(t, fdir, p.url(), client)
	defer f.Close()
	storm(p.eng, 10)

	waitSynced(t, f, p, 15*time.Second)
	probeEngines(t, "post-storm", f, p.eng, patterns)

	rs, _ := f.ReplStats()
	if ft.Connections() < 3 {
		t.Fatalf("fault transport saw only %d connections; the rotation never bit", ft.Connections())
	}
	t.Logf("converged at seq %d: %d connections, %d reconnects, %d resyncs, %d applied",
		rs.LastApplied, ft.Connections(), rs.Reconnects, rs.Resyncs, rs.Applied)
}

// TestReplayProgressReported checks the Options.ReplayProgress wiring:
// boot replay reports monotonic (done, total) pairs ending at
// done == total, with total growing once the fold reveals how many
// graphs survive to register.
func TestReplayProgressReported(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Workers: 2, StorePath: dir})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 3; s++ {
		g := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 20, Versions: 1, Seed: int64(s)}).Versions[0]
		if err := e.Register(fmt.Sprintf("g%d", s), g); err != nil {
			t.Fatal(err)
		}
	}
	g, _ := e.Catalog().Get("g0")
	if _, err := e.ApplyPatch("g0", randomPatch(rng, g)); err != nil {
		t.Fatal(err)
	}
	e.Close()

	type pair struct{ done, total int }
	var calls []pair
	e2, err := Open(Options{
		Workers:   2,
		StorePath: dir,
		ReplayProgress: func(done, total int) {
			calls = append(calls, pair{done, total})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()

	if len(calls) == 0 {
		t.Fatal("ReplayProgress never called")
	}
	prev := pair{-1, 0}
	for i, c := range calls {
		if c.done < prev.done {
			t.Fatalf("call %d: done went backwards: %+v after %+v", i, c, prev)
		}
		if c.done > c.total {
			t.Fatalf("call %d: done %d exceeds total %d", i, c.done, c.total)
		}
		prev = c
	}
	last := calls[len(calls)-1]
	// 4 WAL ops replayed + 3 surviving graphs registered.
	if last.done != last.total || last.total != 7 {
		t.Fatalf("final progress %+v, want done == total == 7", last)
	}
}
