package engine

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"graphmatch/internal/graph"
	"graphmatch/internal/webgen"
)

// registerArchive registers every version of a small webgen archive
// under "<prefix>/vN" and returns the oldest version's skeleton as a
// query pattern.
func registerArchive(t *testing.T, e *Engine, prefix string, cat webgen.Category, seed int64, pages, versions, patNodes int) *graph.Graph {
	t.Helper()
	arch := webgen.Generate(webgen.Config{Category: cat, Pages: pages, Versions: versions, Seed: seed})
	for v, g := range arch.Versions {
		if err := e.Register(fmt.Sprintf("%s/v%d", prefix, v), g); err != nil {
			t.Fatal(err)
		}
	}
	return webgen.TopKSkeleton(arch.Versions[0], patNodes)
}

func hitNames(res SearchResult) []string {
	out := make([]string, len(res.Hits))
	for i, h := range res.Hits {
		out[i] = h.Graph
	}
	return out
}

// TestSearchEquivalenceQuickCheck is the search-vs-brute-force
// property: over random webgen catalogs, the top-k from the prefiltered
// path must equal an exhaustive scan that matches every registered
// graph — exactly under the no-pruning policy (the prefilter then only
// orders candidates), and on these workloads also under a real pruning
// threshold (pruned graphs score below the survivors).
func TestSearchEquivalenceQuickCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("matcher-heavy quickcheck")
	}
	cats := []webgen.Category{webgen.Store, webgen.Organization, webgen.Newspaper}
	for trial := 0; trial < 3; trial++ {
		e := New(Options{Workers: 4, MaxClosures: 64})
		var patterns []*graph.Graph
		rng := rand.New(rand.NewSource(int64(41 * (trial + 1))))
		sites := 2 + rng.Intn(2)
		for s := 0; s < sites; s++ {
			patterns = append(patterns, registerArchive(t, e,
				fmt.Sprintf("t%d-s%d", trial, s), cats[rng.Intn(len(cats))],
				int64(trial*100+s), 80+rng.Intn(60), 3+rng.Intn(3), 8))
		}
		ctx := context.Background()
		for s, pattern := range patterns {
			for _, algo := range []Algorithm{MaxSim, MaxCard} {
				// K stays within the site's own version count: beyond it
				// the brute-force tail is filled by near-zero-quality
				// graphs the prefilter legitimately pruned.
				base := SearchRequest{Pattern: pattern, Algo: algo, Xi: 0.75, Sim: SimContent, K: 3}

				brute := base
				brute.NoPrefilter = true
				want := e.Search(ctx, brute)
				if want.Err != nil {
					t.Fatal(want.Err)
				}
				if want.Stats.Matched != want.Stats.Graphs {
					t.Fatalf("brute force skipped graphs: %+v", want.Stats)
				}

				exact := base // MinResemblance 0 ⇒ order-only prefilter
				got := e.Search(ctx, exact)
				if got.Err != nil {
					t.Fatal(got.Err)
				}
				if !reflect.DeepEqual(hitNames(got), hitNames(want)) {
					t.Fatalf("trial %d site %d algo %s: exact-policy top-k %v != brute %v",
						trial, s, algo, hitNames(got), hitNames(want))
				}

				pruned := base
				pruned.MinResemblance = 0.1
				got = e.Search(ctx, pruned)
				if got.Err != nil {
					t.Fatal(got.Err)
				}
				if !reflect.DeepEqual(hitNames(got), hitNames(want)) {
					t.Fatalf("trial %d site %d algo %s: pruned top-k %v != brute %v",
						trial, s, algo, hitNames(got), hitNames(want))
				}
				// Repeat the pruned search: the ranking must be stable.
				again := e.Search(ctx, pruned)
				if !reflect.DeepEqual(hitNames(again), hitNames(got)) {
					t.Fatalf("ranking not deterministic: %v then %v", hitNames(got), hitNames(again))
				}
			}
		}
		e.Close()
	}
}

// TestSearchConcurrentChurn runs searches while other goroutines
// register and remove graphs. Under -race this pins the coherence
// contract: no panic, hits only ever name graphs that were registered,
// and a graph removed before the search starts is never returned.
func TestSearchConcurrentChurn(t *testing.T) {
	e := New(Options{Workers: 4})
	defer e.Close()

	stable := registerArchive(t, e, "stable", webgen.Organization, 7, 80, 2, 6)
	// A graph removed before any search starts must never appear.
	gone := webgen.Generate(webgen.Config{Category: webgen.Store, Pages: 60, Versions: 1, Seed: 99}).Versions[0]
	if err := e.Register("gone", gone); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("gone"); err != nil {
		t.Fatal(err)
	}

	churnArch := webgen.Generate(webgen.Config{Category: webgen.Newspaper, Pages: 60, Versions: 1, Seed: 5}).Versions[0]
	const churners = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("churn-%d", c)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Register(name, churnArch)
				_ = e.Remove(name)
			}
		}(c)
	}

	valid := map[string]bool{"stable/v0": true, "stable/v1": true}
	for c := 0; c < churners; c++ {
		valid[fmt.Sprintf("churn-%d", c)] = true
	}
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		res := e.Search(ctx, SearchRequest{Pattern: stable, Algo: MaxSim, Xi: 0.75, Sim: SimContent, K: 10})
		if res.Err != nil {
			t.Fatalf("search %d: %v", i, res.Err)
		}
		for _, h := range res.Hits {
			if h.Graph == "gone" {
				t.Fatal("removed graph returned from search")
			}
			if !valid[h.Graph] {
				t.Fatalf("unknown hit %q", h.Graph)
			}
		}
		if len(res.Hits) == 0 || res.Hits[0].Graph != "stable/v0" {
			t.Fatalf("search %d: stable site not ranked first: %v", i, hitNames(res))
		}
	}
	close(stop)
	wg.Wait()
}

// TestSearchValidation pins the request-level failure modes.
func TestSearchValidation(t *testing.T) {
	e := New(Options{Workers: 2, ExactNodeLimit: 4})
	defer e.Close()
	ctx := context.Background()

	if res := e.Search(ctx, SearchRequest{}); res.Err == nil {
		t.Fatal("nil pattern accepted")
	}
	p := graph.FromEdgeList([]string{"a", "b"}, [][2]int{{0, 1}})
	if res := e.Search(ctx, SearchRequest{Pattern: p, Algo: "bogus"}); res.Err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if res := e.Search(ctx, SearchRequest{Pattern: p, Sim: "bogus"}); res.Err == nil {
		t.Fatal("bogus sim kind accepted")
	}
	big := graph.FromEdgeList([]string{"a", "b", "c", "d", "e"}, nil)
	if res := e.Search(ctx, SearchRequest{Pattern: big, Algo: Decide}); res.Err == nil {
		t.Fatal("oversized exact pattern accepted")
	}

	// An empty catalog searches cleanly to zero hits.
	res := e.Search(ctx, SearchRequest{Pattern: p})
	if res.Err != nil || len(res.Hits) != 0 || res.Stats.Graphs != 0 {
		t.Fatalf("empty-catalog search: %+v", res)
	}
	if got := e.Stats().Searches; got == 0 {
		t.Fatal("searches counter not incremented")
	}
}

// TestSearchRanksByAlgorithmMetric checks the primary rank key follows
// the algorithm: maxsim ranks by qualSim, maxcard by qualCard, and K
// truncates deterministically.
func TestSearchRanksByAlgorithmMetric(t *testing.T) {
	e := New(Options{Workers: 2})
	defer e.Close()

	// One graph equals the pattern; the other shares only half the
	// labels, so its quality is strictly lower under either metric.
	full := graph.FromEdgeList([]string{"a", "b", "c", "d"}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	half := graph.FromEdgeList([]string{"a", "b", "x", "y"}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err := e.Register("full", full); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("half", half); err != nil {
		t.Fatal(err)
	}
	pattern := graph.FromEdgeList([]string{"a", "b", "c", "d"}, [][2]int{{0, 1}, {1, 2}, {2, 3}})

	ctx := context.Background()
	for _, algo := range []Algorithm{MaxSim, MaxCard} {
		res := e.Search(ctx, SearchRequest{Pattern: pattern, Algo: algo, Xi: 1, K: 1})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if len(res.Hits) != 1 || res.Hits[0].Graph != "full" {
			t.Fatalf("algo %s: hits %v", algo, hitNames(res))
		}
		if !res.Hits[0].Holds || res.Hits[0].Score != 1 {
			t.Fatalf("algo %s: hit %+v", algo, res.Hits[0])
		}
	}
}

// TestSearchBruteIgnoresEngineDefaults is the regression for the
// brute-force contract: NoPrefilter must match every registered graph
// even when the engine is configured with aggressive default pruning.
func TestSearchBruteIgnoresEngineDefaults(t *testing.T) {
	e := New(Options{Workers: 2, SearchMaxCandidates: 1, SearchMinResemblance: 0.99})
	defer e.Close()
	for i := 0; i < 4; i++ {
		g := graph.FromEdgeList([]string{fmt.Sprintf("u%d", i), fmt.Sprintf("w%d", i)}, [][2]int{{0, 1}})
		if err := e.Register(fmt.Sprintf("g%d", i), g); err != nil {
			t.Fatal(err)
		}
	}
	pattern := graph.FromEdgeList([]string{"u2", "w2"}, [][2]int{{0, 1}})
	ctx := context.Background()

	brute := e.Search(ctx, SearchRequest{Pattern: pattern, Algo: MaxCard, Xi: 1, NoPrefilter: true})
	if brute.Err != nil {
		t.Fatal(brute.Err)
	}
	if brute.Stats.Matched != 4 || brute.Stats.Pruned != 0 {
		t.Fatalf("brute stats %+v, want all 4 matched", brute.Stats)
	}
	if len(brute.Hits) == 0 || brute.Hits[0].Graph != "g2" {
		t.Fatalf("brute hits %v", hitNames(brute))
	}

	// The default path, by contrast, honours the configured bounds.
	def := e.Search(ctx, SearchRequest{Pattern: pattern, Algo: MaxCard, Xi: 1})
	if def.Err != nil {
		t.Fatal(def.Err)
	}
	if def.Stats.Matched != 1 || def.Stats.Pruned != 3 {
		t.Fatalf("default stats %+v, want 1 matched / 3 pruned", def.Stats)
	}
	if len(def.Hits) != 1 || def.Hits[0].Graph != "g2" {
		t.Fatalf("default hits %v", hitNames(def))
	}
}
