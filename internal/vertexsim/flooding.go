// Package vertexsim implements the vertex-similarity baselines of
// Section 6: Similarity Flooding (Melnik, Garcia-Molina & Rahm [21],
// "SF" in Table 3) and the Blondel et al. hub/authority similarity [6]
// (which the authors also ran and found "similar to SF"). Both compute a
// |V1|×|V2| similarity matrix by fixpoint iteration; an injective
// alignment is then extracted greedily and judged against a threshold.
//
// As the paper argues (Section 2), vertex similarity alone largely
// ignores topology: two sites with most pages pairwise similar but
// different navigational structures still align, and the fixpoint
// computation becomes expensive on large graphs — both effects show up in
// the Table 3 reproduction.
package vertexsim

import (
	"math"
	"sort"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Options configures a fixpoint computation.
type Options struct {
	// MaxIter bounds the number of iterations (default 50).
	MaxIter int
	// Epsilon is the convergence tolerance on the max-norm of the update
	// delta (default 1e-4).
	Epsilon float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-4
	}
	return o
}

// Flood runs Similarity Flooding over the pairwise connectivity graph of
// g1 and g2, seeded with the initial similarity mat. The propagation graph
// connects (v, u) → (v', u') whenever (v, v') ∈ E1 and (u, u') ∈ E2, with
// coefficients split evenly among a pair's out-edges (and symmetrically
// for in-edges, matching Melnik et al.'s undirected propagation). The
// fixpoint formula is the basic variant σ^{k+1} = normalize(σ^0 + σ^k +
// φ(σ^k)). The result is normalised to [0, 1] by its maximum entry.
func Flood(g1, g2 *graph.Graph, mat simmatrix.Matrix, opts Options) *simmatrix.Dense {
	opts = opts.withDefaults()
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	cur := make([]float64, n1*n2)
	init := make([]float64, n1*n2)
	for v := 0; v < n1; v++ {
		for u := 0; u < n2; u++ {
			s := mat.Score(graph.NodeID(v), graph.NodeID(u))
			init[v*n2+u] = s
			cur[v*n2+u] = s
		}
	}
	next := make([]float64, n1*n2)

	for iter := 0; iter < opts.MaxIter; iter++ {
		copy(next, init)
		for i := range next {
			next[i] += cur[i]
		}
		// Propagate along both edge directions; each pair spreads its
		// value evenly over its forward (resp. backward) propagation
		// neighbours.
		for v := 0; v < n1; v++ {
			vv := graph.NodeID(v)
			for u := 0; u < n2; u++ {
				val := cur[v*n2+u]
				if val == 0 {
					continue
				}
				uu := graph.NodeID(u)
				post1, post2 := g1.Post(vv), g2.Post(uu)
				if len(post1) > 0 && len(post2) > 0 {
					w := val / float64(len(post1)*len(post2))
					for _, v2 := range post1 {
						row := int(v2) * n2
						for _, u2 := range post2 {
							next[row+int(u2)] += w
						}
					}
				}
				prev1, prev2 := g1.Prev(vv), g2.Prev(uu)
				if len(prev1) > 0 && len(prev2) > 0 {
					w := val / float64(len(prev1)*len(prev2))
					for _, v0 := range prev1 {
						row := int(v0) * n2
						for _, u0 := range prev2 {
							next[row+int(u0)] += w
						}
					}
				}
			}
		}
		// Normalise by the maximum entry.
		maxVal := 0.0
		for _, x := range next {
			if x > maxVal {
				maxVal = x
			}
		}
		if maxVal > 0 {
			inv := 1 / maxVal
			for i := range next {
				next[i] *= inv
			}
		}
		// Convergence check.
		delta := 0.0
		for i := range next {
			if d := math.Abs(next[i] - cur[i]); d > delta {
				delta = d
			}
		}
		cur, next = next, cur
		if delta < opts.Epsilon {
			break
		}
	}

	out := simmatrix.NewDense(n1, n2)
	for v := 0; v < n1; v++ {
		for u := 0; u < n2; u++ {
			out.Set(graph.NodeID(v), graph.NodeID(u), cur[v*n2+u])
		}
	}
	return out
}

// Blondel computes the Blondel et al. similarity matrix: the limit of
// S ← A·S·Bᵀ + Aᵀ·S·B (rows over V1, columns over V2), normalised each
// step, evaluated at an even iteration as the paper's construction
// requires. The seed is the all-ones matrix.
func Blondel(g1, g2 *graph.Graph, opts Options) *simmatrix.Dense {
	opts = opts.withDefaults()
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	cur := make([]float64, n1*n2)
	for i := range cur {
		cur[i] = 1
	}
	next := make([]float64, n1*n2)
	prevEven := append([]float64(nil), cur...)

	step := func() {
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n1; v++ {
			vv := graph.NodeID(v)
			for u := 0; u < n2; u++ {
				uu := graph.NodeID(u)
				sum := 0.0
				// (A·S·Bᵀ)[v,u] = Σ_{v→v2, u→u2} S[v2,u2]
				for _, v2 := range g1.Post(vv) {
					row := int(v2) * n2
					for _, u2 := range g2.Post(uu) {
						sum += cur[row+int(u2)]
					}
				}
				// (Aᵀ·S·B)[v,u] = Σ_{v0→v, u0→u} S[v0,u0]
				for _, v0 := range g1.Prev(vv) {
					row := int(v0) * n2
					for _, u0 := range g2.Prev(uu) {
						sum += cur[row+int(u0)]
					}
				}
				next[v*n2+u] = sum
			}
		}
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			inv := 1 / norm
			for i := range next {
				next[i] *= inv
			}
		}
		cur, next = next, cur
	}

	for iter := 1; iter <= opts.MaxIter; iter++ {
		step()
		if iter%2 == 0 {
			delta := 0.0
			for i := range cur {
				if d := math.Abs(cur[i] - prevEven[i]); d > delta {
					delta = d
				}
			}
			copy(prevEven, cur)
			if delta < opts.Epsilon {
				break
			}
		}
	}
	// Normalise to [0, 1] by max entry for thresholding.
	maxVal := 0.0
	for _, x := range prevEven {
		if x > maxVal {
			maxVal = x
		}
	}
	out := simmatrix.NewDense(n1, n2)
	if maxVal == 0 {
		return out
	}
	for v := 0; v < n1; v++ {
		for u := 0; u < n2; u++ {
			out.Set(graph.NodeID(v), graph.NodeID(u), prevEven[v*n2+u]/maxVal)
		}
	}
	return out
}

// Alignment is an injective assignment extracted from a similarity
// matrix.
type Alignment struct {
	Pairs  map[graph.NodeID]graph.NodeID
	Scores map[graph.NodeID]float64
}

// Extract greedily selects the globally best remaining (v, u) entry,
// removing v's row and u's column each time — the standard stable-ish
// alignment used with similarity-flooding matrices.
func Extract(m *simmatrix.Dense) *Alignment {
	type entry struct {
		v, u graph.NodeID
		s    float64
	}
	var entries []entry
	for v := 0; v < m.Rows(); v++ {
		for u := 0; u < m.Cols(); u++ {
			if s := m.Score(graph.NodeID(v), graph.NodeID(u)); s > 0 {
				entries = append(entries, entry{graph.NodeID(v), graph.NodeID(u), s})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].s != entries[j].s {
			return entries[i].s > entries[j].s
		}
		if entries[i].v != entries[j].v {
			return entries[i].v < entries[j].v
		}
		return entries[i].u < entries[j].u
	})
	a := &Alignment{
		Pairs:  make(map[graph.NodeID]graph.NodeID),
		Scores: make(map[graph.NodeID]float64),
	}
	usedU := make(map[graph.NodeID]bool)
	for _, e := range entries {
		if _, ok := a.Pairs[e.v]; ok || usedU[e.u] {
			continue
		}
		a.Pairs[e.v] = e.u
		a.Scores[e.v] = e.s
		usedU[e.u] = true
	}
	return a
}

// Quality reports the fraction of the n1 pattern nodes aligned with a
// score of at least xi — the qualCard-style measure used to decide
// whether SF "matched" a site pair in the Table 3 reproduction.
func (a *Alignment) Quality(n1 int, xi float64) float64 {
	if n1 == 0 {
		return 1
	}
	good := 0
	for _, s := range a.Scores {
		if s >= xi {
			good++
		}
	}
	return float64(good) / float64(n1)
}
