package vertexsim

import (
	"testing"

	"graphmatch/internal/graph"
)

func TestHITSHubAndAuthority(t *testing.T) {
	// Star out: center links to 3 leaves — center is the hub, leaves are
	// authorities.
	g := graph.FromEdgeList([]string{"hub", "l", "l", "l"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}})
	h := ComputeHITS(g, Options{})
	if h.Hub[0] <= h.Hub[1] {
		t.Errorf("center hub %v should beat leaf hub %v", h.Hub[0], h.Hub[1])
	}
	if h.Authority[1] <= h.Authority[0] {
		t.Errorf("leaf authority %v should beat center authority %v", h.Authority[1], h.Authority[0])
	}
}

func TestHITSConvergesOnCycle(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	h := ComputeHITS(g, Options{})
	// Symmetry: all nodes identical by rotation.
	for v := 1; v < 3; v++ {
		if diff := h.Hub[v] - h.Hub[0]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("cycle hub scores should be equal: %v", h.Hub)
		}
	}
}

func TestHITSEmptyGraph(t *testing.T) {
	h := ComputeHITS(graph.New(0), Options{})
	if len(h.Hub) != 0 || len(h.Authority) != 0 {
		t.Fatal("empty graph should yield empty scores")
	}
}

func TestHITSEdgelessGraph(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b"}, nil)
	h := ComputeHITS(g, Options{})
	for v := 0; v < 2; v++ {
		if h.Hub[v] != 0 || h.Authority[v] != 0 {
			t.Errorf("edgeless scores should go to zero, got hub=%v auth=%v", h.Hub[v], h.Authority[v])
		}
	}
}

func TestApplyAsWeights(t *testing.T) {
	g := graph.FromEdgeList([]string{"hub", "l", "l", "l"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}})
	h := ComputeHITS(g, Options{})
	h.ApplyAsWeights(g, 0.1)
	// Every weight in (0, 1]; the most important node weighs 1.
	maxW := 0.0
	for v := 0; v < 4; v++ {
		w := g.Weight(graph.NodeID(v))
		if w <= 0 || w > 1 {
			t.Fatalf("weight out of range: %v", w)
		}
		if w > maxW {
			maxW = w
		}
		if w < 0.1 {
			t.Fatalf("weight below floor: %v", w)
		}
	}
	if maxW != 1 {
		t.Fatalf("max weight = %v, want 1", maxW)
	}
}

func TestApplyAsWeightsEdgeless(t *testing.T) {
	g := graph.FromEdgeList([]string{"a"}, nil)
	h := ComputeHITS(g, Options{})
	h.ApplyAsWeights(g, 0.1) // must not panic or divide by zero
	if g.Weight(0) != 1 {
		t.Fatalf("edgeless weight should stay at default 1, got %v", g.Weight(0))
	}
}
