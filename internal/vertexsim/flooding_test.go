package vertexsim

import (
	"math/rand"
	"testing"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func TestFloodIdenticalGraphs(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	m := Flood(g, g, simmatrix.NewLabelEquality(g, g), Options{})
	// The diagonal should dominate its row: node i is most similar to i.
	for v := 0; v < 3; v++ {
		diag := m.Score(graph.NodeID(v), graph.NodeID(v))
		for u := 0; u < 3; u++ {
			if u == v {
				continue
			}
			if m.Score(graph.NodeID(v), graph.NodeID(u)) > diag {
				t.Errorf("node %d: off-diagonal %d beats diagonal (%v > %v)",
					v, u, m.Score(graph.NodeID(v), graph.NodeID(u)), diag)
			}
		}
	}
}

func TestFloodScoresBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func(n int) *graph.Graph {
		g := graph.New(n)
		for i := 0; i < n; i++ {
			g.AddNode("x")
		}
		for i := 0; i < n*2; i++ {
			g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g.Finish()
		return g
	}
	g1, g2 := mk(8), mk(10)
	m := Flood(g1, g2, simmatrix.Constant(0.5), Options{MaxIter: 20})
	for v := 0; v < 8; v++ {
		for u := 0; u < 10; u++ {
			s := m.Score(graph.NodeID(v), graph.NodeID(u))
			if s < 0 || s > 1+1e-9 {
				t.Fatalf("score out of range: %v", s)
			}
		}
	}
}

func TestFloodZeroSeedStaysZero(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a"}, nil)
	g2 := graph.FromEdgeList([]string{"b"}, nil)
	m := Flood(g1, g2, simmatrix.Constant(0), Options{})
	if m.Score(0, 0) != 0 {
		t.Fatal("zero seed with no propagation should stay zero")
	}
}

func TestBlondelIdenticalGraphs(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c", "d"},
		[][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	m := Blondel(g, g, Options{})
	for v := 0; v < 4; v++ {
		diag := m.Score(graph.NodeID(v), graph.NodeID(v))
		for u := 0; u < 4; u++ {
			if m.Score(graph.NodeID(v), graph.NodeID(u)) > diag+1e-9 {
				t.Errorf("node %d: off-diagonal %d beats diagonal", v, u)
			}
		}
	}
}

func TestBlondelHubAuthorityStructure(t *testing.T) {
	// Hub-and-spoke vs chain: a hub (out-degree 3) should be more similar
	// to the other graph's hub than to its leaves.
	hub := graph.FromEdgeList([]string{"h", "l", "l", "l"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}})
	hub2 := graph.FromEdgeList([]string{"h", "l", "l"},
		[][2]int{{0, 1}, {0, 2}})
	m := Blondel(hub, hub2, Options{})
	hubScore := m.Score(0, 0)
	leafScore := m.Score(0, 1)
	if hubScore <= leafScore {
		t.Fatalf("hub-hub %v should beat hub-leaf %v", hubScore, leafScore)
	}
}

func TestExtractInjective(t *testing.T) {
	d := simmatrix.NewDense(3, 2)
	d.Set(0, 0, 0.9)
	d.Set(1, 0, 0.8) // loses node 0 of G2 to row 0
	d.Set(1, 1, 0.5)
	d.Set(2, 1, 0.4) // loses node 1 of G2 to row 1
	a := Extract(d)
	if len(a.Pairs) != 2 {
		t.Fatalf("pairs = %v, want 2 entries", a.Pairs)
	}
	if a.Pairs[0] != 0 || a.Pairs[1] != 1 {
		t.Fatalf("pairs = %v, want 0→0, 1→1", a.Pairs)
	}
}

func TestExtractGreedyOrder(t *testing.T) {
	d := simmatrix.NewDense(2, 2)
	d.Set(0, 0, 0.5)
	d.Set(0, 1, 0.9)
	d.Set(1, 1, 0.8)
	a := Extract(d)
	// Global best 0→1 (0.9) first; then 1 must take... nothing (1,0)=0.
	if a.Pairs[0] != 1 {
		t.Fatalf("expected 0→1, got %v", a.Pairs)
	}
	if _, ok := a.Pairs[1]; ok {
		t.Fatalf("node 1 has no remaining candidate, got %v", a.Pairs)
	}
}

func TestAlignmentQuality(t *testing.T) {
	a := &Alignment{
		Pairs:  map[graph.NodeID]graph.NodeID{0: 0, 1: 1},
		Scores: map[graph.NodeID]float64{0: 0.9, 1: 0.3},
	}
	if got := a.Quality(4, 0.5); got != 0.25 {
		t.Fatalf("quality = %v, want 0.25 (1 of 4 above threshold)", got)
	}
	if got := a.Quality(0, 0.5); got != 1 {
		t.Fatalf("quality of empty pattern = %v, want 1", got)
	}
}

func TestEndToEndSFOnSimilarGraphs(t *testing.T) {
	// Two near-identical labelled graphs: SF should align most nodes to
	// their counterparts.
	g1 := graph.FromEdgeList([]string{"home", "news", "shop", "faq"},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {2, 3}})
	g2 := g1.Clone()
	m := Flood(g1, g2, simmatrix.NewLabelEquality(g1, g2), Options{})
	a := Extract(m)
	for v := graph.NodeID(0); v < 4; v++ {
		if a.Pairs[v] != v {
			t.Fatalf("alignment %v, want identity", a.Pairs)
		}
	}
	if q := a.Quality(4, 0.1); q != 1 {
		t.Fatalf("quality = %v, want 1", q)
	}
}
