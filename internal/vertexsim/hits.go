package vertexsim

import (
	"math"

	"graphmatch/internal/graph"
)

// HITS computes Kleinberg hub and authority scores — the node-importance
// signal Section 3.3 suggests for the qualSim weights w(v) ("whether v is
// a hub, authority, or a node with a high degree") and Section 3.1 names
// as a similarity source [6]. Scores are L2-normalised; iteration stops
// at the tolerance or the iteration cap, whichever first.
type HITS struct {
	Hub       []float64
	Authority []float64
}

// ComputeHITS runs the hub/authority fixpoint on g.
func ComputeHITS(g *graph.Graph, opts Options) *HITS {
	opts = opts.withDefaults()
	n := g.NumNodes()
	h := &HITS{Hub: make([]float64, n), Authority: make([]float64, n)}
	if n == 0 {
		return h
	}
	for i := range h.Hub {
		h.Hub[i] = 1
		h.Authority[i] = 1
	}
	newHub := make([]float64, n)
	newAuth := make([]float64, n)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Authority: sum of hub scores of in-neighbours.
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Prev(graph.NodeID(v)) {
				sum += h.Hub[u]
			}
			newAuth[v] = sum
		}
		// Hub: sum of authority scores of out-neighbours.
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Post(graph.NodeID(v)) {
				sum += newAuth[u]
			}
			newHub[v] = sum
		}
		normalize(newAuth)
		normalize(newHub)
		delta := 0.0
		for v := 0; v < n; v++ {
			if d := math.Abs(newHub[v] - h.Hub[v]); d > delta {
				delta = d
			}
			if d := math.Abs(newAuth[v] - h.Authority[v]); d > delta {
				delta = d
			}
		}
		copy(h.Hub, newHub)
		copy(h.Authority, newAuth)
		if delta < opts.Epsilon {
			break
		}
	}
	return h
}

func normalize(xs []float64) {
	sum := 0.0
	for _, x := range xs {
		sum += x * x
	}
	if sum == 0 {
		return
	}
	inv := 1 / math.Sqrt(sum)
	for i := range xs {
		xs[i] *= inv
	}
}

// ApplyAsWeights sets every node's weight to a blend of its hub and
// authority scores, scaled so the heaviest node weighs 1 and floored at
// minWeight (so unimportant nodes still count toward qualSim's
// denominator). It returns the graph for chaining.
func (h *HITS) ApplyAsWeights(g *graph.Graph, minWeight float64) *graph.Graph {
	if minWeight <= 0 {
		minWeight = 0.05
	}
	maxScore := 0.0
	n := g.NumNodes()
	blend := make([]float64, n)
	for v := 0; v < n; v++ {
		blend[v] = h.Hub[v] + h.Authority[v]
		if blend[v] > maxScore {
			maxScore = blend[v]
		}
	}
	if maxScore == 0 {
		return g
	}
	for v := 0; v < n; v++ {
		w := blend[v] / maxScore
		if w < minWeight {
			w = minWeight
		}
		g.SetWeight(graph.NodeID(v), w)
	}
	return g
}
