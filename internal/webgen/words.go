package webgen

// Word pools for page-content generation, one per site category. Content
// similarity across versions is what drives the shingle-based node
// similarity, so the pools only need to be large enough that rewritten
// pages stop resembling their old selves.

var storeWords = []string{
	"books", "textbooks", "audiobooks", "albums", "music", "digital",
	"cart", "checkout", "shipping", "returns", "bestsellers", "fiction",
	"nonfiction", "children", "science", "history", "biography", "mystery",
	"romance", "fantasy", "paperback", "hardcover", "ebook", "reader",
	"discount", "sale", "price", "order", "wishlist", "review", "rating",
	"author", "publisher", "edition", "series", "boxset", "gift", "card",
	"electronics", "camera", "laptop", "tablet", "phone", "accessory",
	"warranty", "delivery", "stock", "category", "browse", "search",
	"recommendation", "deal", "coupon", "member", "prime", "subscribe",
	"vinyl", "compact", "disc", "movie", "bluray", "stream",
}

var orgWords = []string{
	"charter", "member", "states", "council", "assembly", "resolution",
	"treaty", "secretariat", "committee", "session", "agenda", "report",
	"development", "humanitarian", "peacekeeping", "rights", "health",
	"education", "climate", "sustainable", "goals", "partnership",
	"delegation", "ambassador", "summit", "declaration", "convention",
	"protocol", "ratification", "mandate", "mission", "field", "office",
	"regional", "programme", "fund", "budget", "donor", "grant", "policy",
	"governance", "transparency", "accountability", "statistics", "survey",
	"publication", "library", "archive", "press", "briefing", "statement",
	"speech", "observance", "anniversary", "headquarters", "liaison",
	"refugee", "migration", "disarmament", "security",
}

var newsWords = []string{
	"breaking", "headline", "exclusive", "report", "update", "live",
	"politics", "election", "parliament", "economy", "market", "stocks",
	"business", "technology", "science", "health", "sports", "football",
	"tennis", "olympics", "weather", "forecast", "storm", "culture",
	"cinema", "theatre", "review", "opinion", "editorial", "column",
	"letters", "obituary", "crossword", "puzzle", "photo", "gallery",
	"video", "podcast", "newsletter", "subscription", "archive",
	"correspondent", "bureau", "wire", "agency", "interview", "analysis",
	"investigation", "scandal", "verdict", "trial", "court", "crime",
	"accident", "traffic", "local", "national", "world", "region",
}
