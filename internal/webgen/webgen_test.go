package webgen

import (
	"testing"

	"graphmatch/internal/core"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func TestGenerateArchiveShape(t *testing.T) {
	arch := Generate(Config{Category: Store, Pages: 500, Versions: 11, Seed: 1})
	if len(arch.Versions) != 11 {
		t.Fatalf("versions = %d, want 11", len(arch.Versions))
	}
	for i, g := range arch.Versions {
		if g.NumNodes() < 400 {
			t.Fatalf("version %d has %d nodes, want ≈ 500", i, g.NumNodes())
		}
		if g.NumEdges() == 0 {
			t.Fatalf("version %d has no edges", i)
		}
	}
}

func TestDefaultVersions(t *testing.T) {
	arch := Generate(Config{Category: Organization, Pages: 200, Seed: 2})
	if len(arch.Versions) != 11 {
		t.Fatalf("default versions = %d, want 11", len(arch.Versions))
	}
}

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Category: Newspaper, Pages: 300, Versions: 3, Seed: 5})
	b := Generate(Config{Category: Newspaper, Pages: 300, Versions: 3, Seed: 5})
	for i := range a.Versions {
		if !graph.Equal(a.Versions[i], b.Versions[i]) {
			t.Fatalf("version %d differs across equal seeds", i)
		}
	}
}

func TestVersionsEvolve(t *testing.T) {
	arch := Generate(Config{Category: Newspaper, Pages: 300, Versions: 5, Seed: 7})
	if graph.Equal(arch.Versions[0], arch.Versions[4]) {
		t.Fatal("a newspaper site should change across versions")
	}
}

func TestHubStructure(t *testing.T) {
	arch := Generate(Config{Category: Store, Pages: 500, Versions: 1, Seed: 3})
	g := arch.Versions[0]
	home := g.FindLabel("/")
	if home == graph.Invalid {
		t.Fatal("homepage missing")
	}
	st := graph.ComputeStats(g)
	if float64(g.Degree(home)) < st.AvgDeg {
		t.Fatalf("homepage degree %d should exceed the average %.2f", g.Degree(home), st.AvgDeg)
	}
	// Section hubs carry far more degree than the average page.
	sec := g.FindLabel("/section-0/")
	if sec == graph.Invalid {
		t.Fatal("section hub missing")
	}
	if float64(g.Degree(sec)) < 3*st.AvgDeg {
		t.Fatalf("section degree %d should dominate the average %.2f", g.Degree(sec), st.AvgDeg)
	}
}

func TestSkeletonExtractsHubs(t *testing.T) {
	arch := Generate(Config{Category: Store, Pages: 800, Versions: 1, Seed: 9})
	g := arch.Versions[0]
	sk := Skeleton(g, 0.2)
	if sk.NumNodes() == 0 || sk.NumNodes() >= g.NumNodes()/2 {
		t.Fatalf("skeleton size %d of %d looks wrong", sk.NumNodes(), g.NumNodes())
	}
	// Skeletons must contain edges (hub mesh survives induction).
	if sk.NumEdges() == 0 {
		t.Fatal("skeleton has no edges")
	}
}

func TestTopKSkeleton(t *testing.T) {
	arch := Generate(Config{Category: Organization, Pages: 300, Versions: 1, Seed: 4})
	sk := TopKSkeleton(arch.Versions[0], 20)
	if sk.NumNodes() != 20 {
		t.Fatalf("top-20 skeleton has %d nodes", sk.NumNodes())
	}
}

func TestContentAttachedEverywhere(t *testing.T) {
	arch := Generate(Config{Category: Newspaper, Pages: 200, Versions: 1, Seed: 6})
	g := arch.Versions[0]
	for v := 0; v < g.NumNodes(); v++ {
		if g.Content(graph.NodeID(v)) == "" {
			t.Fatalf("node %d has no content", v)
		}
	}
}

func TestVersionsOfSameSiteMatch(t *testing.T) {
	// End-to-end mirror check: consecutive versions of a low-churn site
	// should p-hom match on their skeletons at the paper's 0.75 bar.
	arch := Generate(Config{Category: Organization, Pages: 400, Versions: 3, Seed: 11})
	pattern := Skeleton(arch.Versions[0], 0.2)
	data := Skeleton(arch.Versions[1], 0.2)
	mat := simmatrix.FromContent(pattern, data, 4)
	in := core.NewInstance(pattern, data, mat, 0.75)
	m := in.CompMaxCard()
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatal(err)
	}
	if q := in.QualCard(m); q < 0.75 {
		t.Fatalf("adjacent organization versions should match, qualCard = %v", q)
	}
}

func TestNewspaperDriftsFasterThanOrganization(t *testing.T) {
	// The category profiles must produce the paper's ordering: the
	// newspaper's later versions resemble the pattern less than the
	// organization's.
	quality := func(cat Category, pages int) float64 {
		arch := Generate(Config{Category: cat, Pages: pages, Versions: 11, Seed: 13})
		pattern := Skeleton(arch.Versions[0], 0.2)
		data := Skeleton(arch.Versions[10], 0.2)
		mat := simmatrix.FromContent(pattern, data, 4)
		in := core.NewInstance(pattern, data, mat, 0.75)
		return in.QualCard(in.CompMaxCard())
	}
	org := quality(Organization, 400)
	news := quality(Newspaper, 400)
	if org <= news {
		t.Fatalf("organization quality %v should exceed newspaper %v", org, news)
	}
}

func TestCategoryString(t *testing.T) {
	if Store.String() != "store" || Organization.String() != "organization" || Newspaper.String() != "newspaper" {
		t.Error("category names wrong")
	}
	if Category(0).String() == "" {
		t.Error("unknown category should still render")
	}
}
