// Package webgen generates Web-site archives standing in for the Stanford
// WebBase data of Section 6 (1). The paper's Exp-1 needs, per site
// category, a sequence of versions (snapshots) of one Web site whose
// members are known to represent the same site; it then matches the oldest
// version's skeleton against the ten later ones.
//
// Three categories mirror the paper's choices — online store, international
// organization and online newspaper — differing in size, link density and,
// crucially, churn: newspapers change content and structure rapidly
// ("a typical feature of site 3 is its timeliness"), so later versions
// drift away from the pattern faster; organizations barely change.
//
// A generated site is hierarchical, like real sites: a homepage links to
// category hubs, categories fan out to section pages, sections mesh with
// each other and fan out to leaf pages, leaf pages carry navigation
// backlinks, and a sitemap page links deep into the leaves (providing the
// degree maximum real crawls show). Under the degree-based skeleton rule
// deg(v) ≥ avgDeg + α·maxDeg the sections (plus homepage and sitemap)
// survive, reproducing Table 2's skeleton shapes: a few dozen to a few
// hundred interlinked hub pages. Every page carries generated text content
// so node similarity can be computed with shingles, exactly as in the
// paper.
package webgen

import (
	"fmt"
	"math/rand"
	"sort"

	"graphmatch/internal/graph"
)

// Category selects a site profile.
type Category int

// The three Web-site categories of Table 2.
const (
	Store        Category = iota + 1 // site 1: online store
	Organization                     // site 2: international organization
	Newspaper                        // site 3: online newspaper
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Store:
		return "store"
	case Organization:
		return "organization"
	case Newspaper:
		return "newspaper"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Config parameterises an archive.
type Config struct {
	Category Category
	// Pages approximates the page count of each version (default:
	// category profile, which matches Table 2's site sizes).
	Pages int
	// Versions is the archive length (default 11, as in the paper).
	Versions int
	// Seed drives all randomness.
	Seed int64
}

// profile bundles the category-specific generation knobs. The defaults
// are tuned so that full-scale sites reproduce Table 2's statistics in
// magnitude (page/edge counts, degree shape, skeleton sizes).
type profile struct {
	pages           int     // default page count (Table 2 site size)
	sectionsPer     int     // leaf pages per section hub
	categories      int     // category hubs under the homepage
	meshDegree      int     // extra links between section hubs
	backlinkRate    float64 // leaf → its section navigation links
	homeRate        float64 // leaf → homepage links
	crossRate       float64 // leaf → leaf links within a section
	sitemapLinks    int     // sitemap out-degree (sets maxDeg)
	catFanout       int     // category → featured-leaf links (stabilises top-K)
	structChurn     float64 // per-version fraction of leaves replaced
	rewireChurn     float64 // per-version fraction of hub links rewired
	contentChurn    float64 // per-version fraction of leaf pages rewritten
	hubContentChurn float64 // per-version fraction of hub pages rewritten
	words           []string
	wordsPerPage    int
}

func profileFor(c Category) profile {
	switch c {
	case Store:
		return profile{
			pages: 20000, sectionsPer: 80, categories: 15, meshDegree: 52,
			backlinkRate: 0.25, homeRate: 0.005, crossRate: 0.9,
			sitemapLinks: 510, catFanout: 400,
			structChurn: 0.04, rewireChurn: 0.05,
			contentChurn: 0.05, hubContentChurn: 0.033,
			words:        storeWords,
			wordsPerPage: 40,
		}
	case Organization:
		return profile{
			pages: 5400, sectionsPer: 120, categories: 4, meshDegree: 5,
			backlinkRate: 0.6, homeRate: 0.005, crossRate: 4.0,
			sitemapLinks: 640,
			structChurn:  0.01, rewireChurn: 0.01,
			contentChurn: 0.02, hubContentChurn: 0.008,
			words:        orgWords,
			wordsPerPage: 50,
		}
	case Newspaper:
		return profile{
			pages: 7000, sectionsPer: 45, categories: 10, meshDegree: 38,
			backlinkRate: 0.6, homeRate: 0.005, crossRate: 0.8,
			sitemapLinks: 420, catFanout: 250,
			structChurn: 0.12, rewireChurn: 0.15,
			contentChurn: 0.30, hubContentChurn: 0.050,
			words:        newsWords,
			wordsPerPage: 40,
		}
	default:
		return profile{
			pages: 500, sectionsPer: 50, categories: 4, meshDegree: 8,
			backlinkRate: 0.3, homeRate: 0.005, crossRate: 1.0,
			sitemapLinks: 60,
			structChurn:  0.05, rewireChurn: 0.05,
			contentChurn: 0.05, hubContentChurn: 0.05,
			words:        storeWords,
			wordsPerPage: 40,
		}
	}
}

// Archive is a sequence of site versions, oldest first.
type Archive struct {
	Config   Config
	Versions []*graph.Graph
}

// Generate builds an archive of site versions.
func Generate(cfg Config) *Archive {
	if cfg.Versions == 0 {
		cfg.Versions = 11
	}
	p := profileFor(cfg.Category)
	if cfg.Pages > 0 {
		p.pages = cfg.Pages
	}
	s := newSite(p, cfg.Seed)
	arch := &Archive{Config: cfg}
	for v := 0; v < cfg.Versions; v++ {
		if v > 0 {
			s.evolve()
		}
		arch.Versions = append(arch.Versions, s.snapshot())
	}
	return arch
}

// pageKind distinguishes the structural roles in the site hierarchy.
type pageKind int

const (
	kindHome pageKind = iota
	kindCategory
	kindSection
	kindSitemap
	kindLeaf
)

type page struct {
	label   string
	kind    pageKind
	section int
	content string
}

// site is the mutable model a version sequence evolves over. Pages keep
// their identity (index) across versions so content stays comparable.
type site struct {
	p        profile
	rng      *rand.Rand
	pages    []page
	alive    []bool
	out      []map[int]struct{}
	home     int
	sitemap  int
	cats     []int
	sections []int
	// secWeight skews leaf placement: popular sections stay popular, so
	// the top-K-by-degree skeleton keeps a stable membership across
	// versions (as it does on real sites, where a few sections dominate).
	secWeight []float64
	secCum    []float64 // cumulative weights for sampling
	// leavesBySection supports sampling same-section cross links; dead
	// leaves are skipped at sampling time.
	leavesBySection [][]int
	serial          int // fresh-page counter for unique labels
}

// pickSection samples a section index proportionally to its weight.
func (s *site) pickSection() int {
	x := s.rng.Float64() * s.secCum[len(s.secCum)-1]
	lo, hi := 0, len(s.secCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.secCum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func newSite(p profile, seed int64) *site {
	s := &site{p: p, rng: rand.New(rand.NewSource(seed))}
	numSections := p.pages / p.sectionsPer
	if numSections < 2 {
		numSections = 2
	}
	numCats := p.categories
	if numCats < 1 {
		numCats = 1
	}
	if numCats > numSections {
		numCats = numSections
	}

	s.home = s.addPage(kindHome, 0)
	cats := make([]int, numCats)
	for i := range cats {
		cats[i] = s.addPage(kindCategory, i)
		s.link(s.home, cats[i])
		s.link(cats[i], s.home)
	}
	s.cats = cats
	s.sections = make([]int, numSections)
	s.leavesBySection = make([][]int, numSections)
	s.secWeight = make([]float64, numSections)
	s.secCum = make([]float64, numSections)
	cum := 0.0
	for i := range s.sections {
		s.sections[i] = s.addPage(kindSection, i)
		cat := cats[i%numCats]
		s.link(cat, s.sections[i])
		s.link(s.sections[i], cat)
		// Section popularity is skewed — a few sections dominate, as on
		// real sites — with a deterministic rank component that keeps the
		// top-of-the-order stable across versions. The spread stays mild
		// enough that every section clears the α-skeleton threshold with
		// margin (membership flapping would otherwise dominate matching
		// error).
		s.secWeight[i] = (0.7 + 0.6*s.rng.Float64()) * (1 + 2/float64(i+1))
		cum += s.secWeight[i]
		s.secCum[i] = cum
	}
	// Hub mesh: related sections link to each other (same category first,
	// some cross-category).
	for i, a := range s.sections {
		for d := 0; d < s.p.meshDegree; d++ {
			var b int
			if d%3 != 2 && numSections > numCats {
				// same-category neighbour
				j := i
				for j == i {
					j = s.rng.Intn(numSections)
				}
				b = s.sections[j]
			} else {
				b = s.sections[s.rng.Intn(numSections)]
			}
			if b != a {
				s.link(a, b)
			}
		}
	}
	// Leaves, placed by section popularity.
	for len(s.pages) < p.pages-1 {
		sec := s.pickSection()
		s.addLeaf(s.sections[sec], sec)
	}
	// Category "featured" fan-out: categories link deep into leaves, as
	// portal pages do. This lifts category degrees well above the section
	// band, so the top-K-by-degree skeleton keeps a stable core (home,
	// sitemap, categories) across versions.
	s.refillFeatured()
	// Sitemap: a deep index page with very high out-degree; it provides
	// the degree maximum that real crawls exhibit (Table 2's maxDeg).
	s.sitemap = s.addPage(kindSitemap, 0)
	s.link(s.home, s.sitemap)
	s.link(s.sitemap, s.home)
	s.refillSitemap()
	return s
}

// refillFeatured keeps every category's featured-leaf fan-out topped up
// to the profile's catFanout (bounded by a tenth of the site), replacing
// links to churned-away leaves.
func (s *site) refillFeatured() {
	want := s.p.catFanout
	if want <= 0 {
		return
	}
	if limit := len(s.pages) / 10; want > limit {
		want = limit
	}
	for _, cat := range s.cats {
		current := 0
		for t := range s.out[cat] {
			if !s.alive[t] {
				delete(s.out[cat], t)
			} else if s.pages[t].kind == kindLeaf {
				current++
			}
		}
		for attempts := 0; current < want && attempts < 20*want; attempts++ {
			t := s.rng.Intn(len(s.pages))
			if s.alive[t] && s.pages[t].kind == kindLeaf {
				if _, dup := s.out[cat][t]; !dup {
					s.link(cat, t)
					current++
				}
			}
		}
	}
}

// refillSitemap tops the sitemap's targets up to the profile's out-degree
// (bounded by an eighth of the site so small test sites stay sane).
func (s *site) refillSitemap() {
	want := s.p.sitemapLinks
	if limit := len(s.pages) / 8; want > limit {
		want = limit
	}
	// Drop links to dead pages first.
	for t := range s.out[s.sitemap] {
		if !s.alive[t] {
			delete(s.out[s.sitemap], t)
		}
	}
	for attempts := 0; len(s.out[s.sitemap]) < want && attempts < 20*want; attempts++ {
		t := s.rng.Intn(len(s.pages))
		if s.alive[t] && s.pages[t].kind == kindLeaf {
			s.link(s.sitemap, t)
		}
	}
}

func (s *site) addPage(kind pageKind, section int) int {
	id := len(s.pages)
	s.serial++
	var label string
	switch kind {
	case kindHome:
		label = "/"
	case kindCategory:
		label = fmt.Sprintf("/cat-%d/", section)
	case kindSection:
		label = fmt.Sprintf("/section-%d/", section)
	case kindSitemap:
		label = "/sitemap"
	default:
		label = fmt.Sprintf("/section-%d/page-%d", section, s.serial)
	}
	s.pages = append(s.pages, page{
		label:   label,
		kind:    kind,
		section: section,
		content: s.generateContent(kind, section),
	})
	s.alive = append(s.alive, true)
	s.out = append(s.out, make(map[int]struct{}))
	return id
}

func (s *site) addLeaf(sectionPage, section int) int {
	id := s.addPage(kindLeaf, section)
	s.link(sectionPage, id)
	if s.rng.Float64() < s.p.backlinkRate {
		s.link(id, sectionPage)
	}
	if s.rng.Float64() < s.p.homeRate {
		s.link(id, s.home)
	}
	// Cross links to other leaves of the same section.
	n := int(s.p.crossRate)
	if s.rng.Float64() < s.p.crossRate-float64(n) {
		n++
	}
	peers := s.leavesBySection[section]
	for i := 0; i < n && len(peers) > 0; i++ {
		for attempt := 0; attempt < 4; attempt++ {
			other := peers[s.rng.Intn(len(peers))]
			if s.alive[other] && other != id {
				s.link(id, other)
				break
			}
		}
	}
	s.leavesBySection[section] = append(peers, id)
	return id
}

func (s *site) link(from, to int) {
	if from != to {
		s.out[from][to] = struct{}{}
	}
}

// generateContent samples wordsPerPage tokens. Leaf pages combine a stable
// section topic with page-specific words. Hub pages (home, categories,
// sections, sitemap) lead with a long site-wide template — real section
// fronts share navigation and boilerplate — so any two hubs of one site
// resemble each other at around 0.4: far below the matching threshold ξ
// (p-hom candidate sets stay clean) but plenty for similarity flooding to
// smear scores across hubs, which is exactly the ambiguity that separates
// the two methods on large skeletons.
func (s *site) generateContent(kind pageKind, section int) string {
	pool := s.p.words
	w := s.p.wordsPerPage
	buf := make([]byte, 0, w*8)
	emit := func(word string) {
		if len(buf) > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, word...)
	}
	if kind == kindLeaf {
		topicStart := (section * 7) % len(pool)
		for i := 0; i < w/2; i++ {
			emit(pool[(topicStart+i)%len(pool)])
		}
		for i := 0; i < w-w/2; i++ {
			emit(pool[s.rng.Intn(len(pool))])
		}
		return string(buf)
	}
	// Hub page: 60% site template, 20% section topic, 20% page-specific.
	template := (3 * w) / 5
	topic := w / 5
	for i := 0; i < template; i++ {
		emit(pool[i%len(pool)])
	}
	topicStart := (section*7 + 13) % len(pool)
	for i := 0; i < topic; i++ {
		emit(pool[(topicStart+i)%len(pool)])
	}
	for i := 0; i < w-template-topic; i++ {
		emit(pool[s.rng.Intn(len(pool))])
	}
	return string(buf)
}

// evolve advances the site by one archive step: leaves churn, hub links
// rewire, some pages are rewritten, and the sitemap heals.
func (s *site) evolve() {
	var leaves []int
	for id := range s.pages {
		if s.alive[id] && s.pages[id].kind == kindLeaf {
			leaves = append(leaves, id)
		}
	}
	// Structural churn: replace a fraction of the leaves.
	churn := int(float64(len(leaves)) * s.p.structChurn)
	for i := 0; i < churn; i++ {
		victim := leaves[s.rng.Intn(len(leaves))]
		if s.alive[victim] {
			s.alive[victim] = false
		}
		si := s.pickSection()
		s.addLeaf(s.sections[si], s.pages[s.sections[si]].section)
	}
	// Rewire churn on the hub mesh. Collect targets in sorted order first:
	// map iteration order is random and would consume the RNG
	// nondeterministically.
	for _, a := range s.sections {
		targets := make([]int, 0, len(s.out[a]))
		for b := range s.out[a] {
			if s.alive[b] && s.pages[b].kind == kindSection {
				targets = append(targets, b)
			}
		}
		sort.Ints(targets)
		for _, b := range targets {
			if s.rng.Float64() < s.p.rewireChurn {
				delete(s.out[a], b)
				nb := s.sections[s.rng.Intn(len(s.sections))]
				s.link(a, nb)
			}
		}
	}
	// Content churn: rewrite whole pages so their shingle sets diverge.
	// Hubs (which dominate the skeletons) churn at their own, usually
	// slower, rate — section fronts change less than leaf articles.
	for id := range s.pages {
		if !s.alive[id] {
			continue
		}
		rate := s.p.contentChurn
		if s.pages[id].kind != kindLeaf {
			rate = s.p.hubContentChurn
		}
		if s.rng.Float64() < rate {
			s.pages[id].content = s.generateContent(s.pages[id].kind, s.pages[id].section)
		}
	}
	s.refillFeatured()
	s.refillSitemap()
}

// snapshot freezes the current site state into a graph. Page order is by
// internal id, so node IDs are stable for surviving pages within one
// archive (new pages get fresh labels).
func (s *site) snapshot() *graph.Graph {
	idOf := make(map[int]graph.NodeID, len(s.pages))
	g := graph.New(len(s.pages))
	for id := range s.pages {
		if !s.alive[id] {
			continue
		}
		nid := g.AddNodeFull(graph.Node{
			Label:   s.pages[id].label,
			Weight:  1,
			Content: s.pages[id].content,
		})
		idOf[id] = nid
	}
	for from := range s.pages {
		nf, ok := idOf[from]
		if !ok {
			continue
		}
		for to := range s.out[from] {
			if nt, ok := idOf[to]; ok {
				g.AddEdge(nf, nt)
			}
		}
	}
	g.Finish()
	return g
}

// Skeleton extracts the α-degree skeleton of Section 6 as an induced
// subgraph: nodes with deg(v) ≥ avgDeg(G) + α·maxDeg(G).
func Skeleton(g *graph.Graph, alpha float64) *graph.Graph {
	sub, _ := g.InducedSubgraph(graph.DegreeSkeleton(g, alpha))
	return sub
}

// TopKSkeleton extracts the induced subgraph on the k highest-degree
// nodes — "skeletons 2" of Table 2, constructed to favour cdkMCS.
func TopKSkeleton(g *graph.Graph, k int) *graph.Graph {
	sub, _ := g.InducedSubgraph(graph.TopKByDegree(g, k))
	return sub
}
