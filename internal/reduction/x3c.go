package reduction

import (
	"fmt"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// X3C is an exact-cover-by-3-sets instance: a universe of 3q elements
// (0..3q-1) and a collection of 3-element subsets. The question is whether
// some sub-collection partitions the universe.
type X3C struct {
	Q       int      // universe size is 3·Q
	Subsets [][3]int // each subset lists three distinct elements
}

// Validate checks element ranges and distinctness within subsets.
func (x *X3C) Validate() error {
	for si, s := range x.Subsets {
		seen := map[int]bool{}
		for _, e := range s {
			if e < 0 || e >= 3*x.Q {
				return fmt.Errorf("reduction: subset %d: element %d out of range [0,%d)", si, e, 3*x.Q)
			}
			if seen[e] {
				return fmt.Errorf("reduction: subset %d repeats element %d", si, e)
			}
			seen[e] = true
		}
	}
	return nil
}

// IsCover reports whether the chosen subset indices form an exact cover.
func (x *X3C) IsCover(chosen []int) bool {
	if len(chosen) != x.Q {
		return false
	}
	covered := make([]bool, 3*x.Q)
	for _, si := range chosen {
		if si < 0 || si >= len(x.Subsets) {
			return false
		}
		for _, e := range x.Subsets[si] {
			if covered[e] {
				return false
			}
			covered[e] = true
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// Solve searches for an exact cover by backtracking on the first
// uncovered element. It returns the chosen subset indices and true, or
// nil and false.
func (x *X3C) Solve() ([]int, bool) {
	covered := make([]bool, 3*x.Q)
	// byElement[e] lists subsets containing e.
	byElement := make([][]int, 3*x.Q)
	for si, s := range x.Subsets {
		for _, e := range s {
			byElement[e] = append(byElement[e], si)
		}
	}
	var chosen []int
	var try func() bool
	try = func() bool {
		first := -1
		for e, c := range covered {
			if !c {
				first = e
				break
			}
		}
		if first == -1 {
			return true
		}
		for _, si := range byElement[first] {
			ok := true
			for _, e := range x.Subsets[si] {
				if covered[e] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, e := range x.Subsets[si] {
				covered[e] = true
			}
			chosen = append(chosen, si)
			if try() {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			for _, e := range x.Subsets[si] {
				covered[e] = false
			}
		}
		return false
	}
	if try() {
		return chosen, true
	}
	return nil, false
}

// X3CReduction is the Fig. 8 construction: G1 is a tree (root, q slot
// nodes, 3 element slots each), G2 a DAG (root, one node per subset, one
// node per universe element). An exact cover exists iff G1 ≼1-1(e,p) G2
// with ξ = 1.
type X3CReduction struct {
	PHomInstance
	Instance *X3C
	SlotNode []graph.NodeID       // G1 node C'_i
	SubsetOf map[graph.NodeID]int // G2 subset node → subset index
}

// FromX3C constructs the reduction; it returns an error when the instance
// is malformed.
func FromX3C(x *X3C) (*X3CReduction, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	q, n := x.Q, len(x.Subsets)

	// G1: R1 → C'_i → {X'_i1, X'_i2, X'_i3} — a tree with q slots.
	g1 := graph.New(1 + 4*q)
	r1 := g1.AddNode("R1")
	slotNode := make([]graph.NodeID, q)
	for i := 0; i < q; i++ {
		slotNode[i] = g1.AddNode(fmt.Sprintf("C'%d", i))
		g1.AddEdge(r1, slotNode[i])
		for k := 0; k < 3; k++ {
			leaf := g1.AddNode(fmt.Sprintf("X'%d_%d", i, k))
			g1.AddEdge(slotNode[i], leaf)
		}
	}
	g1.Finish()

	// G2: R2 → C_i → its three elements.
	g2 := graph.New(1 + n + 3*q)
	r2 := g2.AddNode("R2")
	elementNode := make([]graph.NodeID, 3*q)
	for e := 0; e < 3*q; e++ {
		elementNode[e] = g2.AddNode(fmt.Sprintf("x%d", e))
	}
	subsetOf := make(map[graph.NodeID]int, n)
	subsetNode := make([]graph.NodeID, n)
	for si, s := range x.Subsets {
		subsetNode[si] = g2.AddNode(fmt.Sprintf("C%d", si))
		subsetOf[subsetNode[si]] = si
		g2.AddEdge(r2, subsetNode[si])
		for _, e := range s {
			g2.AddEdge(subsetNode[si], elementNode[e])
		}
	}
	g2.Finish()

	// mat: roots pair; slots pair with every subset node; element slots
	// pair with every element node.
	mat := simmatrix.NewSparse()
	mat.Set(r1, r2, 1)
	for i := 0; i < q; i++ {
		for si := 0; si < n; si++ {
			mat.Set(slotNode[i], subsetNode[si], 1)
		}
		for k := 0; k < 3; k++ {
			leaf := slotNode[i] + graph.NodeID(k) + 1
			for e := 0; e < 3*q; e++ {
				mat.Set(leaf, elementNode[e], 1)
			}
		}
	}

	return &X3CReduction{
		PHomInstance: PHomInstance{G1: g1, G2: g2, Mat: mat, Xi: 1},
		Instance:     x,
		SlotNode:     slotNode,
		SubsetOf:     subsetOf,
	}, nil
}

// CoverFromMapping decodes a 1-1 p-hom witness into the chosen subsets.
func (r *X3CReduction) CoverFromMapping(m map[graph.NodeID]graph.NodeID) []int {
	var out []int
	for _, slot := range r.SlotNode {
		if img, ok := m[slot]; ok {
			if si, ok := r.SubsetOf[img]; ok {
				out = append(out, si)
			}
		}
	}
	return out
}
