package reduction

import (
	"fmt"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
	"graphmatch/internal/wis"
)

// WISReduction is the Theorem 4.3 construction (f, g) from maximum
// weighted independent set to SPH: G1 carries the WIS graph's nodes and
// (arbitrarily oriented) edges with their weights, G2 carries the same
// nodes but no edges at all, and mat pairs each node only with its own
// copy. Any p-hom mapping's domain must then be an independent set of the
// original graph — an edge inside the domain would demand a path in the
// edgeless G2 — and its qualSim numerator equals the set's weight. The
// construction shows the optimisation problems inherit WIS's
// O(1/n^(1−ε)) inapproximability.
type WISReduction struct {
	PHomInstance
	Source *wis.Graph
}

// FromWIS builds the reduction instance.
func FromWIS(g *wis.Graph) *WISReduction {
	n := g.N()
	g1 := graph.New(n)
	g2 := graph.New(n)
	for v := 0; v < n; v++ {
		label := fmt.Sprintf("v%d", v)
		id := g1.AddNode(label)
		g1.SetWeight(id, g.Weight(v))
		g2.AddNode(label)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				g1.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g1.Finish()
	g2.Finish()

	mat := simmatrix.NewSparse()
	for v := 0; v < n; v++ {
		mat.Set(graph.NodeID(v), graph.NodeID(v), 1)
	}
	return &WISReduction{
		PHomInstance: PHomInstance{G1: g1, G2: g2, Mat: mat, Xi: 1},
		Source:       g,
	}
}

// SetFromMapping is the g direction: the domain of any p-hom mapping is an
// independent set of the source graph.
func (r *WISReduction) SetFromMapping(m map[graph.NodeID]graph.NodeID) []int {
	out := make([]int, 0, len(m))
	for v := range m {
		out = append(out, int(v))
	}
	return out
}

// MappingFromSet is the inverse: an independent set yields the identity
// mapping on its members.
func (r *WISReduction) MappingFromSet(set []int) map[graph.NodeID]graph.NodeID {
	m := make(map[graph.NodeID]graph.NodeID, len(set))
	for _, v := range set {
		m[graph.NodeID(v)] = graph.NodeID(v)
	}
	return m
}
