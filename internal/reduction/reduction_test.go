package reduction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphmatch/internal/core"
	"graphmatch/internal/wis"
)

func instance(r PHomInstance) *core.Instance {
	return core.NewInstance(r.G1, r.G2, r.Mat, r.Xi)
}

// --- 3SAT ---

func lit(v int) Literal    { return Literal{Var: v} }
func negLit(v int) Literal { return Literal{Var: v, Neg: true} }

// paperFormula is the running example of the Theorem 4.1(a) proof:
// φ = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x2 ∨ x3 ∨ x4) — satisfiable.
// (0-based: x0..x3.)
func paperFormula() *ThreeSAT {
	return &ThreeSAT{
		NumVars: 4,
		Clauses: []Clause{
			{lit(0), negLit(1), lit(2)},
			{negLit(1), lit(2), lit(3)},
		},
	}
}

func TestThreeSATSolve(t *testing.T) {
	f := paperFormula()
	a, ok := f.Solve()
	if !ok {
		t.Fatal("paper formula is satisfiable")
	}
	if !f.Evaluate(a) {
		t.Fatal("returned assignment does not satisfy")
	}
	// x ∧ ¬x (padded to three distinct vars) is unsatisfiable.
	unsat := &ThreeSAT{
		NumVars: 3,
		Clauses: []Clause{
			{lit(0), lit(0 + 1), lit(2)},
		},
	}
	// Build a genuinely unsatisfiable instance: all 8 sign patterns over
	// three variables — every assignment falsifies one clause.
	unsat.Clauses = nil
	for mask := 0; mask < 8; mask++ {
		var c Clause
		for k := 0; k < 3; k++ {
			c[k] = Literal{Var: k, Neg: mask&(1<<k) != 0}
		}
		unsat.Clauses = append(unsat.Clauses, c)
	}
	if _, ok := unsat.Solve(); ok {
		t.Fatal("all-sign-patterns formula must be unsatisfiable")
	}
}

func TestThreeSATValidate(t *testing.T) {
	bad := &ThreeSAT{NumVars: 2, Clauses: []Clause{{lit(0), lit(0), lit(1)}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("repeated variable should fail validation")
	}
	bad2 := &ThreeSAT{NumVars: 2, Clauses: []Clause{{lit(0), lit(1), lit(5)}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range variable should fail validation")
	}
	if _, err := FromThreeSAT(bad); err == nil {
		t.Fatal("FromThreeSAT must reject malformed formulas")
	}
}

func TestThreeSATReductionPaperExample(t *testing.T) {
	r, err := FromThreeSAT(paperFormula())
	if err != nil {
		t.Fatal(err)
	}
	if !r.G1.IsDAG() || !r.G2.IsDAG() {
		t.Fatal("Theorem 4.1(a) constructs DAGs")
	}
	// Size check per the construction: |V1| = 1 + m + n.
	if r.G1.NumNodes() != 1+4+2 {
		t.Fatalf("|V1| = %d, want 7", r.G1.NumNodes())
	}
	// |V2| = 3 + 2m + 8n.
	if r.G2.NumNodes() != 3+8+16 {
		t.Fatalf("|V2| = %d, want 27", r.G2.NumNodes())
	}
	in := instance(r.PHomInstance)
	m, ok := in.Decide()
	if !ok {
		t.Fatal("satisfiable formula must yield a p-hom mapping")
	}
	a := r.AssignmentFromMapping(m)
	if !r.Formula.Evaluate(a) {
		t.Fatalf("decoded assignment %v does not satisfy the formula", a)
	}
}

func randomFormula(rng *rand.Rand) *ThreeSAT {
	nv := 4 + rng.Intn(3)
	nc := 2 + rng.Intn(5)
	f := &ThreeSAT{NumVars: nv}
	for j := 0; j < nc; j++ {
		perm := rng.Perm(nv)
		var c Clause
		for k := 0; k < 3; k++ {
			c[k] = Literal{Var: perm[k], Neg: rng.Intn(2) == 0}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

func TestThreeSATReductionEquivalence(t *testing.T) {
	// Property: φ satisfiable ⇔ G1 ≼(e,p) G2, and decoded assignments
	// satisfy φ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		formula := randomFormula(rng)
		r, err := FromThreeSAT(formula)
		if err != nil {
			return false
		}
		in := instance(r.PHomInstance)
		m, phom := in.Decide()
		_, sat := formula.Solve()
		if phom != sat {
			return false
		}
		if phom {
			if in.CheckMapping(m, false) != nil {
				return false
			}
			if !formula.Evaluate(r.AssignmentFromMapping(m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- X3C ---

// paperX3C is the Fig. 8 example: X = {0..5} (q = 2), S = {C1, C2, C3}
// with C1 = {0,1,2}, C2 = {0,1,3}, C3 = {3,4,5}. Exact cover: {C1, C3}.
func paperX3C() *X3C {
	return &X3C{Q: 2, Subsets: [][3]int{{0, 1, 2}, {0, 1, 3}, {3, 4, 5}}}
}

func TestX3CSolve(t *testing.T) {
	x := paperX3C()
	chosen, ok := x.Solve()
	if !ok {
		t.Fatal("paper X3C instance has a cover")
	}
	if !x.IsCover(chosen) {
		t.Fatalf("returned cover %v invalid", chosen)
	}
	// Removing C3 leaves element 4 uncoverable.
	noCover := &X3C{Q: 2, Subsets: [][3]int{{0, 1, 2}, {0, 1, 3}}}
	if _, ok := noCover.Solve(); ok {
		t.Fatal("instance without a cover solved")
	}
}

func TestX3CValidate(t *testing.T) {
	bad := &X3C{Q: 1, Subsets: [][3]int{{0, 0, 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("repeated element should fail validation")
	}
	bad2 := &X3C{Q: 1, Subsets: [][3]int{{0, 1, 9}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range element should fail validation")
	}
	if _, err := FromX3C(bad); err == nil {
		t.Fatal("FromX3C must reject malformed instances")
	}
}

func TestX3CReductionPaperExample(t *testing.T) {
	r, err := FromX3C(paperX3C())
	if err != nil {
		t.Fatal(err)
	}
	if !r.G1.IsDAG() || !r.G2.IsDAG() {
		t.Fatal("Theorem 4.1(b) constructs a tree and a DAG")
	}
	in := instance(r.PHomInstance)
	m, ok := in.Decide11()
	if !ok {
		t.Fatal("coverable instance must yield a 1-1 p-hom mapping")
	}
	cover := r.CoverFromMapping(m)
	if !r.Instance.IsCover(cover) {
		t.Fatalf("decoded cover %v invalid", cover)
	}
}

func randomX3C(rng *rand.Rand) *X3C {
	q := 2 + rng.Intn(2)
	n := q + rng.Intn(4)
	x := &X3C{Q: q}
	for i := 0; i < n; i++ {
		perm := rng.Perm(3 * q)
		x.Subsets = append(x.Subsets, [3]int{perm[0], perm[1], perm[2]})
	}
	return x
}

func TestX3CReductionEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomX3C(rng)
		r, err := FromX3C(x)
		if err != nil {
			return false
		}
		in := instance(r.PHomInstance)
		m, phom := in.Decide11()
		_, coverable := x.Solve()
		if phom != coverable {
			return false
		}
		if phom {
			if in.CheckMapping(m, true) != nil {
				return false
			}
			if !x.IsCover(r.CoverFromMapping(m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- WIS ---

func TestWISReductionDomainIsIndependentSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := wis.NewGraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(u, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			g.SetWeight(v, 0.5+rng.Float64()*4.5)
		}
		r := FromWIS(g)
		in := instance(r.PHomInstance)
		m := in.CompMaxSim()
		if in.CheckMapping(m, false) != nil {
			return false
		}
		set := r.SetFromMapping(m)
		return g.IsIndependentSet(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWISReductionOptimaCoincide(t *testing.T) {
	// The exact SPH optimum (weight of the matched domain) equals the
	// exact maximum weighted independent set.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		g := wis.NewGraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(u, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			g.SetWeight(v, 1+rng.Float64()*4)
		}
		r := FromWIS(g)
		in := instance(r.PHomInstance)
		exactMapping := in.ExactMaxSim(false)
		mappingWeight := 0.0
		for v := range exactMapping {
			mappingWeight += g.Weight(int(v))
		}
		wisWeight := g.WeightOf(g.ExactMaxWeightIS())
		if diff := mappingWeight - wisWeight; diff < -1e-9 || diff > 1e-9 {
			t.Fatalf("seed %d: SPH optimum %v != WIS optimum %v", seed, mappingWeight, wisWeight)
		}
	}
}

func TestWISMappingFromSet(t *testing.T) {
	g := wis.NewGraph(3)
	g.AddEdge(0, 1)
	r := FromWIS(g)
	m := r.MappingFromSet([]int{0, 2})
	in := instance(r.PHomInstance)
	if err := in.CheckMapping(m, false); err != nil {
		t.Fatalf("independent set should decode to a valid mapping: %v", err)
	}
	bad := r.MappingFromSet([]int{0, 1})
	if err := in.CheckMapping(bad, false); err == nil {
		t.Fatal("adjacent nodes should not form a valid mapping")
	}
}
