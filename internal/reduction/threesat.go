// Package reduction implements the NP-hardness constructions of
// Appendix A — 3SAT → p-hom (Theorem 4.1(a), Fig. 7), X3C → 1-1 p-hom
// (Theorem 4.1(b), Fig. 8) and WIS → SPH (Theorem 4.3) — together with
// exact solvers for the source problems, so the reductions can be
// validated end to end: an instance is satisfiable/coverable exactly when
// the constructed matching instance admits a (1-1) p-hom mapping.
//
// Beyond validating the theory, these constructions double as adversarial
// workload generators: they produce DAG instances that exercise the
// matching algorithms far from the Web-graph regime.
package reduction

import (
	"fmt"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Literal is a possibly negated variable x_i (variables are 0-based).
type Literal struct {
	Var int
	Neg bool
}

// Clause is a disjunction of exactly three literals over three distinct
// variables.
type Clause [3]Literal

// ThreeSAT is a 3SAT instance: a conjunction of clauses over NumVars
// variables.
type ThreeSAT struct {
	NumVars int
	Clauses []Clause
}

// Validate checks structural well-formedness: variable indices in range
// and distinct variables within each clause (the Fig. 7 construction
// enumerates the 8 truth assignments of a clause's three variables, which
// requires them distinct).
func (f *ThreeSAT) Validate() error {
	for ci, c := range f.Clauses {
		seen := map[int]bool{}
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("reduction: clause %d: variable %d out of range [0,%d)", ci, l.Var, f.NumVars)
			}
			if seen[l.Var] {
				return fmt.Errorf("reduction: clause %d repeats variable %d", ci, l.Var)
			}
			seen[l.Var] = true
		}
	}
	return nil
}

// Evaluate reports whether assignment (indexed by variable) satisfies f.
func (f *ThreeSAT) Evaluate(assignment []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assignment[l.Var] != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Solve searches for a satisfying assignment with DPLL-style backtracking
// (unit clauses are not tracked; instances here are small). It returns the
// assignment and true, or nil and false.
func (f *ThreeSAT) Solve() ([]bool, bool) {
	assignment := make([]bool, f.NumVars)
	decided := make([]bool, f.NumVars)
	var try func(v int) bool
	try = func(v int) bool {
		if v == f.NumVars {
			return f.Evaluate(assignment)
		}
		for _, val := range []bool{true, false} {
			assignment[v] = val
			decided[v] = true
			if !f.conflict(decided, assignment) && try(v+1) {
				return true
			}
		}
		decided[v] = false
		return false
	}
	if try(0) {
		return assignment, true
	}
	return nil, false
}

// conflict reports whether some clause is already falsified by the decided
// prefix.
func (f *ThreeSAT) conflict(decided, assignment []bool) bool {
	for _, c := range f.Clauses {
		falsified := true
		for _, l := range c {
			if !decided[l.Var] || assignment[l.Var] != l.Neg {
				falsified = false
				break
			}
		}
		if falsified {
			return true
		}
	}
	return false
}

// PHomInstance is the output of a reduction to the p-hom problem.
type PHomInstance struct {
	G1  *graph.Graph
	G2  *graph.Graph
	Mat simmatrix.Matrix
	Xi  float64
}

// FromThreeSAT builds the Fig. 7 instance: G1 encodes the formula (root
// R1, a variable node per x_i, a clause node per C_j), G2 encodes the
// satisfying truth assignments (root R2, T/F, XT_i/XF_i per variable, and
// one node per clause and satisfying assignment of its three variables).
// φ is satisfiable iff G1 ≼(e,p) G2 with ξ = 1. Both graphs are DAGs.
//
// Node bookkeeping, for mapping extraction: G1's variable node for x_i is
// VarNode[i]; G2's true/false nodes are TrueNode[i] and FalseNode[i].
type ThreeSATReduction struct {
	PHomInstance
	Formula   *ThreeSAT
	VarNode   []graph.NodeID // G1 node of x_i
	TrueNode  []graph.NodeID // G2 node XT_i
	FalseNode []graph.NodeID // G2 node XF_i
}

// FromThreeSAT constructs the reduction; it returns an error when the
// formula is malformed.
func FromThreeSAT(f *ThreeSAT) (*ThreeSATReduction, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	m, n := f.NumVars, len(f.Clauses)

	// G1: R1 → X_i; X_{p_jk} → C_j.
	g1 := graph.New(1 + m + n)
	r1 := g1.AddNode("R1")
	varNode := make([]graph.NodeID, m)
	for i := 0; i < m; i++ {
		varNode[i] = g1.AddNode(fmt.Sprintf("X%d", i))
		g1.AddEdge(r1, varNode[i])
	}
	clauseNode := make([]graph.NodeID, n)
	for j, c := range f.Clauses {
		clauseNode[j] = g1.AddNode(fmt.Sprintf("C%d", j))
		for _, l := range c {
			g1.AddEdge(varNode[l.Var], clauseNode[j])
		}
	}
	g1.Finish()

	// G2: R2 → {T, F}; T → XT_i, F → XF_i; for each clause j and each of
	// its 8 local assignments ρ that satisfy the clause, a node "ρ_j" with
	// edges from the XT/XF nodes consistent with ρ.
	g2 := graph.New(3 + 2*m + 8*n)
	r2 := g2.AddNode("R2")
	tNode := g2.AddNode("T")
	fNode := g2.AddNode("F")
	g2.AddEdge(r2, tNode)
	g2.AddEdge(r2, fNode)
	trueNode := make([]graph.NodeID, m)
	falseNode := make([]graph.NodeID, m)
	for i := 0; i < m; i++ {
		trueNode[i] = g2.AddNode(fmt.Sprintf("XT%d", i))
		falseNode[i] = g2.AddNode(fmt.Sprintf("XF%d", i))
		g2.AddEdge(tNode, trueNode[i])
		g2.AddEdge(fNode, falseNode[i])
	}
	mat := simmatrix.NewSparse()
	mat.Set(r1, r2, 1)
	for i := 0; i < m; i++ {
		mat.Set(varNode[i], trueNode[i], 1)
		mat.Set(varNode[i], falseNode[i], 1)
	}
	for j, c := range f.Clauses {
		for rho := 0; rho < 8; rho++ {
			node := g2.AddNode(fmt.Sprintf("%d_%d", rho, j))
			// ρ bit k gives the value of the variable in literal k.
			sat := false
			for k, l := range c {
				val := rho&(1<<k) != 0
				if val != l.Neg {
					sat = true
				}
			}
			// All 8 nodes exist (as in the proof), but only satisfying
			// assignments receive incoming edges, making the others
			// unusable as images.
			mat.Set(clauseNode[j], node, 1)
			if !sat {
				continue
			}
			for k, l := range c {
				if rho&(1<<k) != 0 {
					g2.AddEdge(trueNode[l.Var], node)
				} else {
					g2.AddEdge(falseNode[l.Var], node)
				}
			}
		}
	}
	g2.Finish()

	return &ThreeSATReduction{
		PHomInstance: PHomInstance{G1: g1, G2: g2, Mat: mat, Xi: 1},
		Formula:      f,
		VarNode:      varNode,
		TrueNode:     trueNode,
		FalseNode:    falseNode,
	}, nil
}

// AssignmentFromMapping decodes a p-hom witness back into a truth
// assignment (the g direction of the reduction's correctness proof).
func (r *ThreeSATReduction) AssignmentFromMapping(m map[graph.NodeID]graph.NodeID) []bool {
	out := make([]bool, r.Formula.NumVars)
	for i, vn := range r.VarNode {
		out[i] = m[vn] == r.TrueNode[i]
	}
	return out
}
