package simulation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

func TestIdenticalGraphsSimulate(t *testing.T) {
	g := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	r := Compute(g, g, simmatrix.NewLabelEquality(g, g), 0.5)
	if !r.Matches() {
		t.Fatal("a graph should simulate itself")
	}
	for v := 0; v < 3; v++ {
		if !r.Sim[v].Contains(v) {
			t.Fatalf("node %d should simulate itself", v)
		}
	}
}

func TestEdgeToEdgeOnly(t *testing.T) {
	// Pattern a→c vs data a→b→c: p-hom matches, simulation must NOT (the
	// pattern edge has no edge-to-edge witness).
	g1 := graph.FromEdgeList([]string{"a", "c"}, [][2]int{{0, 1}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	r := Compute(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if r.Matches() {
		t.Fatal("simulation must require edge-to-edge matches")
	}
	// Node c still has a simulator; only a loses its set.
	if r.Sim[0].Count() != 0 {
		t.Errorf("a should have no simulator, got %v", r.Sim[0].Slice())
	}
	if r.Sim[1].Count() != 1 {
		t.Errorf("c should keep its simulator, got %v", r.Sim[1].Slice())
	}
}

func TestRefinementCascades(t *testing.T) {
	// Chain a→b→c vs data where the only c candidate is unreachable:
	// removal must propagate up to a.
	g1 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}, {1, 2}})
	g2 := graph.FromEdgeList([]string{"a", "b", "c"}, [][2]int{{0, 1}}) // no b→c
	r := Compute(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if !r.Sim[0].Empty() || !r.Sim[1].Empty() {
		t.Fatal("emptiness should cascade from c through b to a")
	}
	if r.Matches() {
		t.Fatal("should not match")
	}
}

func TestSimulationAllowsManyToOne(t *testing.T) {
	// Two pattern A-nodes both simulated by the single data A node.
	g1 := graph.FromEdgeList([]string{"A", "A", "B"}, [][2]int{{0, 2}, {1, 2}})
	g2 := graph.FromEdgeList([]string{"A", "B"}, [][2]int{{0, 1}})
	r := Compute(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if !r.Matches() {
		t.Fatal("simulation is a relation; many-to-one is fine")
	}
}

func TestCoverage(t *testing.T) {
	g1 := graph.FromEdgeList([]string{"a", "zzz"}, nil)
	g2 := graph.FromEdgeList([]string{"a"}, nil)
	r := Compute(g1, g2, simmatrix.NewLabelEquality(g1, g2), 0.5)
	if got := r.Coverage(); got != 0.5 {
		t.Fatalf("coverage = %v, want 0.5", got)
	}
	empty := Compute(graph.New(0), g2, simmatrix.Constant(0), 0.5)
	if empty.Coverage() != 1 || !empty.Matches() {
		t.Fatal("empty pattern should trivially match")
	}
}

// Property: the computed relation is indeed a simulation (every surviving
// pair satisfies the edge-to-edge condition) and it is maximal w.r.t.
// single-pair additions.
func TestSimulationSoundAndMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := []string{"a", "b", "c"}
		mk := func(n int) *graph.Graph {
			g := graph.New(n)
			for i := 0; i < n; i++ {
				g.AddNode(labels[rng.Intn(len(labels))])
			}
			for i := 0; i < n*2; i++ {
				g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
			}
			g.Finish()
			return g
		}
		g1, g2 := mk(6), mk(8)
		mat := simmatrix.NewLabelEquality(g1, g2)
		r := Compute(g1, g2, mat, 0.5)
		// Soundness.
		for v := 0; v < g1.NumNodes(); v++ {
			set := r.Sim[v]
			for u := set.Next(0); u >= 0; u = set.Next(u + 1) {
				if mat.Score(graph.NodeID(v), graph.NodeID(u)) < 0.5 {
					return false
				}
				for _, v2 := range g1.Post(graph.NodeID(v)) {
					if !hasSuccessorIn(g2, graph.NodeID(u), r.Sim[v2]) {
						return false
					}
				}
			}
		}
		// Maximality: no admissible dropped pair can be added back while
		// satisfying the condition against the current relation.
		for v := 0; v < g1.NumNodes(); v++ {
			for u := 0; u < g2.NumNodes(); u++ {
				if r.Sim[v].Contains(u) || mat.Score(graph.NodeID(v), graph.NodeID(u)) < 0.5 {
					continue
				}
				ok := true
				for _, v2 := range g1.Post(graph.NodeID(v)) {
					if !hasSuccessorIn(g2, graph.NodeID(u), r.Sim[v2]) {
						ok = false
						break
					}
				}
				if ok {
					// Adding (v,u) alone would already be consistent — the
					// relation was not maximal. (The greatest simulation
					// contains every pair that is consistent with it.)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
