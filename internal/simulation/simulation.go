// Package simulation implements graph simulation in the style of
// Henzinger, Henzinger & Kopke [17] — the structure-based baseline the
// paper compares against ("graphSimulation" in Section 6).
//
// A simulation of pattern G1 by data G2 is the largest relation
// R ⊆ V1 × V2 such that (v, u) ∈ R implies (a) the nodes are similar
// (mat(v, u) ≥ ξ) and (b) for every edge (v, v') of G1 there is an edge
// (u, u') of G2 with (v', u') ∈ R. Note the *edge-to-edge* requirement —
// this is exactly what p-hom relaxes to edge-to-path, and why simulation
// finds no matches once hyperlinks stretch into paths (Exp-1/Exp-2).
//
// The implementation is a counter-based refinement fixpoint: remove(v, u)
// when some successor constraint of v has no witness left among u's
// successors. Cost is O(|V1|·|E2| + |E1|·|V2|) after the candidate
// initialisation, matching the HHK bound's shape.
package simulation

import (
	"graphmatch/internal/bitset"
	"graphmatch/internal/graph"
	"graphmatch/internal/simmatrix"
)

// Result is the maximal simulation relation: Sim[v] is the set of data
// nodes simulating pattern node v.
type Result struct {
	Sim []*bitset.Set
	n1  int
}

// Compute returns the maximal simulation of g1 by g2 under mat/ξ.
func Compute(g1, g2 *graph.Graph, mat simmatrix.Matrix, xi float64) *Result {
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	sim := make([]*bitset.Set, n1)
	for v := 0; v < n1; v++ {
		set := bitset.New(n2)
		for u := 0; u < n2; u++ {
			if mat.Score(graph.NodeID(v), graph.NodeID(u)) >= xi {
				set.Add(u)
			}
		}
		sim[v] = set
	}

	// Fixpoint refinement with a worklist of pattern nodes whose sim set
	// shrank (so their parents must be re-checked).
	queue := make([]graph.NodeID, 0, n1)
	inQueue := make([]bool, n1)
	push := func(v graph.NodeID) {
		if !inQueue[v] {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	for v := 0; v < n1; v++ {
		push(graph.NodeID(v))
	}

	for len(queue) > 0 {
		v2 := queue[0]
		queue = queue[1:]
		inQueue[v2] = false
		// Re-check every parent v of v2: u ∈ sim(v) must have a successor
		// in sim(v2).
		for _, v := range g1.Prev(v2) {
			set := sim[v]
			changed := false
			for u := set.Next(0); u >= 0; u = set.Next(u + 1) {
				if !hasSuccessorIn(g2, graph.NodeID(u), sim[v2]) {
					set.Remove(u)
					changed = true
				}
			}
			if changed {
				push(v)
			}
		}
	}
	return &Result{Sim: sim, n1: n1}
}

func hasSuccessorIn(g2 *graph.Graph, u graph.NodeID, target *bitset.Set) bool {
	for _, u2 := range g2.Post(u) {
		if target.Contains(int(u2)) {
			return true
		}
	}
	return false
}

// Matches reports the whole-graph match criterion the paper applies to
// graph simulation: every pattern node must have at least one simulator.
func (r *Result) Matches() bool {
	for _, set := range r.Sim {
		if set.Empty() {
			return false
		}
	}
	return r.n1 >= 0
}

// Coverage reports the fraction of pattern nodes with a nonempty sim set —
// a qualCard-like quantity for diagnostics.
func (r *Result) Coverage() float64 {
	if r.n1 == 0 {
		return 1
	}
	covered := 0
	for _, set := range r.Sim {
		if !set.Empty() {
			covered++
		}
	}
	return float64(covered) / float64(r.n1)
}
