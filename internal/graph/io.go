package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// JSON wire format. The format is deliberately simple so data sets produced
// by cmd/datagen can be inspected and edited by hand:
//
//	{
//	  "nodes": [{"label": "books", "weight": 1, "content": "..."}, ...],
//	  "edges": [[0, 1], [1, 2], ...]
//	}

type jsonNode struct {
	Label   string  `json:"label"`
	Weight  float64 `json:"weight,omitempty"`
	Content string  `json:"content,omitempty"`
}

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges [][2]int32 `json:"edges"`
}

// MarshalJSON encodes the graph in the documented wire format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	g.Finish()
	jg := jsonGraph{
		Nodes: make([]jsonNode, g.NumNodes()),
		Edges: make([][2]int32, 0, g.NumEdges()),
	}
	for v := 0; v < g.NumNodes(); v++ {
		n := g.nodes[v]
		jg.Nodes[v] = jsonNode{Label: n.Label, Weight: n.Weight, Content: n.Content}
	}
	g.Edges(func(from, to NodeID) bool {
		jg.Edges = append(jg.Edges, [2]int32{int32(from), int32(to)})
		return true
	})
	return json.Marshal(jg)
}

// UnmarshalJSON decodes the documented wire format, replacing the receiver's
// contents.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decoding: %w", err)
	}
	ng := New(len(jg.Nodes))
	for _, n := range jg.Nodes {
		ng.AddNodeFull(Node{Label: n.Label, Weight: n.Weight, Content: n.Content})
	}
	for i, e := range jg.Edges {
		from, to := NodeID(e[0]), NodeID(e[1])
		if from < 0 || int(from) >= len(jg.Nodes) || to < 0 || int(to) >= len(jg.Nodes) {
			return fmt.Errorf("graph: edge %d (%d→%d) references a node outside [0,%d)", i, from, to, len(jg.Nodes))
		}
		ng.AddEdge(from, to)
	}
	ng.Finish()
	*g = *ng
	return nil
}

// WriteJSON writes the graph to w in the documented wire format.
func (g *Graph) WriteJSON(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadJSON reads a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading: %w", err)
	}
	g := New(0)
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}

// DOT renders the graph in Graphviz DOT syntax for visual inspection.
// Node names are "n<ID>" with the label attribute set to L(v).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for v := 0; v < g.NumNodes(); v++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, g.nodes[v].Label)
	}
	g.Edges(func(from, to NodeID) bool {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", from, to)
		return true
	})
	b.WriteString("}\n")
	return b.String()
}

// FromEdgeList builds a graph from parallel label and edge slices. It is the
// terse constructor used pervasively by tests and examples:
//
//	g := graph.FromEdgeList([]string{"A", "B", "C"}, [][2]int{{0, 1}, {1, 2}})
func FromEdgeList(labels []string, edges [][2]int) *Graph {
	g := New(len(labels))
	for _, l := range labels {
		g.AddNode(l)
	}
	for _, e := range edges {
		g.AddEdge(NodeID(e[0]), NodeID(e[1]))
	}
	g.Finish()
	return g
}

// Labels returns the labels of all nodes indexed by NodeID.
func (g *Graph) Labels() []string {
	out := make([]string, g.NumNodes())
	for v := range out {
		out[v] = g.nodes[v].Label
	}
	return out
}

// LabelSet returns the distinct labels in sorted order.
func (g *Graph) LabelSet() []string {
	set := make(map[string]struct{})
	for v := range g.nodes {
		set[g.nodes[v].Label] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two graphs have identical node records and edge
// sets. Intended for tests (round-trip serialisation, clone semantics).
func Equal(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.nodes[v] != b.nodes[v] {
			return false
		}
		ap, bp := a.Post(NodeID(v)), b.Post(NodeID(v))
		if len(ap) != len(bp) {
			return false
		}
		for i := range ap {
			if ap[i] != bp[i] {
				return false
			}
		}
	}
	return true
}
