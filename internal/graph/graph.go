// Package graph provides the directed, node-labelled graph substrate used
// throughout the repository. It matches the paper's graph model
// G = (V, E, L): a set of nodes V, a set of directed edges E ⊆ V × V, and a
// label L(v) for every node v (Section 3.1 of Fan et al., PVLDB 2010).
//
// Nodes are addressed by dense integer identifiers (NodeID) assigned in
// insertion order, which lets the matching algorithms use slices and bitsets
// instead of hash maps on their hot paths. Labels are arbitrary strings and
// may carry per-node weights (used by the maximum-overall-similarity metric)
// and content text (used to derive shingle-based node similarity).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within one Graph. IDs are dense: a graph with n
// nodes uses exactly the IDs 0..n-1.
type NodeID int32

// Invalid is returned by lookups that find no node.
const Invalid NodeID = -1

// Node carries the per-node attributes of the paper's model: the label L(v),
// an importance weight w(v) (Section 3.3; defaults to 1), and optional
// free-text content from which textual similarity can be computed
// (Section 3.1 suggests page contents compared by shingles).
type Node struct {
	Label   string
	Weight  float64
	Content string
}

// Graph is a directed node-labelled graph. The zero value is an empty graph
// ready to use. Graph is not safe for concurrent mutation; concurrent reads
// are safe once construction is complete.
type Graph struct {
	nodes []Node
	post  [][]NodeID // post[v] = children of v, sorted, no duplicates
	prev  [][]NodeID // prev[v] = parents of v, sorted, no duplicates
	edges int

	dirty []bool // adjacency rows needing sort+dedup on next Finish/lookup
	clean bool   // true when no row is dirty
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		post:  make([][]NodeID, 0, n),
		prev:  make([][]NodeID, 0, n),
		dirty: make([]bool, 0, n),
		clean: true,
	}
}

// AddNode appends a node with the given label, weight 1 and no content, and
// returns its identifier.
func (g *Graph) AddNode(label string) NodeID {
	return g.AddNodeFull(Node{Label: label, Weight: 1})
}

// AddNodeFull appends a node with explicit attributes and returns its
// identifier. A zero weight is normalised to 1 so that the similarity metric
// denominator Σ w(v) is always positive on non-empty graphs.
func (g *Graph) AddNodeFull(n Node) NodeID {
	if n.Weight == 0 {
		n.Weight = 1
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, n)
	g.post = append(g.post, nil)
	g.prev = append(g.prev, nil)
	g.dirty = append(g.dirty, false)
	return id
}

// AddEdge inserts the directed edge (from, to). Parallel edges are
// tolerated during construction and removed when the adjacency is
// normalised; self-loops are allowed (the paper's product-graph reduction
// treats them specially). AddEdge panics if either endpoint is out of range,
// since that is always a programming error in this codebase.
func (g *Graph) AddEdge(from, to NodeID) {
	g.check(from)
	g.check(to)
	g.post[from] = append(g.post[from], to)
	g.prev[to] = append(g.prev[to], from)
	g.dirty[from] = true
	g.dirty[to] = true
	g.clean = false
	g.edges++ // provisional; Finish recounts after dedup
}

func (g *Graph) check(v NodeID) {
	if v < 0 || int(v) >= len(g.nodes) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.nodes)))
	}
}

// Finish normalises the adjacency lists (sorts them and removes duplicate
// edges) and recomputes the edge count. It is idempotent and cheap when
// nothing changed since the last call. All read accessors call it lazily, so
// calling Finish explicitly is an optimisation, not a requirement.
func (g *Graph) Finish() {
	if g.clean {
		return
	}
	edges := 0
	for v := range g.post {
		if g.dirty[v] {
			g.post[v] = dedupSorted(g.post[v])
			g.prev[v] = dedupSorted(g.prev[v])
			g.dirty[v] = false
		}
		edges += len(g.post[v])
	}
	g.edges = edges
	g.clean = true
}

func dedupSorted(s []NodeID) []NodeID {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports |E| (distinct directed edges).
func (g *Graph) NumEdges() int {
	g.Finish()
	return g.edges
}

// Label returns L(v).
func (g *Graph) Label(v NodeID) string {
	g.check(v)
	return g.nodes[v].Label
}

// Weight returns w(v), the node's relative importance (Section 3.3).
func (g *Graph) Weight(v NodeID) float64 {
	g.check(v)
	return g.nodes[v].Weight
}

// SetWeight updates w(v).
func (g *Graph) SetWeight(v NodeID, w float64) {
	g.check(v)
	g.nodes[v].Weight = w
}

// Content returns the free-text content attached to v (may be empty).
func (g *Graph) Content(v NodeID) string {
	g.check(v)
	return g.nodes[v].Content
}

// SetContent attaches free-text content to v.
func (g *Graph) SetContent(v NodeID, text string) {
	g.check(v)
	g.nodes[v].Content = text
}

// Node returns a copy of the full node record.
func (g *Graph) Node(v NodeID) Node {
	g.check(v)
	return g.nodes[v]
}

// Post returns the children of v ("post" in the paper's adjacency list H1,
// Fig. 3 lines 2–3): the nodes u with an edge (v, u). The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Post(v NodeID) []NodeID {
	g.check(v)
	g.Finish()
	return g.post[v]
}

// Prev returns the parents of v: the nodes u with an edge (u, v). The
// returned slice is shared with the graph and must not be modified.
func (g *Graph) Prev(v NodeID) []NodeID {
	g.check(v)
	g.Finish()
	return g.prev[v]
}

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	g.check(from)
	g.check(to)
	g.Finish()
	row := g.post[from]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= to })
	return i < len(row) && row[i] == to
}

// OutDegree reports |post(v)|.
func (g *Graph) OutDegree(v NodeID) int { return len(g.Post(v)) }

// InDegree reports |prev(v)|.
func (g *Graph) InDegree(v NodeID) int { return len(g.Prev(v)) }

// Degree reports the total degree |prev(v)| + |post(v)|, the quantity used
// by the skeleton-extraction rule of Section 6.
func (g *Graph) Degree(v NodeID) int { return g.InDegree(v) + g.OutDegree(v) }

// Edges invokes fn for every directed edge in increasing (from, to) order.
// Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(from, to NodeID) bool) {
	g.Finish()
	for v := range g.post {
		for _, u := range g.post[v] {
			if !fn(NodeID(v), u) {
				return
			}
		}
	}
}

// Nodes invokes fn for every node in increasing ID order. Iteration stops
// early if fn returns false.
func (g *Graph) Nodes(fn func(v NodeID) bool) {
	for v := range g.nodes {
		if !fn(NodeID(v)) {
			return
		}
	}
}

// FindLabel returns the first node carrying the given label, or Invalid.
// It is a convenience for tests and examples, not a hot-path operation.
func (g *Graph) FindLabel(label string) NodeID {
	for v := range g.nodes {
		if g.nodes[v].Label == label {
			return NodeID(v)
		}
	}
	return Invalid
}

// Clone returns a deep copy of the graph. Each adjacency direction is
// copied into one shared arena (two allocations instead of two per
// node — the difference between microseconds and tens of milliseconds
// at webgraph scale); rows are full-capacity sub-slices, so appending
// to one reallocates instead of clobbering its arena neighbour.
func (g *Graph) Clone() *Graph {
	g.Finish()
	c := New(len(g.nodes))
	c.nodes = append(c.nodes, g.nodes...)
	c.post = cloneAdjacency(g.post)
	c.prev = cloneAdjacency(g.prev)
	c.dirty = make([]bool, len(g.nodes))
	c.clean = true
	c.edges = g.edges
	return c
}

func cloneAdjacency(rows [][]NodeID) [][]NodeID {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	arena := make([]NodeID, total)
	out := make([][]NodeID, len(rows))
	off := 0
	for v, r := range rows {
		if len(r) == 0 {
			continue
		}
		copy(arena[off:], r)
		out[v] = arena[off : off+len(r) : off+len(r)]
		off += len(r)
	}
	return out
}

// InducedSubgraph returns the subgraph induced by keep (G1[H] in the
// paper's notation) together with the mapping from new IDs back to the
// originals. Nodes retain labels, weights and content; only edges with both
// endpoints in keep survive.
func (g *Graph) InducedSubgraph(keep []NodeID) (*Graph, []NodeID) {
	g.Finish()
	old2new := make(map[NodeID]NodeID, len(keep))
	sub := New(len(keep))
	orig := make([]NodeID, 0, len(keep))
	for _, v := range keep {
		g.check(v)
		if _, dup := old2new[v]; dup {
			continue
		}
		nv := sub.AddNodeFull(g.nodes[v])
		old2new[v] = nv
		orig = append(orig, v)
	}
	for _, v := range orig {
		for _, u := range g.post[v] {
			if nu, ok := old2new[u]; ok {
				sub.AddEdge(old2new[v], nu)
			}
		}
	}
	sub.Finish()
	return sub, orig
}

// Reverse returns the graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	g.Finish()
	r := New(len(g.nodes))
	r.nodes = append(r.nodes, g.nodes...)
	r.post = make([][]NodeID, len(g.post))
	r.prev = make([][]NodeID, len(g.prev))
	for v := range g.post {
		r.post[v] = append([]NodeID(nil), g.prev[v]...)
		r.prev[v] = append([]NodeID(nil), g.post[v]...)
	}
	r.dirty = make([]bool, len(g.nodes))
	r.clean = true
	r.edges = g.edges
	return r
}

// String summarises the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(|V|=%d, |E|=%d)", g.NumNodes(), g.NumEdges())
}
