package graph

// Strongly connected components via an iterative Tarjan algorithm.
//
// SCCs matter twice in the paper: Nuutila's transitive-closure algorithm
// [22] condenses the graph by SCC before propagating reachability, and the
// Appendix B optimisation compresses each SCC of G2 (a clique in the
// closure G2+) into a single bag-labelled node with a self-loop.

// SCCResult describes the strongly connected components of a graph.
type SCCResult struct {
	// Comp maps every node to its component index. Component indices are
	// assigned in reverse topological order of the condensation: if there is
	// a path from component a to component b (a != b), then Comp index of a
	// is greater than that of b.
	Comp []int
	// Members lists the nodes of each component, sorted by ID.
	Members [][]NodeID
}

// NumComponents reports the number of strongly connected components.
func (r *SCCResult) NumComponents() int { return len(r.Members) }

// SCC computes the strongly connected components of g.
func (g *Graph) SCC() *SCCResult {
	g.Finish()
	n := len(g.nodes)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := 0; i < n; i++ {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var (
		stack   []NodeID // Tarjan stack
		members [][]NodeID
		counter int
	)

	// Explicit DFS frames to avoid recursion on large graphs.
	type frame struct {
		v    NodeID
		next int // next child index in post[v] to process
	}
	var frames []frame

	for s := 0; s < n; s++ {
		if index[s] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: NodeID(s)})
		index[s] = counter
		low[s] = counter
		counter++
		stack = append(stack, NodeID(s))
		onStack[s] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.next < len(g.post[v]) {
				w := g.post[v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// All children processed: maybe pop a component, then return.
			if low[v] == index[v] {
				id := len(members)
				var ms []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					ms = append(ms, w)
					if w == v {
						break
					}
				}
				members = append(members, dedupSorted(ms))
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return &SCCResult{Comp: comp, Members: members}
}

// Condense builds the condensation DAG of g: one node per SCC, with an edge
// between distinct components whenever some cross-component edge exists.
// Each condensation node's label is empty; callers that need bag labels
// (Appendix B compression) assemble them from SCCResult.Members. The second
// result reports, for every component, whether it contains an internal edge
// (a self-loop or an SCC of size > 1), i.e. whether the component can reach
// itself by a nonempty path.
func (g *Graph) Condense() (*Graph, *SCCResult, []bool) {
	scc := g.SCC()
	k := scc.NumComponents()
	dag := New(k)
	for i := 0; i < k; i++ {
		dag.AddNode("")
	}
	selfReach := make([]bool, k)
	g.Edges(func(from, to NodeID) bool {
		cf, ct := scc.Comp[from], scc.Comp[to]
		if cf == ct {
			selfReach[cf] = true
		} else {
			dag.AddEdge(NodeID(cf), NodeID(ct))
		}
		return true
	})
	for i := 0; i < k; i++ {
		if len(scc.Members[i]) > 1 {
			selfReach[i] = true
		}
	}
	dag.Finish()
	return dag, scc, selfReach
}
