package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func mergeTestGraph(rng *rand.Rand, n, m int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNodeFull(Node{Label: fmt.Sprintf("n%d", i), Content: fmt.Sprintf("text %d", i)})
	}
	for i := 0; i < m; i++ {
		g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	g.Finish()
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NumNodes(); v++ {
		if a.Node(NodeID(v)) != b.Node(NodeID(v)) {
			return false
		}
	}
	equal := true
	a.Edges(func(from, to NodeID) bool {
		if !b.HasEdge(from, to) {
			equal = false
		}
		return equal
	})
	return equal
}

// randomMergePatch builds a patch valid against a graph with n nodes;
// edges are drawn from the currently existing set for deletes.
func randomMergePatch(rng *rand.Rand, g *Graph) *Patch {
	p := &Patch{}
	n := g.NumNodes()
	for i := 0; i < rng.Intn(3); i++ {
		p.AddNodes = append(p.AddNodes, Node{Label: fmt.Sprintf("add%d", rng.Intn(100))})
	}
	total := n + len(p.AddNodes)
	for i := 0; i < rng.Intn(3); i++ {
		p.SetContent = append(p.SetContent, ContentUpdate{
			Node:    NodeID(rng.Intn(total)),
			Content: fmt.Sprintf("rewritten %d", rng.Intn(100)),
		})
	}
	var existing [][2]NodeID
	g.Edges(func(from, to NodeID) bool {
		existing = append(existing, [2]NodeID{from, to})
		return true
	})
	seen := map[[2]NodeID]bool{}
	for i := 0; i < rng.Intn(3); i++ {
		if len(existing) == 0 {
			break
		}
		e := existing[rng.Intn(len(existing))]
		if !seen[e] {
			seen[e] = true
			p.DelEdges = append(p.DelEdges, e)
		}
	}
	for i := 0; i < rng.Intn(4); i++ {
		p.AddEdges = append(p.AddEdges, [2]NodeID{
			NodeID(rng.Intn(total)), NodeID(rng.Intn(total)),
		})
	}
	return p
}

// TestMergePatchesEquivalence pins the composition law: applying the
// merged patch equals applying the sequence, whenever the sequence
// applies cleanly.
func TestMergePatchesEquivalence(t *testing.T) {
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		base := mergeTestGraph(rng, 2+rng.Intn(10), rng.Intn(16))

		var patches []*Patch
		sequential := base
		valid := true
		for i := 0; i < 1+rng.Intn(4); i++ {
			p := randomMergePatch(rng, sequential)
			next, err := sequential.ApplyPatch(p)
			if err != nil {
				valid = false
				break
			}
			patches = append(patches, p)
			sequential = next
		}
		if !valid || len(patches) == 0 {
			continue
		}

		merged, err := MergePatches(base, patches...)
		if err != nil {
			t.Fatalf("trial %d: merge failed on a cleanly applying sequence: %v", trial, err)
		}
		got := base
		if !merged.Empty() {
			got, err = base.ApplyPatch(merged)
			if err != nil {
				t.Fatalf("trial %d: merged patch does not apply: %v", trial, err)
			}
		}
		if !graphsEqual(sequential, got) {
			t.Fatalf("trial %d: merged result diverges from sequential application", trial)
		}
	}
}

func TestMergePatchesCancellation(t *testing.T) {
	base := New(2)
	base.AddNode("a")
	base.AddNode("b")
	base.AddEdge(0, 1)
	base.Finish()

	// Delete then re-add an existing edge; add then delete a new one.
	p1 := &Patch{DelEdges: [][2]NodeID{{0, 1}}, AddEdges: [][2]NodeID{{1, 0}}}
	p2 := &Patch{DelEdges: [][2]NodeID{{1, 0}}, AddEdges: [][2]NodeID{{0, 1}}}
	merged, err := MergePatches(base, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Empty() {
		t.Fatalf("cancelling patches must merge to empty, got %+v", merged)
	}
}

func TestMergePatchesDedup(t *testing.T) {
	base := New(2)
	base.AddNode("a")
	base.AddNode("b")
	base.Finish()

	p1 := &Patch{AddEdges: [][2]NodeID{{0, 1}, {0, 1}}}
	p2 := &Patch{AddEdges: [][2]NodeID{{0, 1}, {1, 0}}}
	merged, err := MergePatches(base, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]NodeID{{0, 1}, {1, 0}}
	if len(merged.AddEdges) != len(want) {
		t.Fatalf("AddEdges = %v, want %v", merged.AddEdges, want)
	}
	for i := range want {
		if merged.AddEdges[i] != want[i] {
			t.Fatalf("AddEdges = %v, want %v", merged.AddEdges, want)
		}
	}
}

func TestMergePatchesAbsentDelete(t *testing.T) {
	base := New(2)
	base.AddNode("a")
	base.AddNode("b")
	base.Finish()
	if _, err := MergePatches(base, &Patch{DelEdges: [][2]NodeID{{0, 1}}}); err == nil {
		t.Fatal("deleting an absent edge must fail, as sequential application would")
	}
	// Deleting an edge twice across patches fails too.
	base.AddEdge(0, 1)
	base.Finish()
	p := &Patch{DelEdges: [][2]NodeID{{0, 1}}}
	if _, err := MergePatches(base, p, p); err == nil {
		t.Fatal("double delete must fail")
	}
}

func TestMergePatchesContentLastWins(t *testing.T) {
	base := New(1)
	base.AddNode("a")
	p1 := &Patch{SetContent: []ContentUpdate{{Node: 0, Content: "first"}}}
	p2 := &Patch{SetContent: []ContentUpdate{{Node: 0, Content: "second"}}}
	merged, err := MergePatches(base, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.SetContent) != 1 || merged.SetContent[0].Content != "second" {
		t.Fatalf("SetContent = %+v, want single last write", merged.SetContent)
	}
}

func TestMergePatchesValidation(t *testing.T) {
	base := New(1)
	base.AddNode("a")
	// Node 5 exists in neither base nor the patch's own additions.
	bad := &Patch{AddEdges: [][2]NodeID{{0, 5}}}
	if _, err := MergePatches(base, bad); err == nil {
		t.Fatal("out-of-range edge endpoint must fail validation")
	}
	// But a later patch may reference an earlier patch's additions.
	p1 := &Patch{AddNodes: []Node{{Label: "new"}}}
	p2 := &Patch{AddEdges: [][2]NodeID{{0, 1}}}
	merged, err := MergePatches(base, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.AddNodes) != 1 || len(merged.AddEdges) != 1 {
		t.Fatalf("merged = %+v", merged)
	}
}
