package graph

import (
	"fmt"
	"sort"
)

// Stats summarises the degree structure of a graph in the terms used by
// Table 2 of the paper: node and edge counts, average degree avgDeg(G) and
// maximum degree maxDeg(G). Degrees are total degrees (in + out), matching
// the skeleton-extraction rule of Section 6.
type Stats struct {
	Nodes   int
	Edges   int
	AvgDeg  float64
	MaxDeg  int
	MinDeg  int
	Density float64 // |E| / (|V|·(|V|−1)); 0 for graphs with < 2 nodes
}

// ComputeStats derives degree statistics for g.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	m := g.NumEdges()
	s := Stats{Nodes: n, Edges: m}
	if n == 0 {
		return s
	}
	s.MinDeg = g.Degree(0)
	total := 0
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		total += d
		if d > s.MaxDeg {
			s.MaxDeg = d
		}
		if d < s.MinDeg {
			s.MinDeg = d
		}
	}
	s.AvgDeg = float64(total) / float64(n)
	if n > 1 {
		s.Density = float64(m) / float64(n*(n-1))
	}
	return s
}

// String formats the statistics in Table 2 style.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d avgDeg=%.2f maxDeg=%d", s.Nodes, s.Edges, s.AvgDeg, s.MaxDeg)
}

// TopKByDegree returns the k nodes with the highest total degree, ties
// broken by smaller ID (so results are deterministic). This is the
// "top 20 nodes with the highest degree" skeleton rule used to favour
// cdkMCS in the paper's Exp-1.
func TopKByDegree(g *Graph, k int) []NodeID {
	n := g.NumNodes()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k > n {
		k = n
	}
	keep := append([]NodeID(nil), ids[:k]...)
	sort.Slice(keep, func(i, j int) bool { return keep[i] < keep[j] })
	return keep
}

// DegreeSkeleton returns the nodes satisfying the paper's skeleton rule
// deg(v) ≥ avgDeg(G) + α·maxDeg(G) (Section 6, "Skeletons"). The returned
// IDs are sorted.
func DegreeSkeleton(g *Graph, alpha float64) []NodeID {
	st := ComputeStats(g)
	threshold := st.AvgDeg + alpha*float64(st.MaxDeg)
	var keep []NodeID
	for v := 0; v < g.NumNodes(); v++ {
		if float64(g.Degree(NodeID(v))) >= threshold {
			keep = append(keep, NodeID(v))
		}
	}
	return keep
}
