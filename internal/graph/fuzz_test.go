package graph

import (
	"bytes"
	"testing"
)

// FuzzJSONRoundTrip feeds arbitrary bytes into the JSON decoder; inputs
// that decode must re-encode and decode to an equal graph, and no input
// may panic. The seed corpus runs under plain `go test`; use
// `go test -fuzz=FuzzJSONRoundTrip ./internal/graph` for a real campaign.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{"nodes":[{"label":"a"},{"label":"b"}],"edges":[[0,1]]}`))
	f.Add([]byte(`{"nodes":[],"edges":[]}`))
	f.Add([]byte(`{"nodes":[{"label":"x","weight":2.5,"content":"text"}],"edges":[[0,0]]}`))
	f.Add([]byte(`{"nodes":[{"label":"a"}],"edges":[[0,9]]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"nodes":[{"label":"a"}],"edges":[[-1,0]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := New(0)
		if err := g.UnmarshalJSON(data); err != nil {
			return // invalid inputs may fail, but must not panic
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed on accepted input: %v", err)
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !Equal(g, g2) {
			t.Fatalf("round trip changed the graph: %s vs %s", g, g2)
		}
	})
}

// FuzzFromEdgeList checks the panic contract: edges inside the label
// range build a well-formed graph whose adjacency is consistent.
func FuzzFromEdgeList(f *testing.F) {
	f.Add(3, 0, 1, 1, 2)
	f.Add(1, 0, 0, 0, 0)
	f.Fuzz(func(t *testing.T, n, a1, b1, a2, b2 int) {
		if n <= 0 || n > 64 {
			return
		}
		norm := func(x int) int {
			x %= n
			if x < 0 {
				x += n
			}
			return x
		}
		labels := make([]string, n)
		for i := range labels {
			labels[i] = "l"
		}
		g := FromEdgeList(labels, [][2]int{
			{norm(a1), norm(b1)},
			{norm(a2), norm(b2)},
		})
		if g.NumNodes() != n {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), n)
		}
		g.Edges(func(from, to NodeID) bool {
			found := false
			for _, p := range g.Prev(to) {
				if p == from {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency inconsistent for (%d,%d)", from, to)
			}
			return true
		})
	})
}
