package graph

import "fmt"

// ContentUpdate replaces the free-text content of one existing node.
type ContentUpdate struct {
	Node    NodeID
	Content string
}

// Patch is an in-place edit of a graph: nodes appended, edge additions
// and deletions, and content rewrites. It is the unit of live mutation
// in the serving layer — a registered data graph evolves by patches
// (pages added, links rewired, text edited) instead of being removed
// and re-uploaded wholesale — and the unit the write-ahead log records
// for crash recovery.
//
// Semantics, in application order:
//
//  1. AddNodes appends nodes; the i-th new node gets ID oldN + i, so a
//     patch can wire its own additions.
//  2. SetContent rewrites node contents (old or newly added nodes).
//  3. DelEdges removes edges; deleting an absent edge is an error, so a
//     mistyped delete surfaces instead of silently succeeding.
//  4. AddEdges inserts edges; duplicates of surviving edges are
//     tolerated (the adjacency normalisation dedups), so an add after a
//     delete of the same edge re-creates it.
type Patch struct {
	AddNodes   []Node
	SetContent []ContentUpdate
	DelEdges   [][2]NodeID
	AddEdges   [][2]NodeID
}

// Empty reports whether the patch changes nothing.
func (p *Patch) Empty() bool {
	return len(p.AddNodes) == 0 && len(p.SetContent) == 0 &&
		len(p.DelEdges) == 0 && len(p.AddEdges) == 0
}

// Validate checks the patch against a graph of n nodes without applying
// it: every referenced node must exist (counting the patch's own
// additions) and no edge endpoint may be negative. Edge existence is
// not checked here — DelEdges is validated during ApplyPatch, against
// the state the deletes actually run on.
func (p *Patch) Validate(n int) error {
	total := n + len(p.AddNodes)
	checkNode := func(what string, v NodeID) error {
		if v < 0 || int(v) >= total {
			return fmt.Errorf("graph: patch %s references node %d outside [0,%d)", what, v, total)
		}
		return nil
	}
	for _, cu := range p.SetContent {
		if err := checkNode("set_content", cu.Node); err != nil {
			return err
		}
	}
	for _, e := range p.DelEdges {
		if err := checkNode("del_edges", e[0]); err != nil {
			return err
		}
		if err := checkNode("del_edges", e[1]); err != nil {
			return err
		}
	}
	for _, e := range p.AddEdges {
		if err := checkNode("add_edges", e[0]); err != nil {
			return err
		}
		if err := checkNode("add_edges", e[1]); err != nil {
			return err
		}
	}
	return nil
}

// ApplyPatch returns a new graph with the patch applied; the receiver
// is not modified. Registered graphs are shared by concurrent readers
// and cached closures, so mutation is copy-on-write: the serving
// catalog swaps the returned graph in under its lock and invalidates
// the derived state. Application is deterministic — replaying the same
// patch against the same graph yields an identical graph, which is
// what WAL recovery relies on.
//
// The copy is shallow where it can be: node attributes are copied (one
// allocation), but adjacency rows are shared with the receiver and
// only the rows the patch actually touches are copied before mutation.
// A mutation storm against a large graph then pays O(touched) per
// patch where a deep clone paid two allocations per node. The sharing
// is safe under the package's contract that a finished graph is never
// mutated in place — both graphs, like all registered graphs, are
// immutable from here on.
func (g *Graph) ApplyPatch(p *Patch) (*Graph, error) {
	n := g.NumNodes()
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	g.Finish()
	grown := n + len(p.AddNodes)
	ng := &Graph{
		nodes: append(make([]Node, 0, grown), g.nodes...),
		post:  append(make([][]NodeID, 0, grown), g.post...),
		prev:  append(make([][]NodeID, 0, grown), g.prev...),
		dirty: make([]bool, n, grown),
		clean: true,
		edges: g.edges,
	}
	// Copy every row a mutation below will write. AddEdge dirties both
	// endpoints and Finish renormalises both directions of a dirty
	// node, so an added edge owns all four rows; deleteEdge shifts
	// exactly post[from] and prev[to]. Rows of patch-added nodes are
	// fresh and need nothing.
	ownedPost := make(map[NodeID]bool, 2*len(p.AddEdges)+len(p.DelEdges))
	ownedPrev := make(map[NodeID]bool, 2*len(p.AddEdges)+len(p.DelEdges))
	ownPost := func(v NodeID) {
		if int(v) < n && !ownedPost[v] {
			ownedPost[v] = true
			ng.post[v] = append([]NodeID(nil), ng.post[v]...)
		}
	}
	ownPrev := func(v NodeID) {
		if int(v) < n && !ownedPrev[v] {
			ownedPrev[v] = true
			ng.prev[v] = append([]NodeID(nil), ng.prev[v]...)
		}
	}
	for _, e := range p.DelEdges {
		ownPost(e[0])
		ownPrev(e[1])
	}
	for _, e := range p.AddEdges {
		ownPost(e[0])
		ownPrev(e[0])
		ownPost(e[1])
		ownPrev(e[1])
	}
	for _, nd := range p.AddNodes {
		ng.AddNodeFull(nd)
	}
	for _, cu := range p.SetContent {
		ng.SetContent(cu.Node, cu.Content)
	}
	for _, e := range p.DelEdges {
		if !ng.deleteEdge(e[0], e[1]) {
			return nil, fmt.Errorf("graph: patch deletes absent edge %d→%d", e[0], e[1])
		}
	}
	for _, e := range p.AddEdges {
		ng.AddEdge(e[0], e[1])
	}
	ng.Finish()
	return ng, nil
}

// deleteEdge removes the directed edge (from, to) and reports whether
// it existed. The graph must be clean (Clone returns clean graphs);
// removal preserves sortedness, so the rows stay clean.
func (g *Graph) deleteEdge(from, to NodeID) bool {
	g.Finish()
	if !removeSorted(&g.post[from], to) {
		return false
	}
	removeSorted(&g.prev[to], from)
	g.edges--
	return true
}

// removeSorted deletes x from the sorted slice *s, reporting whether it
// was present.
func removeSorted(s *[]NodeID, x NodeID) bool {
	row := *s
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(row) || row[lo] != x {
		return false
	}
	*s = append(row[:lo], row[lo+1:]...)
	return true
}
